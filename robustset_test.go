package robustset_test

import (
	"math"
	"math/rand/v2"
	"net"
	"testing"

	"robustset"
)

var testU = robustset.Universe{Dim: 2, Delta: 1 << 16}

// makeNoisyPair builds Bob's set plus Alice's noisy copy with k fresh
// outliers, using only the public API surface.
func makeNoisyPair(rng *rand.Rand, n, k int, noise int64) (alice, bob []robustset.Point) {
	bob = make([]robustset.Point, n)
	alice = make([]robustset.Point, n)
	for i := range bob {
		bob[i] = robustset.Point{rng.Int64N(testU.Delta), rng.Int64N(testU.Delta)}
		if i < k {
			alice[i] = robustset.Point{rng.Int64N(testU.Delta), rng.Int64N(testU.Delta)}
			continue
		}
		p := robustset.Point{bob[i][0] + rng.Int64N(2*noise+1) - noise, bob[i][1] + rng.Int64N(2*noise+1) - noise}
		for j, c := range p {
			if c < 0 {
				p[j] = 0
			} else if c >= testU.Delta {
				p[j] = testU.Delta - 1
			}
		}
		alice[i] = p
	}
	return alice, bob
}

func TestPublicQuickstartFlow(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	alice, bob := makeNoisyPair(rng, 200, 5, 3)
	params := robustset.Params{Universe: testU, Seed: 42, DiffBudget: 5}

	sketch, err := robustset.NewSketch(params, alice)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := sketch.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var wire robustset.Sketch
	if err := wire.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	res, err := robustset.Reconcile(&wire, bob)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SPrime) != len(bob) {
		t.Fatalf("|S'_B| = %d, want %d", len(res.SPrime), len(bob))
	}
	before, err := robustset.EMD(alice, bob, robustset.L1)
	if err != nil {
		t.Fatal(err)
	}
	after, err := robustset.EMD(alice, res.SPrime, robustset.L1)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("EMD did not improve: %v → %v", before, after)
	}
	// EMD_k lower-bounds what any protocol could achieve.
	floor, err := robustset.EMDk(alice, bob, robustset.L1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if after < floor-1e-9 {
		t.Errorf("EMD after (%v) below the EMD_k floor (%v): impossible", after, floor)
	}
}

func TestPublicTwoWay(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	alice, bob := makeNoisyPair(rng, 150, 4, 2)
	params := robustset.Params{Universe: testU, Seed: 7, DiffBudget: 4}
	ap, bp, err := robustset.ReconcileTwoWay(params, alice, bob)
	if err != nil {
		t.Fatal(err)
	}
	if len(ap) != len(alice) || len(bp) != len(bob) {
		t.Fatal("two-way size invariants broken")
	}
	// Each side must end closer to the other's original data.
	d0, _ := robustset.EMD(alice, bob, robustset.L1)
	dA, _ := robustset.EMD(bob, ap, robustset.L1)
	dB, _ := robustset.EMD(alice, bp, robustset.L1)
	if dA >= d0 || dB >= d0 {
		t.Errorf("two-way did not improve either side: d0=%v dA=%v dB=%v", d0, dA, dB)
	}
}

func TestPublicPushPullOverTCP(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	alice, bob := makeNoisyPair(rng, 300, 6, 2)
	params := robustset.Params{Universe: testU, Seed: 9, DiffBudget: 6}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type aliceOut struct {
		stats robustset.TransferStats
		err   error
	}
	done := make(chan aliceOut, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- aliceOut{err: err}
			return
		}
		defer conn.Close()
		stats, err := robustset.Push(conn, params, alice)
		done <- aliceOut{stats: stats, err: err}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, stats, err := robustset.Pull(conn, bob)
	if err != nil {
		t.Fatal(err)
	}
	a := <-done
	if a.err != nil {
		t.Fatal(a.err)
	}
	if stats.BytesRecv != a.stats.BytesSent {
		t.Errorf("bob received %d bytes, alice sent %d", stats.BytesRecv, a.stats.BytesSent)
	}
	if len(res.SPrime) != len(bob) {
		t.Errorf("|S'_B| = %d, want %d", len(res.SPrime), len(bob))
	}
}

func TestPublicAdaptiveOverTCP(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	alice, bob := makeNoisyPair(rng, 400, 6, 3)
	params := robustset.Params{Universe: testU, Seed: 11, DiffBudget: 6}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		_, err = robustset.PushAdaptive(conn, params, alice)
		done <- err
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, stats, err := robustset.PullAdaptive(conn, params, bob, robustset.AdaptiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(res.SPrime) != len(bob) {
		t.Errorf("|S'_B| = %d, want %d", len(res.SPrime), len(bob))
	}
	if stats.MsgsSent < 2 || stats.MsgsRecv < 2 {
		t.Errorf("adaptive protocol should be multi-round, stats %+v", stats)
	}
}

func TestPublicExactAndCPIOverTCP(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	// Exact regime: Bob's set plus 10 replaced points.
	_, bob := makeNoisyPair(rng, 250, 0, 0)
	alice := robustset.ClonePoints(bob)
	for i := 0; i < 10; i++ {
		alice[i] = robustset.Point{rng.Int64N(testU.Delta), rng.Int64N(testU.Delta)}
	}

	runExact := func(name string, push func(net.Conn) error, pull func(net.Conn) ([]robustset.Point, error)) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		done := make(chan error, 1)
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			done <- push(conn)
		}()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		got, err := pull(conn)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := <-done; err != nil {
			t.Fatalf("%s alice: %v", name, err)
		}
		if !robustset.EqualMultisets(got, alice) {
			t.Errorf("%s: result != S_A", name)
		}
	}

	ecfg := robustset.ExactConfig{Universe: testU, Seed: 21}
	runExact("exact-iblt",
		func(c net.Conn) error { _, err := robustset.PushExact(c, ecfg, alice); return err },
		func(c net.Conn) ([]robustset.Point, error) {
			sp, _, err := robustset.PullExact(c, ecfg, bob)
			return sp, err
		})
	ccfg := robustset.CPIConfig{Universe: testU, Seed: 23, Capacity: 32}
	runExact("cpi",
		func(c net.Conn) error { _, err := robustset.PushCPI(c, ccfg, alice); return err },
		func(c net.Conn) ([]robustset.Point, error) {
			sp, _, err := robustset.PullCPI(c, ccfg, bob)
			return sp, err
		})
}

func TestPublicEMDApprox(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	alice, bob := makeNoisyPair(rng, 100, 0, 4)
	est, err := robustset.EMDApprox(alice, bob, testU, 31)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := robustset.EMD(alice, bob, robustset.L1)
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 || exact <= 0 {
		t.Fatalf("degenerate distances: est=%v exact=%v", est, exact)
	}
	if ratio := est / exact; math.IsNaN(ratio) || ratio < 0.02 || ratio > 100 {
		t.Errorf("approximation ratio %v outside plausible distortion band", ratio)
	}
	if same, _ := robustset.EMDApprox(alice, alice, testU, 31); same != 0 {
		t.Errorf("self-distance estimate %v, want 0", same)
	}
}

func TestPublicValidateSet(t *testing.T) {
	if err := robustset.ValidateSet(testU, []robustset.Point{{0, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := robustset.ValidateSet(testU, []robustset.Point{{-1, 0}}); err == nil {
		t.Fatal("invalid point accepted")
	}
}
