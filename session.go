package robustset

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"

	"robustset/internal/emd"
	"robustset/internal/protocol"
	"robustset/internal/trace"
	"robustset/internal/transport"
)

// Strategy selects which reconciliation protocol a Session runs. The
// seven implementations — Robust, Adaptive, ExactIBLT, Rateless, Ranged,
// CPI and Naive
// — wrap the module's wire protocols behind one interface, so serving and
// fetching code is written once and the protocol is a configuration
// choice. The interface is closed (its lower-case methods cannot be
// implemented outside this package) because both endpoints must agree on
// the wire semantics of every strategy code.
type Strategy interface {
	// Name returns the strategy's stable identifier, matching the names
	// used in experiment tables.
	Name() string
	// code is the wire code carried in a server handshake.
	code() byte
	// helloConfig encodes the strategy knobs the serving side must adopt
	// for the two parties' sketches to be compatible.
	helloConfig() []byte
	// serve runs Alice's side: answer one fetching peer over t.
	serve(ctx context.Context, t transport.Transport, p Params, pts []Point) error
	// fetch runs Bob's side and returns his reconciled multiset.
	fetch(ctx context.Context, t transport.Transport, p Params, local []Point) (*SyncResult, error)
}

// twoWayStrategy is implemented by strategies that support the symmetric
// Session.Sync mode.
type twoWayStrategy interface {
	sync(ctx context.Context, t transport.Transport, p Params, pts []Point) (*SyncResult, error)
}

// validatingStrategy is implemented by strategies with knobs that can be
// out of range; NewSession rejects invalid values up front instead of
// letting them desynchronize the endpoints mid-protocol.
type validatingStrategy interface {
	validate() error
}

// maxCPICapacity bounds the CPI sketch size, matching the 1<<24 ceiling
// every other wire-supplied capacity in the protocols enforces — a
// handshake can never drive a pathological allocation.
const maxCPICapacity = 1 << 24

// SyncResult is the outcome of a Session.Fetch or Session.Sync: the
// local party's updated multiset, plus the robust protocol's per-level
// diagnostics when the strategy is robust.
type SyncResult struct {
	// SPrime is the reconciled multiset (S'_B). For exact strategies it
	// equals the remote set exactly on success; for robust strategies it
	// is close to the remote set in Earth Mover's Distance.
	SPrime []Point
	// Robust carries the robust protocol's detailed result (chosen level,
	// added/removed points, per-level outcomes); nil for ExactIBLT,
	// Rateless, CPI and Naive.
	Robust *Result
	// Params are the parameters the exchange actually ran under. When
	// fetching a named dataset these are the server's (adopted through
	// the handshake), so callers can interpret SPrime — e.g. write it
	// under the right universe — without out-of-band agreement.
	Params Params

	metric Metric
}

// EMD returns the exact Earth Mover's Distance between the result and
// other under the session's metric (WithMetric, default L1). It solves an
// assignment problem in O(n³); intended for diagnostics and tests, not
// hot paths.
func (r *SyncResult) EMD(other []Point) (float64, error) {
	m := r.metric
	if m == nil {
		m = L1
	}
	return emd.Exact(r.SPrime, other, m)
}

// ---------------------------------------------------------------------
// Strategy implementations

// Robust is the paper's one-shot robust protocol: the serving side pushes
// one message carrying the full multiresolution sketch; the fetching side
// reconciles at the finest decodable level. It is the only strategy that
// also supports the symmetric Session.Sync mode.
type Robust struct{}

// Name implements Strategy.
func (Robust) Name() string { return "robust-oneshot" }

func (Robust) code() byte          { return protocol.StrategyRobust }
func (Robust) helloConfig() []byte { return nil }

func (Robust) serve(ctx context.Context, t transport.Transport, p Params, pts []Point) error {
	return protocol.RunPushAlice(ctx, t, p, pts)
}

func (Robust) fetch(ctx context.Context, t transport.Transport, _ Params, local []Point) (*SyncResult, error) {
	res, err := protocol.RunPushBob(ctx, t, local)
	if err != nil {
		return nil, err
	}
	return &SyncResult{SPrime: res.SPrime, Robust: res}, nil
}

func (Robust) sync(ctx context.Context, t transport.Transport, p Params, pts []Point) (*SyncResult, error) {
	res, err := protocol.RunTwoWay(ctx, t, p, pts)
	if err != nil {
		return nil, err
	}
	return &SyncResult{SPrime: res.SPrime, Robust: res}, nil
}

// Adaptive is the estimate-first robust protocol: tiny per-level
// difference estimators first, then exactly one level table sized to the
// estimated difference (plus retries if the fetching side asks).
type Adaptive struct {
	// Options tunes the fetching side; the zero value uses the defaults
	// documented on AdaptiveOptions.
	Options AdaptiveOptions
}

// Name implements Strategy.
func (Adaptive) Name() string { return "robust-adaptive" }

func (Adaptive) code() byte          { return protocol.StrategyAdaptive }
func (Adaptive) helloConfig() []byte { return nil }

func (Adaptive) serve(ctx context.Context, t transport.Transport, p Params, pts []Point) error {
	return protocol.RunEstimateAlice(ctx, t, p, pts)
}

func (a Adaptive) fetch(ctx context.Context, t transport.Transport, p Params, local []Point) (*SyncResult, error) {
	res, err := protocol.RunEstimateBob(ctx, t, p, local, a.Options)
	if err != nil {
		return nil, err
	}
	return &SyncResult{SPrime: res.SPrime, Robust: res}, nil
}

// ExactIBLT is classic exact set synchronization (difference digest:
// strata estimator plus exactly-sized IBLTs). It remains the right tool
// when values match bit-for-bit; under value noise its cost degenerates
// to Θ(n).
type ExactIBLT struct {
	// HashCount is the IBLT q; both endpoints must agree (a server
	// session adopts it from the hello). 0 means 4.
	HashCount int
	// Slack multiplies the estimated difference when sizing the IBLT
	// (fetch side only; 0 means 2.0).
	Slack float64
	// MaxRetries bounds decode-failure retries (fetch side only; 0
	// means 4).
	MaxRetries int
}

// Name implements Strategy.
func (ExactIBLT) Name() string { return "exact-iblt" }

func (e ExactIBLT) validate() error {
	if e.HashCount != 0 && (e.HashCount < 2 || e.HashCount > 16) {
		return fmt.Errorf("robustset: exact-IBLT hash count %d outside [2,16]", e.HashCount)
	}
	if e.Slack < 0 {
		return fmt.Errorf("robustset: exact-IBLT slack %v negative", e.Slack)
	}
	if e.MaxRetries < 0 {
		return fmt.Errorf("robustset: exact-IBLT max retries %d negative", e.MaxRetries)
	}
	return nil
}

func (e ExactIBLT) code() byte { return protocol.StrategyExactIBLT }

func (e ExactIBLT) helloConfig() []byte { return []byte{byte(e.HashCount)} }

func (e ExactIBLT) config(p Params) ExactConfig {
	return ExactConfig{
		Universe:   p.Universe,
		Seed:       p.Seed,
		HashCount:  e.HashCount,
		Slack:      e.Slack,
		MaxRetries: e.MaxRetries,
	}
}

func (e ExactIBLT) serve(ctx context.Context, t transport.Transport, p Params, pts []Point) error {
	return protocol.RunExactIBLTAlice(ctx, t, e.config(p), pts)
}

func (e ExactIBLT) fetch(ctx context.Context, t transport.Transport, p Params, local []Point) (*SyncResult, error) {
	sp, err := protocol.RunExactIBLTBob(ctx, t, e.config(p), local)
	if err != nil {
		return nil, err
	}
	return &SyncResult{SPrime: sp}, nil
}

// Rateless is rateless incremental exact synchronization: after the same
// strata-estimator opening as ExactIBLT, the fetching side streams
// fixed-increment ranges of extendable-IBLT cells until its decoder
// certifies completion. Where ExactIBLT answers a mis-estimated
// difference by discarding the table and retrying with a doubled one,
// Rateless pays only the incremental cells it was short — wire cost
// tracks the actual difference, not the estimate.
//
// Against a Server (WithDataset) the strategy advertises itself as a
// feature bit on the ExactIBLT handshake; a legacy server that does not
// echo the bit is served with the classic doubling path automatically.
// Peer-to-peer (WithParams), both endpoints must run Rateless.
type Rateless struct {
	// HashCount is the IBLT q of the doubling-path fallback; both
	// endpoints must agree (a server session adopts it from the hello).
	// 0 means 4.
	HashCount int
	// InitialFactor scales the strata estimate into the first requested
	// cell increment (fetch side only; 0 means 1.4, the stream's
	// empirical decode overhead).
	InitialFactor float64
	// MaxBytes caps the total streamed cell bytes before the fetching
	// side gives up (fetch side only; 0 means 64 MiB).
	MaxBytes int64
}

// Name implements Strategy.
func (Rateless) Name() string { return "rateless" }

func (r Rateless) validate() error {
	if r.HashCount != 0 && (r.HashCount < 2 || r.HashCount > 16) {
		return fmt.Errorf("robustset: rateless hash count %d outside [2,16]", r.HashCount)
	}
	if r.InitialFactor < 0 || math.IsNaN(r.InitialFactor) || math.IsInf(r.InitialFactor, 0) {
		return fmt.Errorf("robustset: rateless initial factor %v not a finite non-negative number", r.InitialFactor)
	}
	if r.MaxBytes < 0 {
		return fmt.Errorf("robustset: rateless max bytes %d negative", r.MaxBytes)
	}
	return nil
}

// code shares ExactIBLT's wire code: the rateless capability rides the
// hello as a feature bit, which is what lets legacy peers fall back.
func (r Rateless) code() byte { return protocol.StrategyExactIBLT }

func (r Rateless) helloConfig() []byte {
	return []byte{byte(r.HashCount), protocol.FeatureRateless}
}

// fallback returns the doubling-path strategy a fetch downgrades to when
// the server's accept does not echo the rateless feature bit.
func (r Rateless) fallback() Strategy {
	return ExactIBLT{HashCount: r.HashCount}
}

func (r Rateless) config(p Params) protocol.RatelessConfig {
	return protocol.RatelessConfig{
		Universe:      p.Universe,
		Seed:          p.Seed,
		HashCount:     r.HashCount,
		InitialFactor: r.InitialFactor,
		MaxBytes:      r.MaxBytes,
	}
}

func (r Rateless) serve(ctx context.Context, t transport.Transport, p Params, pts []Point) error {
	return protocol.RunRatelessAlice(ctx, t, r.config(p), pts)
}

func (r Rateless) fetch(ctx context.Context, t transport.Transport, p Params, local []Point) (*SyncResult, error) {
	sp, err := protocol.RunRatelessBob(ctx, t, r.config(p), local)
	if err != nil {
		return nil, err
	}
	return &SyncResult{SPrime: sp}, nil
}

// Ranged is divide-and-conquer exact synchronization over the Morton
// key order: the fetching side probes key ranges with (count,
// fingerprint) aggregates, mismatched ranges split k ways, and ranges of
// at most ItemLimit keys terminate by exact item transfer. Wire cost
// scales with the difference (times log of the set size), not with the
// set size itself — the strategy of choice for huge sets with tiny
// differences, where every sized sketch pays its estimator up front.
//
// Against a Server (WithDataset) the strategy advertises itself as a
// feature bit on the Robust-family hello; a legacy server that does not
// echo the bit is synced with the one-shot robust path automatically.
// Peer-to-peer (WithParams), both endpoints must run Ranged. When
// fetching over a mux-capable client connection, Streams > 1 reconciles
// that many disjoint subranges as parallel pipelined streams, cutting
// wall-clock round depth without changing the result.
type Ranged struct {
	// Branch is the split fan-out k for mismatched ranges; both endpoints
	// must agree (a server session adopts it from the hello). 0 means 8.
	Branch int
	// ItemLimit is the serving-side range size at which splitting stops
	// and exact keys are transferred. 0 means 16.
	ItemLimit int
	// Serial probes one range per round trip instead of batching each
	// recursion level into one frame — the classic recursive ping-pong,
	// kept for latency comparisons (fetch side only).
	Serial bool
	// Streams is the number of parallel sibling-range streams a
	// mux-capable Client.Fetch fans out to. 0 or 1 means a single
	// stream; plain Session connections always use one stream.
	Streams int
}

// Name implements Strategy.
func (Ranged) Name() string { return "ranged" }

func (r Ranged) validate() error {
	if r.Branch != 0 && (r.Branch < 2 || r.Branch > protocol.MaxRangedBranch) {
		return fmt.Errorf("robustset: ranged branch %d outside [2,%d]", r.Branch, protocol.MaxRangedBranch)
	}
	if r.ItemLimit < 0 || r.ItemLimit > protocol.MaxRangedItemLimit {
		return fmt.Errorf("robustset: ranged item limit %d outside [0,%d]", r.ItemLimit, protocol.MaxRangedItemLimit)
	}
	if r.Streams < 0 || r.Streams > 64 {
		return fmt.Errorf("robustset: ranged streams %d outside [0,64]", r.Streams)
	}
	return nil
}

// code shares Robust's wire code: the ranged capability rides the hello
// as a feature bit, which is what lets legacy peers fall back.
func (r Ranged) code() byte { return protocol.StrategyRobust }

func (r Ranged) helloConfig() []byte {
	return []byte{byte(r.Branch), protocol.FeatureRanged, byte(r.ItemLimit), byte(r.ItemLimit >> 8)}
}

// fallback returns the one-shot robust strategy a fetch downgrades to
// when the server's accept does not echo the ranged feature bit.
func (r Ranged) fallback() Strategy { return Robust{} }

func (r Ranged) config(p Params) protocol.RangedConfig {
	return protocol.RangedConfig{
		Universe:  p.Universe,
		Seed:      p.Seed,
		Branch:    r.Branch,
		ItemLimit: r.ItemLimit,
		Serial:    r.Serial,
	}
}

func (r Ranged) serve(ctx context.Context, t transport.Transport, p Params, pts []Point) error {
	return protocol.RunRangedAlice(ctx, t, r.config(p), pts)
}

func (r Ranged) fetch(ctx context.Context, t transport.Transport, p Params, local []Point) (*SyncResult, error) {
	sp, rounds, err := protocol.RunRangedBob(ctx, t, r.config(p), local)
	if err != nil {
		return nil, err
	}
	// wall_rounds is the sequential round-trip depth of the exchange; the
	// pipelined client overwrites it with the per-stream maximum.
	trace.FromContext(ctx).Stat("wall_rounds", int64(rounds))
	return &SyncResult{SPrime: sp}, nil
}

// CPI is characteristic-polynomial exact synchronization
// (minisketch-class: optimal O(capacity) communication for exact
// differences, no cheap retry path).
type CPI struct {
	// Capacity is the maximum recoverable difference |AΔB|. 0 derives
	// 2·DiffBudget+8 from the session parameters.
	Capacity int
}

// Name implements Strategy.
func (CPI) Name() string { return "cpi" }

func (c CPI) validate() error {
	if c.Capacity < 0 || c.Capacity > maxCPICapacity {
		return fmt.Errorf("robustset: CPI capacity %d outside [0,%d]", c.Capacity, maxCPICapacity)
	}
	return nil
}

func (c CPI) code() byte { return protocol.StrategyCPI }

func (c CPI) helloConfig() []byte {
	return binary.LittleEndian.AppendUint32(nil, uint32(c.Capacity))
}

func (c CPI) config(p Params) (CPIConfig, error) {
	capacity := c.Capacity
	if capacity == 0 {
		if p.DiffBudget < 1 {
			return CPIConfig{}, errors.New("robustset: CPI strategy needs Capacity or Params.DiffBudget")
		}
		capacity = 2*p.DiffBudget + 8
	}
	// Re-validated here (not only in NewSession) because a server derives
	// the capacity from an untrusted hello blob.
	if capacity < 1 || capacity > maxCPICapacity {
		return CPIConfig{}, fmt.Errorf("robustset: CPI capacity %d outside [1,%d]", capacity, maxCPICapacity)
	}
	return CPIConfig{Universe: p.Universe, Seed: p.Seed, Capacity: capacity}, nil
}

func (c CPI) serve(ctx context.Context, t transport.Transport, p Params, pts []Point) error {
	cfg, err := c.config(p)
	if err != nil {
		// Relay the configuration error so the peer fails fast with a
		// RemoteError instead of blocking until the connection drops.
		return protocol.SendError(ctx, t, err)
	}
	return protocol.RunCPIAlice(ctx, t, cfg, pts)
}

func (c CPI) fetch(ctx context.Context, t transport.Transport, p Params, local []Point) (*SyncResult, error) {
	cfg, err := c.config(p)
	if err != nil {
		return nil, protocol.SendError(ctx, t, err)
	}
	sp, err := protocol.RunCPIBob(ctx, t, cfg, local)
	if err != nil {
		return nil, err
	}
	return &SyncResult{SPrime: sp}, nil
}

// Naive transfers the serving side's entire point set — the trivial
// comparator every sublinear protocol must beat, and occasionally the
// right answer for tiny sets.
type Naive struct{}

// Name implements Strategy.
func (Naive) Name() string { return "naive" }

func (Naive) code() byte          { return protocol.StrategyNaive }
func (Naive) helloConfig() []byte { return nil }

func (Naive) serve(ctx context.Context, t transport.Transport, p Params, pts []Point) error {
	return protocol.RunNaiveAlice(ctx, t, p.Universe, pts)
}

func (Naive) fetch(ctx context.Context, t transport.Transport, p Params, local []Point) (*SyncResult, error) {
	sp, err := protocol.RunNaiveBob(ctx, t, p.Universe)
	if err != nil {
		return nil, err
	}
	return &SyncResult{SPrime: sp}, nil
}

// strategyFromCode reconstructs the serving side of a strategy from its
// handshake code and config blob.
func strategyFromCode(code byte, cfg []byte) (Strategy, error) {
	switch code {
	case protocol.StrategyRobust:
		// Byte 1 of the config, when present, carries feature bits; a
		// ranged-capable client negotiates divide-and-conquer sync on the
		// same wire code (legacy servers ignore the config and serve the
		// one-shot push, which the client detects via the bare accept).
		if len(cfg) >= 2 && cfg[1]&protocol.FeatureRanged != 0 {
			r := Ranged{Branch: int(cfg[0])}
			if len(cfg) >= 4 {
				r.ItemLimit = int(cfg[2]) | int(cfg[3])<<8
			}
			if err := r.validate(); err != nil {
				return nil, err
			}
			return r, nil
		}
		return Robust{}, nil
	case protocol.StrategyAdaptive:
		return Adaptive{}, nil
	case protocol.StrategyExactIBLT:
		// Byte 1 of the config, when present, carries feature bits; a
		// rateless-capable client negotiates the cell-stream protocol on
		// the same wire code (legacy servers ignore the byte and serve the
		// doubling path, which the client detects via the bare accept).
		if len(cfg) >= 2 && cfg[1]&protocol.FeatureRateless != 0 {
			r := Rateless{HashCount: int(cfg[0])}
			if err := r.validate(); err != nil {
				return nil, err
			}
			return r, nil
		}
		e := ExactIBLT{}
		if len(cfg) >= 1 {
			e.HashCount = int(cfg[0])
		}
		if err := e.validate(); err != nil {
			return nil, err
		}
		return e, nil
	case protocol.StrategyCPI:
		c := CPI{}
		if len(cfg) >= 4 {
			c.Capacity = int(binary.LittleEndian.Uint32(cfg))
		}
		if err := c.validate(); err != nil {
			return nil, err
		}
		return c, nil
	case protocol.StrategyNaive:
		return Naive{}, nil
	default:
		return nil, fmt.Errorf("robustset: unknown strategy code 0x%02x", code)
	}
}

// ---------------------------------------------------------------------
// Session

// Session binds a Strategy to a set of options and runs reconciliations
// over connections. A Session is stateless between calls and safe for
// concurrent use; a service typically builds one Session per
// (strategy, parameters) pair and reuses it for every connection.
//
//	sess, _ := robustset.NewSession(robustset.Robust{}, robustset.WithParams(p))
//	go sess.Serve(ctx, aliceConn, alicePts)   // serving side
//	res, stats, _ := sess.Fetch(ctx, bobConn, bobPts) // fetching side
//
// Cancelling the context aborts a session mid-round: blocked reads and
// writes return promptly with the context's error, and a context deadline
// is propagated onto the connection.
type Session struct {
	strategy  Strategy
	params    Params
	metric    Metric
	statsSink func(TransferStats)
	traceSink func(*SessionTrace)
	maxMsg    int
	dataset   string
}

// Option configures a Session.
type Option func(*Session) error

// WithParams sets the shared reconciliation parameters. Both endpoints
// of a peer-to-peer session must agree on them (a Fetch against a Server
// dataset instead adopts the server's parameters automatically).
func WithParams(p Params) Option {
	return func(s *Session) error {
		s.params = p
		return nil
	}
}

// WithMetric sets the ground metric used by SyncResult.EMD diagnostics.
// Default: L1, the paper's primary metric.
func WithMetric(m Metric) Option {
	return func(s *Session) error {
		if m == nil {
			return errors.New("robustset: nil metric")
		}
		s.metric = m
		return nil
	}
}

// WithStatsSink registers a callback that receives the connection's
// transfer accounting after every Serve, Fetch or Sync — including failed
// ones — for metrics pipelines.
func WithStatsSink(sink func(TransferStats)) Option {
	return func(s *Session) error {
		s.statsSink = sink
		return nil
	}
}

// WithSessionTrace enables session tracing on the fetching side: every
// Fetch records phase spans and per-frame-type wire-byte attribution and
// hands the completed SessionTrace to sink — including failed fetches,
// whose trace carries the error. The sink runs synchronously at the end
// of the fetch; tracing costs nothing on sessions without the option.
func WithSessionTrace(sink func(*SessionTrace)) Option {
	return func(s *Session) error {
		if sink == nil {
			return errors.New("robustset: nil trace sink")
		}
		s.traceSink = sink
		return nil
	}
}

// WithMaxMessageSize caps a single protocol message in bytes, in both
// directions: larger local sends fail, and a peer announcing a larger
// frame is treated as corrupt rather than trusted with the allocation.
// 0 (the default) means the transport-wide limit (256 MiB).
func WithMaxMessageSize(n int) Option {
	return func(s *Session) error {
		if n < 0 || n > transport.MaxFrameSize {
			return fmt.Errorf("robustset: max message size %d outside [0,%d]", n, transport.MaxFrameSize)
		}
		s.maxMsg = n
		return nil
	}
}

// WithDataset makes Fetch open the connection with a server handshake
// naming the given dataset (see Server). The server replies with the
// dataset's parameters, which the fetch adopts — WithParams is then
// unnecessary on the client. The option applies to Fetch only: Serve and
// Sync are peer roles with no server on the other end, and return an
// error on a session configured with a dataset.
func WithDataset(name string) Option {
	return func(s *Session) error {
		if name == "" {
			return errors.New("robustset: empty dataset name")
		}
		if len(name) > protocol.MaxDatasetName {
			return fmt.Errorf("robustset: dataset name longer than %d bytes", protocol.MaxDatasetName)
		}
		s.dataset = name
		return nil
	}
}

// NewSession builds a Session running the given strategy.
func NewSession(strategy Strategy, opts ...Option) (*Session, error) {
	if strategy == nil {
		return nil, errors.New("robustset: nil strategy")
	}
	if v, ok := strategy.(validatingStrategy); ok {
		if err := v.validate(); err != nil {
			return nil, err
		}
	}
	s := &Session{strategy: strategy, metric: L1}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Strategy returns the session's strategy.
func (s *Session) Strategy() Strategy { return s.strategy }

// Params returns the session's configured parameters.
func (s *Session) Params() Params { return s.params }

func (s *Session) newTransport(conn net.Conn) transport.Transport {
	return transport.NewConnLimit(conn, s.maxMsg)
}

func (s *Session) emit(st TransferStats) {
	if s.statsSink != nil {
		s.statsSink(st)
	}
}

// errDatasetFetchOnly reports WithDataset misuse: the handshake it
// enables exists only on the fetching side (the Server answers it).
var errDatasetFetchOnly = errors.New("robustset: WithDataset applies to Fetch only; Serve and Sync speak the bare protocol")

// Serve runs the serving (Alice) side of the session's strategy over
// conn: it answers exactly one fetching peer and returns the wire
// accounting. The caller owns conn and closes it afterwards.
func (s *Session) Serve(ctx context.Context, conn net.Conn, pts []Point) (TransferStats, error) {
	if s.dataset != "" {
		return TransferStats{}, errDatasetFetchOnly
	}
	t := s.newTransport(conn)
	err := s.strategy.serve(ctx, t, s.params, pts)
	st := t.Stats()
	s.emit(st)
	return st, err
}

// ServeSketch is Serve for the Robust strategy with an already-built
// sketch — the path used by servers that maintain a sketch incrementally
// (Maintainer) instead of re-encoding per session.
func (s *Session) ServeSketch(ctx context.Context, conn net.Conn, sk *Sketch) (TransferStats, error) {
	if s.dataset != "" {
		return TransferStats{}, errDatasetFetchOnly
	}
	if _, ok := s.strategy.(Robust); !ok {
		return TransferStats{}, fmt.Errorf("robustset: ServeSketch requires the Robust strategy, session uses %s", s.strategy.Name())
	}
	t := s.newTransport(conn)
	err := protocol.RunPushSketchAlice(ctx, t, sk)
	st := t.Stats()
	s.emit(st)
	return st, err
}

// FetchAddr dials addr over TCP and runs Fetch on the connection,
// closing it afterwards. The context bounds the dial and the exchange
// together — the plumbing a replication round driver wants, where one
// deadline covers connect-through-reconcile per peer session.
func (s *Session) FetchAddr(ctx context.Context, addr string, local []Point) (*SyncResult, TransferStats, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, TransferStats{}, err
	}
	defer conn.Close()
	return s.Fetch(ctx, conn, local)
}

// Fetch runs the fetching (Bob) side over conn: it reconciles local
// against the serving peer's data and returns the result with the wire
// accounting. With WithDataset it first performs the server handshake
// and adopts the dataset's parameters.
func (s *Session) Fetch(ctx context.Context, conn net.Conn, local []Point) (*SyncResult, TransferStats, error) {
	t := s.newTransport(conn)
	res, err := s.fetchOver(ctx, t, local)
	st := t.Stats()
	s.emit(st)
	return res, st, err
}

func (s *Session) fetchOver(ctx context.Context, t transport.Transport, local []Point) (res *SyncResult, err error) {
	p := s.params
	strat := s.strategy
	var tr *trace.Trace
	if s.traceSink != nil {
		tr = trace.New("client")
		tr.Label(s.dataset, strat.Name(), "")
		ctx = trace.NewContext(ctx, tr)
		defer func() {
			tr.Finish(err)
			s.traceSink(tr.Snapshot())
		}()
	} else {
		// An ambient trace (e.g. a replicator round's per-session child)
		// still gets the handshake span and the negotiated-strategy label.
		tr = trace.FromContext(ctx)
	}
	if s.dataset != "" {
		hello := tr.Begin("hello")
		var feats byte
		p, feats, err = protocol.RunHelloClientExt(ctx, t, protocol.Hello{
			Strategy: strat.code(),
			Dataset:  s.dataset,
			Config:   strat.helloConfig(),
		})
		if err != nil {
			return nil, err
		}
		if r, ok := strat.(Rateless); ok && feats&protocol.FeatureRateless == 0 {
			// Legacy server: it accepted the session but did not echo the
			// rateless feature, so it will serve the doubling path.
			strat = r.fallback()
			// The trace must name the strategy actually spoken on the wire.
			tr.Label("", strat.Name(), "")
		}
		if r, ok := strat.(Ranged); ok && feats&protocol.FeatureRanged == 0 {
			// Legacy server: no ranged feature echoed, so it will serve the
			// one-shot robust push.
			strat = r.fallback()
			tr.Label("", strat.Name(), "")
		}
		hello.End(trace.I("features", int64(feats)))
	}
	res, err = strat.fetch(ctx, t, p, local)
	if err != nil {
		return nil, err
	}
	if res.Robust != nil {
		// The robust one-shot path learns its parameters from the sketch
		// itself, which is authoritative even peer-to-peer.
		res.Params = res.Robust.Params
	} else {
		res.Params = p
	}
	res.metric = s.metric
	return res, nil
}

// ErrTwoWayUnsupported is returned by Session.Sync for strategies without
// a symmetric mode.
var ErrTwoWayUnsupported = errors.New("robustset: strategy does not support two-way sync")

// Sync runs the symmetric two-way mode: both peers call Sync on the same
// strategy, each pushing its own summary and reconciling against the
// other's. Only the Robust strategy supports it; as the paper notes,
// two-way robust reconciliation leaves each party close (in EMD) to the
// other's original data rather than converging the sets to equality.
func (s *Session) Sync(ctx context.Context, conn net.Conn, pts []Point) (*SyncResult, TransferStats, error) {
	if s.dataset != "" {
		return nil, TransferStats{}, errDatasetFetchOnly
	}
	tw, ok := s.strategy.(twoWayStrategy)
	if !ok {
		return nil, TransferStats{}, fmt.Errorf("%w: %s", ErrTwoWayUnsupported, s.strategy.Name())
	}
	t := s.newTransport(conn)
	res, err := tw.sync(ctx, t, s.params, pts)
	st := t.Stats()
	s.emit(st)
	if err != nil {
		return nil, st, err
	}
	res.Params = res.Robust.Params
	res.metric = s.metric
	return res, st, nil
}

// Strategies returns one value of every built-in strategy, in a stable
// order — handy for tools and tests that iterate over all protocols.
func Strategies() []Strategy {
	return []Strategy{Robust{}, Adaptive{}, ExactIBLT{}, Rateless{}, Ranged{}, CPI{}, Naive{}}
}
