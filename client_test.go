package robustset_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"robustset"
)

// publishMany publishes n small datasets named "ds/<i>" and returns
// their serving sets.
func publishMany(t *testing.T, srv *robustset.Server, n int, seed uint64) map[string][]robustset.Point {
	t.Helper()
	sets := make(map[string][]robustset.Point, n)
	for i := 0; i < n; i++ {
		alice, _ := deterministicPair(seed+uint64(i), 120, 4, 2)
		name := fmt.Sprintf("ds/%d", i)
		params := robustset.Params{Universe: testU, Seed: 300 + uint64(i), DiffBudget: 8}
		if _, err := srv.Publish(name, params, alice); err != nil {
			t.Fatal(err)
		}
		sets[name] = alice
	}
	return sets
}

// TestClientMuxConcurrentSessions is the tentpole acceptance test: 16
// datasets reconcile as concurrent pipelined streams of ONE connection,
// and every result is byte-identical to a serial connection-per-session
// run of the same strategy.
func TestClientMuxConcurrentSessions(t *testing.T) {
	const datasets = 16
	m := robustset.NewMetrics()
	srv := robustset.NewServer(WithTestLogger(t), robustset.WithServerMetrics(m))
	sets := publishMany(t, srv, datasets, 7000)
	addr := startServer(t, srv)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl, err := robustset.DialClient(ctx, addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if !cl.Muxed() {
		t.Fatal("client did not negotiate mux against a mux-capable server")
	}

	// Serial reference runs over plain single-session connections.
	serial := make(map[string][]robustset.Point, datasets)
	for name := range sets {
		sess, err := robustset.NewSession(robustset.ExactIBLT{}, robustset.WithDataset(name))
		if err != nil {
			t.Fatal(err)
		}
		_, bob := deterministicPair(8000, 120, 4, 2)
		res, _, err := sess.FetchAddr(ctx, addr.String(), bob)
		if err != nil {
			t.Fatalf("serial fetch %q: %v", name, err)
		}
		serial[name] = res.SPrime
	}

	// Concurrent mux run: same datasets, same local sets, one connection.
	var wg sync.WaitGroup
	results := make(map[string][]robustset.Point, datasets)
	var resMu sync.Mutex
	errCh := make(chan error, datasets)
	for name := range sets {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			cs, err := cl.Session(name, robustset.ExactIBLT{})
			if err != nil {
				errCh <- err
				return
			}
			_, bob := deterministicPair(8000, 120, 4, 2)
			res, stats, err := cs.Fetch(ctx, bob)
			if err != nil {
				errCh <- fmt.Errorf("mux fetch %q: %w", name, err)
				return
			}
			if stats.BytesSent == 0 || stats.BytesRecv == 0 {
				errCh <- fmt.Errorf("mux fetch %q: empty per-stream accounting %+v", name, stats)
				return
			}
			resMu.Lock()
			results[name] = res.SPrime
			resMu.Unlock()
		}(name)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for name, want := range serial {
		if !robustset.EqualMultisets(results[name], want) {
			t.Fatalf("dataset %q: mux result differs from serial run", name)
		}
		if !robustset.EqualMultisets(results[name], sets[name]) {
			t.Fatalf("dataset %q: result is not the server's set", name)
		}
	}

	snap := m.Snapshot()
	if snap["server_mux_conns_total"] != 1 {
		t.Fatalf("mux conns: %d, want 1", snap["server_mux_conns_total"])
	}
	if snap["server_mux_streams_total"] != datasets {
		t.Fatalf("mux streams: %d, want %d", snap["server_mux_streams_total"], datasets)
	}
	if snap["server_mux_streams_per_conn_max"] != datasets {
		t.Fatalf("streams per conn max: %d, want %d", snap["server_mux_streams_per_conn_max"], datasets)
	}
	if snap["mux_decode_failures_total"] != 0 {
		t.Fatalf("decode failures: %d", snap["mux_decode_failures_total"])
	}
	if snap["server_sessions_total"] != datasets+int64(len(serial)) {
		t.Fatalf("sessions: %d, want %d", snap["server_sessions_total"], 2*datasets)
	}
	if got := snap["server_sessions_total:ds/0"]; got != 2 {
		t.Fatalf("per-dataset sessions ds/0: %d, want 2", got)
	}
	if cl.Sessions() != datasets {
		t.Fatalf("client sessions: %d, want %d", cl.Sessions(), datasets)
	}
}

// TestClientLegacyServerDowngrade covers the mux-client → legacy-server
// direction: a server with multiplexing disabled behaves like a pre-mux
// build, and the client transparently falls back to
// connection-per-session.
func TestClientLegacyServerDowngrade(t *testing.T) {
	srv := robustset.NewServer(WithTestLogger(t), robustset.WithServerNoMux())
	sets := publishMany(t, srv, 2, 9000)
	addr := startServer(t, srv)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl, err := robustset.DialClient(ctx, addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Muxed() {
		t.Fatal("client claims mux against a mux-disabled server")
	}
	for name, want := range sets {
		cs, err := cl.Session(name, robustset.ExactIBLT{})
		if err != nil {
			t.Fatal(err)
		}
		_, bob := deterministicPair(9100, 120, 4, 2)
		res, stats, err := cs.Fetch(ctx, bob)
		if err != nil {
			t.Fatalf("legacy-mode fetch %q: %v", name, err)
		}
		if !robustset.EqualMultisets(res.SPrime, want) {
			t.Fatalf("legacy-mode fetch %q: wrong result", name)
		}
		if stats.Total() == 0 {
			t.Fatalf("legacy-mode fetch %q: empty accounting", name)
		}
	}
}

// TestLegacyClientOnMuxListener covers the other direction: a plain
// pre-mux client (ordinary Session.FetchAddr) against a mux-capable
// listener gets a normal single-session connection.
func TestLegacyClientOnMuxListener(t *testing.T) {
	m := robustset.NewMetrics()
	srv := robustset.NewServer(WithTestLogger(t), robustset.WithServerMetrics(m))
	sets := publishMany(t, srv, 1, 9500)
	addr := startServer(t, srv)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	sess, err := robustset.NewSession(robustset.Rateless{}, robustset.WithDataset("ds/0"))
	if err != nil {
		t.Fatal(err)
	}
	_, bob := deterministicPair(9600, 120, 4, 2)
	res, _, err := sess.FetchAddr(ctx, addr.String(), bob)
	if err != nil {
		t.Fatal(err)
	}
	if !robustset.EqualMultisets(res.SPrime, sets["ds/0"]) {
		t.Fatal("legacy client got wrong result from mux listener")
	}
	snap := m.Snapshot()
	if snap["server_mux_conns_total"] != 0 || snap["server_sessions_total"] != 1 {
		t.Fatalf("legacy client miscounted: %+v", snap)
	}
}

// TestClientStreamResetLeavesSiblings cancels one session mid-transfer
// (which resets its stream) while sibling sessions on the same
// connection keep going, and then runs another session on the same
// connection to prove it survived.
func TestClientStreamResetLeavesSiblings(t *testing.T) {
	m := robustset.NewMetrics()
	srv := robustset.NewServer(WithTestLogger(t), robustset.WithServerMetrics(m))
	// A large dataset so the doomed rateless session is still mid-CELLS
	// when it is cancelled: after the strata round trip the serving side
	// has tens of milliseconds of cell building and streaming left.
	alice, bob := deterministicPair(777, 40000, 2000, 0)
	params := robustset.Params{Universe: testU, Seed: 31, DiffBudget: 2500}
	if _, err := srv.Publish("big", params, alice); err != nil {
		t.Fatal(err)
	}
	small := publishMany(t, srv, 4, 600)
	addr := startServer(t, srv)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl, err := robustset.DialClient(ctx, addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Doomed session: cancel its context almost immediately.
	doomCtx, doomCancel := context.WithCancel(ctx)
	doomed, err := cl.Session("big", robustset.Rateless{})
	if err != nil {
		t.Fatal(err)
	}
	doomErr := make(chan error, 1)
	go func() {
		_, _, err := doomed.Fetch(doomCtx, bob)
		doomErr <- err
	}()
	// Cancel as soon as the session has bytes in flight — mid-protocol,
	// well before the cell stream can finish.
	deadline := time.Now().Add(5 * time.Second)
	for cl.Stats().BytesRecv == 0 && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}
	doomCancel()
	if err := <-doomErr; err == nil {
		t.Fatal("cancelled fetch succeeded")
	}

	// Siblings on the same connection, concurrent with the wreckage.
	var wg sync.WaitGroup
	errCh := make(chan error, len(small))
	for name, want := range small {
		wg.Add(1)
		go func(name string, want []robustset.Point) {
			defer wg.Done()
			cs, err := cl.Session(name, robustset.ExactIBLT{})
			if err != nil {
				errCh <- err
				return
			}
			_, local := deterministicPair(650, 120, 4, 2)
			res, _, err := cs.Fetch(ctx, local)
			if err != nil {
				errCh <- fmt.Errorf("sibling %q after reset: %w", name, err)
				return
			}
			if !robustset.EqualMultisets(res.SPrime, want) {
				errCh <- fmt.Errorf("sibling %q: wrong result after reset", name)
			}
		}(name, want)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if !cl.Muxed() {
		t.Fatal("connection did not survive the stream reset")
	}
	if snap := m.Snapshot(); snap["server_mux_conns_total"] != 1 {
		t.Fatalf("reset forced a reconnect: %d mux conns", snap["server_mux_conns_total"])
	}
}

// TestClientRedialsAfterConnLoss kills the server between fetches; the
// client must redial and renegotiate on the next Fetch against a
// replacement server on the same address.
func TestClientRedialsAfterConnLoss(t *testing.T) {
	alice, bob := deterministicPair(50, 150, 4, 2)
	params := robustset.Params{Universe: testU, Seed: 11, DiffBudget: 8}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv1 := robustset.NewServer(WithTestLogger(t))
	if _, err := srv1.Publish("d", params, alice); err != nil {
		t.Fatal(err)
	}
	done1 := make(chan error, 1)
	go func() { done1 <- srv1.Serve(ln) }()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl, err := robustset.DialClient(ctx, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cs, err := cl.Session("d", robustset.ExactIBLT{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cs.Fetch(ctx, bob); err != nil {
		t.Fatalf("first fetch: %v", err)
	}

	srv1.Close()
	<-done1

	// Replacement server on the same port.
	ln2, err := net.Listen("tcp", ln.Addr().String())
	if err != nil {
		t.Skipf("could not rebind %v: %v", ln.Addr(), err)
	}
	srv2 := robustset.NewServer(WithTestLogger(t))
	if _, err := srv2.Publish("d", params, alice); err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- srv2.Serve(ln2) }()
	defer func() { srv2.Close(); <-done2 }()

	res, _, err := cs.Fetch(ctx, bob)
	if err != nil {
		t.Fatalf("fetch after conn loss: %v", err)
	}
	if !robustset.EqualMultisets(res.SPrime, alice) {
		t.Fatal("post-redial fetch returned wrong result")
	}
}

// TestFetchAddrClosesConnOnHandshakeFailure is the leak-regression test
// for the dial paths: when the handshake fails — a relayed rejection or
// an injected torn/garbage reply — the dialed connection must be closed
// promptly. The serving side watches for the close; a leaked conn shows
// up as its read timing out instead of returning EOF.
func TestFetchAddrClosesConnOnHandshakeFailure(t *testing.T) {
	reason := []byte("robustset: unknown dataset \"nope\"")
	faults := []struct {
		name  string
		reply []byte
	}{
		// MsgError frame: u32 length || 0x7f || reason.
		{"remote-rejection", append([]byte{byte(len(reason) + 1), 0, 0, 0, 0x7f}, reason...)},
		// A torn frame: the header announces 64 bytes, two arrive.
		{"torn-accept", []byte{64, 0, 0, 0, 0x11, 0x01}},
		// Garbage that parses as a frame but not as any message.
		{"garbage-frame", []byte{3, 0, 0, 0, 0xEE, 0xAA, 0xBB}},
	}
	for _, fault := range faults {
		t.Run(fault.name, func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()

			srvDone := make(chan error, 1)
			go func() {
				conn, err := ln.Accept()
				if err != nil {
					srvDone <- err
					return
				}
				defer conn.Close()
				buf := make([]byte, 4096)
				if _, err := conn.Read(buf); err != nil { // consume the hello
					srvDone <- fmt.Errorf("read hello: %w", err)
					return
				}
				if _, err := conn.Write(fault.reply); err != nil {
					srvDone <- err
					return
				}
				// Drain until the client hangs up (or a timeout proves the
				// conn leaked). The torn-accept case sends a short frame, so
				// the client may still be mid-read when we get here.
				conn.SetReadDeadline(time.Now().Add(5 * time.Second))
				for {
					if _, err = conn.Read(buf); err != nil {
						break
					}
				}
				srvDone <- err
			}()

			sess, err := robustset.NewSession(robustset.ExactIBLT{}, robustset.WithDataset("nope"))
			if err != nil {
				t.Fatal(err)
			}
			// Short deadline: the torn-accept fault stalls the client
			// mid-frame until the context expires, and the close-on-error
			// path must run then too.
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_, _, err = sess.FetchAddr(ctx, ln.Addr().String(), nil)
			if err == nil {
				t.Fatal("fetch against faulty server succeeded")
			}
			// The serving side must see the connection closed (io.EOF), not
			// a read timeout — that is the difference between a closed and
			// a leaked conn.
			select {
			case err := <-srvDone:
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					t.Fatal("server read timed out: FetchAddr leaked the connection")
				}
			case <-time.After(10 * time.Second):
				t.Fatal("server never observed the connection closing")
			}
		})
	}
}

// TestClientBackpressure bounds in-flight streams at 2 and runs 8
// sessions; all succeed, and the client never holds more than 2 slots.
func TestClientBackpressure(t *testing.T) {
	srv := robustset.NewServer(WithTestLogger(t))
	sets := publishMany(t, srv, 8, 1100)
	addr := startServer(t, srv)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl, err := robustset.DialClient(ctx, addr.String(), robustset.WithClientMaxStreams(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, len(sets))
	for name, want := range sets {
		wg.Add(1)
		go func(name string, want []robustset.Point) {
			defer wg.Done()
			cs, err := cl.Session(name, robustset.Robust{})
			if err != nil {
				errCh <- err
				return
			}
			_, local := deterministicPair(1200, 120, 4, 2)
			res, _, err := cs.Fetch(ctx, local)
			if err != nil {
				errCh <- fmt.Errorf("%q: %w", name, err)
				return
			}
			if res == nil || len(res.SPrime) == 0 {
				errCh <- fmt.Errorf("%q: empty result", name)
			}
			_ = want
		}(name, want)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestServerShutdownDrainsMuxStreams verifies graceful shutdown with a
// live multiplexed connection: in-flight sessions finish, new streams
// are refused, and Shutdown returns without forcing.
func TestServerShutdownDrainsMuxStreams(t *testing.T) {
	srv := robustset.NewServer(WithTestLogger(t))
	sets := publishMany(t, srv, 1, 1300)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl, err := robustset.DialClient(ctx, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cs, err := cl.Session("ds/0", robustset.ExactIBLT{})
	if err != nil {
		t.Fatal(err)
	}
	_, bob := deterministicPair(1400, 120, 4, 2)
	if res, _, err := cs.Fetch(ctx, bob); err != nil || !robustset.EqualMultisets(res.SPrime, sets["ds/0"]) {
		t.Fatalf("pre-shutdown fetch: %v", err)
	}

	shCtx, shCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shCancel()
	if err := srv.Shutdown(shCtx); err != nil {
		t.Fatalf("graceful shutdown with idle mux conn: %v", err)
	}
	if err := <-serveDone; !errors.Is(err, robustset.ErrServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}
	// The drained connection is dead; a new fetch must fail (no server).
	if _, _, err := cs.Fetch(ctx, bob); err == nil {
		t.Fatal("fetch succeeded against a shut-down server")
	}
}
