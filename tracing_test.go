package robustset_test

// Observability integration tests for session tracing: the wire-byte
// attribution contract (per-frame-type bytes sum exactly to the
// session's transfer accounting, for every strategy), the server-side
// capture pipeline (/metrics Prometheus text covering every registered
// family, /debug/traces slow capture, trace-derived metric families),
// and the replicator's round → peer-session trace tree.

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"robustset"
	"robustset/internal/metrics"
)

// fetchTraced runs one traced plain-connection session against addr and
// returns the result, the transfer accounting and the captured trace.
func fetchTraced(t *testing.T, addr string, dataset string, strat robustset.Strategy,
	local []robustset.Point) (*robustset.SyncResult, robustset.TransferStats, *robustset.SessionTrace) {
	t.Helper()
	var captured *robustset.SessionTrace
	sess, err := robustset.NewSession(strat,
		robustset.WithDataset(dataset),
		robustset.WithSessionTrace(func(st *robustset.SessionTrace) { captured = st }))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, stats, err := sess.FetchAddr(ctx, addr, local)
	if err != nil {
		t.Fatalf("%s: %v", strat.Name(), err)
	}
	if captured == nil {
		t.Fatalf("%s: no trace delivered to the sink", strat.Name())
	}
	return res, stats, captured
}

// TestTraceByteAttributionSums is the acceptance assertion: for every
// strategy, the traced session's per-frame-type wire table must sum —
// bytes and message counts, per direction — to exactly the transfer
// accounting the transport reports. Nothing on the wire goes
// unattributed, and nothing is double-charged.
func TestTraceByteAttributionSums(t *testing.T) {
	srv := robustset.NewServer(WithTestLogger(t))
	sets := publishMany(t, srv, 1, 8900)
	addr := startServer(t, srv)
	var name string
	for n := range sets {
		name = n
	}
	_, bob := deterministicPair(8900, 120, 4, 2)

	for _, strat := range []robustset.Strategy{
		robustset.Robust{}, robustset.Adaptive{}, robustset.ExactIBLT{},
		robustset.Rateless{}, robustset.CPI{}, robustset.Naive{},
	} {
		local := bob
		if _, ok := strat.(robustset.CPI); ok {
			// CPI's sketch capacity is exact, not estimated: give it a
			// small known difference instead of the noisy pair.
			local = sets[name][4:]
		}
		res, stats, snap := fetchTraced(t, addr.String(), name, strat, local)
		if len(res.SPrime) != len(sets[name]) {
			t.Errorf("%s: result has %d points, want %d", strat.Name(), len(res.SPrime), len(sets[name]))
		}
		var inBytes, outBytes, inMsgs, outMsgs int64
		for _, f := range snap.Frames {
			switch f.Dir {
			case "in":
				inBytes += f.Bytes
				inMsgs += f.Msgs
			case "out":
				outBytes += f.Bytes
				outMsgs += f.Msgs
			default:
				t.Errorf("%s: frame row %s has direction %q", strat.Name(), f.Type, f.Dir)
			}
		}
		if inBytes != snap.BytesIn || outBytes != snap.BytesOut {
			t.Errorf("%s: frame rows sum to in=%d out=%d, snapshot totals in=%d out=%d",
				strat.Name(), inBytes, outBytes, snap.BytesIn, snap.BytesOut)
		}
		if snap.BytesIn != stats.BytesRecv || snap.BytesOut != stats.BytesSent {
			t.Errorf("%s: trace attributes in=%d out=%d bytes, transport counted recv=%d sent=%d",
				strat.Name(), snap.BytesIn, snap.BytesOut, stats.BytesRecv, stats.BytesSent)
		}
		if total := snap.TotalBytes(); total != stats.Total() {
			t.Errorf("%s: trace total %d bytes != transfer total %d", strat.Name(), total, stats.Total())
		}
		if inMsgs != stats.MsgsRecv || outMsgs != stats.MsgsSent {
			t.Errorf("%s: trace attributes %d/%d msgs, transport counted %d/%d",
				strat.Name(), inMsgs, outMsgs, stats.MsgsRecv, stats.MsgsSent)
		}
		if snap.Strategy != strat.Name() {
			t.Errorf("strategy label %q, want %q", snap.Strategy, strat.Name())
		}
		if snap.Dataset != name {
			t.Errorf("%s: dataset label %q, want %q", strat.Name(), snap.Dataset, name)
		}
		var hello bool
		for _, sp := range snap.Spans {
			hello = hello || sp.Name == "hello"
		}
		if !hello {
			t.Errorf("%s: trace has no hello span (spans: %+v)", strat.Name(), snap.Spans)
		}
	}
}

// TestServerObservabilityEndpoints drives traced traffic through a
// server exposing a debug listener and checks the whole exposition
// surface: /metrics must serve lintable Prometheus text naming every
// registered family (the trace-derived session_* families included),
// and /debug/traces must have captured the sessions the byte-threshold
// policy marks as expensive.
func TestServerObservabilityEndpoints(t *testing.T) {
	m := robustset.NewMetrics()
	tl := robustset.NewTraceLog(robustset.WithByteThreshold(1))
	mln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := robustset.NewServer(WithTestLogger(t), robustset.WithServerMetrics(m),
		robustset.WithServerTracing(tl), robustset.WithServerMetricsListener(mln))
	sets := publishMany(t, srv, 2, 9400)
	addr := startServer(t, srv)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl, err := robustset.DialClient(ctx, addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, bob := deterministicPair(9400, 120, 4, 2)
	for name := range sets {
		for _, strat := range []robustset.Strategy{robustset.Robust{}, robustset.ExactIBLT{}} {
			cs, err := cl.Session(name, strat)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := cs.Fetch(ctx, bob); err != nil {
				t.Fatalf("%s over %s: %v", name, strat.Name(), err)
			}
		}
	}

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + mln.Addr().String() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return body
	}

	// The server folds a session's trace into the registry after the
	// client's Fetch has already returned, so settle until the derived
	// samples appear before asserting on the exposition.
	wanted := []string{
		`session_wire_bytes_total{frame="ACCEPT",dir="out"}`,
		`session_wire_bytes_total{frame="SKETCH",dir="out"}`,
		`session_rounds_total{strategy="exact-iblt"}`,
	}
	var promText string
	deadline := time.Now().Add(5 * time.Second)
	for {
		promText = string(get("/metrics"))
		settled := true
		for _, want := range wanted {
			settled = settled && strings.Contains(promText, want)
		}
		if settled || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := metrics.LintPrometheus(strings.NewReader(promText)); err != nil {
		t.Fatalf("/metrics is not valid Prometheus text: %v", err)
	}
	// Every registered metric must appear: reduce each snapshot key to
	// its family name (strip the label suffix and the histogram summary
	// suffixes) and require the family in the exposition.
	for key := range m.Snapshot() {
		family := key
		if i := strings.IndexByte(family, ':'); i >= 0 {
			family = family[:i]
		}
		for _, suffix := range []string{"_count", "_sum_ns", "_p50_ns", "_p99_ns"} {
			family = strings.TrimSuffix(family, suffix)
		}
		if !strings.Contains(promText, family) {
			t.Errorf("registered metric %q (family %q) missing from /metrics", key, family)
		}
	}
	// The trace-derived families only exist because tracing is on: wire
	// attribution per frame type, and the serving side's round counts.
	for _, want := range wanted {
		if !strings.Contains(promText, want) {
			t.Errorf("/metrics lacks the trace-derived sample %s", want)
		}
	}

	var traces struct {
		Recent []*robustset.SessionTrace `json:"recent"`
		Slow   []*robustset.SessionTrace `json:"slow"`
	}
	if err := json.Unmarshal(get("/debug/traces"), &traces); err != nil {
		t.Fatalf("/debug/traces is not valid JSON: %v", err)
	}
	if len(traces.Slow) == 0 {
		t.Fatal("byte-threshold 1 captured no slow traces")
	}
	for _, snap := range traces.Slow {
		if snap.Role != "server" || snap.Strategy == "" || len(snap.Frames) == 0 {
			t.Errorf("captured trace lacks identity or wire table: role=%q strategy=%q frames=%d",
				snap.Role, snap.Strategy, len(snap.Frames))
		}
	}
}

// TestMetricInventoryDocumented drives every instrumented subsystem —
// traced mux serving, durable storage with churn, a replication round —
// against one shared registry, then requires each live metric family to
// appear in DESIGN.md's metric inventory table. A new metric without a
// documented meaning fails here.
func TestMetricInventoryDocumented(t *testing.T) {
	doc, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	m := robustset.NewMetrics()
	tl := robustset.NewTraceLog()
	srv := robustset.NewServer(WithTestLogger(t), robustset.WithServerMetrics(m),
		robustset.WithServerTracing(tl), robustset.WithServerDataDir(t.TempDir()))
	sets := publishMany(t, srv, 1, 9900)
	alice, bob := deterministicPair(9901, 120, 4, 2)
	d, err := srv.PublishDurable("durable", robustset.Params{Universe: testU, Seed: 7, DiffBudget: 8}, alice)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Add(robustset.Point{1, 2}); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl, err := robustset.DialClient(ctx, addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for name := range sets {
		for _, strat := range []robustset.Strategy{robustset.Robust{}, robustset.ExactIBLT{}} {
			cs, err := cl.Session(name, strat)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := cs.Fetch(ctx, bob); err != nil {
				t.Fatal(err)
			}
		}
	}
	srvB := robustset.NewServer(WithTestLogger(t))
	publishMany(t, srvB, 1, 9950)
	addrB := startServer(t, srvB)
	rep, err := robustset.NewReplicator(srv,
		[]robustset.Peer{{Name: "b", Addr: addrB.String()}},
		robustset.WithReplicatorMetrics(m), robustset.WithReplicatorTracing(robustset.NewTraceLog()))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if _, err := rep.RunRound(ctx); err != nil {
		t.Fatal(err)
	}

	// Settle until the traced sessions' derived families have been
	// folded in (the server records them after the client returns).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := m.Snapshot()["session_wire_bytes_total:frame=SKETCH,dir=out"]; ok {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	families := map[string]bool{}
	for key := range m.Snapshot() {
		family := key
		if i := strings.IndexByte(family, ':'); i >= 0 {
			family = family[:i]
		}
		for _, suffix := range []string{"_count", "_sum_ns", "_p50_ns", "_p99_ns"} {
			family = strings.TrimSuffix(family, suffix)
		}
		families[family] = true
	}
	if len(families) < 15 {
		t.Fatalf("only %d families registered — the exercise stack lost coverage", len(families))
	}
	for family := range families {
		if !strings.Contains(string(doc), "`"+family+"`") {
			t.Errorf("metric family %q is live but undocumented in DESIGN.md's inventory", family)
		}
	}
}

// TestReplicatorTraceTree asserts a replication round records one trace
// tree: the round at the root with its outcome stats, one peer-session
// child per reconciled dataset carrying the negotiated strategy, the
// peer name and its own phase spans and wire attribution.
func TestReplicatorTraceTree(t *testing.T) {
	srvA := robustset.NewServer(WithTestLogger(t))
	setsA := publishMany(t, srvA, 3, 9700)
	srvB := robustset.NewServer(WithTestLogger(t))
	publishMany(t, srvB, 3, 9800) // same names, diverged content
	addrB := startServer(t, srvB)

	tl := robustset.NewTraceLog()
	rep, err := robustset.NewReplicator(srvA,
		[]robustset.Peer{{Name: "b", Addr: addrB.String()}},
		robustset.WithReplicatorTracing(tl))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := rep.RunRound(ctx); err != nil {
		t.Fatal(err)
	}

	recent := tl.Recent()
	if len(recent) != 1 {
		t.Fatalf("trace log holds %d traces after one round, want 1", len(recent))
	}
	round := recent[0]
	if round.Role != "round" {
		t.Fatalf("root trace role %q, want \"round\"", round.Role)
	}
	if n, ok := round.Stat("sessions"); !ok || n != int64(len(setsA)) {
		t.Errorf("round records %d sessions (ok=%v), want %d", n, ok, len(setsA))
	}
	if len(round.Children) != len(setsA) {
		t.Fatalf("round has %d peer-session children, want %d", len(round.Children), len(setsA))
	}
	var childBytes int64
	for _, child := range round.Children {
		if child.Role != "peer-session" {
			t.Errorf("child role %q, want \"peer-session\"", child.Role)
		}
		if child.Peer != "b" {
			t.Errorf("child peer %q, want \"b\"", child.Peer)
		}
		if child.Strategy == "" || child.Dataset == "" {
			t.Errorf("child lacks identity: strategy=%q dataset=%q", child.Strategy, child.Dataset)
		}
		if child.BytesIn+child.BytesOut <= 0 {
			t.Errorf("child %s attributes no wire bytes", child.Dataset)
		}
		var hello bool
		for _, sp := range child.Spans {
			hello = hello || sp.Name == "hello"
		}
		if !hello {
			t.Errorf("child %s has no hello span", child.Dataset)
		}
		childBytes += child.BytesIn + child.BytesOut
	}
	if total := round.TotalBytes(); total < childBytes {
		t.Errorf("round total %d bytes below its children's %d", total, childBytes)
	}
}
