package robustset

import (
	"context"
	"net"

	"robustset/internal/points"
	"robustset/internal/protocol"
	"robustset/internal/transport"
)

// This file keeps the original free-function surface alive as thin
// wrappers over the Session/Strategy API. Each wrapper builds the
// equivalent Session and delegates, so the wire traffic is byte-identical
// to the new surface (a property the parity tests assert) and the
// functions inherit nothing-extra semantics: no handshake, no
// cancellation (context.Background()), one exchange per call.
//
// New code should use NewSession / Server directly.

// TransferStats reports the bytes and messages an endpoint exchanged
// during a connection-oriented reconciliation.
type TransferStats = transport.Stats

// AdaptiveOptions tunes the estimate-first protocol (see PullAdaptive and
// the Adaptive strategy).
type AdaptiveOptions = protocol.EstimateOpts

// ExactConfig parameterizes the exact IBLT synchronization comparator.
type ExactConfig = protocol.ExactConfig

// CPIConfig parameterizes the characteristic-polynomial comparator.
type CPIConfig = protocol.CPIConfig

// mustSession builds the Session a deprecated wrapper delegates to.
// The only constructible failure is a nil strategy, which the wrappers
// never produce.
func mustSession(strategy Strategy, opts ...Option) *Session {
	s, err := NewSession(strategy, opts...)
	if err != nil {
		panic("robustset: " + err.Error())
	}
	return s
}

// Push runs Alice's side of the one-shot robust protocol over conn: one
// message carrying the full multiresolution sketch.
//
// Deprecated: use NewSession(Robust{}, WithParams(p)) and Session.Serve,
// which adds context cancellation and deadlines.
func Push(conn net.Conn, p Params, pts []Point) (TransferStats, error) {
	return mustSession(Robust{}, WithParams(p)).Serve(context.Background(), conn, pts)
}

// PushSketch sends an already-built sketch as the one-shot protocol's
// single message, without re-encoding.
//
// Deprecated: use Session.ServeSketch, or a Server with a published
// dataset, which maintains the sketch for you.
func PushSketch(conn net.Conn, s *Sketch) (TransferStats, error) {
	return mustSession(Robust{}).ServeSketch(context.Background(), conn, s)
}

// Pull runs Bob's side of the one-shot robust protocol over conn.
//
// Deprecated: use NewSession(Robust{}) and Session.Fetch.
func Pull(conn net.Conn, local []Point) (*Result, TransferStats, error) {
	res, stats, err := mustSession(Robust{}).Fetch(context.Background(), conn, local)
	if err != nil {
		return nil, stats, err
	}
	return res.Robust, stats, nil
}

// PushAdaptive serves Alice's side of the estimate-first protocol: tiny
// per-level difference estimators first, then exactly one level table
// sized to the estimated difference (plus retries if Bob asks).
//
// Deprecated: use NewSession(Adaptive{}, WithParams(p)) and Session.Serve.
func PushAdaptive(conn net.Conn, p Params, pts []Point) (TransferStats, error) {
	return mustSession(Adaptive{}, WithParams(p)).Serve(context.Background(), conn, pts)
}

// PullAdaptive drives Bob's side of the estimate-first protocol.
//
// Deprecated: use NewSession(Adaptive{Options: opts}, WithParams(p)) and
// Session.Fetch.
func PullAdaptive(conn net.Conn, p Params, local []Point, opts AdaptiveOptions) (*Result, TransferStats, error) {
	res, stats, err := mustSession(Adaptive{Options: opts}, WithParams(p)).Fetch(context.Background(), conn, local)
	if err != nil {
		return nil, stats, err
	}
	return res.Robust, stats, nil
}

// SyncTwoWay runs the symmetric two-way protocol over conn: both peers
// call this same function, each pushing its sketch and reconciling
// against the other's. Each peer ends close (in EMD) to the other's
// original data; the sets do not converge to equality — use
// Result.Added for union-style ingestion.
//
// Deprecated: use NewSession(Robust{}, WithParams(p)) and Session.Sync.
func SyncTwoWay(conn net.Conn, p Params, pts []Point) (*Result, TransferStats, error) {
	res, stats, err := mustSession(Robust{}, WithParams(p)).Sync(context.Background(), conn, pts)
	if err != nil {
		return nil, stats, err
	}
	return res.Robust, stats, nil
}

// exactStrategy translates an ExactConfig into the equivalent strategy +
// session parameters.
func exactStrategy(cfg ExactConfig) (Strategy, Option) {
	return ExactIBLT{HashCount: cfg.HashCount, Slack: cfg.Slack, MaxRetries: cfg.MaxRetries},
		WithParams(Params{Universe: cfg.Universe, Seed: cfg.Seed})
}

// PushExact serves classic exact IBLT synchronization (difference digest:
// strata estimator + exactly-sized IBLT). Use it when values match
// bit-for-bit; under value noise its cost degenerates to Θ(n).
//
// Deprecated: use NewSession(ExactIBLT{...}, WithParams(...)) and
// Session.Serve.
func PushExact(conn net.Conn, cfg ExactConfig, pts []Point) (TransferStats, error) {
	strat, params := exactStrategy(cfg)
	s, err := NewSession(strat, params)
	if err != nil {
		return TransferStats{}, err
	}
	return s.Serve(context.Background(), conn, pts)
}

// PullExact drives Bob's side of exact IBLT synchronization; on success
// the returned multiset equals Alice's exactly.
//
// Deprecated: use NewSession(ExactIBLT{...}, WithParams(...)) and
// Session.Fetch.
func PullExact(conn net.Conn, cfg ExactConfig, local []Point) ([]Point, TransferStats, error) {
	strat, params := exactStrategy(cfg)
	s, err := NewSession(strat, params)
	if err != nil {
		return nil, TransferStats{}, err
	}
	res, stats, err := s.Fetch(context.Background(), conn, local)
	if err != nil {
		return nil, stats, err
	}
	return res.SPrime, stats, nil
}

// cpiStrategy translates a CPIConfig into the equivalent strategy +
// session parameters.
func cpiStrategy(cfg CPIConfig) (Strategy, Option) {
	return CPI{Capacity: cfg.Capacity},
		WithParams(Params{Universe: cfg.Universe, Seed: cfg.Seed})
}

// PushCPI serves characteristic-polynomial exact synchronization
// (minisketch-class: optimal O(capacity) communication for exact
// differences).
//
// Deprecated: use NewSession(CPI{...}, WithParams(...)) and Session.Serve.
func PushCPI(conn net.Conn, cfg CPIConfig, pts []Point) (TransferStats, error) {
	strat, params := cpiStrategy(cfg)
	s, err := NewSession(strat, params)
	if err != nil {
		return TransferStats{}, err
	}
	return s.Serve(context.Background(), conn, pts)
}

// PullCPI drives Bob's side of characteristic-polynomial sync.
//
// Deprecated: use NewSession(CPI{...}, WithParams(...)) and Session.Fetch.
func PullCPI(conn net.Conn, cfg CPIConfig, local []Point) ([]Point, TransferStats, error) {
	strat, params := cpiStrategy(cfg)
	s, err := NewSession(strat, params)
	if err != nil {
		return nil, TransferStats{}, err
	}
	res, stats, err := s.Fetch(context.Background(), conn, local)
	if err != nil {
		return nil, stats, err
	}
	return res.SPrime, stats, nil
}

// ValidateSet checks that every point belongs to the universe; protocols
// run this implicitly, but callers building pipelines may want the check
// at ingestion time.
func ValidateSet(u Universe, pts []Point) error {
	return u.CheckSet(pts)
}

// ClonePoints deep-copies a point slice.
func ClonePoints(pts []Point) []Point { return points.Clone(pts) }

// EqualMultisets reports whether two point slices contain the same points
// with the same multiplicities.
func EqualMultisets(a, b []Point) bool { return points.EqualMultisets(a, b) }
