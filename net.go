package robustset

import (
	"net"

	"robustset/internal/points"
	"robustset/internal/protocol"
	"robustset/internal/transport"
)

// TransferStats reports the bytes and messages an endpoint exchanged
// during a connection-oriented reconciliation.
type TransferStats = transport.Stats

// AdaptiveOptions tunes the estimate-first protocol (see PullAdaptive).
type AdaptiveOptions = protocol.EstimateOpts

// ExactConfig parameterizes the exact IBLT synchronization comparator.
type ExactConfig = protocol.ExactConfig

// CPIConfig parameterizes the characteristic-polynomial comparator.
type CPIConfig = protocol.CPIConfig

// Push runs Alice's side of the one-shot robust protocol over conn: one
// message carrying the full multiresolution sketch.
func Push(conn net.Conn, p Params, pts []Point) (TransferStats, error) {
	t := transport.NewConn(conn)
	err := protocol.RunPushAlice(t, p, pts)
	return t.Stats(), err
}

// PushSketch sends an already-built sketch as the one-shot protocol's
// single message. Servers that keep a Maintainer per dataset use this to
// serve sessions without re-encoding:
//
//	stats, err := robustset.PushSketch(conn, maintainer.Sketch())
func PushSketch(conn net.Conn, s *Sketch) (TransferStats, error) {
	t := transport.NewConn(conn)
	err := protocol.RunPushSketchAlice(t, s)
	return t.Stats(), err
}

// Pull runs Bob's side of the one-shot robust protocol over conn.
func Pull(conn net.Conn, local []Point) (*Result, TransferStats, error) {
	t := transport.NewConn(conn)
	res, err := protocol.RunPushBob(t, local)
	return res, t.Stats(), err
}

// PushAdaptive serves Alice's side of the estimate-first protocol: tiny
// per-level difference estimators first, then exactly one level table
// sized to the estimated difference (plus retries if Bob asks).
func PushAdaptive(conn net.Conn, p Params, pts []Point) (TransferStats, error) {
	t := transport.NewConn(conn)
	err := protocol.RunEstimateAlice(t, p, pts)
	return t.Stats(), err
}

// PullAdaptive drives Bob's side of the estimate-first protocol.
func PullAdaptive(conn net.Conn, p Params, local []Point, opts AdaptiveOptions) (*Result, TransferStats, error) {
	t := transport.NewConn(conn)
	res, err := protocol.RunEstimateBob(t, p, local, opts)
	return res, t.Stats(), err
}

// SyncTwoWay runs the symmetric two-way protocol over conn: both peers
// call this same function, each pushing its sketch and reconciling
// against the other's. Each peer ends close (in EMD) to the other's
// original data; the sets do not converge to equality — use
// Result.Added for union-style ingestion.
func SyncTwoWay(conn net.Conn, p Params, pts []Point) (*Result, TransferStats, error) {
	t := transport.NewConn(conn)
	res, err := protocol.RunTwoWay(t, p, pts)
	return res, t.Stats(), err
}

// PushExact serves classic exact IBLT synchronization (difference digest:
// strata estimator + exactly-sized IBLT). Use it when values match
// bit-for-bit; under value noise its cost degenerates to Θ(n).
func PushExact(conn net.Conn, cfg ExactConfig, pts []Point) (TransferStats, error) {
	t := transport.NewConn(conn)
	err := protocol.RunExactIBLTAlice(t, cfg, pts)
	return t.Stats(), err
}

// PullExact drives Bob's side of exact IBLT synchronization; on success
// the returned multiset equals Alice's exactly.
func PullExact(conn net.Conn, cfg ExactConfig, local []Point) ([]Point, TransferStats, error) {
	t := transport.NewConn(conn)
	sp, err := protocol.RunExactIBLTBob(t, cfg, local)
	return sp, t.Stats(), err
}

// PushCPI serves characteristic-polynomial exact synchronization
// (minisketch-class: optimal O(capacity) communication for exact
// differences).
func PushCPI(conn net.Conn, cfg CPIConfig, pts []Point) (TransferStats, error) {
	t := transport.NewConn(conn)
	err := protocol.RunCPIAlice(t, cfg, pts)
	return t.Stats(), err
}

// PullCPI drives Bob's side of characteristic-polynomial sync.
func PullCPI(conn net.Conn, cfg CPIConfig, local []Point) ([]Point, TransferStats, error) {
	t := transport.NewConn(conn)
	sp, err := protocol.RunCPIBob(t, cfg, local)
	return sp, t.Stats(), err
}

// ValidateSet checks that every point belongs to the universe; protocols
// run this implicitly, but callers building pipelines may want the check
// at ingestion time.
func ValidateSet(u Universe, pts []Point) error {
	return u.CheckSet(pts)
}

// ClonePoints deep-copies a point slice.
func ClonePoints(pts []Point) []Point { return points.Clone(pts) }

// EqualMultisets reports whether two point slices contain the same points
// with the same multiplicities.
func EqualMultisets(a, b []Point) bool { return points.EqualMultisets(a, b) }
