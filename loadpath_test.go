package robustset_test

// Serving-path hardening tests for the allocation-elimination pass:
// buffer pooling must not change reconciliation results, concurrent
// session traffic must survive Client.Close and Server.Shutdown racing
// it (run under -race in CI), and a full server+replicator teardown
// must release every goroutine it started.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"robustset"
	"robustset/internal/trace"
	"robustset/internal/transport"
)

// canonical renders a point multiset in a stable order so two runs can
// be compared byte-for-byte.
func canonical(pts []robustset.Point) []string {
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = fmt.Sprint(p)
	}
	sort.Strings(out)
	return out
}

// muxFetchAll reconciles every dataset concurrently over one mux
// connection and returns the per-dataset results.
func muxFetchAll(t *testing.T, addr string, sets map[string][]robustset.Point, strat robustset.Strategy) map[string][]string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl, err := robustset.DialClient(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	results := make(map[string][]string, len(sets))
	var mu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, len(sets))
	for name := range sets {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			cs, err := cl.Session(name, strat)
			if err != nil {
				errCh <- fmt.Errorf("%s: %w", name, err)
				return
			}
			_, bob := deterministicPair(8600, 120, 4, 2)
			res, _, err := cs.Fetch(ctx, bob)
			if err != nil {
				errCh <- fmt.Errorf("%s: %w", name, err)
				return
			}
			mu.Lock()
			results[name] = canonical(res.SPrime)
			mu.Unlock()
		}(name)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	return results
}

// TestPoolingOnOffByteIdentical runs the same concurrent multi-dataset
// mux reconciliation with buffer pooling enabled and disabled: the
// recycled-buffer serving path must produce byte-identical results to
// the fresh-allocation path, for both the classic and the rateless
// (cell-streaming) strategies.
func TestPoolingOnOffByteIdentical(t *testing.T) {
	defer transport.SetBufferPooling(true)
	run := func(pooling bool, strat robustset.Strategy) map[string][]string {
		transport.SetBufferPooling(pooling)
		srv := robustset.NewServer(WithTestLogger(t))
		sets := publishMany(t, srv, 8, 7600)
		addr := startServer(t, srv)
		return muxFetchAll(t, addr.String(), sets, strat)
	}
	for _, strat := range []robustset.Strategy{robustset.ExactIBLT{}, robustset.Rateless{}} {
		off := run(false, strat)
		on := run(true, strat)
		if len(on) != len(off) {
			t.Fatalf("%T: pooled run returned %d datasets, unpooled %d", strat, len(on), len(off))
		}
		for name, want := range off {
			got := on[name]
			if len(got) != len(want) {
				t.Fatalf("%T %s: pooled result has %d points, unpooled %d", strat, name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%T %s: results diverge at point %d: pooled %q, unpooled %q", strat, name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSessionsRaceCloseAndShutdown hammers one client with concurrent
// Session+Fetch loops, then tears down the client and the server while
// the load is in flight. Run under -race in CI; errors are expected
// (and must be clean errors), hangs, panics and races are not.
func TestSessionsRaceCloseAndShutdown(t *testing.T) {
	srv := robustset.NewServer(WithTestLogger(t))
	sets := publishMany(t, srv, 4, 8200)
	names := make([]string, 0, len(sets))
	for name := range sets {
		names = append(names, name)
	}
	addr := startServer(t, srv)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl, err := robustset.DialClient(ctx, addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, bob := deterministicPair(8600, 120, 4, 2)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cs, err := cl.Session(names[(w+i)%len(names)], robustset.ExactIBLT{})
				if err != nil {
					return // client closed mid-load: a clean exit
				}
				if _, _, err := cs.Fetch(ctx, bob); err != nil {
					return // server shut down mid-fetch: also clean
				}
			}
		}(w)
	}
	// Let the load build, then tear both ends down while it runs.
	time.Sleep(50 * time.Millisecond)
	var td sync.WaitGroup
	td.Add(2)
	go func() { defer td.Done(); _ = cl.Close() }()
	go func() {
		defer td.Done()
		shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shCancel()
		_ = srv.Shutdown(shCtx)
	}()
	td.Wait()
	close(stop)
	wg.Wait()

	// The closed client must fail fast, not hang. (Session itself is a
	// pure constructor; the closed state surfaces at Fetch.)
	cs, err := cl.Session(names[0], robustset.ExactIBLT{})
	if err != nil {
		t.Fatalf("Session construction failed: %v", err)
	}
	_, bob := deterministicPair(8600, 120, 4, 2)
	if _, _, err := cs.Fetch(ctx, bob); err == nil {
		t.Fatal("Fetch on a closed client succeeded")
	}
}

// waitGoroutinesSettle polls until the goroutine count drops to at most
// limit, failing after a few seconds. Teardown is asynchronous (conn
// handlers observe closed sockets on their next poll), so a settle loop
// is the honest assertion.
func waitGoroutinesSettle(t *testing.T, limit int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudge finalizer-driven cleanup
		n := runtime.NumGoroutine()
		if n <= limit {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("%d goroutines still running, want <= %d\n%s", n, limit, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestShutdownReleasesGoroutines asserts the satellite-3 audit: a full
// stack — server with a metrics debug listener, a mux client, and a
// replicator with cached per-peer clients — torn down cleanly leaves no
// goroutines behind: Server.Shutdown closes the debug endpoint it owns,
// and Replicator.Close closes its cached clients.
func TestShutdownReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	m := robustset.NewMetrics()
	mln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srvA := robustset.NewServer(WithTestLogger(t),
		robustset.WithServerMetrics(m), robustset.WithServerMetricsListener(mln))
	setsA := publishMany(t, srvA, 3, 9000)
	srvB := robustset.NewServer(WithTestLogger(t))
	publishMany(t, srvB, 3, 9000) // same names, slightly different content is fine

	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srvA.Serve(lnA)
	go srvB.Serve(lnB)

	// Drive real traffic through every component that spawns goroutines.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl, err := robustset.DialClient(ctx, lnA.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for name := range setsA {
		cs, err := cl.Session(name, robustset.ExactIBLT{})
		if err != nil {
			t.Fatal(err)
		}
		_, bob := deterministicPair(9300, 120, 4, 2)
		if _, _, err := cs.Fetch(ctx, bob); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := robustset.NewReplicator(srvA,
		[]robustset.Peer{{Name: "b", Addr: lnB.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.RunRound(ctx); err != nil {
		t.Fatal(err)
	}
	// Poll the debug endpoint so the HTTP server holds a keep-alive
	// connection — the leak the audit found.
	httpc := &http.Client{}
	resp, err := httpc.Get("http://" + mln.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Tear everything down; every goroutine the stack spawned must exit.
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	shCtx, shCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shCancel()
	if err := srvA.Shutdown(shCtx); err != nil {
		t.Fatal(err)
	}
	if err := srvB.Shutdown(shCtx); err != nil {
		t.Fatal(err)
	}
	httpc.CloseIdleConnections() // release the client half of the keep-alive conn
	waitGoroutinesSettle(t, before)
}

// TestDisabledTracingZeroAllocs pins the cost contract of the tracing
// instrumentation threaded through the serving path: with no trace in
// the context — the default for every session unless WithSessionTrace
// or WithServerTracing is configured — the exact call sequence the hot
// path executes (context lookup, span begin/end with attributes, stat
// and frame accumulation, labeling) must allocate nothing.
func TestDisabledTracingZeroAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		tr := trace.FromContext(ctx)
		sp := tr.Begin("estimate")
		tr.Label("ds", "robust-oneshot", "")
		tr.Stat("rounds", 1)
		tr.Frame(0x01, true, 512)
		sp.End(trace.I("est", 42), trace.I("capacity", 128))
		if got := trace.NewContext(ctx, nil); got != ctx {
			t.Fatal("NewContext with a nil trace must return ctx unchanged")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %.1f times per session-equivalent, want 0", allocs)
	}
}

// TestTracedSessionsConcurrent hammers a tracing-enabled server with
// concurrent traced client sessions over one mux connection — the
// configuration where trace state (ring inserts, registry folds, span
// appends) is written from many goroutines at once. Run under -race in
// CI; every client sink must still receive a complete trace.
func TestTracedSessionsConcurrent(t *testing.T) {
	tl := robustset.NewTraceLog(robustset.WithByteThreshold(1))
	m := robustset.NewMetrics()
	srv := robustset.NewServer(WithTestLogger(t),
		robustset.WithServerMetrics(m), robustset.WithServerTracing(tl))
	sets := publishMany(t, srv, 4, 8600)
	names := make([]string, 0, len(sets))
	for name := range sets {
		names = append(names, name)
	}
	addr := startServer(t, srv)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl, err := robustset.DialClient(ctx, addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const workers, iters = 8, 4
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	var captured sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, bob := deterministicPair(8600, 120, 4, 2)
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("%d/%d", w, i)
				cs, err := cl.Session(names[(w+i)%len(names)], robustset.ExactIBLT{},
					robustset.WithSessionTrace(func(st *robustset.SessionTrace) {
						captured.Store(key, st)
					}))
				if err != nil {
					errCh <- err
					return
				}
				if _, _, err := cs.Fetch(ctx, bob); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	got := 0
	captured.Range(func(_, v any) bool {
		snap := v.(*robustset.SessionTrace)
		if snap.TotalBytes() <= 0 || len(snap.Spans) == 0 {
			t.Errorf("captured trace is incomplete: bytes=%d spans=%d", snap.TotalBytes(), len(snap.Spans))
		}
		got++
		return true
	})
	if got != workers*iters {
		t.Fatalf("captured %d traces, want %d", got, workers*iters)
	}
}

// benchTracedSession measures one full loopback reconciliation per
// iteration, with and without a client trace sink — the microbenchmark
// behind the load harness's traced-phase overhead gate.
func benchTracedSession(b *testing.B, traced bool) {
	srv := robustset.NewServer()
	defer srv.Close()
	alice, bob := deterministicPair(8600, 120, 4, 2)
	params := robustset.Params{Universe: testU, Seed: 300, DiffBudget: 8}
	if _, err := srv.Publish("ds/0", params, alice); err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	opts := []robustset.Option{robustset.WithDataset("ds/0")}
	if traced {
		opts = append(opts, robustset.WithSessionTrace(func(*robustset.SessionTrace) {}))
	}
	sess, err := robustset.NewSession(robustset.Robust{}, opts...)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sess.FetchAddr(ctx, ln.Addr().String(), bob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionTraceOff(b *testing.B) { benchTracedSession(b, false) }
func BenchmarkSessionTraceOn(b *testing.B)  { benchTracedSession(b, true) }
