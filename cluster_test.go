package robustset_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"robustset"
)

// clusterNode is one in-process replication node: a serving Server plus
// its listen address.
type clusterNode struct {
	srv  *robustset.Server
	addr string
}

// startClusterNode publishes pts (sharded when shards > 1) and begins
// serving on a loopback listener.
func startClusterNode(t *testing.T, params robustset.Params, pts []robustset.Point, shards int) *clusterNode {
	t.Helper()
	srv := robustset.NewServer(WithTestLogger(t))
	var err error
	if shards > 1 {
		_, err = srv.PublishSharded("data", params, pts, shards)
	} else {
		_, err = srv.Publish("data", params, pts)
	}
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)
	return &clusterNode{srv: srv, addr: addr.String()}
}

// snapshotAll gathers a node's full multiset across all its datasets.
func (n *clusterNode) snapshot() []robustset.Point {
	var out []robustset.Point
	for _, name := range n.srv.Datasets() {
		out = append(out, n.srv.Dataset(name).Snapshot()...)
	}
	return out
}

// clusterWorkload builds the acceptance scenario: a shared base multiset
// plus per-node disjoint extras, constructed in disjoint coordinate
// ranges so "extra" is exact, not probabilistic.
func clusterWorkload(nodes, base, extras int) (common []robustset.Point, perNode [][]robustset.Point) {
	next := uint64(12345)
	rnd := func(m int64) int64 {
		next = next*6364136223846793005 + 1442695040888963407
		return int64((next >> 33) % uint64(m))
	}
	for i := 0; i < base; i++ {
		common = append(common, robustset.Point{rnd(8192), rnd(8192)})
	}
	perNode = make([][]robustset.Point, nodes)
	for n := 0; n < nodes; n++ {
		for j := 0; j < extras; j++ {
			perNode[n] = append(perNode[n], robustset.Point{
				int64(10_000 + 1000*n + j), rnd(8192),
			})
		}
	}
	return common, perNode
}

// runConvergence drives one replicator round per node per sweep until
// every node holds the identical multiset, returning the sweep count.
func runConvergence(t *testing.T, nodes []*clusterNode, reps []*robustset.Replicator, maxSweeps int) int {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for sweep := 1; sweep <= maxSweeps; sweep++ {
		for i, rep := range reps {
			if _, err := rep.RunRound(ctx); err != nil {
				t.Fatalf("sweep %d: node %d round: %v", sweep, i, err)
			}
		}
		ref := nodes[0].snapshot()
		equal := true
		for _, n := range nodes[1:] {
			if !robustset.EqualMultisets(ref, n.snapshot()) {
				equal = false
				break
			}
		}
		if equal {
			return sweep
		}
	}
	t.Fatalf("cluster did not converge within %d sweeps", maxSweeps)
	return 0
}

// TestReplicatorThreeNodeConvergence is the acceptance scenario: three
// nodes with disjoint extra points converge to the identical multiset
// within a bounded number of rounds, for the Robust and ExactIBLT
// strategies, on both plain and sharded datasets.
func TestReplicatorThreeNodeConvergence(t *testing.T) {
	strategies := []robustset.Strategy{robustset.Robust{}, robustset.ExactIBLT{}}
	for _, strat := range strategies {
		for _, shards := range []int{1, 4} {
			name := fmt.Sprintf("%s/shards=%d", strat.Name(), shards)
			t.Run(name, func(t *testing.T) {
				params := robustset.Params{Universe: testU, Seed: 55, DiffBudget: 40}
				common, extras := clusterWorkload(3, 120, 6)

				var nodes []*clusterNode
				for i := 0; i < 3; i++ {
					pts := append(robustset.ClonePoints(common), extras[i]...)
					nodes = append(nodes, startClusterNode(t, params, pts, shards))
				}

				var reps []*robustset.Replicator
				for i, n := range nodes {
					var peers []robustset.Peer
					for j, m := range nodes {
						if j != i {
							peers = append(peers, robustset.Peer{Name: fmt.Sprintf("node%d", j), Addr: m.addr})
						}
					}
					rep, err := robustset.NewReplicator(n.srv, peers,
						robustset.WithReplicatorStrategy(strat),
						robustset.WithPeerSelector(robustset.SelectRoundRobin(2)),
						robustset.WithRoundTimeout(time.Minute),
						robustset.WithReplicatorWorkers(4),
					)
					if err != nil {
						t.Fatal(err)
					}
					reps = append(reps, rep)
				}

				sweeps := runConvergence(t, nodes, reps, 5)
				t.Logf("converged in %d sweep(s)", sweeps)

				// The converged multiset is the union: common plus every
				// node's extras.
				want := robustset.ClonePoints(common)
				for _, ex := range extras {
					want = append(want, ex...)
				}
				if got := nodes[0].snapshot(); !robustset.EqualMultisets(got, want) {
					t.Errorf("converged multiset has %d points, want the %d-point union", len(got), len(want))
				}

				// A post-convergence sweep reports Converged on every node
				// and moves only estimator/sketch bytes, no diffs.
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				defer cancel()
				for i, rep := range reps {
					st, err := rep.RunRound(ctx)
					if err != nil {
						t.Fatalf("node %d quiescent round: %v", i, err)
					}
					if !st.Converged || st.Added != 0 || st.Removed != 0 || st.Errors != 0 {
						t.Errorf("node %d quiescent round: %+v, want converged and diff-free", i, st)
					}
					if st.Bytes <= 0 || st.Sessions == 0 {
						t.Errorf("node %d quiescent round carried no traffic accounting: %+v", i, st)
					}
					if rep.Stats().ConvergedStreak < 1 {
						t.Errorf("node %d: converged streak %d", i, rep.Stats().ConvergedStreak)
					}
				}
			})
		}
	}
}

// TestReplicatorBackoff asserts an unreachable peer is retried with
// exponential backoff: it is skipped while backed off and contacted
// again after the delay elapses.
func TestReplicatorBackoff(t *testing.T) {
	params := robustset.Params{Universe: testU, Seed: 5, DiffBudget: 8}
	common, _ := clusterWorkload(1, 40, 0)
	node := startClusterNode(t, params, common, 1)

	// A dead address: listen, grab the port, close.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	rep, err := robustset.NewReplicator(node.srv,
		[]robustset.Peer{{Name: "dead", Addr: deadAddr}},
		robustset.WithPeerBackoff(80*time.Millisecond, 500*time.Millisecond),
		robustset.WithRoundTimeout(5*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	st, err := rep.RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors == 0 || st.Converged {
		t.Fatalf("round against dead peer: %+v, want errors", st)
	}
	// Immediately after the failure the peer is backed off: the next
	// round selects nobody.
	st, err = rep.RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Peers) != 0 || st.Sessions != 0 {
		t.Fatalf("backed-off peer still contacted: %+v", st)
	}
	// After the backoff delay the peer is eligible again.
	time.Sleep(100 * time.Millisecond)
	st, err = rep.RunRound(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Peers) != 1 || st.Errors == 0 {
		t.Fatalf("peer not retried after backoff: %+v", st)
	}
	if got := rep.Stats(); got.Errors < 2 || got.Rounds != 3 {
		t.Errorf("lifetime stats %+v", got)
	}
}

// TestReplicatorSkipsUnknownDataset asserts a peer that does not publish
// one of our datasets is skipped for it — no error, no backoff — while
// the shared dataset still reconciles.
func TestReplicatorSkipsUnknownDataset(t *testing.T) {
	params := robustset.Params{Universe: testU, Seed: 9, DiffBudget: 16}
	common, extras := clusterWorkload(2, 60, 4)

	a := robustset.NewServer(WithTestLogger(t))
	if _, err := a.Publish("shared", params, append(robustset.ClonePoints(common), extras[0]...)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Publish("local-only", params, common); err != nil {
		t.Fatal(err)
	}
	addrA := startServer(t, a)
	_ = addrA

	b := robustset.NewServer(WithTestLogger(t))
	if _, err := b.Publish("shared", params, append(robustset.ClonePoints(common), extras[1]...)); err != nil {
		t.Fatal(err)
	}
	addrB := startServer(t, b)

	rep, err := robustset.NewReplicator(a, []robustset.Peer{{Name: "b", Addr: addrB.String()}},
		robustset.WithReplicatorStrategy(robustset.ExactIBLT{}),
		robustset.WithRoundTimeout(time.Minute),
	)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rep.RunRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 0 {
		t.Fatalf("round reported errors: %+v", st)
	}
	if st.Skipped != 1 {
		t.Errorf("skipped = %d, want 1 (peer lacks %q)", st.Skipped, "local-only")
	}
	if st.Added != len(extras[1]) {
		t.Errorf("added %d points, want %d from the shared dataset", st.Added, len(extras[1]))
	}
	// The peer must not be backed off by the skip.
	st, err = rep.RunRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Peers) != 1 {
		t.Errorf("peer backed off after a dataset skip: %+v", st)
	}
}

// TestReplicatorRejectsApproximateRobustDiff asserts a robust decode
// that only reached a coarse grid level — synthetic cell-center points —
// is never applied to the live dataset: the session errors and the
// multiset stays untouched.
func TestReplicatorRejectsApproximateRobustDiff(t *testing.T) {
	// DiffBudget 2 against a 30-point disjoint diff: the finest levels
	// cannot decode, a coarse one can.
	params := robustset.Params{Universe: testU, Seed: 3, DiffBudget: 2}
	common, extras := clusterWorkload(2, 200, 15)
	a := startClusterNode(t, params, append(robustset.ClonePoints(common), extras[0]...), 1)
	b := startClusterNode(t, params, append(robustset.ClonePoints(common), extras[1]...), 1)

	rep, err := robustset.NewReplicator(a.srv, []robustset.Peer{{Name: "b", Addr: b.addr}},
		robustset.WithReplicatorStrategy(robustset.Robust{}),
		robustset.WithRoundTimeout(time.Minute),
		robustset.WithReplicatorLogger(t.Logf),
	)
	if err != nil {
		t.Fatal(err)
	}
	before := a.snapshot()
	st, err := rep.RunRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors == 0 || st.Added != 0 || st.Converged {
		t.Fatalf("approximate robust diff was applied: %+v", st)
	}
	if !robustset.EqualMultisets(a.snapshot(), before) {
		t.Fatal("dataset mutated by an approximate robust repair")
	}
}

// TestReplicatorAllSkippedNotConverged asserts a round where every
// session was an unknown-dataset skip does not report quiescence.
func TestReplicatorAllSkippedNotConverged(t *testing.T) {
	params := robustset.Params{Universe: testU, Seed: 11, DiffBudget: 8}
	common, _ := clusterWorkload(1, 40, 0)
	a := robustset.NewServer(WithTestLogger(t))
	if _, err := a.Publish("only-here", params, common); err != nil {
		t.Fatal(err)
	}
	_ = startServer(t, a)
	b := robustset.NewServer(WithTestLogger(t))
	if _, err := b.Publish("only-there", params, common); err != nil {
		t.Fatal(err)
	}
	addrB := startServer(t, b)

	rep, err := robustset.NewReplicator(a, []robustset.Peer{{Name: "b", Addr: addrB.String()}},
		robustset.WithRoundTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	st, err := rep.RunRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped != 1 || st.Errors != 0 {
		t.Fatalf("round: %+v, want one skip and no errors", st)
	}
	if st.Converged || rep.Stats().ConvergedStreak != 0 {
		t.Errorf("all-skip round reported convergence: %+v", st)
	}
}

// TestReplicatorMirror asserts mirror mode makes a follower identical to
// its upstream, removals included.
func TestReplicatorMirror(t *testing.T) {
	params := robustset.Params{Universe: testU, Seed: 13, DiffBudget: 32}
	common, extras := clusterWorkload(2, 80, 5)

	upstream := startClusterNode(t, params, append(robustset.ClonePoints(common), extras[0]...), 1)
	follower := startClusterNode(t, params, append(robustset.ClonePoints(common), extras[1]...), 1)

	rep, err := robustset.NewReplicator(follower.srv,
		[]robustset.Peer{{Name: "up", Addr: upstream.addr}},
		robustset.WithReplicatorStrategy(robustset.ExactIBLT{}),
		robustset.WithMirror(),
		robustset.WithRoundTimeout(time.Minute),
	)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rep.RunRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Added != len(extras[0]) || st.Removed != len(extras[1]) {
		t.Errorf("mirror round applied +%d/-%d, want +%d/-%d", st.Added, st.Removed, len(extras[0]), len(extras[1]))
	}
	if !robustset.EqualMultisets(follower.snapshot(), upstream.snapshot()) {
		t.Error("follower does not mirror the upstream")
	}
}

// TestReplicatorRunLoop exercises the continuous Run driver: it must
// converge two nodes in the background and stop cleanly on cancel.
func TestReplicatorRunLoop(t *testing.T) {
	params := robustset.Params{Universe: testU, Seed: 21, DiffBudget: 16}
	common, extras := clusterWorkload(2, 50, 3)
	n0 := startClusterNode(t, params, append(robustset.ClonePoints(common), extras[0]...), 1)
	n1 := startClusterNode(t, params, append(robustset.ClonePoints(common), extras[1]...), 1)

	mk := func(n *clusterNode, peer *clusterNode) *robustset.Replicator {
		rep, err := robustset.NewReplicator(n.srv, []robustset.Peer{{Addr: peer.addr}},
			robustset.WithRoundInterval(20*time.Millisecond),
			robustset.WithRoundTimeout(10*time.Second),
		)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r0, r1 := mk(n0, n1), mk(n1, n0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 2)
	go func() { done <- r0.Run(ctx) }()
	go func() { done <- r1.Run(ctx) }()

	deadline := time.After(30 * time.Second)
	for {
		if robustset.EqualMultisets(n0.snapshot(), n1.snapshot()) &&
			r0.Stats().Rounds > 0 && r1.Stats().Rounds > 0 {
			break
		}
		select {
		case <-deadline:
			cancel()
			t.Fatal("Run loops did not converge the nodes in time")
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	for i := 0; i < 2; i++ {
		if err := <-done; !errors.Is(err, context.Canceled) {
			t.Errorf("Run returned %v, want context.Canceled", err)
		}
	}
}

// TestReplicatorValidation covers constructor and option errors.
func TestReplicatorValidation(t *testing.T) {
	srv := robustset.NewServer()
	defer srv.Close()
	if _, err := robustset.NewReplicator(nil, nil); err == nil {
		t.Error("nil server accepted")
	}
	if _, err := robustset.NewReplicator(srv, nil, robustset.WithReplicatorStrategy(nil)); err == nil {
		t.Error("nil strategy accepted")
	}
	if _, err := robustset.NewReplicator(srv, nil, robustset.WithRoundInterval(0)); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := robustset.NewReplicator(srv, nil, robustset.WithPeerBackoff(time.Second, time.Millisecond)); err == nil {
		t.Error("max < base backoff accepted")
	}
	if _, err := robustset.NewReplicator(srv, nil, robustset.WithReplicatorMaxMessageSize(-1)); err == nil {
		t.Error("negative max message size accepted")
	}
	if _, err := robustset.NewReplicator(srv, []robustset.Peer{{Addr: ""}}); err == nil {
		t.Error("empty peer address accepted")
	}
	if _, err := robustset.NewReplicator(srv, []robustset.Peer{{Addr: "x:1"}, {Addr: "x:1"}}); err == nil {
		t.Error("duplicate peer accepted")
	}
	rep, err := robustset.NewReplicator(srv, []robustset.Peer{{Name: "p", Addr: "x:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.AddPeer(robustset.Peer{Name: "p", Addr: "y:1"}); err == nil {
		t.Error("duplicate peer name accepted by AddPeer")
	}
	if err := rep.RemovePeer("nope"); err == nil {
		t.Error("RemovePeer of unknown peer succeeded")
	}
	if err := rep.RemovePeer("p"); err != nil {
		t.Error(err)
	}
	if got := rep.Peers(); len(got) != 0 {
		t.Errorf("Peers() = %v after removal", got)
	}
}

// TestReplicatorMuxConvergence runs the three-node sharded scenario in
// mux mode: every node keeps ONE connection per peer and reconciles all
// its shards as parallel streams of it. Convergence must match the
// connection-per-session mode, the per-peer connection count must be 1,
// and the server metrics must show the shards riding a single
// connection with zero decode failures.
func TestReplicatorMuxConvergence(t *testing.T) {
	const shards = 8
	params := robustset.Params{Universe: testU, Seed: 55, DiffBudget: 40}
	common, extras := clusterWorkload(3, 120, 6)

	m := robustset.NewMetrics()
	var nodes []*clusterNode
	for i := 0; i < 3; i++ {
		srv := robustset.NewServer(WithTestLogger(t), robustset.WithServerMetrics(m))
		pts := append(robustset.ClonePoints(common), extras[i]...)
		if _, err := srv.PublishSharded("data", params, pts, shards); err != nil {
			t.Fatal(err)
		}
		addr := startServer(t, srv)
		nodes = append(nodes, &clusterNode{srv: srv, addr: addr.String()})
	}

	var reps []*robustset.Replicator
	for i, n := range nodes {
		var peers []robustset.Peer
		for j, o := range nodes {
			if j != i {
				peers = append(peers, robustset.Peer{Name: fmt.Sprintf("node%d", j), Addr: o.addr})
			}
		}
		rep, err := robustset.NewReplicator(n.srv, peers,
			robustset.WithReplicatorStrategy(robustset.ExactIBLT{}),
			robustset.WithPeerSelector(robustset.SelectRoundRobin(2)),
			robustset.WithRoundTimeout(time.Minute),
			robustset.WithReplicatorWorkers(shards),
			robustset.WithReplicatorMux(),
			robustset.WithReplicatorMetrics(m),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer rep.Close()
		reps = append(reps, rep)
	}

	sweeps := runConvergence(t, nodes, reps, 5)
	t.Logf("mux mode converged in %d sweep(s)", sweeps)

	want := robustset.ClonePoints(common)
	for _, ex := range extras {
		want = append(want, ex...)
	}
	if got := nodes[0].snapshot(); !robustset.EqualMultisets(got, want) {
		t.Errorf("converged multiset has %d points, want the %d-point union", len(got), len(want))
	}

	snap := m.Snapshot()
	// 3 replicators × 2 peers each = 6 mux connections, total — every
	// round reuses them, so the count must not grow with sweeps.
	if got := snap["server_mux_conns_total"]; got != 6 {
		t.Errorf("mux connections: %d, want 6 (one per replicator-peer edge)", got)
	}
	if snap["mux_decode_failures_total"] != 0 {
		t.Errorf("decode failures: %d", snap["mux_decode_failures_total"])
	}
	// Each connection carried all 8 shards at least once per sweep.
	if got := snap["server_mux_streams_per_conn_max"]; got < shards {
		t.Errorf("streams per conn max: %d, want >= %d", got, shards)
	}
	if snap["replicator_rounds_total"] < 3 {
		t.Errorf("replicator rounds: %d", snap["replicator_rounds_total"])
	}
	if snap["replicator_round_seconds_count"] != snap["replicator_rounds_total"] {
		t.Errorf("round histogram count %d != rounds %d",
			snap["replicator_round_seconds_count"], snap["replicator_rounds_total"])
	}

	// Closing the replicators tears down the cached connections; a
	// post-close round must fail sessions rather than leak new dials.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	reps[0].Close()
	st, err := reps[0].RunRound(ctx)
	if err != nil {
		t.Fatalf("post-close round: %v", err)
	}
	if st.Errors == 0 {
		t.Errorf("post-close round reported no session errors: %+v", st)
	}
}
