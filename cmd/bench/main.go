// Command bench runs the module's fixed reconciliation workload matrix
// over every built-in strategy and writes the timings to a stable JSON
// schema (BENCH_core.json by default), giving the repository a recorded
// performance trajectory: every change to the hot paths is answerable to
// the numbers in version control.
//
// The matrix is deterministic — workload seeds are a function of the
// cell coordinates — so two runs on the same machine measure the same
// work. Sizes span 1e3–1e6 points (the -quick mode trims the matrix for
// CI smoke runs), crossed with diff rates, point dimensions and the
// built-in strategies. Cells whose protocol cost would be pathological
// for the
// configuration (CPI beyond its capacity budget) are recorded as skipped
// with a reason rather than silently dropped. A cluster scenario then
// stands up a 3-node sharded anti-entropy cluster over loopback TCP and
// records rounds- and bytes-to-convergence for the replication-grade
// strategies (mode "cluster" rows).
//
// A rateless scenario (mode "rateless" rows) pairs the rateless cell
// stream against the exact-IBLT doubling-retry path on the same
// workloads, twice per cell: once with an honest difference (the strata
// estimate lands within its ~2× band) and once with the difference
// skewed entirely into stratum 0, which collapses the estimate to ~0 —
// the estimator's blind spot. Each row records the rateless wire bytes
// (wire_bytes) against the doubling path's (baseline_bytes); the -check
// gate enforces the robustness contract on them: at most 0.6× the
// doubling bytes when the estimate undershoots, at most 1.1× when it is
// accurate.
//
// A ranges scenario (mode "ranges" rows) pins the divide-and-conquer
// strategy's contract in its headline regime — huge sets, tiny
// differences: ranged wire bytes against the exact-IBLT doubling path
// on the identical workload (wire_bytes vs baseline_bytes, the -check
// gate demands ≤0.5×), and the sequential round-trip depth of the same
// reconciliation pipelined as sibling-range mux streams against a
// serial one-probe-per-frame run (rounds vs baseline_rounds, gated at
// ≤0.6× on quick reports).
//
// A recovery scenario (mode "recovery" rows) measures the durable
// storage engine. "replay" rows churn a write-ahead-logged dataset,
// restart it, and record write amplification (the -check gate bounds
// wal_bytes/logical_bytes at 4×) plus recovery time against the log
// tail length the snapshot policy left behind. "rejoin" rows kill one
// node of a converged 3-node durable cluster, let the survivors absorb
// writes, restart it from disk and record the rejoin traffic, gated at
// half a naive full-set transfer — delta-proportional recovery.
//
// Usage:
//
//	bench [-quick] [-out BENCH_core.json]
//	bench -check BENCH_core.json   # validate schema (CI drift gate)
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"robustset"
	"robustset/internal/cpi"
	"robustset/internal/hashutil"
	"robustset/internal/iblt"
	"robustset/internal/points"
	"robustset/internal/ranges"
	"robustset/internal/sketch"
	"robustset/internal/workload"
)

// SchemaVersion identifies the report layout. The -check mode fails on
// any other value, so accidental schema drift breaks CI instead of
// silently forking the trajectory.
const SchemaVersion = 1

// Report is the top-level BENCH_core.json document.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	CPUs          int    `json:"cpus"`
	Quick         bool   `json:"quick"`
	// Modes lists the scenarios this report ran when -mode selected a
	// subset; empty (or absent, as in every full report) means all of
	// them. The -check gates only demand coverage for listed scenarios,
	// so a -mode load smoke report validates without core rows.
	Modes   []string `json:"modes,omitempty"`
	Results []Result `json:"results"`
}

// allModes enumerates the scenarios -mode can select, in run order.
var allModes = []string{"core", "cluster", "rateless", "mux", "ranges", "recovery", "load"}

// Result is one matrix cell.
type Result struct {
	Strategy   string  `json:"strategy"`
	N          int     `json:"n"`
	DiffRate   float64 `json:"diff_rate"`
	Dim        int     `json:"dim"`
	Delta      int64   `json:"delta"`
	Regime     string  `json:"regime"` // "noisy" or "exact"
	Skipped    bool    `json:"skipped,omitempty"`
	SkipReason string  `json:"skip_reason,omitempty"`
	// BuildNS times the strategy's summary construction alone (sketch,
	// table, polynomial evaluations, or set encoding).
	BuildNS int64 `json:"build_ns"`
	// SyncNS is the wall time of a full serve/fetch exchange over an
	// in-process pipe, fetch side.
	SyncNS int64 `json:"sync_ns"`
	// WireBytes is the fetching connection's total traffic (both ways).
	WireBytes int64 `json:"wire_bytes"`
	// ResultSize is |S'_B| after the exchange.
	ResultSize int    `json:"result_size"`
	Err        string `json:"error,omitempty"`

	// Cluster-scenario rows (Mode == "cluster") reuse the fields above —
	// BuildNS is dataset publication across all nodes, SyncNS the wall
	// time to convergence, WireBytes the cluster-wide traffic and
	// ResultSize the converged multiset size — plus the fields below.
	Mode   string `json:"mode,omitempty"`
	Nodes  int    `json:"nodes,omitempty"`
	Shards int    `json:"shards,omitempty"`
	// Rounds is the number of anti-entropy round sweeps (one round per
	// node each) until every node held the identical multiset.
	Rounds int `json:"rounds,omitempty"`

	// Rateless-scenario rows (Mode == "rateless") additionally carry the
	// estimate regime ("accurate" or "undershoot" — the latter forced by
	// a stratum-0-skewed difference) and the doubling-retry path's total
	// wire bytes on the identical workload, the baseline wire_bytes is
	// contracted against.
	Estimate      string `json:"estimate,omitempty"`
	BaselineBytes int64  `json:"baseline_bytes,omitempty"`

	// Ranges-scenario rows (Mode == "ranges") compare the ranged
	// divide-and-conquer strategy's wire bytes against the exact-IBLT
	// doubling path's (baseline_bytes) on an identical tiny-difference
	// workload, plus the sequential round-trip depth of the same
	// reconciliation pipelined as sibling-range mux streams (rounds,
	// mux_streams) against a serial one-probe-per-frame run
	// (baseline_rounds).
	BaselineRounds int `json:"baseline_rounds,omitempty"`

	// Mux-scenario rows (Mode == "mux") compare one multiplexed
	// connection carrying all shard sessions as pipelined streams
	// (wire_bytes, sync_ns) against the same round over one connection
	// per session (baseline_bytes, baseline_ns). Both byte totals
	// include the modeled per-connection TCP cost (connOverheadBytes).
	// MuxStreams is the stream count the server observed on the single
	// connection.
	BaselineNS int64 `json:"baseline_ns,omitempty"`
	MuxStreams int   `json:"mux_streams,omitempty"`

	// Recovery-scenario rows (Mode == "recovery") come in two phases.
	// "replay" rows measure the durable storage engine: records and
	// bytes appended to the WAL during churn (write amplification =
	// wal_bytes / logical_bytes), snapshot bytes, and the restart's
	// recovery time (recovery_ns) against the log tail it replayed
	// (replay_records — shorter with tighter snapshot_every). "rejoin"
	// rows measure a recovered cluster replica catching up through
	// ordinary rateless sessions: wire_bytes is the rejoin traffic,
	// baseline_bytes the naive full-set transfer it must undercut, and
	// rounds the sweeps to full re-convergence.
	Phase         string `json:"phase,omitempty"`
	SnapshotEvery int    `json:"snapshot_every,omitempty"`
	WALRecords    int    `json:"wal_records,omitempty"`
	WALBytes      int64  `json:"wal_bytes,omitempty"`
	SnapshotBytes int64  `json:"snapshot_bytes,omitempty"`
	LogicalBytes  int64  `json:"logical_bytes,omitempty"`
	ReplayRecords int    `json:"replay_records,omitempty"`
	RecoveryNS    int64  `json:"recovery_ns,omitempty"`

	// Load-scenario rows (Mode == "load", see load.go) reuse Phase for
	// the pooling setting ("baseline" / "pooled") and carry the closed
	// loop's shape and its three measurements: throughput, the server's
	// session-latency quantiles, and per-session heap allocations
	// (process-wide MemStats deltas — both ends of every connection).
	Conns           int     `json:"conns,omitempty"`
	Workers         int     `json:"workers,omitempty"`
	Sessions        int64   `json:"sessions,omitempty"`
	SessionsPerSec  float64 `json:"sessions_per_sec,omitempty"`
	P50NS           int64   `json:"p50_ns,omitempty"`
	P99NS           int64   `json:"p99_ns,omitempty"`
	AllocsPerOp     int64   `json:"allocs_per_op,omitempty"`
	AllocBytesPerOp int64   `json:"alloc_bytes_per_op,omitempty"`
}

// cell is one matrix coordinate before execution.
type cell struct {
	strategy robustset.Strategy
	n        int
	rate     float64
	dim      int
	delta    int64
	regime   string
}

// matrix enumerates the workload cells. Quick mode trims sizes and
// dimensions for CI smoke runs while still covering every strategy.
func matrix(quick bool) []cell {
	sizes := []int{1_000, 10_000, 100_000, 1_000_000}
	rates := []float64{0.001, 0.01}
	dims := []struct {
		d     int
		delta int64
	}{{2, 1 << 20}, {3, 1 << 16}}
	if quick {
		sizes = []int{1_000, 10_000}
		rates = []float64{0.01}
		dims = dims[:1]
	}
	var cells []cell
	for _, dm := range dims {
		for _, n := range sizes {
			for _, rate := range rates {
				for _, s := range robustset.Strategies() {
					regime := "noisy"
					switch s.(type) {
					case robustset.ExactIBLT, robustset.Rateless, robustset.Ranged, robustset.CPI:
						// The exact comparators get the regime they are
						// designed for; under value noise their cost is
						// Θ(n) by construction, which would measure the
						// degeneracy, not the implementation.
						regime = "exact"
					}
					cells = append(cells, cell{
						strategy: s, n: n, rate: rate,
						dim: dm.d, delta: dm.delta, regime: regime,
					})
				}
			}
		}
	}
	return cells
}

// outliersFor returns k, the number of genuinely different points.
func outliersFor(n int, rate float64) int {
	k := int(float64(n) * rate)
	if k < 1 {
		k = 1
	}
	return k
}

// cpiCapacityFor mirrors the capacity the CPI strategy needs for the
// exact-regime workload: |AΔB| = 2k plus slack.
func cpiCapacityFor(k int) int { return 4*k + 16 }

// skipReason returns a non-empty reason when the cell's protocol cost
// would be pathological rather than informative.
func skipReason(c cell) string {
	if _, isCPI := c.strategy.(robustset.CPI); isCPI {
		capacity := cpiCapacityFor(outliersFor(c.n, c.rate))
		if capacity > 512 {
			return fmt.Sprintf("cpi capacity %d > 512 (root finding is quadratic in capacity)", capacity)
		}
		if int64(c.n)*int64(capacity) > 1_000_000_000 {
			return fmt.Sprintf("cpi evaluation cost n·m = %d exceeds budget", int64(c.n)*int64(capacity))
		}
	}
	return ""
}

// genWorkload builds the deterministic instance for a cell.
func genWorkload(c cell) (*workload.Instance, error) {
	noise := workload.NoiseUniform
	scale := 4.0
	if c.regime == "exact" {
		noise = workload.NoiseNone
		scale = 0
	}
	seed := uint64(c.n)*1_000_003 ^ uint64(c.dim)<<32 ^ uint64(c.rate*1e6)
	return workload.Generate(workload.Config{
		N:        c.n,
		Universe: points.Universe{Dim: c.dim, Delta: c.delta},
		Outliers: outliersFor(c.n, c.rate),
		Noise:    noise,
		Scale:    scale,
		Seed:     seed,
	})
}

// paramsFor derives the shared session parameters for a cell.
func paramsFor(c cell) robustset.Params {
	return robustset.Params{
		Universe:   robustset.Universe{Dim: c.dim, Delta: c.delta},
		Seed:       77,
		DiffBudget: outliersFor(c.n, c.rate) + 4,
	}
}

// strategyFor returns the concrete strategy value with cell-dependent
// knobs (CPI capacity) filled in.
func strategyFor(c cell) robustset.Strategy {
	if _, isCPI := c.strategy.(robustset.CPI); isCPI {
		return robustset.CPI{Capacity: cpiCapacityFor(outliersFor(c.n, c.rate))}
	}
	return c.strategy
}

// occurrenceKeys builds the occurrence-indexed point keys the exact wire
// protocols hash (encoded point | u32 occurrence) — one shared
// implementation so the build timings and the skew miner key exactly what
// internal/protocol's exactKeys keys.
func occurrenceKeys(pts []robustset.Point, dim int) [][]byte {
	occ := make(map[string]uint32, len(pts))
	keys := make([][]byte, 0, len(pts))
	buf := make([]byte, 0, points.EncodedSize(dim))
	for _, pt := range pts {
		buf = points.Encode(buf[:0], pt)
		o := occ[string(buf)]
		occ[string(buf)] = o + 1
		keys = append(keys, binary.LittleEndian.AppendUint32(append([]byte(nil), buf...), o))
	}
	return keys
}

// timeBuild measures the strategy's standalone summary construction over
// Alice's points: the hot path each strategy pays before any bytes move.
func timeBuild(c cell, p robustset.Params, alice []robustset.Point) (int64, error) {
	start := time.Now()
	switch c.strategy.(type) {
	case robustset.Robust, robustset.Adaptive:
		if _, err := robustset.NewSketch(p, alice); err != nil {
			return 0, err
		}
	case robustset.ExactIBLT:
		// Occurrence-indexed point keys into an IBLT sized for the diff —
		// the shape of the exact protocol's table construction.
		keyLen := points.EncodedSize(c.dim) + 4
		t, err := iblt.New(iblt.Config{
			Cells:     iblt.RecommendedCells(4*outliersFor(c.n, c.rate)+16, 4),
			HashCount: 4,
			KeyLen:    keyLen,
			Seed:      21,
		})
		if err != nil {
			return 0, err
		}
		for _, k := range occurrenceKeys(alice, c.dim) {
			t.Insert(k)
		}
	case robustset.Rateless:
		// Occurrence-indexed keys into a rateless cell stream, emitting
		// the cells a well-estimated difference needs — the serving-side
		// cost of the first CELLS answer.
		keyLen := points.EncodedSize(c.dim) + 4
		stream, err := iblt.NewCellStream(iblt.ExtendConfig{KeyLen: keyLen, Seed: 21}, occurrenceKeys(alice, c.dim))
		if err != nil {
			return 0, err
		}
		stream.Emit(2*outliersFor(c.n, c.rate) + 32)
	case robustset.CPI:
		h := hashutil.NewHasher(hashutil.DeriveSeed(23, "bench/elem"))
		elems := make([]uint64, len(alice))
		buf := make([]byte, 0, points.EncodedSize(c.dim)+4)
		for i, pt := range alice {
			buf = points.Encode(buf[:0], pt)
			buf = append(buf, byte(i), byte(i>>8), byte(i>>16), byte(i>>24))
			elems[i] = h.Hash(buf) % (1<<61 - 1)
		}
		if _, err := cpi.NewSketch(elems, cpiCapacityFor(outliersFor(c.n, c.rate)), 5); err != nil {
			return 0, err
		}
	case robustset.Ranged:
		// The ordered fingerprint tree over Morton-interleaved occurrence
		// keys the divide-and-conquer protocol probes.
		u := points.Universe{Dim: c.dim, Delta: c.delta}
		if _, err := ranges.NewFromSorted(ranges.KeyLen(c.dim), 21, ranges.Keys(u, alice)); err != nil {
			return 0, err
		}
	case robustset.Naive:
		points.EncodeSet(alice, c.dim)
	}
	return time.Since(start).Nanoseconds(), nil
}

// runCell executes one matrix cell end to end.
func runCell(c cell) Result {
	res := Result{
		Strategy: c.strategy.Name(), N: c.n, DiffRate: c.rate,
		Dim: c.dim, Delta: c.delta, Regime: c.regime,
	}
	if reason := skipReason(c); reason != "" {
		res.Skipped, res.SkipReason = true, reason
		return res
	}
	inst, err := genWorkload(c)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	p := paramsFor(c)
	if res.BuildNS, err = timeBuild(c, p, inst.Alice); err != nil {
		res.Err = err.Error()
		return res
	}
	bytes, ns, out, err := pipeExchange(strategyFor(c), p, inst.Alice, inst.Bob)
	res.SyncNS, res.WireBytes = ns, bytes
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.ResultSize = len(out)
	return res
}

// pipeExchange runs one serve/fetch exchange over an in-process pipe and
// returns the fetch-side traffic, wall time and result — the harness
// every two-party scenario shares.
func pipeExchange(strat robustset.Strategy, p robustset.Params, alice, bob []robustset.Point) (int64, int64, []robustset.Point, error) {
	sess, err := robustset.NewSession(strat, robustset.WithParams(p))
	if err != nil {
		return 0, 0, nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	serveErr := make(chan error, 1)
	go func() {
		_, err := sess.Serve(ctx, c1, alice)
		serveErr <- err
	}()
	start := time.Now()
	out, stats, err := sess.Fetch(ctx, c2, bob)
	ns := time.Since(start).Nanoseconds()
	if err != nil {
		return stats.Total(), ns, nil, err
	}
	if err := <-serveErr; err != nil {
		return stats.Total(), ns, nil, fmt.Errorf("serve: %w", err)
	}
	return stats.Total(), ns, out.SPrime, nil
}

// clusterCell is one anti-entropy convergence scenario: nodes replicas
// of one sharded dataset, each seeded with disjoint extra points, gossip
// until every node holds the identical multiset.
type clusterCell struct {
	strategy robustset.Strategy
	n        int // shared base points
	extra    int // disjoint extra points per node
	nodes    int
	shards   int
}

// clusterMatrix enumerates the replication scenarios. The two strategies
// with exact finest-level diffs — Robust and ExactIBLT — are the ones a
// replication layer deploys; rounds- and bytes-to-convergence are the
// numbers that compare them.
func clusterMatrix(quick bool) []clusterCell {
	n, extra, shards := 10_000, 50, 8
	if quick {
		n, extra, shards = 1_000, 10, 4
	}
	var cells []clusterCell
	for _, s := range []robustset.Strategy{robustset.Robust{}, robustset.ExactIBLT{}} {
		cells = append(cells, clusterCell{strategy: s, n: n, extra: extra, nodes: 3, shards: shards})
	}
	return cells
}

// clusterWorkload builds the deterministic cluster instance: a common
// base multiset plus per-node extras in disjoint coordinate stripes, so
// the expected converged size is exact.
func clusterWorkload(u robustset.Universe, n, nodes, extra int, seed uint64) ([]robustset.Point, [][]robustset.Point) {
	inst, err := workload.Generate(workload.Config{
		N:        n,
		Universe: points.Universe{Dim: u.Dim, Delta: u.Delta / 2},
		Seed:     seed,
	})
	if err != nil {
		panic("bench: cluster workload: " + err.Error())
	}
	common := inst.Bob
	h := hashutil.NewHasher(hashutil.DeriveSeed(seed, "bench/cluster-extra"))
	extras := make([][]robustset.Point, nodes)
	stripe := u.Delta / 2 / int64(nodes)
	for nd := range extras {
		base := u.Delta/2 + int64(nd)*stripe
		for j := 0; j < extra; j++ {
			p := make(robustset.Point, u.Dim)
			p[0] = base + int64(h.HashUint64(uint64(nd)<<32|uint64(j))%uint64(stripe))
			for k := 1; k < u.Dim; k++ {
				p[k] = int64(h.HashUint64(uint64(k)<<48|uint64(nd)<<32|uint64(j)) % uint64(u.Delta))
			}
			extras[nd] = append(extras[nd], p)
		}
	}
	return common, extras
}

// runClusterCell stands up the in-process cluster over loopback TCP and
// drives replicator rounds to convergence.
func runClusterCell(c clusterCell) Result {
	res := Result{
		Strategy: c.strategy.Name(), N: c.n,
		DiffRate: float64(c.extra) / float64(c.n),
		Dim:      2, Delta: 1 << 20, Regime: "exact",
		Mode: "cluster", Nodes: c.nodes, Shards: c.shards,
	}
	u := robustset.Universe{Dim: res.Dim, Delta: res.Delta}
	params := robustset.Params{Universe: u, Seed: 1009, DiffBudget: c.nodes*c.extra + 8}
	common, extras := clusterWorkload(u, c.n, c.nodes, c.extra, uint64(c.n)*31+uint64(c.extra))

	type node struct {
		srv  *robustset.Server
		addr string
	}
	buildStart := time.Now()
	nodes := make([]*node, c.nodes)
	for i := range nodes {
		srv := robustset.NewServer()
		defer srv.Close()
		pts := append(append([]robustset.Point{}, common...), extras[i]...)
		if _, err := srv.PublishSharded("bench", params, pts, c.shards); err != nil {
			res.Err = err.Error()
			return res
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			res.Err = err.Error()
			return res
		}
		go srv.Serve(ln)
		nodes[i] = &node{srv: srv, addr: ln.Addr().String()}
	}
	res.BuildNS = time.Since(buildStart).Nanoseconds()

	reps := make([]*robustset.Replicator, c.nodes)
	for i, nd := range nodes {
		var peers []robustset.Peer
		for j, other := range nodes {
			if j != i {
				peers = append(peers, robustset.Peer{Name: fmt.Sprintf("n%d", j), Addr: other.addr})
			}
		}
		rep, err := robustset.NewReplicator(nd.srv, peers,
			robustset.WithReplicatorStrategy(c.strategy),
			robustset.WithPeerSelector(robustset.SelectRoundRobin(len(peers))),
			robustset.WithRoundTimeout(5*time.Minute),
		)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		reps[i] = rep
	}

	snapshot := func(nd *node) []robustset.Point {
		var out []robustset.Point
		for _, name := range nd.srv.Datasets() {
			out = append(out, nd.srv.Dataset(name).Snapshot()...)
		}
		return out
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	const maxSweeps = 16
	start := time.Now()
	for sweep := 1; sweep <= maxSweeps; sweep++ {
		for i, rep := range reps {
			st, err := rep.RunRound(ctx)
			if err != nil {
				res.Err = fmt.Sprintf("node %d round %d: %v", i, sweep, err)
				return res
			}
			res.WireBytes += st.Bytes
			if st.Errors > 0 {
				res.Err = fmt.Sprintf("node %d round %d: %d session errors", i, sweep, st.Errors)
				return res
			}
		}
		ref := snapshot(nodes[0])
		converged := true
		for _, nd := range nodes[1:] {
			if !robustset.EqualMultisets(ref, snapshot(nd)) {
				converged = false
				break
			}
		}
		if converged {
			res.Rounds = sweep
			res.ResultSize = len(ref)
			break
		}
	}
	res.SyncNS = time.Since(start).Nanoseconds()
	if res.Rounds == 0 {
		res.Err = fmt.Sprintf("no convergence after %d sweeps", maxSweeps)
		return res
	}
	if want := c.n + c.nodes*c.extra; res.ResultSize != want {
		res.Err = fmt.Sprintf("converged to %d points, want %d", res.ResultSize, want)
	}
	return res
}

// runClusterScenario executes the replication matrix.
func runClusterScenario(quick bool, logf func(format string, args ...any)) []Result {
	cells := clusterMatrix(quick)
	out := make([]Result, 0, len(cells))
	for i, c := range cells {
		r := runClusterCell(c)
		out = append(out, r)
		if r.Err != "" {
			logf("[cluster %d/%d] %-16s n=%-8d nodes=%d shards=%d ERROR: %s",
				i+1, len(cells), r.Strategy, r.N, r.Nodes, r.Shards, r.Err)
			continue
		}
		logf("[cluster %d/%d] %-16s n=%-8d nodes=%d shards=%d rounds=%d sync=%-12s wire=%dB",
			i+1, len(cells), r.Strategy, r.N, r.Nodes, r.Shards, r.Rounds,
			time.Duration(r.SyncNS), r.WireBytes)
	}
	return out
}

// ratelessCell is one rateless-vs-doubling comparison scenario: n shared
// base points plus diff Alice-only extras, optionally skewed so the
// strata estimate collapses.
type ratelessCell struct {
	n      int
	diff   int
	skewed bool
}

// ratelessMatrix enumerates the comparison scenarios. Differences are
// kept ≥ a couple thousand keys so the fixed strata-estimator bytes —
// identical on both paths — do not wash out the cell-stream comparison.
func ratelessMatrix(quick bool) []ratelessCell {
	grid := []struct{ n, diff int }{{10_000, 2_000}, {100_000, 8_000}, {1_000_000, 10_000}}
	if quick {
		grid = []struct{ n, diff int }{{2_000, 800}}
	}
	var cells []ratelessCell
	for _, g := range grid {
		cells = append(cells,
			ratelessCell{n: g.n, diff: g.diff, skewed: false},
			ratelessCell{n: g.n, diff: g.diff, skewed: true},
		)
	}
	return cells
}

// ratelessSeed is the shared session seed of the rateless scenario; the
// skew miner must derive the same strata sampling hash the protocols
// will, so it is fixed here.
const ratelessSeed = 77

// ratelessWorkload builds the comparison instance: identical base sets in
// the lower coordinate stripe plus diff Alice-only extras in the upper
// stripe. With skewed set, every extra is rejection-sampled onto stratum
// 0 of the protocols' strata estimator — half the key space, so the skew
// is cheap to mine yet collapses the difference estimate toward zero
// (everything above stratum 0 sees nothing, and stratum 0 itself is far
// too loaded to decode).
func ratelessWorkload(u robustset.Universe, n, diff int, skewed bool, seed uint64) (alice, bob []robustset.Point, err error) {
	inst, err := workload.Generate(workload.Config{
		N:        n,
		Universe: points.Universe{Dim: u.Dim, Delta: u.Delta / 2},
		Seed:     seed,
	})
	if err != nil {
		return nil, nil, err
	}
	bob = inst.Bob
	alice = robustset.ClonePoints(bob)

	st, err := sketch.NewStrata(sketch.StrataConfig{
		KeyLen: points.EncodedSize(u.Dim) + 4,
		Seed:   hashutil.DeriveSeed(ratelessSeed, "exact/strata"),
	})
	if err != nil {
		return nil, nil, err
	}
	h := hashutil.NewHasher(hashutil.DeriveSeed(seed, "bench/rateless-extra"))
	seen := make(map[string]bool, diff)
	stripe := u.Delta - u.Delta/2
	for i, attempt := 0, uint64(0); i < diff; attempt++ {
		p := make(robustset.Point, u.Dim)
		for k := 0; k < u.Dim; k++ {
			p[k] = u.Delta/2 + int64(h.HashUint64(uint64(k)<<48|attempt)%uint64(stripe))
		}
		enc := points.EncodeNew(p)
		if seen[string(enc)] {
			continue
		}
		// Occurrence index 0: extras are distinct and disjoint from the
		// base stripe, so this is the exact wire key both protocols hash.
		key := occurrenceKeys([]robustset.Point{p}, u.Dim)[0]
		if skewed && st.StratumOf(key) != 0 {
			continue
		}
		seen[string(enc)] = true
		alice = append(alice, p)
		i++
	}
	return alice, bob, nil
}

// runRatelessCell measures one comparison: the rateless stream and the
// doubling-retry path on the identical workload, both required to
// converge exactly (the doubling path gets unlimited-in-practice retries,
// so the comparison is bytes at equal decode success).
func runRatelessCell(c ratelessCell) Result {
	res := Result{
		Strategy: robustset.Rateless{}.Name(), Mode: "rateless",
		N: c.n, DiffRate: float64(c.diff) / float64(c.n),
		Dim: 2, Delta: 1 << 20, Regime: "exact",
		Estimate: "accurate",
	}
	if c.skewed {
		res.Estimate = "undershoot"
	}
	u := robustset.Universe{Dim: res.Dim, Delta: res.Delta}
	params := robustset.Params{Universe: u, Seed: ratelessSeed, DiffBudget: c.diff + 4}
	alice, bob, err := ratelessWorkload(u, c.n, c.diff, c.skewed, uint64(c.n)*17+uint64(c.diff))
	if err != nil {
		res.Err = err.Error()
		return res
	}
	rBytes, rNS, rOut, err := pipeExchange(robustset.Rateless{}, params, alice, bob)
	if err != nil {
		res.Err = "rateless: " + err.Error()
		return res
	}
	dBytes, _, dOut, err := pipeExchange(robustset.ExactIBLT{MaxRetries: 24}, params, alice, bob)
	if err != nil {
		res.Err = "doubling: " + err.Error()
		return res
	}
	if !robustset.EqualMultisets(rOut, alice) || !robustset.EqualMultisets(dOut, alice) {
		res.Err = "paths did not converge to Alice's multiset"
		return res
	}
	res.WireBytes, res.BaselineBytes = rBytes, dBytes
	res.SyncNS = rNS
	res.ResultSize = len(rOut)
	return res
}

// runRatelessScenario executes the comparison matrix.
func runRatelessScenario(quick bool, logf func(format string, args ...any)) []Result {
	cells := ratelessMatrix(quick)
	out := make([]Result, 0, len(cells))
	for i, c := range cells {
		r := runRatelessCell(c)
		out = append(out, r)
		if r.Err != "" {
			logf("[rateless %d/%d] n=%-8d diff=%-6d %-10s ERROR: %s",
				i+1, len(cells), r.N, c.diff, r.Estimate, r.Err)
			continue
		}
		logf("[rateless %d/%d] n=%-8d diff=%-6d %-10s wire=%dB baseline=%dB (×%.2f)",
			i+1, len(cells), r.N, c.diff, r.Estimate, r.WireBytes, r.BaselineBytes,
			float64(r.WireBytes)/float64(r.BaselineBytes))
	}
	return out
}

// connOverheadBytes is the modeled per-connection TCP cost added to
// both sides of the mux comparison: a three-way handshake plus a
// four-segment teardown is seven empty segments of 40 bytes of IPv4+TCP
// headers that the transport-level counters never see. The mux round
// pays it once; connection-per-session pays it per shard. The model is
// deliberately conservative — it ignores TLS, per-segment header costs
// and kernel wakeups, all of which favor mux further.
const connOverheadBytes = 7 * 40

// muxCell is one multiplexed-serving comparison: one server publishing
// a dataset as `shards` shard datasets, a client reconciling every
// shard — once over a single multiplexed connection with pipelined
// streams, once over one connection per session.
type muxCell struct {
	shards   int
	perShard int // base points per shard (approximate; hash-routed)
	diff     int // client-missing extras across the whole dataset
	budget   int // per-shard DiffBudget
}

// muxMatrix enumerates the comparison scenarios. The shard count stays
// at 64 even in quick mode — the scenario exists to measure per-session
// fixed costs at high fan-in, which a smaller fan-in would hide. The
// per-shard size keeps each session's polynomial evaluations heavy
// enough that pipelined streams overlap real work, not just loopback
// syscalls (CPI wire cost is O(capacity), so bytes stay small either
// way).
func muxMatrix(quick bool) []muxCell {
	if quick {
		return []muxCell{{shards: 64, perShard: 2000, diff: 128, budget: 16}}
	}
	return []muxCell{{shards: 64, perShard: 4000, diff: 512, budget: 40}}
}

// muxWorkload builds the server's points (base ∪ extras) and the
// client's (base only) for a mux cell.
func muxWorkload(u robustset.Universe, n, diff int, seed uint64) (server, client []robustset.Point, err error) {
	inst, err := workload.Generate(workload.Config{
		N:        n,
		Universe: points.Universe{Dim: u.Dim, Delta: u.Delta / 2},
		Seed:     seed,
	})
	if err != nil {
		return nil, nil, err
	}
	client = inst.Bob
	server = robustset.ClonePoints(client)
	h := hashutil.NewHasher(hashutil.DeriveSeed(seed, "bench/mux-extra"))
	stripe := u.Delta - u.Delta/2
	seen := make(map[string]bool, diff)
	for i, attempt := 0, uint64(0); i < diff; attempt++ {
		p := make(robustset.Point, u.Dim)
		for k := 0; k < u.Dim; k++ {
			p[k] = u.Delta/2 + int64(h.HashUint64(uint64(k)<<48|attempt)%uint64(stripe))
		}
		enc := string(points.EncodeNew(p))
		if seen[enc] {
			continue
		}
		seen[enc] = true
		server = append(server, p)
		i++
	}
	return server, client, nil
}

// runMuxCell measures one comparison. The per-shard strategy is CPI —
// the cheapest exact comparator per session, which is exactly the
// regime where per-connection overhead dominates and a multiplexed
// serving layer earns its keep.
func runMuxCell(c muxCell) Result {
	n := c.shards * c.perShard
	res := Result{
		Strategy: robustset.CPI{}.Name(), Mode: "mux",
		N: n, DiffRate: float64(c.diff) / float64(n),
		Dim: 2, Delta: 1 << 20, Regime: "exact",
		Shards: c.shards,
	}
	u := robustset.Universe{Dim: res.Dim, Delta: res.Delta}
	params := robustset.Params{Universe: u, Seed: 901, DiffBudget: c.budget}
	serverPts, clientPts, err := muxWorkload(u, n, c.diff, uint64(n)*13+uint64(c.diff))
	if err != nil {
		res.Err = err.Error()
		return res
	}

	metrics := robustset.NewMetrics()
	srv := robustset.NewServer(robustset.WithServerMetrics(metrics))
	defer srv.Close()
	buildStart := time.Now()
	sd, err := srv.PublishSharded("m", params, serverPts, c.shards)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.BuildNS = time.Since(buildStart).Nanoseconds()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		res.Err = err.Error()
		return res
	}
	go srv.Serve(ln)

	// The client's side of each shard: publish the same name with the
	// same params on a throwaway (unserved) server, which partitions
	// identically by construction.
	aux := robustset.NewServer()
	sdLocal, err := aux.PublishSharded("m", params, clientPts, c.shards)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	names := make([]string, c.shards)
	locals := make([][]robustset.Point, c.shards)
	wants := make([][]robustset.Point, c.shards)
	for i, d := range sd.Shards() {
		names[i] = d.Name()
		wants[i] = d.Snapshot()
		locals[i] = sdLocal.Shards()[i].Snapshot()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	addr := ln.Addr().String()

	// Baseline: connection-per-session, visited sequentially — the shape
	// of the pre-mux replicator, where one dataset's peer sessions never
	// overlap. Result verification happens outside the timed region (it
	// is identical work on both sides of the comparison).
	baselineOut := make([][]robustset.Point, c.shards)
	baselineStart := time.Now()
	var baselineBytes int64
	for i, name := range names {
		sess, err := robustset.NewSession(robustset.CPI{}, robustset.WithDataset(name))
		if err != nil {
			res.Err = err.Error()
			return res
		}
		out, st, err := sess.FetchAddr(ctx, addr, locals[i])
		if err != nil {
			res.Err = fmt.Sprintf("baseline shard %d: %v", i, err)
			return res
		}
		baselineOut[i] = out.SPrime
		baselineBytes += st.Total() + connOverheadBytes
	}
	res.BaselineNS = time.Since(baselineStart).Nanoseconds()
	res.BaselineBytes = baselineBytes
	for i := range baselineOut {
		if !robustset.EqualMultisets(baselineOut[i], wants[i]) {
			res.Err = fmt.Sprintf("baseline shard %d: wrong result", i)
			return res
		}
	}

	// Mux: dial once, all shards as concurrent pipelined streams.
	muxStart := time.Now()
	cl, err := robustset.DialClient(ctx, addr)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	defer cl.Close()
	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
	)
	muxOut := make([][]robustset.Point, c.shards)
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cs, err := cl.Session(names[i], robustset.CPI{})
			if err == nil {
				var out *robustset.SyncResult
				if out, _, err = cs.Fetch(ctx, locals[i]); err == nil {
					muxOut[i] = out.SPrime
				}
			}
			if err != nil {
				errMu.Lock()
				if res.Err == "" {
					res.Err = fmt.Sprintf("mux shard %d: %v", i, err)
				}
				errMu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	res.SyncNS = time.Since(muxStart).Nanoseconds()
	if res.Err != "" {
		return res
	}
	res.WireBytes = cl.Stats().Total() + connOverheadBytes
	for i := range muxOut {
		if !robustset.EqualMultisets(muxOut[i], wants[i]) {
			res.Err = fmt.Sprintf("mux shard %d: wrong result", i)
			return res
		}
		res.ResultSize += len(muxOut[i])
	}

	snap := metrics.Snapshot()
	res.MuxStreams = int(snap["server_mux_streams_per_conn_max"])
	if snap["mux_decode_failures_total"] != 0 {
		res.Err = fmt.Sprintf("%d mux decode failures", snap["mux_decode_failures_total"])
	}
	return res
}

// runMuxScenario executes the multiplexed-serving comparison matrix.
func runMuxScenario(quick bool, logf func(format string, args ...any)) []Result {
	cells := muxMatrix(quick)
	out := make([]Result, 0, len(cells))
	for i, c := range cells {
		r := runMuxCell(c)
		out = append(out, r)
		if r.Err != "" {
			logf("[mux %d/%d] shards=%d n=%-8d ERROR: %s", i+1, len(cells), r.Shards, r.N, r.Err)
			continue
		}
		logf("[mux %d/%d] shards=%d n=%-8d streams=%d wire=%dB baseline=%dB (×%.2f) sync=%-12s baseline=%-12s (×%.2f)",
			i+1, len(cells), r.Shards, r.N, r.MuxStreams,
			r.WireBytes, r.BaselineBytes, float64(r.WireBytes)/float64(r.BaselineBytes),
			time.Duration(r.SyncNS), time.Duration(r.BaselineNS), float64(r.SyncNS)/float64(r.BaselineNS))
	}
	return out
}

// recoveryReplayCell is one storage-engine measurement: a durable
// dataset of n base points takes churn mutation batches through the
// WAL, the server restarts, and recovery replays the log tail left by
// the snapshot policy.
type recoveryReplayCell struct {
	n     int // base points
	churn int // mutation batches (one WAL record each)
	every int // snapshot interval in records; <0 never snapshots
}

// recoveryReplayMatrix pairs a snapshotting configuration against a
// snapshot-never one on the same churn, so the report records recovery
// time against both a short and a full-length log. Churn counts avoid
// multiples of the snapshot interval so the snapshotting row still
// replays a non-empty tail.
func recoveryReplayMatrix(quick bool) []recoveryReplayCell {
	if quick {
		return []recoveryReplayCell{
			{n: 2_000, churn: 300, every: 64},
			{n: 2_000, churn: 300, every: -1},
		}
	}
	return []recoveryReplayCell{
		{n: 50_000, churn: 2_000, every: 512},
		{n: 50_000, churn: 2_000, every: -1},
	}
}

// runRecoveryReplayCell measures one replay cell end to end.
func runRecoveryReplayCell(c recoveryReplayCell) Result {
	res := Result{
		Strategy: robustset.Robust{}.Name(), Mode: "recovery", Phase: "replay",
		N: c.n, DiffRate: float64(c.churn) / float64(c.n),
		Dim: 2, Delta: 1 << 20, Regime: "exact",
		SnapshotEvery: c.every,
	}
	dir, err := os.MkdirTemp("", "bench-recovery-*")
	if err != nil {
		res.Err = err.Error()
		return res
	}
	defer os.RemoveAll(dir)
	u := robustset.Universe{Dim: res.Dim, Delta: res.Delta}
	params := robustset.Params{Universe: u, Seed: 501, DiffBudget: 64}
	inst, err := workload.Generate(workload.Config{
		N:        c.n,
		Universe: points.Universe{Dim: u.Dim, Delta: u.Delta},
		Seed:     uint64(c.n)*7 + uint64(c.churn),
	})
	if err != nil {
		res.Err = err.Error()
		return res
	}

	m := robustset.NewMetrics()
	srv := robustset.NewServer(
		robustset.WithServerMetrics(m),
		robustset.WithServerDataDir(dir),
		robustset.WithServerSnapshotEvery(c.every),
	)
	buildStart := time.Now()
	d, err := srv.PublishDurable("bench", params, inst.Bob)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.BuildNS = time.Since(buildStart).Nanoseconds()

	// Churn: batches of 1–4 adds or removes, every batch one WAL record.
	// Metrics are read as before/after deltas so the initial snapshot of
	// the publish does not pollute the churn accounting.
	pre := m.Snapshot()
	encSize := int64(points.EncodedSize(u.Dim))
	rng := rand.New(rand.NewPCG(uint64(c.churn), uint64(c.every)+3))
	current := robustset.ClonePoints(inst.Bob)
	var logical int64
	for r := 0; r < c.churn; r++ {
		if len(current) > 8 && rng.IntN(10) < 4 {
			nb := 1 + rng.IntN(3)
			batch := make([]robustset.Point, 0, nb)
			for i := 0; i < nb && len(current) > 0; i++ {
				j := rng.IntN(len(current))
				batch = append(batch, current[j])
				current[j] = current[len(current)-1]
				current = current[:len(current)-1]
			}
			err = d.RemoveBatch(batch)
			logical += int64(len(batch)) * encSize
		} else {
			nb := 1 + rng.IntN(4)
			batch := make([]robustset.Point, 0, nb)
			for i := 0; i < nb; i++ {
				batch = append(batch, robustset.Point{rng.Int64N(u.Delta), rng.Int64N(u.Delta)})
			}
			err = d.AddBatch(batch)
			logical += int64(len(batch)) * encSize
			current = append(current, batch...)
		}
		if err != nil {
			res.Err = fmt.Sprintf("churn record %d: %v", r, err)
			return res
		}
	}
	post := m.Snapshot()
	res.WALRecords = int(post["store_wal_records_total"] - pre["store_wal_records_total"])
	res.WALBytes = post["store_wal_bytes_total"] - pre["store_wal_bytes_total"]
	res.SnapshotBytes = post["store_snapshot_bytes_total"] - pre["store_snapshot_bytes_total"]
	res.LogicalBytes = logical
	if err := srv.Close(); err != nil {
		res.Err = err.Error()
		return res
	}

	// Restart: recovery = open + snapshot load + sketch adoption + tail
	// replay, timed as one PublishDurable call.
	m2 := robustset.NewMetrics()
	srv2 := robustset.NewServer(
		robustset.WithServerMetrics(m2),
		robustset.WithServerDataDir(dir),
		robustset.WithServerSnapshotEvery(c.every),
	)
	defer srv2.Close()
	recStart := time.Now()
	d2, err := srv2.PublishDurable("bench", params, nil)
	res.RecoveryNS = time.Since(recStart).Nanoseconds()
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.ReplayRecords = int(m2.Snapshot()["store_replay_records_total"])
	if !robustset.EqualMultisets(d2.Snapshot(), current) {
		res.Err = fmt.Sprintf("recovered multiset has %d points, churned state had %d", d2.Size(), len(current))
		return res
	}
	res.ResultSize = d2.Size()
	return res
}

// recoveryRejoinCell is one delta-proportional rejoin measurement: a
// 3-node durable cluster converges, one node goes down, the survivors
// absorb `missed` writes, and the restarted node must catch up in wire
// bytes proportional to the miss, not to the dataset.
type recoveryRejoinCell struct {
	n      int // shared base points
	extra  int // disjoint extras per node
	missed int // writes the downed node misses
}

func recoveryRejoinMatrix(quick bool) []recoveryRejoinCell {
	// The base set must be large enough that the gated ratio measures
	// delta-proportionality, not the fixed per-session strata overhead.
	if quick {
		return []recoveryRejoinCell{{n: 8_000, extra: 12, missed: 48}}
	}
	return []recoveryRejoinCell{{n: 50_000, extra: 12, missed: 400}}
}

// runRecoveryRejoinCell measures one rejoin cell.
func runRecoveryRejoinCell(c recoveryRejoinCell) Result {
	const nodes = 3
	res := Result{
		Strategy: robustset.Rateless{}.Name(), Mode: "recovery", Phase: "rejoin",
		N: c.n, DiffRate: float64(c.missed) / float64(c.n),
		Dim: 2, Delta: 1 << 20, Regime: "exact", Nodes: nodes,
	}
	u := robustset.Universe{Dim: res.Dim, Delta: res.Delta}
	params := robustset.Params{Universe: u, Seed: 733, DiffBudget: nodes*c.extra + c.missed + 8}
	common, extras := clusterWorkload(u, c.n, nodes, c.extra, uint64(c.n)*41+uint64(c.missed))

	dirs := make([]string, nodes)
	for i := range dirs {
		dir, err := os.MkdirTemp("", "bench-rejoin-*")
		if err != nil {
			res.Err = err.Error()
			return res
		}
		defer os.RemoveAll(dir)
		dirs[i] = dir
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	srvs := make([]*robustset.Server, nodes)
	addrs := make([]string, nodes)
	start := func(i int, pts []robustset.Point) error {
		srv := robustset.NewServer(robustset.WithServerDataDir(dirs[i]))
		if _, err := srv.PublishDurable("bench", params, pts); err != nil {
			return err
		}
		laddr := "127.0.0.1:0"
		if addrs[i] != "" {
			laddr = addrs[i]
		}
		ln, err := net.Listen("tcp", laddr)
		if err != nil {
			srv.Close()
			return err
		}
		go srv.Serve(ln)
		srvs[i], addrs[i] = srv, ln.Addr().String()
		return nil
	}
	for i := range srvs {
		pts := append(append([]robustset.Point{}, common...), extras[i]...)
		if err := start(i, pts); err != nil {
			res.Err = err.Error()
			return res
		}
		defer func(i int) { srvs[i].Close() }(i)
	}
	reps := make([]*robustset.Replicator, nodes)
	newRep := func(i int) (*robustset.Replicator, error) {
		var peers []robustset.Peer
		for j := range srvs {
			if j != i {
				peers = append(peers, robustset.Peer{Name: fmt.Sprintf("n%d", j), Addr: addrs[j]})
			}
		}
		return robustset.NewReplicator(srvs[i], peers,
			robustset.WithReplicatorStrategy(robustset.Rateless{}),
			robustset.WithPeerSelector(robustset.SelectRoundRobin(nodes-1)),
			robustset.WithRoundTimeout(5*time.Minute),
		)
	}
	for i := range reps {
		rep, err := newRep(i)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		defer func(i int) { reps[i].Close() }(i)
		reps[i] = rep
	}
	converge := func(idx []int) (int, error) {
		for sweep := 1; sweep <= 16; sweep++ {
			for _, i := range idx {
				if _, err := reps[i].RunRound(ctx); err != nil {
					return 0, fmt.Errorf("node %d round: %w", i, err)
				}
			}
			ref := srvs[idx[0]].Dataset("bench").Snapshot()
			ok := true
			for _, i := range idx[1:] {
				if !robustset.EqualMultisets(ref, srvs[i].Dataset("bench").Snapshot()) {
					ok = false
					break
				}
			}
			if ok {
				return sweep, nil
			}
		}
		return 0, fmt.Errorf("no convergence after 16 sweeps")
	}
	if _, err := converge([]int{0, 1, 2}); err != nil {
		res.Err = err.Error()
		return res
	}

	// Node 2 goes down; the survivors absorb the missed delta — distinct
	// points mined against the converged multiset so the expected counts
	// stay exact — and re-converge without it.
	reps[2].Close()
	if err := srvs[2].Close(); err != nil {
		res.Err = err.Error()
		return res
	}
	seen := make(map[string]bool, c.n+nodes*c.extra)
	for _, pt := range srvs[0].Dataset("bench").Snapshot() {
		seen[string(points.EncodeNew(pt))] = true
	}
	h := hashutil.NewHasher(hashutil.DeriveSeed(uint64(c.n), "bench/rejoin-delta"))
	delta := make([]robustset.Point, 0, c.missed)
	for attempt := uint64(0); len(delta) < c.missed; attempt++ {
		p := robustset.Point{
			int64(h.HashUint64(attempt) % uint64(u.Delta)),
			int64(h.HashUint64(attempt^0x5bf03635) % uint64(u.Delta)),
		}
		enc := string(points.EncodeNew(p))
		if seen[enc] {
			continue
		}
		seen[enc] = true
		delta = append(delta, p)
	}
	if err := srvs[0].Dataset("bench").AddBatch(delta); err != nil {
		res.Err = err.Error()
		return res
	}
	if _, err := converge([]int{0, 1}); err != nil {
		res.Err = err.Error()
		return res
	}
	downSize := srvs[0].Dataset("bench").Size() - c.missed

	// Restart node 2 from its directory and rejoin: the first round's
	// traffic is the recovery cost on the wire.
	recStart := time.Now()
	if err := start(2, nil); err != nil {
		res.Err = err.Error()
		return res
	}
	res.RecoveryNS = time.Since(recStart).Nanoseconds()
	if got := srvs[2].Dataset("bench").Size(); got != downSize {
		res.Err = fmt.Sprintf("recovered node holds %d points, held %d at shutdown", got, downSize)
		return res
	}
	rep, err := newRep(2)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	reps[2] = rep
	rejoinStart := time.Now()
	st, err := reps[2].RunRound(ctx)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.WireBytes = st.Bytes
	sweeps, err := converge([]int{0, 1, 2})
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.SyncNS = time.Since(rejoinStart).Nanoseconds()
	res.Rounds = 1 + sweeps
	res.ResultSize = srvs[0].Dataset("bench").Size()
	// The contracted baseline: a naive full-set transfer of the dataset
	// the node already held on disk.
	res.BaselineBytes = int64(len(points.EncodeSet(srvs[0].Dataset("bench").Snapshot(), u.Dim)))
	if want := c.n + nodes*c.extra + c.missed; res.ResultSize != want {
		res.Err = fmt.Sprintf("converged to %d points, want %d", res.ResultSize, want)
	}
	return res
}

// runRecoveryScenario executes the durability matrix: storage-engine
// replay cells, then the cluster rejoin cells.
func runRecoveryScenario(quick bool, logf func(format string, args ...any)) []Result {
	var out []Result
	replay := recoveryReplayMatrix(quick)
	for i, c := range replay {
		r := runRecoveryReplayCell(c)
		out = append(out, r)
		if r.Err != "" {
			logf("[recovery %d/%d] replay n=%-8d every=%-5d ERROR: %s",
				i+1, len(replay)+1, r.N, c.every, r.Err)
			continue
		}
		logf("[recovery %d/%d] replay n=%-8d every=%-5d records=%d wal=%dB (amp ×%.2f) replayed=%d recovery=%-12s",
			i+1, len(replay)+1, r.N, c.every, r.WALRecords, r.WALBytes,
			float64(r.WALBytes)/float64(r.LogicalBytes), r.ReplayRecords, time.Duration(r.RecoveryNS))
	}
	rejoin := recoveryRejoinMatrix(quick)
	for i, c := range rejoin {
		r := runRecoveryRejoinCell(c)
		out = append(out, r)
		if r.Err != "" {
			logf("[recovery %d/%d] rejoin n=%-8d missed=%-5d ERROR: %s",
				len(replay)+i+1, len(replay)+len(rejoin), r.N, c.missed, r.Err)
			continue
		}
		logf("[recovery %d/%d] rejoin n=%-8d missed=%-5d recovery=%-12s wire=%dB full=%dB (×%.3f) rounds=%d",
			len(replay)+i+1, len(replay)+len(rejoin), r.N, c.missed,
			time.Duration(r.RecoveryNS), r.WireBytes, r.BaselineBytes,
			float64(r.WireBytes)/float64(r.BaselineBytes), r.Rounds)
	}
	return out
}

// runMatrix executes every cell and assembles the report.
func runMatrix(cells []cell, quick bool, logf func(format string, args ...any)) Report {
	rep := Report{
		SchemaVersion: SchemaVersion,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		Quick:         quick,
	}
	for i, c := range cells {
		r := runCell(c)
		rep.Results = append(rep.Results, r)
		switch {
		case r.Skipped:
			logf("[%3d/%d] %-16s n=%-8d rate=%-6g dim=%d SKIP: %s",
				i+1, len(cells), r.Strategy, r.N, r.DiffRate, r.Dim, r.SkipReason)
		case r.Err != "":
			logf("[%3d/%d] %-16s n=%-8d rate=%-6g dim=%d ERROR: %s",
				i+1, len(cells), r.Strategy, r.N, r.DiffRate, r.Dim, r.Err)
		default:
			logf("[%3d/%d] %-16s n=%-8d rate=%-6g dim=%d build=%-12s sync=%-12s wire=%dB",
				i+1, len(cells), r.Strategy, r.N, r.DiffRate, r.Dim,
				time.Duration(r.BuildNS), time.Duration(r.SyncNS), r.WireBytes)
		}
	}
	return rep
}

// checkReport validates a serialized report against the schema contract:
// version match, every strategy covered, and every non-skipped row
// carrying real measurements. CI runs this as its drift gate.
func checkReport(data []byte) error {
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("bench: report is not valid JSON: %w", err)
	}
	if rep.SchemaVersion != SchemaVersion {
		return fmt.Errorf("bench: schema version %d, tool expects %d", rep.SchemaVersion, SchemaVersion)
	}
	if rep.GoVersion == "" || rep.GOOS == "" || rep.GOARCH == "" || rep.CPUs < 1 {
		return fmt.Errorf("bench: incomplete environment header")
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("bench: empty results")
	}
	known := map[string]bool{}
	for _, m := range allModes {
		known[m] = true
	}
	sel := map[string]bool{}
	for _, m := range rep.Modes {
		if !known[m] {
			return fmt.Errorf("bench: report names unknown mode %q", m)
		}
		sel[m] = true
	}
	// has reports whether the scenario's coverage gates apply: an empty
	// mode list is a full report and owes every scenario.
	has := func(m string) bool { return len(rep.Modes) == 0 || sel[m] }
	want := map[string]bool{}
	for _, s := range robustset.Strategies() {
		want[s.Name()] = false
	}
	clusterRows := 0
	muxRows := 0
	rangesRows := 0
	ratelessRows := map[string]int{}
	recoveryRows := map[string]int{}
	loadRows := map[string]int{}
	// Baseline- and pooled-phase rows by cell coordinates, for the
	// relative allocation-elimination gates on each cell.
	loadBaseline := map[string]Result{}
	loadPooled := map[string]Result{}
	loadTraced := map[string]Result{}
	loadKey := func(r Result) string {
		return fmt.Sprintf("n=%d conns=%d workers=%d", r.N, r.Conns, r.Workers)
	}
	for i, r := range rep.Results {
		if _, known := want[r.Strategy]; !known {
			return fmt.Errorf("bench: result %d names unknown strategy %q", i, r.Strategy)
		}
		if r.N < 1 || r.Dim < 1 || r.Delta < 2 {
			return fmt.Errorf("bench: result %d (%s) has malformed workload coordinates", i, r.Strategy)
		}
		if r.Skipped {
			if r.SkipReason == "" {
				return fmt.Errorf("bench: result %d (%s) skipped without a reason", i, r.Strategy)
			}
			continue
		}
		if r.Err != "" {
			return fmt.Errorf("bench: result %d (%s n=%d) failed: %s", i, r.Strategy, r.N, r.Err)
		}
		// Recovery replay rows measure the storage engine, not a wire
		// exchange; they carry their own measurement gates below.
		if r.Mode != "recovery" && (r.SyncNS <= 0 || r.WireBytes <= 0) {
			return fmt.Errorf("bench: result %d (%s n=%d) carries no measurements", i, r.Strategy, r.N)
		}
		if r.Mode == "cluster" {
			if r.Rounds < 1 || r.Nodes < 2 || r.Shards < 1 {
				return fmt.Errorf("bench: cluster result %d (%s) carries no convergence measurements", i, r.Strategy)
			}
			clusterRows++
		}
		if r.Mode == "mux" {
			if r.Shards < 2 || r.MuxStreams < r.Shards {
				return fmt.Errorf("bench: mux result %d: %d streams on one connection, want >= %d shards",
					i, r.MuxStreams, r.Shards)
			}
			if r.BaselineBytes <= 0 || r.BaselineNS <= 0 {
				return fmt.Errorf("bench: mux result %d carries no connection-per-session baseline", i)
			}
			// The multiplexing contract: amortizing one connection over
			// all shard sessions must beat connection-per-session on both
			// axes. The byte ratio is machine-independent and gated on
			// every report; the wall-clock ratio depends on pipelined
			// streams overlapping real work, so it is gated on quick
			// reports — the ones CI measures fresh on multi-core runners
			// — and recorded, not gated, in the committed trajectory
			// (a single-core builder measures no overlap, only noise).
			byteRatio := float64(r.WireBytes) / float64(r.BaselineBytes)
			if byteRatio > 0.9 {
				return fmt.Errorf("bench: mux result %d (shards=%d): wire ratio %.2f exceeds 0.9", i, r.Shards, byteRatio)
			}
			if rep.Quick {
				wallRatio := float64(r.SyncNS) / float64(r.BaselineNS)
				if wallRatio > 0.7 {
					return fmt.Errorf("bench: mux result %d (shards=%d): wall-clock ratio %.2f exceeds 0.7", i, r.Shards, wallRatio)
				}
			}
			muxRows++
		}
		if r.Mode == "ranges" {
			if r.BaselineBytes <= 0 {
				return fmt.Errorf("bench: ranges result %d carries no exact-IBLT baseline", i)
			}
			if r.Rounds < 1 || r.BaselineRounds < 1 || r.MuxStreams < 2 {
				return fmt.Errorf("bench: ranges result %d carries no pipelined round-depth comparison", i)
			}
			// The divide-and-conquer contract: on a tiny difference the
			// probe tree must decisively undercut the exact-IBLT path,
			// whose strata estimator costs tens of kilobytes before a
			// single differing key moves.
			if ratio := float64(r.WireBytes) / float64(r.BaselineBytes); ratio > 0.5 {
				return fmt.Errorf("bench: ranges result %d (n=%d): wire ratio %.2f exceeds 0.5", i, r.N, ratio)
			}
			// The pipelining contract: reconciling sibling subranges as
			// concurrent mux streams must cut the sequential round-trip
			// depth well below the serial run's. Like the mux wall-clock
			// gate, it is enforced on the quick reports CI measures fresh
			// and recorded, not gated, in the committed trajectory.
			if rep.Quick {
				if ratio := float64(r.Rounds) / float64(r.BaselineRounds); ratio > 0.6 {
					return fmt.Errorf("bench: ranges result %d (n=%d): pipelined/serial round ratio %.2f exceeds 0.6", i, r.N, ratio)
				}
			}
			rangesRows++
		}
		if r.Mode == "rateless" {
			if r.Estimate != "accurate" && r.Estimate != "undershoot" {
				return fmt.Errorf("bench: rateless result %d carries estimate regime %q", i, r.Estimate)
			}
			if r.BaselineBytes <= 0 {
				return fmt.Errorf("bench: rateless result %d carries no doubling baseline", i)
			}
			// The robustness contract: streaming increments must beat the
			// doubling-retry path decisively when the estimate collapses,
			// and must never cost materially more when it is accurate.
			ratio := float64(r.WireBytes) / float64(r.BaselineBytes)
			switch r.Estimate {
			case "undershoot":
				if ratio > 0.6 {
					return fmt.Errorf("bench: rateless result %d (n=%d): undershoot wire ratio %.2f exceeds 0.6", i, r.N, ratio)
				}
			case "accurate":
				if ratio > 1.1 {
					return fmt.Errorf("bench: rateless result %d (n=%d): accurate wire ratio %.2f exceeds 1.1", i, r.N, ratio)
				}
			}
			ratelessRows[r.Estimate]++
		}
		if r.Mode == "recovery" {
			switch r.Phase {
			case "replay":
				if r.RecoveryNS <= 0 || r.WALRecords < 1 || r.WALBytes <= 0 || r.LogicalBytes <= 0 {
					return fmt.Errorf("bench: recovery result %d carries no storage measurements", i)
				}
				if r.ReplayRecords < 1 {
					return fmt.Errorf("bench: recovery result %d replayed no log records", i)
				}
				// The durability contract on the log itself: framing and
				// batching overhead must stay modest. Snapshot bytes are
				// recorded, not gated — they are the knob snapshot_every
				// exists to trade.
				if amp := float64(r.WALBytes) / float64(r.LogicalBytes); amp > 4 {
					return fmt.Errorf("bench: recovery result %d: write amplification %.2f exceeds 4", i, amp)
				}
			case "rejoin":
				if r.RecoveryNS <= 0 || r.BaselineBytes <= 0 || r.Rounds < 1 {
					return fmt.Errorf("bench: recovery result %d carries no rejoin measurements", i)
				}
				// The rejoin contract: a recovered replica catches up in
				// wire bytes proportional to what it missed — far below a
				// full transfer of the state it already holds on disk.
				if ratio := float64(r.WireBytes) / float64(r.BaselineBytes); ratio > 0.5 {
					return fmt.Errorf("bench: recovery result %d (n=%d): rejoin wire ratio %.2f exceeds 0.5", i, r.N, ratio)
				}
			default:
				return fmt.Errorf("bench: recovery result %d carries phase %q", i, r.Phase)
			}
			recoveryRows[r.Phase]++
		}
		if r.Mode == "load" {
			if r.Phase != "baseline" && r.Phase != "pooled" && r.Phase != "traced" {
				return fmt.Errorf("bench: load result %d carries phase %q", i, r.Phase)
			}
			if r.Conns < 1 || r.Workers < 1 || r.Sessions < 1 {
				return fmt.Errorf("bench: load result %d carries no closed-loop shape", i)
			}
			if r.P50NS <= 0 || r.P99NS < r.P50NS {
				return fmt.Errorf("bench: load result %d carries no latency quantiles (p50=%d p99=%d)", i, r.P50NS, r.P99NS)
			}
			if r.AllocsPerOp < 1 || r.AllocBytesPerOp < 1 {
				return fmt.Errorf("bench: load result %d carries no allocation measurements", i)
			}
			// The throughput floor guards against a serializing regression,
			// not machine speed: even one-session-at-a-time over loopback
			// clears it hundreds of times over.
			if r.SessionsPerSec < loadMinSessionsPerSec {
				return fmt.Errorf("bench: load result %d (%s): %.1f sessions/sec under the %d floor",
					i, r.Phase, r.SessionsPerSec, loadMinSessionsPerSec)
			}
			switch r.Phase {
			case "baseline":
				loadBaseline[loadKey(r)] = r
			case "pooled":
				if r.AllocsPerOp > loadMaxAllocsPerOp {
					return fmt.Errorf("bench: load result %d: pooled %d allocs/op exceeds the %d ceiling",
						i, r.AllocsPerOp, loadMaxAllocsPerOp)
				}
				loadPooled[loadKey(r)] = r
			case "traced":
				loadTraced[loadKey(r)] = r
			}
			loadRows[r.Phase]++
		}
		want[r.Strategy] = true
	}
	if has("core") {
		for name, seen := range want {
			if !seen {
				return fmt.Errorf("bench: no successful result for strategy %q", name)
			}
		}
	}
	if has("cluster") && clusterRows == 0 {
		return fmt.Errorf("bench: no successful cluster-convergence result")
	}
	if has("rateless") && (ratelessRows["accurate"] == 0 || ratelessRows["undershoot"] == 0) {
		return fmt.Errorf("bench: rateless scenario incomplete: %d accurate / %d undershoot rows",
			ratelessRows["accurate"], ratelessRows["undershoot"])
	}
	if has("mux") && muxRows == 0 {
		return fmt.Errorf("bench: no successful multiplexed-serving comparison result")
	}
	if has("ranges") && rangesRows == 0 {
		return fmt.Errorf("bench: no successful range-reconciliation comparison result")
	}
	if has("recovery") && (recoveryRows["replay"] == 0 || recoveryRows["rejoin"] == 0) {
		return fmt.Errorf("bench: recovery scenario incomplete: %d replay / %d rejoin rows",
			recoveryRows["replay"], recoveryRows["rejoin"])
	}
	if has("load") {
		if loadRows["baseline"] == 0 || loadRows["pooled"] == 0 || loadRows["traced"] == 0 {
			return fmt.Errorf("bench: load scenario incomplete: %d baseline / %d pooled / %d traced rows",
				loadRows["baseline"], loadRows["pooled"], loadRows["traced"])
		}
		// The allocation-elimination contract: on the identical closed
		// loop, the pooled serving path must allocate decisively less per
		// session than the fresh-allocation baseline.
		for key, pooled := range loadPooled {
			base, ok := loadBaseline[key]
			if !ok {
				return fmt.Errorf("bench: load cell %s has a pooled row but no baseline row", key)
			}
			// Buffer recycling's win is in bytes — the frames it pools are
			// the big allocations — so the decisive relative gate is on
			// alloc bytes; the count ratio is a sanity bound that pooling
			// never adds allocations.
			if ratio := float64(pooled.AllocBytesPerOp) / float64(base.AllocBytesPerOp); ratio > loadAllocBytesRatio {
				return fmt.Errorf("bench: load cell %s: pooled/baseline alloc-bytes ratio %.2f exceeds %.2f",
					key, ratio, loadAllocBytesRatio)
			}
			if ratio := float64(pooled.AllocsPerOp) / float64(base.AllocsPerOp); ratio > loadAllocRatio {
				return fmt.Errorf("bench: load cell %s: pooled/baseline allocation ratio %.2f exceeds %.2f",
					key, ratio, loadAllocRatio)
			}
		}
		// The tracing-overhead contract: turning on the full observability
		// stack (session tracing, trace capture, a live metrics endpoint)
		// on the identical closed loop may cost at most 5% of the pooled
		// throughput. The traced phase is not held to the pooled allocation
		// ceiling — trace capture allocates deliberately — only to staying
		// cheap where it counts, wall-clock session rate.
		for key, traced := range loadTraced {
			pooled, ok := loadPooled[key]
			if !ok {
				return fmt.Errorf("bench: load cell %s has a traced row but no pooled row", key)
			}
			if ratio := traced.SessionsPerSec / pooled.SessionsPerSec; ratio < loadTraceOverheadRatio {
				return fmt.Errorf("bench: load cell %s: traced/pooled throughput ratio %.2f under the %.2f floor",
					key, ratio, loadTraceOverheadRatio)
			}
		}
	}
	return nil
}

// parseModes resolves the -mode flag into the scenario set to run and
// the Modes list to stamp into the report (nil for a full run, so full
// reports keep their historical shape).
func parseModes(s string) (map[string]bool, []string, error) {
	known := map[string]bool{}
	for _, m := range allModes {
		known[m] = true
	}
	sel := map[string]bool{}
	var list []string
	for _, m := range strings.Split(s, ",") {
		m = strings.TrimSpace(m)
		switch {
		case m == "":
		case m == "all":
			for _, k := range allModes {
				sel[k] = true
			}
		case known[m]:
			if !sel[m] {
				sel[m] = true
				list = append(list, m)
			}
		default:
			return nil, nil, fmt.Errorf("bench: unknown mode %q (have %s, or all)", m, strings.Join(allModes, ","))
		}
	}
	if len(sel) == 0 {
		return nil, nil, fmt.Errorf("bench: -mode selected no scenarios")
	}
	if len(sel) == len(allModes) {
		list = nil // a full run; omit the field like every historical report
	}
	return sel, list, nil
}

// writeHeapProfile collects a post-GC heap profile at path — the
// artifact the CI load-smoke job uploads when an allocation gate fails,
// so the regression arrives with its own pprof evidence attached.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

func main() {
	quick := flag.Bool("quick", false, "trimmed matrix for CI smoke runs")
	out := flag.String("out", "BENCH_core.json", "output path")
	check := flag.String("check", "", "validate an existing report instead of running")
	mode := flag.String("mode", "all", "comma-separated scenarios to run: "+strings.Join(allModes, ",")+", or all")
	memprofile := flag.String("memprofile", "", "write a post-run heap profile (pprof) to this path")
	flag.Parse()

	if *check != "" {
		data, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := checkReport(data); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s: schema v%d ok\n", *check, SchemaVersion)
		return
	}

	sel, modeList, err := parseModes(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	rep := Report{
		SchemaVersion: SchemaVersion,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		Quick:         *quick,
		Modes:         modeList,
	}
	if sel["core"] {
		rep.Results = append(rep.Results, runMatrix(matrix(*quick), *quick, logf).Results...)
	}
	if sel["cluster"] {
		rep.Results = append(rep.Results, runClusterScenario(*quick, logf)...)
	}
	if sel["rateless"] {
		rep.Results = append(rep.Results, runRatelessScenario(*quick, logf)...)
	}
	if sel["mux"] {
		rep.Results = append(rep.Results, runMuxScenario(*quick, logf)...)
	}
	if sel["ranges"] {
		rep.Results = append(rep.Results, runRangesScenario(*quick, logf)...)
	}
	if sel["recovery"] {
		rep.Results = append(rep.Results, runRecoveryScenario(*quick, logf)...)
	}
	if sel["load"] {
		rep.Results = append(rep.Results, runLoadScenario(*quick, logf)...)
	}
	if *memprofile != "" {
		if err := writeHeapProfile(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := checkReport(data); err != nil {
		fmt.Fprintln(os.Stderr, "self-check failed:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d cells)\n", *out, len(rep.Results))
}
