package main

// The load scenario (mode "load" rows) is the serving path's capacity
// harness: a closed-loop generator drives thousands of pipelined mux
// sessions across many datasets against a real Server over loopback TCP
// and reports throughput (sessions_per_sec), server-observed latency
// (p50_ns/p99_ns from the server_session_seconds histogram) and heap
// pressure (allocs_per_op from runtime.MemStats deltas across the whole
// process — both ends of every connection).
//
// Each cell runs three times: a "baseline" phase with transport buffer
// pooling disabled (every frame freshly allocated, the pre-pooling
// serving path), a "pooled" phase with recycling on, and a "traced"
// phase with pooling on plus session tracing, trace capture and a live
// metrics endpoint — the everything-on observability configuration. All
// rows are recorded, so the allocation-elimination pass's effect lives
// in the trajectory, and the -check gate enforces the contracts: the
// pooled phase must allocate at most loadAllocRatio of the baseline per
// session, stay under an absolute ceiling, and clear a (deliberately
// conservative, machine-independent-ish) throughput floor; the traced
// phase must hold at least loadTraceOverheadRatio of the pooled
// throughput, bounding the cost of leaving observability on.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"robustset"
	"robustset/internal/metrics"
	"robustset/internal/transport"
)

// Load-gate constants. The relative gate is the contract of the
// allocation-elimination pass; the absolute values are safety nets set
// several times looser than measured so machine variance does not trip
// them.
const (
	// loadAllocBytesRatio bounds pooled alloc bytes/op relative to the
	// baseline phase of the same cell. Frame pooling recycles the big
	// buffers, so its win shows up in bytes (measured ~0.67); the
	// allocation *count* is dominated by the many small per-session
	// allocations the elimination pass attacks directly.
	loadAllocBytesRatio = 0.85
	// loadAllocRatio bounds pooled allocs/op relative to the baseline
	// phase of the same cell — a sanity check that pooling never *adds*
	// allocations (measured ~0.95: pooling removes only the ~17
	// frame-buffer allocations per session).
	loadAllocRatio = 1.0
	// loadMaxAllocsPerOp bounds the pooled phase's absolute per-session
	// allocation count. The allocation-elimination pass brought the
	// robust fetch round trip from ~2000 allocs/op down to ~350; the
	// ceiling holds the line well under the old figure while leaving
	// headroom for bigger cells and machine variance.
	loadMaxAllocsPerOp = 1000
	// loadTraceOverheadRatio is the floor on traced/pooled throughput:
	// running the identical closed loop with session tracing, a metrics
	// endpoint and trace capture enabled may cost at most 5% of the
	// pooled phase's sessions/sec. Tracing is advertised as cheap enough
	// to leave on; this is where that claim is enforced.
	loadTraceOverheadRatio = 0.95
	// loadMinSessionsPerSec is the liveness floor for both phases. It
	// deliberately gates pathology (a near-stalled serving path), not
	// machine speed: even fully serialized loopback sessions clear
	// hundreds per second, but the same rows are produced in-process by
	// the test suite under -race and coverage instrumentation on shared
	// CI runners, where an order of magnitude vanishes.
	loadMinSessionsPerSec = 10
)

// loadCell is one load-generation scenario: `datasets` published
// datasets served to `conns` multiplexed connections, each carrying
// `workers` closed-loop workers issuing `iters` sessions back to back.
type loadCell struct {
	datasets int
	conns    int
	workers  int   // concurrent workers (streams) per connection
	iters    int   // sessions per worker
	n        int   // base points per dataset
	diff     int   // client-missing extras per dataset
	delta    int64 // universe side length (0 → the standard 1<<20)
}

// sessions is the cell's total completed session count.
func (c loadCell) sessions() int64 {
	return int64(c.conns) * int64(c.workers) * int64(c.iters)
}

// loadMatrix enumerates the load scenarios: one cell, sized so the full
// run sustains 128 concurrent streams for 2048 sessions (quick trims to
// 256 sessions for CI smoke runs). The strategy is Robust — its served
// summary is the cached dataset sketch blob, so per-session server work
// is dominated by framing and transport, exactly the costs the pooled
// phase exists to eliminate.
func loadMatrix(quick bool) []loadCell {
	if quick {
		return []loadCell{{datasets: 8, conns: 4, workers: 8, iters: 8, n: 500, diff: 4}}
	}
	return []loadCell{{datasets: 16, conns: 8, workers: 16, iters: 16, n: 2000, diff: 8}}
}

// runLoadPhase executes one cell as the given phase: "baseline" runs
// with transport buffer pooling off, "pooled" with pooling on, and
// "traced" with pooling on plus the full observability stack — session
// tracing into a TraceLog, a live metrics endpoint, and an in-run scrape
// asserting /metrics serves well-formed Prometheus text and
// /debug/traces captured at least one expensive session.
func runLoadPhase(c loadCell, phase string) Result {
	pooled := phase != "baseline"
	traced := phase == "traced"
	if c.delta == 0 {
		c.delta = 1 << 20
	}
	res := Result{
		Strategy: robustset.Robust{}.Name(), Mode: "load", Phase: phase,
		N: c.n, DiffRate: float64(c.diff) / float64(c.n),
		Dim: 2, Delta: c.delta, Regime: "exact",
		Conns: c.conns, Workers: c.conns * c.workers,
	}
	defer transport.SetBufferPooling(true)
	transport.SetBufferPooling(pooled)

	u := robustset.Universe{Dim: res.Dim, Delta: res.Delta}
	params := robustset.Params{Universe: u, Seed: 1201, DiffBudget: c.diff + 4}
	reg := robustset.NewMetrics()
	opts := []robustset.ServerOption{robustset.WithServerMetrics(reg),
		robustset.WithServerMaxStreamsPerConn(c.workers)}
	var debugAddr string
	if traced {
		// Every session of this cell moves more than 4 KiB, so the byte
		// threshold guarantees the slow ring captures traffic for the
		// in-run scrape to assert on.
		tl := robustset.NewTraceLog(robustset.WithByteThreshold(4096))
		mln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			res.Err = err.Error()
			return res
		}
		debugAddr = mln.Addr().String()
		opts = append(opts, robustset.WithServerTracing(tl),
			robustset.WithServerMetricsListener(mln))
	}
	srv := robustset.NewServer(opts...)
	defer srv.Close()
	names := make([]string, c.datasets)
	locals := make([][]robustset.Point, c.datasets)
	wants := make([][]robustset.Point, c.datasets)
	for i := range names {
		serverPts, clientPts, err := muxWorkload(u, c.n, c.diff, uint64(c.n)*29+uint64(i))
		if err != nil {
			res.Err = err.Error()
			return res
		}
		names[i] = fmt.Sprintf("load/%d", i)
		if _, err := srv.Publish(names[i], params, serverPts); err != nil {
			res.Err = err.Error()
			return res
		}
		locals[i], wants[i] = clientPts, serverPts
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		res.Err = err.Error()
		return res
	}
	go srv.Serve(ln)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	clients := make([]*robustset.Client, c.conns)
	for i := range clients {
		cl, err := robustset.DialClient(ctx, ln.Addr().String(),
			robustset.WithClientMaxStreams(c.workers))
		if err != nil {
			res.Err = err.Error()
			return res
		}
		defer cl.Close()
		clients[i] = cl
	}

	// Warmup: one verified session per dataset primes the server's
	// cached sketch blobs and checks correctness once, so the measured
	// loop only has to assert result sizes.
	for i, name := range names {
		cs, err := clients[0].Session(name, robustset.Robust{})
		if err != nil {
			res.Err = err.Error()
			return res
		}
		out, _, err := cs.Fetch(ctx, locals[i])
		if err != nil {
			res.Err = fmt.Sprintf("warmup %s: %v", name, err)
			return res
		}
		if !robustset.EqualMultisets(out.SPrime, wants[i]) {
			res.Err = fmt.Sprintf("warmup %s: wrong result", name)
			return res
		}
		res.ResultSize += len(out.SPrime)
	}

	// The measured closed loop. MemStats deltas are process-wide, so
	// allocs_per_op charges each session with both its client and its
	// server end — the full loopback round trip the pooling pass works
	// on. Mallocs is monotone (GC does not rewind it), so the delta is
	// exact.
	var wg sync.WaitGroup
	errs := make(chan error, c.conns*c.workers)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for w := 0; w < c.conns*c.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := clients[w%c.conns]
			for i := 0; i < c.iters; i++ {
				ds := (w + i) % c.datasets
				cs, err := cl.Session(names[ds], robustset.Robust{})
				if err == nil {
					var out *robustset.SyncResult
					if out, _, err = cs.Fetch(ctx, locals[ds]); err == nil && len(out.SPrime) != len(wants[ds]) {
						err = fmt.Errorf("got %d points, want %d", len(out.SPrime), len(wants[ds]))
					}
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d session %d (%s): %w", w, i, names[ds], err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	close(errs)
	if err := <-errs; err != nil {
		res.Err = err.Error()
		return res
	}

	sessions := c.sessions()
	res.Sessions = sessions
	res.SyncNS = elapsed.Nanoseconds()
	res.SessionsPerSec = float64(sessions) / elapsed.Seconds()
	res.AllocsPerOp = int64(m1.Mallocs-m0.Mallocs) / sessions
	res.AllocBytesPerOp = int64(m1.TotalAlloc-m0.TotalAlloc) / sessions
	for _, cl := range clients {
		res.WireBytes += cl.Stats().Total()
	}
	snap := reg.Snapshot()
	res.P50NS = snap["server_session_seconds_p50_ns"]
	res.P99NS = snap["server_session_seconds_p99_ns"]
	if decodeFails := snap["mux_decode_failures_total"]; decodeFails != 0 {
		res.Err = fmt.Sprintf("%d mux decode failures", decodeFails)
		return res
	}
	if traced {
		if err := scrapeObservability(debugAddr); err != nil {
			res.Err = err.Error()
		}
	}
	return res
}

// scrapeObservability is the load run's observability smoke: with the
// cell's traffic still hot it fetches the live /metrics endpoint and
// lints it as Prometheus text 0.0.4, then fetches /debug/traces and
// requires the slow ring to have captured at least one session. A
// serving path whose telemetry cannot be scraped mid-load fails the
// bench even if throughput is fine.
func scrapeObservability(addr string) error {
	get := func(path string) ([]byte, error) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return nil, fmt.Errorf("scrape %s: %w", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("scrape %s: %w", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("scrape %s: status %d", path, resp.StatusCode)
		}
		return body, nil
	}
	promText, err := get("/metrics")
	if err != nil {
		return err
	}
	if err := metrics.LintPrometheus(strings.NewReader(string(promText))); err != nil {
		return fmt.Errorf("scrape /metrics: %w", err)
	}
	if !strings.Contains(string(promText), "server_sessions_total") {
		return fmt.Errorf("scrape /metrics: no server_sessions_total sample")
	}
	tracesJSON, err := get("/debug/traces")
	if err != nil {
		return err
	}
	var traces struct {
		Recent []json.RawMessage `json:"recent"`
		Slow   []json.RawMessage `json:"slow"`
	}
	if err := json.Unmarshal(tracesJSON, &traces); err != nil {
		return fmt.Errorf("scrape /debug/traces: %w", err)
	}
	if len(traces.Slow) == 0 {
		return fmt.Errorf("scrape /debug/traces: no slow traces captured (recent=%d)", len(traces.Recent))
	}
	return nil
}

// runLoadCell runs the baseline, pooled, and traced phases of one cell.
func runLoadCell(c loadCell) []Result {
	return []Result{
		runLoadPhase(c, "baseline"),
		runLoadPhase(c, "pooled"),
		runLoadPhase(c, "traced"),
	}
}

// runLoadScenario executes the load matrix.
func runLoadScenario(quick bool, logf func(format string, args ...any)) []Result {
	cells := loadMatrix(quick)
	var out []Result
	for i, c := range cells {
		rows := runLoadCell(c)
		out = append(out, rows...)
		for _, r := range rows {
			if r.Err != "" {
				logf("[load %d/%d] %-8s conns=%d workers=%d ERROR: %s",
					i+1, len(cells), r.Phase, r.Conns, r.Workers, r.Err)
				continue
			}
			logf("[load %d/%d] %-8s conns=%d workers=%d sessions=%d rate=%.0f/s p50=%-10s p99=%-10s allocs/op=%d (%dB)",
				i+1, len(cells), r.Phase, r.Conns, r.Workers, r.Sessions, r.SessionsPerSec,
				time.Duration(r.P50NS), time.Duration(r.P99NS), r.AllocsPerOp, r.AllocBytesPerOp)
		}
		if len(rows) >= 2 && rows[0].Err == "" && rows[1].Err == "" {
			logf("[load %d/%d] allocation ratio pooled/baseline = %.2f",
				i+1, len(cells), float64(rows[1].AllocsPerOp)/float64(rows[0].AllocsPerOp))
		}
		if len(rows) >= 3 && rows[1].Err == "" && rows[2].Err == "" {
			logf("[load %d/%d] throughput ratio traced/pooled = %.2f",
				i+1, len(cells), rows[2].SessionsPerSec/rows[1].SessionsPerSec)
		}
	}
	return out
}
