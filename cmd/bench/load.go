package main

// The load scenario (mode "load" rows) is the serving path's capacity
// harness: a closed-loop generator drives thousands of pipelined mux
// sessions across many datasets against a real Server over loopback TCP
// and reports throughput (sessions_per_sec), server-observed latency
// (p50_ns/p99_ns from the server_session_seconds histogram) and heap
// pressure (allocs_per_op from runtime.MemStats deltas across the whole
// process — both ends of every connection).
//
// Each cell runs twice: a "baseline" phase with transport buffer
// pooling disabled (every frame freshly allocated, the pre-pooling
// serving path) and a "pooled" phase with recycling on. Both rows are
// recorded, so the allocation-elimination pass's effect lives in the
// trajectory, and the -check gate enforces it: the pooled phase must
// allocate at most loadAllocRatio of the baseline per session, stay
// under an absolute ceiling, and clear a (deliberately conservative,
// machine-independent-ish) throughput floor.

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"robustset"
	"robustset/internal/transport"
)

// Load-gate constants. The relative gate is the contract of the
// allocation-elimination pass; the absolute values are safety nets set
// several times looser than measured so machine variance does not trip
// them.
const (
	// loadAllocBytesRatio bounds pooled alloc bytes/op relative to the
	// baseline phase of the same cell. Frame pooling recycles the big
	// buffers, so its win shows up in bytes (measured ~0.67); the
	// allocation *count* is dominated by the many small per-session
	// allocations the elimination pass attacks directly.
	loadAllocBytesRatio = 0.85
	// loadAllocRatio bounds pooled allocs/op relative to the baseline
	// phase of the same cell — a sanity check that pooling never *adds*
	// allocations (measured ~0.95: pooling removes only the ~17
	// frame-buffer allocations per session).
	loadAllocRatio = 1.0
	// loadMaxAllocsPerOp bounds the pooled phase's absolute per-session
	// allocation count. The allocation-elimination pass brought the
	// robust fetch round trip from ~2000 allocs/op down to ~350; the
	// ceiling holds the line well under the old figure while leaving
	// headroom for bigger cells and machine variance.
	loadMaxAllocsPerOp = 1000
	// loadMinSessionsPerSec is the liveness floor for both phases. It
	// deliberately gates pathology (a near-stalled serving path), not
	// machine speed: even fully serialized loopback sessions clear
	// hundreds per second, but the same rows are produced in-process by
	// the test suite under -race and coverage instrumentation on shared
	// CI runners, where an order of magnitude vanishes.
	loadMinSessionsPerSec = 10
)

// loadCell is one load-generation scenario: `datasets` published
// datasets served to `conns` multiplexed connections, each carrying
// `workers` closed-loop workers issuing `iters` sessions back to back.
type loadCell struct {
	datasets int
	conns    int
	workers  int   // concurrent workers (streams) per connection
	iters    int   // sessions per worker
	n        int   // base points per dataset
	diff     int   // client-missing extras per dataset
	delta    int64 // universe side length (0 → the standard 1<<20)
}

// sessions is the cell's total completed session count.
func (c loadCell) sessions() int64 {
	return int64(c.conns) * int64(c.workers) * int64(c.iters)
}

// loadMatrix enumerates the load scenarios: one cell, sized so the full
// run sustains 128 concurrent streams for 2048 sessions (quick trims to
// 256 sessions for CI smoke runs). The strategy is Robust — its served
// summary is the cached dataset sketch blob, so per-session server work
// is dominated by framing and transport, exactly the costs the pooled
// phase exists to eliminate.
func loadMatrix(quick bool) []loadCell {
	if quick {
		return []loadCell{{datasets: 8, conns: 4, workers: 8, iters: 8, n: 500, diff: 4}}
	}
	return []loadCell{{datasets: 16, conns: 8, workers: 16, iters: 16, n: 2000, diff: 8}}
}

// runLoadPhase executes one cell under the given pooling setting.
func runLoadPhase(c loadCell, pooled bool) Result {
	phase := "baseline"
	if pooled {
		phase = "pooled"
	}
	if c.delta == 0 {
		c.delta = 1 << 20
	}
	res := Result{
		Strategy: robustset.Robust{}.Name(), Mode: "load", Phase: phase,
		N: c.n, DiffRate: float64(c.diff) / float64(c.n),
		Dim: 2, Delta: c.delta, Regime: "exact",
		Conns: c.conns, Workers: c.conns * c.workers,
	}
	defer transport.SetBufferPooling(true)
	transport.SetBufferPooling(pooled)

	u := robustset.Universe{Dim: res.Dim, Delta: res.Delta}
	params := robustset.Params{Universe: u, Seed: 1201, DiffBudget: c.diff + 4}
	metrics := robustset.NewMetrics()
	srv := robustset.NewServer(robustset.WithServerMetrics(metrics),
		robustset.WithServerMaxStreamsPerConn(c.workers))
	defer srv.Close()
	names := make([]string, c.datasets)
	locals := make([][]robustset.Point, c.datasets)
	wants := make([][]robustset.Point, c.datasets)
	for i := range names {
		serverPts, clientPts, err := muxWorkload(u, c.n, c.diff, uint64(c.n)*29+uint64(i))
		if err != nil {
			res.Err = err.Error()
			return res
		}
		names[i] = fmt.Sprintf("load/%d", i)
		if _, err := srv.Publish(names[i], params, serverPts); err != nil {
			res.Err = err.Error()
			return res
		}
		locals[i], wants[i] = clientPts, serverPts
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		res.Err = err.Error()
		return res
	}
	go srv.Serve(ln)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	clients := make([]*robustset.Client, c.conns)
	for i := range clients {
		cl, err := robustset.DialClient(ctx, ln.Addr().String(),
			robustset.WithClientMaxStreams(c.workers))
		if err != nil {
			res.Err = err.Error()
			return res
		}
		defer cl.Close()
		clients[i] = cl
	}

	// Warmup: one verified session per dataset primes the server's
	// cached sketch blobs and checks correctness once, so the measured
	// loop only has to assert result sizes.
	for i, name := range names {
		cs, err := clients[0].Session(name, robustset.Robust{})
		if err != nil {
			res.Err = err.Error()
			return res
		}
		out, _, err := cs.Fetch(ctx, locals[i])
		if err != nil {
			res.Err = fmt.Sprintf("warmup %s: %v", name, err)
			return res
		}
		if !robustset.EqualMultisets(out.SPrime, wants[i]) {
			res.Err = fmt.Sprintf("warmup %s: wrong result", name)
			return res
		}
		res.ResultSize += len(out.SPrime)
	}

	// The measured closed loop. MemStats deltas are process-wide, so
	// allocs_per_op charges each session with both its client and its
	// server end — the full loopback round trip the pooling pass works
	// on. Mallocs is monotone (GC does not rewind it), so the delta is
	// exact.
	var wg sync.WaitGroup
	errs := make(chan error, c.conns*c.workers)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for w := 0; w < c.conns*c.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := clients[w%c.conns]
			for i := 0; i < c.iters; i++ {
				ds := (w + i) % c.datasets
				cs, err := cl.Session(names[ds], robustset.Robust{})
				if err == nil {
					var out *robustset.SyncResult
					if out, _, err = cs.Fetch(ctx, locals[ds]); err == nil && len(out.SPrime) != len(wants[ds]) {
						err = fmt.Errorf("got %d points, want %d", len(out.SPrime), len(wants[ds]))
					}
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d session %d (%s): %w", w, i, names[ds], err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	close(errs)
	if err := <-errs; err != nil {
		res.Err = err.Error()
		return res
	}

	sessions := c.sessions()
	res.Sessions = sessions
	res.SyncNS = elapsed.Nanoseconds()
	res.SessionsPerSec = float64(sessions) / elapsed.Seconds()
	res.AllocsPerOp = int64(m1.Mallocs-m0.Mallocs) / sessions
	res.AllocBytesPerOp = int64(m1.TotalAlloc-m0.TotalAlloc) / sessions
	for _, cl := range clients {
		res.WireBytes += cl.Stats().Total()
	}
	snap := metrics.Snapshot()
	res.P50NS = snap["server_session_seconds_p50_ns"]
	res.P99NS = snap["server_session_seconds_p99_ns"]
	if decodeFails := snap["mux_decode_failures_total"]; decodeFails != 0 {
		res.Err = fmt.Sprintf("%d mux decode failures", decodeFails)
	}
	return res
}

// runLoadCell runs the baseline phase, then the pooled phase, of one
// cell.
func runLoadCell(c loadCell) []Result {
	return []Result{runLoadPhase(c, false), runLoadPhase(c, true)}
}

// runLoadScenario executes the load matrix.
func runLoadScenario(quick bool, logf func(format string, args ...any)) []Result {
	cells := loadMatrix(quick)
	var out []Result
	for i, c := range cells {
		rows := runLoadCell(c)
		out = append(out, rows...)
		for _, r := range rows {
			if r.Err != "" {
				logf("[load %d/%d] %-8s conns=%d workers=%d ERROR: %s",
					i+1, len(cells), r.Phase, r.Conns, r.Workers, r.Err)
				continue
			}
			logf("[load %d/%d] %-8s conns=%d workers=%d sessions=%d rate=%.0f/s p50=%-10s p99=%-10s allocs/op=%d (%dB)",
				i+1, len(cells), r.Phase, r.Conns, r.Workers, r.Sessions, r.SessionsPerSec,
				time.Duration(r.P50NS), time.Duration(r.P99NS), r.AllocsPerOp, r.AllocBytesPerOp)
		}
		if len(rows) == 2 && rows[0].Err == "" && rows[1].Err == "" {
			logf("[load %d/%d] allocation ratio pooled/baseline = %.2f",
				i+1, len(cells), float64(rows[1].AllocsPerOp)/float64(rows[0].AllocsPerOp))
		}
	}
	return out
}
