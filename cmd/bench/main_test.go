package main

import (
	"encoding/json"
	"strings"
	"testing"

	"robustset"
)

// tinyMatrix is a minimal all-strategies matrix for in-process testing.
func tinyMatrix() []cell {
	var cells []cell
	for _, s := range robustset.Strategies() {
		regime := "noisy"
		switch s.(type) {
		case robustset.ExactIBLT, robustset.Rateless, robustset.Ranged, robustset.CPI:
			regime = "exact"
		}
		cells = append(cells, cell{
			strategy: s, n: 300, rate: 0.01,
			dim: 2, delta: 1 << 12, regime: regime,
		})
	}
	return cells
}

// tinyClusterCell is a minimal convergence scenario for in-process
// testing.
func tinyClusterCell() clusterCell {
	return clusterCell{strategy: robustset.ExactIBLT{}, n: 100, extra: 3, nodes: 2, shards: 2}
}

// tinyRatelessCells is a minimal rateless-vs-doubling pair for in-process
// testing: the difference is large enough for the undershoot contract to
// hold over the fixed estimator bytes.
func tinyRatelessCells() []ratelessCell {
	return []ratelessCell{
		{n: 2_000, diff: 800, skewed: false},
		{n: 2_000, diff: 800, skewed: true},
	}
}

// tinyRecoveryCells is a minimal crash-recovery pair for in-process
// testing: one replay cell (churn deliberately not a multiple of the
// snapshot interval so a non-empty tail is replayed) and one rejoin
// cell sized so the gated wire ratio measures delta-proportionality
// rather than the fixed per-session strata overhead.
func tinyRecoveryCells() (recoveryReplayCell, recoveryRejoinCell) {
	return recoveryReplayCell{n: 2_000, churn: 300, every: 64},
		recoveryRejoinCell{n: 8_000, extra: 12, missed: 48}
}

// tinyMuxCell is a minimal multiplexed-serving comparison for
// in-process testing. The byte contract (connection overhead amortized
// once) holds at this scale; the wall-clock contract is only gated on
// quick reports, so the tiny reports below are stamped Quick=false —
// a single-core test runner measures scheduling noise, not overlap.
func tinyMuxCell() muxCell {
	return muxCell{shards: 4, perShard: 60, diff: 16, budget: 12}
}

// tinyRangesCell is a minimal divide-and-conquer comparison for
// in-process testing: the difference is tiny relative to n, so the
// wire contract against the exact-IBLT path's fixed strata cost holds
// even at test scale.
func tinyRangesCell() rangesCell {
	return rangesCell{n: 2_000, replaced: 4, streams: 2}
}

// tinyLoadCell is a minimal closed-loop load scenario for in-process
// testing: enough concurrent sessions to exercise the worker fan-out
// and the MemStats accounting, small enough for a unit-test budget —
// including under -race, where each robust session costs an order of
// magnitude more wall clock (the shallow universe keeps the per-level
// work down so the liveness floor holds on instrumented runners).
func tinyLoadCell() loadCell {
	return loadCell{datasets: 4, conns: 2, workers: 4, iters: 8, n: 300, diff: 4, delta: 1 << 12}
}

// TestRunMatrixAndCheck runs the harness end to end on a tiny matrix and
// validates the produced report with the same checker CI uses.
func TestRunMatrixAndCheck(t *testing.T) {
	rep := runMatrix(tinyMatrix(), false, t.Logf)
	if len(rep.Results) != 7 {
		t.Fatalf("got %d results, want 7", len(rep.Results))
	}
	rep.Results = append(rep.Results, runClusterCell(tinyClusterCell()))
	for _, c := range tinyRatelessCells() {
		rep.Results = append(rep.Results, runRatelessCell(c))
	}
	rep.Results = append(rep.Results, runMuxCell(tinyMuxCell()))
	rep.Results = append(rep.Results, runRangesCell(tinyRangesCell()))
	replayCell, rejoinCell := tinyRecoveryCells()
	rep.Results = append(rep.Results, runRecoveryReplayCell(replayCell))
	rep.Results = append(rep.Results, runRecoveryRejoinCell(rejoinCell))
	rep.Results = append(rep.Results, runLoadCell(tinyLoadCell())...)
	for _, r := range rep.Results {
		if r.Err != "" {
			t.Errorf("%s: %s", r.Strategy, r.Err)
		}
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkReport(data); err != nil {
		t.Fatalf("self-produced report fails the schema check: %v", err)
	}
}

// TestRunClusterCell pins the cluster scenario's measurements: a 2-node
// cluster with disjoint extras converges, reporting rounds, bytes and
// the exact union size.
func TestRunClusterCell(t *testing.T) {
	r := runClusterCell(tinyClusterCell())
	if r.Err != "" {
		t.Fatal(r.Err)
	}
	if r.Mode != "cluster" || r.Nodes != 2 || r.Shards != 2 {
		t.Errorf("row coordinates %+v", r)
	}
	if r.Rounds < 1 || r.SyncNS <= 0 || r.WireBytes <= 0 {
		t.Errorf("row carries no convergence measurements: %+v", r)
	}
	if want := 100 + 2*3; r.ResultSize != want {
		t.Errorf("converged size %d, want %d", r.ResultSize, want)
	}
}

// TestQuickMatrixCoversAllStrategies pins the CI matrix shape: every
// strategy appears, and the quick matrix stays small enough for a smoke
// job.
func TestQuickMatrixCoversAllStrategies(t *testing.T) {
	cells := matrix(true)
	seen := map[string]bool{}
	for _, c := range cells {
		seen[c.strategy.Name()] = true
		if c.n > 10_000 {
			t.Errorf("quick matrix contains n=%d", c.n)
		}
	}
	for _, s := range robustset.Strategies() {
		if !seen[s.Name()] {
			t.Errorf("quick matrix misses strategy %s", s.Name())
		}
	}
	if full := matrix(false); len(full) <= len(cells) {
		t.Error("full matrix not larger than quick matrix")
	}
}

// TestCheckReportRejectsDrift asserts the drift gate fires on schema
// violations.
func TestCheckReportRejectsDrift(t *testing.T) {
	rep := runMatrix(tinyMatrix(), false, func(string, ...any) {})
	rep.Results = append(rep.Results, runClusterCell(tinyClusterCell()))
	for _, c := range tinyRatelessCells() {
		rep.Results = append(rep.Results, runRatelessCell(c))
	}
	rep.Results = append(rep.Results, runMuxCell(tinyMuxCell()))
	rep.Results = append(rep.Results, runRangesCell(tinyRangesCell()))
	replayCell, rejoinCell := tinyRecoveryCells()
	rep.Results = append(rep.Results, runRecoveryReplayCell(replayCell))
	rep.Results = append(rep.Results, runRecoveryRejoinCell(rejoinCell))
	rep.Results = append(rep.Results, runLoadCell(tinyLoadCell())...)
	good, _ := json.Marshal(rep)

	cases := []struct {
		name   string
		mutate func(r *Report)
		want   string
	}{
		{"version", func(r *Report) { r.SchemaVersion = 99 }, "schema version"},
		{"empty", func(r *Report) { r.Results = nil }, "empty results"},
		{"strategy", func(r *Report) { r.Results[0].Strategy = "bogus" }, "unknown strategy"},
		{"missing", func(r *Report) { r.Results = r.Results[:1] }, "no successful result"},
		{"nomeasure", func(r *Report) { r.Results[2].SyncNS = 0 }, "no measurements"},
		{"nocluster", func(r *Report) { r.Results = append(r.Results[:7:7], r.Results[8:]...) }, "no successful cluster-convergence"},
		{"norounds", func(r *Report) { r.Results[7].Rounds = 0 }, "no convergence measurements"},
		{"norateless", func(r *Report) { r.Results = r.Results[:8] }, "rateless scenario incomplete"},
		{"badestimate", func(r *Report) { r.Results[8].Estimate = "wild" }, "estimate regime"},
		{"nobaseline", func(r *Report) { r.Results[8].BaselineBytes = 0 }, "no doubling baseline"},
		{"contract", func(r *Report) {
			for i := range r.Results {
				if r.Results[i].Estimate == "undershoot" {
					r.Results[i].WireBytes = r.Results[i].BaselineBytes
				}
			}
		}, "undershoot wire ratio"},
		{"nomux", func(r *Report) { r.Results = r.Results[:10] }, "no successful multiplexed-serving"},
		{"muxstreams", func(r *Report) { r.Results[10].MuxStreams = 1 }, "streams on one connection"},
		{"muxbytes", func(r *Report) { r.Results[10].WireBytes = r.Results[10].BaselineBytes }, "wire ratio"},
		{"muxwall", func(r *Report) {
			r.Quick = true
			r.Results[10].SyncNS = r.Results[10].BaselineNS
		}, "wall-clock ratio"},
		{"noranges", func(r *Report) { r.Results = r.Results[:11] }, "no successful range-reconciliation"},
		{"norangesdepth", func(r *Report) { r.Results[11].BaselineRounds = 0 }, "no pipelined round-depth comparison"},
		{"rangeswire", func(r *Report) { r.Results[11].WireBytes = r.Results[11].BaselineBytes }, "exceeds 0.5"},
		{"rangesrounds", func(r *Report) {
			// Quick also arms the mux wall-clock gate, which this tiny
			// single-core fixture cannot honestly pass; pin it green so
			// the ranges round gate is the one that fires.
			r.Quick = true
			r.Results[10].SyncNS = 1
			r.Results[11].Rounds = r.Results[11].BaselineRounds
		}, "round ratio"},
		{"norecovery", func(r *Report) { r.Results = r.Results[:12] }, "recovery scenario incomplete"},
		{"noreplay", func(r *Report) { r.Results[12].ReplayRecords = 0 }, "replayed no log records"},
		{"writeamp", func(r *Report) { r.Results[12].WALBytes = 100 * r.Results[12].LogicalBytes }, "write amplification"},
		{"rejoinratio", func(r *Report) { r.Results[13].WireBytes = r.Results[13].BaselineBytes }, "rejoin wire ratio"},
		{"noload", func(r *Report) { r.Results = r.Results[:14] }, "load scenario incomplete"},
		{"loadrate", func(r *Report) { r.Results[14].SessionsPerSec = 1 }, "sessions/sec under"},
		{"loadceiling", func(r *Report) { r.Results[15].AllocsPerOp = loadMaxAllocsPerOp + 1 }, "allocs/op exceeds"},
		{"loadbytesratio", func(r *Report) { r.Results[15].AllocBytesPerOp = 2 * r.Results[14].AllocBytesPerOp }, "alloc-bytes ratio"},
		{"loadallocratio", func(r *Report) { r.Results[15].AllocsPerOp = r.Results[14].AllocsPerOp + 1 }, "allocation ratio"},
		{"loadorphan", func(r *Report) { r.Results[14].Conns++ }, "no baseline row"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rep Report
			if err := json.Unmarshal(good, &rep); err != nil {
				t.Fatal(err)
			}
			tc.mutate(&rep)
			data, _ := json.Marshal(rep)
			err := checkReport(data)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
	if err := checkReport([]byte("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

// TestRunRatelessCell pins the comparison scenario's contract at test
// scale: the skewed workload collapses the estimate and the rateless
// stream must then decisively beat the doubling path; the honest workload
// must stay within the 1.1× band.
func TestRunRatelessCell(t *testing.T) {
	for _, c := range tinyRatelessCells() {
		r := runRatelessCell(c)
		if r.Err != "" {
			t.Fatalf("skewed=%v: %s", c.skewed, r.Err)
		}
		ratio := float64(r.WireBytes) / float64(r.BaselineBytes)
		t.Logf("skewed=%v: rateless %d B vs doubling %d B (×%.2f)", c.skewed, r.WireBytes, r.BaselineBytes, ratio)
		if c.skewed && ratio > 0.6 {
			t.Errorf("undershoot ratio %.2f exceeds the 0.6 contract", ratio)
		}
		if !c.skewed && ratio > 1.1 {
			t.Errorf("accurate ratio %.2f exceeds the 1.1 contract", ratio)
		}
		if want := c.n + c.diff; r.ResultSize != want {
			t.Errorf("converged size %d, want %d", r.ResultSize, want)
		}
	}
}

// TestRunRangesCell pins the divide-and-conquer scenario's contract at
// test scale: on a tiny difference the probe tree must decisively beat
// the exact-IBLT path's fixed strata cost, and pipelining sibling
// subranges must cut the round depth below the serial run's.
func TestRunRangesCell(t *testing.T) {
	c := tinyRangesCell()
	r := runRangesCell(c)
	if r.Err != "" {
		t.Fatal(r.Err)
	}
	if r.Mode != "ranges" || r.MuxStreams < 2 {
		t.Errorf("row coordinates %+v", r)
	}
	ratio := float64(r.WireBytes) / float64(r.BaselineBytes)
	t.Logf("ranged %d B vs exact-IBLT %d B (×%.2f), rounds %d vs serial %d",
		r.WireBytes, r.BaselineBytes, ratio, r.Rounds, r.BaselineRounds)
	if ratio > 0.5 {
		t.Errorf("wire ratio %.2f exceeds the 0.5 contract", ratio)
	}
	if r.Rounds < 1 || r.BaselineRounds <= r.Rounds {
		t.Errorf("pipelined rounds %d not below serial %d", r.Rounds, r.BaselineRounds)
	}
	if r.ResultSize != c.n {
		t.Errorf("converged size %d, want %d", r.ResultSize, c.n)
	}
}
