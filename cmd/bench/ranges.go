package main

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"robustset"
	"robustset/internal/ranges"
)

// rangesCell is one divide-and-conquer comparison scenario: n shared
// base points with `replaced` of them swapped on the fetching side — a
// symmetric difference of 2·replaced, the huge-N/tiny-delta regime the
// ranged strategy exists for. Each cell measures twice: the ranged
// wire bytes against the exact-IBLT doubling path on an identical
// in-process pipe (the strata estimator's fixed cost is exactly what
// range probing undercuts), then the wall-clock round depth of the
// same reconciliation pipelined as sibling-range mux streams against a
// serial one-probe-per-round-trip run on the same live server.
type rangesCell struct {
	n        int
	replaced int
	streams  int
}

// rangesMatrix enumerates the comparison scenarios. Differences stay
// tiny relative to n — the regime of the wire contract; the scaling of
// ranged cost with the difference itself is the core matrix's job.
func rangesMatrix(quick bool) []rangesCell {
	if quick {
		return []rangesCell{{n: 20_000, replaced: 5, streams: 4}}
	}
	return []rangesCell{
		{n: 100_000, replaced: 5, streams: 4},
		{n: 1_000_000, replaced: 5, streams: 4},
	}
}

// rangesWorkload builds the comparison instance: a dense deterministic
// population (duplicates are fine — it is a multiset) with `replaced`
// points swapped on Bob's side for distinct high-coordinate outliers.
func rangesWorkload(u robustset.Universe, n, replaced int) (alice, bob []robustset.Point) {
	alice = make([]robustset.Point, n)
	for i := range alice {
		alice[i] = robustset.Point{int64(i*7919) % u.Delta, int64(i/4096) % u.Delta}
	}
	bob = robustset.ClonePoints(alice)
	stride := n / (replaced + 1)
	for i := 0; i < replaced; i++ {
		bob[(i+1)*stride] = robustset.Point{u.Delta - int64(i) - 1, int64(i)}
	}
	return alice, bob
}

// runRangesCell measures one comparison cell end to end.
func runRangesCell(c rangesCell) Result {
	res := Result{
		Strategy: robustset.Ranged{}.Name(), Mode: "ranges",
		N: c.n, DiffRate: float64(2*c.replaced) / float64(c.n),
		Dim: 2, Delta: 1 << 12, Regime: "exact",
	}
	u := robustset.Universe{Dim: res.Dim, Delta: res.Delta}
	alice, bob := rangesWorkload(u, c.n, c.replaced)
	params := robustset.Params{Universe: u, Seed: 47, DiffBudget: 2*c.replaced + 6}

	// Build timing: the ordered fingerprint tree over Alice's keys —
	// the summary the serving side pays once and then maintains
	// incrementally.
	buildStart := time.Now()
	if _, err := ranges.NewFromSorted(ranges.KeyLen(u.Dim), params.Seed, ranges.Keys(u, alice)); err != nil {
		res.Err = err.Error()
		return res
	}
	res.BuildNS = time.Since(buildStart).Nanoseconds()

	// Wire comparison on the in-process pipe, both paths required to
	// converge exactly.
	rBytes, rNS, rOut, err := pipeExchange(robustset.Ranged{}, params, alice, bob)
	if err != nil {
		res.Err = "ranged: " + err.Error()
		return res
	}
	dBytes, _, dOut, err := pipeExchange(robustset.ExactIBLT{MaxRetries: 24}, params, alice, bob)
	if err != nil {
		res.Err = "exact-iblt: " + err.Error()
		return res
	}
	if !robustset.EqualMultisets(rOut, alice) || !robustset.EqualMultisets(dOut, alice) {
		res.Err = "paths did not converge to Alice's multiset"
		return res
	}
	res.WireBytes, res.BaselineBytes = rBytes, dBytes
	res.SyncNS = rNS
	res.ResultSize = len(rOut)

	// Round-depth comparison on a live server: sibling subranges as
	// pipelined mux streams against a serial one-probe-per-frame run.
	srv := robustset.NewServer()
	defer srv.Close()
	if _, err := srv.Publish("r", params, alice); err != nil {
		res.Err = err.Error()
		return res
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		res.Err = err.Error()
		return res
	}
	go srv.Serve(ln)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	cl, err := robustset.DialClient(ctx, ln.Addr().String())
	if err != nil {
		res.Err = err.Error()
		return res
	}
	defer cl.Close()
	var mu sync.Mutex
	var last *robustset.SessionTrace
	sink := robustset.WithSessionTrace(func(st *robustset.SessionTrace) {
		mu.Lock()
		last = st
		mu.Unlock()
	})
	fetch := func(strat robustset.Strategy) (rounds, streams int64, err error) {
		cs, err := cl.Session("r", strat, sink)
		if err != nil {
			return 0, 0, err
		}
		out, _, err := cs.Fetch(ctx, bob)
		if err != nil {
			return 0, 0, err
		}
		if !robustset.EqualMultisets(out.SPrime, alice) {
			return 0, 0, fmt.Errorf("%s fetch diverged", strat.Name())
		}
		mu.Lock()
		defer mu.Unlock()
		rounds, ok := last.Stat("wall_rounds")
		if !ok || rounds < 1 {
			return 0, 0, fmt.Errorf("%s fetch recorded no wall_rounds", strat.Name())
		}
		streams, _ = last.Stat("streams")
		return rounds, streams, nil
	}
	pipelined, streams, err := fetch(robustset.Ranged{Streams: c.streams})
	if err != nil {
		res.Err = "pipelined: " + err.Error()
		return res
	}
	serial, _, err := fetch(robustset.Ranged{Serial: true})
	if err != nil {
		res.Err = "serial: " + err.Error()
		return res
	}
	res.Rounds = int(pipelined)
	res.BaselineRounds = int(serial)
	res.MuxStreams = int(streams)
	return res
}

// runRangesScenario executes the comparison matrix.
func runRangesScenario(quick bool, logf func(format string, args ...any)) []Result {
	cells := rangesMatrix(quick)
	out := make([]Result, 0, len(cells))
	for i, c := range cells {
		r := runRangesCell(c)
		out = append(out, r)
		if r.Err != "" {
			logf("[ranges %d/%d] n=%-8d delta=%-3d ERROR: %s",
				i+1, len(cells), r.N, 2*c.replaced, r.Err)
			continue
		}
		logf("[ranges %d/%d] n=%-8d delta=%-3d wire=%dB exact=%dB (×%.2f) rounds=%d serial=%d (×%.2f) streams=%d",
			i+1, len(cells), r.N, 2*c.replaced, r.WireBytes, r.BaselineBytes,
			float64(r.WireBytes)/float64(r.BaselineBytes),
			r.Rounds, r.BaselineRounds, float64(r.Rounds)/float64(r.BaselineRounds), r.MuxStreams)
	}
	return out
}
