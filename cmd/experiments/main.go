// Command experiments regenerates the paper's evaluation: every table and
// figure indexed in DESIGN.md §4 (E1–E11), printed as aligned text tables.
// EXPERIMENTS.md records a full run next to the paper's claimed shapes.
//
// Usage:
//
//	experiments [-quick] [-only E1,E5]
//
// See internal/experiments for the harness itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"robustset/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sweeps (seconds instead of minutes)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	flag.Parse()

	scale := experiments.ScaleFull
	if *quick {
		scale = experiments.ScaleQuick
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	ran := 0
	for _, e := range experiments.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s: %s ...\n", e.ID, e.Name)
		tbl, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "experiments: nothing matched -only")
		os.Exit(1)
	}
}
