package main

import (
	"os"
	"path/filepath"
	"testing"

	"robustset/internal/pointio"
	"robustset/internal/points"
)

// TestGenLocalWorkflow drives the CLI's primary workflow end to end:
// generate a base file, derive a noisy copy, reconcile them, and verify
// the written result.
func TestGenLocalWorkflow(t *testing.T) {
	dir := t.TempDir()
	bob := filepath.Join(dir, "bob.txt")
	alice := filepath.Join(dir, "alice.txt")
	sprime := filepath.Join(dir, "sprime.txt")

	if err := cmdGen([]string{"-out", bob, "-n", "300", "-dim", "2", "-delta", "65536", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGen([]string{"-out", alice, "-from", bob, "-noise", "3", "-outliers", "7", "-seed", "6"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdLocal([]string{"-alice", alice, "-bob", bob, "-k", "7", "-out", sprime}); err != nil {
		t.Fatal(err)
	}

	u, got, err := readFile(sprime)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 300 {
		t.Fatalf("result has %d points, want 300", len(got))
	}
	if err := u.CheckSet(got); err != nil {
		t.Fatal(err)
	}
}

func TestGenAdaptiveLocal(t *testing.T) {
	dir := t.TempDir()
	bob := filepath.Join(dir, "bob.txt")
	alice := filepath.Join(dir, "alice.txt")
	if err := cmdGen([]string{"-out", bob, "-n", "200", "-dim", "2", "-delta", "16384", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGen([]string{"-out", alice, "-from", bob, "-noise", "2", "-outliers", "4", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdLocal([]string{"-alice", alice, "-bob", bob, "-k", "4", "-adaptive"}); err != nil {
		t.Fatal(err)
	}
}

func TestGenClusters(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "c.txt")
	if err := cmdGen([]string{"-out", out, "-n", "100", "-dim", "3", "-delta", "1024", "-clusters", "2", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	u, pts, err := pointio.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if u.Dim != 3 || u.Delta != 1024 || len(pts) != 100 {
		t.Fatalf("unexpected file contents: %+v, %d points", u, len(pts))
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	if err := cmdGen([]string{"-n", "10"}); err == nil {
		t.Error("gen without -out accepted")
	}
	if err := cmdLocal([]string{"-alice", "nope.txt"}); err == nil {
		t.Error("local without -bob accepted")
	}
	if err := cmdLocal([]string{"-alice", "nope.txt", "-bob", "nope2.txt"}); err == nil {
		t.Error("local with missing files accepted")
	}
	// Universe mismatch is rejected.
	a := filepath.Join(dir, "a.txt")
	b := filepath.Join(dir, "b.txt")
	if err := cmdGen([]string{"-out", a, "-n", "10", "-dim", "2", "-delta", "1024", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGen([]string{"-out", b, "-n", "10", "-dim", "3", "-delta", "1024", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdLocal([]string{"-alice", a, "-bob", b}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	_ = points.Point{} // keep the import honest if assertions change
}

// TestClusterDemo smoke-tests the anti-entropy demo: a small 3-node
// sharded cluster must converge within the deadline for both a robust
// and an exact strategy.
func TestClusterDemo(t *testing.T) {
	if err := cmdCluster([]string{"-nodes", "3", "-n", "120", "-extra", "4",
		"-shards", "2", "-deadline", "30s"}); err != nil {
		t.Fatalf("robust cluster demo: %v", err)
	}
	if err := cmdCluster([]string{"-nodes", "2", "-n", "120", "-extra", "4",
		"-shards", "1", "-proto", "exact", "-select", "random", "-deadline", "30s"}); err != nil {
		t.Fatalf("exact cluster demo: %v", err)
	}
}

// TestClusterValidation covers the demo's flag validation.
func TestClusterValidation(t *testing.T) {
	if err := cmdCluster([]string{"-nodes", "1"}); err == nil {
		t.Error("one-node cluster accepted")
	}
	if err := cmdCluster([]string{"-proto", "bogus"}); err == nil {
		t.Error("unknown protocol accepted")
	}
	if err := cmdCluster([]string{"-select", "bogus"}); err == nil {
		t.Error("unknown selection policy accepted")
	}
	if err := cmdCluster([]string{"-nodes", "64", "-delta", "64"}); err == nil {
		t.Error("delta too small for the extra stripes accepted")
	}
}
