package main

import (
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"robustset"
	"robustset/internal/pointio"
	"robustset/internal/points"
)

// TestGenLocalWorkflow drives the CLI's primary workflow end to end:
// generate a base file, derive a noisy copy, reconcile them, and verify
// the written result.
func TestGenLocalWorkflow(t *testing.T) {
	dir := t.TempDir()
	bob := filepath.Join(dir, "bob.txt")
	alice := filepath.Join(dir, "alice.txt")
	sprime := filepath.Join(dir, "sprime.txt")

	if err := cmdGen([]string{"-out", bob, "-n", "300", "-dim", "2", "-delta", "65536", "-seed", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGen([]string{"-out", alice, "-from", bob, "-noise", "3", "-outliers", "7", "-seed", "6"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdLocal([]string{"-alice", alice, "-bob", bob, "-k", "7", "-out", sprime}); err != nil {
		t.Fatal(err)
	}

	u, got, err := readFile(sprime)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 300 {
		t.Fatalf("result has %d points, want 300", len(got))
	}
	if err := u.CheckSet(got); err != nil {
		t.Fatal(err)
	}
}

func TestGenAdaptiveLocal(t *testing.T) {
	dir := t.TempDir()
	bob := filepath.Join(dir, "bob.txt")
	alice := filepath.Join(dir, "alice.txt")
	if err := cmdGen([]string{"-out", bob, "-n", "200", "-dim", "2", "-delta", "16384", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGen([]string{"-out", alice, "-from", bob, "-noise", "2", "-outliers", "4", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdLocal([]string{"-alice", alice, "-bob", bob, "-k", "4", "-adaptive"}); err != nil {
		t.Fatal(err)
	}
}

func TestGenClusters(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "c.txt")
	if err := cmdGen([]string{"-out", out, "-n", "100", "-dim", "3", "-delta", "1024", "-clusters", "2", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	u, pts, err := pointio.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if u.Dim != 3 || u.Delta != 1024 || len(pts) != 100 {
		t.Fatalf("unexpected file contents: %+v, %d points", u, len(pts))
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	if err := cmdGen([]string{"-n", "10"}); err == nil {
		t.Error("gen without -out accepted")
	}
	if err := cmdLocal([]string{"-alice", "nope.txt"}); err == nil {
		t.Error("local without -bob accepted")
	}
	if err := cmdLocal([]string{"-alice", "nope.txt", "-bob", "nope2.txt"}); err == nil {
		t.Error("local with missing files accepted")
	}
	// Universe mismatch is rejected.
	a := filepath.Join(dir, "a.txt")
	b := filepath.Join(dir, "b.txt")
	if err := cmdGen([]string{"-out", a, "-n", "10", "-dim", "2", "-delta", "1024", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGen([]string{"-out", b, "-n", "10", "-dim", "3", "-delta", "1024", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdLocal([]string{"-alice", a, "-bob", b}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	_ = points.Point{} // keep the import honest if assertions change
}

// TestClusterDemo smoke-tests the anti-entropy demo: a small 3-node
// sharded cluster must converge within the deadline for both a robust
// and an exact strategy.
func TestClusterDemo(t *testing.T) {
	if err := cmdCluster([]string{"-nodes", "3", "-n", "120", "-extra", "4",
		"-shards", "2", "-deadline", "30s"}); err != nil {
		t.Fatalf("robust cluster demo: %v", err)
	}
	if err := cmdCluster([]string{"-nodes", "2", "-n", "120", "-extra", "4",
		"-shards", "1", "-proto", "exact", "-select", "random", "-deadline", "30s"}); err != nil {
		t.Fatalf("exact cluster demo: %v", err)
	}
}

// TestClusterValidation covers the demo's flag validation.
func TestClusterValidation(t *testing.T) {
	if err := cmdCluster([]string{"-nodes", "1"}); err == nil {
		t.Error("one-node cluster accepted")
	}
	if err := cmdCluster([]string{"-proto", "bogus"}); err == nil {
		t.Error("unknown protocol accepted")
	}
	if err := cmdCluster([]string{"-select", "bogus"}); err == nil {
		t.Error("unknown selection policy accepted")
	}
	if err := cmdCluster([]string{"-nodes", "64", "-delta", "64"}); err == nil {
		t.Error("delta too small for the extra stripes accepted")
	}
}

// TestServeMetricsAddrInUse asserts the graceful failure mode of
// -metrics-addr: with the port already taken, serve must report the
// conflict and exit non-zero instead of running without observability.
func TestServeMetricsAddrInUse(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "d.txt")
	if err := cmdGen([]string{"-out", data, "-n", "20", "-dim", "2", "-delta", "1024", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	err = cmdServe([]string{"-data", data, "-listen", "127.0.0.1:0",
		"-metrics-addr", ln.Addr().String()})
	if err == nil {
		t.Fatal("serve with an occupied metrics port succeeded")
	}
	if !strings.Contains(err.Error(), "metrics listener") {
		t.Fatalf("error %q does not name the metrics listener", err)
	}
}

// TestPullTrace drives pull -trace (the explain path) against a live
// server and checks the printed breakdown carries the phase spans and
// the wire table.
func TestPullTrace(t *testing.T) {
	dir := t.TempDir()
	aliceFile := filepath.Join(dir, "demo.txt")
	bobFile := filepath.Join(dir, "bob.txt")
	if err := cmdGen([]string{"-out", aliceFile, "-n", "150", "-dim", "2", "-delta", "65536", "-seed", "11"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdGen([]string{"-out", bobFile, "-from", aliceFile, "-noise", "2", "-outliers", "3", "-seed", "12"}); err != nil {
		t.Fatal(err)
	}
	u, alice, err := readFile(aliceFile)
	if err != nil {
		t.Fatal(err)
	}
	srv := robustset.NewServer()
	if _, err := srv.Publish("demo", robustset.Params{Universe: u, Seed: 42, DiffBudget: 16}, alice); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	// Capture stdout across the pull; the trace breakdown prints there.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	pullErr := cmdPull([]string{"-data", bobFile, "-connect", ln.Addr().String(),
		"-dataset", "demo", "-proto", "adaptive", "-trace"})
	w.Close()
	os.Stdout = old
	outBytes, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if pullErr != nil {
		t.Fatalf("pull -trace: %v\noutput:\n%s", pullErr, outBytes)
	}
	out := string(outBytes)
	for _, want := range []string{"client session #", "phases:", "estimate", "wire:", "HELLO", "total: in=", "strategy=robust-adaptive"} {
		if !strings.Contains(out, want) {
			t.Errorf("pull -trace output lacks %q:\n%s", want, out)
		}
	}
}
