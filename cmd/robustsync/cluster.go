package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"time"

	"robustset"
)

// cmdCluster runs the N-node anti-entropy demo: every node publishes the
// same sharded dataset seeded with a common base plus its own disjoint
// extra points, replicators gossip until every node holds the identical
// multiset, and the command reports rounds- and bytes-to-convergence.
// It exits non-zero if the deadline passes without convergence, so CI
// can run it as a smoke test.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	nodes := fs.Int("nodes", 3, "number of nodes")
	n := fs.Int("n", 500, "shared base points")
	extra := fs.Int("extra", 8, "disjoint extra points per node")
	dim := fs.Int("dim", 2, "dimensions")
	delta := fs.Int64("delta", 1<<20, "coordinate range (power of two)")
	shards := fs.Int("shards", 4, "shards per dataset (1 = unsharded)")
	seed := fs.Uint64("seed", 42, "workload and protocol seed")
	proto := fs.String("proto", "", "protocol: oneshot|adaptive|exact|rateless|cpi|naive (default oneshot)")
	selection := fs.String("select", "roundrobin", "peer selection: roundrobin|random")
	fanout := fs.Int("fanout", 0, "peers contacted per round (0 = all)")
	workers := fs.Int("workers", 4, "concurrent shard reconciliations per round")
	maxSweeps := fs.Int("max-rounds", 32, "round sweeps before giving up")
	deadline := fs.Duration("deadline", time.Minute, "overall demo deadline")
	mux := fs.Bool("mux", false, "multiplex: one connection per peer, shards as parallel streams")
	metricsAddr := fs.String("metrics", "", "serve the metrics JSON endpoint here (default: a loopback port when -mux)")
	fs.Parse(args)
	if *nodes < 2 {
		return fmt.Errorf("cluster: -nodes %d < 2", *nodes)
	}
	if *extra < 1 {
		return fmt.Errorf("cluster: -extra %d < 1", *extra)
	}
	strat, err := strategyFor(*proto)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	if *delta/2 < int64(*nodes) {
		return fmt.Errorf("cluster: -delta %d too small for %d disjoint extra stripes", *delta, *nodes)
	}

	u := robustset.Universe{Dim: *dim, Delta: *delta}
	// DiffBudget must cover the worst per-shard decode: with union
	// application a session's diff is at most all nodes' extras.
	params := robustset.Params{Universe: u, Seed: *seed, DiffBudget: *nodes**extra + 8}

	common, extras := clusterPoints(u, *n, *nodes, *extra, *seed)

	ctx, cancel := context.WithTimeout(context.Background(), *deadline)
	defer cancel()

	// One shared metrics registry across every node and replicator,
	// served on a debug listener so the smoke run (and anything else)
	// can assert on live counters.
	metrics := robustset.NewMetrics()
	metricsURL := ""
	if *metricsAddr != "" || *mux {
		addr := *metricsAddr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		mln, err := net.Listen("tcp", addr)
		if err != nil {
			return fmt.Errorf("cluster: metrics listener: %w", err)
		}
		defer mln.Close()
		go metrics.Serve(mln)
		metricsURL = "http://" + mln.Addr().String() + "/metrics"
		fmt.Printf("metrics endpoint: %s\n", metricsURL)
	}

	// Start the nodes: one Server each, all publishing dataset "demo".
	type node struct {
		srv  *robustset.Server
		addr string
	}
	all := make([]*node, *nodes)
	for i := range all {
		srv := robustset.NewServer(robustset.WithServerMetrics(metrics))
		pts := append(robustset.ClonePoints(common), extras[i]...)
		if *shards > 1 {
			if _, err := srv.PublishSharded("demo", params, pts, *shards); err != nil {
				return err
			}
		} else {
			if _, err := srv.Publish("demo", params, pts); err != nil {
				return err
			}
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go srv.Serve(ln)
		defer srv.Close()
		all[i] = &node{srv: srv, addr: ln.Addr().String()}
	}

	reps := make([]*robustset.Replicator, *nodes)
	for i, nd := range all {
		var peers []robustset.Peer
		for j, other := range all {
			if j != i {
				peers = append(peers, robustset.Peer{Name: fmt.Sprintf("node%d", j), Addr: other.addr})
			}
		}
		k := *fanout
		if k <= 0 {
			k = len(peers)
		}
		var sel robustset.PeerSelector
		switch *selection {
		case "roundrobin":
			sel = robustset.SelectRoundRobin(k)
		case "random":
			sel = robustset.SelectRandomK(k, *seed+uint64(i))
		default:
			return fmt.Errorf("cluster: unknown -select %q (roundrobin|random)", *selection)
		}
		opts := []robustset.ReplicatorOption{
			robustset.WithReplicatorStrategy(strat),
			robustset.WithPeerSelector(sel),
			robustset.WithReplicatorWorkers(*workers),
			robustset.WithRoundTimeout(*deadline),
			robustset.WithReplicatorMetrics(metrics),
		}
		if *mux {
			opts = append(opts, robustset.WithReplicatorMux())
		}
		rep, err := robustset.NewReplicator(nd.srv, peers, opts...)
		if err != nil {
			return err
		}
		defer rep.Close()
		reps[i] = rep
	}

	transportMode := "connection-per-session"
	if *mux {
		transportMode = "multiplexed (one connection per peer)"
	}
	fmt.Printf("cluster: %d nodes, %d base + %d extra points each, %d shard(s), %s, %s selection, %s\n",
		*nodes, *n, *extra, *shards, strat.Name(), *selection, transportMode)

	snapshot := func(nd *node) []robustset.Point {
		var out []robustset.Point
		for _, name := range nd.srv.Datasets() {
			out = append(out, nd.srv.Dataset(name).Snapshot()...)
		}
		return out
	}
	var totalBytes int64
	converged := false
	sweeps := 0
	for sweep := 1; sweep <= *maxSweeps && !converged; sweep++ {
		sweeps = sweep
		var added, errs int
		for i, rep := range reps {
			st, err := rep.RunRound(ctx)
			if err != nil {
				return fmt.Errorf("cluster: node %d round: %w", i, err)
			}
			totalBytes += st.Bytes
			added += st.Added
			errs += st.Errors
		}
		fmt.Printf("  sweep %2d: +%d points, %d errors, %s total on the wire\n",
			sweep, added, errs, byteCount(totalBytes))
		ref := snapshot(all[0])
		converged = true
		for _, nd := range all[1:] {
			if !robustset.EqualMultisets(ref, snapshot(nd)) {
				converged = false
				break
			}
		}
	}
	if !converged {
		return fmt.Errorf("cluster: no convergence after %d sweeps", *maxSweeps)
	}
	want := *n + *nodes**extra
	got := len(snapshot(all[0]))
	fmt.Printf("converged: %d sweeps, %s on the wire, every node holds %d points (expected %d)\n",
		sweeps, byteCount(totalBytes), got, want)
	if got != want {
		return fmt.Errorf("cluster: converged multiset has %d points, want %d", got, want)
	}
	if *mux {
		// The mux soak contract, asserted against the live HTTP endpoint
		// rather than in-process state: a converged -mux run must have
		// carried every shard of a round over ONE connection per peer
		// and decoded every frame.
		return checkMuxMetrics(metricsURL, *shards)
	}
	return nil
}

// checkMuxMetrics polls the metrics endpoint and enforces the mux soak
// assertions: zero decode failures, and at least `shards` streams
// carried by a single connection.
func checkMuxMetrics(url string, shards int) error {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("cluster: metrics endpoint: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("cluster: metrics endpoint: %w", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("cluster: metrics endpoint returned invalid JSON: %w", err)
	}
	num := func(name string) float64 {
		v, _ := doc[name].(float64)
		return v
	}
	muxConns := num("server_mux_conns_total")
	streamsMax := num("server_mux_streams_per_conn_max")
	decodeFailures := num("mux_decode_failures_total")
	fmt.Printf("mux metrics: %.0f connections, %.0f streams total, %.0f max streams/conn, %.0f decode failures\n",
		muxConns, num("server_mux_streams_total"), streamsMax, decodeFailures)
	if decodeFailures != 0 {
		return fmt.Errorf("cluster: %g mux decode failures, want 0", decodeFailures)
	}
	if muxConns < 1 {
		return fmt.Errorf("cluster: no multiplexed connections established")
	}
	if int(streamsMax) < shards {
		return fmt.Errorf("cluster: max %g streams on one connection, want >= %d (all shards on one conn)",
			streamsMax, shards)
	}
	return nil
}

// clusterPoints builds the demo workload: a common base multiset plus
// per-node extras drawn from disjoint coordinate stripes so the expected
// union size is exact.
func clusterPoints(u robustset.Universe, n, nodes, extra int, seed uint64) ([]robustset.Point, [][]robustset.Point) {
	rng := rand.New(rand.NewPCG(seed, ^seed))
	// Base points live in the lower half of the first coordinate; extras
	// in per-node stripes of the upper half.
	common := make([]robustset.Point, n)
	for i := range common {
		p := make(robustset.Point, u.Dim)
		p[0] = rng.Int64N(u.Delta / 2)
		for j := 1; j < u.Dim; j++ {
			p[j] = rng.Int64N(u.Delta)
		}
		common[i] = p
	}
	extras := make([][]robustset.Point, nodes)
	stripe := u.Delta / 2 / int64(nodes)
	for nd := range extras {
		base := u.Delta/2 + int64(nd)*stripe
		for j := 0; j < extra; j++ {
			p := make(robustset.Point, u.Dim)
			p[0] = base + rng.Int64N(stripe)
			for k := 1; k < u.Dim; k++ {
				p[k] = rng.Int64N(u.Delta)
			}
			extras[nd] = append(extras[nd], p)
		}
	}
	return common, extras
}

// byteCount renders a byte total human-readably.
func byteCount(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
