package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"path/filepath"
	"time"

	"robustset"
)

// cmdCluster runs the N-node anti-entropy demo: every node publishes the
// same sharded dataset seeded with a common base plus its own disjoint
// extra points, replicators gossip until every node holds the identical
// multiset, and the command reports rounds- and bytes-to-convergence.
// It exits non-zero if the deadline passes without convergence, so CI
// can run it as a smoke test.
//
// With -data the nodes are durable: each keeps its datasets in a
// WAL+snapshot directory under the given root and survives restarts.
// -kill-restart turns the demo into a crash-recovery smoke: after the
// cluster converges, churn writes land on node 0, one node is killed
// mid-churn, the survivors re-converge, and the killed node restarts
// from its data directory — its recovery is verified byte-identical
// against a fresh sketch build — and must catch up and re-converge.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	nodes := fs.Int("nodes", 3, "number of nodes")
	n := fs.Int("n", 500, "shared base points")
	extra := fs.Int("extra", 8, "disjoint extra points per node")
	dim := fs.Int("dim", 2, "dimensions")
	delta := fs.Int64("delta", 1<<20, "coordinate range (power of two)")
	shards := fs.Int("shards", 4, "shards per dataset (1 = unsharded)")
	seed := fs.Uint64("seed", 42, "workload and protocol seed")
	proto := fs.String("proto", "", "protocol: oneshot|adaptive|exact|rateless|cpi|naive (default oneshot)")
	selection := fs.String("select", "roundrobin", "peer selection: roundrobin|random")
	fanout := fs.Int("fanout", 0, "peers contacted per round (0 = all)")
	workers := fs.Int("workers", 4, "concurrent shard reconciliations per round")
	maxSweeps := fs.Int("max-rounds", 32, "round sweeps before giving up")
	deadline := fs.Duration("deadline", time.Minute, "overall demo deadline")
	mux := fs.Bool("mux", false, "multiplex: one connection per peer, shards as parallel streams")
	metricsAddr := fs.String("metrics", "", "serve the metrics JSON endpoint here (default: a loopback port when -mux)")
	dataDir := fs.String("data", "", "durable storage root: one WAL+snapshot directory per node")
	fsyncMode := fs.String("fsync", "always", "durable log fsync policy: always|none")
	killRestart := fs.Bool("kill-restart", false, "kill one node mid-churn, restart it from its data directory, require re-convergence (needs -data)")
	churn := fs.Int("churn", 120, "churn points written to node 0 around the kill (with -kill-restart)")
	fs.Parse(args)
	if *nodes < 2 {
		return fmt.Errorf("cluster: -nodes %d < 2", *nodes)
	}
	if *extra < 1 {
		return fmt.Errorf("cluster: -extra %d < 1", *extra)
	}
	strat, err := strategyFor(*proto)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	durable := *dataDir != ""
	if *killRestart {
		if !durable {
			return fmt.Errorf("cluster: -kill-restart needs -data (the restarted node recovers from its directory)")
		}
		if *churn < 2 {
			return fmt.Errorf("cluster: -churn %d < 2", *churn)
		}
	}
	fsync, err := fsyncPolicyFor(*fsyncMode)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	// One stripe per node's extras, plus a reserved stripe for churn.
	if *delta/2 < int64(*nodes+1) {
		return fmt.Errorf("cluster: -delta %d too small for %d disjoint extra stripes", *delta, *nodes)
	}

	u := robustset.Universe{Dim: *dim, Delta: *delta}
	// DiffBudget must cover the worst per-shard decode: with union
	// application a session's diff is at most all nodes' extras plus any
	// churn a downed node missed.
	params := robustset.Params{Universe: u, Seed: *seed, DiffBudget: *nodes**extra + *churn + 8}

	common, extras := clusterPoints(u, *n, *nodes, *extra, *seed)

	ctx, cancel := context.WithTimeout(context.Background(), *deadline)
	defer cancel()

	// One shared metrics registry across every node and replicator,
	// served on a debug listener so the smoke run (and anything else)
	// can assert on live counters.
	metrics := robustset.NewMetrics()
	metricsURL := ""
	if *metricsAddr != "" || *mux {
		addr := *metricsAddr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		mln, err := net.Listen("tcp", addr)
		if err != nil {
			return fmt.Errorf("cluster: metrics listener: %w", err)
		}
		defer mln.Close()
		go metrics.Serve(mln)
		// The smoke assertion decodes the JSON document, which lives on
		// /debug/vars now that /metrics speaks Prometheus text.
		metricsURL = "http://" + mln.Addr().String() + "/debug/vars"
		fmt.Printf("metrics endpoint: %s\n", metricsURL)
	}

	// Start the nodes: one Server each, all publishing dataset "demo".
	// startNode also restarts: a node with a recorded address re-listens
	// on it, so peers reconnect without reconfiguration, and a durable
	// node recovers its datasets from disk (pts is ignored then).
	type node struct {
		srv  *robustset.Server
		addr string
	}
	all := make([]*node, *nodes)
	startNode := func(i int, pts []robustset.Point) error {
		opts := []robustset.ServerOption{robustset.WithServerMetrics(metrics)}
		if durable {
			opts = append(opts,
				robustset.WithServerDataDir(filepath.Join(*dataDir, fmt.Sprintf("node%d", i))),
				robustset.WithServerFsync(fsync),
				robustset.WithServerRecoveryVerify(),
			)
		}
		srv := robustset.NewServer(opts...)
		var err error
		switch {
		case *shards > 1 && durable:
			_, err = srv.PublishShardedDurable("demo", params, pts, *shards)
		case *shards > 1:
			_, err = srv.PublishSharded("demo", params, pts, *shards)
		case durable:
			_, err = srv.PublishDurable("demo", params, pts)
		default:
			_, err = srv.Publish("demo", params, pts)
		}
		if err != nil {
			srv.Close()
			return err
		}
		laddr := "127.0.0.1:0"
		if all[i] != nil {
			laddr = all[i].addr
		}
		ln, err := net.Listen("tcp", laddr)
		if err != nil {
			srv.Close()
			return err
		}
		go srv.Serve(ln)
		all[i] = &node{srv: srv, addr: ln.Addr().String()}
		return nil
	}
	for i := range all {
		pts := append(robustset.ClonePoints(common), extras[i]...)
		if err := startNode(i, pts); err != nil {
			return err
		}
		defer func(i int) { all[i].srv.Close() }(i)
	}

	reps := make([]*robustset.Replicator, *nodes)
	newRep := func(i int) (*robustset.Replicator, error) {
		var peers []robustset.Peer
		for j, other := range all {
			if j != i {
				peers = append(peers, robustset.Peer{Name: fmt.Sprintf("node%d", j), Addr: other.addr})
			}
		}
		k := *fanout
		if k <= 0 {
			k = len(peers)
		}
		var sel robustset.PeerSelector
		switch *selection {
		case "roundrobin":
			sel = robustset.SelectRoundRobin(k)
		case "random":
			sel = robustset.SelectRandomK(k, *seed+uint64(i))
		default:
			return nil, fmt.Errorf("cluster: unknown -select %q (roundrobin|random)", *selection)
		}
		opts := []robustset.ReplicatorOption{
			robustset.WithReplicatorStrategy(strat),
			robustset.WithPeerSelector(sel),
			robustset.WithReplicatorWorkers(*workers),
			robustset.WithRoundTimeout(*deadline),
			robustset.WithReplicatorMetrics(metrics),
		}
		if *mux {
			opts = append(opts, robustset.WithReplicatorMux())
		}
		return robustset.NewReplicator(all[i].srv, peers, opts...)
	}
	for i := range reps {
		rep, err := newRep(i)
		if err != nil {
			return err
		}
		defer func(i int) { reps[i].Close() }(i)
		reps[i] = rep
	}

	transportMode := "connection-per-session"
	if *mux {
		transportMode = "multiplexed (one connection per peer)"
	}
	durability := "in-memory"
	if durable {
		durability = fmt.Sprintf("durable under %s (fsync %s)", *dataDir, *fsyncMode)
	}
	fmt.Printf("cluster: %d nodes, %d base + %d extra points each, %d shard(s), %s, %s selection, %s, %s\n",
		*nodes, *n, *extra, *shards, strat.Name(), *selection, transportMode, durability)

	snapshot := func(nd *node) []robustset.Point {
		var out []robustset.Point
		for _, name := range nd.srv.Datasets() {
			out = append(out, nd.srv.Dataset(name).Snapshot()...)
		}
		return out
	}
	var totalBytes int64
	totalSweeps := 0
	// converge sweeps rounds over the given nodes until they all hold
	// the identical multiset.
	converge := func(idx []int, label string) error {
		for sweep := 1; sweep <= *maxSweeps; sweep++ {
			totalSweeps++
			var added, errs int
			for _, i := range idx {
				st, err := reps[i].RunRound(ctx)
				if err != nil {
					return fmt.Errorf("cluster: node %d round: %w", i, err)
				}
				totalBytes += st.Bytes
				added += st.Added
				errs += st.Errors
			}
			fmt.Printf("  [%s] sweep %2d: +%d points, %d errors, %s total on the wire\n",
				label, sweep, added, errs, byteCount(totalBytes))
			ref := snapshot(all[idx[0]])
			converged := true
			for _, i := range idx[1:] {
				if !robustset.EqualMultisets(ref, snapshot(all[i])) {
					converged = false
					break
				}
			}
			if converged {
				return nil
			}
		}
		return fmt.Errorf("cluster: %s: no convergence after %d sweeps", label, *maxSweeps)
	}
	allIdx := make([]int, *nodes)
	for i := range allIdx {
		allIdx[i] = i
	}
	if err := converge(allIdx, "initial"); err != nil {
		return err
	}

	want := *n + *nodes**extra
	if *killRestart {
		applied, err := runKillRestart(killRestartEnv{
			churn:   churnPoints(u, *nodes, *churn, *seed),
			victim:  *nodes - 1,
			shards:  *shards,
			dataset: "demo",
			srv0:    all[0].srv,
			close: func(i int) error {
				reps[i].Close()
				return all[i].srv.Close()
			},
			restart: func(i int) error {
				if err := startNode(i, nil); err != nil {
					return err
				}
				rep, err := newRep(i)
				if err != nil {
					return err
				}
				reps[i] = rep
				return nil
			},
			converge: converge,
			allIdx:   allIdx,
			metrics:  metrics,
		})
		if err != nil {
			return err
		}
		want += applied
	}

	got := len(snapshot(all[0]))
	fmt.Printf("converged: %d sweeps, %s on the wire, every node holds %d points (expected %d)\n",
		totalSweeps, byteCount(totalBytes), got, want)
	if got != want {
		return fmt.Errorf("cluster: converged multiset has %d points, want %d", got, want)
	}
	if *mux {
		// The mux soak contract, asserted against the live HTTP endpoint
		// rather than in-process state: a converged -mux run must have
		// carried every shard of a round over ONE connection per peer
		// and decoded every frame.
		return checkMuxMetrics(metricsURL, *shards)
	}
	return nil
}

// killRestartEnv carries the cluster hooks the crash-recovery smoke
// drives: mutate node 0, kill and restart a victim, re-converge subsets.
type killRestartEnv struct {
	churn    []robustset.Point
	victim   int
	shards   int
	dataset  string
	srv0     *robustset.Server
	close    func(i int) error
	restart  func(i int) error
	converge func(idx []int, label string) error
	allIdx   []int
	metrics  *robustset.Metrics
}

// runKillRestart is the -kill-restart choreography: half the churn
// lands, the victim dies mid-stream, the rest lands, the survivors
// re-converge, and the victim restarts from disk and catches up. It
// returns the number of churn points applied and fails if recovery or
// re-convergence does not hold up.
func runKillRestart(env killRestartEnv) (int, error) {
	addChurn := func(pts []robustset.Point) error {
		if env.shards > 1 {
			return env.srv0.ShardedDataset(env.dataset).AddBatch(pts)
		}
		return env.srv0.Dataset(env.dataset).AddBatch(pts)
	}
	half := len(env.churn) / 2
	if err := addChurn(env.churn[:half]); err != nil {
		return 0, fmt.Errorf("cluster: churn: %w", err)
	}
	fmt.Printf("kill: node %d going down after %d/%d churn points\n", env.victim, half, len(env.churn))
	if err := env.close(env.victim); err != nil {
		return 0, fmt.Errorf("cluster: stopping node %d: %w", env.victim, err)
	}
	if err := addChurn(env.churn[half:]); err != nil {
		return 0, fmt.Errorf("cluster: churn: %w", err)
	}
	survivors := make([]int, 0, len(env.allIdx)-1)
	for _, i := range env.allIdx {
		if i != env.victim {
			survivors = append(survivors, i)
		}
	}
	if err := env.converge(survivors, "survivors"); err != nil {
		return 0, err
	}

	restartStart := time.Now()
	if err := env.restart(env.victim); err != nil {
		return 0, fmt.Errorf("cluster: restarting node %d: %w", env.victim, err)
	}
	fmt.Printf("restart: node %d recovered from its data directory in %s\n",
		env.victim, time.Since(restartStart).Round(time.Millisecond))
	if err := env.converge(env.allIdx, "rejoined"); err != nil {
		return 0, err
	}

	// Recovery must actually have happened (one recovered dataset per
	// shard of the victim), and the mux decode path must be clean.
	snap := env.metrics.Snapshot()
	wantRecovered := int64(1)
	if env.shards > 1 {
		wantRecovered = int64(env.shards)
	}
	if got := snap["server_recovered_datasets_total"]; got < wantRecovered {
		return 0, fmt.Errorf("cluster: %d datasets recovered from disk, want >= %d", got, wantRecovered)
	}
	if f := snap["mux_decode_failures_total"]; f != 0 {
		return 0, fmt.Errorf("cluster: %d mux decode failures during kill-restart, want 0", f)
	}
	fmt.Printf("recovery: %d datasets recovered, %d log records replayed, %d torn bytes truncated\n",
		snap["server_recovered_datasets_total"], snap["store_replay_records_total"],
		snap["store_torn_truncations_total"])
	return len(env.churn), nil
}

// checkMuxMetrics polls the metrics endpoint and enforces the mux soak
// assertions: zero decode failures, and at least `shards` streams
// carried by a single connection.
func checkMuxMetrics(url string, shards int) error {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("cluster: metrics endpoint: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("cluster: metrics endpoint: %w", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("cluster: metrics endpoint returned invalid JSON: %w", err)
	}
	num := func(name string) float64 {
		v, _ := doc[name].(float64)
		return v
	}
	muxConns := num("server_mux_conns_total")
	streamsMax := num("server_mux_streams_per_conn_max")
	decodeFailures := num("mux_decode_failures_total")
	fmt.Printf("mux metrics: %.0f connections, %.0f streams total, %.0f max streams/conn, %.0f decode failures\n",
		muxConns, num("server_mux_streams_total"), streamsMax, decodeFailures)
	if decodeFailures != 0 {
		return fmt.Errorf("cluster: %g mux decode failures, want 0", decodeFailures)
	}
	if muxConns < 1 {
		return fmt.Errorf("cluster: no multiplexed connections established")
	}
	if int(streamsMax) < shards {
		return fmt.Errorf("cluster: max %g streams on one connection, want >= %d (all shards on one conn)",
			streamsMax, shards)
	}
	return nil
}

// clusterPoints builds the demo workload: a common base multiset plus
// per-node extras drawn from disjoint coordinate stripes so the expected
// union size is exact. The upper coordinate half is cut into nodes+1
// stripes; the last is reserved for kill-restart churn (churnPoints), so
// churn never collides with any node's extras.
func clusterPoints(u robustset.Universe, n, nodes, extra int, seed uint64) ([]robustset.Point, [][]robustset.Point) {
	rng := rand.New(rand.NewPCG(seed, ^seed))
	// Base points live in the lower half of the first coordinate; extras
	// in per-node stripes of the upper half.
	common := make([]robustset.Point, n)
	for i := range common {
		p := make(robustset.Point, u.Dim)
		p[0] = rng.Int64N(u.Delta / 2)
		for j := 1; j < u.Dim; j++ {
			p[j] = rng.Int64N(u.Delta)
		}
		common[i] = p
	}
	extras := make([][]robustset.Point, nodes)
	stripe := u.Delta / 2 / int64(nodes+1)
	for nd := range extras {
		base := u.Delta/2 + int64(nd)*stripe
		for j := 0; j < extra; j++ {
			p := make(robustset.Point, u.Dim)
			p[0] = base + rng.Int64N(stripe)
			for k := 1; k < u.Dim; k++ {
				p[k] = rng.Int64N(u.Delta)
			}
			extras[nd] = append(extras[nd], p)
		}
	}
	return common, extras
}

// churnPoints draws `count` distinct points from the churn stripe — the
// reserved slice of the upper coordinate half no node's extras touch —
// so the converged multiset size stays exactly predictable.
func churnPoints(u robustset.Universe, nodes, count int, seed uint64) []robustset.Point {
	rng := rand.New(rand.NewPCG(seed^0x9e3779b97f4a7c15, seed))
	stripe := u.Delta / 2 / int64(nodes+1)
	base := u.Delta/2 + int64(nodes)*stripe
	seen := make(map[string]bool, count)
	pts := make([]robustset.Point, 0, count)
	for len(pts) < count {
		p := make(robustset.Point, u.Dim)
		p[0] = base + rng.Int64N(stripe)
		for j := 1; j < u.Dim; j++ {
			p[j] = rng.Int64N(u.Delta)
		}
		key := fmt.Sprint(p)
		if seen[key] {
			continue
		}
		seen[key] = true
		pts = append(pts, p)
	}
	return pts
}

// byteCount renders a byte total human-readably.
func byteCount(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
