package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeCSV(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestQuantizeWorkflow(t *testing.T) {
	dir := t.TempDir()
	csvPath := writeCSV(t, dir, "data.csv",
		"temp,pressure,site\n21.5,101.3,a\n21.6,101.1,b\n99.0,80.5,c\n")
	out := filepath.Join(dir, "pts.txt")
	err := cmdQuantize([]string{
		"-csv", csvPath, "-cols", "0,1", "-out", out,
		"-delta", "65536", "-min", "0,50", "-max", "100,150", "-skip-header",
	})
	if err != nil {
		t.Fatal(err)
	}
	u, pts, err := readFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if u.Dim != 2 || u.Delta != 65536 {
		t.Fatalf("universe %+v", u)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points, want 3", len(pts))
	}
	// The two close rows must be close on the grid; the third far.
	d01 := abs64(pts[0][0]-pts[1][0]) + abs64(pts[0][1]-pts[1][1])
	d02 := abs64(pts[0][0]-pts[2][0]) + abs64(pts[0][1]-pts[2][1])
	if d01 >= d02 {
		t.Errorf("close rows (%d apart) not closer than far rows (%d apart)", d01, d02)
	}
}

func TestQuantizeAutoRange(t *testing.T) {
	dir := t.TempDir()
	csvPath := writeCSV(t, dir, "data.csv", "1.0,5.0\n2.0,6.0\n3.0,7.0\n")
	out := filepath.Join(dir, "pts.txt")
	if err := cmdQuantize([]string{"-csv", csvPath, "-cols", "0,1", "-out", out, "-delta", "1024"}); err != nil {
		t.Fatal(err)
	}
	_, pts, err := readFile(out)
	if err != nil || len(pts) != 3 {
		t.Fatalf("%d points, %v", len(pts), err)
	}
}

func TestQuantizeErrors(t *testing.T) {
	dir := t.TempDir()
	csvPath := writeCSV(t, dir, "data.csv", "1.0,x\n")
	out := filepath.Join(dir, "pts.txt")
	if err := cmdQuantize([]string{"-csv", csvPath, "-cols", "0,1", "-out", out}); err == nil {
		t.Error("non-numeric CSV accepted")
	}
	if err := cmdQuantize([]string{"-out", out}); err == nil {
		t.Error("missing flags accepted")
	}
	if err := cmdQuantize([]string{"-csv", csvPath, "-cols", "0,5", "-out", out}); err == nil {
		t.Error("out-of-range column accepted")
	}
	if err := cmdQuantize([]string{"-csv", csvPath, "-cols", "0", "-out", out, "-min", "0"}); err == nil {
		t.Error("min without max accepted")
	}
	empty := writeCSV(t, dir, "empty.csv", "")
	if err := cmdQuantize([]string{"-csv", empty, "-cols", "0", "-out", out}); err == nil {
		t.Error("empty CSV accepted")
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
