package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"robustset"
	"robustset/internal/pointio"
	"robustset/internal/points"
)

// cmdQuantize ingests real-valued CSV data into a point file via the
// library's affine quantizer, so float datasets can be reconciled with
// the rest of the toolchain:
//
//	robustsync quantize -csv data.csv -cols 1,3 -out pts.txt \
//	    -delta 16777216 [-min 0,0 -max 100,130] [-skip-header]
//
// When -min/-max are omitted the ranges are computed from the data and
// printed; pass those printed ranges explicitly on the peer so both
// sides quantize identically (the ranges are part of the shared
// configuration, like the seed).
func cmdQuantize(args []string) error {
	fs := flag.NewFlagSet("quantize", flag.ExitOnError)
	csvPath := fs.String("csv", "", "input CSV file (required)")
	out := fs.String("out", "", "output point file (required)")
	cols := fs.String("cols", "", "comma-separated zero-based CSV column indices (required)")
	delta := fs.Int64("delta", 1<<24, "grid resolution per axis (power of two)")
	minStr := fs.String("min", "", "comma-separated per-column lower bounds (default: from data)")
	maxStr := fs.String("max", "", "comma-separated per-column upper bounds (default: from data)")
	skipHeader := fs.Bool("skip-header", false, "skip the first CSV row")
	fs.Parse(args)
	if *csvPath == "" || *out == "" || *cols == "" {
		return fmt.Errorf("quantize: -csv, -out and -cols are required")
	}
	colIdx, err := parseIntList(*cols)
	if err != nil {
		return fmt.Errorf("quantize: -cols: %w", err)
	}
	rows, err := readCSVColumns(*csvPath, colIdx, *skipHeader)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("quantize: no data rows in %s", *csvPath)
	}
	dim := len(colIdx)
	min, max, err := resolveRanges(rows, dim, *minStr, *maxStr)
	if err != nil {
		return err
	}
	u := points.Universe{Dim: dim, Delta: *delta}
	q, err := robustset.NewQuantizer(u, min, max)
	if err != nil {
		return err
	}
	pts, err := q.QuantizeSet(rows)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pointio.Write(f, u, pts); err != nil {
		return err
	}
	fmt.Printf("quantized %d rows × %d columns into %s (delta=%d)\n", len(pts), dim, *out, *delta)
	fmt.Printf("ranges (pass these on the peer): -min %s -max %s\n",
		formatFloatList(min), formatFloatList(max))
	for i := range min {
		fmt.Printf("  column %d: step %.6g\n", colIdx[i], q.Step(i))
	}
	return nil
}

func parseIntList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if v < 0 {
			return nil, fmt.Errorf("negative column index %d", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func parseFloatList(s string, want int) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != want {
		return nil, fmt.Errorf("have %d values, want %d", len(parts), want)
	}
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func formatFloatList(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

func readCSVColumns(path string, cols []int, skipHeader bool) ([][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	var rows [][]float64
	line := 0
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("quantize: %s: %w", path, err)
		}
		line++
		if skipHeader && line == 1 {
			continue
		}
		row := make([]float64, len(cols))
		for i, c := range cols {
			if c >= len(rec) {
				return nil, fmt.Errorf("quantize: %s line %d: column %d out of range (%d fields)", path, line, c, len(rec))
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[c]), 64)
			if err != nil {
				return nil, fmt.Errorf("quantize: %s line %d column %d: %w", path, line, c, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func resolveRanges(rows [][]float64, dim int, minStr, maxStr string) (min, max []float64, err error) {
	if (minStr == "") != (maxStr == "") {
		return nil, nil, fmt.Errorf("quantize: pass both -min and -max or neither")
	}
	if minStr != "" {
		min, err = parseFloatList(minStr, dim)
		if err != nil {
			return nil, nil, fmt.Errorf("quantize: -min: %w", err)
		}
		max, err = parseFloatList(maxStr, dim)
		if err != nil {
			return nil, nil, fmt.Errorf("quantize: -max: %w", err)
		}
		return min, max, nil
	}
	// Derive from data with a small margin so boundary values do not all
	// pile into the edge buckets.
	min = make([]float64, dim)
	max = make([]float64, dim)
	for i := range min {
		min[i], max[i] = math.Inf(1), math.Inf(-1)
	}
	for _, row := range rows {
		for i, v := range row {
			if v < min[i] {
				min[i] = v
			}
			if v > max[i] {
				max[i] = v
			}
		}
	}
	for i := range min {
		span := max[i] - min[i]
		if span <= 0 {
			span = 1
		}
		min[i] -= span * 0.01
		max[i] += span * 0.01
	}
	return min, max, nil
}
