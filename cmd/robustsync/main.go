// Command robustsync is the command-line front end for robust set
// reconciliation. It can generate workload files, reconcile two local
// files, and run the protocol across real hosts over TCP.
//
// Usage:
//
//	robustsync gen      -out points.txt -n 1000 -dim 2 -delta 1048576 [-from base.txt -noise 4 -outliers 10]
//	robustsync quantize -csv data.csv -cols 1,2 -out points.txt [-delta 16777216] [-min a,b -max c,d]
//	robustsync local    -alice a.txt -bob b.txt [-k 16] [-proto adaptive] [-out sprime.txt]
//	robustsync serve    -data a.txt [-data more.txt ...] -listen :7777 [-k 16] [-data-dir ./state] [-metrics-addr 127.0.0.1:9090]
//	robustsync pull     -dataset a -data b.txt -connect host:7777 [-proto adaptive] [-mux] [-trace] [-out sprime.txt]
//	robustsync explain  -dataset a -data b.txt -connect host:7777 [-proto adaptive] [-mux]
//	robustsync cluster  -nodes 3 -n 500 -extra 8 -shards 4 [-proto exact] [-mux] [-metrics 127.0.0.1:9090] [-deadline 1m]
//
// `serve` publishes each -data file as a named dataset (the file's base
// name without extension) on a multi-dataset sync server; it serves every
// protocol variant concurrently — multiplexed (MUX1) and legacy
// connections alike — and shuts down gracefully on SIGINT. With
// -data-dir the datasets are durable: every mutation is write-ahead
// logged under the directory, and a restarted server recovers each
// dataset from its snapshot plus log tail (the -data files then only
// name the datasets; disk state wins).
// `pull` opens a session naming one dataset and a protocol
// (-proto oneshot|adaptive|exact|rateless|ranged|cpi|naive) and adopts the server's
// reconciliation parameters automatically; -mux rides a multiplexed
// client connection. `cluster` with -mux gossips every shard over one
// connection per peer and asserts the metrics endpoint afterwards; with
// -data the nodes are durable, and -kill-restart runs the crash-recovery
// smoke on top.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand/v2"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"robustset"
	"robustset/internal/pointio"
	"robustset/internal/points"
	"robustset/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "quantize":
		err = cmdQuantize(os.Args[2:])
	case "local":
		err = cmdLocal(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "pull":
		err = cmdPull(os.Args[2:])
	case "explain":
		// explain is pull with tracing forced on: run the sync and print
		// the phase/byte breakdown of what just happened on the wire.
		err = cmdPull(append([]string{"-trace"}, os.Args[2:]...))
	case "cluster", "-cluster":
		err = cmdCluster(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "robustsync:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: robustsync <gen|quantize|local|serve|pull|explain|cluster> [flags]
  gen       generate a point file (optionally a noisy copy of another file)
  quantize  ingest float CSV data into a point file
  local     reconcile two local point files in-process
  serve     publish point files as named datasets on a sync server (Alice)
  pull      reconcile the local file against a server dataset (Bob)
  explain   pull with -trace: print the session's phase and wire-byte breakdown
  cluster   run an N-node anti-entropy replication demo to convergence
run "robustsync <cmd> -h" for flags`)
	os.Exit(2)
}

// fsyncPolicyFor maps a -fsync flag value to the store policy.
func fsyncPolicyFor(mode string) (robustset.FsyncPolicy, error) {
	switch mode {
	case "", "always":
		return robustset.SyncAlways, nil
	case "none":
		return robustset.SyncNone, nil
	default:
		return robustset.SyncAlways, fmt.Errorf("unknown -fsync %q (always|none)", mode)
	}
}

// strategyFor maps a -proto flag value to a Strategy.
func strategyFor(proto string) (robustset.Strategy, error) {
	switch proto {
	case "", "oneshot", "robust":
		return robustset.Robust{}, nil
	case "adaptive":
		return robustset.Adaptive{}, nil
	case "exact":
		return robustset.ExactIBLT{}, nil
	case "rateless":
		return robustset.Rateless{}, nil
	case "ranged":
		return robustset.Ranged{}, nil
	case "cpi":
		return robustset.CPI{}, nil
	case "naive":
		return robustset.Naive{}, nil
	default:
		return nil, fmt.Errorf("unknown -proto %q (oneshot|adaptive|exact|rateless|ranged|cpi|naive)", proto)
	}
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "", "output file (required)")
	n := fs.Int("n", 1000, "number of points")
	dim := fs.Int("dim", 2, "dimensions")
	delta := fs.Int64("delta", 1<<20, "coordinate range (power of two)")
	seed := fs.Uint64("seed", 1, "generator seed")
	clusters := fs.Int("clusters", 0, "draw points from this many clusters (0 = uniform)")
	from := fs.String("from", "", "derive a noisy copy of this base file instead of fresh points")
	noise := fs.Float64("noise", 0, "uniform per-coordinate noise amplitude for -from")
	outliers := fs.Int("outliers", 0, "number of fresh replacement points for -from")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	var u points.Universe
	var pts []points.Point
	if *from != "" {
		bu, base, err := readFile(*from)
		if err != nil {
			return err
		}
		u = bu
		rng := rand.New(rand.NewPCG(*seed, ^*seed))
		pts = make([]points.Point, len(base))
		for i, p := range base {
			if i < *outliers {
				q := make(points.Point, u.Dim)
				for j := range q {
					q[j] = rng.Int64N(u.Delta)
				}
				pts[i] = q
				continue
			}
			q := p.Clone()
			s := int64(*noise)
			if s > 0 {
				for j := range q {
					q[j] += rng.Int64N(2*s+1) - s
				}
			}
			pts[i] = u.Clamp(q)
		}
	} else {
		u = points.Universe{Dim: *dim, Delta: *delta}
		inst, err := workload.Generate(workload.Config{
			N: *n, Universe: u, Clusters: *clusters, Seed: *seed,
		})
		if err != nil {
			return err
		}
		pts = inst.Bob
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pointio.Write(f, u, pts); err != nil {
		return err
	}
	fmt.Printf("wrote %d points (dim=%d delta=%d) to %s\n", len(pts), u.Dim, u.Delta, *out)
	return nil
}

func cmdLocal(args []string) error {
	fs := flag.NewFlagSet("local", flag.ExitOnError)
	aliceFile := fs.String("alice", "", "Alice's point file (required)")
	bobFile := fs.String("bob", "", "Bob's point file (required)")
	k := fs.Int("k", 16, "difference budget")
	seed := fs.Uint64("seed", 42, "shared protocol seed")
	proto := fs.String("proto", "", "protocol: oneshot|adaptive|exact|rateless|ranged|cpi|naive (default oneshot)")
	adaptive := fs.Bool("adaptive", false, "shorthand for -proto adaptive")
	out := fs.String("out", "", "write Bob's reconciled set here")
	fs.Parse(args)
	if *aliceFile == "" || *bobFile == "" {
		return fmt.Errorf("local: -alice and -bob are required")
	}
	if *adaptive && *proto == "" {
		*proto = "adaptive"
	}
	strat, err := strategyFor(*proto)
	if err != nil {
		return fmt.Errorf("local: %w", err)
	}
	u, alice, err := readFile(*aliceFile)
	if err != nil {
		return err
	}
	ub, bob, err := readFile(*bobFile)
	if err != nil {
		return err
	}
	if u != ub {
		return fmt.Errorf("local: universes differ: %+v vs %+v", u, ub)
	}
	params := robustset.Params{Universe: u, Seed: *seed, DiffBudget: *k}
	res, stats, err := runLocal(strat, params, alice, bob)
	if err != nil {
		return err
	}
	report(res, stats, u, alice, bob)
	return writeResult(*out, u, res.SPrime)
}

// runLocal wires the two sides through an in-process TCP connection so
// the byte accounting matches a real deployment.
func runLocal(strat robustset.Strategy, params robustset.Params, alice, bob []points.Point) (*robustset.SyncResult, robustset.TransferStats, error) {
	sess, err := robustset.NewSession(strat, robustset.WithParams(params))
	if err != nil {
		return nil, robustset.TransferStats{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, robustset.TransferStats{}, err
	}
	defer ln.Close()
	ctx := context.Background()
	aliceErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			aliceErr <- err
			return
		}
		defer conn.Close()
		_, err = sess.Serve(ctx, conn, alice)
		aliceErr <- err
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, robustset.TransferStats{}, err
	}
	defer conn.Close()
	res, stats, err := sess.Fetch(ctx, conn, bob)
	if err != nil {
		return nil, stats, err
	}
	if err := <-aliceErr; err != nil {
		return nil, stats, err
	}
	return res, stats, nil
}

// datasetName derives a dataset name from a point-file path: the base
// name without its extension.
func datasetName(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var data multiFlag
	fs.Var(&data, "data", "point file to publish as a dataset (repeatable, required)")
	listen := fs.String("listen", ":7777", "listen address")
	k := fs.Int("k", 16, "difference budget")
	seed := fs.Uint64("seed", 42, "shared protocol seed")
	grace := fs.Duration("grace", 10*time.Second, "shutdown grace period for in-flight sessions")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics (Prometheus text), /debug/vars and /debug/traces on this address")
	dataDir := fs.String("data-dir", "", "durable storage root: WAL+snapshot per dataset, recovered on restart")
	fsyncMode := fs.String("fsync", "always", "durable log fsync policy: always|none")
	snapEvery := fs.Int("snapshot-every", 0, "snapshot after this many log records (0 = store default, <0 = never)")
	fs.Parse(args)
	if len(data) == 0 {
		return fmt.Errorf("serve: at least one -data is required")
	}
	fsync, err := fsyncPolicyFor(*fsyncMode)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	opts := []robustset.ServerOption{robustset.WithServerLogger(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})}
	if *metricsAddr != "" {
		// Bind before the server starts: a taken port is an operator error
		// the process must report and exit on, not serve half-configured.
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "robustsync: serve: metrics endpoint unavailable on %s: %v\n", *metricsAddr, err)
			return fmt.Errorf("serve: metrics listener: %w", err)
		}
		opts = append(opts,
			robustset.WithServerMetrics(robustset.NewMetrics()),
			robustset.WithServerTracing(robustset.NewTraceLog()),
			robustset.WithServerMetricsListener(mln),
		)
		fmt.Printf("observability on http://%s: /metrics /debug/vars /debug/traces\n", mln.Addr())
	}
	durable := *dataDir != ""
	if durable {
		opts = append(opts,
			robustset.WithServerDataDir(*dataDir),
			robustset.WithServerFsync(fsync),
			robustset.WithServerSnapshotEvery(*snapEvery),
		)
	}
	srv := robustset.NewServer(opts...)
	for _, path := range data {
		u, pts, err := readFile(path)
		if err != nil {
			return err
		}
		params := robustset.Params{Universe: u, Seed: *seed, DiffBudget: *k}
		name := datasetName(path)
		var d *robustset.Dataset
		if durable {
			// On a fresh directory the file seeds the dataset; on restart
			// the recovered disk state wins and the file only names it.
			d, err = srv.PublishDurable(name, params, pts)
		} else {
			d, err = srv.Publish(name, params, pts)
		}
		if err != nil {
			return err
		}
		mode := ""
		if durable {
			mode = ", durable"
		}
		fmt.Printf("published dataset %q: %d points (dim=%d delta=%d%s)\n", name, d.Size(), u.Dim, u.Delta, mode)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("sync server listening on %s (k=%d, datasets: %s)\n", ln.Addr(), *k, strings.Join(srv.Datasets(), ", "))

	// Serve until SIGINT/SIGTERM, then drain in-flight sessions.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "robustsync: %v: shutting down (grace %v)\n", sig, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "robustsync: forced shutdown: %v\n", err)
		}
		<-serveErr
		return nil
	}
}

func cmdPull(args []string) error {
	fs := flag.NewFlagSet("pull", flag.ExitOnError)
	data := fs.String("data", "", "local point file (required)")
	connect := fs.String("connect", "", "server address (required)")
	dataset := fs.String("dataset", "", "dataset name on the server (default: derived from -data)")
	proto := fs.String("proto", "", "protocol: oneshot|adaptive|exact|rateless|ranged|cpi|naive (default oneshot)")
	adaptive := fs.Bool("adaptive", false, "shorthand for -proto adaptive")
	timeout := fs.Duration("timeout", time.Minute, "overall session deadline (0 = none)")
	mux := fs.Bool("mux", false, "open the session over a multiplexed client connection")
	showTrace := fs.Bool("trace", false, "print the session's phase spans and per-frame wire bytes")
	out := fs.String("out", "", "write the reconciled set here")
	fs.Parse(args)
	if *data == "" || *connect == "" {
		return fmt.Errorf("pull: -data and -connect are required")
	}
	if *adaptive && *proto == "" {
		*proto = "adaptive"
	}
	strat, err := strategyFor(*proto)
	if err != nil {
		return fmt.Errorf("pull: %w", err)
	}
	u, bob, err := readFile(*data)
	if err != nil {
		return err
	}
	name := *dataset
	if name == "" {
		name = datasetName(*data)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// With -trace the sink captures the completed trace (failed sessions
	// included) and the breakdown prints after the report — or alone, when
	// the session erred and there is nothing else to show.
	var captured *robustset.SessionTrace
	var traceOpts []robustset.Option
	if *showTrace {
		traceOpts = append(traceOpts, robustset.WithSessionTrace(func(st *robustset.SessionTrace) {
			captured = st
		}))
	}
	printTrace := func() {
		if captured != nil {
			captured.Format(os.Stdout)
		}
	}
	var res *robustset.SyncResult
	var stats robustset.TransferStats
	if *mux {
		cl, err := robustset.DialClient(ctx, *connect)
		if err != nil {
			return err
		}
		defer cl.Close()
		cs, err := cl.Session(name, strat, traceOpts...)
		if err != nil {
			return err
		}
		if res, stats, err = cs.Fetch(ctx, bob); err != nil {
			printTrace()
			return err
		}
	} else {
		sess, err := robustset.NewSession(strat, append([]robustset.Option{robustset.WithDataset(name)}, traceOpts...)...)
		if err != nil {
			return err
		}
		conn, err := net.Dial("tcp", *connect)
		if err != nil {
			return err
		}
		defer conn.Close()
		if res, stats, err = sess.Fetch(ctx, conn, bob); err != nil {
			printTrace()
			return err
		}
	}
	// The handshake adopted the server's parameters; write the result
	// under that universe (it may be wider than the local file's).
	u = res.Params.Universe
	report(res, stats, u, nil, bob)
	printTrace()
	return writeResult(*out, u, res.SPrime)
}

func report(res *robustset.SyncResult, stats robustset.TransferStats, u points.Universe, alice, bob []points.Point) {
	if r := res.Robust; r != nil {
		fmt.Printf("reconciled at level %d (cell width %d): %d added, %d removed, |S'_B|=%d\n",
			r.Level, r.CellWidth, len(r.Added), len(r.Removed), len(res.SPrime))
	} else {
		fmt.Printf("reconciled exactly: |S'_B|=%d\n", len(res.SPrime))
	}
	fmt.Printf("transfer: %s\n", stats)
	if alice != nil {
		before, _ := robustset.EMDApprox(alice, bob, u, 987)
		after, _ := robustset.EMDApprox(alice, res.SPrime, u, 987)
		fmt.Printf("grid-EMD estimate to Alice's data: %.0f → %.0f\n", before, after)
	}
}

func writeResult(path string, u points.Universe, pts []points.Point) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pointio.Write(f, u, pts); err != nil {
		return err
	}
	fmt.Printf("wrote %d points to %s\n", len(pts), path)
	return nil
}

func readFile(path string) (points.Universe, []points.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return points.Universe{}, nil, err
	}
	defer f.Close()
	return pointio.Read(f)
}
