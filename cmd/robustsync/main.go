// Command robustsync is the command-line front end for robust set
// reconciliation. It can generate workload files, reconcile two local
// files, and run the protocol across real hosts over TCP.
//
// Usage:
//
//	robustsync gen      -out points.txt -n 1000 -dim 2 -delta 1048576 [-from base.txt -noise 4 -outliers 10]
//	robustsync quantize -csv data.csv -cols 1,2 -out points.txt [-delta 16777216] [-min a,b -max c,d]
//	robustsync local    -alice a.txt -bob b.txt [-k 16] [-adaptive] [-out sprime.txt]
//	robustsync serve    -data a.txt -listen :7777 [-k 16] [-adaptive]
//	robustsync pull     -data b.txt -connect host:7777 [-k 16] [-adaptive] [-out sprime.txt]
//
// `serve` is Alice (the party whose data is being fetched); `pull` is Bob.
// Both sides must use the same -k, -seed and -adaptive settings.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"net"
	"os"

	"robustset"
	"robustset/internal/pointio"
	"robustset/internal/points"
	"robustset/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "quantize":
		err = cmdQuantize(os.Args[2:])
	case "local":
		err = cmdLocal(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "pull":
		err = cmdPull(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "robustsync:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: robustsync <gen|quantize|local|serve|pull> [flags]
  gen       generate a point file (optionally a noisy copy of another file)
  quantize  ingest float CSV data into a point file
  local     reconcile two local point files in-process
  serve     serve a point file to pullers over TCP (Alice)
  pull      reconcile the local file against a server (Bob)
run "robustsync <cmd> -h" for flags`)
	os.Exit(2)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "", "output file (required)")
	n := fs.Int("n", 1000, "number of points")
	dim := fs.Int("dim", 2, "dimensions")
	delta := fs.Int64("delta", 1<<20, "coordinate range (power of two)")
	seed := fs.Uint64("seed", 1, "generator seed")
	clusters := fs.Int("clusters", 0, "draw points from this many clusters (0 = uniform)")
	from := fs.String("from", "", "derive a noisy copy of this base file instead of fresh points")
	noise := fs.Float64("noise", 0, "uniform per-coordinate noise amplitude for -from")
	outliers := fs.Int("outliers", 0, "number of fresh replacement points for -from")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	var u points.Universe
	var pts []points.Point
	if *from != "" {
		bu, base, err := readFile(*from)
		if err != nil {
			return err
		}
		u = bu
		rng := rand.New(rand.NewPCG(*seed, ^*seed))
		pts = make([]points.Point, len(base))
		for i, p := range base {
			if i < *outliers {
				q := make(points.Point, u.Dim)
				for j := range q {
					q[j] = rng.Int64N(u.Delta)
				}
				pts[i] = q
				continue
			}
			q := p.Clone()
			s := int64(*noise)
			if s > 0 {
				for j := range q {
					q[j] += rng.Int64N(2*s+1) - s
				}
			}
			pts[i] = u.Clamp(q)
		}
	} else {
		u = points.Universe{Dim: *dim, Delta: *delta}
		inst, err := workload.Generate(workload.Config{
			N: *n, Universe: u, Clusters: *clusters, Seed: *seed,
		})
		if err != nil {
			return err
		}
		pts = inst.Bob
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pointio.Write(f, u, pts); err != nil {
		return err
	}
	fmt.Printf("wrote %d points (dim=%d delta=%d) to %s\n", len(pts), u.Dim, u.Delta, *out)
	return nil
}

func cmdLocal(args []string) error {
	fs := flag.NewFlagSet("local", flag.ExitOnError)
	aliceFile := fs.String("alice", "", "Alice's point file (required)")
	bobFile := fs.String("bob", "", "Bob's point file (required)")
	k := fs.Int("k", 16, "difference budget")
	seed := fs.Uint64("seed", 42, "shared protocol seed")
	adaptive := fs.Bool("adaptive", false, "use the estimate-first protocol")
	out := fs.String("out", "", "write Bob's reconciled set here")
	fs.Parse(args)
	if *aliceFile == "" || *bobFile == "" {
		return fmt.Errorf("local: -alice and -bob are required")
	}
	u, alice, err := readFile(*aliceFile)
	if err != nil {
		return err
	}
	ub, bob, err := readFile(*bobFile)
	if err != nil {
		return err
	}
	if u != ub {
		return fmt.Errorf("local: universes differ: %+v vs %+v", u, ub)
	}
	params := robustset.Params{Universe: u, Seed: *seed, DiffBudget: *k}
	res, stats, err := runLocal(params, alice, bob, *adaptive)
	if err != nil {
		return err
	}
	report(res, stats, u, alice, bob)
	return writeResult(*out, u, res.SPrime)
}

// runLocal wires the two sides through an in-process TCP connection so
// the byte accounting matches a real deployment.
func runLocal(params robustset.Params, alice, bob []points.Point, adaptive bool) (*robustset.Result, robustset.TransferStats, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, robustset.TransferStats{}, err
	}
	defer ln.Close()
	aliceErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			aliceErr <- err
			return
		}
		defer conn.Close()
		if adaptive {
			_, err = robustset.PushAdaptive(conn, params, alice)
		} else {
			_, err = robustset.Push(conn, params, alice)
		}
		aliceErr <- err
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, robustset.TransferStats{}, err
	}
	defer conn.Close()
	var res *robustset.Result
	var stats robustset.TransferStats
	if adaptive {
		res, stats, err = robustset.PullAdaptive(conn, params, bob, robustset.AdaptiveOptions{})
	} else {
		res, stats, err = robustset.Pull(conn, bob)
	}
	if err != nil {
		return nil, stats, err
	}
	if err := <-aliceErr; err != nil {
		return nil, stats, err
	}
	return res, stats, nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	data := fs.String("data", "", "point file to serve (required)")
	listen := fs.String("listen", ":7777", "listen address")
	k := fs.Int("k", 16, "difference budget")
	seed := fs.Uint64("seed", 42, "shared protocol seed")
	adaptive := fs.Bool("adaptive", false, "serve the estimate-first protocol")
	once := fs.Bool("once", false, "exit after one session")
	fs.Parse(args)
	if *data == "" {
		return fmt.Errorf("serve: -data is required")
	}
	u, pts, err := readFile(*data)
	if err != nil {
		return err
	}
	params := robustset.Params{Universe: u, Seed: *seed, DiffBudget: *k}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("serving %d points on %s (k=%d adaptive=%v)\n", len(pts), ln.Addr(), *k, *adaptive)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		var stats robustset.TransferStats
		if *adaptive {
			stats, err = robustset.PushAdaptive(conn, params, pts)
		} else {
			stats, err = robustset.Push(conn, params, pts)
		}
		conn.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "session error: %v\n", err)
		} else {
			fmt.Printf("session done: %s\n", stats)
		}
		if *once {
			return nil
		}
	}
}

func cmdPull(args []string) error {
	fs := flag.NewFlagSet("pull", flag.ExitOnError)
	data := fs.String("data", "", "local point file (required)")
	connect := fs.String("connect", "", "server address (required)")
	k := fs.Int("k", 16, "difference budget (must match server)")
	seed := fs.Uint64("seed", 42, "shared protocol seed (must match server)")
	adaptive := fs.Bool("adaptive", false, "use the estimate-first protocol (must match server)")
	out := fs.String("out", "", "write the reconciled set here")
	fs.Parse(args)
	if *data == "" || *connect == "" {
		return fmt.Errorf("pull: -data and -connect are required")
	}
	u, bob, err := readFile(*data)
	if err != nil {
		return err
	}
	conn, err := net.Dial("tcp", *connect)
	if err != nil {
		return err
	}
	defer conn.Close()
	params := robustset.Params{Universe: u, Seed: *seed, DiffBudget: *k}
	var res *robustset.Result
	var stats robustset.TransferStats
	if *adaptive {
		res, stats, err = robustset.PullAdaptive(conn, params, bob, robustset.AdaptiveOptions{})
	} else {
		res, stats, err = robustset.Pull(conn, bob)
	}
	if err != nil {
		return err
	}
	report(res, stats, u, nil, bob)
	return writeResult(*out, u, res.SPrime)
}

func report(res *robustset.Result, stats robustset.TransferStats, u points.Universe, alice, bob []points.Point) {
	fmt.Printf("reconciled at level %d (cell width %d): %d added, %d removed, |S'_B|=%d\n",
		res.Level, res.CellWidth, len(res.Added), len(res.Removed), len(res.SPrime))
	fmt.Printf("transfer: %s\n", stats)
	if alice != nil {
		before, _ := robustset.EMDApprox(alice, bob, u, 987)
		after, _ := robustset.EMDApprox(alice, res.SPrime, u, 987)
		fmt.Printf("grid-EMD estimate to Alice's data: %.0f → %.0f\n", before, after)
	}
}

func writeResult(path string, u points.Universe, pts []points.Point) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pointio.Write(f, u, pts); err != nil {
		return err
	}
	fmt.Printf("wrote %d points to %s\n", len(pts), path)
	return nil
}

func readFile(path string) (points.Universe, []points.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return points.Universe{}, nil, err
	}
	defer f.Close()
	return pointio.Read(f)
}
