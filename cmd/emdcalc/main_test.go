package main

import (
	"os"
	"path/filepath"
	"testing"

	"robustset/internal/pointio"
	"robustset/internal/points"
)

func writePoints(t *testing.T, dir, name string, u points.Universe, pts []points.Point) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := pointio.Write(f, u, pts); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExactAndPartial(t *testing.T) {
	dir := t.TempDir()
	u := points.Universe{Dim: 2, Delta: 1 << 10}
	a := writePoints(t, dir, "a.txt", u, []points.Point{{0, 0}, {10, 10}})
	b := writePoints(t, dir, "b.txt", u, []points.Point{{1, 1}, {12, 9}})
	if err := run(a, b, "l1", 1, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := run(a, b, "l2", -1, false, 1); err != nil {
		t.Fatal(err)
	}
	if err := run(a, b, "l1", -1, true, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	u := points.Universe{Dim: 2, Delta: 1 << 10}
	a := writePoints(t, dir, "a.txt", u, []points.Point{{0, 0}})
	other := writePoints(t, dir, "c.txt", points.Universe{Dim: 3, Delta: 1 << 10}, []points.Point{{0, 0, 0}})
	if err := run(a, other, "l1", -1, false, 1); err == nil {
		t.Error("universe mismatch accepted")
	}
	if err := run(a, a, "manhattan", -1, false, 1); err == nil {
		t.Error("unknown metric accepted")
	}
	if err := run(filepath.Join(dir, "missing.txt"), a, "l1", -1, false, 1); err == nil {
		t.Error("missing file accepted")
	}
	// The n>2000 guard.
	big := make([]points.Point, 2001)
	for i := range big {
		big[i] = points.Point{int64(i % 1024), 0}
	}
	bp := writePoints(t, dir, "big.txt", u, big)
	if err := run(bp, bp, "l1", -1, false, 1); err == nil {
		t.Error("oversized exact computation accepted")
	}
}
