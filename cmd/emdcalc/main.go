// Command emdcalc computes Earth Mover's Distances between two point
// files: the exact EMD (and optionally EMD_k) via min-cost matching, or
// the fast grid-embedding estimate for large inputs.
//
// Usage:
//
//	emdcalc -a alice.txt -b bob.txt [-metric l1|l2|linf] [-k 8] [-approx]
package main

import (
	"flag"
	"fmt"
	"os"

	"robustset"
	"robustset/internal/pointio"
	"robustset/internal/points"
)

func main() {
	aFile := flag.String("a", "", "first point file (required)")
	bFile := flag.String("b", "", "second point file (required)")
	metricName := flag.String("metric", "l1", "ground metric: l1, l2 or linf")
	k := flag.Int("k", -1, "also report EMD_k for this exclusion count")
	approx := flag.Bool("approx", false, "use the O(n·logΔ) grid estimate instead of exact matching")
	seed := flag.Uint64("seed", 1, "grid seed for -approx")
	flag.Parse()
	if *aFile == "" || *bFile == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*aFile, *bFile, *metricName, *k, *approx, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "emdcalc:", err)
		os.Exit(1)
	}
}

func run(aFile, bFile, metricName string, k int, approx bool, seed uint64) error {
	ua, a, err := readFile(aFile)
	if err != nil {
		return err
	}
	ub, b, err := readFile(bFile)
	if err != nil {
		return err
	}
	if ua != ub {
		return fmt.Errorf("universes differ: %+v vs %+v", ua, ub)
	}
	if approx {
		est, err := robustset.EMDApprox(a, b, ua, seed)
		if err != nil {
			return err
		}
		fmt.Printf("grid-EMD estimate (l1, O(d·logΔ) distortion): %.0f\n", est)
		return nil
	}
	metric, err := points.MetricByName(metricName)
	if err != nil {
		return err
	}
	if len(a) > 2000 {
		return fmt.Errorf("exact EMD on %d points would take too long; use -approx", len(a))
	}
	d, err := robustset.EMD(a, b, metric)
	if err != nil {
		return err
	}
	fmt.Printf("EMD (%s): %.2f\n", metric.Name(), d)
	if k >= 0 {
		dk, err := robustset.EMDk(a, b, metric, k)
		if err != nil {
			return err
		}
		fmt.Printf("EMD_%d (%s): %.2f\n", k, metric.Name(), dk)
	}
	return nil
}

func readFile(path string) (points.Universe, []points.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return points.Universe{}, nil, err
	}
	defer f.Close()
	return pointio.Read(f)
}
