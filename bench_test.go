// Benchmarks regenerating the paper's evaluation: one benchmark per
// table/figure (E1–E11, indexed in DESIGN.md §4). Each benchmark runs the
// corresponding experiment at reduced scale and reports its headline
// quantity via b.ReportMetric, so `go test -bench=.` both exercises the
// full protocol pipelines and prints the reproduction's key numbers.
// `cmd/experiments` runs the same harness at full scale; EXPERIMENTS.md
// records a full run.
package robustset_test

import (
	"math/rand/v2"
	"testing"

	"robustset"
	"robustset/internal/baseline"
	"robustset/internal/core"
	"robustset/internal/emd"
	"robustset/internal/experiments"
	"robustset/internal/iblt"
	"robustset/internal/points"
	"robustset/internal/protocol"
	"robustset/internal/sketch"
	"robustset/internal/workload"
)

var benchUniverse = points.Universe{Dim: 2, Delta: 1 << 20}

func benchInstance(b *testing.B, n, k int, noise float64) *workload.Instance {
	b.Helper()
	inst, err := workload.Generate(workload.Config{
		N: n, Universe: benchUniverse, Outliers: k,
		Noise: workload.NoiseUniform, Scale: noise, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// runReconciler executes rec once per iteration and reports mean bytes.
func runReconciler(b *testing.B, rec baseline.Reconciler, inst *workload.Instance) {
	b.Helper()
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := rec.Run(inst.Alice, inst.Bob)
		if err != nil {
			b.Fatal(err)
		}
		bytes = out.BytesTransferred()
	}
	b.ReportMetric(float64(bytes), "wire-bytes")
}

// --- E1: communication vs k ---

func BenchmarkE1CommVsK_RobustOneShot_K16(b *testing.B) {
	inst := benchInstance(b, 1024, 16, 4)
	params := core.Params{Universe: benchUniverse, Seed: 7, DiffBudget: 16}
	runReconciler(b, baseline.RobustOneShot{Params: params}, inst)
}

func BenchmarkE1CommVsK_RobustOneShot_K64(b *testing.B) {
	inst := benchInstance(b, 1024, 64, 4)
	params := core.Params{Universe: benchUniverse, Seed: 7, DiffBudget: 64}
	runReconciler(b, baseline.RobustOneShot{Params: params}, inst)
}

func BenchmarkE1CommVsK_ExactIBLT(b *testing.B) {
	inst := benchInstance(b, 1024, 16, 4)
	runReconciler(b, baseline.ExactIBLT{Config: protocol.ExactConfig{Universe: benchUniverse, Seed: 11}}, inst)
}

func BenchmarkE1CommVsK_Naive(b *testing.B) {
	inst := benchInstance(b, 1024, 16, 4)
	runReconciler(b, baseline.Naive{Universe: benchUniverse}, inst)
}

// --- E2: communication vs n ---

func BenchmarkE2CommVsN_Robust_N512(b *testing.B) {
	inst := benchInstance(b, 512, 16, 4)
	params := core.Params{Universe: benchUniverse, Seed: 7, DiffBudget: 16}
	runReconciler(b, baseline.RobustOneShot{Params: params}, inst)
}

func BenchmarkE2CommVsN_Robust_N4096(b *testing.B) {
	inst := benchInstance(b, 4096, 16, 4)
	params := core.Params{Universe: benchUniverse, Seed: 7, DiffBudget: 16}
	runReconciler(b, baseline.RobustOneShot{Params: params}, inst)
}

// --- E3: approximation factor vs dimension ---

func benchApproxRatio(b *testing.B, d int) {
	u := points.Universe{Dim: d, Delta: 1 << 16}
	inst, err := workload.Generate(workload.Config{
		N: 128, Universe: u, Outliers: 4,
		Noise: workload.NoiseUniform, Scale: 2, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	params := core.Params{Universe: u, Seed: 7, DiffBudget: 4}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := baseline.RobustOneShot{Params: params}.Run(inst.Alice, inst.Bob)
		if err != nil {
			b.Fatal(err)
		}
		after, _ := emd.Exact(inst.Alice, out.SPrime, points.L1)
		floor, _ := emd.Partial(inst.Alice, inst.Bob, points.L1, 4)
		if floor < 1 {
			floor = 1
		}
		ratio = after / floor
	}
	b.ReportMetric(ratio, "emd-ratio")
	b.ReportMetric(ratio/float64(d), "emd-ratio/d")
}

func BenchmarkE3ApproxVsDim_D2(b *testing.B)  { benchApproxRatio(b, 2) }
func BenchmarkE3ApproxVsDim_D8(b *testing.B)  { benchApproxRatio(b, 8) }
func BenchmarkE3ApproxVsDim_D16(b *testing.B) { benchApproxRatio(b, 16) }

// --- E4: noise sweep ---

func benchNoise(b *testing.B, eps float64) {
	inst := benchInstance(b, 256, 8, eps)
	params := core.Params{Universe: benchUniverse, Seed: 7, DiffBudget: 8}
	var robustBytes, exactBytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := baseline.RobustOneShot{Params: params}.Run(inst.Alice, inst.Bob)
		if err != nil {
			b.Fatal(err)
		}
		e, err := baseline.ExactIBLT{Config: protocol.ExactConfig{Universe: benchUniverse, Seed: 11}}.
			Run(inst.Alice, inst.Bob)
		if err != nil {
			b.Fatal(err)
		}
		robustBytes, exactBytes = r.BytesTransferred(), e.BytesTransferred()
	}
	b.ReportMetric(float64(robustBytes), "robust-bytes")
	b.ReportMetric(float64(exactBytes), "exact-bytes")
}

func BenchmarkE4NoiseSweep_Eps0(b *testing.B)  { benchNoise(b, 0) }
func BenchmarkE4NoiseSweep_Eps4(b *testing.B)  { benchNoise(b, 4) }
func BenchmarkE4NoiseSweep_Eps64(b *testing.B) { benchNoise(b, 64) }

// --- E5: IBLT decode threshold ---

func benchIBLTLoad(b *testing.B, alpha float64) {
	rng := rand.New(rand.NewPCG(5, 5))
	const diff = 64
	cells := int(alpha * diff)
	ok, total := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := iblt.New(iblt.Config{Cells: cells, HashCount: 4, KeyLen: 16, Seed: rng.Uint64()})
		if err != nil {
			b.Fatal(err)
		}
		var key [16]byte
		for j := 0; j < diff; j++ {
			u, v := rng.Uint64(), rng.Uint64()
			for l := 0; l < 8; l++ {
				key[l], key[8+l] = byte(u>>(8*l)), byte(v>>(8*l))
			}
			t.Insert(key[:])
		}
		if _, err := t.Decode(); err == nil {
			ok++
		}
		total++
	}
	b.ReportMetric(float64(ok)/float64(total), "decode-rate")
}

func BenchmarkE5IBLTThreshold_Load1_2(b *testing.B) { benchIBLTLoad(b, 1.2) }
func BenchmarkE5IBLTThreshold_Load1_5(b *testing.B) { benchIBLTLoad(b, 1.5) }
func BenchmarkE5IBLTThreshold_Load2_0(b *testing.B) { benchIBLTLoad(b, 2.0) }

// --- E6: level selection vs noise ---

func benchLevel(b *testing.B, eps float64) {
	inst := benchInstance(b, 512, 8, eps)
	params := core.Params{Universe: benchUniverse, Seed: 7, DiffBudget: 8}
	sk, err := core.BuildSketch(params, inst.Alice)
	if err != nil {
		b.Fatal(err)
	}
	var level int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Reconcile(sk, inst.Bob)
		if err != nil {
			b.Fatal(err)
		}
		level = res.Level
	}
	b.ReportMetric(float64(level), "decoded-level")
}

func BenchmarkE6LevelSelection_Eps1(b *testing.B)  { benchLevel(b, 1) }
func BenchmarkE6LevelSelection_Eps64(b *testing.B) { benchLevel(b, 64) }

// --- E7: runtime scaling (the classic ns/op benchmarks) ---

func benchEncode(b *testing.B, n int) {
	inst := benchInstance(b, n, 16, 4)
	params := core.Params{Universe: benchUniverse, Seed: 7, DiffBudget: 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildSketch(params, inst.Alice); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "points")
}

func BenchmarkE7Runtime_Encode_N1000(b *testing.B)  { benchEncode(b, 1000) }
func BenchmarkE7Runtime_Encode_N8000(b *testing.B)  { benchEncode(b, 8000) }
func BenchmarkE7Runtime_Encode_N64000(b *testing.B) { benchEncode(b, 64000) }

func BenchmarkE7Runtime_Reconcile_N8000(b *testing.B) {
	inst := benchInstance(b, 8000, 16, 4)
	params := core.Params{Universe: benchUniverse, Seed: 7, DiffBudget: 16}
	sk, err := core.BuildSketch(params, inst.Alice)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Reconcile(sk, inst.Bob); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: exact regime baselines ---

func BenchmarkE8ExactBaselines_CPI(b *testing.B) {
	inst := benchInstance(b, 1024, 8, 0)
	runReconciler(b, baseline.CPISync{Config: protocol.CPIConfig{Universe: benchUniverse, Seed: 13, Capacity: 20}}, inst)
}

func BenchmarkE8ExactBaselines_ExactIBLT(b *testing.B) {
	inst := benchInstance(b, 1024, 8, 0)
	runReconciler(b, baseline.ExactIBLT{Config: protocol.ExactConfig{Universe: benchUniverse, Seed: 11}}, inst)
}

func BenchmarkE8ExactBaselines_Robust(b *testing.B) {
	inst := benchInstance(b, 1024, 8, 0)
	params := core.Params{Universe: benchUniverse, Seed: 7, DiffBudget: 8}
	runReconciler(b, baseline.RobustOneShot{Params: params}, inst)
}

// --- E9: estimator accuracy (throughput of the estimators themselves) ---

func BenchmarkE9Estimators_BottomK(b *testing.B) {
	rng := rand.New(rand.NewPCG(9, 9))
	keys := make([][]byte, 4096)
	for i := range keys {
		k := make([]byte, 16)
		for j := range k {
			k[j] = byte(rng.Uint32())
		}
		keys[i] = k
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := sketch.NewBottomK(128, 7)
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range keys {
			est.Add(k)
		}
	}
}

// --- E10: protocol variants ---

func BenchmarkE10Variants_OneShot(b *testing.B) {
	inst := benchInstance(b, 1024, 8, 4)
	params := core.Params{Universe: benchUniverse, Seed: 7, DiffBudget: 8}
	runReconciler(b, baseline.RobustOneShot{Params: params}, inst)
}

func BenchmarkE10Variants_EstimateFirst(b *testing.B) {
	inst := benchInstance(b, 1024, 8, 4)
	params := core.Params{Universe: benchUniverse, Seed: 7, DiffBudget: 8}
	runReconciler(b, baseline.RobustEstimateFirst{Params: params}, inst)
}

// --- E11: design-choice ablations ---

func benchAblation(b *testing.B, q, capFactor int) {
	inst := benchInstance(b, 512, 16, 4)
	params := core.Params{
		Universe: benchUniverse, Seed: 7,
		DiffBudget: 16, HashCount: q, TableCapacity: capFactor * 16,
	}
	var level int
	var bytes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk, err := core.BuildSketch(params, inst.Alice)
		if err != nil {
			b.Fatal(err)
		}
		bytes = sk.WireSize()
		res, err := core.Reconcile(sk, inst.Bob)
		if err != nil {
			b.Fatal(err)
		}
		level = res.Level
	}
	b.ReportMetric(float64(bytes), "sketch-bytes")
	b.ReportMetric(float64(level), "decoded-level")
}

func BenchmarkE11Ablation_Q3_Cap2(b *testing.B) { benchAblation(b, 3, 2) }
func BenchmarkE11Ablation_Q4_Cap1(b *testing.B) { benchAblation(b, 4, 1) }
func BenchmarkE11Ablation_Q4_Cap2(b *testing.B) { benchAblation(b, 4, 2) }
func BenchmarkE11Ablation_Q4_Cap4(b *testing.B) { benchAblation(b, 4, 4) }
func BenchmarkE11Ablation_Q5_Cap2(b *testing.B) { benchAblation(b, 5, 2) }

// --- whole-suite smoke benchmark ---

// BenchmarkExperimentSuiteQuick runs the entire harness once per
// iteration at quick scale, guaranteeing every experiment stays runnable.
func BenchmarkExperimentSuiteQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, e := range experiments.All() {
			if _, err := e.Run(experiments.ScaleQuick); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- public API micro-benchmarks ---

func BenchmarkPublicSketchMarshal(b *testing.B) {
	inst := benchInstance(b, 2048, 16, 4)
	params := robustset.Params{Universe: benchUniverse, Seed: 7, DiffBudget: 16}
	sk, err := robustset.NewSketch(params, inst.Alice)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPublicEMDExact_N128(b *testing.B) {
	inst := benchInstance(b, 128, 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := robustset.EMD(inst.Alice, inst.Bob, robustset.L1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPublicEMDApprox_N4096(b *testing.B) {
	inst := benchInstance(b, 4096, 4, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := robustset.EMDApprox(inst.Alice, inst.Bob, benchUniverse, 3); err != nil {
			b.Fatal(err)
		}
	}
}
