package robustset

import (
	"io"
	"net"
	"net/http"

	"robustset/internal/metrics"
)

// Metrics is the module's observability registry: servers and
// replicators handed one (WithServerMetrics, WithReplicatorMetrics)
// increment named counters, gauges and latency
// histograms on their hot paths, and the registry renders them as an
// expvar-style JSON document — either programmatically (Snapshot,
// WriteJSON) or on a debug listener (Serve, Handler) that smoke tests
// and dashboards poll. One registry may be shared by any number of
// components; their counters aggregate.
//
// Well-known names:
//
//	server_conns_total                 connections accepted
//	server_sessions_total[:dataset]    sessions served, total and per dataset
//	server_session_errors_total        sessions that ended in an error
//	server_bytes_in_total              connection bytes received (framing included)
//	server_bytes_out_total             connection bytes sent
//	server_mux_conns_total             connections negotiated to MUX1 framing
//	server_mux_streams_total           mux streams accepted
//	server_mux_streams_per_conn_max    most streams ever carried by one connection
//	mux_decode_failures_total          malformed mux frames observed
//	server_session_seconds             session latency histogram
//	replicator_rounds_total            anti-entropy rounds driven
//	replicator_session_errors_total    failed peer sessions
//	replicator_bytes_total             round wire traffic
//	replicator_round_seconds           round latency histogram
//
// Durable datasets (PublishDurable) add the storage-engine names:
//
//	store_wal_records_total            mutation batches appended to the log
//	store_wal_bytes_total              bytes appended to the log
//	store_fsync_seconds                log fsync latency histogram
//	store_snapshots_total              snapshots written
//	store_snapshot_seconds             snapshot write latency histogram
//	store_snapshot_bytes_total         snapshot bytes written
//	store_snapshot_errors_total        failed snapshot writes
//	store_recoveries_total             storage directories opened
//	store_replay_records_total         log records replayed at recovery
//	store_torn_truncations_total       torn log tails truncated at recovery
//	server_recovered_datasets_total    datasets rebuilt from disk state
type Metrics struct{ reg *metrics.Registry }

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics { return &Metrics{reg: metrics.New()} }

// registry unwraps m for internal plumbing; nil-safe (a nil *Metrics is
// a valid no-op sink).
func (m *Metrics) registry() *metrics.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// Snapshot returns every counter and gauge as a flat name → value map;
// histograms are summarized as name_count and name_sum_ns.
func (m *Metrics) Snapshot() map[string]int64 { return m.registry().Snapshot() }

// WriteJSON renders the registry as one JSON object with sorted keys.
func (m *Metrics) WriteJSON(w io.Writer) error { return m.registry().WriteJSON(w) }

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// latency histograms as cumulative le-bucket series with _sum (seconds)
// and _count. Names of the form "family:dataset" or "family:k=v,..."
// become one family with a dataset label or the listed label pairs.
func (m *Metrics) WritePrometheus(w io.Writer) error { return m.registry().WritePrometheus(w) }

// Handler returns an http.Handler serving /metrics in Prometheus text
// format and the JSON document on every other path (conventionally
// polled as /debug/vars).
func (m *Metrics) Handler() http.Handler { return m.registry().Handler() }

// Serve serves the debug endpoint on ln until the listener closes —
// typically on a loopback port, from its own goroutine:
//
//	ln, _ := net.Listen("tcp", "127.0.0.1:9090")
//	go m.Serve(ln)
func (m *Metrics) Serve(ln net.Listener) error { return m.registry().Serve(ln) }
