package robustset_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"robustset"
)

func startServer(t *testing.T, srv *robustset.Server) net.Addr {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-serveDone; !errors.Is(err, robustset.ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return ln.Addr()
}

// TestServerMultiDatasetConcurrent is the acceptance scenario: one server
// publishing two datasets, eight concurrent clients (four per dataset)
// fetching through four different strategies each.
func TestServerMultiDatasetConcurrent(t *testing.T) {
	paramsA := robustset.Params{Universe: testU, Seed: 101, DiffBudget: 6}
	paramsB := robustset.Params{Universe: testU, Seed: 202, DiffBudget: 4}
	aliceA, bobA := deterministicPair(41, 300, 6, 2)
	aliceB, bobB := deterministicPair(42, 200, 4, 2)

	srv := robustset.NewServer(WithTestLogger(t))
	if _, err := srv.Publish("sensors/alpha", paramsA, aliceA); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Publish("sensors/beta", paramsB, aliceB); err != nil {
		t.Fatal(err)
	}
	if got := srv.Datasets(); len(got) != 2 {
		t.Fatalf("Datasets() = %v", got)
	}
	addr := startServer(t, srv)

	type job struct {
		dataset       string
		strategy      robustset.Strategy
		local, remote []robustset.Point
		exact         bool
	}
	jobs := []job{
		{"sensors/alpha", robustset.Robust{}, bobA, aliceA, false},
		{"sensors/alpha", robustset.Adaptive{}, bobA, aliceA, false},
		{"sensors/alpha", robustset.ExactIBLT{}, robustset.ClonePoints(aliceA), aliceA, true},
		{"sensors/alpha", robustset.Naive{}, bobA, aliceA, true},
		{"sensors/beta", robustset.Robust{}, bobB, aliceB, false},
		{"sensors/beta", robustset.Adaptive{}, bobB, aliceB, false},
		{"sensors/beta", robustset.ExactIBLT{}, robustset.ClonePoints(aliceB), aliceB, true},
		{"sensors/beta", robustset.Naive{}, bobB, aliceB, true},
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			fail := func(err error) {
				errs <- fmt.Errorf("client %d (%s on %q): %w", i, j.strategy.Name(), j.dataset, err)
			}
			sess, err := robustset.NewSession(j.strategy, robustset.WithDataset(j.dataset))
			if err != nil {
				fail(err)
				return
			}
			conn, err := net.Dial("tcp", addr.String())
			if err != nil {
				fail(err)
				return
			}
			defer conn.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			res, _, err := sess.Fetch(ctx, conn, j.local)
			if err != nil {
				fail(err)
				return
			}
			if j.exact && !robustset.EqualMultisets(res.SPrime, j.remote) {
				fail(errors.New("exact strategy did not reproduce the dataset"))
			}
			if !j.exact && len(res.SPrime) != len(j.local) {
				fail(fmt.Errorf("|S'| = %d, want %d", len(res.SPrime), len(j.local)))
			}
		}(i, j)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServerUnknownDatasetAndStrategy asserts handshake rejections reach
// the client as remote errors.
func TestServerUnknownDataset(t *testing.T) {
	params := robustset.Params{Universe: testU, Seed: 1, DiffBudget: 4}
	alice, bob := deterministicPair(51, 100, 4, 2)
	srv := robustset.NewServer(WithTestLogger(t))
	if _, err := srv.Publish("known", params, alice); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)

	sess, err := robustset.NewSession(robustset.Robust{}, robustset.WithDataset("missing"))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, _, err := sess.Fetch(ctx, conn, bob); err == nil {
		t.Fatal("fetch of unknown dataset succeeded")
	}
}

// TestServerDatasetUpdates asserts live Add/Remove updates are visible to
// later sessions through the maintained sketch.
func TestServerDatasetUpdates(t *testing.T) {
	params := robustset.Params{Universe: testU, Seed: 31, DiffBudget: 8}
	alice, _ := deterministicPair(61, 150, 0, 0)
	srv := robustset.NewServer(WithTestLogger(t))
	d, err := srv.Publish("live", params, alice)
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)

	// Mutate the dataset: drop one point, add two fresh ones.
	if err := d.Remove(alice[0]); err != nil {
		t.Fatal(err)
	}
	fresh := robustset.Point{12345, 54321}
	if err := d.Add(fresh); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(robustset.Point{999, 111}); err != nil {
		t.Fatal(err)
	}
	if d.Size() != len(alice)+1 {
		t.Fatalf("Size() = %d, want %d", d.Size(), len(alice)+1)
	}
	if err := d.Remove(robustset.Point{7, 7}); !errors.Is(err, robustset.ErrNotPresent) {
		t.Fatalf("Remove of absent point: %v", err)
	}

	// An exact fetch sees the updated multiset.
	sess, err := robustset.NewSession(robustset.ExactIBLT{}, robustset.WithDataset("live"))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, _, err := sess.Fetch(ctx, conn, d.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !robustset.EqualMultisets(res.SPrime, d.Snapshot()) {
		t.Error("fetched multiset does not match the live dataset")
	}
}

// TestServerGracefulShutdown asserts Shutdown waits for an in-flight
// session to complete when the context allows it.
func TestServerGracefulShutdown(t *testing.T) {
	params := robustset.Params{Universe: testU, Seed: 71, DiffBudget: 4}
	alice, bob := deterministicPair(71, 200, 4, 2)
	srv := robustset.NewServer(WithTestLogger(t))
	if _, err := srv.Publish("d", params, alice); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	// Start a session and hold it mid-handshake briefly, then let it
	// finish while Shutdown is waiting.
	sess, err := robustset.NewSession(robustset.Robust{}, robustset.WithDataset("d"))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fetchDone := make(chan error, 1)
	go func() {
		time.Sleep(100 * time.Millisecond) // ensure Shutdown starts first
		_, _, err := sess.Fetch(context.Background(), conn, bob)
		fetchDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the server accept the conn
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful Shutdown: %v", err)
	}
	if err := <-fetchDone; err != nil {
		t.Fatalf("in-flight fetch during graceful shutdown: %v", err)
	}
	if err := <-serveDone; !errors.Is(err, robustset.ErrServerClosed) {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
	// New connections are refused after shutdown.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
}

// TestServerForcedShutdown asserts Shutdown aborts sessions that outlive
// its context: a client that completes the handshake and then goes
// silent holds a session goroutine, which must be torn down.
func TestServerForcedShutdown(t *testing.T) {
	params := robustset.Params{Universe: testU, Seed: 81, DiffBudget: 4}
	alice, _ := deterministicPair(81, 100, 4, 2)
	srv := robustset.NewServer(WithTestLogger(t))
	if _, err := srv.Publish("d", params, alice); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	// A client that connects and never speaks: the session goroutine
	// blocks in the handshake read.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	time.Sleep(50 * time.Millisecond) // let the server accept

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced Shutdown returned %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("forced shutdown took %v", elapsed)
	}
	if err := <-serveDone; !errors.Is(err, robustset.ErrServerClosed) {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
}

// TestServerPublishValidation covers dataset registration errors.
func TestServerPublishValidation(t *testing.T) {
	params := robustset.Params{Universe: testU, Seed: 1, DiffBudget: 2}
	srv := robustset.NewServer()
	defer srv.Close()
	if _, err := srv.Publish("", params, nil); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := srv.Publish("x", robustset.Params{}, nil); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := srv.Publish("x", params, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Publish("x", params, nil); err == nil {
		t.Error("duplicate name accepted")
	}
	if srv.Dataset("x") == nil || srv.Dataset("y") != nil {
		t.Error("Dataset lookup inconsistent")
	}
}

// WithTestLogger routes server logs into the test output.
func WithTestLogger(t *testing.T) robustset.ServerOption {
	return robustset.WithServerLogger(func(format string, args ...any) {
		t.Logf(format, args...)
	})
}

// TestServerSessionTimeout asserts a silent client cannot pin a session
// goroutine past the configured per-session deadline: the server closes
// the session on its own, without Shutdown.
func TestServerSessionTimeout(t *testing.T) {
	params := robustset.Params{Universe: testU, Seed: 91, DiffBudget: 4}
	alice, _ := deterministicPair(91, 100, 4, 2)
	srv := robustset.NewServer(WithTestLogger(t), robustset.WithServerSessionTimeout(150*time.Millisecond))
	defer srv.Close()
	if _, err := srv.Publish("d", params, alice); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Never send the hello; the server must hang up when the session
	// deadline fires.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1)
	start := time.Now()
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server sent data to a silent client")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("session lingered %v past the 150ms deadline", elapsed)
	}
}

// TestServerRejectsHostileCPICapacity sends a handcrafted hello naming an
// absurd CPI capacity and asserts the server replies with a protocol
// error instead of attempting the allocation.
// TestServerConcurrentFetchAndMutation hammers one dataset with parallel
// robust fetches while two writer goroutines churn Add/Remove — the
// high-contention shape a sync server lives under. Run with -race; every
// fetch must see a consistent sketch snapshot (decode errors would
// surface as fetch failures).
func TestServerConcurrentFetchAndMutation(t *testing.T) {
	params := robustset.Params{Universe: testU, Seed: 3, DiffBudget: 64}
	alice, bob := deterministicPair(55, 400, 8, 2)
	srv := robustset.NewServer(WithTestLogger(t))
	ds, err := srv.Publish("hot", params, alice)
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			pt := robustset.Point{int64(1000 + w), int64(2000 + w)}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := ds.Add(pt); err != nil {
					t.Errorf("writer %d add: %v", w, err)
					return
				}
				if err := ds.Remove(pt); err != nil {
					t.Errorf("writer %d remove: %v", w, err)
					return
				}
			}
		}(w)
	}

	var fetchers sync.WaitGroup
	for f := 0; f < 4; f++ {
		fetchers.Add(1)
		go func(f int) {
			defer fetchers.Done()
			for i := 0; i < 5; i++ {
				sess, err := robustset.NewSession(robustset.Robust{}, robustset.WithDataset("hot"))
				if err != nil {
					t.Error(err)
					return
				}
				conn, err := net.Dial("tcp", addr.String())
				if err != nil {
					t.Error(err)
					return
				}
				res, _, err := sess.Fetch(context.Background(), conn, bob)
				conn.Close()
				if err != nil {
					t.Errorf("fetcher %d round %d: %v", f, i, err)
					return
				}
				if len(res.SPrime) == 0 {
					t.Errorf("fetcher %d round %d: empty result", f, i)
					return
				}
			}
		}(f)
	}
	fetchers.Wait()
	close(stop)
	writers.Wait()

	// The churned dataset must still equal its snapshot semantics: every
	// writer added and removed in pairs, so the size is the original.
	if got := ds.Size(); got != len(alice) {
		t.Errorf("dataset size %d after churn, want %d", got, len(alice))
	}
}

// TestServerShutdownDuringBuild aborts a server mid-session — the client
// completes the handshake and then stalls, pinning the serving goroutine
// — and asserts Shutdown's deadline path force-closes the session and
// returns. Concurrent dataset mutation during shutdown must stay safe.
func TestServerShutdownDuringBuild(t *testing.T) {
	// A large DiffBudget makes the pushed sketch several megabytes, so
	// the serving side genuinely blocks on the stalled client instead of
	// completing into the kernel's socket buffer.
	params := robustset.Params{Universe: testU, Seed: 9, DiffBudget: 20000}
	alice, _ := deterministicPair(77, 600, 8, 2)
	srv := robustset.NewServer(WithTestLogger(t))
	ds, err := srv.Publish("slow", params, alice)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	// Open a session and stall: send the hello, read the accept, then
	// neither read nor write again.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body := []byte{0x10, 1 /* robust */, 4, 0, 0, 0, 's', 'l', 'o', 'w', 0, 0, 0, 0}
	frame := append([]byte{byte(len(body)), 0, 0, 0}, body...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(conn, make([]byte, 4)); err != nil {
		t.Fatalf("no accept: %v", err)
	}

	// Mutate the dataset while shutdown races the stalled session.
	mutDone := make(chan struct{})
	go func() {
		defer close(mutDone)
		pt := robustset.Point{123, 456}
		for i := 0; i < 50; i++ {
			_ = ds.Add(pt)
			_ = ds.Remove(pt)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = srv.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown returned %v, want DeadlineExceeded (stalled session)", err)
	}
	// The bound only guards against a hung force-close; it is generous
	// because full-package -race runs add several seconds of GC and
	// scheduler pressure around the multi-megabyte sketch build.
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("Shutdown took %v to abort a stalled session", elapsed)
	}
	if err := <-serveDone; !errors.Is(err, robustset.ErrServerClosed) {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
	<-mutDone
	if got := ds.Size(); got != len(alice) {
		t.Errorf("dataset size %d after paired mutations, want %d", got, len(alice))
	}
}

func TestServerRejectsHostileCPICapacity(t *testing.T) {
	params := robustset.Params{Universe: testU, Seed: 7, DiffBudget: 4}
	alice, _ := deterministicPair(99, 50, 4, 2)
	srv := robustset.NewServer(WithTestLogger(t))
	if _, err := srv.Publish("d", params, alice); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Frame: u32 length | 0x10 (hello) | strategy 4 (CPI) | u32 name len |
	// "d" | u32 cfg len | u32 capacity 0xFFFFFFFF.
	body := []byte{0x10, 4, 1, 0, 0, 0, 'd', 4, 0, 0, 0, 0xff, 0xff, 0xff, 0xff}
	frame := append([]byte{byte(len(body)), 0, 0, 0}, body...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	reply := make([]byte, 5)
	if _, err := io.ReadFull(conn, reply); err != nil {
		t.Fatalf("no reply to hostile hello: %v", err)
	}
	if reply[4] != 0x7f { // MsgError tag
		t.Fatalf("server replied with tag 0x%02x, want MsgError (0x7f)", reply[4])
	}
}
