package robustset

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"robustset/internal/cluster"
	"robustset/internal/metrics"
	"robustset/internal/points"
	"robustset/internal/protocol"
	"robustset/internal/trace"
	"robustset/internal/transport"
)

// This file is the public face of the anti-entropy replication
// subsystem: a Replicator wraps a Server and continuously pulls every
// shared dataset from a rotating selection of peers, applying the
// reconciled diffs locally. N replicators pointed at each other converge
// the cluster — the gossip-style generalization of the repo's two-party
// sessions. The selection, backoff and sharding policies live in
// internal/cluster; the wire protocols are the unchanged Session
// strategies, so a Replicator interoperates with any robustset Server.

// Peer identifies one remote Server a Replicator reconciles with.
type Peer struct {
	// Name is the peer's stable identifier, used for selection, backoff
	// and stats. Empty defaults to Addr.
	Name string
	// Addr is the TCP address of the peer's Server.
	Addr string
}

func (p Peer) name() string {
	if p.Name != "" {
		return p.Name
	}
	return p.Addr
}

// PeerSelector picks which of the eligible (not backed-off) peers an
// anti-entropy round contacts. Implementations are provided by
// SelectRoundRobin and SelectRandomK; the interface is exported so tests
// can inject deterministic policies. Selectors are called with the round
// number under the replicator's round lock and need not be safe for
// concurrent use.
type PeerSelector interface {
	Select(eligible []string, round int) []string
}

// SelectRoundRobin returns a selector that cycles through the peer list
// k peers per round in sorted order, sweeping every peer once per
// ceil(n/k) rounds. k <= 0 means one peer per round.
func SelectRoundRobin(k int) PeerSelector { return cluster.RoundRobin{K: k} }

// SelectRandomK returns the classic gossip selector: k distinct peers
// uniformly at random each round, deterministically seeded.
func SelectRandomK(k int, seed uint64) PeerSelector { return cluster.NewRandomK(k, seed) }

// RoundStats records one anti-entropy round.
type RoundStats struct {
	// Round is the 0-based round number.
	Round int
	// Peers are the names of the peers the round contacted.
	Peers []string
	// Sessions counts the per-(peer, dataset) reconciliation sessions
	// attempted, including failed ones.
	Sessions int
	// Added and Removed count the diff points applied to local datasets.
	Added, Removed int
	// Bytes is the total wire traffic of the round, both directions.
	Bytes int64
	// Skipped counts sessions dropped because the peer does not publish
	// the dataset — expected in mixed catalogs, not an error.
	Skipped int
	// Errors counts failed sessions (unreachable peer, protocol error).
	Errors int
	// Converged reports a clean round that applied no diffs: at least
	// one dataset actually reconciled, every contacted peer answered,
	// and nothing changed locally.
	Converged bool
	// Duration is the round's wall time.
	Duration time.Duration
}

// ReplicatorStats aggregates a replicator's lifetime counters.
type ReplicatorStats struct {
	Rounds         int
	Added, Removed int
	Bytes          int64
	Errors         int
	// ConvergedStreak is the number of consecutive most-recent rounds
	// that were converged — the cluster-quiescence signal dashboards
	// watch.
	ConvergedStreak int
}

// Replicator runs continuous anti-entropy over a Server's datasets: each
// round selects peers, reconciles every published dataset (including
// every shard of a sharded dataset) against them via the configured
// Session strategy, and applies the resulting diffs through the
// dataset's batch mutations. Datasets reconcile concurrently on a
// bounded worker pool; within one dataset the selected peers are visited
// sequentially against a fresh snapshot each, so concurrent peers cannot
// double-apply the same missing points. Unreachable peers back off
// exponentially.
//
// By default diffs apply union-style — points the peer has and the local
// dataset lacks are added, local-only points are kept — which is
// monotone and converges N mutually replicating nodes to the identical
// multiset. WithMirror instead makes the local dataset track the peer
// exactly (removals applied too); that mode is for single-upstream
// follower replicas, not mutual gossip.
type Replicator struct {
	srv      *Server
	strategy Strategy
	interval time.Duration
	timeout  time.Duration
	workers  int
	selector PeerSelector
	backoff  cluster.Backoff
	logf     func(format string, args ...any)
	maxMsg   int
	mirror   bool
	mux      bool
	onRound  func(RoundStats)
	metrics  *metrics.Registry // nil-safe no-op when unset
	traces   *TraceLog         // nil-safe no-op when unset

	// roundMu serializes rounds; mu guards the fields below.
	roundMu sync.Mutex
	mu      sync.Mutex
	peers   map[string]*peerEntry
	round   int
	totals  ReplicatorStats
	last    RoundStats
	closed  bool
}

type peerEntry struct {
	peer  Peer
	state cluster.PeerState
	// client is the peer's cached multiplexed connection when the
	// replicator runs in mux mode: every dataset session of every round
	// is a pipelined stream of this one connection. nil until first use
	// and after a teardown. dialing single-flights the first dial so
	// concurrent shard workers share one connection instead of racing
	// eight dials; it is non-nil (and closed on completion) while a dial
	// is in progress.
	client  *Client
	dialing chan struct{}
}

// ReplicatorOption configures a Replicator.
type ReplicatorOption func(*Replicator) error

// WithReplicatorStrategy selects the reconciliation strategy for peer
// sessions. Default: Robust{} (the paper's one-shot protocol; per-round
// cost tracks the live delta). ExactIBLT{} converges bit-exact catalogs;
// strategies must support Session.Fetch (all built-ins do).
func WithReplicatorStrategy(s Strategy) ReplicatorOption {
	return func(r *Replicator) error {
		if s == nil {
			return errors.New("robustset: nil replicator strategy")
		}
		r.strategy = s
		return nil
	}
}

// WithRoundInterval sets the pause between rounds in Replicator.Run.
// Default: 1s.
func WithRoundInterval(d time.Duration) ReplicatorOption {
	return func(r *Replicator) error {
		if d <= 0 {
			return fmt.Errorf("robustset: round interval %v not positive", d)
		}
		r.interval = d
		return nil
	}
}

// WithRoundTimeout bounds one whole round — every peer session it runs —
// with a context deadline. Default: 30s; 0 disables.
func WithRoundTimeout(d time.Duration) ReplicatorOption {
	return func(r *Replicator) error {
		if d < 0 {
			return fmt.Errorf("robustset: round timeout %v negative", d)
		}
		r.timeout = d
		return nil
	}
}

// WithReplicatorWorkers bounds the number of datasets reconciling
// concurrently within a round. Default: 4.
func WithReplicatorWorkers(n int) ReplicatorOption {
	return func(r *Replicator) error {
		if n < 1 {
			return fmt.Errorf("robustset: worker count %d < 1", n)
		}
		r.workers = n
		return nil
	}
}

// WithPeerSelector sets the per-round peer selection policy. Default:
// SelectRoundRobin(1).
func WithPeerSelector(sel PeerSelector) ReplicatorOption {
	return func(r *Replicator) error {
		if sel == nil {
			return errors.New("robustset: nil peer selector")
		}
		r.selector = sel
		return nil
	}
}

// WithPeerBackoff tunes the exponential backoff for unreachable peers:
// first retry after base, doubling to at most max. Default: 1s → 2min.
func WithPeerBackoff(base, max time.Duration) ReplicatorOption {
	return func(r *Replicator) error {
		if base <= 0 || max < base {
			return fmt.Errorf("robustset: backoff base %v / max %v invalid", base, max)
		}
		r.backoff = cluster.Backoff{Base: base, Max: max}
		return nil
	}
}

// WithReplicatorLogger directs per-session error reporting. Default:
// discard.
func WithReplicatorLogger(logf func(format string, args ...any)) ReplicatorOption {
	return func(r *Replicator) error {
		r.logf = logf
		return nil
	}
}

// WithReplicatorMaxMessageSize caps a single protocol message on every
// peer session, like the Session option WithMaxMessageSize.
func WithReplicatorMaxMessageSize(n int) ReplicatorOption {
	return func(r *Replicator) error {
		if n < 0 || n > transport.MaxFrameSize {
			return fmt.Errorf("robustset: max message size %d outside [0,%d]", n, transport.MaxFrameSize)
		}
		r.maxMsg = n
		return nil
	}
}

// WithMirror switches diff application from union to mirror: the local
// dataset is made identical to the fetched reconciliation result,
// removals included. Use only with a single upstream peer — mirroring
// against multiple mutually replicating peers thrashes instead of
// converging.
func WithMirror() ReplicatorOption {
	return func(r *Replicator) error {
		r.mirror = true
		return nil
	}
}

// WithRoundCallback registers a callback invoked after every round with
// its stats — the hook demos and metrics pipelines use.
func WithRoundCallback(fn func(RoundStats)) ReplicatorOption {
	return func(r *Replicator) error {
		r.onRound = fn
		return nil
	}
}

// WithReplicatorMux switches peer sessions onto multiplexed
// connections: the replicator dials each peer once and keeps the
// connection, and every dataset (every shard) of every round reconciles
// as a pipelined stream of it — one dial and one handshake per peer
// instead of one per (round × dataset). Peers that do not speak mux
// degrade to connection-per-session automatically, and a dead
// connection is redialed on the next session.
func WithReplicatorMux() ReplicatorOption {
	return func(r *Replicator) error {
		r.mux = true
		return nil
	}
}

// WithReplicatorMetrics directs the replicator's instrumentation —
// round counts, session errors, wire bytes, round latency histograms —
// into m (see Metrics for the names).
func WithReplicatorMetrics(m *Metrics) ReplicatorOption {
	return func(r *Replicator) error {
		r.metrics = m.registry()
		return nil
	}
}

// WithReplicatorTracing records a trace tree for every round into tl:
// one root per round, one child per (peer, dataset) session carrying
// that session's phase spans and wire-byte attribution. Round traces are
// judged against the log's slow/expensive thresholds like any session.
func WithReplicatorTracing(tl *TraceLog) ReplicatorOption {
	return func(r *Replicator) error {
		r.traces = tl
		return nil
	}
}

// NewReplicator builds a replicator for srv's datasets against the given
// peers. Peers can also be added and removed later.
func NewReplicator(srv *Server, peers []Peer, opts ...ReplicatorOption) (*Replicator, error) {
	if srv == nil {
		return nil, errors.New("robustset: nil server")
	}
	r := &Replicator{
		srv:      srv,
		strategy: Robust{},
		interval: time.Second,
		timeout:  30 * time.Second,
		workers:  4,
		selector: cluster.RoundRobin{K: 1},
		backoff:  cluster.Backoff{Base: time.Second, Max: 2 * time.Minute},
		logf:     func(string, ...any) {},
		peers:    make(map[string]*peerEntry),
	}
	for _, opt := range opts {
		if err := opt(r); err != nil {
			return nil, err
		}
	}
	for _, p := range peers {
		if err := r.AddPeer(p); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// AddPeer registers a peer. Adding a name twice is an error.
func (r *Replicator) AddPeer(p Peer) error {
	if p.Addr == "" {
		return errors.New("robustset: peer with empty address")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	name := p.name()
	if _, dup := r.peers[name]; dup {
		return fmt.Errorf("robustset: peer %q already registered", name)
	}
	r.peers[name] = &peerEntry{peer: p}
	return nil
}

// RemovePeer drops a peer by name (or address, for unnamed peers),
// closing its cached connection if one exists.
func (r *Replicator) RemovePeer(name string) error {
	r.mu.Lock()
	e, ok := r.peers[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("robustset: unknown peer %q", name)
	}
	delete(r.peers, name)
	cl := e.client
	e.client = nil
	r.mu.Unlock()
	if cl != nil {
		cl.Close()
	}
	return nil
}

// Peers returns the registered peers in unspecified order.
func (r *Replicator) Peers() []Peer {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Peer, 0, len(r.peers))
	for _, e := range r.peers {
		out = append(out, e.peer)
	}
	return out
}

// Stats returns the lifetime counters.
func (r *Replicator) Stats() ReplicatorStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.totals
}

// LastRound returns the most recent round's stats (zero before the
// first round).
func (r *Replicator) LastRound() RoundStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	last := r.last
	last.Peers = append([]string(nil), last.Peers...)
	return last
}

// Run drives rounds until ctx is done, pausing the configured interval
// between them, and returns ctx.Err(). Round failures (unreachable
// peers, protocol errors) are absorbed into stats and backoff — a
// replicator is a background process that outlives individual faults.
func (r *Replicator) Run(ctx context.Context) error {
	ticker := time.NewTicker(r.interval)
	defer ticker.Stop()
	for {
		if _, err := r.RunRound(ctx); err != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// RunRound executes one anti-entropy round: select peers, reconcile
// every local dataset with each, apply the diffs, update backoff state.
// Rounds serialize; concurrent calls queue. The returned error is
// non-nil only when ctx ended the round early — per-session failures are
// reported through RoundStats.Errors and the logger.
func (r *Replicator) RunRound(ctx context.Context) (RoundStats, error) {
	r.roundMu.Lock()
	defer r.roundMu.Unlock()
	start := time.Now()
	if r.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.timeout)
		defer cancel()
	}
	var roundTr *trace.Trace
	if r.traces != nil {
		// One root per round; syncDataset attaches a child per session, so
		// the log renders round → peer/dataset → phase spans as one tree.
		roundTr = trace.New("round")
		ctx = trace.NewContext(ctx, roundTr)
	}

	r.mu.Lock()
	round := r.round
	r.round++
	eligible := make([]string, 0, len(r.peers))
	for name, e := range r.peers {
		if e.state.Eligible(start) {
			eligible = append(eligible, name)
		}
	}
	selected := r.selector.Select(eligible, round)
	targets := make([]Peer, 0, len(selected))
	for _, name := range selected {
		if e, ok := r.peers[name]; ok {
			targets = append(targets, e.peer)
		}
	}
	r.mu.Unlock()

	stats := RoundStats{Round: round, Peers: selected}
	datasets := r.srv.Datasets()

	// One task per dataset; within a task the selected peers are visited
	// sequentially, re-snapshotting before each session so a point
	// learned from one peer is not re-added from the next. Tasks fan out
	// over the bounded pool — with sharded datasets this is exactly
	// per-shard parallelism.
	var (
		resMu     sync.Mutex
		peerFail  = make(map[string]bool, len(targets))
		peerOK    = make(map[string]bool, len(targets))
		taskCh    = make(chan string)
		workersWG sync.WaitGroup
	)
	failedFast := func(peer string) bool {
		resMu.Lock()
		defer resMu.Unlock()
		return peerFail[peer]
	}
	workers := r.workers
	if len(datasets) < workers {
		workers = len(datasets)
	}
	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func() {
			defer workersWG.Done()
			for name := range taskCh {
				for _, peer := range targets {
					// A peer that already failed this round is skipped for
					// the remaining datasets; backoff handles the retry.
					if failedFast(peer.name()) {
						continue
					}
					added, removed, bytes, err := r.syncDataset(ctx, peer, name)
					resMu.Lock()
					stats.Sessions++
					stats.Bytes += bytes
					switch {
					case err == nil:
						stats.Added += added
						stats.Removed += removed
						peerOK[peer.name()] = true
						r.metrics.Counter("replicator_sessions_total:peer=" + peer.name() + ",outcome=ok").Inc()
					case isUnknownDataset(err):
						stats.Skipped++
						peerOK[peer.name()] = true
						r.metrics.Counter("replicator_sessions_total:peer=" + peer.name() + ",outcome=skip").Inc()
					default:
						stats.Errors++
						peerFail[peer.name()] = true
						r.metrics.Counter("replicator_sessions_total:peer=" + peer.name() + ",outcome=error").Inc()
						r.logf("robustset: replicator: peer %s: dataset %q: %v", peer.name(), name, err)
					}
					resMu.Unlock()
				}
			}
		}()
	}
	for _, name := range datasets {
		taskCh <- name
	}
	close(taskCh)
	workersWG.Wait()

	now := time.Now()
	r.mu.Lock()
	for name, e := range r.peers {
		switch {
		case peerFail[name]:
			e.state.Fail(now, r.backoff)
		case peerOK[name]:
			e.state.Succeed()
		}
	}
	// Converged requires at least one session that actually reconciled:
	// a round with no peers, no datasets, or nothing but unknown-dataset
	// skips proves nothing about quiescence.
	stats.Converged = len(targets) > 0 && stats.Errors == 0 &&
		stats.Sessions > stats.Skipped &&
		stats.Added == 0 && stats.Removed == 0
	stats.Duration = time.Since(start)
	r.totals.Rounds++
	r.totals.Added += stats.Added
	r.totals.Removed += stats.Removed
	r.totals.Bytes += stats.Bytes
	r.totals.Errors += stats.Errors
	if stats.Converged {
		r.totals.ConvergedStreak++
	} else {
		r.totals.ConvergedStreak = 0
	}
	r.last = stats
	r.mu.Unlock()

	r.metrics.Counter("replicator_rounds_total").Inc()
	r.metrics.Counter("replicator_session_errors_total").Add(int64(stats.Errors))
	r.metrics.Counter("replicator_bytes_total").Add(stats.Bytes)
	r.metrics.Histogram("replicator_round_seconds").Observe(stats.Duration)

	if roundTr != nil {
		roundTr.Stat("sessions", int64(stats.Sessions))
		roundTr.Stat("added", int64(stats.Added))
		roundTr.Stat("removed", int64(stats.Removed))
		roundTr.Stat("skipped", int64(stats.Skipped))
		roundTr.Stat("errors", int64(stats.Errors))
		// Per-session failures are absorbed into stats, not the round's
		// outcome; only a context-ended round finishes with an error.
		roundTr.Finish(ctx.Err())
		r.traces.add(roundTr.Snapshot())
	}

	if r.onRound != nil {
		r.onRound(stats)
	}
	return stats, ctx.Err()
}

// syncDataset reconciles one local dataset against one peer and applies
// the diff. Returns the applied add/remove counts and the session's wire
// bytes. In mux mode the session runs as one pipelined stream of the
// peer's cached connection; otherwise it dials its own.
func (r *Replicator) syncDataset(ctx context.Context, peer Peer, name string) (added, removed int, bytes int64, err error) {
	d := r.srv.Dataset(name)
	if d == nil {
		return 0, 0, 0, nil // unpublished mid-round
	}
	if parent := trace.FromContext(ctx); parent != nil {
		child := parent.Child("peer-session")
		child.Label(name, r.strategy.Name(), peer.name())
		ctx = trace.NewContext(ctx, child)
		defer func() { child.Finish(err) }()
	}
	local := d.Snapshot()
	var res *SyncResult
	var st TransferStats
	if r.mux {
		res, st, err = r.muxFetch(ctx, peer, name, local)
	} else {
		var sess *Session
		sess, err = NewSession(r.strategy,
			WithDataset(name), WithMaxMessageSize(r.maxMsg))
		if err != nil {
			return 0, 0, 0, err
		}
		res, st, err = sess.FetchAddr(ctx, peer.Addr, local)
	}
	if err != nil {
		return 0, 0, st.Total(), err
	}
	add, rem, err := diffToApply(res, local)
	if err != nil {
		return 0, 0, st.Total(), err
	}
	if len(add) > 0 {
		if err := d.AddBatch(add); err != nil {
			return 0, 0, st.Total(), err
		}
	}
	if r.mirror && len(rem) > 0 {
		if err := d.RemoveBatch(rem); err != nil {
			return len(add), 0, st.Total(), err
		}
		removed = len(rem)
	}
	return len(add), removed, st.Total(), nil
}

// muxFetch runs one dataset session over the peer's cached multiplexed
// connection, dialing it on first use. Concurrent dataset workers
// hitting the same peer share the connection — that is the whole point:
// a 64-shard round is one dial and 64 parallel streams.
func (r *Replicator) muxFetch(ctx context.Context, peer Peer, name string, local []Point) (*SyncResult, TransferStats, error) {
	cl, err := r.clientFor(ctx, peer)
	if err != nil {
		return nil, TransferStats{}, err
	}
	cs, err := cl.Session(name, r.strategy)
	if err != nil {
		return nil, TransferStats{}, err
	}
	return cs.Fetch(ctx, local)
}

// clientFor returns the peer's cached Client, dialing one on first use.
// A lost connection is not handled here — the Client redials itself —
// so a cached handle stays valid for the peer's lifetime.
func (r *Replicator) clientFor(ctx context.Context, peer Peer) (*Client, error) {
	name := peer.name()
	r.mu.Lock()
	for {
		if r.closed {
			r.mu.Unlock()
			return nil, ErrClientClosed
		}
		e, ok := r.peers[name]
		if !ok {
			r.mu.Unlock()
			return nil, fmt.Errorf("robustset: unknown peer %q", name)
		}
		if e.client != nil {
			cl := e.client
			r.mu.Unlock()
			return cl, nil
		}
		if e.dialing == nil {
			e.dialing = make(chan struct{})
			break
		}
		// A sibling worker is dialing this peer; wait for it and re-check.
		wait := e.dialing
		r.mu.Unlock()
		select {
		case <-wait:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		r.mu.Lock()
	}
	myDial := r.peers[name].dialing
	r.mu.Unlock()

	cl, err := DialClient(ctx, peer.Addr,
		WithClientMaxMessageSize(r.maxMsg), WithClientLogger(r.logf))

	r.mu.Lock()
	e, ok := r.peers[name]
	closed := r.closed
	current := ok && e.dialing == myDial
	if current {
		e.dialing = nil
	}
	// This goroutine created myDial, so it closes it unconditionally —
	// even when the peer was removed (or removed and re-added) mid-dial,
	// where the entry no longer holds it but sibling workers may still
	// be blocked on it.
	close(myDial)
	switch {
	case err != nil:
		r.mu.Unlock()
		return nil, err
	case closed, !ok:
		r.mu.Unlock()
		cl.Close()
		if closed {
			return nil, ErrClientClosed
		}
		return nil, fmt.Errorf("robustset: unknown peer %q", name)
	case !current:
		// The peer was removed and re-added while we dialed: this client
		// may be pinned to the old address, so it must not be cached.
		// Hand back the re-added entry's client if one exists; otherwise
		// report the churn and let the round's error handling retry.
		winner := e.client
		r.mu.Unlock()
		cl.Close()
		if winner != nil {
			return winner, nil
		}
		return nil, fmt.Errorf("robustset: peer %q changed during dial", name)
	}
	e.client = cl
	r.mu.Unlock()
	return cl, nil
}

// Close releases the replicator's cached peer connections. Further
// mux-mode sessions fail with ErrClientClosed; connectionless state
// (stats, peers) remains readable.
func (r *Replicator) Close() error {
	r.mu.Lock()
	var clients []*Client
	r.closed = true
	for _, e := range r.peers {
		if e.client != nil {
			clients = append(clients, e.client)
			e.client = nil
		}
	}
	r.mu.Unlock()
	for _, cl := range clients {
		cl.Close()
	}
	return nil
}

// diffToApply extracts the points to add and remove from a fetch result
// relative to the local snapshot the fetch ran with. Robust strategies
// report the diff directly; exact strategies return the remote multiset,
// which is diffed here.
//
// A robust result is only safe to apply when it decoded at the finest
// grid level (cell width 1), where the repaired points are the peer's
// actual points. At coarser levels the diff is made of synthetic cell
// centers — fine for a one-shot EMD-close answer, poisonous to feed back
// into an authoritative dataset and gossip onward — so it is rejected
// and surfaces as a session error: raise Params.DiffBudget so the live
// delta decodes exactly.
func diffToApply(res *SyncResult, local []Point) (add, rem []Point, err error) {
	if res.Robust != nil {
		if res.Robust.CellWidth > 1 {
			return nil, nil, fmt.Errorf(
				"robustset: replicator: robust decode only reached cell width %d (level %d); "+
					"diff exceeds Params.DiffBudget and the repair would be approximate — not applied",
				res.Robust.CellWidth, res.Robust.Level)
		}
		return res.Robust.Added, res.Robust.Removed, nil
	}
	onlyRemote, onlyLocal := points.MultisetDiff(res.SPrime, local)
	return onlyRemote, onlyLocal, nil
}

// isUnknownDataset reports whether err is the peer's rejection of a
// dataset it does not publish — an expected condition in mixed catalogs,
// handled as a skip rather than a peer failure.
func isUnknownDataset(err error) bool {
	var re *protocol.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Reason, ErrUnknownDataset.Error())
}
