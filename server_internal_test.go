package robustset

import (
	"errors"
	"testing"
)

// TestRetiredDatasetServingRejected pins the in-flight retirement
// contract at the serving layer: a session that resolved its dataset
// just before an Unpublish hits servePoints/sketchBlob next, and both
// must reject with ErrUnknownDataset once the dataset is retired. (The
// end-to-end handshake rejection is covered in sharded_test.go; this
// white-box test makes the narrower race deterministic.)
func TestRetiredDatasetServingRejected(t *testing.T) {
	params := Params{Universe: Universe{Dim: 2, Delta: 1 << 12}, Seed: 5, DiffBudget: 4}
	srv := NewServer()
	defer srv.Close()
	d, err := srv.Publish("d", params, []Point{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.servePoints(); err != nil {
		t.Fatalf("servePoints before retirement: %v", err)
	}
	if _, err := d.sketchBlob(); err != nil {
		t.Fatalf("sketchBlob before retirement: %v", err)
	}
	if err := srv.Unpublish("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.servePoints(); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("servePoints on retired dataset: %v, want ErrUnknownDataset", err)
	}
	if _, err := d.sketchBlob(); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("sketchBlob on retired dataset: %v, want ErrUnknownDataset", err)
	}
	if pts := d.Snapshot(); len(pts) != 2 {
		t.Errorf("Snapshot after retirement returned %d points; reads stay usable", len(pts))
	}
}
