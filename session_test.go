package robustset_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"robustset"
)

// recordingConn wraps a net.Conn and captures every byte written, so
// tests can compare the wire traffic of two protocol implementations.
type recordingConn struct {
	net.Conn
	mu   sync.Mutex
	sent bytes.Buffer
}

func (r *recordingConn) Write(b []byte) (int, error) {
	n, err := r.Conn.Write(b)
	r.mu.Lock()
	r.sent.Write(b[:n])
	r.mu.Unlock()
	return n, err
}

func (r *recordingConn) bytesSent() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]byte(nil), r.sent.Bytes()...)
}

// runRecorded wires a serving and a fetching endpoint through an
// in-process pipe and returns each side's raw transmitted bytes.
func runRecorded(t *testing.T, serve, fetch func(net.Conn) error) (serveBytes, fetchBytes []byte) {
	t.Helper()
	c1, c2 := net.Pipe()
	ra := &recordingConn{Conn: c1}
	rb := &recordingConn{Conn: c2}
	done := make(chan error, 1)
	go func() {
		defer c1.Close()
		done <- serve(ra)
	}()
	ferr := fetch(rb)
	c2.Close()
	serr := <-done
	if ferr != nil {
		t.Fatalf("fetch side: %v", ferr)
	}
	if serr != nil {
		t.Fatalf("serve side: %v", serr)
	}
	return ra.bytesSent(), rb.bytesSent()
}

// TestWrapperSessionWireParity asserts that every deprecated free
// function produces byte-identical wire traffic to its Session
// equivalent, in both directions.
func TestWrapperSessionWireParity(t *testing.T) {
	rngPair := func() (alice, bob []robustset.Point) {
		return makeNoisyPairSeed(t, 1234, 240, 6, 3)
	}
	alice, bob := rngPair()
	// Exact-regime inputs for the exact protocols: identical sets with a
	// few replaced points, so CPI's capacity bound holds.
	exactBob := robustset.ClonePoints(alice)
	exactAlice := robustset.ClonePoints(alice)
	for i := 0; i < 5; i++ {
		exactAlice[i] = robustset.Point{int64(i) * 17, int64(i) * 29}
	}

	params := robustset.Params{Universe: testU, Seed: 77, DiffBudget: 6}
	ecfg := robustset.ExactConfig{Universe: testU, Seed: 21}
	ccfg := robustset.CPIConfig{Universe: testU, Seed: 23, Capacity: 24}
	ctx := context.Background()

	newSession := func(s robustset.Strategy, opts ...robustset.Option) *robustset.Session {
		sess, err := robustset.NewSession(s, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}

	cases := []struct {
		name               string
		aliceSet, bobSet   []robustset.Point
		oldServe, newServe func(net.Conn) error
		oldFetch, newFetch func(net.Conn) error
	}{
		{
			name: "robust-oneshot", aliceSet: alice, bobSet: bob,
			oldServe: func(c net.Conn) error { _, err := robustset.Push(c, params, alice); return err },
			oldFetch: func(c net.Conn) error { _, _, err := robustset.Pull(c, bob); return err },
			newServe: func(c net.Conn) error {
				_, err := newSession(robustset.Robust{}, robustset.WithParams(params)).Serve(ctx, c, alice)
				return err
			},
			newFetch: func(c net.Conn) error {
				_, _, err := newSession(robustset.Robust{}).Fetch(ctx, c, bob)
				return err
			},
		},
		{
			name: "robust-adaptive", aliceSet: alice, bobSet: bob,
			oldServe: func(c net.Conn) error { _, err := robustset.PushAdaptive(c, params, alice); return err },
			oldFetch: func(c net.Conn) error {
				_, _, err := robustset.PullAdaptive(c, params, bob, robustset.AdaptiveOptions{})
				return err
			},
			newServe: func(c net.Conn) error {
				_, err := newSession(robustset.Adaptive{}, robustset.WithParams(params)).Serve(ctx, c, alice)
				return err
			},
			newFetch: func(c net.Conn) error {
				_, _, err := newSession(robustset.Adaptive{}, robustset.WithParams(params)).Fetch(ctx, c, bob)
				return err
			},
		},
		{
			name: "exact-iblt", aliceSet: exactAlice, bobSet: exactBob,
			oldServe: func(c net.Conn) error { _, err := robustset.PushExact(c, ecfg, exactAlice); return err },
			oldFetch: func(c net.Conn) error { _, _, err := robustset.PullExact(c, ecfg, exactBob); return err },
			newServe: func(c net.Conn) error {
				sess := newSession(robustset.ExactIBLT{}, robustset.WithParams(robustset.Params{Universe: testU, Seed: 21}))
				_, err := sess.Serve(ctx, c, exactAlice)
				return err
			},
			newFetch: func(c net.Conn) error {
				sess := newSession(robustset.ExactIBLT{}, robustset.WithParams(robustset.Params{Universe: testU, Seed: 21}))
				_, _, err := sess.Fetch(ctx, c, exactBob)
				return err
			},
		},
		{
			name: "cpi", aliceSet: exactAlice, bobSet: exactBob,
			oldServe: func(c net.Conn) error { _, err := robustset.PushCPI(c, ccfg, exactAlice); return err },
			oldFetch: func(c net.Conn) error { _, _, err := robustset.PullCPI(c, ccfg, exactBob); return err },
			newServe: func(c net.Conn) error {
				sess := newSession(robustset.CPI{Capacity: 24}, robustset.WithParams(robustset.Params{Universe: testU, Seed: 23}))
				_, err := sess.Serve(ctx, c, exactAlice)
				return err
			},
			newFetch: func(c net.Conn) error {
				sess := newSession(robustset.CPI{Capacity: 24}, robustset.WithParams(robustset.Params{Universe: testU, Seed: 23}))
				_, _, err := sess.Fetch(ctx, c, exactBob)
				return err
			},
		},
		{
			name: "two-way", aliceSet: alice, bobSet: bob,
			oldServe: func(c net.Conn) error { _, _, err := robustset.SyncTwoWay(c, params, alice); return err },
			oldFetch: func(c net.Conn) error { _, _, err := robustset.SyncTwoWay(c, params, bob); return err },
			newServe: func(c net.Conn) error {
				_, _, err := newSession(robustset.Robust{}, robustset.WithParams(params)).Sync(ctx, c, alice)
				return err
			},
			newFetch: func(c net.Conn) error {
				_, _, err := newSession(robustset.Robust{}, robustset.WithParams(params)).Sync(ctx, c, bob)
				return err
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			oldA, oldB := runRecorded(t, tc.oldServe, tc.oldFetch)
			newA, newB := runRecorded(t, tc.newServe, tc.newFetch)
			if !bytes.Equal(oldA, newA) {
				t.Errorf("serving-side traffic diverged: wrapper sent %d bytes, session %d", len(oldA), len(newA))
			}
			if !bytes.Equal(oldB, newB) {
				t.Errorf("fetching-side traffic diverged: wrapper sent %d bytes, session %d", len(oldB), len(newB))
			}
		})
	}
}

// makeNoisyPairSeed is makeNoisyPair with an explicit seed, for tests
// that need several independent instances.
func makeNoisyPairSeed(t *testing.T, seed uint64, n, k int, noise int64) (alice, bob []robustset.Point) {
	t.Helper()
	alice, bob = deterministicPair(seed, n, k, noise)
	return alice, bob
}

// TestSessionAllStrategies drives every built-in strategy through the
// same Serve/Fetch surface on inputs each can handle.
func TestSessionAllStrategies(t *testing.T) {
	alice, bob := deterministicPair(9, 200, 5, 2)
	exactBob := robustset.ClonePoints(alice)
	params := robustset.Params{Universe: testU, Seed: 3, DiffBudget: 5}
	ctx := context.Background()

	for _, strat := range robustset.Strategies() {
		t.Run(strat.Name(), func(t *testing.T) {
			local := bob
			switch strat.(type) {
			case robustset.ExactIBLT, robustset.Rateless, robustset.CPI:
				// Exact protocols get the exact regime.
				local = exactBob
			}
			sess, err := robustset.NewSession(strat, robustset.WithParams(params))
			if err != nil {
				t.Fatal(err)
			}
			c1, c2 := net.Pipe()
			defer c1.Close()
			defer c2.Close()
			done := make(chan error, 1)
			go func() {
				_, err := sess.Serve(ctx, c1, alice)
				done <- err
			}()
			res, stats, err := sess.Fetch(ctx, c2, local)
			if err != nil {
				t.Fatal(err)
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			if len(res.SPrime) == 0 {
				t.Fatal("empty result")
			}
			if stats.Total() == 0 {
				t.Error("no traffic accounted")
			}
			switch strat.(type) {
			case robustset.Robust, robustset.Adaptive:
				if res.Robust == nil {
					t.Error("robust result details missing")
				}
			default:
				if res.Robust != nil {
					t.Error("unexpected robust details on exact strategy")
				}
				if !robustset.EqualMultisets(res.SPrime, alice) {
					t.Error("exact strategy did not reproduce the remote set")
				}
			}
		})
	}
}

// TestSessionFetchCancel asserts that cancelling the context aborts a
// fetch blocked on a silent peer, well within the test's deadline.
func TestSessionFetchCancel(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close() // the "server": accepts but never speaks
	defer c2.Close()
	sess, err := robustset.NewSession(robustset.Robust{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := sess.Fetch(ctx, c2, nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Fetch did not return")
	}
}

// TestSessionServeCancel is the serving-side mirror: an Adaptive serve
// blocks waiting for the estimator request and must abort on cancel.
func TestSessionServeCancel(t *testing.T) {
	alice, _ := deterministicPair(5, 100, 3, 2)
	params := robustset.Params{Universe: testU, Seed: 13, DiffBudget: 3}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close() // the "client": connects but never speaks
	sess, err := robustset.NewSession(robustset.Adaptive{}, robustset.WithParams(params))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sess.Serve(ctx, c1, alice)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Serve did not return")
	}
}

// TestSessionDeadline asserts a context deadline propagates to the
// connection and expires a stalled round.
func TestSessionDeadline(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	sess, err := robustset.NewSession(robustset.Robust{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, _, err := sess.Fetch(ctx, c2, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
}

// TestSessionOptions exercises the remaining functional options.
func TestSessionOptions(t *testing.T) {
	alice, bob := deterministicPair(21, 150, 4, 2)
	params := robustset.Params{Universe: testU, Seed: 5, DiffBudget: 4}

	var sunk []robustset.TransferStats
	var mu sync.Mutex
	sink := func(st robustset.TransferStats) {
		mu.Lock()
		sunk = append(sunk, st)
		mu.Unlock()
	}
	sess, err := robustset.NewSession(robustset.Robust{},
		robustset.WithParams(params),
		robustset.WithMetric(robustset.L2),
		robustset.WithStatsSink(sink),
	)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go sess.Serve(context.Background(), c1, alice)
	res, _, err := sess.Fetch(context.Background(), c2, bob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.EMD(alice); err != nil {
		t.Fatalf("result EMD under session metric: %v", err)
	}
	mu.Lock()
	n := len(sunk)
	mu.Unlock()
	if n < 1 {
		t.Error("stats sink never invoked")
	}

	// A max message size below the sketch size must refuse the push
	// locally instead of transmitting.
	tiny, err := robustset.NewSession(robustset.Robust{},
		robustset.WithParams(params), robustset.WithMaxMessageSize(64))
	if err != nil {
		t.Fatal(err)
	}
	c3, c4 := net.Pipe()
	defer c3.Close()
	defer c4.Close()
	go func() {
		// Drain whatever arrives so the serve side isn't blocked on pipe
		// backpressure; it must fail before sending anyway.
		buf := make([]byte, 1024)
		for {
			if _, err := c4.Read(buf); err != nil {
				return
			}
		}
	}()
	if _, err := tiny.Serve(context.Background(), c3, alice); err == nil {
		t.Error("oversize message accepted under WithMaxMessageSize")
	}

	// Option validation.
	if _, err := robustset.NewSession(nil); err == nil {
		t.Error("nil strategy accepted")
	}
	if _, err := robustset.NewSession(robustset.Robust{}, robustset.WithMetric(nil)); err == nil {
		t.Error("nil metric accepted")
	}
	if _, err := robustset.NewSession(robustset.Robust{}, robustset.WithMaxMessageSize(-1)); err == nil {
		t.Error("negative max message size accepted")
	}
	if _, err := robustset.NewSession(robustset.Robust{}, robustset.WithDataset("")); err == nil {
		t.Error("empty dataset name accepted")
	}
}

// TestSyncUnsupported asserts non-robust strategies refuse the two-way
// mode with a recognizable error.
func TestSyncUnsupported(t *testing.T) {
	sess, err := robustset.NewSession(robustset.Naive{})
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if _, _, err := sess.Sync(context.Background(), c1, nil); !errors.Is(err, robustset.ErrTwoWayUnsupported) {
		t.Fatalf("want ErrTwoWayUnsupported, got %v", err)
	}
}

// deterministicPair builds Bob's set plus Alice's noisy copy with k fresh
// outliers, seeded so repeated calls agree.
func deterministicPair(seed uint64, n, k int, noise int64) (alice, bob []robustset.Point) {
	next := seed
	rnd := func(m int64) int64 {
		next = next*6364136223846793005 + 1442695040888963407
		v := int64((next >> 33) % uint64(m))
		return v
	}
	bob = make([]robustset.Point, n)
	alice = make([]robustset.Point, n)
	for i := range bob {
		bob[i] = robustset.Point{rnd(testU.Delta), rnd(testU.Delta)}
		if i < k {
			alice[i] = robustset.Point{rnd(testU.Delta), rnd(testU.Delta)}
			continue
		}
		p := robustset.Point{bob[i][0] + rnd(2*noise+1) - noise, bob[i][1] + rnd(2*noise+1) - noise}
		alice[i] = testU.Clamp(p)
	}
	return alice, bob
}

// TestStrategyValidation asserts out-of-range strategy knobs are rejected
// at session construction, before they can desynchronize endpoints.
func TestStrategyValidation(t *testing.T) {
	if _, err := robustset.NewSession(robustset.ExactIBLT{HashCount: 256}); err == nil {
		t.Error("hash count 256 accepted (would truncate to 0 on the wire)")
	}
	if _, err := robustset.NewSession(robustset.ExactIBLT{HashCount: 1}); err == nil {
		t.Error("hash count 1 accepted")
	}
	if _, err := robustset.NewSession(robustset.Rateless{HashCount: 1}); err == nil {
		t.Error("rateless hash count 1 accepted")
	}
	if _, err := robustset.NewSession(robustset.Rateless{InitialFactor: math.Inf(1)}); err == nil {
		t.Error("infinite rateless initial factor accepted")
	}
	if _, err := robustset.NewSession(robustset.Rateless{InitialFactor: math.NaN()}); err == nil {
		t.Error("NaN rateless initial factor accepted")
	}
	if _, err := robustset.NewSession(robustset.Rateless{MaxBytes: -1}); err == nil {
		t.Error("negative rateless byte budget accepted")
	}
	if _, err := robustset.NewSession(robustset.Ranged{Branch: 1}); err == nil {
		t.Error("ranged branch 1 accepted")
	}
	if _, err := robustset.NewSession(robustset.Ranged{Branch: 100}); err == nil {
		t.Error("oversized ranged branch accepted")
	}
	if _, err := robustset.NewSession(robustset.Ranged{ItemLimit: 1 << 20}); err == nil {
		t.Error("oversized ranged item limit accepted")
	}
	if _, err := robustset.NewSession(robustset.Ranged{Streams: -1}); err == nil {
		t.Error("negative ranged stream count accepted")
	}
	if _, err := robustset.NewSession(robustset.CPI{Capacity: 1 << 30}); err == nil {
		t.Error("oversized CPI capacity accepted")
	}
	if _, err := robustset.NewSession(robustset.CPI{Capacity: -1}); err == nil {
		t.Error("negative CPI capacity accepted")
	}
	// The deprecated wrappers surface the same validation as errors.
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	cfg := robustset.ExactConfig{Universe: testU, Seed: 1, HashCount: 256}
	if _, err := robustset.PushExact(c1, cfg, nil); err == nil {
		t.Error("PushExact accepted hash count 256")
	}
}

// ---------------------------------------------------------------------
// Cross-strategy conformance suite
//
// One table-driven harness runs every Strategy through identical scenario
// matrices and asserts, per scenario and strategy, (a) the reconciliation
// outcome each protocol contracts for — exact equality, robust
// best-effort, or a loud error — and (b) a wire-byte budget derived from
// the strategy's cost model with ~2× slack, so a regression to Θ(n)
// communication (or a silently bloated sketch) fails a test instead of
// shipping. All inputs are seeded and deterministic.

// confExpect is the contracted outcome of one (scenario, strategy) cell.
type confExpect int

const (
	// expExact: fetch succeeds and SPrime equals Alice's multiset.
	expExact confExpect = iota
	// expClose: fetch succeeds (robust best-effort semantics; quality is
	// covered by the EMD tests in internal/core).
	expClose
	// expError: the fetch must fail loudly with a recognizable error.
	expError
)

// confScenario is one input matrix row.
type confScenario struct {
	name       string
	alice, bob []robustset.Point
	params     robustset.Params
	// expect maps strategy name → expectation; strategies not listed use
	// def.
	def    confExpect
	expect map[string]confExpect
	// errLike: for expError cells, a substring the error must carry (or
	// an errors.Is target in errIs).
	errLike string
	errIs   error
	// diffUB bounds the exact-regime symmetric difference |AΔB|, used by
	// the exact-IBLT wire budget.
	diffUB int
}

// confWireBudget returns the wire-byte ceiling for a cell: the
// strategy's cost model with generous slack. keyLen bytes per IBLT cell
// are overestimated, never underestimated.
func confWireBudget(strat robustset.Strategy, sc confScenario) int64 {
	dim := sc.params.Universe.Dim
	levels := int64(sc.params.Universe.Levels() + 1)
	k := sc.params.DiffBudget
	n := len(sc.alice)
	if len(sc.bob) > n {
		n = len(sc.bob)
	}
	// tableUB bounds the wire size of an IBLT provisioned for `keys`
	// difference keys (cells ≈ 1.9·keys + rounding, ≤ 2·keys + 60).
	tableUB := func(keys int) int64 {
		return (2*int64(keys) + 60) * int64(24+8*dim)
	}
	capacity := 2 * k
	if capacity < 8 {
		capacity = 8
	}
	switch strat.(type) {
	case robustset.Robust:
		return levels*tableUB(capacity) + 2048
	case robustset.Adaptive:
		// Estimators (bottom-64 per level) + a few level tables sized to
		// the padded estimate (≤ 4k budget + one estimator step).
		est := levels * (64*8 + 256)
		step := int64(2*n)/64 + 8
		return est + 4*tableUB(4*k+int(step)) + 2048
	case robustset.ExactIBLT:
		// Strata estimator (fixed size) + exactly-sized tables with
		// retry headroom.
		strata := int64(16*40*(24+8*dim)) + 2048
		return strata + 2*tableUB(8*sc.diffUB+64) + 2048
	case robustset.Rateless:
		// Strata estimator + the cell stream: ~1.5·diff cells to decode
		// plus at most 50% chunk-growth overshoot — deliberately tighter
		// than ExactIBLT's retry worst case, which is the strategy's
		// whole point.
		strata := int64(16*40*(24+8*dim)) + 2048
		return strata + tableUB(2*sc.diffUB+64) + 2048
	case robustset.Ranged:
		// Each difference key opens at most one root-to-leaf split chain:
		// per level one probe entry (~3·keyLen) plus one 8-way split
		// reply (8 aggregates and 7 truncated bounds, ≈ 8·(keyLen+12));
		// terminal ranges transfer exact keys, bounded both by per-range
		// item limits and by the whole key population.
		keyLen := int64(8*dim + 4)
		d := int64(sc.diffUB)
		if d < 8 {
			d = 8
		}
		items := 2 * d * 16
		if ub := int64(n) + d; items > ub {
			items = ub
		}
		depth := int64(2)
		for m := int64(n); m > 16; m /= 8 {
			depth++
		}
		return d*depth*(3*keyLen+8*(keyLen+12)) + items*keyLen + 4096
	case robustset.CPI:
		// Sketch Θ(capacity) + payload round-trip Θ(diff).
		return int64(8*(2*k+16)) + int64(sc.diffUB)*int64(16+8*dim) + 2048
	case robustset.Naive:
		return 2*int64(8*dim*n) + 2048
	}
	return 1 << 40
}

// confScenarios builds the deterministic scenario matrix.
func confScenarios(t *testing.T) []confScenario {
	t.Helper()
	pAt := func(x, y int64) robustset.Point { return robustset.Point{x, y} }
	params := func(k int) robustset.Params {
		return robustset.Params{Universe: testU, Seed: 41, DiffBudget: k}
	}

	grid120 := make([]robustset.Point, 120)
	for i := range grid120 {
		grid120[i] = pAt(int64(i%12)*977+31, int64(i/12)*1733+59)
	}

	identical, _ := deterministicPair(101, 150, 0, 0)

	// Duplicate-heavy multisets: 40 distinct points × 3 copies each;
	// Alice holds 5 extra occurrences of existing points — differences
	// that only occurrence-indexed keys can express.
	var dupBob []robustset.Point
	for i := 0; i < 40; i++ {
		base := pAt(int64(i)*571+17, int64(i)*911+5)
		for c := 0; c < 3; c++ {
			dupBob = append(dupBob, base.Clone())
		}
	}
	dupAlice := robustset.ClonePoints(dupBob)
	for i := 0; i < 5; i++ {
		dupAlice = append(dupAlice, dupBob[i*7].Clone())
	}

	disA := make([]robustset.Point, 25)
	disB := make([]robustset.Point, 25)
	for i := range disA {
		disA[i] = pAt(int64(i)*131+7, int64(i)*257+11)
		disB[i] = pAt(int64(i)*131+30011, int64(i)*257+40009)
	}

	noisyA, noisyB := deterministicPair(7, 240, 6, 3)

	// Above capacity: equal sizes, 80 genuine replacements against a
	// budget of 8 — the robust protocols degrade to a coarse level, the
	// exact IBLT retries its way through, CPI must refuse.
	overA, overB := deterministicPair(13, 200, 80, 0)

	scaleA, scaleB := deterministicPair(29, 20000, 8, 2)

	return []confScenario{
		{
			name: "empty-both", alice: nil, bob: nil,
			params: params(4), def: expExact,
		},
		{
			name: "alice-empty", alice: nil, bob: grid120,
			params: params(130), def: expExact, diffUB: 120,
		},
		{
			name: "bob-empty", alice: grid120, bob: nil,
			params: params(130), def: expExact, diffUB: 120,
		},
		{
			name: "identical", alice: identical, bob: robustset.ClonePoints(identical),
			params: params(6), def: expExact, diffUB: 0,
		},
		{
			name: "duplicate-heavy", alice: dupAlice, bob: dupBob,
			params: params(16), def: expExact, diffUB: 5,
		},
		{
			name: "disjoint", alice: disA, bob: disB,
			params: params(60), def: expExact, diffUB: 50,
		},
		{
			name: "noisy-at-capacity", alice: noisyA, bob: noisyB,
			params: params(6), def: expClose, diffUB: 2 * 240,
			expect: map[string]confExpect{
				"exact-iblt": expExact, // Θ(n) cost, still correct
				"rateless":   expExact, // streams until decode, still correct
				"ranged":     expExact, // splits down to item transfer, still correct
				"cpi":        expError, // diff ≫ capacity, no retry path
				"naive":      expExact,
			},
			errLike: "capacity",
		},
		{
			name: "above-capacity", alice: overA, bob: overB,
			params: params(8), def: expClose, diffUB: 2 * 200,
			expect: map[string]confExpect{
				"exact-iblt": expExact,
				"rateless":   expExact,
				"ranged":     expExact,
				"cpi":        expError,
				"naive":      expExact,
			},
			errLike: "capacity",
		},
		{
			name: "scale-sublinear", alice: scaleA, bob: scaleB,
			params: params(8), def: expClose, diffUB: 2 * 20000,
			expect: map[string]confExpect{
				"exact-iblt": expExact,
				"rateless":   expExact,
				"ranged":     expExact,
				"cpi":        expError,
				"naive":      expExact,
			},
			errLike: "capacity",
		},
	}
}

// TestStrategyConformance is the cross-strategy conformance suite: every
// strategy × every scenario, identical harness.
func TestStrategyConformance(t *testing.T) {
	ctx := context.Background()
	for _, sc := range confScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			for _, strat := range robustset.Strategies() {
				t.Run(strat.Name(), func(t *testing.T) {
					want := sc.def
					if e, ok := sc.expect[strat.Name()]; ok {
						want = e
					}
					sess, err := robustset.NewSession(strat, robustset.WithParams(sc.params))
					if err != nil {
						t.Fatal(err)
					}
					c1, c2 := net.Pipe()
					defer c1.Close()
					defer c2.Close()
					serveDone := make(chan error, 1)
					go func() {
						_, err := sess.Serve(ctx, c1, sc.alice)
						serveDone <- err
					}()
					res, stats, err := sess.Fetch(ctx, c2, sc.bob)
					c2.Close() // unblock the serving side on error paths
					serveErr := <-serveDone

					switch want {
					case expError:
						if err == nil {
							t.Fatalf("expected a loud error, got success (%d points)", len(res.SPrime))
						}
						if sc.errIs != nil && !errors.Is(err, sc.errIs) {
							t.Fatalf("error %v, want errors.Is(%v)", err, sc.errIs)
						}
						if sc.errLike != "" && !strings.Contains(err.Error(), sc.errLike) {
							t.Fatalf("error %q does not mention %q", err, sc.errLike)
						}
						return
					case expExact, expClose:
						if err != nil {
							t.Fatalf("fetch failed: %v", err)
						}
						if serveErr != nil {
							t.Fatalf("serve failed: %v", serveErr)
						}
					}
					if want == expExact && !robustset.EqualMultisets(res.SPrime, sc.alice) {
						t.Errorf("SPrime (%d points) does not equal Alice's multiset (%d points)",
							len(res.SPrime), len(sc.alice))
					}
					switch strat.(type) {
					case robustset.Robust, robustset.Adaptive:
						if res.Robust == nil {
							t.Error("robust result details missing")
						}
					default:
						if res.Robust != nil {
							t.Error("unexpected robust details on exact strategy")
						}
					}
					if budget := confWireBudget(strat, sc); stats.Total() > budget {
						t.Errorf("wire bytes %d exceed scenario budget %d", stats.Total(), budget)
					}
				})
			}
		})
	}
}

// TestServeRejectsDatasetOption asserts the dataset handshake option is
// refused on the roles that cannot use it, instead of silently speaking
// the wrong protocol at a server.
func TestServeRejectsDatasetOption(t *testing.T) {
	sess, err := robustset.NewSession(robustset.Robust{}, robustset.WithDataset("d"))
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if _, err := sess.Serve(context.Background(), c1, nil); err == nil {
		t.Error("Serve accepted a dataset-configured session")
	}
	if _, _, err := sess.Sync(context.Background(), c1, nil); err == nil {
		t.Error("Sync accepted a dataset-configured session")
	}
}
