package robustset_test

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"robustset"
)

// recordingConn wraps a net.Conn and captures every byte written, so
// tests can compare the wire traffic of two protocol implementations.
type recordingConn struct {
	net.Conn
	mu   sync.Mutex
	sent bytes.Buffer
}

func (r *recordingConn) Write(b []byte) (int, error) {
	n, err := r.Conn.Write(b)
	r.mu.Lock()
	r.sent.Write(b[:n])
	r.mu.Unlock()
	return n, err
}

func (r *recordingConn) bytesSent() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]byte(nil), r.sent.Bytes()...)
}

// runRecorded wires a serving and a fetching endpoint through an
// in-process pipe and returns each side's raw transmitted bytes.
func runRecorded(t *testing.T, serve, fetch func(net.Conn) error) (serveBytes, fetchBytes []byte) {
	t.Helper()
	c1, c2 := net.Pipe()
	ra := &recordingConn{Conn: c1}
	rb := &recordingConn{Conn: c2}
	done := make(chan error, 1)
	go func() {
		defer c1.Close()
		done <- serve(ra)
	}()
	ferr := fetch(rb)
	c2.Close()
	serr := <-done
	if ferr != nil {
		t.Fatalf("fetch side: %v", ferr)
	}
	if serr != nil {
		t.Fatalf("serve side: %v", serr)
	}
	return ra.bytesSent(), rb.bytesSent()
}

// TestWrapperSessionWireParity asserts that every deprecated free
// function produces byte-identical wire traffic to its Session
// equivalent, in both directions.
func TestWrapperSessionWireParity(t *testing.T) {
	rngPair := func() (alice, bob []robustset.Point) {
		return makeNoisyPairSeed(t, 1234, 240, 6, 3)
	}
	alice, bob := rngPair()
	// Exact-regime inputs for the exact protocols: identical sets with a
	// few replaced points, so CPI's capacity bound holds.
	exactBob := robustset.ClonePoints(alice)
	exactAlice := robustset.ClonePoints(alice)
	for i := 0; i < 5; i++ {
		exactAlice[i] = robustset.Point{int64(i) * 17, int64(i) * 29}
	}

	params := robustset.Params{Universe: testU, Seed: 77, DiffBudget: 6}
	ecfg := robustset.ExactConfig{Universe: testU, Seed: 21}
	ccfg := robustset.CPIConfig{Universe: testU, Seed: 23, Capacity: 24}
	ctx := context.Background()

	newSession := func(s robustset.Strategy, opts ...robustset.Option) *robustset.Session {
		sess, err := robustset.NewSession(s, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}

	cases := []struct {
		name               string
		aliceSet, bobSet   []robustset.Point
		oldServe, newServe func(net.Conn) error
		oldFetch, newFetch func(net.Conn) error
	}{
		{
			name: "robust-oneshot", aliceSet: alice, bobSet: bob,
			oldServe: func(c net.Conn) error { _, err := robustset.Push(c, params, alice); return err },
			oldFetch: func(c net.Conn) error { _, _, err := robustset.Pull(c, bob); return err },
			newServe: func(c net.Conn) error {
				_, err := newSession(robustset.Robust{}, robustset.WithParams(params)).Serve(ctx, c, alice)
				return err
			},
			newFetch: func(c net.Conn) error {
				_, _, err := newSession(robustset.Robust{}).Fetch(ctx, c, bob)
				return err
			},
		},
		{
			name: "robust-adaptive", aliceSet: alice, bobSet: bob,
			oldServe: func(c net.Conn) error { _, err := robustset.PushAdaptive(c, params, alice); return err },
			oldFetch: func(c net.Conn) error {
				_, _, err := robustset.PullAdaptive(c, params, bob, robustset.AdaptiveOptions{})
				return err
			},
			newServe: func(c net.Conn) error {
				_, err := newSession(robustset.Adaptive{}, robustset.WithParams(params)).Serve(ctx, c, alice)
				return err
			},
			newFetch: func(c net.Conn) error {
				_, _, err := newSession(robustset.Adaptive{}, robustset.WithParams(params)).Fetch(ctx, c, bob)
				return err
			},
		},
		{
			name: "exact-iblt", aliceSet: exactAlice, bobSet: exactBob,
			oldServe: func(c net.Conn) error { _, err := robustset.PushExact(c, ecfg, exactAlice); return err },
			oldFetch: func(c net.Conn) error { _, _, err := robustset.PullExact(c, ecfg, exactBob); return err },
			newServe: func(c net.Conn) error {
				sess := newSession(robustset.ExactIBLT{}, robustset.WithParams(robustset.Params{Universe: testU, Seed: 21}))
				_, err := sess.Serve(ctx, c, exactAlice)
				return err
			},
			newFetch: func(c net.Conn) error {
				sess := newSession(robustset.ExactIBLT{}, robustset.WithParams(robustset.Params{Universe: testU, Seed: 21}))
				_, _, err := sess.Fetch(ctx, c, exactBob)
				return err
			},
		},
		{
			name: "cpi", aliceSet: exactAlice, bobSet: exactBob,
			oldServe: func(c net.Conn) error { _, err := robustset.PushCPI(c, ccfg, exactAlice); return err },
			oldFetch: func(c net.Conn) error { _, _, err := robustset.PullCPI(c, ccfg, exactBob); return err },
			newServe: func(c net.Conn) error {
				sess := newSession(robustset.CPI{Capacity: 24}, robustset.WithParams(robustset.Params{Universe: testU, Seed: 23}))
				_, err := sess.Serve(ctx, c, exactAlice)
				return err
			},
			newFetch: func(c net.Conn) error {
				sess := newSession(robustset.CPI{Capacity: 24}, robustset.WithParams(robustset.Params{Universe: testU, Seed: 23}))
				_, _, err := sess.Fetch(ctx, c, exactBob)
				return err
			},
		},
		{
			name: "two-way", aliceSet: alice, bobSet: bob,
			oldServe: func(c net.Conn) error { _, _, err := robustset.SyncTwoWay(c, params, alice); return err },
			oldFetch: func(c net.Conn) error { _, _, err := robustset.SyncTwoWay(c, params, bob); return err },
			newServe: func(c net.Conn) error {
				_, _, err := newSession(robustset.Robust{}, robustset.WithParams(params)).Sync(ctx, c, alice)
				return err
			},
			newFetch: func(c net.Conn) error {
				_, _, err := newSession(robustset.Robust{}, robustset.WithParams(params)).Sync(ctx, c, bob)
				return err
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			oldA, oldB := runRecorded(t, tc.oldServe, tc.oldFetch)
			newA, newB := runRecorded(t, tc.newServe, tc.newFetch)
			if !bytes.Equal(oldA, newA) {
				t.Errorf("serving-side traffic diverged: wrapper sent %d bytes, session %d", len(oldA), len(newA))
			}
			if !bytes.Equal(oldB, newB) {
				t.Errorf("fetching-side traffic diverged: wrapper sent %d bytes, session %d", len(oldB), len(newB))
			}
		})
	}
}

// makeNoisyPairSeed is makeNoisyPair with an explicit seed, for tests
// that need several independent instances.
func makeNoisyPairSeed(t *testing.T, seed uint64, n, k int, noise int64) (alice, bob []robustset.Point) {
	t.Helper()
	alice, bob = deterministicPair(seed, n, k, noise)
	return alice, bob
}

// TestSessionAllStrategies drives every built-in strategy through the
// same Serve/Fetch surface on inputs each can handle.
func TestSessionAllStrategies(t *testing.T) {
	alice, bob := deterministicPair(9, 200, 5, 2)
	exactBob := robustset.ClonePoints(alice)
	params := robustset.Params{Universe: testU, Seed: 3, DiffBudget: 5}
	ctx := context.Background()

	for _, strat := range robustset.Strategies() {
		t.Run(strat.Name(), func(t *testing.T) {
			local := bob
			switch strat.(type) {
			case robustset.ExactIBLT, robustset.CPI:
				// Exact protocols get the exact regime.
				local = exactBob
			}
			sess, err := robustset.NewSession(strat, robustset.WithParams(params))
			if err != nil {
				t.Fatal(err)
			}
			c1, c2 := net.Pipe()
			defer c1.Close()
			defer c2.Close()
			done := make(chan error, 1)
			go func() {
				_, err := sess.Serve(ctx, c1, alice)
				done <- err
			}()
			res, stats, err := sess.Fetch(ctx, c2, local)
			if err != nil {
				t.Fatal(err)
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			if len(res.SPrime) == 0 {
				t.Fatal("empty result")
			}
			if stats.Total() == 0 {
				t.Error("no traffic accounted")
			}
			switch strat.(type) {
			case robustset.Robust, robustset.Adaptive:
				if res.Robust == nil {
					t.Error("robust result details missing")
				}
			default:
				if res.Robust != nil {
					t.Error("unexpected robust details on exact strategy")
				}
				if !robustset.EqualMultisets(res.SPrime, alice) {
					t.Error("exact strategy did not reproduce the remote set")
				}
			}
		})
	}
}

// TestSessionFetchCancel asserts that cancelling the context aborts a
// fetch blocked on a silent peer, well within the test's deadline.
func TestSessionFetchCancel(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close() // the "server": accepts but never speaks
	defer c2.Close()
	sess, err := robustset.NewSession(robustset.Robust{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := sess.Fetch(ctx, c2, nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Fetch did not return")
	}
}

// TestSessionServeCancel is the serving-side mirror: an Adaptive serve
// blocks waiting for the estimator request and must abort on cancel.
func TestSessionServeCancel(t *testing.T) {
	alice, _ := deterministicPair(5, 100, 3, 2)
	params := robustset.Params{Universe: testU, Seed: 13, DiffBudget: 3}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close() // the "client": connects but never speaks
	sess, err := robustset.NewSession(robustset.Adaptive{}, robustset.WithParams(params))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sess.Serve(ctx, c1, alice)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled Serve did not return")
	}
}

// TestSessionDeadline asserts a context deadline propagates to the
// connection and expires a stalled round.
func TestSessionDeadline(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	sess, err := robustset.NewSession(robustset.Robust{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, _, err := sess.Fetch(ctx, c2, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
}

// TestSessionOptions exercises the remaining functional options.
func TestSessionOptions(t *testing.T) {
	alice, bob := deterministicPair(21, 150, 4, 2)
	params := robustset.Params{Universe: testU, Seed: 5, DiffBudget: 4}

	var sunk []robustset.TransferStats
	var mu sync.Mutex
	sink := func(st robustset.TransferStats) {
		mu.Lock()
		sunk = append(sunk, st)
		mu.Unlock()
	}
	sess, err := robustset.NewSession(robustset.Robust{},
		robustset.WithParams(params),
		robustset.WithMetric(robustset.L2),
		robustset.WithStatsSink(sink),
	)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go sess.Serve(context.Background(), c1, alice)
	res, _, err := sess.Fetch(context.Background(), c2, bob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.EMD(alice); err != nil {
		t.Fatalf("result EMD under session metric: %v", err)
	}
	mu.Lock()
	n := len(sunk)
	mu.Unlock()
	if n < 1 {
		t.Error("stats sink never invoked")
	}

	// A max message size below the sketch size must refuse the push
	// locally instead of transmitting.
	tiny, err := robustset.NewSession(robustset.Robust{},
		robustset.WithParams(params), robustset.WithMaxMessageSize(64))
	if err != nil {
		t.Fatal(err)
	}
	c3, c4 := net.Pipe()
	defer c3.Close()
	defer c4.Close()
	go func() {
		// Drain whatever arrives so the serve side isn't blocked on pipe
		// backpressure; it must fail before sending anyway.
		buf := make([]byte, 1024)
		for {
			if _, err := c4.Read(buf); err != nil {
				return
			}
		}
	}()
	if _, err := tiny.Serve(context.Background(), c3, alice); err == nil {
		t.Error("oversize message accepted under WithMaxMessageSize")
	}

	// Option validation.
	if _, err := robustset.NewSession(nil); err == nil {
		t.Error("nil strategy accepted")
	}
	if _, err := robustset.NewSession(robustset.Robust{}, robustset.WithMetric(nil)); err == nil {
		t.Error("nil metric accepted")
	}
	if _, err := robustset.NewSession(robustset.Robust{}, robustset.WithMaxMessageSize(-1)); err == nil {
		t.Error("negative max message size accepted")
	}
	if _, err := robustset.NewSession(robustset.Robust{}, robustset.WithDataset("")); err == nil {
		t.Error("empty dataset name accepted")
	}
}

// TestSyncUnsupported asserts non-robust strategies refuse the two-way
// mode with a recognizable error.
func TestSyncUnsupported(t *testing.T) {
	sess, err := robustset.NewSession(robustset.Naive{})
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if _, _, err := sess.Sync(context.Background(), c1, nil); !errors.Is(err, robustset.ErrTwoWayUnsupported) {
		t.Fatalf("want ErrTwoWayUnsupported, got %v", err)
	}
}

// deterministicPair builds Bob's set plus Alice's noisy copy with k fresh
// outliers, seeded so repeated calls agree.
func deterministicPair(seed uint64, n, k int, noise int64) (alice, bob []robustset.Point) {
	next := seed
	rnd := func(m int64) int64 {
		next = next*6364136223846793005 + 1442695040888963407
		v := int64((next >> 33) % uint64(m))
		return v
	}
	bob = make([]robustset.Point, n)
	alice = make([]robustset.Point, n)
	for i := range bob {
		bob[i] = robustset.Point{rnd(testU.Delta), rnd(testU.Delta)}
		if i < k {
			alice[i] = robustset.Point{rnd(testU.Delta), rnd(testU.Delta)}
			continue
		}
		p := robustset.Point{bob[i][0] + rnd(2*noise+1) - noise, bob[i][1] + rnd(2*noise+1) - noise}
		alice[i] = testU.Clamp(p)
	}
	return alice, bob
}

// TestStrategyValidation asserts out-of-range strategy knobs are rejected
// at session construction, before they can desynchronize endpoints.
func TestStrategyValidation(t *testing.T) {
	if _, err := robustset.NewSession(robustset.ExactIBLT{HashCount: 256}); err == nil {
		t.Error("hash count 256 accepted (would truncate to 0 on the wire)")
	}
	if _, err := robustset.NewSession(robustset.ExactIBLT{HashCount: 1}); err == nil {
		t.Error("hash count 1 accepted")
	}
	if _, err := robustset.NewSession(robustset.CPI{Capacity: 1 << 30}); err == nil {
		t.Error("oversized CPI capacity accepted")
	}
	if _, err := robustset.NewSession(robustset.CPI{Capacity: -1}); err == nil {
		t.Error("negative CPI capacity accepted")
	}
	// The deprecated wrappers surface the same validation as errors.
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	cfg := robustset.ExactConfig{Universe: testU, Seed: 1, HashCount: 256}
	if _, err := robustset.PushExact(c1, cfg, nil); err == nil {
		t.Error("PushExact accepted hash count 256")
	}
}

// TestServeRejectsDatasetOption asserts the dataset handshake option is
// refused on the roles that cannot use it, instead of silently speaking
// the wrong protocol at a server.
func TestServeRejectsDatasetOption(t *testing.T) {
	sess, err := robustset.NewSession(robustset.Robust{}, robustset.WithDataset("d"))
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if _, err := sess.Serve(context.Background(), c1, nil); err == nil {
		t.Error("Serve accepted a dataset-configured session")
	}
	if _, _, err := sess.Sync(context.Background(), c1, nil); err == nil {
		t.Error("Sync accepted a dataset-configured session")
	}
}
