// Command sensorfusion models the paper's motivating scenario: two sensor
// arrays observe the same field of objects with independent measurement
// noise, and each also detects a few objects the other missed. The
// stations synchronize over a real (in-process) TCP connection and the
// example compares every protocol this module ships on the identical
// input: robust one-shot, robust estimate-first, exact IBLT sync, and
// naive transfer.
//
// Run it with:
//
//	go run ./examples/sensorfusion
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"net"

	"robustset"
)

const (
	nObjects = 3000
	missed   = 12  // objects only station A detected
	noiseStd = 2.5 // per-axis Gaussian measurement noise
)

var universe = robustset.Universe{Dim: 3, Delta: 1 << 20}

func main() {
	rng := rand.New(rand.NewPCG(7, 7))
	stationA, stationB := observeField(rng)

	fmt.Printf("sensor stations: %d objects each, %d unique to station A, noise σ=%.1f\n\n",
		nObjects, missed, noiseStd)
	fmt.Printf("%-18s %12s %8s %14s\n", "protocol", "bytes", "msgs", "EMD(A, B')")
	fmt.Printf("%-18s %12s %8s %14s\n", "--------", "-----", "----", "----------")

	d0, _ := robustset.EMDApprox(stationA, stationB, universe, 99)
	fmt.Printf("%-18s %12s %8s %14.0f\n", "(no sync)", "-", "-", d0)

	params := robustset.Params{Universe: universe, Seed: 1234, DiffBudget: missed}

	runOverTCP("robust-oneshot", stationA, stationB,
		func(c net.Conn) error { _, err := robustset.Push(c, params, stationA); return err },
		func(c net.Conn) ([]robustset.Point, robustset.TransferStats, error) {
			res, st, err := robustset.Pull(c, stationB)
			if err != nil {
				return nil, st, err
			}
			return res.SPrime, st, nil
		})

	runOverTCP("robust-estimate", stationA, stationB,
		func(c net.Conn) error { _, err := robustset.PushAdaptive(c, params, stationA); return err },
		func(c net.Conn) ([]robustset.Point, robustset.TransferStats, error) {
			res, st, err := robustset.PullAdaptive(c, params, stationB, robustset.AdaptiveOptions{})
			if err != nil {
				return nil, st, err
			}
			return res.SPrime, st, nil
		})

	ecfg := robustset.ExactConfig{Universe: universe, Seed: 77}
	runOverTCP("exact-iblt", stationA, stationB,
		func(c net.Conn) error { _, err := robustset.PushExact(c, ecfg, stationA); return err },
		func(c net.Conn) ([]robustset.Point, robustset.TransferStats, error) {
			return robustset.PullExact(c, ecfg, stationB)
		})

	runOverTCP("naive", stationA, stationB,
		func(c net.Conn) error {
			// Naive transfer: ship every reading.
			t := rawSetSender{conn: c}
			return t.send(stationA)
		},
		func(c net.Conn) ([]robustset.Point, robustset.TransferStats, error) {
			t := rawSetSender{conn: c}
			sp, n, err := t.recv()
			return sp, robustset.TransferStats{BytesRecv: int64(n), MsgsRecv: 1}, err
		})

	fmt.Println("\nNote: exact sync must transfer ~2n differences because every noisy")
	fmt.Println("pair looks like two distinct readings; the robust protocols only pay")
	fmt.Println("for the objects genuinely unique to station A.")
}

// observeField produces the two stations' readings of a shared object
// field.
func observeField(rng *rand.Rand) (a, b []robustset.Point) {
	objects := make([]robustset.Point, nObjects)
	for i := range objects {
		objects[i] = robustset.Point{
			rng.Int64N(universe.Delta), rng.Int64N(universe.Delta), rng.Int64N(universe.Delta),
		}
	}
	observe := func(p robustset.Point) robustset.Point {
		q := robustset.Point{
			p[0] + int64(math.Round(rng.NormFloat64()*noiseStd)),
			p[1] + int64(math.Round(rng.NormFloat64()*noiseStd)),
			p[2] + int64(math.Round(rng.NormFloat64()*noiseStd)),
		}
		return universe.Clamp(q)
	}
	a = make([]robustset.Point, nObjects)
	b = make([]robustset.Point, nObjects)
	for i, obj := range objects {
		if i < missed {
			// Station B never saw this object; it records a different one.
			b[i] = observe(robustset.Point{
				rng.Int64N(universe.Delta), rng.Int64N(universe.Delta), rng.Int64N(universe.Delta),
			})
		} else {
			b[i] = observe(obj)
		}
		a[i] = observe(obj)
	}
	return a, b
}

// runOverTCP wires alice and bob through a loopback TCP connection and
// prints one table row.
func runOverTCP(
	name string,
	stationA, stationB []robustset.Point,
	alice func(net.Conn) error,
	bob func(net.Conn) ([]robustset.Point, robustset.TransferStats, error),
) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		done <- alice(conn)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	sp, stats, err := bob(conn)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	if err := <-done; err != nil {
		log.Fatalf("%s (alice): %v", name, err)
	}
	quality, _ := robustset.EMDApprox(stationA, sp, universe, 99)
	fmt.Printf("%-18s %12d %8d %14.0f\n", name, stats.Total(), stats.MsgsSent+stats.MsgsRecv, quality)
}

// rawSetSender implements naive whole-set transfer over a conn with the
// same framing cost model as the real protocols (4-byte length prefix).
type rawSetSender struct{ conn net.Conn }

func (r rawSetSender) send(pts []robustset.Point) error {
	buf := make([]byte, 0, 4+len(pts)*8*universe.Dim)
	n := uint32(len(pts))
	buf = append(buf, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	for _, p := range pts {
		for _, c := range p {
			v := uint64(c)
			for s := 0; s < 64; s += 8 {
				buf = append(buf, byte(v>>s))
			}
		}
	}
	_, err := r.conn.Write(buf)
	return err
}

func (r rawSetSender) recv() ([]robustset.Point, int, error) {
	var hdr [4]byte
	if _, err := readFull(r.conn, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := int(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
	body := make([]byte, n*8*universe.Dim)
	if _, err := readFull(r.conn, body); err != nil {
		return nil, 0, err
	}
	pts := make([]robustset.Point, n)
	off := 0
	for i := range pts {
		p := make(robustset.Point, universe.Dim)
		for j := 0; j < universe.Dim; j++ {
			var v uint64
			for s := 0; s < 64; s += 8 {
				v |= uint64(body[off]) << s
				off++
			}
			p[j] = int64(v)
		}
		pts[i] = p
	}
	return pts, 4 + len(body), nil
}

func readFull(c net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := c.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
