// Command sensorfusion models the paper's motivating scenario: two sensor
// arrays observe the same field of objects with independent measurement
// noise, and each also detects a few objects the other missed. The
// stations synchronize over a real (in-process) TCP connection, and the
// example compares every reconciliation strategy this module ships on the
// identical input by iterating the Strategy values behind one Session
// runner: robust one-shot, robust estimate-first, exact IBLT sync, and
// naive transfer.
//
// Run it with:
//
//	go run ./examples/sensorfusion
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"net"
	"time"

	"robustset"
)

const (
	nObjects = 3000
	missed   = 12  // objects only station A detected
	noiseStd = 2.5 // per-axis Gaussian measurement noise
)

var universe = robustset.Universe{Dim: 3, Delta: 1 << 20}

func main() {
	rng := rand.New(rand.NewPCG(7, 7))
	stationA, stationB := observeField(rng)

	fmt.Printf("sensor stations: %d objects each, %d unique to station A, noise σ=%.1f\n\n",
		nObjects, missed, noiseStd)
	fmt.Printf("%-18s %12s %8s %14s\n", "protocol", "bytes", "msgs", "EMD(A, B')")
	fmt.Printf("%-18s %12s %8s %14s\n", "--------", "-----", "----", "----------")

	d0, _ := robustset.EMDApprox(stationA, stationB, universe, 99)
	fmt.Printf("%-18s %12s %8s %14.0f\n", "(no sync)", "-", "-", d0)

	params := robustset.Params{Universe: universe, Seed: 1234, DiffBudget: missed}

	// The same runner serves every protocol: the Strategy value is the
	// only thing that changes. (CPI is omitted: under per-reading noise
	// its fixed capacity would have to cover ~2n differences.)
	strategies := []robustset.Strategy{
		robustset.Robust{},
		robustset.Adaptive{},
		robustset.ExactIBLT{},
		robustset.Naive{},
	}
	for _, strat := range strategies {
		runStrategy(strat, params, stationA, stationB)
	}

	fmt.Println("\nNote: exact sync must transfer ~2n differences because every noisy")
	fmt.Println("pair looks like two distinct readings; the robust protocols only pay")
	fmt.Println("for the objects genuinely unique to station A.")
}

// runStrategy wires the two stations through a loopback TCP connection
// under the given strategy and prints one table row.
func runStrategy(strat robustset.Strategy, params robustset.Params, stationA, stationB []robustset.Point) {
	sess, err := robustset.NewSession(strat, robustset.WithParams(params))
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		_, err = sess.Serve(ctx, conn, stationA)
		done <- err
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	res, stats, err := sess.Fetch(ctx, conn, stationB)
	if err != nil {
		log.Fatalf("%s: %v", strat.Name(), err)
	}
	if err := <-done; err != nil {
		log.Fatalf("%s (serving side): %v", strat.Name(), err)
	}
	quality, _ := robustset.EMDApprox(stationA, res.SPrime, universe, 99)
	fmt.Printf("%-18s %12d %8d %14.0f\n", strat.Name(), stats.Total(), stats.MsgsSent+stats.MsgsRecv, quality)
}

// observeField produces the two stations' readings of a shared object
// field.
func observeField(rng *rand.Rand) (a, b []robustset.Point) {
	objects := make([]robustset.Point, nObjects)
	for i := range objects {
		objects[i] = robustset.Point{
			rng.Int64N(universe.Delta), rng.Int64N(universe.Delta), rng.Int64N(universe.Delta),
		}
	}
	observe := func(p robustset.Point) robustset.Point {
		q := robustset.Point{
			p[0] + int64(math.Round(rng.NormFloat64()*noiseStd)),
			p[1] + int64(math.Round(rng.NormFloat64()*noiseStd)),
			p[2] + int64(math.Round(rng.NormFloat64()*noiseStd)),
		}
		return universe.Clamp(q)
	}
	a = make([]robustset.Point, nObjects)
	b = make([]robustset.Point, nObjects)
	for i, obj := range objects {
		if i < missed {
			// Station B never saw this object; it records a different one.
			b[i] = observe(robustset.Point{
				rng.Int64N(universe.Delta), rng.Int64N(universe.Delta), rng.Int64N(universe.Delta),
			})
		} else {
			b[i] = observe(obj)
		}
		a[i] = observe(obj)
	}
	return a, b
}
