// Command quickstart is the smallest end-to-end use of the robustset
// public API: Alice summarizes her noisy point set into a sketch, Bob
// reconciles against it, and we measure how close Bob got in Earth
// Mover's Distance.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"robustset"
)

func main() {
	u := robustset.Universe{Dim: 2, Delta: 1 << 20}
	rng := rand.New(rand.NewPCG(2024, 1))

	// Bob has 500 sensor readings.
	const n, outliers, noise = 500, 8, 5
	bob := make([]robustset.Point, n)
	for i := range bob {
		bob[i] = robustset.Point{rng.Int64N(u.Delta), rng.Int64N(u.Delta)}
	}
	// Alice observed the same objects with ±noise measurement error, plus
	// a few objects Bob has never seen.
	alice := make([]robustset.Point, n)
	for i, p := range bob {
		if i < outliers {
			alice[i] = robustset.Point{rng.Int64N(u.Delta), rng.Int64N(u.Delta)}
			continue
		}
		alice[i] = robustset.Point{p[0] + rng.Int64N(2*noise+1) - noise, p[1] + rng.Int64N(2*noise+1) - noise}
		alice[i] = u.Clamp(alice[i])
	}

	// --- Alice's side: build and serialize the sketch. ---
	params := robustset.Params{Universe: u, Seed: 42, DiffBudget: outliers}
	sketch, err := robustset.NewSketch(params, alice)
	if err != nil {
		log.Fatal(err)
	}
	wire, err := sketch.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}

	// --- Bob's side: parse and reconcile. ---
	var received robustset.Sketch
	if err := received.UnmarshalBinary(wire); err != nil {
		log.Fatal(err)
	}
	res, err := robustset.Reconcile(&received, bob)
	if err != nil {
		log.Fatal(err)
	}

	before, _ := robustset.EMD(alice, bob, robustset.L1)
	after, _ := robustset.EMD(alice, res.SPrime, robustset.L1)
	floor, _ := robustset.EMDk(alice, bob, robustset.L1, outliers)

	fmt.Printf("points per party:        %d\n", n)
	// The sketch costs O(k·logΔ) bytes regardless of n: at n=500 a naive
	// transfer is still cheaper, but the naive cost grows 16 bytes per
	// point while the sketch would stay exactly this size at n = 10⁶.
	fmt.Printf("sketch size:             %d bytes (naive transfer: %d bytes, growing with n)\n", len(wire), n*16)
	fmt.Printf("decoded at grid level:   %d (cell width %d)\n", res.Level, res.CellWidth)
	fmt.Printf("differences recovered:   %d added, %d removed\n", len(res.Added), len(res.Removed))
	fmt.Printf("EMD(alice, bob) before:  %.0f\n", before)
	fmt.Printf("EMD(alice, S'_B) after:  %.0f\n", after)
	fmt.Printf("EMD_k floor (k=%d):       %.0f\n", outliers, floor)
	fmt.Printf("improvement:             %.1f×\n", before/after)
}
