// Command streaming demonstrates incremental sketch maintenance behind
// the Server API: a telemetry server whose dataset changes continuously
// publishes it as a named Dataset (backed by a robustset.Maintainer, so
// each update costs O(levels) hashes instead of an O(n·levels) re-encode)
// and clients pull reconciliations at arbitrary moments through ordinary
// sessions.
//
// The example streams updates through a 10,000-point dataset, serving a
// client pull every 50 updates, and shows that (a) each pull reconciles
// against the dataset as of that instant and (b) maintaining the sketch
// is orders of magnitude cheaper than rebuilding it.
//
// Run it with:
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"time"

	"robustset"
)

var universe = robustset.Universe{Dim: 2, Delta: 1 << 20}

// A pull must arrive before the accumulated churn outgrows the sketch:
// each replaced point contributes ~2 difference keys, so with
// DiffBudget = 64 (table capacity 128) the client needs to pull at least
// every ~50 updates. Pull less often and only coarse levels decode —
// reconciliation still succeeds but with cell-radius accuracy, and the
// replica slowly drifts. (The noise sweep E4/E6 quantifies this.)
const (
	nPoints    = 10000
	nUpdates   = 500
	pullEvery  = 50
	noise      = 3
	diffBudget = 64
)

func main() {
	rng := rand.New(rand.NewPCG(3, 33))
	params := robustset.Params{Universe: universe, Seed: 1001, DiffBudget: diffBudget}

	// Server state: the live dataset, published on a sync server. Publish
	// builds the maintained sketch once.
	dataset := make([]robustset.Point, nPoints)
	for i := range dataset {
		dataset[i] = randPoint(rng)
	}
	srv := robustset.NewServer(robustset.WithServerLogger(log.Printf))
	start := time.Now()
	live, err := srv.Publish("telemetry", params, dataset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial encode of %d points: %v\n", nPoints, time.Since(start).Round(time.Millisecond))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	// Client state: a noisy replica of the initial dataset, and a session
	// reused for every pull.
	replica := make([]robustset.Point, nPoints)
	for i, p := range dataset {
		replica[i] = universe.Clamp(robustset.Point{
			p[0] + rng.Int64N(2*noise+1) - noise,
			p[1] + rng.Int64N(2*noise+1) - noise,
		})
	}
	sess, err := robustset.NewSession(robustset.Robust{}, robustset.WithDataset("telemetry"))
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	var maintainTotal time.Duration
	for u := 1; u <= nUpdates; u++ {
		// Stream one update: replace a random point. Dataset.Remove/Add
		// keep the served sketch in sync incrementally.
		i := rng.IntN(len(dataset))
		t0 := time.Now()
		if err := live.Remove(dataset[i]); err != nil {
			log.Fatal(err)
		}
		dataset[i] = randPoint(rng)
		if err := live.Add(dataset[i]); err != nil {
			log.Fatal(err)
		}
		maintainTotal += time.Since(t0)

		if u%pullEvery == 0 {
			res, stats, err := pull(ctx, sess, ln.Addr().String(), replica)
			if err != nil {
				log.Fatal(err)
			}
			quality, _ := robustset.EMDApprox(dataset, res.SPrime, universe, 77)
			fmt.Printf("after %4d updates: pull %s, level %2d, %3d diffs, grid-EMD to live data %.0f\n",
				u, compact(stats), res.Robust.Level, res.Robust.DiffSize(), quality)
			// The client adopts the reconciled view.
			replica = res.SPrime
		}
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	<-serveDone

	fmt.Println("\nnote: each recovered point carries cell-radius rounding at the decoded")
	fmt.Println("level, so the replica's distance to the live data grows by ~(churn ×")
	fmt.Println("cell radius) per interval until re-churned — the budget/accuracy")
	fmt.Println("trade-off of E11. A bigger DiffBudget buys finer levels.")
	fmt.Printf("\n%d updates maintained in %v total (%.1f µs/update)\n",
		nUpdates, maintainTotal.Round(time.Millisecond),
		float64(maintainTotal.Microseconds())/nUpdates)
	t0 := time.Now()
	if _, err := robustset.NewSketch(params, dataset); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one full re-encode for comparison: %v\n", time.Since(t0).Round(time.Millisecond))
}

func randPoint(rng *rand.Rand) robustset.Point {
	return robustset.Point{rng.Int64N(universe.Delta), rng.Int64N(universe.Delta)}
}

// pull opens one client session against the server and reconciles the
// replica against the dataset's state at that instant.
func pull(ctx context.Context, sess *robustset.Session, addr string, local []robustset.Point) (*robustset.SyncResult, robustset.TransferStats, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, robustset.TransferStats{}, err
	}
	defer conn.Close()
	return sess.Fetch(ctx, conn, local)
}

func compact(s robustset.TransferStats) string {
	return fmt.Sprintf("%5.1fKiB", float64(s.Total())/1024)
}
