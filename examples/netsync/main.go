// Command netsync demonstrates deployment-shaped usage: a multi-dataset
// sync server and several clients connected by real TCP. The server
// publishes two named datasets; clients open sessions naming a dataset
// and a protocol (one-shot push and the adaptive estimate-first variant),
// adopt the server's reconciliation parameters through the handshake, and
// print the wire accounting of each session. The server drains in-flight
// sessions through a graceful Shutdown at the end.
//
// In a real deployment the server and the clients run in different
// processes on different hosts; everything below the net.Listen/net.Dial
// line is identical.
//
// Run it with:
//
//	go run ./examples/netsync
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"time"

	"robustset"
)

var universe = robustset.Universe{Dim: 2, Delta: 1 << 18}

const (
	nPoints  = 5000
	nOutlier = 20
	noise    = 4
)

func main() {
	rng := rand.New(rand.NewPCG(11, 13))
	serverSet, clientSet := makeData(rng)
	params := robustset.Params{Universe: universe, Seed: 2718, DiffBudget: nOutlier}

	// A second, smaller dataset shows the multiplexing: same server, own
	// parameters.
	auxSet := make([]robustset.Point, 500)
	for i := range auxSet {
		auxSet[i] = robustset.Point{rng.Int64N(universe.Delta), rng.Int64N(universe.Delta)}
	}
	auxParams := robustset.Params{Universe: universe, Seed: 31415, DiffBudget: 8}

	srv := robustset.NewServer(robustset.WithServerLogger(log.Printf))
	if _, err := srv.Publish("telemetry/main", params, serverSet); err != nil {
		log.Fatal(err)
	}
	if _, err := srv.Publish("telemetry/aux", auxParams, auxSet); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	fmt.Printf("sync server on %s, datasets: %v\n\n", ln.Addr(), srv.Datasets())

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// --- Client 1: one-shot robust pull of the main dataset. ---
	res1, stats1 := fetch(ctx, ln.Addr(), robustset.Robust{}, "telemetry/main", clientSet)
	fmt.Printf("one-shot pull:  %6d bytes, %d msgs, level %2d, %d diffs recovered\n",
		stats1.Total(), stats1.MsgsSent+stats1.MsgsRecv, res1.Robust.Level, res1.Robust.DiffSize())

	// --- Client 2: adaptive estimate-first pull of the same dataset. ---
	res2, stats2 := fetch(ctx, ln.Addr(), robustset.Adaptive{}, "telemetry/main", clientSet)
	fmt.Printf("adaptive pull:  %6d bytes, %d msgs, level %2d, %d diffs recovered\n",
		stats2.Total(), stats2.MsgsSent+stats2.MsgsRecv, res2.Robust.Level, res2.Robust.DiffSize())

	// --- Client 3: cold replica of the aux dataset via naive transfer. ---
	res3, stats3 := fetch(ctx, ln.Addr(), robustset.Naive{}, "telemetry/aux", nil)
	fmt.Printf("aux full pull:  %6d bytes, %d msgs, %d points\n",
		stats3.Total(), stats3.MsgsSent+stats3.MsgsRecv, len(res3.SPrime))

	// Drain the server.
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	<-serveDone

	q1, _ := robustset.EMDApprox(serverSet, res1.SPrime, universe, 3)
	q2, _ := robustset.EMDApprox(serverSet, res2.SPrime, universe, 3)
	q0, _ := robustset.EMDApprox(serverSet, clientSet, universe, 3)
	fmt.Printf("\ndistance to server data (grid-EMD estimate):\n")
	fmt.Printf("  before sync:   %.0f\n", q0)
	fmt.Printf("  one-shot:      %.0f\n", q1)
	fmt.Printf("  adaptive:      %.0f\n", q2)
	fmt.Printf("\nnaive transfer would have cost %d bytes per session\n", 16*nPoints)
}

// fetch opens one client session against the server: dial, handshake for
// the named dataset, run the strategy.
func fetch(ctx context.Context, addr net.Addr, strat robustset.Strategy, dataset string, local []robustset.Point) (*robustset.SyncResult, robustset.TransferStats) {
	sess, err := robustset.NewSession(strat, robustset.WithDataset(dataset))
	if err != nil {
		log.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	res, stats, err := sess.Fetch(ctx, conn, local)
	if err != nil {
		log.Fatalf("%s on %q: %v", strat.Name(), dataset, err)
	}
	return res, stats
}

// makeData builds the server's set and the client's noisy replica.
func makeData(rng *rand.Rand) (server, client []robustset.Point) {
	server = make([]robustset.Point, nPoints)
	client = make([]robustset.Point, nPoints)
	for i := range server {
		server[i] = robustset.Point{rng.Int64N(universe.Delta), rng.Int64N(universe.Delta)}
		if i < nOutlier {
			client[i] = robustset.Point{rng.Int64N(universe.Delta), rng.Int64N(universe.Delta)}
			continue
		}
		client[i] = universe.Clamp(robustset.Point{
			server[i][0] + rng.Int64N(2*noise+1) - noise,
			server[i][1] + rng.Int64N(2*noise+1) - noise,
		})
	}
	return server, client
}
