// Command netsync demonstrates deployment-shaped usage: a sketch server
// and a client in separate goroutines connected by real TCP, exchanging
// both protocol variants (one-shot push and the adaptive estimate-first
// protocol) and printing the wire accounting of each.
//
// In a real deployment the server and client halves run in different
// processes on different hosts; everything below the net.Listen/net.Dial
// line is identical.
//
// Run it with:
//
//	go run ./examples/netsync
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"sync"

	"robustset"
)

var universe = robustset.Universe{Dim: 2, Delta: 1 << 18}

const (
	nPoints  = 5000
	nOutlier = 20
	noise    = 4
)

func main() {
	rng := rand.New(rand.NewPCG(11, 13))
	serverSet, clientSet := makeData(rng)
	params := robustset.Params{Universe: universe, Seed: 2718, DiffBudget: nOutlier}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	fmt.Printf("sketch server listening on %s (%d points)\n\n", ln.Addr(), nPoints)

	// The server accepts two connections: one one-shot push, one adaptive
	// session.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			conn, err := ln.Accept()
			if err != nil {
				log.Printf("server: %v", err)
				return
			}
			go func(id int, conn net.Conn) {
				defer conn.Close()
				var stats robustset.TransferStats
				var err error
				if id == 0 {
					stats, err = robustset.Push(conn, params, serverSet)
				} else {
					stats, err = robustset.PushAdaptive(conn, params, serverSet)
				}
				if err != nil {
					log.Printf("server session %d: %v", id, err)
					return
				}
				fmt.Printf("server session %d done: %s\n", id, stats)
			}(i, conn)
		}
	}()

	// --- Client: one-shot pull. ---
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	res1, stats1, err := robustset.Pull(conn, clientSet)
	conn.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-shot pull:  %6d bytes, %d msgs, level %2d, %d diffs recovered\n",
		stats1.Total(), stats1.MsgsSent+stats1.MsgsRecv, res1.Level, res1.DiffSize())

	// --- Client: adaptive estimate-first pull. ---
	conn, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	res2, stats2, err := robustset.PullAdaptive(conn, params, clientSet, robustset.AdaptiveOptions{})
	conn.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptive pull:  %6d bytes, %d msgs, level %2d, %d diffs recovered\n",
		stats2.Total(), stats2.MsgsSent+stats2.MsgsRecv, res2.Level, res2.DiffSize())

	wg.Wait()

	q1, _ := robustset.EMDApprox(serverSet, res1.SPrime, universe, 3)
	q2, _ := robustset.EMDApprox(serverSet, res2.SPrime, universe, 3)
	q0, _ := robustset.EMDApprox(serverSet, clientSet, universe, 3)
	fmt.Printf("\ndistance to server data (grid-EMD estimate):\n")
	fmt.Printf("  before sync:   %.0f\n", q0)
	fmt.Printf("  one-shot:      %.0f\n", q1)
	fmt.Printf("  adaptive:      %.0f\n", q2)
	fmt.Printf("\nnaive transfer would have cost %d bytes per session\n", 16*nPoints)
}

// makeData builds the server's set and the client's noisy replica.
func makeData(rng *rand.Rand) (server, client []robustset.Point) {
	server = make([]robustset.Point, nPoints)
	client = make([]robustset.Point, nPoints)
	for i := range server {
		server[i] = robustset.Point{rng.Int64N(universe.Delta), rng.Int64N(universe.Delta)}
		if i < nOutlier {
			client[i] = robustset.Point{rng.Int64N(universe.Delta), rng.Int64N(universe.Delta)}
			continue
		}
		client[i] = universe.Clamp(robustset.Point{
			server[i][0] + rng.Int64N(2*noise+1) - noise,
			server[i][1] + rng.Int64N(2*noise+1) - noise,
		})
	}
	return server, client
}
