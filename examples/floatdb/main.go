// Command floatdb models reconciliation of numerical database replicas:
// two replicas of a table of float measurements that have drifted apart
// through independent rounding (different compression settings, float
// summation orders, unit conversions). Quantized to a fixed-point grid,
// the rows become points in [Δ]^d, and the replicas differ slightly in
// almost every row — the worst case for exact reconciliation and the
// intended case for robust reconciliation.
//
// The example also demonstrates the two-way mode: both replicas pull the
// other's genuinely new rows while ignoring rounding drift.
//
// Run it with:
//
//	go run ./examples/floatdb
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"robustset"
)

const (
	rows     = 2000
	newRowsA = 7 // rows inserted only at replica A
	newRowsB = 4 // rows inserted only at replica B
	// quantum is the replicas' float drift scale in engineering units
	// (how far independent re-derivation moves a stored value).
	quantum = 1e-4
)

// a measurement row: (temperature °C, pressure kPa).
type row struct{ temp, pressure float64 }

var (
	universe = robustset.Universe{Dim: 2, Delta: 1 << 24}
	// quantizer maps rows into the grid: temperatures 0–100 °C and
	// pressures 0–130 kPa onto 24-bit coordinates.
	quantizer = mustQuantizer()
)

func mustQuantizer() *robustset.Quantizer {
	q, err := robustset.NewQuantizer(universe, []float64{0, 0}, []float64{100, 130})
	if err != nil {
		panic(err)
	}
	return q
}

func main() {
	rng := rand.New(rand.NewPCG(99, 1))

	// The ground-truth table, and two replicas that each re-derived the
	// floats slightly differently (±2 quanta of drift per field).
	truth := make([]row, rows)
	for i := range truth {
		truth[i] = row{temp: rng.Float64() * 100, pressure: 80 + rng.Float64()*40}
	}
	drift := func(v float64) float64 { return v + (rng.Float64()-0.5)*4*quantum }
	replicaA := make([]robustset.Point, 0, rows+newRowsA)
	replicaB := make([]robustset.Point, 0, rows+newRowsB)
	for _, r := range truth {
		replicaA = append(replicaA, quantize(row{drift(r.temp), drift(r.pressure)}))
		replicaB = append(replicaB, quantize(row{drift(r.temp), drift(r.pressure)}))
	}
	for i := 0; i < newRowsA; i++ {
		replicaA = append(replicaA, quantize(row{rng.Float64() * 100, 80 + rng.Float64()*40}))
	}
	for i := 0; i < newRowsB; i++ {
		replicaB = append(replicaB, quantize(row{rng.Float64() * 100, 80 + rng.Float64()*40}))
	}

	fmt.Printf("replica A: %d rows (%d unique), replica B: %d rows (%d unique)\n",
		len(replicaA), newRowsA, len(replicaB), newRowsB)

	// How different do the replicas look to an exact comparator? Count
	// rows without a bit-identical twin.
	exactMatches := countExactMatches(replicaA, replicaB)
	fmt.Printf("rows with bit-identical twins: %d of %d (%.1f%%) — exact sync would transfer the rest\n\n",
		exactMatches, rows, 100*float64(exactMatches)/float64(rows))

	params := robustset.Params{
		Universe:   universe,
		Seed:       4242,
		DiffBudget: newRowsA + newRowsB,
	}

	// Run the one-way protocol in both directions. The model's repair
	// replaces each party's view (S'_B ≈ S_A, which would drop B's own
	// new rows); databases usually want union semantics instead, so each
	// replica keeps its rows and ingests only what the protocol decoded
	// as genuinely new — Result.Added exposes exactly that.
	skA, err := robustset.NewSketch(params, replicaA)
	if err != nil {
		log.Fatal(err)
	}
	skB, err := robustset.NewSketch(params, replicaB)
	if err != nil {
		log.Fatal(err)
	}
	resB, err := robustset.Reconcile(skA, replicaB) // B learns from A
	if err != nil {
		log.Fatal(err)
	}
	resA, err := robustset.Reconcile(skB, replicaA) // A learns from B
	if err != nil {
		log.Fatal(err)
	}

	wire, _ := skA.MarshalBinary()
	fmt.Printf("sketch size per direction: %d bytes (vs %d bytes for a full dump)\n",
		len(wire), 16*len(replicaA))
	fmt.Printf("grid level used: %d (cell width %d ≈ %.4f engineering units)\n\n",
		resB.Level, resB.CellWidth, float64(resB.CellWidth)*quantizer.Step(0))

	d0, _ := robustset.EMDApprox(replicaA, replicaB, universe, 5)
	d1, _ := robustset.EMDApprox(replicaA, resB.SPrime, universe, 5)
	fmt.Printf("replica B distance to A (grid-EMD estimate): %.0f → %.0f quanta\n\n", d0, d1)

	fmt.Printf("rows replica B learned from A (%d):\n", len(resB.Added))
	for _, p := range resB.Added {
		r := dequantize(p)
		fmt.Printf("  temp=%8.4f°C pressure=%9.4f kPa\n", r.temp, r.pressure)
	}
	fmt.Printf("rows replica A learned from B (%d):\n", len(resA.Added))
	for _, p := range resA.Added {
		r := dequantize(p)
		fmt.Printf("  temp=%8.4f°C pressure=%9.4f kPa\n", r.temp, r.pressure)
	}

	// Union ingestion: keep local rows, add the learned ones.
	unionB := append(robustset.ClonePoints(replicaB), resB.Added...)
	fmt.Printf("\nreplica B after union ingestion: %d rows\n", len(unionB))
}

// quantize maps a row into the grid via the library's Quantizer.
func quantize(r row) robustset.Point {
	p, err := quantizer.Quantize([]float64{r.temp, r.pressure})
	if err != nil {
		panic(err)
	}
	return p
}

// dequantize maps grid coordinates back to engineering units.
func dequantize(p robustset.Point) row {
	v, err := quantizer.Dequantize(p)
	if err != nil {
		panic(err)
	}
	return row{temp: v[0], pressure: v[1]}
}

// countExactMatches counts rows of a with a bit-identical row in b.
func countExactMatches(a, b []robustset.Point) int {
	index := make(map[[2]int64]int, len(b))
	for _, p := range b {
		index[[2]int64{p[0], p[1]}]++
	}
	matches := 0
	for _, p := range a {
		k := [2]int64{p[0], p[1]}
		if index[k] > 0 {
			index[k]--
			matches++
		}
	}
	return matches
}
