// Command cluster demonstrates the anti-entropy replication subsystem:
// three nodes publish the same sharded dataset, each seeded with a few
// points the others lack, and a Replicator per node gossips with the
// other two until every node holds the identical multiset.
//
// The moving parts, bottom to top:
//
//   - Server.PublishSharded splits each node's points across 4 shard
//     datasets by a deterministic hash, so the nodes agree on every
//     point's shard and each shard reconciles independently.
//   - NewReplicator wraps the node's Server with a peer list; every
//     RunRound selects peers, reconciles each shard dataset against them
//     with an ordinary Session strategy, and applies the diffs through
//     the dataset's batch mutations.
//   - Diffs apply union-style — missing points are added, local points
//     kept — which is monotone, so mutual replication converges.
//
// In a real deployment each node is its own process and Replicator.Run
// drives rounds on an interval; the demo calls RunRound directly so the
// output is deterministic.
//
// Run it with:
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"time"

	"robustset"
)

var universe = robustset.Universe{Dim: 2, Delta: 1 << 18}

const (
	nBase   = 2000 // points every node starts with
	nExtra  = 12   // points only one node starts with
	nNodes  = 3
	nShards = 4
)

func main() {
	params := robustset.Params{
		Universe: universe,
		Seed:     4242,
		// The diff budget must cover the largest per-shard diff a round
		// can see — all nodes' extras in the worst case.
		DiffBudget: nNodes*nExtra + 8,
	}

	// Build the workload: a shared base plus per-node extras, the extras
	// in disjoint coordinate stripes so "extra" is exact.
	rng := rand.New(rand.NewPCG(7, 11))
	base := make([]robustset.Point, nBase)
	for i := range base {
		base[i] = robustset.Point{rng.Int64N(universe.Delta / 2), rng.Int64N(universe.Delta)}
	}
	extras := make([][]robustset.Point, nNodes)
	stripe := universe.Delta / 2 / nNodes
	for n := range extras {
		for j := 0; j < nExtra; j++ {
			extras[n] = append(extras[n], robustset.Point{
				universe.Delta/2 + int64(n)*stripe + rng.Int64N(stripe),
				rng.Int64N(universe.Delta),
			})
		}
	}

	// One shared metrics registry: every server and replicator below
	// reports into it, and the summary at the end reads real counters.
	metrics := robustset.NewMetrics()

	// Start the nodes: a Server each, publishing the sharded dataset.
	type node struct {
		srv  *robustset.Server
		addr string
	}
	nodes := make([]*node, nNodes)
	for i := range nodes {
		srv := robustset.NewServer(robustset.WithServerLogger(log.Printf),
			robustset.WithServerMetrics(metrics))
		pts := append(robustset.ClonePoints(base), extras[i]...)
		if _, err := srv.PublishSharded("telemetry", params, pts, nShards); err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve(ln)
		nodes[i] = &node{srv: srv, addr: ln.Addr().String()}
		fmt.Printf("node %d: %d points on %s\n", i, nBase+nExtra, ln.Addr())
	}

	// One replicator per node, peered with the other two.
	reps := make([]*robustset.Replicator, nNodes)
	for i, nd := range nodes {
		var peers []robustset.Peer
		for j, other := range nodes {
			if j != i {
				peers = append(peers, robustset.Peer{Name: fmt.Sprintf("node%d", j), Addr: other.addr})
			}
		}
		// WithReplicatorMux: each node keeps one multiplexed connection
		// per peer and reconciles all 4 shards as parallel streams of it,
		// instead of dialing per shard per round.
		rep, err := robustset.NewReplicator(nd.srv, peers,
			robustset.WithReplicatorStrategy(robustset.Robust{}),
			robustset.WithPeerSelector(robustset.SelectRoundRobin(len(peers))),
			robustset.WithRoundTimeout(30*time.Second),
			robustset.WithReplicatorMux(),
			robustset.WithReplicatorMetrics(metrics),
		)
		if err != nil {
			log.Fatal(err)
		}
		defer rep.Close()
		reps[i] = rep
	}

	// Gossip until quiescent: a sweep where every node's round converges.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for sweep := 1; ; sweep++ {
		allConverged := true
		for i, rep := range reps {
			st, err := rep.RunRound(ctx)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("sweep %d node %d: +%d points, %d sessions, %d B\n",
				sweep, i, st.Added, st.Sessions, st.Bytes)
			if !st.Converged {
				allConverged = false
			}
		}
		if allConverged {
			fmt.Printf("cluster quiescent after %d sweep(s)\n", sweep)
			break
		}
		if sweep > 8 {
			log.Fatal("no convergence after 8 sweeps")
		}
	}

	// Every node now holds the union.
	sizes := make([]int, nNodes)
	for i, nd := range nodes {
		sizes[i] = nd.srv.ShardedDataset("telemetry").Size()
	}
	fmt.Printf("final sizes: %v (expected %d each)\n", sizes, nBase+nNodes*nExtra)

	// The registry saw every connection and session in the run: with
	// mux on, the connection count stays at one per replicator-peer
	// edge no matter how many sweeps and shards gossiped over it.
	snap := metrics.Snapshot()
	fmt.Printf("transport: %d mux connection(s), %d stream sessions, max %d streams on one connection, %d decode failures\n",
		snap["server_mux_conns_total"], snap["server_mux_streams_total"],
		snap["server_mux_streams_per_conn_max"], snap["mux_decode_failures_total"])

	for _, nd := range nodes {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		nd.srv.Shutdown(ctx)
		cancel()
	}
}
