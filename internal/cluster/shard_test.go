package cluster

import (
	"math/rand/v2"
	"testing"

	"robustset/internal/points"
)

func TestShardMapDeterministicAcrossInstances(t *testing.T) {
	a, err := NewShardMap(16, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewShardMap(16, 99)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 1000; i++ {
		pt := points.Point{rng.Int64N(1 << 20), rng.Int64N(1 << 20)}
		if a.ShardOf(pt) != b.ShardOf(pt) {
			t.Fatalf("instances disagree on %v", pt)
		}
	}
	c, err := NewShardMap(16, 100)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := 0; i < 1000; i++ {
		pt := points.Point{rng.Int64N(1 << 20), rng.Int64N(1 << 20)}
		if a.ShardOf(pt) != c.ShardOf(pt) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical shard maps")
	}
}

func TestShardMapPartitionPreservesMultiset(t *testing.T) {
	m, err := NewShardMap(8, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	pts := make([]points.Point, 500)
	for i := range pts {
		pts[i] = points.Point{rng.Int64N(1 << 16), rng.Int64N(1 << 16)}
	}
	// Duplicates must survive partitioning.
	pts = append(pts, pts[0].Clone(), pts[0].Clone())
	parts := m.Partition(pts)
	if len(parts) != 8 {
		t.Fatalf("got %d parts", len(parts))
	}
	var merged []points.Point
	for i, part := range parts {
		for _, pt := range part {
			if m.ShardOf(pt) != i {
				t.Fatalf("point %v landed in shard %d, maps to %d", pt, i, m.ShardOf(pt))
			}
		}
		merged = append(merged, part...)
	}
	if !points.EqualMultisets(merged, pts) {
		t.Error("partitioned parts do not merge back to the input multiset")
	}
}

func TestShardMapRoughBalance(t *testing.T) {
	const k, n = 8, 8000
	m, err := NewShardMap(k, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	pts := make([]points.Point, n)
	for i := range pts {
		pts[i] = points.Point{rng.Int64N(1 << 20), rng.Int64N(1 << 20)}
	}
	for i, part := range m.Partition(pts) {
		// Expected n/k = 1000; a uniform hash stays within ±30% w.h.p.
		if len(part) < 700 || len(part) > 1300 {
			t.Errorf("shard %d holds %d points, expected ~%d", i, len(part), n/k)
		}
	}
}

func TestShardMapValidation(t *testing.T) {
	if _, err := NewShardMap(0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewShardMap(MaxShards+1, 1); err == nil {
		t.Error("k beyond MaxShards accepted")
	}
}

func TestShardNameRoundTrip(t *testing.T) {
	name := ShardName("sensors/alpha", 3, 16)
	if name != "sensors/alpha~3.16" {
		t.Fatalf("ShardName = %q", name)
	}
	base, i, k, ok := ParseShardName(name)
	if !ok || base != "sensors/alpha" || i != 3 || k != 16 {
		t.Fatalf("ParseShardName(%q) = %q,%d,%d,%v", name, base, i, k, ok)
	}
	for _, bad := range []string{"plain", "x~", "x~a.b", "x~3.", "x~3.2", "x~-1.4", "x~4.4"} {
		if _, _, _, ok := ParseShardName(bad); ok {
			t.Errorf("ParseShardName(%q) accepted", bad)
		}
	}
}
