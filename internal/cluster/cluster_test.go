package cluster

import (
	"slices"
	"testing"
	"time"
)

func TestRoundRobinSweepsAllPeers(t *testing.T) {
	peers := []string{"c", "a", "b", "e", "d"}
	sel := RoundRobin{K: 2}
	seen := map[string]int{}
	for round := 0; round < 5; round++ {
		got := sel.Select(peers, round)
		if len(got) != 2 {
			t.Fatalf("round %d: selected %v, want 2 peers", round, got)
		}
		for _, p := range got {
			seen[p]++
		}
	}
	// 5 rounds × 2 picks over 5 peers: every peer exactly twice.
	for _, p := range peers {
		if seen[p] != 2 {
			t.Errorf("peer %q selected %d times over the sweep, want 2", p, seen[p])
		}
	}
}

func TestRoundRobinBounds(t *testing.T) {
	if got := (RoundRobin{K: 3}).Select(nil, 0); got != nil {
		t.Errorf("empty eligible list selected %v", got)
	}
	got := RoundRobin{K: 10}.Select([]string{"b", "a"}, 7)
	if !slices.Equal(got, []string{"a", "b"}) {
		t.Errorf("oversized K selected %v, want all peers sorted", got)
	}
	if got := (RoundRobin{}).Select([]string{"x", "y"}, 0); len(got) != 1 {
		t.Errorf("K=0 selected %v, want one peer", got)
	}
}

func TestRandomKDeterministicAndDistinct(t *testing.T) {
	peers := []string{"n1", "n2", "n3", "n4", "n5", "n6"}
	a := NewRandomK(3, 42)
	b := NewRandomK(3, 42)
	for round := 0; round < 20; round++ {
		ga := a.Select(peers, round)
		gb := b.Select(peers, round)
		if !slices.Equal(ga, gb) {
			t.Fatalf("round %d: same seed diverged: %v vs %v", round, ga, gb)
		}
		if len(ga) != 3 {
			t.Fatalf("round %d: selected %v, want 3", round, ga)
		}
		dedup := slices.Clone(ga)
		slices.Sort(dedup)
		if len(slices.Compact(dedup)) != 3 {
			t.Fatalf("round %d: duplicate selections %v", round, ga)
		}
	}
}

func TestRandomKCoversAllPeers(t *testing.T) {
	peers := []string{"a", "b", "c", "d"}
	sel := NewRandomK(1, 7)
	seen := map[string]bool{}
	for round := 0; round < 64; round++ {
		for _, p := range sel.Select(peers, round) {
			seen[p] = true
		}
	}
	if len(seen) != len(peers) {
		t.Errorf("64 random rounds reached %d/%d peers", len(seen), len(peers))
	}
}

func TestBackoffDelays(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second}
	cases := []struct {
		failures int
		want     time.Duration
	}{
		{0, 0},
		{1, 100 * time.Millisecond},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{4, 800 * time.Millisecond},
		{5, time.Second},  // capped
		{50, time.Second}, // no overflow
	}
	for _, c := range cases {
		if got := b.Delay(c.failures); got != c.want {
			t.Errorf("Delay(%d) = %v, want %v", c.failures, got, c.want)
		}
	}
	if got := (Backoff{}).Delay(3); got != 0 {
		t.Errorf("zero Backoff delayed %v", got)
	}
}

func TestPeerStateLifecycle(t *testing.T) {
	b := Backoff{Base: time.Minute, Max: time.Hour}
	now := time.Unix(1000, 0)
	var p PeerState
	if !p.Eligible(now) {
		t.Fatal("fresh peer not eligible")
	}
	p.Fail(now, b)
	if p.Eligible(now) {
		t.Fatal("failed peer still eligible immediately")
	}
	if p.Eligible(now.Add(30 * time.Second)) {
		t.Fatal("peer eligible before backoff elapsed")
	}
	if !p.Eligible(now.Add(time.Minute)) {
		t.Fatal("peer not eligible after backoff elapsed")
	}
	p.Fail(now, b)
	if p.Failures != 2 {
		t.Fatalf("failures = %d, want 2", p.Failures)
	}
	if !p.Eligible(now.Add(2 * time.Minute)) {
		t.Fatal("peer not eligible after doubled backoff")
	}
	p.Succeed()
	if !p.Eligible(now) || p.Failures != 0 {
		t.Fatal("Succeed did not reset the peer")
	}
}
