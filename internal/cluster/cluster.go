// Package cluster holds the mechanics behind the public Replicator API:
// peer selection policies for anti-entropy rounds, exponential backoff
// bookkeeping for unreachable peers, and the deterministic shard map that
// partitions a dataset's points across Maintainer-backed sub-datasets.
//
// The package deliberately contains no networking and no protocol code —
// it is pure policy over names, times and point encodings — so every
// behaviour is testable without a socket. The round driver in the root
// package composes these pieces with Session/Server to form the
// replication subsystem.
package cluster

import (
	"fmt"
	"math/rand/v2"
	"slices"
	"time"
)

// RoundRobin selects K peers per round by cycling through the eligible
// list in sorted order, so over ceil(len/K) rounds every peer is
// contacted — the deterministic "sweep" policy an N-node demo wants.
type RoundRobin struct {
	// K is the number of peers per round; K <= 0 means 1, and K larger
	// than the eligible list selects everyone.
	K int
}

// Select implements the selection policy. The eligible slice is not
// mutated.
func (r RoundRobin) Select(eligible []string, round int) []string {
	if len(eligible) == 0 {
		return nil
	}
	sorted := slices.Clone(eligible)
	slices.Sort(sorted)
	k := r.K
	if k <= 0 {
		k = 1
	}
	if k >= len(sorted) {
		return sorted
	}
	start := (round * k) % len(sorted)
	out := make([]string, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, sorted[(start+i)%len(sorted)])
	}
	return out
}

// RandomK selects K distinct peers uniformly at random each round — the
// classic gossip policy, which spreads load and breaks pathological
// topologies round-robin can fall into. A RandomK value is not safe for
// concurrent use; the Replicator serializes rounds.
type RandomK struct {
	k   int
	rng *rand.Rand
}

// NewRandomK builds a RandomK selector with a deterministic seed (tests
// and reproducible demos pass a fixed seed; production callers pass
// anything, e.g. a per-node identifier).
func NewRandomK(k int, seed uint64) *RandomK {
	return &RandomK{k: k, rng: rand.New(rand.NewPCG(seed, ^seed))}
}

// Select implements the selection policy.
func (r *RandomK) Select(eligible []string, round int) []string {
	if len(eligible) == 0 {
		return nil
	}
	sorted := slices.Clone(eligible)
	slices.Sort(sorted) // order the permutation over a canonical base
	k := r.k
	if k <= 0 {
		k = 1
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	perm := r.rng.Perm(len(sorted))[:k]
	out := make([]string, 0, k)
	for _, i := range perm {
		out = append(out, sorted[i])
	}
	slices.Sort(out)
	return out
}

// Backoff computes the exponential retry delay for an unreachable peer:
// Delay(1) = Base, doubling per consecutive failure, capped at Max.
type Backoff struct {
	Base time.Duration
	Max  time.Duration
}

// Delay returns how long a peer with the given consecutive failure count
// stays ineligible. Zero failures mean no delay.
func (b Backoff) Delay(failures int) time.Duration {
	if failures <= 0 || b.Base <= 0 {
		return 0
	}
	d := b.Base
	for i := 1; i < failures; i++ {
		d *= 2
		if b.Max > 0 && d >= b.Max {
			return b.Max
		}
	}
	if b.Max > 0 && d > b.Max {
		return b.Max
	}
	return d
}

// PeerState is the per-peer round bookkeeping the Replicator keeps:
// consecutive failures and the next time the peer is worth contacting.
type PeerState struct {
	Failures int
	Until    time.Time
}

// Eligible reports whether the peer may be contacted at now.
func (p *PeerState) Eligible(now time.Time) bool {
	return p.Failures == 0 || !now.Before(p.Until)
}

// Fail records one more consecutive failure and schedules the next
// attempt per the backoff policy.
func (p *PeerState) Fail(now time.Time, b Backoff) {
	p.Failures++
	p.Until = now.Add(b.Delay(p.Failures))
}

// Succeed resets the peer to immediately eligible.
func (p *PeerState) Succeed() {
	p.Failures = 0
	p.Until = time.Time{}
}

// String aids log lines.
func (p *PeerState) String() string {
	if p.Failures == 0 {
		return "ok"
	}
	return fmt.Sprintf("%d failures, retry at %s", p.Failures, p.Until.Format(time.RFC3339))
}
