package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"robustset/internal/hashutil"
	"robustset/internal/points"
)

// ShardMap deterministically assigns points to one of K shards by hashing
// their canonical encoding. Two nodes that build a ShardMap from the same
// (K, seed) — in practice, from the same reconciliation Params — agree on
// every point's shard, so per-shard datasets reconcile peer-to-peer
// without any shard metadata on the wire.
type ShardMap struct {
	k int
	h hashutil.Hasher
}

// MaxShards bounds K; beyond this the per-shard fixed sketch overhead
// dominates any delta savings.
const MaxShards = 4096

// NewShardMap builds a shard map for k shards. The seed is domain-
// separated from the reconciliation seed, so shard assignment is
// independent of the grid shifts and IBLT hashing.
func NewShardMap(k int, seed uint64) (*ShardMap, error) {
	if k < 1 || k > MaxShards {
		return nil, fmt.Errorf("cluster: shard count %d outside [1,%d]", k, MaxShards)
	}
	return &ShardMap{
		k: k,
		h: hashutil.NewHasher(hashutil.DeriveSeed(seed, "cluster/shard")),
	}, nil
}

// Shards returns K.
func (m *ShardMap) Shards() int { return m.k }

// ShardOfEncoded maps a canonically encoded point to its shard index.
func (m *ShardMap) ShardOfEncoded(enc []byte) int {
	return int(m.h.Hash(enc) % uint64(m.k))
}

// ShardOf maps a point to its shard index.
func (m *ShardMap) ShardOf(pt points.Point) int {
	return m.ShardOfEncoded(points.EncodeNew(pt))
}

// Partition splits pts into K per-shard slices. The input is not
// mutated; points are not copied (slices share the backing points).
func (m *ShardMap) Partition(pts []points.Point) [][]points.Point {
	parts := make([][]points.Point, m.k)
	if len(pts) == 0 {
		return parts
	}
	buf := make([]byte, 0, points.EncodedSize(len(pts[0])))
	for _, pt := range pts {
		buf = points.Encode(buf[:0], pt)
		i := m.ShardOfEncoded(buf)
		parts[i] = append(parts[i], pt)
	}
	return parts
}

// shardSep separates a base dataset name from its shard suffix. The
// suffix is "~i.k", e.g. "events~3.16" is shard 3 of 16 of "events".
const shardSep = "~"

// ShardName returns the dataset name of shard i of k of base.
func ShardName(base string, i, k int) string {
	return fmt.Sprintf("%s%s%d.%d", base, shardSep, i, k)
}

// ParseShardName splits a shard dataset name into its base name and
// shard coordinates. ok is false for names without a well-formed shard
// suffix (including plain dataset names).
func ParseShardName(name string) (base string, i, k int, ok bool) {
	cut := strings.LastIndex(name, shardSep)
	if cut < 0 {
		return "", 0, 0, false
	}
	dot := strings.LastIndex(name[cut:], ".")
	if dot < 0 {
		return "", 0, 0, false
	}
	dot += cut
	i64, err1 := strconv.Atoi(name[cut+len(shardSep) : dot])
	k64, err2 := strconv.Atoi(name[dot+1:])
	if err1 != nil || err2 != nil || k64 < 1 || i64 < 0 || i64 >= k64 {
		return "", 0, 0, false
	}
	return name[:cut], i64, k64, true
}
