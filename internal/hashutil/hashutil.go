// Package hashutil provides the deterministic, seedable hashing primitives
// that all sketches in this module share. Every reconciliation protocol
// here relies on "public coins": both parties derive identical hash
// functions from a shared 64-bit seed, so the functions in this package are
// fully deterministic given their seed and stable across runs, platforms
// and module versions (they are part of the wire contract).
//
// Three families are provided:
//
//   - SplitMix64: a fast full-avalanche 64-bit mixer, used for sub-seed
//     derivation and integer hashing.
//   - Hasher: a keyed byte-string hash (xxhash-style construction) used
//     for IBLT bucket selection and checksums.
//   - MultShift: a 2-universal multiply-shift family over 64-bit inputs,
//     used where the analysis wants pairwise independence.
package hashutil

import (
	"encoding/binary"
	"math/bits"
)

// SplitMix64 is Vigna's splitmix64 finalizer: a bijective full-avalanche
// mix of a 64-bit value. It is the root of all seed derivation here.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed deterministically derives an independent sub-seed from a
// parent seed and a domain-separation label. Protocols use distinct labels
// for the grid shift, each IBLT level, checksums, and estimators so that
// reusing one master seed never correlates the sketches.
func DeriveSeed(parent uint64, label string) uint64 {
	h := parent ^ 0x51_7c_c1_b7_27_22_0a_95
	for i := 0; i < len(label); i++ {
		h = SplitMix64(h ^ uint64(label[i]))
	}
	return SplitMix64(h)
}

// DeriveSeedN derives a numbered sub-seed, for families indexed by an
// integer (hash function i of an IBLT, stratum i of an estimator, ...).
func DeriveSeedN(parent uint64, label string, n int) uint64 {
	return SplitMix64(DeriveSeed(parent, label) ^ SplitMix64(uint64(n)*0x9e3779b97f4a7c15+1))
}

// Hasher is a keyed hash of byte strings to 64 bits. The construction is a
// seeded multiply-rotate compression over 8-byte lanes with a splitmix
// finalizer — the same shape as xxhash64, implemented from scratch so the
// module stays dependency-free. It is not cryptographic; it targets the
// uniformity the IBLT/estimator analyses assume for non-adversarial keys.
type Hasher struct {
	seed uint64
}

// NewHasher returns a Hasher keyed by seed.
func NewHasher(seed uint64) Hasher { return Hasher{seed: SplitMix64(seed)} }

const (
	prime1 = 0x9e3779b185ebca87
	prime2 = 0xc2b2ae3d27d4eb4f
	prime3 = 0x165667b19e3779f9
	prime4 = 0x85ebca77c2b2ae63
	prime5 = 0x27d4eb2f165667c5
)

// Hash returns the 64-bit hash of b under the hasher's key.
func (h Hasher) Hash(b []byte) uint64 {
	acc := h.seed + prime5 + uint64(len(b))
	for len(b) >= 8 {
		lane := binary.LittleEndian.Uint64(b)
		acc ^= bits.RotateLeft64(lane*prime2, 31) * prime1
		acc = bits.RotateLeft64(acc, 27)*prime1 + prime4
		b = b[8:]
	}
	if len(b) >= 4 {
		acc ^= uint64(binary.LittleEndian.Uint32(b)) * prime1
		acc = bits.RotateLeft64(acc, 23)*prime2 + prime3
		b = b[4:]
	}
	for _, c := range b {
		acc ^= uint64(c) * prime5
		acc = bits.RotateLeft64(acc, 11) * prime1
	}
	acc ^= acc >> 33
	acc *= prime2
	acc ^= acc >> 29
	acc *= prime3
	acc ^= acc >> 32
	return acc
}

// HashUint64 hashes a single 64-bit value under the hasher's key.
func (h Hasher) HashUint64(x uint64) uint64 {
	return SplitMix64(h.seed ^ SplitMix64(x))
}

// MultShift is Dietzfelbinger's multiply-add-shift hash family
// h(x) = ((a·x + b) mod 2^64) >> (64 − bits) with a odd, which is
// 2-approximately universal: Pr[h(x) = h(y)] ≤ 2/2^bits for x ≠ y.
type MultShift struct {
	a, b uint64 // a odd
	out  uint   // number of output bits, 1..64
}

// NewMultShift draws a member of the family from seed, producing out-bit
// values (1 ≤ out ≤ 64).
func NewMultShift(seed uint64, out uint) MultShift {
	if out < 1 {
		out = 1
	}
	if out > 64 {
		out = 64
	}
	a := SplitMix64(seed) | 1 // multiplier must be odd
	b := SplitMix64(seed ^ 0xdeadbeefcafef00d)
	return MultShift{a: a, b: b, out: out}
}

// Hash maps x to an out-bit value.
func (m MultShift) Hash(x uint64) uint64 {
	return (m.a*x + m.b) >> (64 - m.out)
}

// Bits returns the number of output bits.
func (m MultShift) Bits() uint { return m.out }
