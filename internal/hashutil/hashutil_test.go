package hashutil

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownVectors(t *testing.T) {
	// Reference values from the canonical splitmix64 (Vigna), seed stepping
	// from 0: the first outputs for inputs 0,1,2 are fixed by the algorithm.
	got0 := SplitMix64(0)
	got1 := SplitMix64(1)
	if got0 == 0 || got1 == 0 || got0 == got1 {
		t.Fatalf("degenerate outputs: %x %x", got0, got1)
	}
	// The canonical first output of splitmix64 with state 0 is
	// 0xE220A8397B1DCDAF.
	if got0 != 0xE220A8397B1DCDAF {
		t.Errorf("SplitMix64(0) = %#x, want 0xE220A8397B1DCDAF", got0)
	}
}

func TestSplitMix64Bijective(t *testing.T) {
	// Injectivity spot check over a window; splitmix64 is a bijection.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := SplitMix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: SplitMix64(%d) == SplitMix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestDeriveSeedDomainSeparation(t *testing.T) {
	a := DeriveSeed(12345, "grid/shift")
	b := DeriveSeed(12345, "iblt/bucket")
	c := DeriveSeed(54321, "grid/shift")
	if a == b || a == c || b == c {
		t.Errorf("derived seeds collide: %x %x %x", a, b, c)
	}
	if a != DeriveSeed(12345, "grid/shift") {
		t.Error("DeriveSeed not deterministic")
	}
}

func TestDeriveSeedN(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeedN(99, "lvl", i)
		if j, ok := seen[s]; ok {
			t.Fatalf("DeriveSeedN collision between %d and %d", i, j)
		}
		seen[s] = i
	}
}

func TestHasherDeterminism(t *testing.T) {
	h1 := NewHasher(7)
	h2 := NewHasher(7)
	h3 := NewHasher(8)
	msg := []byte("the quick brown fox jumps over the lazy dog")
	if h1.Hash(msg) != h2.Hash(msg) {
		t.Error("same seed must give same hash")
	}
	if h1.Hash(msg) == h3.Hash(msg) {
		t.Error("different seeds should give different hashes")
	}
}

func TestHasherLengthSensitivity(t *testing.T) {
	// Prefixes of each other must not collide (length is mixed in).
	h := NewHasher(1)
	buf := make([]byte, 64)
	seen := map[uint64]int{}
	for n := 0; n <= 64; n++ {
		v := h.Hash(buf[:n])
		if m, ok := seen[v]; ok {
			t.Fatalf("zero-prefix collision between lengths %d and %d", n, m)
		}
		seen[v] = n
	}
}

func TestHasherAllLanePaths(t *testing.T) {
	// Exercise the 8-byte, 4-byte, and tail paths for every length 0..33
	// and verify single-bit flips change the hash.
	h := NewHasher(1234)
	rng := rand.New(rand.NewPCG(5, 6))
	for n := 1; n <= 33; n++ {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Uint32())
		}
		orig := h.Hash(b)
		for bit := 0; bit < 8*n; bit += 7 {
			b[bit/8] ^= 1 << (bit % 8)
			if h.Hash(b) == orig {
				t.Fatalf("len=%d: flipping bit %d did not change hash", n, bit)
			}
			b[bit/8] ^= 1 << (bit % 8)
		}
	}
}

func TestHasherUniformityChiSquare(t *testing.T) {
	// Bucket 64k sequential keys into 256 buckets; a decent hash keeps the
	// chi-square statistic near its mean of 255.
	h := NewHasher(42)
	const n, buckets = 1 << 16, 256
	counts := make([]int, buckets)
	var key [8]byte
	for i := 0; i < n; i++ {
		key[0], key[1], key[2], key[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
		counts[h.Hash(key[:])%buckets]++
	}
	expected := float64(n) / buckets
	chi := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi += d * d / expected
	}
	// 255 degrees of freedom: mean 255, stddev ≈ 22.6. Allow 6 sigma.
	if chi > 255+6*22.6 {
		t.Errorf("chi-square %.1f too high for uniform hash", chi)
	}
}

func TestHashUint64(t *testing.T) {
	h := NewHasher(11)
	if h.HashUint64(1) == h.HashUint64(2) {
		t.Error("trivial collision")
	}
	if h.HashUint64(1) != h.HashUint64(1) {
		t.Error("not deterministic")
	}
}

func TestMultShiftRange(t *testing.T) {
	for _, bits := range []uint{1, 8, 16, 32, 63, 64} {
		m := NewMultShift(77, bits)
		if m.Bits() != bits {
			t.Fatalf("Bits() = %d, want %d", m.Bits(), bits)
		}
		limit := uint64(math.MaxUint64)
		if bits < 64 {
			limit = 1<<bits - 1
		}
		f := func(x uint64) bool { return m.Hash(x) <= limit }
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("bits=%d: %v", bits, err)
		}
	}
}

func TestMultShiftClampsBits(t *testing.T) {
	if NewMultShift(1, 0).Bits() != 1 {
		t.Error("out=0 should clamp to 1")
	}
	if NewMultShift(1, 100).Bits() != 64 {
		t.Error("out=100 should clamp to 64")
	}
}

func TestMultShiftPairwiseCollisions(t *testing.T) {
	// Empirical 2-universality: for random distinct pairs, collision rate
	// over random family members should be ≈ 2^-bits.
	const bits = 10
	rng := rand.New(rand.NewPCG(1, 9))
	trials, collisions := 200000, 0
	x, y := rng.Uint64(), rng.Uint64()
	for i := 0; i < trials; i++ {
		m := NewMultShift(rng.Uint64(), bits)
		if m.Hash(x) == m.Hash(y) {
			collisions++
		}
	}
	rate := float64(collisions) / float64(trials)
	want := 1.0 / (1 << bits)
	if rate > 4*want {
		t.Errorf("collision rate %.5f far above 2/2^bits %.5f", rate, want)
	}
}
