package poly

import (
	"math/rand/v2"
	"testing"

	"robustset/internal/gf"
)

func BenchmarkMulDeg64(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	p := randPoly(rng, 64)
	q := randPoly(rng, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(p, q)
	}
}

func BenchmarkRoots32(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 2))
	roots := make([]gf.Elem, 32)
	for i := range roots {
		roots[i] = gf.New(rng.Uint64())
	}
	p := FromRoots(roots)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := Roots(p, uint64(i))
		if err != nil || len(got) != 32 {
			b.Fatalf("roots: %d, %v", len(got), err)
		}
	}
}

func BenchmarkRationalInterpolate32(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 3))
	p0 := randPoly(rng, 16)
	q0 := Monic(randPoly(rng, 16))
	m := 33
	xs := make([]gf.Elem, m)
	rs := make([]gf.Elem, m)
	for i := 0; i < m; i++ {
		xs[i] = gf.New(uint64(1000 + 7*i))
		rs[i] = gf.Div(p0.Eval(xs[i]), q0.Eval(xs[i]))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RationalInterpolate(xs, rs, 16, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalDeg64x64(b *testing.B) {
	rng := rand.New(rand.NewPCG(4, 4))
	p := randPoly(rng, 64)
	xs := make([]gf.Elem, 64)
	for i := range xs {
		xs[i] = gf.New(rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			p.Eval(x)
		}
	}
}

func BenchmarkEvalManyDeg64x64(b *testing.B) {
	rng := rand.New(rand.NewPCG(4, 4))
	p := randPoly(rng, 64)
	xs := make([]gf.Elem, 64)
	for i := range xs {
		xs[i] = gf.New(rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalMany(p, xs)
	}
}

func BenchmarkGFMul(b *testing.B) {
	x := gf.New(0x123456789abcdef)
	y := gf.New(0xfedcba987654321)
	var acc gf.Elem = 1
	for i := 0; i < b.N; i++ {
		acc = gf.Mul(acc, x)
		acc = gf.Add(acc, y)
	}
	if acc == 0 {
		b.Fatal("degenerate")
	}
}
