package poly

import (
	"math/rand/v2"
	"testing"

	"robustset/internal/gf"
)

func randPoly(rng *rand.Rand, deg int) Poly {
	p := make(Poly, deg+1)
	for i := range p {
		p[i] = gf.New(rng.Uint64())
	}
	if p[deg] == 0 {
		p[deg] = 1
	}
	return p
}

// TestEvalManyMatchesEval pins the blocked batch evaluator to the scalar
// Horner path over random polynomials, block-remainder lengths and the
// degenerate shapes (zero polynomial, constants, empty point list).
func TestEvalManyMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	polys := []Poly{nil, {}, {5}, randPoly(rng, 1), randPoly(rng, 7), randPoly(rng, 64)}
	for _, p := range polys {
		for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 33} {
			xs := make([]gf.Elem, n)
			for i := range xs {
				xs[i] = gf.New(rng.Uint64())
			}
			got := EvalMany(p, xs)
			if len(got) != n {
				t.Fatalf("EvalMany returned %d values for %d points", len(got), n)
			}
			for i, x := range xs {
				if want := p.Eval(x); got[i] != want {
					t.Fatalf("deg %d, %d points: EvalMany[%d] = %v, want %v", p.Degree(), n, i, got[i], want)
				}
			}
		}
	}
}

func TestCanonicalForm(t *testing.T) {
	p := Poly{1, 2, 0, 0}
	if p.Degree() != 1 {
		t.Errorf("degree = %d, want 1", p.Degree())
	}
	if !Equal(p, Poly{1, 2}) {
		t.Error("trailing zeros break equality")
	}
	var zero Poly
	if !zero.IsZero() || zero.Degree() != -1 || zero.Lead() != 0 {
		t.Error("zero polynomial invariants broken")
	}
	if NewConst(0) != nil {
		t.Error("NewConst(0) should be the zero polynomial")
	}
	if NewConst(7).Degree() != 0 {
		t.Error("NewConst(7) degree")
	}
}

func TestRingAxioms(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 100; i++ {
		a := randPoly(rng, rng.IntN(8))
		b := randPoly(rng, rng.IntN(8))
		c := randPoly(rng, rng.IntN(8))
		if !Equal(Add(a, b), Add(b, a)) {
			t.Fatal("addition not commutative")
		}
		if !Equal(Mul(a, b), Mul(b, a)) {
			t.Fatal("multiplication not commutative")
		}
		if !Equal(Mul(a, Add(b, c)), Add(Mul(a, b), Mul(a, c))) {
			t.Fatal("distributivity fails")
		}
		if !Equal(Sub(Add(a, b), b), a) {
			t.Fatal("(a+b)-b != a")
		}
		if !Equal(Mul(a, Poly{1}), a) {
			t.Fatal("1 not multiplicative identity")
		}
		if !Mul(a, nil).IsZero() {
			t.Fatal("a·0 != 0")
		}
	}
}

func TestMulDegree(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 50; i++ {
		da, db := rng.IntN(10), rng.IntN(10)
		a, b := randPoly(rng, da), randPoly(rng, db)
		if got := Mul(a, b).Degree(); got != da+db {
			t.Fatalf("deg(a·b) = %d, want %d", got, da+db)
		}
	}
}

func TestEval(t *testing.T) {
	// p(x) = 3 + 2x + x², p(5) = 3 + 10 + 25 = 38.
	p := Poly{3, 2, 1}
	if got := p.Eval(5); got != 38 {
		t.Errorf("p(5) = %v, want 38", got)
	}
	if got := Poly(nil).Eval(123); got != 0 {
		t.Errorf("zero(123) = %v, want 0", got)
	}
}

func TestEvalHomomorphism(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for i := 0; i < 100; i++ {
		a := randPoly(rng, rng.IntN(6))
		b := randPoly(rng, rng.IntN(6))
		x := gf.New(rng.Uint64())
		if Mul(a, b).Eval(x) != gf.Mul(a.Eval(x), b.Eval(x)) {
			t.Fatal("eval not multiplicative")
		}
		if Add(a, b).Eval(x) != gf.Add(a.Eval(x), b.Eval(x)) {
			t.Fatal("eval not additive")
		}
	}
}

func TestDivMod(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	for i := 0; i < 200; i++ {
		a := randPoly(rng, rng.IntN(12))
		b := randPoly(rng, rng.IntN(6))
		q, r, err := DivMod(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if r.Degree() >= b.Degree() {
			t.Fatalf("deg r = %d ≥ deg b = %d", r.Degree(), b.Degree())
		}
		if !Equal(Add(Mul(q, b), r), trim(a)) {
			t.Fatal("a != q·b + r")
		}
	}
	if _, _, err := DivMod(Poly{1}, nil); err == nil {
		t.Error("division by zero accepted")
	}
}

func TestDivModExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 50; i++ {
		a := randPoly(rng, 1+rng.IntN(5))
		b := randPoly(rng, 1+rng.IntN(5))
		prod := Mul(a, b)
		q, r, _ := DivMod(prod, b)
		if !r.IsZero() || !Equal(q, a) {
			t.Fatal("exact division failed")
		}
	}
}

func TestGCD(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	for i := 0; i < 50; i++ {
		g := Monic(randPoly(rng, 1+rng.IntN(3)))
		a := Mul(g, randPoly(rng, rng.IntN(4)))
		b := Mul(g, randPoly(rng, rng.IntN(4)))
		got := GCD(a, b)
		// g divides gcd(a,b).
		_, r, _ := DivMod(got, g)
		if !r.IsZero() {
			t.Fatalf("gcd %v does not contain common factor %v", got, g)
		}
		// gcd divides both.
		_, r1, _ := DivMod(a, got)
		_, r2, _ := DivMod(b, got)
		if !r1.IsZero() || !r2.IsZero() {
			t.Fatal("gcd does not divide inputs")
		}
		if got.Lead() != 1 {
			t.Fatal("gcd not monic")
		}
	}
	if GCD(nil, nil) != nil {
		t.Error("gcd(0,0) should be zero polynomial")
	}
}

func TestFromRootsAndEval(t *testing.T) {
	roots := []gf.Elem{3, 17, 12345}
	p := FromRoots(roots)
	if p.Degree() != 3 || p.Lead() != 1 {
		t.Fatalf("FromRoots degree %d lead %v", p.Degree(), p.Lead())
	}
	for _, r := range roots {
		if p.Eval(r) != 0 {
			t.Errorf("p(%v) != 0", r)
		}
	}
	if p.Eval(4) == 0 {
		t.Error("non-root evaluates to zero")
	}
}

func TestInterpolate(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 30; trial++ {
		deg := rng.IntN(8)
		p := randPoly(rng, deg)
		xs := make([]gf.Elem, deg+1)
		ys := make([]gf.Elem, deg+1)
		for i := range xs {
			xs[i] = gf.New(uint64(1000 + i*17))
			ys[i] = p.Eval(xs[i])
		}
		got, err := Interpolate(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(got, p) {
			t.Fatalf("interpolation did not invert evaluation: %v vs %v", got, p)
		}
	}
	if _, err := Interpolate([]gf.Elem{1, 1}, []gf.Elem{2, 3}); err == nil {
		t.Error("duplicate xs accepted")
	}
	if _, err := Interpolate([]gf.Elem{1}, []gf.Elem{2, 3}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestPowMod(t *testing.T) {
	m := Poly{1, 0, 1, 1} // x³ + x² + 1
	got := PowMod(X, 8, m)
	// Cross-check by repeated MulMod.
	want := Poly{1}
	for i := 0; i < 8; i++ {
		want = MulMod(want, X, m)
	}
	if !Equal(got, want) {
		t.Fatalf("PowMod: %v vs %v", got, want)
	}
	if PowMod(X, 0, m).Degree() != 0 {
		t.Error("x^0 mod m != 1")
	}
}

func TestDerivative(t *testing.T) {
	// d/dx (3 + 2x + 5x³) = 2 + 15x².
	p := Poly{3, 2, 0, 5}
	want := Poly{2, 0, 15}
	if !Equal(Derivative(p), want) {
		t.Errorf("derivative = %v, want %v", Derivative(p), want)
	}
	if Derivative(Poly{7}) != nil {
		t.Error("derivative of constant should be zero")
	}
}

func TestRootsOfProductOfLinears(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.IntN(12)
		want := make([]gf.Elem, 0, n)
		seen := map[gf.Elem]bool{}
		for len(want) < n {
			r := gf.New(rng.Uint64())
			if !seen[r] {
				seen[r] = true
				want = append(want, r)
			}
		}
		p := FromRoots(want)
		got, err := Roots(p, rng.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("recovered %d roots, want %d", len(got), n)
		}
		for _, r := range got {
			if !seen[r] {
				t.Fatalf("spurious root %v", r)
			}
		}
	}
}

func TestRootsIgnoresIrreducibleFactors(t *testing.T) {
	// x² + 1: −1 is a QR iff p ≡ 1 mod 4; p = 2^61−1 ≡ 3 mod 4, so x²+1
	// is irreducible and contributes no roots.
	p := Mul(Poly{1, 0, 1}, FromRoots([]gf.Elem{42}))
	got, err := Roots(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("roots = %v, want [42]", got)
	}
}

func TestRootsZeroPoly(t *testing.T) {
	if _, err := Roots(nil, 1); err == nil {
		t.Error("roots of zero polynomial accepted")
	}
	if r, err := Roots(Poly{5}, 1); err != nil || len(r) != 0 {
		t.Errorf("constant poly roots: %v %v", r, err)
	}
}

func TestRootsWithRepeatedRoots(t *testing.T) {
	// (x−9)²(x−4): distinct roots {4, 9}.
	p := Mul(FromRoots([]gf.Elem{9, 9}), FromRoots([]gf.Elem{4}))
	got, err := Roots(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 4 || got[1] != 9 {
		t.Fatalf("roots = %v, want [4 9]", got)
	}
}

func TestSolveLinearBasic(t *testing.T) {
	// 2x + y = 5; x + y = 3 → x = 2, y = 1.
	a := []gf.Elem{2, 1, 1, 1}
	b := []gf.Elem{5, 3}
	x, err := SolveLinear(a, b, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 2 || x[1] != 1 {
		t.Fatalf("solution %v, want [2 1]", x)
	}
}

func TestSolveLinearRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(10)
		a := make([]gf.Elem, n*n)
		for i := range a {
			a[i] = gf.New(rng.Uint64())
		}
		want := make([]gf.Elem, n)
		for i := range want {
			want[i] = gf.New(rng.Uint64())
		}
		b := make([]gf.Elem, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] = gf.Add(b[i], gf.Mul(a[i*n+j], want[j]))
			}
		}
		got, err := SolveLinear(a, b, n, n)
		if err != nil {
			t.Fatal(err)
		}
		// Verify A·got = b (random square systems are a.s. nonsingular, so
		// got should equal want, but verifying the residual is the robust
		// check).
		for i := 0; i < n; i++ {
			var s gf.Elem
			for j := 0; j < n; j++ {
				s = gf.Add(s, gf.Mul(a[i*n+j], got[j]))
			}
			if s != b[i] {
				t.Fatalf("residual row %d: %v != %v", i, s, b[i])
			}
		}
	}
}

func TestSolveLinearInconsistent(t *testing.T) {
	// x + y = 1; x + y = 2.
	a := []gf.Elem{1, 1, 1, 1}
	b := []gf.Elem{1, 2}
	if _, err := SolveLinear(a, b, 2, 2); err != ErrInconsistentSystem {
		t.Fatalf("want ErrInconsistentSystem, got %v", err)
	}
	if _, err := SolveLinear(a, b, 3, 2); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestSolveLinearUnderdetermined(t *testing.T) {
	// x + y = 7 with 1 equation, 2 unknowns: free var set to 0.
	a := []gf.Elem{1, 1}
	b := []gf.Elem{7}
	x, err := SolveLinear(a, b, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gf.Add(x[0], x[1]) != 7 {
		t.Fatalf("solution %v does not satisfy equation", x)
	}
}

func TestRationalInterpolate(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	for trial := 0; trial < 20; trial++ {
		dp, dq := rng.IntN(4), rng.IntN(4)
		p0 := randPoly(rng, dp)
		q0 := Monic(randPoly(rng, dq))
		m := dp + dq + 1
		xs := make([]gf.Elem, m)
		rs := make([]gf.Elem, m)
		for i := 0; i < m; i++ {
			xs[i] = gf.New(uint64(5000 + 31*i))
			qv := q0.Eval(xs[i])
			if qv == 0 {
				t.Skip("sample hit a pole; astronomically unlikely with fixed points")
			}
			rs[i] = gf.Div(p0.Eval(xs[i]), qv)
		}
		p, q, err := RationalInterpolate(xs, rs, dp, dq)
		if err != nil {
			t.Fatal(err)
		}
		// p/q must equal p0/q0 as rational functions: p·q0 == p0·q.
		if !Equal(Mul(p, q0), Mul(p0, q)) {
			t.Fatalf("rational interpolation wrong: (%v)/(%v) vs (%v)/(%v)", p, q, p0, q0)
		}
	}
}

func TestRationalInterpolateOverprovisioned(t *testing.T) {
	// True degrees (1,1) but interpolated with bounds (3,3): the result
	// must still reduce to the true rational function.
	p0 := Poly{5, 1}         // x + 5
	q0 := Poly{gf.Neg(2), 1} // x − 2
	dp, dq := 3, 3
	m := dp + dq + 1
	xs := make([]gf.Elem, m)
	rs := make([]gf.Elem, m)
	for i := 0; i < m; i++ {
		xs[i] = gf.New(uint64(99 + 7*i))
		rs[i] = gf.Div(p0.Eval(xs[i]), q0.Eval(xs[i]))
	}
	p, q, err := RationalInterpolate(xs, rs, dp, dq)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(Mul(p, q0), Mul(p0, q)) {
		t.Fatalf("overprovisioned interpolation wrong: %v / %v", p, q)
	}
	// Reduce via gcd and compare exactly.
	g := GCD(p, q)
	pr, _, _ := DivMod(p, g)
	qr, _, _ := DivMod(q, g)
	pr = Scale(pr, gf.Inv(qr.Lead()))
	qr = Monic(qr)
	if !Equal(qr, q0) || !Equal(pr, p0) {
		t.Fatalf("reduced form (%v)/(%v), want (%v)/(%v)", pr, qr, p0, q0)
	}
}

func TestRationalInterpolateValidation(t *testing.T) {
	if _, _, err := RationalInterpolate([]gf.Elem{1}, []gf.Elem{1, 2}, 0, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := RationalInterpolate([]gf.Elem{1}, []gf.Elem{1}, -1, 0); err == nil {
		t.Error("negative degree accepted")
	}
	if _, _, err := RationalInterpolate([]gf.Elem{1, 2}, []gf.Elem{1, 2}, 1, 1); err == nil {
		t.Error("insufficient samples accepted")
	}
}
