// Package poly implements dense univariate polynomial arithmetic over
// GF(2^61−1): the ring operations, evaluation, interpolation (including
// the rational-function interpolation at the heart of characteristic
// polynomial set reconciliation), and root finding over the field.
package poly

import (
	"errors"
	"fmt"

	"robustset/internal/gf"
)

// Poly is a polynomial with coefficients in ascending degree order.
// Canonical form has no trailing zero coefficients; the zero polynomial is
// the empty (or nil) slice. All functions return canonical polynomials and
// accept non-canonical input.
type Poly []gf.Elem

// X is the monomial x.
var X = Poly{0, 1}

// NewConst returns the constant polynomial c.
func NewConst(c gf.Elem) Poly {
	if c == 0 {
		return nil
	}
	return Poly{c}
}

// trim removes trailing zeros, returning canonical form.
func trim(p Poly) Poly {
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// Degree returns the degree, with −1 for the zero polynomial.
func (p Poly) Degree() int { return len(trim(p)) - 1 }

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(trim(p)) == 0 }

// Lead returns the leading coefficient (0 for the zero polynomial).
func (p Poly) Lead() gf.Elem {
	t := trim(p)
	if len(t) == 0 {
		return 0
	}
	return t[len(t)-1]
}

// Clone returns an independent canonical copy.
func (p Poly) Clone() Poly {
	t := trim(p)
	return append(Poly(nil), t...)
}

// Equal reports whether two polynomials are identical.
func Equal(a, b Poly) bool {
	a, b = trim(a), trim(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Add returns a + b.
func Add(a, b Poly) Poly {
	if len(b) > len(a) {
		a, b = b, a
	}
	out := make(Poly, len(a))
	copy(out, a)
	for i := range b {
		out[i] = gf.Add(out[i], b[i])
	}
	return trim(out)
}

// Sub returns a − b.
func Sub(a, b Poly) Poly {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(Poly, n)
	copy(out, a)
	for i := range b {
		out[i] = gf.Sub(out[i], b[i])
	}
	return trim(out)
}

// Scale returns c·p.
func Scale(p Poly, c gf.Elem) Poly {
	if c == 0 {
		return nil
	}
	out := make(Poly, len(p))
	for i, v := range p {
		out[i] = gf.Mul(v, c)
	}
	return trim(out)
}

// Mul returns a · b (schoolbook; degrees in this module stay small).
func Mul(a, b Poly) Poly {
	a, b = trim(a), trim(b)
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make(Poly, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] = gf.Add(out[i+j], gf.Mul(ai, bj))
		}
	}
	return trim(out)
}

// Eval returns p(x) by Horner's rule.
func (p Poly) Eval(x gf.Elem) gf.Elem {
	var acc gf.Elem
	for i := len(p) - 1; i >= 0; i-- {
		acc = gf.Add(gf.Mul(acc, x), p[i])
	}
	return acc
}

// EvalMany returns p(x) for every x in xs. Horner's rule is a serial
// dependency chain (each step's multiply waits on the previous one), so
// evaluating points one at a time leaves the multiplier idle; EvalMany
// runs the chains of four points at once through each coefficient block,
// which pipelines the independent multiplies and amortizes coefficient
// loads. Characteristic-polynomial reconciliation calls this for its
// sample-verification sweep.
func EvalMany(p Poly, xs []gf.Elem) []gf.Elem {
	out := make([]gf.Elem, len(xs))
	i := 0
	for ; i+4 <= len(xs); i += 4 {
		x0, x1, x2, x3 := xs[i], xs[i+1], xs[i+2], xs[i+3]
		var a0, a1, a2, a3 gf.Elem
		for j := len(p) - 1; j >= 0; j-- {
			c := p[j]
			a0 = gf.Add(gf.Mul(a0, x0), c)
			a1 = gf.Add(gf.Mul(a1, x1), c)
			a2 = gf.Add(gf.Mul(a2, x2), c)
			a3 = gf.Add(gf.Mul(a3, x3), c)
		}
		out[i], out[i+1], out[i+2], out[i+3] = a0, a1, a2, a3
	}
	for ; i < len(xs); i++ {
		out[i] = p.Eval(xs[i])
	}
	return out
}

// ErrDivisionByZero is returned by DivMod for a zero divisor.
var ErrDivisionByZero = errors.New("poly: division by zero polynomial")

// DivMod returns quotient and remainder with a = q·b + r, deg r < deg b.
func DivMod(a, b Poly) (q, r Poly, err error) {
	b = trim(b)
	if len(b) == 0 {
		return nil, nil, ErrDivisionByZero
	}
	r = a.Clone()
	db := len(b) - 1
	invLead := gf.Inv(b[db])
	if len(r) <= db {
		return nil, r, nil
	}
	q = make(Poly, len(r)-db)
	for len(r) > db {
		dr := len(r) - 1
		c := gf.Mul(r[dr], invLead)
		q[dr-db] = c
		for i := 0; i <= db; i++ {
			r[dr-db+i] = gf.Sub(r[dr-db+i], gf.Mul(c, b[i]))
		}
		r = trim(r[:dr])
	}
	return trim(q), trim(r), nil
}

// Monic returns p scaled so its leading coefficient is 1.
func Monic(p Poly) Poly {
	p = trim(p)
	if len(p) == 0 {
		return nil
	}
	return Scale(p, gf.Inv(p[len(p)-1]))
}

// GCD returns the monic greatest common divisor of a and b.
func GCD(a, b Poly) Poly {
	a, b = a.Clone(), b.Clone()
	for !b.IsZero() {
		_, r, err := DivMod(a, b)
		if err != nil {
			panic("poly: unreachable division by zero in gcd")
		}
		a, b = b, r
	}
	if a.IsZero() {
		return nil
	}
	return Monic(a)
}

// FromRoots returns the monic polynomial ∏ (x − r) over the given roots
// (with multiplicity).
func FromRoots(roots []gf.Elem) Poly {
	out := Poly{1}
	for _, r := range roots {
		out = Mul(out, Poly{gf.Neg(r), 1})
	}
	return out
}

// Interpolate returns the unique polynomial of degree < len(xs) through
// the points (xs[i], ys[i]). The xs must be distinct.
func Interpolate(xs, ys []gf.Elem) (Poly, error) {
	n := len(xs)
	if len(ys) != n {
		return nil, fmt.Errorf("poly: interpolate: %d xs vs %d ys", n, len(ys))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if xs[i] == xs[j] {
				return nil, fmt.Errorf("poly: interpolate: duplicate x %v", xs[i])
			}
		}
	}
	// Lagrange: Σ_i y_i · ∏_{j≠i} (x − x_j)/(x_i − x_j).
	out := Poly(nil)
	for i := 0; i < n; i++ {
		if ys[i] == 0 {
			continue
		}
		basis := Poly{1}
		denom := gf.Elem(1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			basis = Mul(basis, Poly{gf.Neg(xs[j]), 1})
			denom = gf.Mul(denom, gf.Sub(xs[i], xs[j]))
		}
		out = Add(out, Scale(basis, gf.Mul(ys[i], gf.Inv(denom))))
	}
	return out, nil
}

// MulMod returns a·b mod m.
func MulMod(a, b, m Poly) Poly {
	_, r, err := DivMod(Mul(a, b), m)
	if err != nil {
		panic("poly: zero modulus")
	}
	return r
}

// PowMod returns base^e mod m by square-and-multiply.
func PowMod(base Poly, e uint64, m Poly) Poly {
	if m.Degree() < 1 {
		panic("poly: PowMod modulus must have degree ≥ 1")
	}
	result := Poly{1}
	_, b, _ := DivMod(base, m)
	for e > 0 {
		if e&1 == 1 {
			result = MulMod(result, b, m)
		}
		b = MulMod(b, b, m)
		e >>= 1
	}
	return result
}

// Derivative returns p′.
func Derivative(p Poly) Poly {
	p = trim(p)
	if len(p) <= 1 {
		return nil
	}
	out := make(Poly, len(p)-1)
	for i := 1; i < len(p); i++ {
		out[i-1] = gf.Mul(p[i], gf.New(uint64(i)))
	}
	return trim(out)
}
