package poly

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"robustset/internal/gf"
)

// Roots returns the distinct roots of p in GF(2^61−1), in ascending order.
// The algorithm is the standard one: reduce to the product of distinct
// linear factors via gcd(p, x^q − x) (computed as gcd(p, (x^q mod p) − x)),
// then split it by probabilistic equal-degree factorization with
// gcd(g, (x+a)^((q−1)/2) − 1) for random shifts a. seed makes the
// splitting deterministic.
//
// Multiplicities are discarded; callers that need squarefree certification
// should compare len(roots) against Degree.
func Roots(p Poly, seed uint64) ([]gf.Elem, error) {
	p = Monic(p)
	switch p.Degree() {
	case -1:
		return nil, fmt.Errorf("poly: roots of the zero polynomial are the whole field")
	case 0:
		return nil, nil
	}
	// g := monic product of (x − r) over distinct roots r of p.
	xq := PowMod(X, gf.P, p) // x^q mod p
	g := GCD(p, Sub(xq, X))  // distinct linear factors
	if g.Degree() == 0 || g.IsZero() {
		return nil, nil
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	var roots []gf.Elem
	if err := splitLinear(g, rng, &roots, 0); err != nil {
		return nil, err
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	return roots, nil
}

// maxSplitDepth bounds the recursion; each successful split reduces degree
// and failures retry with fresh randomness, so depth beyond degree + retry
// slack indicates something is wrong.
const maxSplitDepth = 200

// splitLinear collects the roots of a monic product of distinct linear
// factors.
func splitLinear(g Poly, rng *rand.Rand, out *[]gf.Elem, depth int) error {
	switch g.Degree() {
	case 0:
		return nil
	case 1:
		// x + c ⇒ root −c.
		*out = append(*out, gf.Neg(g[0]))
		return nil
	}
	if depth > maxSplitDepth {
		return fmt.Errorf("poly: root splitting did not converge (degree %d residue)", g.Degree())
	}
	// Try random shifts until the gcd splits g properly. For a product of
	// distinct linear factors each attempt succeeds with probability
	// ≥ 1 − 2^(1−deg), so a handful of tries suffices.
	for attempt := 0; attempt < 64; attempt++ {
		a := gf.New(rng.Uint64())
		w := PowMod(Poly{a, 1}, (gf.P-1)/2, g) // (x+a)^((q−1)/2) mod g
		h := GCD(g, Sub(w, Poly{1}))
		if h.Degree() <= 0 || h.Degree() >= g.Degree() {
			continue
		}
		quot, rem, err := DivMod(g, h)
		if err != nil || !rem.IsZero() {
			return fmt.Errorf("poly: internal split error: %v", err)
		}
		if err := splitLinear(h, rng, out, depth+1); err != nil {
			return err
		}
		return splitLinear(Monic(quot), rng, out, depth+1)
	}
	return fmt.Errorf("poly: could not split degree-%d factor after 64 attempts", g.Degree())
}
