package poly

import (
	"errors"

	"robustset/internal/gf"
)

// ErrInconsistentSystem is returned by SolveLinear for unsolvable systems.
var ErrInconsistentSystem = errors.New("poly: inconsistent linear system")

// SolveLinear solves A·x = b over GF(2^61−1) by Gaussian elimination with
// partial pivoting (exact arithmetic, pivoting only for nonzero pivots).
// A is row-major with rows × cols entries; b has rows entries. When the
// system is underdetermined, free variables are set to zero and one valid
// solution is returned. It returns ErrInconsistentSystem when no solution
// exists.
//
// The rational interpolation of characteristic-polynomial reconciliation
// reduces to such a system, where underdetermination corresponds to the
// true difference being smaller than the provisioned capacity — any
// solution then carries a common polynomial factor that the caller
// removes with a gcd.
func SolveLinear(a []gf.Elem, b []gf.Elem, rows, cols int) ([]gf.Elem, error) {
	if len(a) != rows*cols || len(b) != rows {
		return nil, errors.New("poly: solve: dimension mismatch")
	}
	// Work on copies: callers reuse their buffers.
	m := append([]gf.Elem(nil), a...)
	rhs := append([]gf.Elem(nil), b...)

	pivotCol := make([]int, 0, rows) // column of the pivot in each pivot row
	row := 0
	for col := 0; col < cols && row < rows; col++ {
		// Find a nonzero pivot in this column at or below `row`.
		sel := -1
		for r := row; r < rows; r++ {
			if m[r*cols+col] != 0 {
				sel = r
				break
			}
		}
		if sel < 0 {
			continue // free column
		}
		if sel != row {
			for c := 0; c < cols; c++ {
				m[sel*cols+c], m[row*cols+c] = m[row*cols+c], m[sel*cols+c]
			}
			rhs[sel], rhs[row] = rhs[row], rhs[sel]
		}
		inv := gf.Inv(m[row*cols+col])
		for c := col; c < cols; c++ {
			m[row*cols+c] = gf.Mul(m[row*cols+c], inv)
		}
		rhs[row] = gf.Mul(rhs[row], inv)
		for r := 0; r < rows; r++ {
			if r == row || m[r*cols+col] == 0 {
				continue
			}
			f := m[r*cols+col]
			for c := col; c < cols; c++ {
				m[r*cols+c] = gf.Sub(m[r*cols+c], gf.Mul(f, m[row*cols+c]))
			}
			rhs[r] = gf.Sub(rhs[r], gf.Mul(f, rhs[row]))
		}
		pivotCol = append(pivotCol, col)
		row++
	}
	// Rows below the last pivot must have zero rhs, or the system is
	// inconsistent.
	for r := row; r < rows; r++ {
		if rhs[r] != 0 {
			return nil, ErrInconsistentSystem
		}
	}
	x := make([]gf.Elem, cols)
	for r, c := range pivotCol {
		x[c] = rhs[r]
	}
	return x, nil
}

// RationalInterpolate finds polynomials P (degree ≤ dp) and Q (monic,
// degree exactly dq) with P(x_i) = r_i · Q(x_i) at every sample, given
// m = dp + dq + 1 samples. This is Cauchy interpolation of the rational
// function P/Q; characteristic-polynomial reconciliation uses it with
// r_i = χ_A(x_i)/χ_B(x_i), whose reduced form reveals the two set
// differences. When the true degrees are lower than (dp, dq) the returned
// pair carries a common factor; callers divide it out via GCD.
func RationalInterpolate(xs, rs []gf.Elem, dp, dq int) (p, q Poly, err error) {
	m := len(xs)
	if len(rs) != m {
		return nil, nil, errors.New("poly: rational interpolate: xs/rs length mismatch")
	}
	if dp < 0 || dq < 0 {
		return nil, nil, errors.New("poly: rational interpolate: negative degree bound")
	}
	if m < dp+dq+1 {
		return nil, nil, errors.New("poly: rational interpolate: not enough samples")
	}
	// Unknowns: p_0..p_dp, then q_0..q_{dq-1} (q_dq = 1 fixed).
	cols := dp + 1 + dq
	a := make([]gf.Elem, m*cols)
	b := make([]gf.Elem, m)
	for i := 0; i < m; i++ {
		xp := gf.Elem(1)
		for j := 0; j <= dp; j++ {
			a[i*cols+j] = xp
			xp = gf.Mul(xp, xs[i])
		}
		xq := gf.Elem(1)
		for j := 0; j < dq; j++ {
			a[i*cols+dp+1+j] = gf.Neg(gf.Mul(rs[i], xq))
			xq = gf.Mul(xq, xs[i])
		}
		// xq is now x_i^dq; move the monic term to the rhs.
		b[i] = gf.Mul(rs[i], xq)
	}
	sol, err := SolveLinear(a, b, m, cols)
	if err != nil {
		return nil, nil, err
	}
	p = trim(append(Poly(nil), sol[:dp+1]...))
	q = make(Poly, dq+1)
	copy(q, sol[dp+1:])
	q[dq] = 1
	return p, q, nil
}
