// Package metrics is the module's lightweight observability registry:
// named counters, gauges and latency histograms that servers, clients
// and replicators increment on their hot paths (atomics, no allocation),
// exported as an expvar-style JSON document on an optional debug
// listener so smoke tests and dashboards can assert on real counters.
//
// Names are flat strings by convention "subsystem_quantity_unit", with
// per-dataset variants appending ":" and the dataset name
// (e.g. "server_sessions_total:sensors/a").
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 with a monotone-max helper.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// SetMax raises the gauge to n if n is larger — the "high-water mark"
// update pattern (e.g. most streams ever carried by one connection).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets are the upper bounds (seconds) of the latency histogram:
// powers of two from 1ms to ~65s plus +Inf, covering everything from a
// loopback session to a stalled round.
var histBuckets = func() []float64 {
	var b []float64
	for v := 0.001; v < 100; v *= 2 {
		b = append(b, v)
	}
	return append(b, math.Inf(1))
}()

// Histogram accumulates duration observations into fixed exponential
// buckets, plus count and sum, so percentile estimates survive the
// JSON round trip.
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	buckets []atomic.Int64
}

func newHistogram() *Histogram {
	return &Histogram{buckets: make([]atomic.Int64, len(histBuckets))}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
	s := d.Seconds()
	for i, ub := range histBuckets {
		if s <= ub {
			h.buckets[i].Add(1)
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Quantile estimates the q-th quantile (q in [0,1]) of the observed
// durations by locating the bucket holding the target rank and
// interpolating linearly inside it. The buckets are exponential, so the
// estimate is coarse but monotone and cheap — good enough for the p50
// and p99 the load harness and debug endpoint report. Observations that
// overflowed every finite bucket are credited the largest finite bound.
// Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range histBuckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			hi := histBuckets[i]
			lo := 0.0
			if i > 0 {
				lo = histBuckets[i-1]
			}
			if math.IsInf(hi, 1) {
				// No upper bound to interpolate toward; report the last
				// finite boundary rather than inventing a value.
				return secondsToDuration(lo)
			}
			frac := (rank - float64(cum)) / float64(n)
			return secondsToDuration(lo + (hi-lo)*frac)
		}
		cum += n
	}
	return secondsToDuration(histBuckets[len(histBuckets)-2])
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// snapshot renders the histogram for the JSON document.
func (h *Histogram) snapshot() map[string]any {
	buckets := make(map[string]int64, len(histBuckets))
	for i := range histBuckets {
		if n := h.buckets[i].Load(); n > 0 {
			key := "+inf"
			if !math.IsInf(histBuckets[i], 1) {
				key = fmt.Sprintf("%g", histBuckets[i])
			}
			buckets[key] = n
		}
	}
	return map[string]any{
		"count":      h.count.Load(),
		"sum_ns":     h.sumNs.Load(),
		"p50_ns":     h.Quantile(0.50).Nanoseconds(),
		"p99_ns":     h.Quantile(0.99).Nanoseconds(),
		"buckets_le": buckets,
	}
}

// Registry is a concurrent name → metric map. The zero value is not
// usable; construct with New. A nil *Registry is a valid no-op sink:
// Counter/Gauge/Histogram return metrics that are never exported, so
// instrumented code paths need no nil checks.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	gaugs map[string]*Gauge
	hists map[string]*Histogram
}

// New builds an empty registry.
func New() *Registry {
	return &Registry{
		ctrs:  make(map[string]*Counter),
		gaugs: make(map[string]*Gauge),
		hists: make(map[string]*Histogram),
	}
}

// Shared no-op sinks handed out by nil-Registry accessors. They absorb
// writes (harmless atomic bumps nobody reads) so the metrics-disabled
// serving path costs zero allocations per observation instead of a
// fresh object per accessor call.
var (
	noopCounter   = &Counter{}
	noopGauge     = &Gauge{}
	noopHistogram = newHistogram()
)

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return noopCounter
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return noopGauge
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gaugs[name]
	if !ok {
		g = &Gauge{}
		r.gaugs[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on first
// use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return noopHistogram
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Snapshot returns every counter and gauge as a flat name → value map
// (histograms are summarized as name_count / name_sum_ns /
// name_p50_ns / name_p99_ns) — the form assertions in tests and smoke
// runs consume.
func (r *Registry) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.ctrs {
		out[name] = c.Value()
	}
	for name, g := range r.gaugs {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name+"_count"] = h.Count()
		out[name+"_sum_ns"] = h.Sum().Nanoseconds()
		out[name+"_p50_ns"] = h.Quantile(0.50).Nanoseconds()
		out[name+"_p99_ns"] = h.Quantile(0.99).Nanoseconds()
	}
	return out
}

// WriteJSON renders the registry as one sorted-key JSON object:
// counters and gauges as numbers, histograms as
// {count, sum_ns, buckets_le}.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := make(map[string]any)
	if r != nil {
		r.mu.Lock()
		for name, c := range r.ctrs {
			doc[name] = c.Value()
		}
		for name, g := range r.gaugs {
			doc[name] = g.Value()
		}
		for name, h := range r.hists {
			doc[name] = h.snapshot()
		}
		r.mu.Unlock()
	}
	// Marshal through an ordered rendering so the document is diffable;
	// encoding/json sorts map keys, which is exactly the stability we
	// need.
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Handler returns the registry's debug handler: "/metrics" serves the
// Prometheus text exposition, "/debug/vars" (and, for back-compat,
// every other path) serves the expvar-style JSON document.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/metrics" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = r.WritePrometheus(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// Serve serves the debug endpoint on ln until the listener closes.
// Closing the listener is a complete shutdown: accepted keep-alive
// connections and their handler goroutines are reaped before Serve
// returns, so callers that `defer ln.Close()` leak nothing.
func (r *Registry) Serve(ln net.Listener) error {
	return ServeHandler(ln, r.Handler())
}

// ServeHandler serves h on ln with the debug-listener semantics Serve
// documents — the server may compose the registry handler with other
// debug endpoints (e.g. /debug/traces) on one listener.
func ServeHandler(ln net.Listener, h http.Handler) error {
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	err := srv.Serve(ln)
	// Serve returns once ln closes, but the http.Server still holds any
	// keep-alive connections a poller left open; Close reaps them.
	_ = srv.Close()
	return err
}

// sortedNames is kept for tests that want deterministic iteration.
func (r *Registry) sortedNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.ctrs)+len(r.gaugs)+len(r.hists))
	for n := range r.ctrs {
		names = append(names, n)
	}
	for n := range r.gaugs {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
