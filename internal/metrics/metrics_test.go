package metrics

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestCountersGaugesHistograms(t *testing.T) {
	r := New()
	r.Counter("sessions_total").Inc()
	r.Counter("sessions_total").Add(4)
	if got := r.Counter("sessions_total").Value(); got != 5 {
		t.Fatalf("counter: %d, want 5", got)
	}
	g := r.Gauge("streams_per_conn_max")
	g.SetMax(3)
	g.SetMax(9)
	g.SetMax(7) // must not lower
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge max: %d, want 9", got)
	}
	h := r.Histogram("round_seconds")
	h.Observe(2 * time.Millisecond)
	h.Observe(40 * time.Millisecond)
	h.Observe(3 * time.Second)
	if h.Count() != 3 {
		t.Fatalf("hist count: %d, want 3", h.Count())
	}
	if h.Sum() < 3*time.Second {
		t.Fatalf("hist sum too small: %v", h.Sum())
	}

	snap := r.Snapshot()
	if snap["sessions_total"] != 5 || snap["streams_per_conn_max"] != 9 || snap["round_seconds_count"] != 3 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if names := r.sortedNames(); len(names) != 3 {
		t.Fatalf("sortedNames: %v", names)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").SetMax(7)
	r.Histogram("z").Observe(time.Second)
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry exported values")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestNilRegistryAccessorsDoNotAllocate(t *testing.T) {
	var r *Registry
	if got := testing.AllocsPerRun(100, func() {
		r.Counter("c").Inc()
		r.Gauge("g").Set(1)
		r.Histogram("h").Observe(time.Millisecond)
	}); got != 0 {
		t.Fatalf("nil-registry accessors allocate %v objects per op, want 0", got)
	}
	// The accessors hand out shared singletons, not fresh objects.
	if r.Counter("a") != r.Counter("b") {
		t.Fatal("nil-registry counters are not shared")
	}
	if r.Gauge("a") != r.Gauge("b") {
		t.Fatal("nil-registry gauges are not shared")
	}
	if r.Histogram("a") != r.Histogram("b") {
		t.Fatal("nil-registry histograms are not shared")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 100 observations at ~3ms land in the (2ms, 4ms] bucket; the median
	// must interpolate inside it and the extremes must clamp to its
	// bounds.
	for i := 0; i < 100; i++ {
		h.Observe(3 * time.Millisecond)
	}
	p50 := h.Quantile(0.5)
	if p50 < 2*time.Millisecond || p50 > 4*time.Millisecond {
		t.Fatalf("p50 = %v, want within (2ms, 4ms]", p50)
	}
	if lo, hi := h.Quantile(-1), h.Quantile(2); lo < 2*time.Millisecond || hi > 4*time.Millisecond {
		t.Fatalf("clamped quantiles escaped the bucket: %v %v", lo, hi)
	}
	// A bimodal distribution: p50 stays in the low mode, p99 reaches the
	// high mode, and the estimate is monotone in q.
	h2 := newHistogram()
	for i := 0; i < 90; i++ {
		h2.Observe(3 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(3 * time.Second)
	}
	if p := h2.Quantile(0.5); p > 4*time.Millisecond {
		t.Fatalf("bimodal p50 = %v, want <= 4ms", p)
	}
	if p := h2.Quantile(0.99); p < 2*time.Second {
		t.Fatalf("bimodal p99 = %v, want >= 2s", p)
	}
	if h2.Quantile(0.5) > h2.Quantile(0.9) || h2.Quantile(0.9) > h2.Quantile(0.99) {
		t.Fatal("quantile estimate is not monotone in q")
	}
	// Overflow observations (past the last finite bucket) are credited
	// the largest finite bound, not +Inf.
	h3 := newHistogram()
	h3.Observe(10 * time.Minute)
	if p := h3.Quantile(0.99); p <= 0 || time.Duration(p) > 2*time.Minute {
		t.Fatalf("overflow quantile = %v, want the largest finite bound", p)
	}
}

func TestSnapshotExportsQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("round_seconds")
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond)
	}
	snap := r.Snapshot()
	if snap["round_seconds_p50_ns"] <= 0 || snap["round_seconds_p99_ns"] <= 0 {
		t.Fatalf("flat snapshot missing quantile keys: %+v", snap)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	hist := doc["round_seconds"]
	if hist["p50_ns"].(float64) <= 0 || hist["p99_ns"].(float64) <= 0 {
		t.Fatalf("JSON document missing p50_ns/p99_ns: %v", hist)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").SetMax(int64(j))
				r.Histogram("h").Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("concurrent counter: %d, want 8000", got)
	}
}

func TestJSONEndpoint(t *testing.T) {
	r := New()
	r.Counter("mux_decode_failures_total").Add(0)
	r.Counter("server_sessions_total").Add(12)
	r.Histogram("session_seconds").Observe(5 * time.Millisecond)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = r.Serve(ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("endpoint document is not JSON: %v\n%s", err, body)
	}
	if doc["server_sessions_total"].(float64) != 12 {
		t.Fatalf("endpoint sessions: %v", doc["server_sessions_total"])
	}
	hist, ok := doc["session_seconds"].(map[string]any)
	if !ok || hist["count"].(float64) != 1 {
		t.Fatalf("endpoint histogram: %v", doc["session_seconds"])
	}
}
