package metrics

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestCountersGaugesHistograms(t *testing.T) {
	r := New()
	r.Counter("sessions_total").Inc()
	r.Counter("sessions_total").Add(4)
	if got := r.Counter("sessions_total").Value(); got != 5 {
		t.Fatalf("counter: %d, want 5", got)
	}
	g := r.Gauge("streams_per_conn_max")
	g.SetMax(3)
	g.SetMax(9)
	g.SetMax(7) // must not lower
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge max: %d, want 9", got)
	}
	h := r.Histogram("round_seconds")
	h.Observe(2 * time.Millisecond)
	h.Observe(40 * time.Millisecond)
	h.Observe(3 * time.Second)
	if h.Count() != 3 {
		t.Fatalf("hist count: %d, want 3", h.Count())
	}
	if h.Sum() < 3*time.Second {
		t.Fatalf("hist sum too small: %v", h.Sum())
	}

	snap := r.Snapshot()
	if snap["sessions_total"] != 5 || snap["streams_per_conn_max"] != 9 || snap["round_seconds_count"] != 3 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if names := r.sortedNames(); len(names) != 3 {
		t.Fatalf("sortedNames: %v", names)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").SetMax(7)
	r.Histogram("z").Observe(time.Second)
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry exported values")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").SetMax(int64(j))
				r.Histogram("h").Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("concurrent counter: %d, want 8000", got)
	}
}

func TestJSONEndpoint(t *testing.T) {
	r := New()
	r.Counter("mux_decode_failures_total").Add(0)
	r.Counter("server_sessions_total").Add(12)
	r.Histogram("session_seconds").Observe(5 * time.Millisecond)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = r.Serve(ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("endpoint document is not JSON: %v\n%s", err, body)
	}
	if doc["server_sessions_total"].(float64) != 12 {
		t.Fatalf("endpoint sessions: %v", doc["server_sessions_total"])
	}
	hist, ok := doc["session_seconds"].(map[string]any)
	if !ok || hist["count"].(float64) != 1 {
		t.Fatalf("endpoint histogram: %v", doc["session_seconds"])
	}
}
