package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestSplitName(t *testing.T) {
	cases := []struct{ in, family, labels string }{
		{"server_conns_total", "server_conns_total", ""},
		{"server_sessions_total:sensors/a", "server_sessions_total", `dataset="sensors/a"`},
		{"replicator_sessions_total:peer=b,outcome=ok", "replicator_sessions_total", `peer="b",outcome="ok"`},
		{"session_wire_bytes_total:frame=STRATA,dir=in", "session_wire_bytes_total", `frame="STRATA",dir="in"`},
		// A dataset name containing '=' in only some chunks falls back to
		// the legacy whole-suffix dataset form.
		{"x_total:a=1,b", "x_total", `dataset="a=1,b"`},
	}
	for _, c := range cases {
		family, labels := splitName(c.in)
		if family != c.family || labels != c.labels {
			t.Errorf("splitName(%q) = %q, %q; want %q, %q", c.in, family, labels, c.family, c.labels)
		}
	}
}

func TestHistogramQuantilePinned(t *testing.T) {
	// A known distribution with exact interpolation answers. 100
	// observations at 1.5ms all land in the (1ms, 2ms] bucket, so
	// Quantile(q) must interpolate to exactly 1ms + q·1ms.
	h := newHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(1500 * time.Microsecond)
	}
	pin := func(got time.Duration, wantSec float64) {
		t.Helper()
		want := wantSec * 1e9
		if math.Abs(float64(got)-want) > want*1e-3 {
			t.Fatalf("quantile = %v, want %v ±0.1%%", got, time.Duration(want))
		}
	}
	pin(h.Quantile(0.5), 0.0015)
	pin(h.Quantile(0.99), 0.00199)
	pin(h.Quantile(1.0), 0.002)

	// Split across buckets with a gap: 50 in (1,2]ms, 50 in (4,8]ms.
	// p50 exhausts the first mode exactly (→ its upper bound 2ms); p75
	// is halfway through the second (→ 6ms).
	h2 := newHistogram()
	for i := 0; i < 50; i++ {
		h2.Observe(1500 * time.Microsecond)
		h2.Observe(5 * time.Millisecond)
	}
	pin(h2.Quantile(0.5), 0.002)
	pin(h2.Quantile(0.75), 0.006)
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("server_conns_total").Add(3)
	r.Counter("server_sessions_total:sensors/a").Add(7)
	r.Counter("replicator_sessions_total:peer=b,outcome=ok").Add(2)
	r.Gauge("server_mux_streams_per_conn_max").Set(16)
	h := r.Histogram("server_session_seconds")
	h.Observe(3 * time.Millisecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(70 * time.Second) // past the last finite bound → only +Inf grows

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE server_conns_total counter\nserver_conns_total 3\n",
		"# TYPE replicator_sessions_total counter\nreplicator_sessions_total{peer=\"b\",outcome=\"ok\"}",
		"# TYPE server_mux_streams_per_conn_max gauge\nserver_mux_streams_per_conn_max 16\n",
		`server_sessions_total{dataset="sensors/a"} 7`,
		"# TYPE server_session_seconds histogram",
		"server_session_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Labeled samples within a family must render the same label *set*;
	// splitName sorts nothing, so pin the literal order only where the
	// registered name fixes it.
	_ = out

	// The full cumulative bucket ladder: every configured boundary plus
	// +Inf must appear, counts must be monotone, and the +Inf bucket must
	// equal _count — the exposition-gap fix under test.
	var cum []int64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "server_session_seconds_bucket{le=") {
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			cum = append(cum, v)
		}
	}
	if len(cum) != len(histBuckets) {
		t.Fatalf("%d bucket lines, want every boundary (%d)", len(cum), len(histBuckets))
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative buckets not monotone: %v", cum)
		}
	}
	if cum[len(cum)-1] != 3 {
		t.Fatalf("+Inf bucket = %d, want _count = 3", cum[len(cum)-1])
	}
	if !strings.Contains(out, `server_session_seconds_bucket{le="+Inf"} 3`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	// 3ms + 3ms + 70s in seconds.
	if !strings.Contains(out, "server_session_seconds_sum 70.006") {
		t.Fatalf("sum not in seconds:\n%s", out)
	}

	// The writer's own output must pass the linter.
	if err := LintPrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition fails lint: %v\n%s", err, out)
	}

	// A nil registry renders an empty (but non-erroring) exposition.
	var nilReg *Registry
	buf.Reset()
	if err := nilReg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry exposition: %q", buf.String())
	}
}

func TestLintPrometheusRejects(t *testing.T) {
	cases := []struct{ name, in string }{
		{"no samples", "# TYPE a counter\n"},
		{"sample without TYPE", "a_total 3\n"},
		{"bad value", "# TYPE a counter\na bogus\n"},
		{"bad metric name", "# TYPE 9a counter\n9a 1\n"},
		{"bad label name", "# TYPE a counter\na{9b=\"x\"} 1\n"},
		{"unterminated labels", "# TYPE a counter\na{x=\"y\" 1\n"},
		{"unknown type", "# TYPE a banana\na 1\n"},
	}
	for _, c := range cases {
		if err := LintPrometheus(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: lint accepted %q", c.name, c.in)
		}
	}
	good := "# TYPE a counter\na{x=\"y,z=\\\"q\\\"\"} 1\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.5\nh_count 2\n"
	if err := LintPrometheus(strings.NewReader(good)); err != nil {
		t.Errorf("lint rejected valid exposition: %v", err)
	}
}

func TestHandlerPaths(t *testing.T) {
	r := New()
	r.Counter("server_conns_total").Inc()
	h := r.Handler()

	get := func(path string) (string, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Body.String(), rec.Header().Get("Content-Type")
	}
	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") || !strings.Contains(body, "# TYPE server_conns_total counter") {
		t.Fatalf("/metrics served %q (%s)", body, ct)
	}
	if err := LintPrometheus(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics fails lint: %v", err)
	}
	for _, path := range []string{"/debug/vars", "/", "/anything"} {
		body, ct := get(path)
		if ct != "application/json" {
			t.Fatalf("%s content type %q", path, ct)
		}
		var doc map[string]any
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("%s not JSON: %v", path, err)
		}
		if doc["server_conns_total"].(float64) != 1 {
			t.Fatalf("%s doc = %v", path, doc)
		}
	}
}
