package metrics

// Prometheus text-format exposition for the registry. The registry's
// flat names follow two labeling conventions, both using a ":"
// separator after the family name:
//
//	server_sessions_total:sensors/a          → {dataset="sensors/a"}
//	replicator_sessions_total:peer=b,outcome=ok → {peer="b",outcome="ok"}
//
// The suffix is parsed as an explicit k=v list only when every
// comma-separated chunk contains "="; otherwise the whole suffix is the
// legacy per-dataset form. Histograms render with their full cumulative
// `le` bucket boundaries (every configured bound plus +Inf, zero or
// not), `_sum` in seconds, and `_count` — so a scraper can recompute
// any quantile, which the JSON snapshot's p50/p99 summary cannot offer.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// promSample is one rendered sample line's worth of state.
type promSample struct {
	labels string // rendered {k="v",...} or ""
	value  string
}

// promFamily groups a metric family for exposition.
type promFamily struct {
	name    string
	typ     string // counter | gauge | histogram
	samples []promSample
	hists   []promHist
}

type promHist struct {
	labels  string
	buckets []int64 // cumulative, aligned with histBuckets
	count   int64
	sumSec  float64
}

// splitName separates a registered name into its family and rendered
// label set following the ":" conventions above.
func splitName(name string) (family, labels string) {
	i := strings.IndexByte(name, ':')
	if i < 0 {
		return name, ""
	}
	family, suffix := name[:i], name[i+1:]
	chunks := strings.Split(suffix, ",")
	explicit := true
	for _, c := range chunks {
		if !strings.Contains(c, "=") {
			explicit = false
			break
		}
	}
	// %q escapes `"` and `\` — the characters the text format requires
	// escaped in label values.
	var parts []string
	if explicit {
		for _, c := range chunks {
			kv := strings.SplitN(c, "=", 2)
			parts = append(parts, fmt.Sprintf("%s=%q", sanitizeLabelName(kv[0]), kv[1]))
		}
	} else {
		parts = append(parts, fmt.Sprintf("dataset=%q", suffix))
	}
	return family, strings.Join(parts, ",")
}

var labelNameClean = regexp.MustCompile(`[^a-zA-Z0-9_]`)

// sanitizeLabelName coerces a label key into the Prometheus charset.
func sanitizeLabelName(s string) string {
	s = labelNameClean.ReplaceAllString(s, "_")
	if s == "" || (s[0] >= '0' && s[0] <= '9') {
		s = "_" + s
	}
	return s
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, a
// `# TYPE` line per family, and histograms with full cumulative `le`
// buckets.
func (r *Registry) WritePrometheus(w io.Writer) error {
	fams := map[string]*promFamily{}
	get := func(name, typ string) *promFamily {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name, typ: typ}
			fams[name] = f
		}
		return f
	}
	if r != nil {
		r.mu.Lock()
		for name, c := range r.ctrs {
			fam, labels := splitName(name)
			f := get(fam, "counter")
			f.samples = append(f.samples, promSample{labels: labels, value: strconv.FormatInt(c.Value(), 10)})
		}
		for name, g := range r.gaugs {
			fam, labels := splitName(name)
			f := get(fam, "gauge")
			f.samples = append(f.samples, promSample{labels: labels, value: strconv.FormatInt(g.Value(), 10)})
		}
		for name, h := range r.hists {
			fam, labels := splitName(name)
			f := get(fam, "histogram")
			ph := promHist{labels: labels, count: h.count.Load(), sumSec: float64(h.sumNs.Load()) / 1e9}
			var cum int64
			for i := range histBuckets {
				cum += h.buckets[i].Load()
				ph.buckets = append(ph.buckets, cum)
			}
			f.hists = append(f.hists, ph)
		}
		r.mu.Unlock()
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, n := range names {
		f := fams[n]
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].labels < f.samples[j].labels })
		for _, s := range f.samples {
			if s.labels == "" {
				fmt.Fprintf(bw, "%s %s\n", f.name, s.value)
			} else {
				fmt.Fprintf(bw, "%s{%s} %s\n", f.name, s.labels, s.value)
			}
		}
		sort.Slice(f.hists, func(i, j int) bool { return f.hists[i].labels < f.hists[j].labels })
		for _, h := range f.hists {
			for i, ub := range histBuckets {
				le := "+Inf"
				if !math.IsInf(ub, 1) {
					le = strconv.FormatFloat(ub, 'g', -1, 64)
				}
				labels := fmt.Sprintf("le=%q", le)
				if h.labels != "" {
					labels = h.labels + "," + labels
				}
				fmt.Fprintf(bw, "%s_bucket{%s} %d\n", f.name, labels, h.buckets[i])
			}
			if h.labels == "" {
				fmt.Fprintf(bw, "%s_sum %g\n", f.name, h.sumSec)
				fmt.Fprintf(bw, "%s_count %d\n", f.name, h.count)
			} else {
				fmt.Fprintf(bw, "%s_sum{%s} %g\n", f.name, h.labels, h.sumSec)
				fmt.Fprintf(bw, "%s_count{%s} %d\n", f.name, h.labels, h.count)
			}
		}
	}
	return bw.Flush()
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// LintPrometheus is a promtool-style validity check over a text
// exposition: every non-comment line must be `name[{labels}] value`,
// every sample's family must have a preceding `# TYPE` declaration,
// names and label keys must match the Prometheus charset, and values
// must parse as floats. Returns the first violation.
func LintPrometheus(r io.Reader) error {
	types := map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	sawSample := false
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE comment: %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				if !promNameRe.MatchString(fields[2]) {
					return fmt.Errorf("line %d: invalid family name %q", lineNo, fields[2])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if !promNameRe.MatchString(name) {
			return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name {
				if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
					family = base
				}
				break
			}
		}
		if _, ok := types[family]; !ok {
			return fmt.Errorf("line %d: sample %q has no TYPE declaration", lineNo, name)
		}
		for _, l := range labels {
			if !promLabelRe.MatchString(l) {
				return fmt.Errorf("line %d: invalid label name %q", lineNo, l)
			}
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: invalid sample value %q", lineNo, value)
		}
		sawSample = true
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawSample {
		return fmt.Errorf("exposition contains no samples")
	}
	return nil
}

// parseSampleLine splits `name[{labels}] value [timestamp]` returning
// the metric name, the label keys, and the value literal.
func parseSampleLine(line string) (name string, labelKeys []string, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		rest = rest[i+1:]
		// Scan the label block respecting quoted values.
		var keys []string
		for {
			rest = strings.TrimLeft(rest, " ,")
			if rest == "" {
				return "", nil, "", fmt.Errorf("unterminated label block")
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, "", fmt.Errorf("label without '=' near %q", rest)
			}
			keys = append(keys, rest[:eq])
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, "", fmt.Errorf("unquoted label value near %q", rest)
			}
			// Find the closing quote, honoring backslash escapes.
			j := 1
			for j < len(rest) {
				if rest[j] == '\\' {
					j += 2
					continue
				}
				if rest[j] == '"' {
					break
				}
				j++
			}
			if j >= len(rest) {
				return "", nil, "", fmt.Errorf("unterminated label value")
			}
			rest = rest[j+1:]
		}
		labelKeys = keys
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", nil, "", fmt.Errorf("sample line without value: %q", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, "", fmt.Errorf("want `value [timestamp]`, got %q", strings.TrimSpace(rest))
	}
	return name, labelKeys, fields[0], nil
}
