package grid

import (
	"math"
	"math/rand/v2"
	"testing"

	"robustset/internal/points"
)

func testUniverse(d int, delta int64) points.Universe {
	return points.Universe{Dim: d, Delta: delta}
}

func randPoint(rng *rand.Rand, u points.Universe) points.Point {
	p := make(points.Point, u.Dim)
	for i := range p {
		p[i] = rng.Int64N(u.Delta)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(points.Universe{Dim: 0, Delta: 8}, 1); err == nil {
		t.Error("invalid universe accepted")
	}
	if _, err := New(points.Universe{Dim: 2, Delta: 7}, 1); err == nil {
		t.Error("non-power-of-two delta accepted")
	}
	g, err := New(testUniverse(2, 1<<10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Levels() != 10 {
		t.Errorf("Levels = %d, want 10", g.Levels())
	}
}

func TestDeterministicShift(t *testing.T) {
	u := testUniverse(3, 1<<16)
	g1, _ := New(u, 42)
	g2, _ := New(u, 42)
	g3, _ := New(u, 43)
	s1, s2, s3 := g1.Shift(), g2.Shift(), g3.Shift()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("same seed must give same shift")
		}
	}
	same := true
	for i := range s1 {
		if s1[i] != s3[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical shifts")
	}
	for _, s := range s1 {
		if s < 0 || s >= u.Delta {
			t.Errorf("shift %d out of [0,delta)", s)
		}
	}
}

func TestCellWidthHalvesPerLevel(t *testing.T) {
	g, _ := New(testUniverse(2, 1<<12), 5)
	if g.CellWidth(0) != 1<<12 {
		t.Errorf("level 0 width = %d", g.CellWidth(0))
	}
	for l := 1; l <= g.Levels(); l++ {
		if g.CellWidth(l)*2 != g.CellWidth(l-1) {
			t.Fatalf("width at level %d does not halve", l)
		}
	}
	if g.CellWidth(g.Levels()) != 1 {
		t.Errorf("finest width = %d, want 1", g.CellWidth(g.Levels()))
	}
}

func TestFinestLevelLossless(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	for _, d := range []int{1, 2, 5} {
		u := testUniverse(d, 1<<14)
		g, _ := New(u, rng.Uint64())
		for i := 0; i < 200; i++ {
			p := randPoint(rng, u)
			if got := g.Round(g.Levels(), p); !got.Equal(p) {
				t.Fatalf("d=%d: Round at finest level %v != %v", d, got, p)
			}
		}
	}
}

func TestCenterWithinCellRadius(t *testing.T) {
	// Every point's distance to its own cell center is at most the cell
	// radius at that level (in fact at most half of it, but the weaker
	// bound is the one the protocol analysis needs).
	rng := rand.New(rand.NewPCG(8, 8))
	u := testUniverse(3, 1<<10)
	g, _ := New(u, 77)
	for l := 0; l <= g.Levels(); l++ {
		w := g.CellWidth(l)
		for i := 0; i < 100; i++ {
			p := randPoint(rng, u)
			c := g.Round(l, p)
			if !u.Contains(c) {
				t.Fatalf("center %v outside universe", c)
			}
			if dist := points.L1.Distance(p, c); dist > points.CellRadius(points.L1, u.Dim, w) {
				t.Fatalf("level %d: center distance %v exceeds radius %v", l, dist, points.CellRadius(points.L1, u.Dim, w))
			}
		}
	}
}

func TestSameCellIffSameRounding(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	u := testUniverse(2, 1<<8)
	g, _ := New(u, 123)
	for i := 0; i < 500; i++ {
		p, q := randPoint(rng, u), randPoint(rng, u)
		l := rng.IntN(g.Levels() + 1)
		sameCell := g.Cell(l, p).Equal(g.Cell(l, q))
		sameRound := g.Round(l, p).Equal(g.Round(l, q))
		if sameCell != sameRound {
			t.Fatalf("cell equality %v != rounding equality %v (l=%d p=%v q=%v)", sameCell, sameRound, l, p, q)
		}
	}
}

func TestCellNesting(t *testing.T) {
	// Points sharing a cell at level l+1 must share the cell at level l:
	// the hierarchy is a tree.
	rng := rand.New(rand.NewPCG(6, 6))
	u := testUniverse(2, 1<<10)
	g, _ := New(u, 99)
	for i := 0; i < 500; i++ {
		p := randPoint(rng, u)
		q := randPoint(rng, u)
		for l := 0; l < g.Levels(); l++ {
			if g.Cell(l+1, p).Equal(g.Cell(l+1, q)) && !g.Cell(l, p).Equal(g.Cell(l, q)) {
				t.Fatalf("nesting violated at level %d for %v,%v", l, p, q)
			}
		}
	}
}

func TestLevelZeroSingleCellUnshifted(t *testing.T) {
	u := testUniverse(2, 1<<6)
	g, _ := Unshifted(u)
	rng := rand.New(rand.NewPCG(1, 1))
	c0 := g.Cell(0, points.Point{0, 0})
	for i := 0; i < 100; i++ {
		if !g.Cell(0, randPoint(rng, u)).Equal(c0) {
			t.Fatal("level 0 of an unshifted grid must be a single cell")
		}
	}
}

func TestEncodeDecodeCell(t *testing.T) {
	u := testUniverse(4, 1<<10)
	g, _ := New(u, 3)
	rng := rand.New(rand.NewPCG(3, 3))
	for i := 0; i < 100; i++ {
		c := g.Cell(rng.IntN(g.Levels()+1), randPoint(rng, u))
		b := g.EncodeCell(nil, c)
		if len(b) != g.EncodedCellSize() {
			t.Fatalf("encoded size %d != %d", len(b), g.EncodedCellSize())
		}
		got, err := g.DecodeCell(b)
		if err != nil || !got.Equal(c) {
			t.Fatalf("roundtrip failed: %v %v", got, err)
		}
	}
	if _, err := g.DecodeCell(make([]byte, 3)); err == nil {
		t.Error("short cell encoding accepted")
	}
}

// TestAppendCellMatchesEncodeCell pins the allocation-free cell encoder
// to the two-step Cell + EncodeCell composition across levels, dims and
// random shifted grids.
func TestAppendCellMatchesEncodeCell(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	for _, d := range []int{1, 2, 3, 5} {
		u := testUniverse(d, 1<<10)
		g, err := New(u, rng.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		for level := 0; level <= g.Levels(); level++ {
			for trial := 0; trial < 50; trial++ {
				p := randPoint(rng, u)
				want := g.EncodeCell(nil, g.Cell(level, p))
				got := g.AppendCell(nil, level, p)
				if string(got) != string(want) {
					t.Fatalf("dim %d level %d point %v: AppendCell %x, want %x", d, level, p, got, want)
				}
			}
		}
	}
}

func TestSeparationProbabilityEmpirical(t *testing.T) {
	// Over random shifts, the probability that a pair at l1 distance x is
	// separated at level l must not exceed min(1, x/w). Checked empirically
	// with 1-d pairs where the bound is tight.
	u := testUniverse(1, 1<<12)
	rng := rand.New(rand.NewPCG(10, 20))
	for _, dist := range []int64{1, 7, 64, 500} {
		for _, level := range []int{2, 4, 6} {
			sep := 0
			const trials = 4000
			for i := 0; i < trials; i++ {
				g, _ := New(u, rng.Uint64())
				x := rng.Int64N(u.Delta - dist)
				p, q := points.Point{x}, points.Point{x + dist}
				if !g.Cell(level, p).Equal(g.Cell(level, q)) {
					sep++
				}
			}
			bound := g0bound(u, level, float64(dist))
			rate := float64(sep) / trials
			// Allow generous sampling noise above the bound.
			if rate > bound+0.03 {
				t.Errorf("dist=%d level=%d: separation rate %.3f exceeds bound %.3f", dist, level, rate, bound)
			}
		}
	}
}

func g0bound(u points.Universe, level int, dist float64) float64 {
	g, _ := Unshifted(u)
	return g.SeparationProbabilityBound(level, dist)
}

func TestSeparationBoundShape(t *testing.T) {
	u := testUniverse(2, 1<<10)
	g, _ := New(u, 5)
	if b := g.SeparationProbabilityBound(0, 1e12); b != 1 {
		t.Errorf("bound should clamp to 1, got %v", b)
	}
	b1 := g.SeparationProbabilityBound(3, 10)
	b2 := g.SeparationProbabilityBound(4, 10)
	if !(b1 < b2) {
		t.Errorf("finer level must have larger separation bound: %v vs %v", b1, b2)
	}
	if math.Abs(b2/b1-2) > 1e-9 {
		t.Errorf("bound should double per level: %v vs %v", b1, b2)
	}
}

func TestPanicsOnBadArguments(t *testing.T) {
	g, _ := New(testUniverse(2, 1<<4), 1)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("level too high", func() { g.Cell(99, points.Point{0, 0}) })
	mustPanic("negative level", func() { g.CellWidth(-1) })
	mustPanic("dim mismatch", func() { g.Cell(1, points.Point{0}) })
	mustPanic("center dim mismatch", func() { g.Center(1, Cell{0}) })
}
