package grid

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"robustset/internal/points"
)

// TestRoundIdempotent: rounding is a projection — applying it twice at
// the same level changes nothing.
func TestRoundIdempotent(t *testing.T) {
	u := testUniverse(3, 1<<10)
	g, _ := New(u, 31)
	f := func(a, b, c uint16, lvl uint8) bool {
		p := points.Point{int64(a) % u.Delta, int64(b) % u.Delta, int64(c) % u.Delta}
		l := int(lvl) % (g.Levels() + 1)
		once := g.Round(l, p)
		twice := g.Round(l, once)
		return twice.Equal(once)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRoundContractive: rounding never moves a point more than the cell
// radius, and rounding at a finer level never moves it further than at a
// coarser one by more than that radius (the hierarchy is nested).
func TestRoundContractive(t *testing.T) {
	u := testUniverse(2, 1<<12)
	rng := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 300; trial++ {
		g, _ := New(u, rng.Uint64())
		p := randPoint(rng, u)
		for l := 0; l <= g.Levels(); l++ {
			r := g.Round(l, p)
			if d := points.LInf.Distance(p, r); d >= float64(g.CellWidth(l)) {
				t.Fatalf("level %d: rounded point moved %v ≥ cell width %d", l, d, g.CellWidth(l))
			}
		}
	}
}

// TestShiftInvariantCollisions: whether two points collide depends only
// on their difference vector's interaction with the shift, so
// translating BOTH points by the same vector preserves expected
// collision rates. Verified by comparing collision counts over many
// seeds for a pair and its translate.
func TestShiftInvariantCollisions(t *testing.T) {
	u := testUniverse(1, 1<<12)
	p1, q1 := points.Point{100}, points.Point{135}
	p2, q2 := points.Point{2000}, points.Point{2035} // same gap, translated
	level := 5
	const trials = 3000
	coll1, coll2 := 0, 0
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < trials; i++ {
		g, _ := New(u, rng.Uint64())
		if g.Cell(level, p1).Equal(g.Cell(level, q1)) {
			coll1++
		}
		if g.Cell(level, p2).Equal(g.Cell(level, q2)) {
			coll2++
		}
	}
	diff := float64(coll1-coll2) / trials
	if diff < -0.05 || diff > 0.05 {
		t.Errorf("collision rates differ by %.3f for translated pairs (%d vs %d)", diff, coll1, coll2)
	}
}
