// Package grid implements the randomly shifted hierarchical grid — the
// "randomly offset quadtree" of the SIGMOD 2014 robust set reconciliation
// paper — over a discretized universe [Δ]^d.
//
// A Grid has L+1 levels, Δ = 2^L. Level ℓ partitions space into axis-
// aligned cells of width w_ℓ = Δ/2^ℓ: level 0 is a single cell covering
// everything, level L has width-1 cells, so rounding at level L is
// lossless. The whole hierarchy is translated by one random shift vector
// s ∈ [0,Δ)^d derived from a public seed, which is what makes the expected
// separation probability of a close pair proportional to its distance —
// the property the protocol's EMD analysis rests on.
package grid

import (
	"encoding/binary"
	"fmt"
	"math/rand/v2"

	"robustset/internal/hashutil"
	"robustset/internal/points"
)

// Cell identifies a grid cell at some level by its integer coordinates
// along each axis. Two points share a cell at level ℓ iff their Cell values
// at ℓ are equal. Cell coordinates are non-negative and < 2^(ℓ+1) (the
// shift can push points into one extra cell row past 2^ℓ).
type Cell []int64

// Equal reports whether two cells are identical.
func (c Cell) Equal(o Cell) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// Grid is a randomly shifted hierarchy of grids over a universe. Grids are
// immutable after construction and safe for concurrent use.
type Grid struct {
	u     points.Universe
	shift []int64 // per-axis shift in [0, Delta)
	lvls  int     // L = log2(Delta); levels are 0..L inclusive
}

// New constructs the grid for universe u with the shift drawn
// deterministically from seed. Both reconciliation parties must construct
// the grid from the same universe and seed (public coins).
func New(u points.Universe, seed uint64) (*Grid, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(hashutil.DeriveSeed(seed, "grid/shift/hi"),
		hashutil.DeriveSeed(seed, "grid/shift/lo")))
	shift := make([]int64, u.Dim)
	for i := range shift {
		shift[i] = rng.Int64N(u.Delta)
	}
	return &Grid{u: u, shift: shift, lvls: u.Levels()}, nil
}

// Unshifted constructs a grid with a zero shift vector. It exists for tests
// and for deterministic geometry experiments; protocols should always use
// New so the analysis's randomness assumption holds.
func Unshifted(u points.Universe) (*Grid, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return &Grid{u: u, shift: make([]int64, u.Dim), lvls: u.Levels()}, nil
}

// Universe returns the universe the grid partitions.
func (g *Grid) Universe() points.Universe { return g.u }

// Levels returns L = log2(Δ). Valid level arguments are 0..Levels().
func (g *Grid) Levels() int { return g.lvls }

// Shift returns a copy of the grid's shift vector.
func (g *Grid) Shift() []int64 {
	s := make([]int64, len(g.shift))
	copy(s, g.shift)
	return s
}

// CellWidth returns w_ℓ = Δ >> ℓ.
func (g *Grid) CellWidth(level int) int64 {
	g.checkLevel(level)
	return g.u.Delta >> uint(level)
}

func (g *Grid) checkLevel(level int) {
	if level < 0 || level > g.lvls {
		panic(fmt.Sprintf("grid: level %d out of range [0,%d]", level, g.lvls))
	}
}

// Cell returns the cell containing p at the given level. p must lie in the
// grid's universe.
func (g *Grid) Cell(level int, p points.Point) Cell {
	g.checkLevel(level)
	if len(p) != g.u.Dim {
		panic(fmt.Sprintf("grid: point dimension %d != universe dimension %d", len(p), g.u.Dim))
	}
	w := g.u.Delta >> uint(level)
	c := make(Cell, g.u.Dim)
	for i, x := range p {
		c[i] = (x + g.shift[i]) / w
	}
	return c
}

// Center returns the representative point for a cell at a level: the cell's
// geometric center mapped back into raw coordinates and clamped into the
// universe. At level Levels() (width-1 cells) the center is exactly the
// unique point of the cell, making the finest level lossless.
func (g *Grid) Center(level int, c Cell) points.Point {
	g.checkLevel(level)
	if len(c) != g.u.Dim {
		panic(fmt.Sprintf("grid: cell dimension %d != universe dimension %d", len(c), g.u.Dim))
	}
	w := g.u.Delta >> uint(level)
	p := make(points.Point, g.u.Dim)
	for i, ci := range c {
		// Cell ci spans shifted coordinates [ci*w, (ci+1)*w), i.e. raw
		// coordinates [ci*w - shift, (ci+1)*w - shift). Its center is
		// ci*w + w/2 - shift (for w=1 the "+w/2" vanishes and the center is
		// the cell's unique raw coordinate).
		p[i] = ci*w + w/2 - g.shift[i]
	}
	return g.u.Clamp(p)
}

// Round maps a point to the center of its cell at the given level — the
// paper's rounding operation.
func (g *Grid) Round(level int, p points.Point) points.Point {
	return g.Center(level, g.Cell(level, p))
}

// AppendCell appends the canonical encoding of the cell containing p at
// the given level directly to dst — byte-identical to
// g.EncodeCell(dst, g.Cell(level, p)) without materializing the Cell.
// Sketch construction calls this once per point per level, so it must
// not allocate: Δ is a power of two, so the cell coordinate is a shift
// of the non-negative shifted coordinate.
func (g *Grid) AppendCell(dst []byte, level int, p points.Point) []byte {
	g.checkLevel(level)
	if len(p) != g.u.Dim {
		panic(fmt.Sprintf("grid: point dimension %d != universe dimension %d", len(p), g.u.Dim))
	}
	sh := uint(g.lvls - level) // cell width w_ℓ = Δ>>ℓ = 2^(L−ℓ)
	for i, x := range p {
		dst = binary.LittleEndian.AppendUint64(dst, uint64((x+g.shift[i])>>sh))
	}
	return dst
}

// Dim returns the dimensionality of the grid's universe.
func (g *Grid) Dim() int { return g.u.Dim }

// EncodedCellSize returns the byte length of EncodeCell output for this
// grid: 8 bytes per dimension.
func (g *Grid) EncodedCellSize() int { return 8 * g.u.Dim }

// EncodeCell appends the canonical fixed-width encoding of a cell to dst.
// The encoding is the IBLT key material for the robust protocol.
func (g *Grid) EncodeCell(dst []byte, c Cell) []byte {
	for _, ci := range c {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(ci))
	}
	return dst
}

// DecodeCell parses EncodeCell output.
func (g *Grid) DecodeCell(b []byte) (Cell, error) {
	if len(b) != g.EncodedCellSize() {
		return nil, fmt.Errorf("grid: decode cell: have %d bytes, want %d", len(b), g.EncodedCellSize())
	}
	c := make(Cell, g.u.Dim)
	for i := range c {
		c[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return c, nil
}

// SeparationProbabilityBound returns the standard upper bound, under the ℓ1
// metric, on the probability that two points at distance dist fall into
// different cells at the given level: min(1, dist/w_ℓ) per the union bound
// over axes (the per-axis separation probability of a randomly shifted
// width-w grid is |x_i - y_i|/w). It is exposed for tests and for the
// analysis-validation experiment.
func (g *Grid) SeparationProbabilityBound(level int, dist float64) float64 {
	w := float64(g.CellWidth(level))
	p := dist / w
	if p > 1 {
		return 1
	}
	return p
}
