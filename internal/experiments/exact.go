package experiments

import (
	"fmt"
	"time"

	"robustset/internal/baseline"
	"robustset/internal/core"
	"robustset/internal/points"
	"robustset/internal/protocol"
	"robustset/internal/workload"
)

// E8ExactBaselines regenerates the classic-regime table: with zero value
// noise (bit-identical pairs), how do the schemes compare as the true
// difference D grows? CPI should sit near the information-theoretic
// optimum (~8·D bytes of sketch), exact-IBLT within a small constant of
// it, the robust protocol within a log Δ factor (it still works, paying
// for resolutions it does not need), and naive flat at 16n.
func E8ExactBaselines(scale Scale) (*Table, error) {
	n := 4096
	diffs := []int{2, 8, 32, 128}
	if scale == ScaleQuick {
		n = 1024
		diffs = []int{8}
	}
	tbl := &Table{
		ID:      "E8",
		Title:   "exact regime: baseline comparison (zero noise)",
		Columns: []string{"outliers k (diff=2k)", "cpi", "exact-iblt", "robust-oneshot", "naive"},
		Notes: fmt.Sprintf("workload: n=%d, d=2, Δ=2^20, zero noise, k replaced points (2k total differences); every scheme ends with S'_B = S_A exactly.\n"+
			"expected shape: cpi ≈ 8·(2k)B + payloads (near-optimal); exact-iblt a small constant above it; robust pays the logΔ multiresolution factor; naive flat.", n),
	}
	for _, k := range diffs {
		inst := gen(workload.Config{
			N: n, Universe: defaultUniverse, Outliers: k,
			Noise: workload.NoiseNone, Seed: uint64(8000 + k),
		})
		params := core.Params{Universe: defaultUniverse, Seed: 7, DiffBudget: k}
		row := []string{fmt.Sprintf("%d", k)}
		for _, rec := range []baseline.Reconciler{
			baseline.CPISync{Config: protocol.CPIConfig{Universe: defaultUniverse, Seed: 13, Capacity: 2*k + 4}},
			baseline.ExactIBLT{Config: protocol.ExactConfig{Universe: defaultUniverse, Seed: 11}},
			baseline.RobustOneShot{Params: params},
			baseline.Naive{Universe: defaultUniverse},
		} {
			out, err := rec.Run(inst.Alice, inst.Bob)
			if err != nil {
				row = append(row, "fail")
				continue
			}
			cell := fmtBytes(out.BytesTransferred())
			if rec.Name() == "robust-oneshot" {
				// The robust protocol guarantees EMD-closeness, not
				// bit-equality: with zero noise it almost always decodes
				// at the lossless finest level (residual 0), but a rare
				// finest-level stall falls back one level and rounds by
				// ≤ 1 per coordinate. Report the residual instead of a
				// pass/fail flag.
				cell += fmt.Sprintf(" (EMD %.0f)", gridQuality(defaultUniverse, inst.Alice, out.SPrime))
			} else if !points.EqualMultisets(out.SPrime, inst.Alice) {
				cell += " (WRONG)"
			}
			row = append(row, cell)
		}
		tbl.AddRow(row...)
	}
	return tbl, nil
}

// E7Runtime regenerates the runtime table: wall-clock encode and
// reconcile times as n grows, for the robust one-shot protocol and exact
// IBLT sync. Both must scale linearly in n (hashing dominates), with
// decode cost tied to the difference, not to n.
func E7Runtime(scale Scale) (*Table, error) {
	k := 16
	ns := []int{1000, 4000, 16000, 64000}
	if scale == ScaleQuick {
		ns = []int{1000, 4000}
	}
	tbl := &Table{
		ID:      "E7",
		Title:   "runtime scaling",
		Columns: []string{"n", "robust encode", "robust reconcile", "exact-iblt total", "enc ns/point"},
		Notes: fmt.Sprintf("workload: k=%d, d=2, Δ=2^20, uniform noise ±4; single run per n (wall clock).\n"+
			"expected shape: encode and reconcile linear in n (the per-point cost column roughly flat).", k),
	}
	for _, n := range ns {
		inst := gen(workload.Config{
			N: n, Universe: defaultUniverse, Outliers: k,
			Noise: workload.NoiseUniform, Scale: 4, Seed: uint64(7000 + n),
		})
		params := core.Params{Universe: defaultUniverse, Seed: 7, DiffBudget: k}
		t0 := time.Now()
		sk, err := core.BuildSketch(params, inst.Alice)
		if err != nil {
			return nil, err
		}
		encode := time.Since(t0)
		t1 := time.Now()
		if _, err := core.Reconcile(sk, inst.Bob); err != nil {
			return nil, fmt.Errorf("n=%d: %w", n, err)
		}
		reconcile := time.Since(t1)
		t2 := time.Now()
		exact := baseline.ExactIBLT{Config: protocol.ExactConfig{Universe: defaultUniverse, Seed: 11}}
		if _, err := exact.Run(inst.Alice, inst.Bob); err != nil {
			return nil, fmt.Errorf("n=%d exact: %w", n, err)
		}
		exactTotal := time.Since(t2)
		tbl.AddRow(
			fmt.Sprintf("%d", n),
			encode.Round(time.Millisecond).String(),
			reconcile.Round(time.Millisecond).String(),
			exactTotal.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", encode.Nanoseconds()/int64(n)),
		)
	}
	return tbl, nil
}
