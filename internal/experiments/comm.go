package experiments

import (
	"fmt"

	"robustset/internal/baseline"
	"robustset/internal/core"
	"robustset/internal/protocol"
	"robustset/internal/workload"
)

// E1CommVsK regenerates the "communication vs k" figure: with n, d, Δ and
// noise fixed, the robust protocols' cost must grow linearly in the
// difference budget k while naive transfer is flat at Θ(n) and exact sync
// is stuck at Θ(n) because noise makes almost every pair differ.
func E1CommVsK(scale Scale) (*Table, error) {
	n := 4096
	ks := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	if scale == ScaleQuick {
		n = 1024
		ks = []int{4, 16, 64}
	}
	tbl := &Table{
		ID:      "E1",
		Title:   "communication vs difference budget k",
		Columns: []string{"k", "robust-oneshot", "robust-estimate", "exact-iblt", "naive"},
		Notes: fmt.Sprintf("workload: n=%d, d=%d, Δ=2^20, uniform noise ±4, k outliers; bytes are full-protocol totals incl. framing.\n"+
			"expected shape: robust columns grow ∝ k; naive flat at 16n; exact-iblt ≈ Θ(n) regardless of k (noise ⇒ ~2n differences).", n, defaultUniverse.Dim),
	}
	for _, k := range ks {
		inst := gen(workload.Config{
			N: n, Universe: defaultUniverse, Outliers: k,
			Noise: workload.NoiseUniform, Scale: 4, Seed: uint64(1000 + k),
		})
		params := core.Params{Universe: defaultUniverse, Seed: 7, DiffBudget: k}
		row := []string{fmt.Sprintf("%d", k)}
		for _, rec := range []baseline.Reconciler{
			baseline.RobustOneShot{Params: params},
			baseline.RobustEstimateFirst{Params: params},
			baseline.ExactIBLT{Config: protocol.ExactConfig{Universe: defaultUniverse, Seed: 11}},
			baseline.Naive{Universe: defaultUniverse},
		} {
			out, err := rec.Run(inst.Alice, inst.Bob)
			if err != nil {
				row = append(row, "fail")
				continue
			}
			row = append(row, fmtBytes(out.BytesTransferred()))
		}
		tbl.AddRow(row...)
	}
	return tbl, nil
}

// E2CommVsN regenerates the "communication vs n" figure: with k fixed,
// the robust protocols' cost must be flat in n while the comparators grow
// linearly — including the crossover point below which naive transfer is
// cheaper (the one-shot sketch costs O(k·logΔ) regardless of n).
func E2CommVsN(scale Scale) (*Table, error) {
	k := 16
	ns := []int{256, 512, 1024, 2048, 4096, 8192, 16384}
	if scale == ScaleQuick {
		ns = []int{512, 2048}
	}
	tbl := &Table{
		ID:      "E2",
		Title:   "communication vs set size n",
		Columns: []string{"n", "robust-oneshot", "robust-estimate", "exact-iblt", "naive"},
		Notes: fmt.Sprintf("workload: k=%d outliers, d=2, Δ=2^20, uniform noise ±4.\n"+
			"expected shape: robust columns ~flat in n; naive and exact-iblt linear; note the small-n regime where naive wins.", k),
	}
	for _, n := range ns {
		inst := gen(workload.Config{
			N: n, Universe: defaultUniverse, Outliers: k,
			Noise: workload.NoiseUniform, Scale: 4, Seed: uint64(2000 + n),
		})
		params := core.Params{Universe: defaultUniverse, Seed: 7, DiffBudget: k}
		row := []string{fmt.Sprintf("%d", n)}
		for _, rec := range []baseline.Reconciler{
			baseline.RobustOneShot{Params: params},
			baseline.RobustEstimateFirst{Params: params},
			baseline.ExactIBLT{Config: protocol.ExactConfig{Universe: defaultUniverse, Seed: 11}},
			baseline.Naive{Universe: defaultUniverse},
		} {
			out, err := rec.Run(inst.Alice, inst.Bob)
			if err != nil {
				row = append(row, "fail")
				continue
			}
			row = append(row, fmtBytes(out.BytesTransferred()))
		}
		tbl.AddRow(row...)
	}
	return tbl, nil
}
