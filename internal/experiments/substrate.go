package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"

	"robustset/internal/iblt"
	"robustset/internal/sketch"
)

// E5IBLTThreshold regenerates the substrate table: IBLT decode success as
// a function of the cells-per-key load factor, for each hash count. This
// validates the sizing constants every protocol in the module depends on
// and reproduces the classic sharp peeling threshold.
func E5IBLTThreshold(scale Scale) (*Table, error) {
	diff, trials := 64, 200
	alphas := []float64{1.1, 1.2, 1.3, 1.4, 1.5, 1.7, 2.0}
	qs := []int{3, 4, 5}
	if scale == ScaleQuick {
		diff, trials = 32, 40
		alphas = []float64{1.2, 1.5}
		qs = []int{4}
	}
	cols := []string{"cells/key α"}
	for _, q := range qs {
		cols = append(cols, fmt.Sprintf("q=%d success", q))
	}
	tbl := &Table{
		ID:      "E5",
		Title:   "IBLT decode threshold",
		Columns: cols,
		Notes: fmt.Sprintf("%d keys per table, %d trials per cell; success = full peeling.\n"+
			"expected shape: sharp rise near the asymptotic thresholds (1.22 for q=3, 1.30 for q=4, 1.43 for q=5) with finite-size softening; q=4 is the best small-table choice.", diff, trials),
	}
	rng := rand.New(rand.NewPCG(5, 5))
	for _, alpha := range alphas {
		row := []string{fmt.Sprintf("%.1f", alpha)}
		for _, q := range qs {
			cells := int(math.Ceil(alpha * float64(diff)))
			ok := 0
			for trial := 0; trial < trials; trial++ {
				t, err := iblt.New(iblt.Config{Cells: cells, HashCount: q, KeyLen: 16, Seed: rng.Uint64()})
				if err != nil {
					return nil, err
				}
				for i := 0; i < diff; i++ {
					var key [16]byte
					u, v := rng.Uint64(), rng.Uint64()
					for j := 0; j < 8; j++ {
						key[j] = byte(u >> (8 * j))
						key[8+j] = byte(v >> (8 * j))
					}
					t.Insert(key[:])
				}
				if _, err := t.Decode(); err == nil {
					ok++
				}
			}
			row = append(row, fmt.Sprintf("%.0f%%", 100*float64(ok)/float64(trials)))
		}
		tbl.AddRow(row...)
	}
	return tbl, nil
}

// E9Estimators regenerates the estimator-accuracy figure: relative error
// of the bottom-k and strata difference estimators across true difference
// sizes. The estimate-first protocol's sizing rule (1.5× estimate + 16)
// relies on these staying within ~50%.
func E9Estimators(scale Scale) (*Table, error) {
	shared, reps := 4096, 10
	diffs := []int{4, 16, 64, 256, 1024}
	if scale == ScaleQuick {
		shared, reps = 1024, 3
		diffs = []int{16, 256}
	}
	tbl := &Table{
		ID:      "E9",
		Title:   "difference estimator accuracy",
		Columns: []string{"true diff", "bottom-k (128) mean rel err", "strata mean rel err"},
		Notes: fmt.Sprintf("%d shared keys, diff split evenly, %d reps.\n"+
			"expected shape: strata near-exact for small diffs; bottom-k error shrinking as diff grows; both within the 1.5× provisioning rule.", shared, reps),
	}
	rng := rand.New(rand.NewPCG(9, 9))
	mkKey := func() []byte {
		var key [16]byte
		u, v := rng.Uint64(), rng.Uint64()
		for j := 0; j < 8; j++ {
			key[j] = byte(u >> (8 * j))
			key[8+j] = byte(v >> (8 * j))
		}
		return key[:]
	}
	for _, diff := range diffs {
		var bkErr, stErr float64
		for rep := 0; rep < reps; rep++ {
			seed := rng.Uint64()
			bkA, _ := sketch.NewBottomK(128, seed)
			bkB, _ := sketch.NewBottomK(128, seed)
			stA, _ := sketch.NewStrata(sketch.StrataConfig{KeyLen: 16, Seed: seed})
			stB, _ := sketch.NewStrata(sketch.StrataConfig{KeyLen: 16, Seed: seed})
			for i := 0; i < shared; i++ {
				k := mkKey()
				bkA.Add(k)
				bkB.Add(k)
				stA.Add(k)
				stB.Add(k)
			}
			for i := 0; i < diff; i++ {
				k := mkKey()
				if i%2 == 0 {
					bkA.Add(k)
					stA.Add(k)
				} else {
					bkB.Add(k)
					stB.Add(k)
				}
			}
			be, err := sketch.EstimateDiff(bkA, bkB)
			if err != nil {
				return nil, err
			}
			se, err := sketch.EstimateStrataDiff(stA, stB)
			if err != nil {
				return nil, err
			}
			bkErr += math.Abs(be-float64(diff)) / float64(diff)
			stErr += math.Abs(se-float64(diff)) / float64(diff)
		}
		tbl.AddRow(
			fmt.Sprintf("%d", diff),
			fmt.Sprintf("%.0f%%", 100*bkErr/float64(reps)),
			fmt.Sprintf("%.0f%%", 100*stErr/float64(reps)),
		)
	}
	return tbl, nil
}
