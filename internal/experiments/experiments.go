// Package experiments regenerates the evaluation of the SIGMOD 2014
// robust set reconciliation paper: one function per table/figure
// (E1–E10, indexed in DESIGN.md §4), each returning a Table of the rows
// the corresponding plot or table would be drawn from. Because the
// paper's own evaluation section was unavailable (see the mismatch note
// in DESIGN.md), the suite is a reconstruction targeting the paper's
// claims: communication ∝ k and independent of n, O(d)-factor EMD
// accuracy, robustness where exact reconciliation collapses under value
// noise, substrate thresholds, and runtime scaling.
//
// Every experiment takes a Scale: ScaleFull reproduces the sizes recorded
// in EXPERIMENTS.md; ScaleQuick shrinks sweeps so the benchmark wrappers
// in bench_test.go stay fast.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"robustset/internal/emd"
	"robustset/internal/grid"
	"robustset/internal/points"
	"robustset/internal/workload"
)

// Scale selects experiment sweep sizes.
type Scale int

const (
	// ScaleFull is the EXPERIMENTS.md configuration.
	ScaleFull Scale = iota
	// ScaleQuick shrinks sweeps for benchmarks and smoke tests.
	ScaleQuick
)

// Table is one regenerated table/figure: rows of formatted cells under
// fixed column headers.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes documents workload parameters and reading guidance.
	Notes string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	fmt.Fprintf(w, "## %s — %s\n\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	underline := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		underline[i] = strings.Repeat("-", len(c))
	}
	fmt.Fprintln(tw, strings.Join(underline, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "\n%s\n", t.Notes)
	}
	fmt.Fprintln(w)
	return nil
}

// Experiment is one runnable table/figure generator.
type Experiment struct {
	ID   string
	Name string
	Run  func(Scale) (*Table, error)
}

// All lists the full suite in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "communication vs difference budget k", E1CommVsK},
		{"E2", "communication vs set size n (crossover)", E2CommVsN},
		{"E3", "EMD approximation factor vs dimension", E3ApproxVsDim},
		{"E4", "noise sweep: robust vs exact reconciliation", E4NoiseSweep},
		{"E5", "IBLT decode threshold", E5IBLTThreshold},
		{"E6", "decoded grid level vs noise scale", E6LevelSelection},
		{"E7", "runtime scaling", E7Runtime},
		{"E8", "exact regime: baseline comparison", E8ExactBaselines},
		{"E9", "difference estimator accuracy", E9Estimators},
		{"E10", "one-shot vs estimate-first ablation", E10Variants},
		{"E11", "ablation: hash count × table capacity", E11Ablation},
	}
}

// RunAll executes the whole suite, rendering each table to w.
func RunAll(w io.Writer, scale Scale) error {
	for _, e := range All() {
		tbl, err := e.Run(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := tbl.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// shared helpers

// defaultUniverse is the workload domain used unless an experiment sweeps
// it: 2-d, 20-bit coordinates.
var defaultUniverse = points.Universe{Dim: 2, Delta: 1 << 20}

// gen builds a workload instance, panicking on configuration errors
// (experiment configs are static; an error is a bug, not an input issue).
func gen(cfg workload.Config) *workload.Instance {
	inst, err := workload.Generate(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: workload: %v", err))
	}
	return inst
}

// gridQuality returns the grid-embedding EMD estimate between alice and
// sprime under a fixed evaluation seed (shared across protocols within an
// experiment so comparisons are apples-to-apples).
func gridQuality(u points.Universe, alice, sprime []points.Point) float64 {
	g, err := grid.New(u, 0xEA7)
	if err != nil {
		panic(err)
	}
	v, err := emd.GridApprox(alice, sprime, g)
	if err != nil {
		panic(err)
	}
	return v
}

// exactQuality returns the exact EMD; callers keep n small enough for the
// O(n³) matching.
func exactQuality(alice, sprime []points.Point) float64 {
	v, err := emd.Exact(alice, sprime, points.L1)
	if err != nil {
		panic(err)
	}
	return v
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
