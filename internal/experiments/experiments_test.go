package experiments

import (
	"strings"
	"testing"
)

// TestSuiteQuick runs every experiment at quick scale: the harness is a
// deliverable, so it gets the same "must stay green" treatment as the
// library. Skipped under -short (it takes a few seconds).
func TestSuiteQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment suite skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(ScaleQuick)
			if err != nil {
				t.Fatal(err)
			}
			if tbl.ID != e.ID {
				t.Errorf("table ID %q != experiment ID %q", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Error("experiment produced no rows")
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Errorf("row %d has %d cells for %d columns", i, len(row), len(tbl.Columns))
				}
				for _, cell := range row {
					if strings.Contains(cell, "fail") {
						t.Errorf("row %d reports failure: %v", i, row)
					}
				}
			}
			var sb strings.Builder
			if err := tbl.Render(&sb); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sb.String(), tbl.Title) {
				t.Error("rendered output missing title")
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	var sb strings.Builder
	if err := RunAll(&sb, ScaleQuick); err != nil {
		t.Fatal(err)
	}
	for _, e := range All() {
		if !strings.Contains(sb.String(), "## "+e.ID) {
			t.Errorf("RunAll output missing %s", e.ID)
		}
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		12:        "12B",
		2048:      "2.0KiB",
		3 << 20:   "3.0MiB",
		1<<10 - 1: "1023B",
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
