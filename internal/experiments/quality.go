package experiments

import (
	"fmt"
	"sort"

	"robustset/internal/baseline"
	"robustset/internal/core"
	"robustset/internal/emd"
	"robustset/internal/points"
	"robustset/internal/protocol"
	"robustset/internal/workload"
)

// E3ApproxVsDim regenerates the accuracy table: the ratio
// EMD(S_A, S'_B) / EMD_k(S_A, S_B) as the dimension grows. The paper
// proves an O(d) expected factor for the randomly shifted grid; the
// measured ratio should grow roughly linearly in d and stay far below
// the trivial bound (the universe diameter over the noise floor).
func E3ApproxVsDim(scale Scale) (*Table, error) {
	n, k, reps := 256, 4, 5
	dims := []int{1, 2, 4, 8, 16}
	if scale == ScaleQuick {
		n, reps = 128, 2
		dims = []int{2, 8}
	}
	tbl := &Table{
		ID:      "E3",
		Title:   "EMD approximation factor vs dimension",
		Columns: []string{"d", "EMD_k floor", "EMD after", "ratio", "ratio/d"},
		Notes: fmt.Sprintf("workload: n=%d, k=%d outliers, Δ=2^16, uniform noise ±2, %d reps (means reported); exact EMD via min-cost matching.\n"+
			"expected shape: ratio grows ~linearly with d (the paper's O(d) bound), so ratio/d stays roughly constant.", n, k, reps),
	}
	u := points.Universe{Delta: 1 << 16}
	for _, d := range dims {
		u.Dim = d
		var floorSum, afterSum float64
		for rep := 0; rep < reps; rep++ {
			inst := gen(workload.Config{
				N: n, Universe: u, Outliers: k,
				Noise: workload.NoiseUniform, Scale: 2, Seed: uint64(3000 + 100*d + rep),
			})
			params := core.Params{Universe: u, Seed: uint64(31 + rep), DiffBudget: k}
			out, err := baseline.RobustOneShot{Params: params}.Run(inst.Alice, inst.Bob)
			if err != nil {
				return nil, fmt.Errorf("d=%d rep=%d: %w", d, rep, err)
			}
			floor, err := emd.Partial(inst.Alice, inst.Bob, points.L1, k)
			if err != nil {
				return nil, err
			}
			if floor < 1 {
				floor = 1
			}
			floorSum += floor
			afterSum += exactQuality(inst.Alice, out.SPrime)
		}
		ratio := afterSum / floorSum
		tbl.AddRow(
			fmt.Sprintf("%d", d),
			fmt.Sprintf("%.0f", floorSum/float64(reps)),
			fmt.Sprintf("%.0f", afterSum/float64(reps)),
			fmt.Sprintf("%.2f", ratio),
			fmt.Sprintf("%.2f", ratio/float64(d)),
		)
	}
	return tbl, nil
}

// E4NoiseSweep regenerates the robustness figure: as per-coordinate noise
// grows, exact reconciliation's cost explodes toward Θ(n) (every pair
// becomes a difference) while the robust protocol's cost stays flat and
// its result quality degrades gracefully with the noise floor.
func E4NoiseSweep(scale Scale) (*Table, error) {
	n, k := 512, 8
	noises := []float64{0, 1, 2, 4, 8, 16, 32, 64, 128}
	if scale == ScaleQuick {
		n = 256
		noises = []float64{0, 4, 64}
	}
	tbl := &Table{
		ID:    "E4",
		Title: "noise sweep: robust vs exact reconciliation",
		Columns: []string{"noise ±ε", "pairs differing", "robust bytes", "robust EMD", "EMD_k floor",
			"exact-iblt bytes"},
		Notes: fmt.Sprintf("workload: n=%d, k=%d outliers, d=2, Δ=2^20; exact EMD via min-cost matching.\n"+
			"expected shape: robust bytes flat across ε and EMD tracking the ε·n floor; exact-iblt bytes jump to Θ(n) as soon as ε>0.", n, k),
	}
	for _, eps := range noises {
		inst := gen(workload.Config{
			N: n, Universe: defaultUniverse, Outliers: k,
			Noise: workload.NoiseUniform, Scale: eps, Seed: uint64(4000 + int(eps)),
		})
		// Count pairs that an exact comparator sees as different.
		differing := 0
		outl := map[int]bool{}
		for _, i := range inst.OutlierIdx {
			outl[i] = true
		}
		for i := range inst.Alice {
			if outl[i] || !inst.Alice[i].Equal(inst.Bob[i]) {
				differing++
			}
		}
		params := core.Params{Universe: defaultUniverse, Seed: 7, DiffBudget: k}
		robust, err := baseline.RobustOneShot{Params: params}.Run(inst.Alice, inst.Bob)
		if err != nil {
			return nil, fmt.Errorf("eps=%v: %w", eps, err)
		}
		exact, err := baseline.ExactIBLT{Config: protocol.ExactConfig{Universe: defaultUniverse, Seed: 11}}.
			Run(inst.Alice, inst.Bob)
		exactBytes := "fail"
		if err == nil {
			exactBytes = fmtBytes(exact.BytesTransferred())
		}
		floor, err := emd.Partial(inst.Alice, inst.Bob, points.L1, k)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(
			fmt.Sprintf("%.0f", eps),
			fmt.Sprintf("%d/%d", differing, n),
			fmtBytes(robust.BytesTransferred()),
			fmt.Sprintf("%.0f", exactQuality(inst.Alice, robust.SPrime)),
			fmt.Sprintf("%.0f", floor),
			exactBytes,
		)
	}
	return tbl, nil
}

// E6LevelSelection regenerates the level-selection figure: the finest
// decodable grid level must fall (cells must widen) as noise grows — the
// mechanism by which the multiresolution sketch adapts to the noise
// scale without being told it.
func E6LevelSelection(scale Scale) (*Table, error) {
	n, k, reps := 2048, 8, 5
	noises := []float64{1, 4, 16, 64, 256, 1024}
	if scale == ScaleQuick {
		n, reps = 512, 3
		noises = []float64{1, 64}
	}
	tbl := &Table{
		ID:      "E6",
		Title:   "decoded grid level vs noise scale",
		Columns: []string{"noise ±ε", "median level", "cell width", "diffs decoded (median)"},
		Notes: fmt.Sprintf("workload: n=%d, k=%d, d=2, Δ=2^20, %d reps.\n"+
			"expected shape: level decreases (cell width grows ∝ ε) as noise grows; decoded diffs stay near 2k.", n, k, reps),
	}
	for _, eps := range noises {
		var levels, diffs []int
		for rep := 0; rep < reps; rep++ {
			inst := gen(workload.Config{
				N: n, Universe: defaultUniverse, Outliers: k,
				Noise: workload.NoiseUniform, Scale: eps, Seed: uint64(6000 + 31*int(eps) + rep),
			})
			params := core.Params{Universe: defaultUniverse, Seed: uint64(100 + rep), DiffBudget: k}
			sk, err := core.BuildSketch(params, inst.Alice)
			if err != nil {
				return nil, err
			}
			res, err := core.Reconcile(sk, inst.Bob)
			if err != nil {
				return nil, fmt.Errorf("eps=%v rep=%d: %w", eps, rep, err)
			}
			levels = append(levels, res.Level)
			diffs = append(diffs, res.DiffSize())
		}
		sort.Ints(levels)
		sort.Ints(diffs)
		medLevel := levels[len(levels)/2]
		tbl.AddRow(
			fmt.Sprintf("%.0f", eps),
			fmt.Sprintf("%d", medLevel),
			fmt.Sprintf("%d", defaultUniverse.Delta>>uint(medLevel)),
			fmt.Sprintf("%d", diffs[len(diffs)/2]),
		)
	}
	return tbl, nil
}

// E10Variants regenerates the protocol-variant ablation: one-shot (one
// message, all levels) versus estimate-first (four messages, estimators
// plus one exactly-sized table). Estimate-first should cost fewer bytes
// and often land on a finer level (better quality), at the price of
// round trips.
func E10Variants(scale Scale) (*Table, error) {
	n := 4096
	ks := []int{4, 16, 64}
	if scale == ScaleQuick {
		n = 1024
		ks = []int{8}
	}
	tbl := &Table{
		ID:      "E10",
		Title:   "one-shot vs estimate-first ablation",
		Columns: []string{"k", "variant", "bytes", "msgs", "level", "grid-EMD after"},
		Notes: fmt.Sprintf("workload: n=%d, d=2, Δ=2^20, uniform noise ±4, k outliers; grid-EMD uses a fixed evaluation seed.\n"+
			"expected shape: estimate-first cheaper in bytes, usually at a level ≥ one-shot (estimator noise can move it ±1), at 4–5 msgs vs 1.", n),
	}
	for _, k := range ks {
		inst := gen(workload.Config{
			N: n, Universe: defaultUniverse, Outliers: k,
			Noise: workload.NoiseUniform, Scale: 4, Seed: uint64(9000 + k),
		})
		params := core.Params{Universe: defaultUniverse, Seed: 7, DiffBudget: k}
		for _, rec := range []baseline.Reconciler{
			baseline.RobustOneShot{Params: params},
			baseline.RobustEstimateFirst{Params: params},
		} {
			out, err := rec.Run(inst.Alice, inst.Bob)
			if err != nil {
				return nil, fmt.Errorf("k=%d %s: %w", k, rec.Name(), err)
			}
			tbl.AddRow(
				fmt.Sprintf("%d", k),
				rec.Name(),
				fmtBytes(out.BytesTransferred()),
				fmt.Sprintf("%d", out.Messages()),
				fmt.Sprintf("%d", out.Robust.Level),
				fmt.Sprintf("%.0f", gridQuality(defaultUniverse, inst.Alice, out.SPrime)),
			)
		}
	}
	return tbl, nil
}
