package experiments

import (
	"errors"
	"fmt"

	"robustset/internal/core"
	"robustset/internal/workload"
)

// E11Ablation regenerates the design-choice ablation called out in
// DESIGN.md: how the IBLT hash count q and the per-level table capacity
// (as a multiple of k) trade sketch size against the resolution of the
// level the sketch decodes at. More capacity lets fine levels absorb
// separated noise pairs (finer level ⇒ less rounding error) at a linear
// byte cost; q=4 dominates q=3 for these small tables (E5) while q=5
// buys nothing but wider cells.
func E11Ablation(scale Scale) (*Table, error) {
	n, k, reps := 2048, 16, 3
	qs := []int{3, 4, 5}
	factors := []int{1, 2, 4}
	if scale == ScaleQuick {
		n, reps = 512, 1
		qs = []int{4}
		factors = []int{2, 4}
	}
	tbl := &Table{
		ID:      "E11",
		Title:   "ablation: hash count q × table capacity",
		Columns: []string{"q", "capacity (×k)", "sketch bytes", "median level", "median diffs", "failures"},
		Notes: fmt.Sprintf("workload: n=%d, k=%d, d=2, Δ=2^20, uniform noise ±4, %d reps.\n"+
			"expected shape: bytes grow with q's load factor and linearly with capacity; larger capacity decodes finer levels (less rounding); q=4 gives the smallest tables at equal reliability.", n, k, reps),
	}
	for _, q := range qs {
		for _, f := range factors {
			var bytes int
			var levels, diffs []int
			fails := 0
			for rep := 0; rep < reps; rep++ {
				inst := gen(workload.Config{
					N: n, Universe: defaultUniverse, Outliers: k,
					Noise: workload.NoiseUniform, Scale: 4, Seed: uint64(11000 + 17*q + 3*f + rep),
				})
				params := core.Params{
					Universe: defaultUniverse, Seed: uint64(200 + rep),
					DiffBudget: k, HashCount: q, TableCapacity: f * k,
				}
				sk, err := core.BuildSketch(params, inst.Alice)
				if err != nil {
					return nil, err
				}
				bytes = sk.WireSize()
				res, err := core.Reconcile(sk, inst.Bob)
				if err != nil {
					if errors.Is(err, core.ErrNoDecodableLevel) {
						fails++
						continue
					}
					return nil, err
				}
				levels = append(levels, res.Level)
				diffs = append(diffs, res.DiffSize())
			}
			medLevel, medDiffs := "-", "-"
			if len(levels) > 0 {
				sortInts(levels)
				sortInts(diffs)
				medLevel = fmt.Sprintf("%d", levels[len(levels)/2])
				medDiffs = fmt.Sprintf("%d", diffs[len(diffs)/2])
			}
			tbl.AddRow(
				fmt.Sprintf("%d", q),
				fmt.Sprintf("%d", f),
				fmtBytes(int64(bytes)),
				medLevel,
				medDiffs,
				fmt.Sprintf("%d/%d", fails, reps),
			)
		}
	}
	return tbl, nil
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
