package workload

import (
	"math"
	"testing"

	"robustset/internal/points"
)

func baseConfig() Config {
	return Config{
		N:        200,
		Universe: points.Universe{Dim: 2, Delta: 1 << 16},
		Outliers: 10,
		Noise:    NoiseUniform,
		Scale:    4,
		Seed:     1,
	}
}

func TestGenerateValidation(t *testing.T) {
	cfg := baseConfig()
	cfg.N = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("n=0 accepted")
	}
	cfg = baseConfig()
	cfg.Outliers = cfg.N + 1
	if _, err := Generate(cfg); err == nil {
		t.Error("outliers > n accepted")
	}
	cfg = baseConfig()
	cfg.Scale = -1
	if _, err := Generate(cfg); err == nil {
		t.Error("negative scale accepted")
	}
	cfg = baseConfig()
	cfg.Universe.Delta = 3
	if _, err := Generate(cfg); err == nil {
		t.Error("invalid universe accepted")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := baseConfig()
	inst, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Alice) != cfg.N || len(inst.Bob) != cfg.N {
		t.Fatalf("sizes %d/%d, want %d", len(inst.Alice), len(inst.Bob), cfg.N)
	}
	if len(inst.OutlierIdx) != cfg.Outliers {
		t.Fatalf("outliers %d, want %d", len(inst.OutlierIdx), cfg.Outliers)
	}
	if err := cfg.Universe.CheckSet(inst.Alice); err != nil {
		t.Errorf("alice points invalid: %v", err)
	}
	if err := cfg.Universe.CheckSet(inst.Bob); err != nil {
		t.Errorf("bob points invalid: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Generate(baseConfig())
	b, _ := Generate(baseConfig())
	if !points.EqualMultisets(a.Alice, b.Alice) || !points.EqualMultisets(a.Bob, b.Bob) {
		t.Error("same seed produced different instances")
	}
	cfg := baseConfig()
	cfg.Seed = 2
	c, _ := Generate(cfg)
	if points.EqualMultisets(a.Alice, c.Alice) {
		t.Error("different seeds produced identical instances")
	}
}

func TestNoiseNonePairsIdentical(t *testing.T) {
	cfg := baseConfig()
	cfg.Noise = NoiseNone
	inst, _ := Generate(cfg)
	outl := map[int]bool{}
	for _, i := range inst.OutlierIdx {
		outl[i] = true
	}
	for i := range inst.Alice {
		if outl[i] {
			continue
		}
		if !inst.Alice[i].Equal(inst.Bob[i]) {
			t.Fatalf("pair %d differs with NoiseNone", i)
		}
	}
	if inst.PairNoiseL1 != 0 {
		t.Errorf("PairNoiseL1 = %v, want 0", inst.PairNoiseL1)
	}
}

func TestUniformNoiseBounded(t *testing.T) {
	cfg := baseConfig()
	cfg.Noise = NoiseUniform
	cfg.Scale = 5
	inst, _ := Generate(cfg)
	outl := map[int]bool{}
	for _, i := range inst.OutlierIdx {
		outl[i] = true
	}
	for i := range inst.Alice {
		if outl[i] {
			continue
		}
		if d := points.LInf.Distance(inst.Alice[i], inst.Bob[i]); d > 5 {
			t.Fatalf("pair %d: uniform noise %v exceeds scale 5", i, d)
		}
	}
	if inst.PairNoiseL1 <= 0 {
		t.Error("PairNoiseL1 should be positive with noise")
	}
}

func TestGaussianNoiseMagnitude(t *testing.T) {
	cfg := baseConfig()
	cfg.N = 2000
	cfg.Outliers = 0
	cfg.Noise = NoiseGaussian
	cfg.Scale = 10
	inst, _ := Generate(cfg)
	// Mean |N(0,10)| ≈ 7.98 per coordinate; 2 coords → ≈16 per pair.
	mean := inst.PairNoiseL1 / float64(cfg.N)
	if math.Abs(mean-16) > 3 {
		t.Errorf("mean pair L1 noise %.2f, want ≈16", mean)
	}
}

func TestPairNoiseMatchesRecount(t *testing.T) {
	inst, _ := Generate(baseConfig())
	var sum float64
	for _, pr := range inst.TruePairing() {
		sum += points.L1.Distance(inst.Alice[pr[0]], inst.Bob[pr[1]])
	}
	if math.Abs(sum-inst.PairNoiseL1) > 1e-9 {
		t.Errorf("recounted noise %v != recorded %v", sum, inst.PairNoiseL1)
	}
}

func TestClusteredGeneration(t *testing.T) {
	cfg := baseConfig()
	cfg.Clusters = 4
	cfg.N = 1000
	inst, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Universe.CheckSet(inst.Bob); err != nil {
		t.Fatal(err)
	}
	// With a single cluster the data must be measurably more concentrated
	// than uniform (multi-cluster spread is dominated by cross-cluster
	// pairs, so only the one-cluster case gives a stable signal).
	one := baseConfig()
	one.Clusters = 1
	one.N = 1000
	single, err := Generate(one)
	if err != nil {
		t.Fatal(err)
	}
	uniformCfg := baseConfig()
	uniformCfg.N = 1000
	uniform, _ := Generate(uniformCfg)
	spread := func(s []points.Point) float64 {
		var sum float64
		for i := 0; i < 400; i++ {
			sum += points.L1.Distance(s[i], s[i+400])
		}
		return sum
	}
	if spread(single.Bob) >= spread(uniform.Bob)/2 {
		t.Errorf("single-cluster data not concentrated: %.0f vs uniform %.0f", spread(single.Bob), spread(uniform.Bob))
	}
}

func TestNoiseStringer(t *testing.T) {
	if NoiseNone.String() != "none" || NoiseUniform.String() != "uniform" || NoiseGaussian.String() != "gaussian" {
		t.Error("unexpected Noise string values")
	}
	if Noise(99).String() == "" {
		t.Error("unknown noise should still render")
	}
}
