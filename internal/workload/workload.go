// Package workload generates the synthetic reconciliation inputs used by
// tests, examples and the experiment harness. A workload instance models
// the paper's motivating scenario: Bob holds n points; Alice holds noisy
// copies of n−k of them (sensor noise, float rounding, lossy compression)
// plus k genuinely new points that Bob should learn about.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"robustset/internal/points"
)

// Noise selects the perturbation model applied to paired points.
type Noise int

const (
	// NoiseNone leaves paired points identical (the classic exact
	// reconciliation regime).
	NoiseNone Noise = iota
	// NoiseUniform perturbs each coordinate by an independent uniform
	// integer in [−Scale, +Scale].
	NoiseUniform
	// NoiseGaussian perturbs each coordinate by a rounded Gaussian with
	// standard deviation Scale.
	NoiseGaussian
)

func (n Noise) String() string {
	switch n {
	case NoiseNone:
		return "none"
	case NoiseUniform:
		return "uniform"
	case NoiseGaussian:
		return "gaussian"
	}
	return fmt.Sprintf("noise(%d)", int(n))
}

// Config parameterizes a workload.
type Config struct {
	// N is the number of points per party.
	N int
	// Universe is the point domain.
	Universe points.Universe
	// Outliers is k: how many of Alice's points are fresh rather than
	// noisy copies of Bob's.
	Outliers int
	// Noise and Scale select the perturbation applied to the n−k pairs.
	Noise Noise
	Scale float64
	// Clusters > 0 draws base points from that many Gaussian clusters
	// (spread Delta/16) instead of uniformly; sensor-style data is
	// clustered, and clustering stresses the grid's collision behaviour.
	Clusters int
	// Seed makes generation deterministic.
	Seed uint64
}

// Instance is a generated reconciliation problem.
type Instance struct {
	Config Config
	// Alice and Bob are the two parties' multisets, each of size N.
	// Alice[i] corresponds to Bob[i] for every non-outlier index.
	Alice, Bob []points.Point
	// OutlierIdx lists the indices of Alice's fresh points.
	OutlierIdx []int
	// PairNoiseL1 is Σ over paired indices of ‖Alice[i]−Bob[i]‖₁ — the
	// cost of the natural pairing, an upper bound on EMD_k(Alice,Bob).
	PairNoiseL1 float64
}

// Generate builds a workload instance.
func Generate(cfg Config) (*Instance, error) {
	if err := cfg.Universe.Validate(); err != nil {
		return nil, err
	}
	if cfg.N < 1 {
		return nil, fmt.Errorf("workload: n %d < 1", cfg.N)
	}
	if cfg.Outliers < 0 || cfg.Outliers > cfg.N {
		return nil, fmt.Errorf("workload: outliers %d outside [0,%d]", cfg.Outliers, cfg.N)
	}
	if cfg.Scale < 0 {
		return nil, fmt.Errorf("workload: negative noise scale %v", cfg.Scale)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, ^cfg.Seed))
	u := cfg.Universe

	var centers []points.Point
	if cfg.Clusters > 0 {
		centers = make([]points.Point, cfg.Clusters)
		for i := range centers {
			centers[i] = uniformPoint(rng, u)
		}
	}
	base := func() points.Point {
		if centers == nil {
			return uniformPoint(rng, u)
		}
		c := centers[rng.IntN(len(centers))]
		p := make(points.Point, u.Dim)
		spread := float64(u.Delta) / 16
		for j := range p {
			p[j] = c[j] + int64(math.Round(rng.NormFloat64()*spread))
		}
		return u.Clamp(p)
	}

	inst := &Instance{Config: cfg}
	inst.Bob = make([]points.Point, cfg.N)
	inst.Alice = make([]points.Point, cfg.N)
	for i := range inst.Bob {
		inst.Bob[i] = base()
	}
	// Choose outlier indices without replacement.
	perm := rng.Perm(cfg.N)
	outliers := make(map[int]bool, cfg.Outliers)
	for _, i := range perm[:cfg.Outliers] {
		outliers[i] = true
	}
	for i := range inst.Alice {
		if outliers[i] {
			inst.Alice[i] = base()
			inst.OutlierIdx = append(inst.OutlierIdx, i)
			continue
		}
		inst.Alice[i] = perturb(rng, u, inst.Bob[i], cfg.Noise, cfg.Scale)
		inst.PairNoiseL1 += points.L1.Distance(inst.Alice[i], inst.Bob[i])
	}
	return inst, nil
}

func uniformPoint(rng *rand.Rand, u points.Universe) points.Point {
	p := make(points.Point, u.Dim)
	for j := range p {
		p[j] = rng.Int64N(u.Delta)
	}
	return p
}

func perturb(rng *rand.Rand, u points.Universe, p points.Point, noise Noise, scale float64) points.Point {
	if noise == NoiseNone || scale == 0 {
		return p.Clone()
	}
	q := make(points.Point, len(p))
	for j, c := range p {
		switch noise {
		case NoiseUniform:
			s := int64(scale)
			q[j] = c + rng.Int64N(2*s+1) - s
		case NoiseGaussian:
			q[j] = c + int64(math.Round(rng.NormFloat64()*scale))
		default:
			q[j] = c
		}
	}
	return u.Clamp(q)
}

// TruePairing returns the index pairing (Alice[i], Bob[i]) restricted to
// non-outliers, as index pairs. Experiments use it to compute reference
// costs without solving an assignment problem.
func (inst *Instance) TruePairing() [][2]int {
	out := make([][2]int, 0, len(inst.Alice)-len(inst.OutlierIdx))
	outl := make(map[int]bool, len(inst.OutlierIdx))
	for _, i := range inst.OutlierIdx {
		outl[i] = true
	}
	for i := range inst.Alice {
		if !outl[i] {
			out = append(out, [2]int{i, i})
		}
	}
	return out
}
