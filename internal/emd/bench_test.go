package emd

import (
	"math/rand/v2"
	"testing"

	"robustset/internal/grid"
	"robustset/internal/points"
)

func benchSets(n int) (x, y []points.Point) {
	rng := rand.New(rand.NewPCG(1, 1))
	return randSet(rng, n, 2, 1<<16), randSet(rng, n, 2, 1<<16)
}

func BenchmarkExact64(b *testing.B) {
	x, y := benchSets(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exact(x, y, points.L1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExact256(b *testing.B) {
	x, y := benchSets(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exact(x, y, points.L1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartial256K8(b *testing.B) {
	x, y := benchSets(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Partial(x, y, points.L1, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridApprox4096(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 2))
	u := points.Universe{Dim: 2, Delta: 1 << 16}
	x := randSet(rng, 4096, 2, u.Delta)
	y := randSet(rng, 4096, 2, u.Delta)
	g, err := grid.New(u, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GridApprox(x, y, g); err != nil {
			b.Fatal(err)
		}
	}
}
