package emd

import (
	"math"
	"math/rand/v2"
	"testing"

	"robustset/internal/grid"
	"robustset/internal/points"
)

func randSet(rng *rand.Rand, n, d int, delta int64) []points.Point {
	s := make([]points.Point, n)
	for i := range s {
		p := make(points.Point, d)
		for j := range p {
			p[j] = rng.Int64N(delta)
		}
		s[i] = p
	}
	return s
}

func TestExactTrivialCases(t *testing.T) {
	m := points.L1
	if got, err := Exact(nil, nil, m); err != nil || got != 0 {
		t.Errorf("empty sets: %v %v", got, err)
	}
	x := []points.Point{{1, 1}}
	y := []points.Point{{4, 5}}
	if got, _ := Exact(x, y, m); got != 7 {
		t.Errorf("single pair = %v, want 7", got)
	}
	if got, _ := Exact(x, x, m); got != 0 {
		t.Errorf("identical sets = %v, want 0", got)
	}
}

func TestExactKnownAssignment(t *testing.T) {
	// Crossing pairs: the greedy pairing is suboptimal; optimal swaps.
	x := []points.Point{{0}, {10}}
	y := []points.Point{{9}, {1}}
	got, err := Exact(x, y, points.L1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 { // 0↔1 and 10↔9
		t.Errorf("EMD = %v, want 2", got)
	}
}

func TestSizeMismatch(t *testing.T) {
	_, err := Exact([]points.Point{{1}}, nil, points.L1)
	if err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestPartialValidation(t *testing.T) {
	x := randSet(rand.New(rand.NewPCG(1, 1)), 4, 2, 100)
	if _, err := Partial(x, x, points.L1, -1); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := Partial(x, x, points.L1, 5); err == nil {
		t.Error("k > n accepted")
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for _, m := range []points.Metric{points.L1, points.L2, points.LInf} {
		for trial := 0; trial < 60; trial++ {
			n := 1 + rng.IntN(7)
			d := 1 + rng.IntN(3)
			x := randSet(rng, n, d, 64)
			y := randSet(rng, n, d, 64)
			want, err := BruteForce(x, y, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Exact(x, y, m)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("%s n=%d: hungarian %v != brute force %v\nx=%v\ny=%v", m.Name(), n, got, want, x, y)
			}
		}
	}
}

func TestPartialMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.IntN(6)
		k := rng.IntN(n + 1)
		x := randSet(rng, n, 2, 64)
		y := randSet(rng, n, 2, 64)
		want, err := BruteForcePartial(x, y, points.L1, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Partial(x, y, points.L1, k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("n=%d k=%d: partial %v != brute force %v\nx=%v\ny=%v", n, k, got, want, x, y)
		}
	}
}

func TestPartialMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	x := randSet(rng, 12, 2, 1000)
	y := randSet(rng, 12, 2, 1000)
	prev := math.MaxFloat64
	for k := 0; k <= 12; k++ {
		v, err := Partial(x, y, points.L1, k)
		if err != nil {
			t.Fatal(err)
		}
		if v > prev+1e-9 {
			t.Fatalf("EMD_%d = %v > EMD_%d = %v (must be nonincreasing)", k, v, k-1, prev)
		}
		prev = v
	}
	if prev != 0 {
		t.Errorf("EMD_n = %v, want 0", prev)
	}
}

func TestPartialZeroEqualsExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	x := randSet(rng, 20, 3, 512)
	y := randSet(rng, 20, 3, 512)
	a, _ := Exact(x, y, points.L2)
	b, _ := Partial(x, y, points.L2, 0)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("EMD_0 %v != EMD %v", b, a)
	}
}

func TestPartialRemovesOutlier(t *testing.T) {
	// 5 coincident pairs plus one huge outlier on each side: EMD_1 must
	// drop the outlier cost entirely.
	x := []points.Point{{0}, {10}, {20}, {30}, {40}, {1 << 20}}
	y := []points.Point{{0}, {10}, {20}, {30}, {40}, {5}}
	full, _ := Exact(x, y, points.L1)
	part, _ := Partial(x, y, points.L1, 1)
	if part != 0 {
		t.Errorf("EMD_1 = %v, want 0", part)
	}
	if full < 1<<19 {
		t.Errorf("EMD = %v, expected outlier-dominated", full)
	}
}

func TestMetricPropertiesOfEMD(t *testing.T) {
	// EMD inherits symmetry and the triangle inequality from the ground
	// metric (it is a metric on multisets).
	rng := rand.New(rand.NewPCG(6, 6))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.IntN(6)
		x := randSet(rng, n, 2, 128)
		y := randSet(rng, n, 2, 128)
		z := randSet(rng, n, 2, 128)
		dxy, _ := Exact(x, y, points.L1)
		dyx, _ := Exact(y, x, points.L1)
		if math.Abs(dxy-dyx) > 1e-6 {
			t.Fatalf("EMD not symmetric: %v vs %v", dxy, dyx)
		}
		dxz, _ := Exact(x, z, points.L1)
		dyz, _ := Exact(y, z, points.L1)
		if dxz > dxy+dyz+1e-6 {
			t.Fatalf("EMD triangle inequality violated: %v > %v + %v", dxz, dxy, dyz)
		}
	}
}

func TestEMDPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	x := randSet(rng, 15, 2, 100)
	y := randSet(rng, 15, 2, 100)
	a, _ := Exact(x, y, points.L1)
	// Shuffle both sides.
	xs, ys := points.Clone(x), points.Clone(y)
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	rng.Shuffle(len(ys), func(i, j int) { ys[i], ys[j] = ys[j], ys[i] })
	b, _ := Exact(xs, ys, points.L1)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("EMD not permutation invariant: %v vs %v", a, b)
	}
}

func TestMatchPairsConsistent(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	x := randSet(rng, 10, 2, 256)
	y := randSet(rng, 10, 2, 256)
	res, err := Match(x, y, points.L1, 3)
	if err != nil {
		t.Fatal(err)
	}
	matched := 0
	seen := map[int]bool{}
	sum := 0.0
	for i, j := range res.Pairs {
		if j == -1 {
			continue
		}
		matched++
		if seen[j] {
			t.Fatalf("column %d matched twice", j)
		}
		seen[j] = true
		sum += points.L1.Distance(x[i], y[j])
	}
	if matched != 7 {
		t.Errorf("matched %d pairs, want n-k = 7", matched)
	}
	if math.Abs(sum-res.Cost) > 1e-9 {
		t.Errorf("pair cost sum %v != reported cost %v", sum, res.Cost)
	}
}

func TestGridApproxBounds(t *testing.T) {
	// The grid estimate must be 0 for identical multisets, positive for
	// different ones, and within a plausible distortion band of the truth
	// on random inputs.
	rng := rand.New(rand.NewPCG(9, 9))
	u := points.Universe{Dim: 2, Delta: 1 << 10}
	g, err := grid.New(u, 123)
	if err != nil {
		t.Fatal(err)
	}
	x := randSet(rng, 40, 2, u.Delta)
	same, err := GridApprox(x, x, g)
	if err != nil {
		t.Fatal(err)
	}
	if same != 0 {
		t.Errorf("identical multisets estimate %v, want 0", same)
	}
	y := randSet(rng, 40, 2, u.Delta)
	est, _ := GridApprox(x, y, g)
	truth, _ := Exact(x, y, points.L1)
	if est <= 0 {
		t.Fatalf("estimate %v for different sets", est)
	}
	ratio := est / truth
	// O(d log Δ) distortion: d=2, logΔ=10 → ratio in a generous band.
	if ratio < 0.05 || ratio > 60 {
		t.Errorf("grid estimate ratio %v wildly off (est=%v truth=%v)", ratio, est, truth)
	}
	// Unequal sizes are allowed: the extra mass must cost something.
	uneq, err := GridApprox(x, x[:10], g)
	if err != nil {
		t.Fatal(err)
	}
	if uneq <= 0 {
		t.Error("unequal sizes should have positive histogram distance")
	}
}

func TestGridApproxTracksScale(t *testing.T) {
	// Doubling all displacement magnitudes should roughly double the
	// estimate (it is a sum of per-level ℓ1 histogram distances).
	rng := rand.New(rand.NewPCG(10, 10))
	u := points.Universe{Dim: 1, Delta: 1 << 14}
	x := randSet(rng, 200, 1, u.Delta/2)
	mkShift := func(off int64) []points.Point {
		y := points.Clone(x)
		for i := range y {
			y[i][0] += off
		}
		return y
	}
	small, big := 0.0, 0.0
	const reps = 30
	for r := 0; r < reps; r++ {
		g, _ := grid.New(u, rng.Uint64())
		s, _ := GridApprox(x, mkShift(16), g)
		b, _ := GridApprox(x, mkShift(64), g)
		small += s
		big += b
	}
	if big < 1.5*small {
		t.Errorf("estimate did not grow with displacement: small=%v big=%v", small, big)
	}
}

func TestHungarianLargerRandom(t *testing.T) {
	// Cross-check n=40 against an independent LP-free lower bound: the
	// sum over rows of the row minimum is ≤ optimal ≤ any feasible
	// matching (identity pairing).
	rng := rand.New(rand.NewPCG(11, 11))
	x := randSet(rng, 40, 3, 1024)
	y := randSet(rng, 40, 3, 1024)
	got, err := Exact(x, y, points.L1)
	if err != nil {
		t.Fatal(err)
	}
	lower, upper := 0.0, 0.0
	for i := range x {
		rowMin := math.MaxFloat64
		for j := range y {
			if d := points.L1.Distance(x[i], y[j]); d < rowMin {
				rowMin = d
			}
		}
		lower += rowMin
		upper += points.L1.Distance(x[i], y[i])
	}
	if got < lower-1e-6 || got > upper+1e-6 {
		t.Errorf("EMD %v outside [rowmin %v, identity %v]", got, lower, upper)
	}
}
