// Package emd computes the Earth Mover's Distance between equal-sized
// point multisets — the objective the robust set reconciliation model is
// defined by — together with its outlier-excluding variant EMD_k.
//
// EMD(X, Y) is the cost of a min-cost perfect matching between X and Y
// under a points.Metric. EMD_k(X, Y) is the minimum EMD achievable after
// deleting k points from each side: the cheapest assignment of size n−k.
// Both reduce to the assignment problem; EMD_k uses the standard
// dummy-padding reduction (k zero-cost dummy rows and columns absorb the
// excluded points), so one O(m³) Hungarian solver serves both.
//
// These routines are evaluation tools: protocols never call them, but the
// experiment harness uses them to score reconciliation quality, so
// correctness here is validated against brute force in the tests.
package emd

import (
	"errors"
	"fmt"
	"math"

	"robustset/internal/grid"
	"robustset/internal/points"
)

// ErrSizeMismatch is returned when the two multisets differ in size.
var ErrSizeMismatch = errors.New("emd: point sets must have equal size")

// Exact returns EMD(x, y): the min-cost perfect matching cost under m.
func Exact(x, y []points.Point, m points.Metric) (float64, error) {
	res, err := Match(x, y, m, 0)
	if err != nil {
		return 0, err
	}
	return res.Cost, nil
}

// Partial returns EMD_k(x, y): the cost of the cheapest matching that
// leaves exactly k points of each side unmatched. k must be in [0, n].
func Partial(x, y []points.Point, m points.Metric, k int) (float64, error) {
	res, err := Match(x, y, m, k)
	if err != nil {
		return 0, err
	}
	return res.Cost, nil
}

// Result describes an optimal (possibly partial) matching.
type Result struct {
	// Cost is the total matching cost (the EMD or EMD_k value).
	Cost float64
	// Pairs maps an index into x to its matched index in y; excluded
	// points of x map to −1. len(Pairs) == len(x).
	Pairs []int
	// Excluded is the number of points excluded per side (the k argument).
	Excluded int
}

// Match computes the optimal matching excluding k points per side.
func Match(x, y []points.Point, m points.Metric, k int) (*Result, error) {
	n := len(x)
	if len(y) != n {
		return nil, fmt.Errorf("%w: %d vs %d", ErrSizeMismatch, n, len(y))
	}
	if k < 0 || k > n {
		return nil, fmt.Errorf("emd: exclusion count %d outside [0,%d]", k, n)
	}
	if n == 0 {
		return &Result{Pairs: []int{}, Excluded: 0}, nil
	}
	// Build the (n+k)×(n+k) padded cost matrix: rows/cols ≥ n are dummies
	// with zero cost against everything. A min-cost perfect matching on
	// the padded matrix matches at least n−k real pairs, all extra real
	// pairs being absorbed by free dummies, so its cost equals EMD_k.
	sz := n + k
	cost := make([]float64, sz*sz)
	for i := 0; i < n; i++ {
		row := cost[i*sz:]
		for j := 0; j < n; j++ {
			row[j] = m.Distance(x[i], y[j])
		}
	}
	assign := hungarian(cost, sz)
	res := &Result{Pairs: make([]int, n), Excluded: k}
	for i := 0; i < n; i++ {
		j := assign[i]
		if j >= n {
			res.Pairs[i] = -1 // matched to a dummy column: excluded
			continue
		}
		res.Pairs[i] = j
		res.Cost += cost[i*sz+j]
	}
	return res, nil
}

// hungarian solves the square assignment problem on an sz×sz row-major
// cost matrix, returning for each row its assigned column. This is the
// classic O(sz³) shortest-augmenting-path formulation with dual potentials
// (Jonker–Volgenant style).
func hungarian(cost []float64, sz int) []int {
	const inf = math.MaxFloat64
	u := make([]float64, sz+1)
	v := make([]float64, sz+1)
	p := make([]int, sz+1)   // p[j] = row (1-based) assigned to column j; 0 = free
	way := make([]int, sz+1) // predecessor column on the alternating path
	minv := make([]float64, sz+1)
	used := make([]bool, sz+1)
	for i := 1; i <= sz; i++ {
		p[0] = i
		j0 := 0
		for j := range minv {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			row := cost[(i0-1)*sz:]
			for j := 1; j <= sz; j++ {
				if used[j] {
					continue
				}
				cur := row[j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= sz; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assign := make([]int, sz)
	for j := 1; j <= sz; j++ {
		if p[j] != 0 {
			assign[p[j]-1] = j - 1
		}
	}
	return assign
}

// GridApprox estimates EMD(x, y) from the per-level cell histograms of a
// randomly shifted hierarchical grid: sum over levels ℓ ≥ 1 of
// (w_ℓ / 2) · Σ_cells |count_x(c) − count_y(c)|. This is the standard
// quadtree embedding of EMD into ℓ1; for the ℓ1 metric its expected
// distortion is O(d·log Δ), making it a cheap O(n·logΔ) surrogate for the
// exact O(n³) computation on large inputs.
//
// Unlike Exact, GridApprox accepts multisets of different sizes: the
// histogram distance remains well defined and the size difference then
// contributes at every level, which is the natural "unmatched mass"
// penalty. Exact EMD is only defined for equal sizes.
func GridApprox(x, y []points.Point, g *grid.Grid) (float64, error) {
	total := 0.0
	buf := make([]byte, 0, g.EncodedCellSize())
	for l := 1; l <= g.Levels(); l++ {
		counts := make(map[string]int64, 2*len(x))
		for _, p := range x {
			buf = g.EncodeCell(buf[:0], g.Cell(l, p))
			counts[string(buf)]++
		}
		for _, p := range y {
			buf = g.EncodeCell(buf[:0], g.Cell(l, p))
			counts[string(buf)]--
		}
		var lvl int64
		for _, c := range counts {
			if c < 0 {
				c = -c
			}
			lvl += c
		}
		total += float64(g.CellWidth(l)) / 2 * float64(lvl)
	}
	return total, nil
}

// BruteForce computes EMD exactly by enumerating all n! matchings. It is
// exponential and exists only so tests can validate the Hungarian solver;
// n must be at most 8.
func BruteForce(x, y []points.Point, m points.Metric) (float64, error) {
	n := len(x)
	if len(y) != n {
		return 0, ErrSizeMismatch
	}
	if n > 8 {
		return 0, errors.New("emd: brute force limited to n ≤ 8")
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.MaxFloat64
	var rec func(depth int, cost float64)
	rec = func(depth int, cost float64) {
		if cost >= best {
			return
		}
		if depth == n {
			best = cost
			return
		}
		for i := depth; i < n; i++ {
			perm[depth], perm[i] = perm[i], perm[depth]
			rec(depth+1, cost+m.Distance(x[depth], y[perm[depth]]))
			perm[depth], perm[i] = perm[i], perm[depth]
		}
	}
	rec(0, 0)
	if n == 0 {
		best = 0
	}
	return best, nil
}

// BruteForcePartial computes EMD_k by brute force (n ≤ 8): the minimum
// over all subsets of size n−k of each side and all matchings between
// them. Exponential; tests only.
func BruteForcePartial(x, y []points.Point, m points.Metric, k int) (float64, error) {
	n := len(x)
	if len(y) != n {
		return 0, ErrSizeMismatch
	}
	if n > 8 {
		return 0, errors.New("emd: brute force limited to n ≤ 8")
	}
	if k < 0 || k > n {
		return 0, fmt.Errorf("emd: exclusion count %d outside [0,%d]", k, n)
	}
	t := n - k
	best := math.MaxFloat64
	// usedY is a bitmask of y points already matched.
	var solve func(xi int, matched int, usedY uint, cost float64)
	solve = func(xi int, matched int, usedY uint, cost float64) {
		if cost >= best {
			return
		}
		if matched == t {
			best = cost
			return
		}
		if xi == n || n-xi < t-matched {
			return
		}
		// Skip x[xi] (exclude it).
		solve(xi+1, matched, usedY, cost)
		// Match x[xi] to any free y.
		for j := 0; j < n; j++ {
			if usedY&(1<<uint(j)) == 0 {
				solve(xi+1, matched+1, usedY|1<<uint(j), cost+m.Distance(x[xi], y[j]))
			}
		}
	}
	solve(0, 0, 0, 0)
	if t == 0 {
		best = 0
	}
	return best, nil
}
