package emd

import (
	"math"
	"math/rand/v2"
	"testing"

	"robustset/internal/points"
)

// TestTranslationInvariance: EMD is translation invariant — shifting both
// multisets by the same vector leaves it unchanged.
func TestTranslationInvariance(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.IntN(10)
		d := 1 + rng.IntN(3)
		x := randSet(rng, n, d, 1000)
		y := randSet(rng, n, d, 1000)
		shift := make(points.Point, d)
		for i := range shift {
			shift[i] = rng.Int64N(500)
		}
		translate := func(s []points.Point) []points.Point {
			out := make([]points.Point, len(s))
			for i, p := range s {
				q := p.Clone()
				for j := range q {
					q[j] += shift[j]
				}
				out[i] = q
			}
			return out
		}
		a, _ := Exact(x, y, points.L1)
		b, _ := Exact(translate(x), translate(y), points.L1)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("translation changed EMD: %v vs %v", a, b)
		}
	}
}

// TestScalingHomogeneity: scaling all coordinates by c scales L1 EMD by c.
func TestScalingHomogeneity(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	x := randSet(rng, 8, 2, 100)
	y := randSet(rng, 8, 2, 100)
	scale := func(s []points.Point, c int64) []points.Point {
		out := make([]points.Point, len(s))
		for i, p := range s {
			q := p.Clone()
			for j := range q {
				q[j] *= c
			}
			out[i] = q
		}
		return out
	}
	a, _ := Exact(x, y, points.L1)
	b, _ := Exact(scale(x, 7), scale(y, 7), points.L1)
	if math.Abs(7*a-b) > 1e-6 {
		t.Fatalf("scaling broke homogeneity: 7·%v != %v", a, b)
	}
}

// TestSingleOutlierDecomposition: adding one identical far pair to both
// sides changes nothing; adding it to one side's matching partner costs
// exactly that pair's distance when everything else matches at zero.
func TestSingleOutlierDecomposition(t *testing.T) {
	base := []points.Point{{10, 10}, {20, 20}, {30, 30}}
	x := append(points.Clone(base), points.Point{1000, 1000})
	y := append(points.Clone(base), points.Point{1000, 1000})
	if d, _ := Exact(x, y, points.L1); d != 0 {
		t.Fatalf("identical sets with far pair: EMD %v", d)
	}
	y2 := append(points.Clone(base), points.Point{1002, 1001})
	if d, _ := Exact(x, y2, points.L1); d != 3 {
		t.Fatalf("perturbed far pair: EMD %v, want 3", d)
	}
}

// TestPartialVsExclusionSemantics: EMD_k equals the minimum over all
// ways of deleting k points from each side, checked explicitly for k=1
// on small instances by enumerating deletions.
func TestPartialVsExclusionSemantics(t *testing.T) {
	rng := rand.New(rand.NewPCG(35, 36))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.IntN(4)
		x := randSet(rng, n, 2, 64)
		y := randSet(rng, n, 2, 64)
		want := math.MaxFloat64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				xs := append(points.Clone(x[:i]), points.Clone(x[i+1:])...)
				ys := append(points.Clone(y[:j]), points.Clone(y[j+1:])...)
				if d, _ := Exact(xs, ys, points.L1); d < want {
					want = d
				}
			}
		}
		got, _ := Partial(x, y, points.L1, 1)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("EMD_1 = %v, exhaustive deletion min = %v", got, want)
		}
	}
}
