package ranges

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"robustset/internal/hashutil"
)

// Node fill bounds. Leaves hold data keys with their hashes; internal
// nodes hold copied separator keys (left subtree < sep ≤ right subtree)
// plus per-subtree aggregates, B+-tree style, so every data key lives in
// exactly one leaf and range aggregates never double-count.
const (
	maxLeaf = 32
	minLeaf = maxLeaf / 2
	maxFan  = 16
	minFan  = maxFan / 2
)

// Agg is the monoid aggregate of a key range: its cardinality and the
// XOR of the keys' 64-bit fingerprint hashes. Two ranges holding the
// same key multiset agree on Agg; a disagreement proves a difference
// (the converse fails with probability 2^-64 per comparison).
type Agg struct {
	Count uint64
	Fp    uint64
}

func (a *Agg) add(b Agg) {
	a.Count += b.Count
	a.Fp ^= b.Fp
}

type node struct {
	leaf     bool
	keys     [][]byte // leaf: data keys; internal: separators (len(children)-1)
	hashes   []uint64 // leaf only, parallel to keys
	children []*node  // internal only
	agg      Agg
}

// Tree is a balanced order-statistics B-tree over fixed-length byte
// keys with an incrementally maintained fingerprint aggregate per
// subtree. It is not safe for concurrent mutation; concurrent readers
// are safe once mutation stops.
type Tree struct {
	keyLen int
	hash   hashutil.Hasher
	root   *node
}

// ErrKeyExists reports an Insert of a key already present.
var ErrKeyExists = errors.New("ranges: key already in tree")

// ErrKeyMissing reports a Delete of an absent key.
var ErrKeyMissing = errors.New("ranges: key not in tree")

// NewTree returns an empty tree over keys of the given length, with
// fingerprints drawn from the given seed (both parties must share it).
func NewTree(keyLen int, seed uint64) *Tree {
	return &Tree{keyLen: keyLen, hash: hashutil.NewHasher(seed), root: &node{leaf: true}}
}

// NewFromSorted bulk-builds a tree from strictly ascending keys, in
// O(n) after the caller's sort. The tree aliases the key slices.
func NewFromSorted(keyLen int, seed uint64, keys [][]byte) (*Tree, error) {
	t := NewTree(keyLen, seed)
	for i, k := range keys {
		if len(k) != keyLen {
			return nil, fmt.Errorf("ranges: key %d has length %d, want %d", i, len(k), keyLen)
		}
		if i > 0 && bytes.Compare(keys[i-1], k) >= 0 {
			return nil, fmt.Errorf("ranges: keys not strictly ascending at %d", i)
		}
	}
	if len(keys) == 0 {
		return t, nil
	}
	// Leaf level: spread keys across ceil(n/maxLeaf) leaves evenly so no
	// leaf dips below minLeaf (except a lone root).
	nLeaves := (len(keys) + maxLeaf - 1) / maxLeaf
	level := make([]*node, 0, nLeaves)
	mins := make([][]byte, 0, nLeaves)
	for i := 0; i < nLeaves; i++ {
		lo, hi := i*len(keys)/nLeaves, (i+1)*len(keys)/nLeaves
		n := &node{leaf: true, keys: keys[lo:hi:hi]}
		n.hashes = make([]uint64, hi-lo)
		for j, k := range n.keys {
			n.hashes[j] = t.hash.Hash(k)
		}
		t.recompute(n)
		level = append(level, n)
		mins = append(mins, keys[lo])
	}
	for len(level) > 1 {
		nParents := (len(level) + maxFan - 1) / maxFan
		parents := make([]*node, 0, nParents)
		pmins := make([][]byte, 0, nParents)
		for i := 0; i < nParents; i++ {
			lo, hi := i*len(level)/nParents, (i+1)*len(level)/nParents
			n := &node{children: append([]*node(nil), level[lo:hi]...)}
			for j := lo + 1; j < hi; j++ {
				n.keys = append(n.keys, mins[j])
			}
			t.recompute(n)
			parents = append(parents, n)
			pmins = append(pmins, mins[lo])
		}
		level, mins = parents, pmins
	}
	t.root = level[0]
	return t, nil
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return int(t.root.agg.Count) }

// Root returns the aggregate of the whole tree.
func (t *Tree) Root() Agg { return t.root.agg }

// KeyLen returns the fixed key length the tree was built for.
func (t *Tree) KeyLen() int { return t.keyLen }

func (t *Tree) recompute(n *node) {
	n.agg = Agg{}
	if n.leaf {
		n.agg.Count = uint64(len(n.keys))
		for _, h := range n.hashes {
			n.agg.Fp ^= h
		}
		return
	}
	for _, c := range n.children {
		n.agg.add(c.agg)
	}
}

// childIndex returns the child that may hold key: the first child whose
// separator upper bound exceeds key.
func childIndex(n *node, key []byte) int {
	return sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) > 0 })
}

// Insert adds key to the tree. Keys are unique; inserting a present key
// returns ErrKeyExists. The tree aliases key.
func (t *Tree) Insert(key []byte) error {
	if len(key) != t.keyLen {
		return fmt.Errorf("ranges: insert key length %d, want %d", len(key), t.keyLen)
	}
	right, sep, err := t.insert(t.root, key)
	if err != nil {
		return err
	}
	if right != nil {
		old := t.root
		t.root = &node{keys: [][]byte{sep}, children: []*node{old, right}}
		t.recompute(t.root)
	}
	return nil
}

func (t *Tree) insert(n *node, key []byte) (*node, []byte, error) {
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			return nil, nil, ErrKeyExists
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.hashes = append(n.hashes, 0)
		copy(n.hashes[i+1:], n.hashes[i:])
		n.hashes[i] = t.hash.Hash(key)
		var right *node
		var sep []byte
		if len(n.keys) > maxLeaf {
			mid := len(n.keys) / 2
			right = &node{
				leaf:   true,
				keys:   append([][]byte(nil), n.keys[mid:]...),
				hashes: append([]uint64(nil), n.hashes[mid:]...),
			}
			n.keys = n.keys[:mid]
			n.hashes = n.hashes[:mid]
			sep = right.keys[0]
			t.recompute(right)
		}
		t.recompute(n)
		return right, sep, nil
	}
	ci := childIndex(n, key)
	r, s, err := t.insert(n.children[ci], key)
	if err != nil {
		return nil, nil, err
	}
	var right *node
	var sep []byte
	if r != nil {
		n.keys = append(n.keys, nil)
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = s
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = r
		if len(n.children) > maxFan {
			m := len(n.children) / 2
			right = &node{
				keys:     append([][]byte(nil), n.keys[m:]...),
				children: append([]*node(nil), n.children[m:]...),
			}
			sep = n.keys[m-1]
			n.keys = n.keys[:m-1]
			n.children = n.children[:m]
			t.recompute(right)
		}
	}
	t.recompute(n)
	return right, sep, nil
}

// Delete removes key from the tree, or returns ErrKeyMissing.
func (t *Tree) Delete(key []byte) error {
	if err := t.delete(t.root, key); err != nil {
		return err
	}
	if !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	return nil
}

func (t *Tree) delete(n *node, key []byte) error {
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
		if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
			return ErrKeyMissing
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.hashes = append(n.hashes[:i], n.hashes[i+1:]...)
		t.recompute(n)
		return nil
	}
	ci := childIndex(n, key)
	if err := t.delete(n.children[ci], key); err != nil {
		return err
	}
	if underflow(n.children[ci]) {
		t.fix(n, ci)
	}
	t.recompute(n)
	return nil
}

func underflow(c *node) bool {
	if c.leaf {
		return len(c.keys) < minLeaf
	}
	return len(c.children) < minFan
}

func canLend(c *node) bool {
	if c.leaf {
		return len(c.keys) > minLeaf
	}
	return len(c.children) > minFan
}

// fix restores the fill invariant of n.children[ci] by borrowing from a
// sibling or merging with one. n's own aggregate is recomputed by the
// caller.
func (t *Tree) fix(n *node, ci int) {
	c := n.children[ci]
	if ci > 0 && canLend(n.children[ci-1]) {
		l := n.children[ci-1]
		if c.leaf {
			last := len(l.keys) - 1
			c.keys = append([][]byte{l.keys[last]}, c.keys...)
			c.hashes = append([]uint64{l.hashes[last]}, c.hashes...)
			l.keys = l.keys[:last]
			l.hashes = l.hashes[:last]
			n.keys[ci-1] = c.keys[0]
		} else {
			last := len(l.children) - 1
			c.children = append([]*node{l.children[last]}, c.children...)
			c.keys = append([][]byte{n.keys[ci-1]}, c.keys...)
			n.keys[ci-1] = l.keys[last-1]
			l.children = l.children[:last]
			l.keys = l.keys[:last-1]
		}
		t.recompute(l)
		t.recompute(c)
		return
	}
	if ci < len(n.children)-1 && canLend(n.children[ci+1]) {
		r := n.children[ci+1]
		if c.leaf {
			c.keys = append(c.keys, r.keys[0])
			c.hashes = append(c.hashes, r.hashes[0])
			r.keys = r.keys[1:]
			r.hashes = r.hashes[1:]
			n.keys[ci] = r.keys[0]
		} else {
			c.children = append(c.children, r.children[0])
			c.keys = append(c.keys, n.keys[ci])
			n.keys[ci] = r.keys[0]
			r.children = r.children[1:]
			r.keys = r.keys[1:]
		}
		t.recompute(r)
		t.recompute(c)
		return
	}
	if ci > 0 {
		t.merge(n, ci-1)
	} else {
		t.merge(n, ci)
	}
}

// merge folds n.children[i+1] into n.children[i] and drops the
// separator between them.
func (t *Tree) merge(n *node, i int) {
	l, r := n.children[i], n.children[i+1]
	if l.leaf {
		l.keys = append(l.keys, r.keys...)
		l.hashes = append(l.hashes, r.hashes...)
	} else {
		l.keys = append(l.keys, n.keys[i])
		l.keys = append(l.keys, r.keys...)
		l.children = append(l.children, r.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
	t.recompute(l)
}

// Agg returns the aggregate over keys k with lo ≤ k < hi under plain
// bytewise comparison. Bounds may be any byte strings — truncated
// prefixes act as the prefix zero-padded to key length, and TopBound
// exceeds every key.
func (t *Tree) Agg(lo, hi []byte) Agg {
	var out Agg
	if bytes.Compare(lo, hi) >= 0 {
		return out
	}
	t.agg(t.root, lo, hi, &out)
	return out
}

func (t *Tree) agg(n *node, lo, hi []byte, out *Agg) {
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], lo) >= 0 })
		j := sort.Search(len(n.keys), func(j int) bool { return bytes.Compare(n.keys[j], hi) >= 0 })
		for ; i < j; i++ {
			out.Count++
			out.Fp ^= n.hashes[i]
		}
		return
	}
	a := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], lo) > 0 })
	b := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], hi) >= 0 })
	if a >= b {
		// lo and hi fall in the same child (a == b); a > b cannot happen.
		t.agg(n.children[a], lo, hi, out)
		return
	}
	t.agg(n.children[a], lo, hi, out)
	for j := a + 1; j < b; j++ {
		out.add(n.children[j].agg)
	}
	t.agg(n.children[b], lo, hi, out)
}

// Rank returns the number of keys strictly below bound.
func (t *Tree) Rank(bound []byte) int {
	r := 0
	n := t.root
	for !n.leaf {
		a := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], bound) > 0 })
		for j := 0; j < a; j++ {
			r += int(n.children[j].agg.Count)
		}
		n = n.children[a]
	}
	return r + sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], bound) >= 0 })
}

// At returns the i-th smallest key (0-based). The caller must keep
// 0 ≤ i < Len(); the returned slice is owned by the tree.
func (t *Tree) At(i int) []byte {
	n := t.root
	for !n.leaf {
		for _, c := range n.children {
			if uint64(i) < c.agg.Count {
				n = c
				break
			}
			i -= int(c.agg.Count)
		}
	}
	return n.keys[i]
}

// AppendRange appends the keys in [lo, hi) to dst in ascending order.
// The appended slices are owned by the tree.
func (t *Tree) AppendRange(dst [][]byte, lo, hi []byte) [][]byte {
	if bytes.Compare(lo, hi) >= 0 {
		return dst
	}
	return t.appendRange(dst, t.root, lo, hi)
}

func (t *Tree) appendRange(dst [][]byte, n *node, lo, hi []byte) [][]byte {
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], lo) >= 0 })
		j := sort.Search(len(n.keys), func(j int) bool { return bytes.Compare(n.keys[j], hi) >= 0 })
		return append(dst, n.keys[i:j]...)
	}
	a := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], lo) > 0 })
	b := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], hi) >= 0 })
	if a >= b {
		return t.appendRange(dst, n.children[a], lo, hi)
	}
	dst = t.appendRange(dst, n.children[a], lo, hi)
	for j := a + 1; j < b; j++ {
		dst = t.appendRange(dst, n.children[j], lo, hi)
	}
	return t.appendRange(dst, n.children[b], lo, hi)
}

// PartitionBounds returns up to parts-1 strictly ascending inner bounds
// that divide the tree's keys into near-equal runs — the seed for
// pipelining sibling subranges over parallel streams. Fewer bounds come
// back when the tree is too small to cut.
func (t *Tree) PartitionBounds(parts int) [][]byte {
	n := t.Len()
	var out [][]byte
	if parts < 2 || n < 2 {
		return out
	}
	if parts > n {
		parts = n
	}
	prev := -1
	for i := 1; i < parts; i++ {
		at := i * n / parts
		if at == prev || at == 0 {
			continue
		}
		prev = at
		out = append(out, CutBetween(t.At(at-1), t.At(at)))
	}
	return out
}

// Check verifies every structural invariant — key order and length,
// separator consistency, node fill, uniform depth, aggregate and hash
// correctness — and returns the first violation. It is the oracle for
// the tree fuzzer.
func (t *Tree) Check() error {
	_, err := t.check(t.root, true, nil, nil)
	if err != nil {
		return err
	}
	var prev []byte
	ok := true
	t.walk(t.root, func(k []byte) {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			ok = false
		}
		prev = k
	})
	if !ok {
		return errors.New("ranges: leaf keys not strictly ascending")
	}
	return nil
}

func (t *Tree) walk(n *node, fn func([]byte)) {
	if n.leaf {
		for _, k := range n.keys {
			fn(k)
		}
		return
	}
	for _, c := range n.children {
		t.walk(c, fn)
	}
}

func (t *Tree) check(n *node, root bool, lo, hi []byte) (int, error) {
	if n.leaf {
		if !root && (len(n.keys) < minLeaf || len(n.keys) > maxLeaf) {
			return 0, fmt.Errorf("ranges: leaf fill %d outside [%d,%d]", len(n.keys), minLeaf, maxLeaf)
		}
		if len(n.hashes) != len(n.keys) {
			return 0, errors.New("ranges: leaf hash/key length mismatch")
		}
		var agg Agg
		for i, k := range n.keys {
			if len(k) != t.keyLen {
				return 0, fmt.Errorf("ranges: leaf key length %d", len(k))
			}
			if lo != nil && bytes.Compare(k, lo) < 0 {
				return 0, errors.New("ranges: leaf key below separator bound")
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return 0, errors.New("ranges: leaf key at or above separator bound")
			}
			if n.hashes[i] != t.hash.Hash(k) {
				return 0, errors.New("ranges: stale leaf hash")
			}
			agg.Count++
			agg.Fp ^= n.hashes[i]
		}
		if agg != n.agg {
			return 0, fmt.Errorf("ranges: leaf aggregate %+v, recomputed %+v", n.agg, agg)
		}
		return 1, nil
	}
	fan := len(n.children)
	if root {
		if fan < 2 {
			return 0, fmt.Errorf("ranges: internal root fan %d < 2", fan)
		}
	} else if fan < minFan || fan > maxFan {
		return 0, fmt.Errorf("ranges: internal fan %d outside [%d,%d]", fan, minFan, maxFan)
	}
	if len(n.keys) != fan-1 {
		return 0, fmt.Errorf("ranges: internal node with %d keys, %d children", len(n.keys), fan)
	}
	for i := 1; i < len(n.keys); i++ {
		if bytes.Compare(n.keys[i-1], n.keys[i]) >= 0 {
			return 0, errors.New("ranges: separators not strictly ascending")
		}
	}
	var agg Agg
	depth := -1
	for i, c := range n.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = n.keys[i-1]
		}
		if i < len(n.keys) {
			chi = n.keys[i]
		}
		d, err := t.check(c, false, clo, chi)
		if err != nil {
			return 0, err
		}
		if depth == -1 {
			depth = d
		} else if d != depth {
			return 0, errors.New("ranges: uneven subtree depth")
		}
		agg.add(c.agg)
	}
	if agg != n.agg {
		return 0, fmt.Errorf("ranges: internal aggregate %+v, recomputed %+v", n.agg, agg)
	}
	return depth + 1, nil
}
