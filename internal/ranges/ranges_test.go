package ranges

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"

	"robustset/internal/points"
)

func TestKeyRoundtrip(t *testing.T) {
	u := points.Universe{Dim: 3, Delta: 1 << 16}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		p := points.Point{rng.Int63n(u.Delta), rng.Int63n(u.Delta), rng.Int63n(u.Delta)}
		occ := rng.Uint32()
		k := EncodeKey(nil, p, occ)
		if len(k) != KeyLen(u.Dim) {
			t.Fatalf("key length %d, want %d", len(k), KeyLen(u.Dim))
		}
		q, o, err := DecodeKey(k, u.Dim)
		if err != nil {
			t.Fatal(err)
		}
		if !q.Equal(p) || o != occ {
			t.Fatalf("roundtrip %v/%d -> %v/%d", p, occ, q, o)
		}
	}
	if _, _, err := DecodeKey(make([]byte, 5), 2); err == nil {
		t.Fatal("short key accepted")
	}
}

// TestKeyOrderIsMorton pins the bit layout: for dim 1 the Morton code is
// the plain big-endian coordinate, so key order equals numeric order.
func TestKeyOrderIsMorton(t *testing.T) {
	for _, c := range []int64{0, 1, 2, 255, 256, 1<<20 - 1} {
		k := EncodeKey(nil, points.Point{c}, 7)
		if got := binary.BigEndian.Uint64(k[:8]); got != uint64(c) {
			t.Fatalf("dim-1 morton of %d = %d", c, got)
		}
		if binary.BigEndian.Uint32(k[8:]) != 7 {
			t.Fatalf("occurrence suffix lost")
		}
	}
	// Dim 2: interleaving x=1,y=0 vs x=0,y=1 — x owns the higher bit of
	// each level pair.
	kx := EncodeKey(nil, points.Point{1, 0}, 0)
	ky := EncodeKey(nil, points.Point{0, 1}, 0)
	if bytes.Compare(ky, kx) >= 0 {
		t.Fatal("dim-0 coordinate must dominate the interleaving")
	}
}

func TestKeysOccurrenceIndexing(t *testing.T) {
	u := points.Universe{Dim: 2, Delta: 8}
	pts := []points.Point{{1, 2}, {3, 3}, {1, 2}, {1, 2}}
	keys := Keys(u, pts)
	if len(keys) != 4 {
		t.Fatalf("got %d keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			t.Fatal("keys not strictly ascending")
		}
	}
	seen := map[uint32]bool{}
	for _, k := range keys {
		p, occ, err := DecodeKey(k, 2)
		if err != nil {
			t.Fatal(err)
		}
		if p.Equal(points.Point{1, 2}) {
			seen[occ] = true
		}
	}
	for occ := uint32(0); occ < 3; occ++ {
		if !seen[occ] {
			t.Fatalf("missing occurrence %d of duplicated point", occ)
		}
	}
}

func TestCutBetween(t *testing.T) {
	lo := []byte{1, 2, 3, 4}
	hi := []byte{1, 2, 9, 9}
	cut := CutBetween(lo, hi)
	if bytes.Compare(cut, lo) <= 0 || bytes.Compare(cut, hi) > 0 {
		t.Fatalf("cut %v not in (lo, hi]", cut)
	}
	if len(cut) != 3 {
		t.Fatalf("cut length %d, want minimal 3", len(cut))
	}
	top := TopBound(4)
	for _, k := range [][]byte{lo, hi, {255, 255, 255, 255}} {
		if bytes.Compare(k, top) >= 0 {
			t.Fatalf("key %v not below TopBound", k)
		}
	}
}

func randKey(rng *rand.Rand, keyLen int) []byte {
	k := make([]byte, keyLen)
	// Small alphabet forces shared prefixes and duplicate candidates.
	for i := range k {
		k[i] = byte(rng.Intn(4))
	}
	return k
}

func TestTreeInsertDeleteAgainstReference(t *testing.T) {
	const keyLen = 6
	rng := rand.New(rand.NewSource(2))
	tr := NewTree(keyLen, 42)
	ref := map[string]bool{}
	var refKeys [][]byte
	rebuild := func() {
		refKeys = refKeys[:0]
		for k := range ref {
			refKeys = append(refKeys, []byte(k))
		}
		sort.Slice(refKeys, func(i, j int) bool { return bytes.Compare(refKeys[i], refKeys[j]) < 0 })
	}
	for step := 0; step < 4000; step++ {
		k := randKey(rng, keyLen)
		if ref[string(k)] || rng.Intn(3) == 0 && len(ref) > 0 {
			// Delete an existing key (or exercise the duplicate-insert error).
			if ref[string(k)] && rng.Intn(2) == 0 {
				if err := tr.Insert(k); err != ErrKeyExists {
					t.Fatalf("duplicate insert: %v", err)
				}
				continue
			}
			if !ref[string(k)] {
				for kk := range ref {
					k = []byte(kk)
					break
				}
			}
			if err := tr.Delete(k); err != nil {
				t.Fatalf("delete: %v", err)
			}
			delete(ref, string(k))
		} else {
			if err := tr.Insert(k); err != nil {
				t.Fatalf("insert: %v", err)
			}
			ref[string(k)] = true
		}
		if step%200 == 0 {
			if err := tr.Check(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	rebuild()
	if tr.Len() != len(refKeys) {
		t.Fatalf("len %d, want %d", tr.Len(), len(refKeys))
	}
	if err := tr.Delete(append(randKey(rng, keyLen-1), 9)); err == nil {
		t.Fatal("wrong-length delete accepted")
	} else if err != ErrKeyMissing {
		// A wrong-length key is simply absent.
		t.Fatalf("unexpected delete error: %v", err)
	}

	// Range queries against the sorted reference.
	refAgg := func(lo, hi []byte) Agg {
		var a Agg
		for _, k := range refKeys {
			if bytes.Compare(k, lo) >= 0 && bytes.Compare(k, hi) < 0 {
				a.Count++
				a.Fp ^= tr.hash.Hash(k)
			}
		}
		return a
	}
	for trial := 0; trial < 300; trial++ {
		lo := randKey(rng, rng.Intn(keyLen+1))
		hi := randKey(rng, rng.Intn(keyLen+1))
		if bytes.Compare(lo, hi) > 0 {
			lo, hi = hi, lo
		}
		if got, want := tr.Agg(lo, hi), refAgg(lo, hi); got != want {
			t.Fatalf("Agg(%x,%x) = %+v, want %+v", lo, hi, got, want)
		}
		wantRank := sort.Search(len(refKeys), func(i int) bool { return bytes.Compare(refKeys[i], lo) >= 0 })
		if got := tr.Rank(lo); got != wantRank {
			t.Fatalf("Rank(%x) = %d, want %d", lo, got, wantRank)
		}
		got := tr.AppendRange(nil, lo, hi)
		var want [][]byte
		for _, k := range refKeys {
			if bytes.Compare(k, lo) >= 0 && bytes.Compare(k, hi) < 0 {
				want = append(want, k)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("AppendRange count %d, want %d", len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("AppendRange[%d] = %x, want %x", i, got[i], want[i])
			}
		}
	}
	for i, k := range refKeys {
		if !bytes.Equal(tr.At(i), k) {
			t.Fatalf("At(%d) mismatch", i)
		}
	}
	whole := tr.Agg(nil, TopBound(keyLen))
	if whole != tr.Root() {
		t.Fatalf("whole-range agg %+v != root %+v", whole, tr.Root())
	}
}

func TestTreeBulkBuildMatchesIncremental(t *testing.T) {
	u := points.Universe{Dim: 2, Delta: 1 << 20}
	rng := rand.New(rand.NewSource(3))
	pts := make([]points.Point, 3000)
	for i := range pts {
		pts[i] = points.Point{rng.Int63n(u.Delta), rng.Int63n(u.Delta)}
	}
	pts[100] = pts[99].Clone() // force a duplicate
	keys := Keys(u, pts)
	bulk, err := NewFromSorted(KeyLen(u.Dim), 7, keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := bulk.Check(); err != nil {
		t.Fatal(err)
	}
	inc := NewTree(KeyLen(u.Dim), 7)
	for _, k := range keys {
		if err := inc.Insert(append([]byte(nil), k...)); err != nil {
			t.Fatal(err)
		}
	}
	if bulk.Root() != inc.Root() {
		t.Fatalf("bulk root %+v != incremental %+v", bulk.Root(), inc.Root())
	}
	if bulk.Len() != len(keys) {
		t.Fatalf("bulk len %d", bulk.Len())
	}
	bounds := bulk.PartitionBounds(8)
	if len(bounds) != 7 {
		t.Fatalf("got %d partition bounds", len(bounds))
	}
	var total Agg
	prev := []byte(nil)
	for _, b := range append(bounds, TopBound(bulk.KeyLen())) {
		if bytes.Compare(prev, b) >= 0 {
			t.Fatal("partition bounds not ascending")
		}
		part := bulk.Agg(prev, b)
		if part.Count == 0 {
			t.Fatal("empty partition")
		}
		total.add(part)
		prev = b
	}
	if total != bulk.Root() {
		t.Fatalf("partitions do not cover the tree: %+v vs %+v", total, bulk.Root())
	}

	if _, err := NewFromSorted(4, 1, [][]byte{{1, 2, 3}}); err == nil {
		t.Fatal("wrong-length bulk key accepted")
	}
	if _, err := NewFromSorted(2, 1, [][]byte{{1, 1}, {1, 1}}); err == nil {
		t.Fatal("non-ascending bulk keys accepted")
	}
}

// FuzzTreeOps drives a mutation script against the map-and-sorted-slice
// reference model and checks every structural invariant after each
// mutation batch, plus a final range-aggregate cross-check.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251, 252}, uint8(3))
	f.Add(bytes.Repeat([]byte{7}, 40), uint8(2))
	f.Fuzz(func(t *testing.T, script []byte, keyLenSeed uint8) {
		keyLen := 2 + int(keyLenSeed%4)
		tr := NewTree(keyLen, 99)
		ref := map[string]bool{}
		for len(script) >= 1+keyLen {
			op := script[0]
			k := append([]byte(nil), script[1:1+keyLen]...)
			script = script[1+keyLen:]
			switch {
			case op%2 == 0:
				err := tr.Insert(k)
				if ref[string(k)] {
					if err != ErrKeyExists {
						t.Fatalf("duplicate insert: %v", err)
					}
				} else if err != nil {
					t.Fatalf("insert: %v", err)
				} else {
					ref[string(k)] = true
				}
			default:
				err := tr.Delete(k)
				if ref[string(k)] {
					if err != nil {
						t.Fatalf("delete: %v", err)
					}
					delete(ref, string(k))
				} else if err != ErrKeyMissing {
					t.Fatalf("absent delete: %v", err)
				}
			}
			if err := tr.Check(); err != nil {
				t.Fatal(err)
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("len %d, want %d", tr.Len(), len(ref))
		}
		var want Agg
		for k := range ref {
			want.Count++
			want.Fp ^= tr.hash.Hash([]byte(k))
		}
		if got := tr.Agg(nil, TopBound(keyLen)); got != want {
			t.Fatalf("aggregate %+v, want %+v", got, want)
		}
	})
}
