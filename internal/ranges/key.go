// Package ranges implements the ordered-key machinery behind the ranged
// divide-and-conquer reconciliation strategy: a canonical order-preserving
// Morton (Z-order) encoding of points into fixed-length byte keys, and a
// balanced B-tree over those keys that maintains an XOR monoid fingerprint
// per subtree so any contiguous key range can be fingerprinted in
// O(B·log N) without touching the items.
//
// The key codec is part of the wire contract: both parties must derive the
// identical total order from a shared Universe, so the encoding is fully
// deterministic and versioned by the protocol, not by this package.
package ranges

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"

	"robustset/internal/points"
)

// KeyLen returns the encoded key length for a universe of the given
// dimension: 8 bytes per coordinate of interleaved Morton bits plus a
// 4-byte big-endian occurrence index that makes multiset keys unique.
func KeyLen(dim int) int { return 8*dim + 4 }

// occLen is the width of the occurrence-index suffix.
const occLen = 4

// EncodeKey appends the canonical key of the occ-th occurrence of p to
// dst and returns the extended slice. Coordinates must be non-negative
// (the points.Universe contract); the encoding interleaves the 64
// coordinate bits most-significant first, dimension-minor, so
// lexicographic byte order equals Morton order.
func EncodeKey(dst []byte, p points.Point, occ uint32) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, KeyLen(len(p)))...)
	mortonInto(dst[off:off+8*len(p)], p)
	binary.BigEndian.PutUint32(dst[off+8*len(p):], occ)
	return dst
}

// mortonInto writes the 8·d-byte Morton interleaving of p into buf,
// which must be zeroed and exactly 8·len(p) bytes.
func mortonInto(buf []byte, p points.Point) {
	d := len(p)
	for dim, c := range p {
		u := uint64(c)
		for u != 0 {
			level := bits.LeadingZeros64(u)
			pos := level*d + dim
			buf[pos>>3] |= 1 << (7 - pos&7)
			u &^= 1 << (63 - level)
		}
	}
}

// DecodeKey inverts EncodeKey: it recovers the point and occurrence
// index from a key of a dim-dimensional universe.
func DecodeKey(key []byte, dim int) (points.Point, uint32, error) {
	if len(key) != KeyLen(dim) {
		return nil, 0, fmt.Errorf("ranges: key length %d, want %d for dim %d", len(key), KeyLen(dim), dim)
	}
	p := make(points.Point, dim)
	total := 64 * dim
	for pos := 0; pos < total; pos++ {
		if key[pos>>3]&(1<<(7-pos&7)) != 0 {
			p[pos%dim] |= 1 << (63 - pos/dim)
		}
	}
	for _, c := range p {
		if c < 0 {
			return nil, 0, fmt.Errorf("ranges: key decodes to negative coordinate")
		}
	}
	return p, binary.BigEndian.Uint32(key[8*dim:]), nil
}

// Keys builds the sorted occurrence-indexed key multiset for pts: each
// point contributes one key per occurrence, suffixed 0,1,2,... so
// duplicates stay distinct and XOR fingerprints never cancel. The keys
// share one backing buffer; callers must treat them as immutable.
func Keys(u points.Universe, pts []points.Point) [][]byte {
	kl := KeyLen(u.Dim)
	buf := make([]byte, len(pts)*kl)
	keys := make([][]byte, len(pts))
	for i, p := range pts {
		k := buf[i*kl : (i+1)*kl : (i+1)*kl]
		mortonInto(k[:kl-occLen], p)
		keys[i] = k
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	// Occurrence suffixes were zero during the sort, so equal points are
	// adjacent; numbering them by run position keeps the slice sorted.
	for i := 0; i < len(keys); {
		j := i
		for j < len(keys) && bytes.Equal(keys[j][:kl-occLen], keys[i][:kl-occLen]) {
			j++
		}
		for r := i; r < j; r++ {
			binary.BigEndian.PutUint32(keys[r][kl-occLen:], uint32(r-i))
		}
		i = j
	}
	return keys
}

// TopBound returns a bound strictly greater than every key of the given
// length: one byte longer than a key and all-0xFF, so a plain
// bytes.Compare places every real key below it. The empty slice is the
// matching bottom bound (≤ every key).
func TopBound(keyLen int) []byte {
	b := make([]byte, keyLen+1)
	for i := range b {
		b[i] = 0xFF
	}
	return b
}

// CutBetween returns the shortest prefix of hi that still compares
// strictly greater than lo — the minimal separating bound between two
// adjacent keys, used to keep range boundaries short on the wire. lo
// and hi must be distinct equal-length keys with lo < hi.
func CutBetween(lo, hi []byte) []byte {
	i := 0
	for i < len(lo) && i < len(hi) && lo[i] == hi[i] {
		i++
	}
	return append([]byte(nil), hi[:i+1]...)
}
