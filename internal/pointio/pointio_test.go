package pointio

import (
	"bytes"
	"strings"
	"testing"

	"robustset/internal/points"
)

func TestRoundtrip(t *testing.T) {
	u := points.Universe{Dim: 3, Delta: 1 << 10}
	pts := []points.Point{{0, 1, 2}, {1023, 1023, 1023}, {500, 0, 7}}
	var buf bytes.Buffer
	if err := Write(&buf, u, pts); err != nil {
		t.Fatal(err)
	}
	gu, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gu != u {
		t.Fatalf("universe %+v, want %+v", gu, u)
	}
	if !points.EqualMultisets(got, pts) {
		t.Fatalf("points %v, want %v", got, pts)
	}
}

func TestEmptySetRoundtrip(t *testing.T) {
	u := points.Universe{Dim: 1, Delta: 4}
	var buf bytes.Buffer
	if err := Write(&buf, u, nil); err != nil {
		t.Fatal(err)
	}
	_, got, err := Read(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty roundtrip: %v %v", got, err)
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	u := points.Universe{Dim: 2, Delta: 16}
	var buf bytes.Buffer
	if err := Write(&buf, u, []points.Point{{99, 0}}); err == nil {
		t.Error("out-of-universe point written")
	}
}

func TestReadCommentsAndBlanks(t *testing.T) {
	input := "# robustset points v1\ndim=2 delta=16\n\n# a comment\n3 4\n\n5 6\n"
	_, got, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d points, want 2", len(got))
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad header":      "nope\ndim=2 delta=16\n",
		"missing uni":     "# robustset points v1\n",
		"bad uni":         "# robustset points v1\nd=2\n",
		"invalid uni":     "# robustset points v1\ndim=0 delta=16\n",
		"wrong arity":     "# robustset points v1\ndim=2 delta=16\n1 2 3\n",
		"not a number":    "# robustset points v1\ndim=2 delta=16\n1 x\n",
		"out of universe": "# robustset points v1\ndim=2 delta=16\n1 99\n",
	}
	for name, in := range cases {
		if _, _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
