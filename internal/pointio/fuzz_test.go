package pointio

import (
	"bytes"
	"strings"
	"testing"

	"robustset/internal/points"
)

// FuzzRead feeds arbitrary text through the point-file parser; valid
// parses must survive a write/read roundtrip unchanged.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	_ = Write(&buf, points.Universe{Dim: 2, Delta: 16}, []points.Point{{1, 2}, {3, 4}})
	f.Add(buf.String())
	f.Add("# robustset points v1\ndim=1 delta=4\n\n3\n")
	f.Add("")
	f.Add("# robustset points v1\ndim=0 delta=0\n")

	f.Fuzz(func(t *testing.T, data string) {
		u, pts, err := Read(strings.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, u, pts); err != nil {
			t.Fatalf("rewrite of parsed file failed: %v", err)
		}
		u2, pts2, err := Read(&out)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if u2 != u || !points.EqualMultisets(pts, pts2) {
			t.Fatal("roundtrip not stable")
		}
	})
}
