// Package pointio reads and writes point-set files for the command-line
// tools. The format is line-oriented text so datasets are diffable and
// scriptable:
//
//	# robustset points v1
//	dim=2 delta=1048576
//	12 34
//	56 78
//
// Blank lines and lines starting with '#' (after the header) are ignored.
package pointio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"robustset/internal/points"
)

// header is the mandatory first line.
const header = "# robustset points v1"

// Write emits a point set with its universe to w.
func Write(w io.Writer, u points.Universe, pts []points.Point) error {
	if err := u.CheckSet(pts); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, header)
	fmt.Fprintf(bw, "dim=%d delta=%d\n", u.Dim, u.Delta)
	for _, p := range pts {
		for i, c := range p {
			if i > 0 {
				bw.WriteByte(' ')
			}
			bw.WriteString(strconv.FormatInt(c, 10))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Read parses a point-set file.
func Read(r io.Reader) (points.Universe, []points.Point, error) {
	var u points.Universe
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	if !sc.Scan() {
		return u, nil, fmt.Errorf("pointio: empty file")
	}
	if strings.TrimSpace(sc.Text()) != header {
		return u, nil, fmt.Errorf("pointio: missing header %q", header)
	}
	if !sc.Scan() {
		return u, nil, fmt.Errorf("pointio: missing universe line")
	}
	if _, err := fmt.Sscanf(strings.TrimSpace(sc.Text()), "dim=%d delta=%d", &u.Dim, &u.Delta); err != nil {
		return u, nil, fmt.Errorf("pointio: bad universe line: %w", err)
	}
	if err := u.Validate(); err != nil {
		return u, nil, err
	}
	var pts []points.Point
	line := 2
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != u.Dim {
			return u, nil, fmt.Errorf("pointio: line %d: %d coordinates, want %d", line, len(fields), u.Dim)
		}
		p := make(points.Point, u.Dim)
		for i, f := range fields {
			c, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return u, nil, fmt.Errorf("pointio: line %d: %w", line, err)
			}
			p[i] = c
		}
		if !u.Contains(p) {
			return u, nil, fmt.Errorf("pointio: line %d: point %v outside universe", line, p)
		}
		pts = append(pts, p)
	}
	if err := sc.Err(); err != nil {
		return u, nil, err
	}
	return u, pts, nil
}
