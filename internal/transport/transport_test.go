package transport

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestPairRoundtrip(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	msg := []byte("hello over the pipe")
	if err := a.Send(bg, msg); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(bg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
	// Reverse direction.
	if err := b.Send(bg, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.Recv(bg); string(got) != "pong" {
		t.Fatalf("reverse direction got %q", got)
	}
}

func TestPairBufferIsolation(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	buf := []byte("mutate me")
	if err := a.Send(bg, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "XXXXXXXXX")
	got, _ := b.Recv(bg)
	if string(got) != "mutate me" {
		t.Fatalf("sender buffer reuse leaked: %q", got)
	}
}

func TestPairStats(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	payload := make([]byte, 100)
	for i := 0; i < 3; i++ {
		if err := a.Send(bg, payload); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Recv(bg); err != nil {
			t.Fatal(err)
		}
	}
	as, bs := a.Stats(), b.Stats()
	if as.MsgsSent != 3 || bs.MsgsRecv != 3 {
		t.Errorf("message counts: %+v %+v", as, bs)
	}
	if as.BytesSent != 3*104 || bs.BytesRecv != 3*104 {
		t.Errorf("byte counts with framing: sent %d recv %d, want 312", as.BytesSent, bs.BytesRecv)
	}
	if as.Total() != as.BytesSent+as.BytesRecv {
		t.Error("Total() inconsistent")
	}
	if as.String() == "" {
		t.Error("empty Stats string")
	}
}

func TestPairClose(t *testing.T) {
	a, b := Pair()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
	if err := a.Send(bg, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send on closed: %v", err)
	}
	if _, err := b.Recv(bg); err == nil {
		t.Error("recv from closed peer should fail")
	}
}

func TestPairDrainAfterPeerClose(t *testing.T) {
	a, b := Pair()
	if err := a.Send(bg, []byte("queued")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	got, err := b.Recv(bg)
	if err != nil || string(got) != "queued" {
		t.Fatalf("queued message lost after close: %q %v", got, err)
	}
	if _, err := b.Recv(bg); err == nil {
		t.Error("recv after drain should fail")
	}
}

func TestPairConcurrent(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	const n = 500
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := a.Send(bg, []byte{byte(i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			got, err := b.Recv(bg)
			if err != nil {
				t.Error(err)
				return
			}
			if got[0] != byte(i) {
				t.Errorf("out of order: msg %d = %d", i, got[0])
				return
			}
		}
	}()
	wg.Wait()
}

func connPair(t *testing.T) (Transport, Transport) {
	t.Helper()
	c1, c2 := net.Pipe()
	return NewConn(c1), NewConn(c2)
}

func TestConnRoundtrip(t *testing.T) {
	a, b := connPair(t)
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() {
		done <- a.Send(bg, bytes.Repeat([]byte("x"), 100000))
	}()
	got, err := b.Recv(bg)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(got) != 100000 {
		t.Fatalf("got %d bytes", len(got))
	}
	if s := b.Stats(); s.BytesRecv != 100004 {
		t.Errorf("framed byte count %d, want 100004", s.BytesRecv)
	}
}

func TestConnEmptyMessage(t *testing.T) {
	a, b := connPair(t)
	defer a.Close()
	defer b.Close()
	go a.Send(bg, nil)
	got, err := b.Recv(bg)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty message roundtrip: %v %v", got, err)
	}
}

func TestConnTornFrame(t *testing.T) {
	c1, c2 := net.Pipe()
	b := NewConn(c2)
	go func() {
		// Announce 100 bytes, deliver 10, then hang up.
		c1.Write([]byte{100, 0, 0, 0})
		c1.Write(make([]byte, 10))
		c1.Close()
	}()
	if _, err := b.Recv(bg); err == nil {
		t.Fatal("torn frame accepted")
	}
}

func TestConnOversizeFrameRejected(t *testing.T) {
	c1, c2 := net.Pipe()
	b := NewConn(c2)
	go func() {
		// Announce a frame beyond MaxFrameSize.
		c1.Write([]byte{0xff, 0xff, 0xff, 0xff})
	}()
	if _, err := b.Recv(bg); err == nil {
		t.Fatal("oversize frame accepted")
	}
	c1.Close()
	a := NewConn(c1)
	if err := a.Send(bg, make([]byte, MaxFrameSize+1)); err == nil {
		t.Fatal("oversize send accepted")
	}
}

func TestConnEOF(t *testing.T) {
	c1, c2 := net.Pipe()
	b := NewConn(c2)
	c1.Close()
	if _, err := b.Recv(bg); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestConnOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan []byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- nil
			return
		}
		tr := NewConn(conn)
		defer tr.Close()
		msg, err := tr.Recv(bg)
		if err != nil {
			done <- nil
			return
		}
		tr.Send(bg, append([]byte("echo:"), msg...))
		done <- msg
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewConn(conn)
	defer tr.Close()
	if err := tr.Send(bg, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	reply, err := tr.Recv(bg)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "echo:over tcp" {
		t.Fatalf("reply %q", reply)
	}
	if got := <-done; string(got) != "over tcp" {
		t.Fatalf("server saw %q", got)
	}
}

// bg is the do-not-cancel context used by the pre-existing tests.
var bg = context.Background()

func TestPairRecvCancel(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv(ctx)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not observe cancellation")
	}
}

func TestPairSendCancelWhenFull(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	// Fill the pipe's buffer so the next send blocks.
	filled := make(chan error, 1)
	go func() {
		var err error
		for err == nil {
			err = a.Send(ctx, make([]byte, 1))
		}
		filled <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-filled:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Send did not observe cancellation")
	}
}

func TestConnRecvCancel(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	b := NewConn(c2)
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv(ctx)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked conn Recv did not observe cancellation")
	}
}

func TestConnRecvDeadline(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	b := NewConn(c2)
	defer b.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := b.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	// The expired deadline must not leak into a context-free operation.
	go func() {
		a := NewConn(c1)
		a.Send(context.Background(), []byte("after"))
	}()
	got, err := b.Recv(context.Background())
	if err != nil || string(got) != "after" {
		t.Fatalf("deadline leaked into later Recv: %q %v", got, err)
	}
}

func TestConnSendCancel(t *testing.T) {
	// net.Pipe has no buffering: a Send with no reader blocks until the
	// watcher pokes the write deadline.
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	a := NewConn(c1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- a.Send(ctx, make([]byte, 1<<16))
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked conn Send did not observe cancellation")
	}
}

func TestConnLimit(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	a, b := NewConnLimit(c1, 8), NewConnLimit(c2, 8)
	if err := a.Send(bg, make([]byte, 9)); err == nil {
		t.Fatal("send above limit accepted")
	}
	go a.Send(bg, make([]byte, 8))
	if got, err := b.Recv(bg); err != nil || len(got) != 8 {
		t.Fatalf("at-limit message rejected: %v %v", got, err)
	}
	// A frame announced above the receiver's limit is corrupt.
	go c1.Write([]byte{9, 0, 0, 0})
	if _, err := b.Recv(bg); err == nil {
		t.Fatal("oversize announced frame accepted")
	}
}
