package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
)

func TestPairRoundtrip(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	msg := []byte("hello over the pipe")
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
	// Reverse direction.
	if err := b.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.Recv(); string(got) != "pong" {
		t.Fatalf("reverse direction got %q", got)
	}
}

func TestPairBufferIsolation(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	buf := []byte("mutate me")
	if err := a.Send(buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "XXXXXXXXX")
	got, _ := b.Recv()
	if string(got) != "mutate me" {
		t.Fatalf("sender buffer reuse leaked: %q", got)
	}
}

func TestPairStats(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	payload := make([]byte, 100)
	for i := 0; i < 3; i++ {
		if err := a.Send(payload); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	as, bs := a.Stats(), b.Stats()
	if as.MsgsSent != 3 || bs.MsgsRecv != 3 {
		t.Errorf("message counts: %+v %+v", as, bs)
	}
	if as.BytesSent != 3*104 || bs.BytesRecv != 3*104 {
		t.Errorf("byte counts with framing: sent %d recv %d, want 312", as.BytesSent, bs.BytesRecv)
	}
	if as.Total() != as.BytesSent+as.BytesRecv {
		t.Error("Total() inconsistent")
	}
	if as.String() == "" {
		t.Error("empty Stats string")
	}
}

func TestPairClose(t *testing.T) {
	a, b := Pair()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
	if err := a.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("send on closed: %v", err)
	}
	if _, err := b.Recv(); err == nil {
		t.Error("recv from closed peer should fail")
	}
}

func TestPairDrainAfterPeerClose(t *testing.T) {
	a, b := Pair()
	if err := a.Send([]byte("queued")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	got, err := b.Recv()
	if err != nil || string(got) != "queued" {
		t.Fatalf("queued message lost after close: %q %v", got, err)
	}
	if _, err := b.Recv(); err == nil {
		t.Error("recv after drain should fail")
	}
}

func TestPairConcurrent(t *testing.T) {
	a, b := Pair()
	defer a.Close()
	defer b.Close()
	const n = 500
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := a.Send([]byte{byte(i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			got, err := b.Recv()
			if err != nil {
				t.Error(err)
				return
			}
			if got[0] != byte(i) {
				t.Errorf("out of order: msg %d = %d", i, got[0])
				return
			}
		}
	}()
	wg.Wait()
}

func connPair(t *testing.T) (Transport, Transport) {
	t.Helper()
	c1, c2 := net.Pipe()
	return NewConn(c1), NewConn(c2)
}

func TestConnRoundtrip(t *testing.T) {
	a, b := connPair(t)
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() {
		done <- a.Send(bytes.Repeat([]byte("x"), 100000))
	}()
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(got) != 100000 {
		t.Fatalf("got %d bytes", len(got))
	}
	if s := b.Stats(); s.BytesRecv != 100004 {
		t.Errorf("framed byte count %d, want 100004", s.BytesRecv)
	}
}

func TestConnEmptyMessage(t *testing.T) {
	a, b := connPair(t)
	defer a.Close()
	defer b.Close()
	go a.Send(nil)
	got, err := b.Recv()
	if err != nil || len(got) != 0 {
		t.Fatalf("empty message roundtrip: %v %v", got, err)
	}
}

func TestConnTornFrame(t *testing.T) {
	c1, c2 := net.Pipe()
	b := NewConn(c2)
	go func() {
		// Announce 100 bytes, deliver 10, then hang up.
		c1.Write([]byte{100, 0, 0, 0})
		c1.Write(make([]byte, 10))
		c1.Close()
	}()
	if _, err := b.Recv(); err == nil {
		t.Fatal("torn frame accepted")
	}
}

func TestConnOversizeFrameRejected(t *testing.T) {
	c1, c2 := net.Pipe()
	b := NewConn(c2)
	go func() {
		// Announce a frame beyond MaxFrameSize.
		c1.Write([]byte{0xff, 0xff, 0xff, 0xff})
	}()
	if _, err := b.Recv(); err == nil {
		t.Fatal("oversize frame accepted")
	}
	c1.Close()
	a := NewConn(c1)
	if err := a.Send(make([]byte, MaxFrameSize+1)); err == nil {
		t.Fatal("oversize send accepted")
	}
}

func TestConnEOF(t *testing.T) {
	c1, c2 := net.Pipe()
	b := NewConn(c2)
	c1.Close()
	if _, err := b.Recv(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestConnOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan []byte, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- nil
			return
		}
		tr := NewConn(conn)
		defer tr.Close()
		msg, err := tr.Recv()
		if err != nil {
			done <- nil
			return
		}
		tr.Send(append([]byte("echo:"), msg...))
		done <- msg
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewConn(conn)
	defer tr.Close()
	if err := tr.Send([]byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	reply, err := tr.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "echo:over tcp" {
		t.Fatalf("reply %q", reply)
	}
	if got := <-done; string(got) != "over tcp" {
		t.Fatalf("server saw %q", got)
	}
}
