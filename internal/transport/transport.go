// Package transport provides the message-oriented links the two-party
// reconciliation protocols run over, with byte-level accounting. Two
// implementations are provided: an in-process pipe (for tests, examples
// and the experiment harness — the "two-host protocol simulation") and a
// length-prefixed framing over any net.Conn (net.Pipe, TCP), which is what
// a real deployment uses.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Transport is a reliable, ordered, message-preserving duplex link.
// Implementations are safe for one concurrent sender plus one concurrent
// receiver (the pattern every protocol here uses).
type Transport interface {
	// Send transmits one message.
	Send(msg []byte) error
	// Recv blocks for the next message. It returns io.EOF after the peer
	// closes cleanly.
	Recv() ([]byte, error)
	// Close releases the link. Safe to call multiple times.
	Close() error
	// Stats returns a snapshot of the link's accounting.
	Stats() Stats
}

// Stats counts traffic on one endpoint. Protocol experiments read these
// to report communication costs; bytes include framing overhead so the
// numbers match what a network would carry.
type Stats struct {
	BytesSent, BytesRecv int64
	MsgsSent, MsgsRecv   int64
}

// Total returns bytes sent plus received.
func (s Stats) Total() int64 { return s.BytesSent + s.BytesRecv }

func (s Stats) String() string {
	return fmt.Sprintf("sent %dB/%d msgs, recv %dB/%d msgs", s.BytesSent, s.MsgsSent, s.BytesRecv, s.MsgsRecv)
}

// counters is the shared atomic implementation of Stats tracking.
type counters struct {
	bytesSent, bytesRecv atomic.Int64
	msgsSent, msgsRecv   atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		BytesSent: c.bytesSent.Load(),
		BytesRecv: c.bytesRecv.Load(),
		MsgsSent:  c.msgsSent.Load(),
		MsgsRecv:  c.msgsRecv.Load(),
	}
}

// ErrClosed is returned for operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// frameOverhead is the per-message framing cost (u32 length prefix),
// charged by both implementations so accounting is comparable.
const frameOverhead = 4

// MaxFrameSize bounds a single message; a peer announcing more is treated
// as corrupt rather than trusted with an allocation.
const MaxFrameSize = 1 << 28 // 256 MiB

// ---------------------------------------------------------------------
// In-memory pipe

type memEnd struct {
	send    chan<- []byte
	recv    <-chan []byte
	closeMu sync.Mutex
	closed  chan struct{}
	peer    *memEnd
	ctrs    counters
}

// Pair returns the two endpoints of an in-memory link. Messages are
// copied, so callers may reuse buffers.
func Pair() (alice, bob Transport) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	a := &memEnd{send: ab, recv: ba, closed: make(chan struct{})}
	b := &memEnd{send: ba, recv: ab, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (m *memEnd) Send(msg []byte) error {
	// Check closure first and separately: in a combined select Go picks
	// uniformly among ready cases, which would let a send sneak through
	// after Close whenever the buffer has room.
	select {
	case <-m.closed:
		return ErrClosed
	case <-m.peer.closed:
		return ErrClosed
	default:
	}
	cp := append([]byte(nil), msg...)
	select {
	case <-m.closed:
		return ErrClosed
	case <-m.peer.closed:
		return ErrClosed
	case m.send <- cp:
		m.ctrs.bytesSent.Add(int64(len(msg) + frameOverhead))
		m.ctrs.msgsSent.Add(1)
		return nil
	}
}

func (m *memEnd) Recv() ([]byte, error) {
	select {
	case msg, ok := <-m.recv:
		if !ok {
			return nil, io.EOF
		}
		m.ctrs.bytesRecv.Add(int64(len(msg) + frameOverhead))
		m.ctrs.msgsRecv.Add(1)
		return msg, nil
	case <-m.closed:
		// Drain anything already queued before reporting closure.
		select {
		case msg, ok := <-m.recv:
			if !ok {
				return nil, io.EOF
			}
			m.ctrs.bytesRecv.Add(int64(len(msg) + frameOverhead))
			m.ctrs.msgsRecv.Add(1)
			return msg, nil
		default:
			return nil, ErrClosed
		}
	case <-m.peer.closed:
		select {
		case msg, ok := <-m.recv:
			if !ok {
				return nil, io.EOF
			}
			m.ctrs.bytesRecv.Add(int64(len(msg) + frameOverhead))
			m.ctrs.msgsRecv.Add(1)
			return msg, nil
		default:
			return nil, io.EOF
		}
	}
}

func (m *memEnd) Close() error {
	m.closeMu.Lock()
	defer m.closeMu.Unlock()
	select {
	case <-m.closed:
		return nil
	default:
		close(m.closed)
	}
	return nil
}

func (m *memEnd) Stats() Stats { return m.ctrs.snapshot() }

// ---------------------------------------------------------------------
// net.Conn framing

type connTransport struct {
	conn    net.Conn
	sendMu  sync.Mutex
	recvMu  sync.Mutex
	ctrs    counters
	lenBuf  [frameOverhead]byte
	rLenBuf [frameOverhead]byte
}

// NewConn wraps a net.Conn (TCP, net.Pipe, Unix socket) with u32
// little-endian length framing.
func NewConn(c net.Conn) Transport { return &connTransport{conn: c} }

func (t *connTransport) Send(msg []byte) error {
	if len(msg) > MaxFrameSize {
		return fmt.Errorf("transport: message of %d bytes exceeds frame limit", len(msg))
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	binary.LittleEndian.PutUint32(t.lenBuf[:], uint32(len(msg)))
	if _, err := t.conn.Write(t.lenBuf[:]); err != nil {
		return err
	}
	if _, err := t.conn.Write(msg); err != nil {
		return err
	}
	t.ctrs.bytesSent.Add(int64(len(msg) + frameOverhead))
	t.ctrs.msgsSent.Add(1)
	return nil
}

func (t *connTransport) Recv() ([]byte, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	if _, err := io.ReadFull(t.conn, t.rLenBuf[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("transport: torn frame header: %w", err)
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(t.rLenBuf[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("transport: peer announced %d-byte frame (limit %d)", n, MaxFrameSize)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(t.conn, msg); err != nil {
		return nil, fmt.Errorf("transport: torn frame body: %w", err)
	}
	t.ctrs.bytesRecv.Add(int64(int(n) + frameOverhead))
	t.ctrs.msgsRecv.Add(1)
	return msg, nil
}

func (t *connTransport) Close() error { return t.conn.Close() }

func (t *connTransport) Stats() Stats { return t.ctrs.snapshot() }
