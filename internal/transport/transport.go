// Package transport provides the message-oriented links the two-party
// reconciliation protocols run over, with byte-level accounting. Two
// implementations are provided: an in-process pipe (for tests, examples
// and the experiment harness — the "two-host protocol simulation") and a
// length-prefixed framing over any net.Conn (net.Pipe, TCP), which is what
// a real deployment uses.
//
// Every blocking operation takes a context.Context: cancelling it aborts
// an in-flight Send or Recv promptly (for the net.Conn framing, by
// poking the connection's read/write deadline), and a context deadline is
// propagated onto the connection so a stalled peer cannot hold a session
// forever.
package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"robustset/internal/trace"
)

// Transport is a reliable, ordered, message-preserving duplex link.
// Implementations are safe for one concurrent sender plus one concurrent
// receiver (the pattern every protocol here uses).
type Transport interface {
	// Send transmits one message. Cancelling ctx aborts a blocked send.
	// Implementations do not retain msg after Send returns, so callers
	// may immediately reuse (or recycle) the buffer.
	Send(ctx context.Context, msg []byte) error
	// Recv blocks for the next message. It returns io.EOF after the peer
	// closes cleanly; cancelling ctx aborts a blocked receive with
	// ctx.Err().
	//
	// The returned slice is valid only until the next Recv on the same
	// transport — implementations may reuse the buffer. Callers that
	// need the bytes longer must copy them first (every protocol parser
	// in this module does).
	Recv(ctx context.Context) ([]byte, error)
	// Close releases the link. Safe to call multiple times.
	Close() error
	// Stats returns a snapshot of the link's accounting.
	Stats() Stats
}

// Stats counts traffic on one endpoint. Protocol experiments read these
// to report communication costs; bytes include framing overhead so the
// numbers match what a network would carry.
type Stats struct {
	BytesSent, BytesRecv int64
	MsgsSent, MsgsRecv   int64
}

// Total returns bytes sent plus received.
func (s Stats) Total() int64 { return s.BytesSent + s.BytesRecv }

// Add accumulates another endpoint's counts into s — merging the stats
// of parallel streams into one session total.
func (s *Stats) Add(o Stats) {
	s.BytesSent += o.BytesSent
	s.BytesRecv += o.BytesRecv
	s.MsgsSent += o.MsgsSent
	s.MsgsRecv += o.MsgsRecv
}

func (s Stats) String() string {
	return fmt.Sprintf("sent %dB/%d msgs, recv %dB/%d msgs", s.BytesSent, s.MsgsSent, s.BytesRecv, s.MsgsRecv)
}

// counters is the shared atomic implementation of Stats tracking.
type counters struct {
	bytesSent, bytesRecv atomic.Int64
	msgsSent, msgsRecv   atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		BytesSent: c.bytesSent.Load(),
		BytesRecv: c.bytesRecv.Load(),
		MsgsSent:  c.msgsSent.Load(),
		MsgsRecv:  c.msgsRecv.Load(),
	}
}

// ErrClosed is returned for operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// traceFrame attributes one message's wire bytes (payload plus framing
// overhead, i.e. exactly what the transport's own counters charge) to
// the session trace carried by ctx, keyed by the message's leading
// protocol tag byte. An untraced context is a zero-allocation no-op,
// so the call sits beside every counter charge unconditionally.
func traceFrame(ctx context.Context, msg []byte, out bool, n int) {
	if tr := trace.FromContext(ctx); tr != nil && len(msg) > 0 {
		tr.Frame(msg[0], out, n)
	}
}

// frameOverhead is the per-message framing cost (u32 length prefix),
// charged by both implementations so accounting is comparable.
const frameOverhead = 4

// MaxFrameSize bounds a single message; a peer announcing more is treated
// as corrupt rather than trusted with an allocation.
const MaxFrameSize = 1 << 28 // 256 MiB

// ---------------------------------------------------------------------
// In-memory pipe

type memEnd struct {
	send    chan<- []byte
	recv    <-chan []byte
	closeMu sync.Mutex
	closed  chan struct{}
	peer    *memEnd
	ctrs    counters
}

// Pair returns the two endpoints of an in-memory link. Messages are
// copied, so callers may reuse buffers.
func Pair() (alice, bob Transport) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	a := &memEnd{send: ab, recv: ba, closed: make(chan struct{})}
	b := &memEnd{send: ba, recv: ab, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (m *memEnd) Send(ctx context.Context, msg []byte) error {
	// Check closure and cancellation first and separately: in a combined
	// select Go picks uniformly among ready cases, which would let a send
	// sneak through after Close whenever the buffer has room.
	select {
	case <-m.closed:
		return ErrClosed
	case <-m.peer.closed:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	cp := append([]byte(nil), msg...)
	select {
	case <-m.closed:
		return ErrClosed
	case <-m.peer.closed:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	case m.send <- cp:
		m.ctrs.bytesSent.Add(int64(len(msg) + frameOverhead))
		m.ctrs.msgsSent.Add(1)
		traceFrame(ctx, msg, true, len(msg)+frameOverhead)
		return nil
	}
}

func (m *memEnd) Recv(ctx context.Context) ([]byte, error) {
	select {
	case msg, ok := <-m.recv:
		if !ok {
			return nil, io.EOF
		}
		m.ctrs.bytesRecv.Add(int64(len(msg) + frameOverhead))
		m.ctrs.msgsRecv.Add(1)
		traceFrame(ctx, msg, false, len(msg)+frameOverhead)
		return msg, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-m.closed:
		// Drain anything already queued before reporting closure.
		select {
		case msg, ok := <-m.recv:
			if !ok {
				return nil, io.EOF
			}
			m.ctrs.bytesRecv.Add(int64(len(msg) + frameOverhead))
			m.ctrs.msgsRecv.Add(1)
			traceFrame(ctx, msg, false, len(msg)+frameOverhead)
			return msg, nil
		default:
			return nil, ErrClosed
		}
	case <-m.peer.closed:
		select {
		case msg, ok := <-m.recv:
			if !ok {
				return nil, io.EOF
			}
			m.ctrs.bytesRecv.Add(int64(len(msg) + frameOverhead))
			m.ctrs.msgsRecv.Add(1)
			traceFrame(ctx, msg, false, len(msg)+frameOverhead)
			return msg, nil
		default:
			return nil, io.EOF
		}
	}
}

func (m *memEnd) Close() error {
	m.closeMu.Lock()
	defer m.closeMu.Unlock()
	select {
	case <-m.closed:
		return nil
	default:
		close(m.closed)
	}
	return nil
}

func (m *memEnd) Stats() Stats { return m.ctrs.snapshot() }

// ---------------------------------------------------------------------
// net.Conn framing

type connTransport struct {
	conn     net.Conn
	maxFrame int
	sendMu   sync.Mutex
	recvMu   sync.Mutex
	ctrs     counters
	lenBuf   [frameOverhead]byte
	rLenBuf  [frameOverhead]byte
	// wbufs is the two-element vector handed to net.Buffers so the
	// length prefix and payload leave in one writev (one TCP segment for
	// small messages) instead of two Writes. Guarded by sendMu.
	wbufs [2][]byte
	// rbuf is the grow-only receive buffer Recv reads frames into — the
	// reuse behind the "valid until next Recv" contract. Guarded by
	// recvMu. Frames above maxRetainedFrame are allocated fresh so a
	// one-off jumbo frame is not pinned for the connection's lifetime.
	rbuf []byte
}

// NewConn wraps a net.Conn (TCP, net.Pipe, Unix socket) with u32
// little-endian length framing.
func NewConn(c net.Conn) Transport { return NewConnLimit(c, 0) }

// NewConnLimit is NewConn with a per-message size cap: messages larger
// than maxFrame are refused locally before transmission and a peer
// announcing a larger frame is treated as corrupt. maxFrame <= 0 or
// > MaxFrameSize means the package-wide MaxFrameSize.
func NewConnLimit(c net.Conn, maxFrame int) Transport {
	if maxFrame <= 0 || maxFrame > MaxFrameSize {
		maxFrame = MaxFrameSize
	}
	return &connTransport{conn: c, maxFrame: maxFrame}
}

// MuxFrameOverhead is the largest mux frame header (uvarint stream id +
// type byte) a frame can carry on top of its payload.
const MuxFrameOverhead = binary.MaxVarintLen64 + 1

// NewMuxConnLimit is NewConnLimit for a connection that will carry MUX1
// frames: the cap is raised by MuxFrameOverhead so a protocol message
// exactly at the session's size limit still fits in one mux frame —
// without the headroom, a maximal legal message would fail the carrier's
// frame check and tear down every stream on the connection. The
// handshake that precedes the mux upgrade rides the same transport; its
// messages are tiny, so the extra headroom is immaterial there.
func NewMuxConnLimit(c net.Conn, maxFrame int) Transport {
	if maxFrame <= 0 || maxFrame > MaxFrameSize {
		maxFrame = MaxFrameSize
	}
	return &connTransport{conn: c, maxFrame: maxFrame + MuxFrameOverhead}
}

// aLongTimeAgo is a non-zero time in the distant past, used to force a
// blocked read or write to return immediately (the net package treats any
// past deadline as "fail pending I/O now").
var aLongTimeAgo = time.Unix(1, 0)

// watch arms cancellation for one blocking conn operation: the context's
// deadline (or none) is installed via setDeadline, and if the context is
// cancellable a watcher goroutine pokes a past deadline into the
// connection the moment it fires. The returned stop function must be
// called when the operation completes; it waits for the watcher so no
// deadline poke can leak into a later operation.
func watch(ctx context.Context, setDeadline func(time.Time) error) (stop func(), err error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	deadline, _ := ctx.Deadline()
	// Install the context's deadline — or clear any deadline a previous
	// operation left behind.
	_ = setDeadline(deadline)
	done := ctx.Done()
	if done == nil {
		return func() {}, nil
	}
	stopCh := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-done:
			_ = setDeadline(aLongTimeAgo)
		case <-stopCh:
		}
	}()
	return func() {
		close(stopCh)
		<-exited
	}, nil
}

// ctxErr substitutes ctx.Err() for I/O errors caused by a cancellation
// poke, so callers observe context.Canceled / DeadlineExceeded instead of
// an opaque "i/o timeout".
func ctxErr(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	// The connection deadline is installed from the context's, and the
	// net poller's timer can fire a scheduling hair before the context's
	// own timer marks it done. If the I/O failure is a timeout and the
	// context's deadline has in fact passed, report DeadlineExceeded —
	// otherwise the error taxonomy would depend on which timer won.
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		if dl, ok := ctx.Deadline(); ok && !time.Now().Before(dl) {
			return context.DeadlineExceeded
		}
	}
	return err
}

func (t *connTransport) Send(ctx context.Context, msg []byte) error {
	if len(msg) > t.maxFrame {
		return fmt.Errorf("transport: message of %d bytes exceeds frame limit %d", len(msg), t.maxFrame)
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	stop, err := watch(ctx, t.conn.SetWriteDeadline)
	if err != nil {
		return err
	}
	defer stop()
	binary.LittleEndian.PutUint32(t.lenBuf[:], uint32(len(msg)))
	// Prefix and payload go out as one writev: a single syscall, and for
	// messages under the MSS a single TCP segment instead of two.
	// net.Buffers falls back to sequential Writes on connections without
	// writev (net.Pipe), which is no worse than writing them separately.
	t.wbufs[0] = t.lenBuf[:]
	t.wbufs[1] = msg
	bufs := net.Buffers(t.wbufs[:])
	_, err = bufs.WriteTo(t.conn)
	t.wbufs[1] = nil // do not retain the caller's buffer
	if err != nil {
		return ctxErr(ctx, err)
	}
	t.ctrs.bytesSent.Add(int64(len(msg) + frameOverhead))
	t.ctrs.msgsSent.Add(1)
	traceFrame(ctx, msg, true, len(msg)+frameOverhead)
	return nil
}

func (t *connTransport) Recv(ctx context.Context) ([]byte, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	stop, err := watch(ctx, t.conn.SetReadDeadline)
	if err != nil {
		return nil, err
	}
	defer stop()
	if _, err := io.ReadFull(t.conn, t.rLenBuf[:]); err != nil {
		if cerr := ctxErr(ctx, err); cerr != err {
			return nil, cerr
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("transport: torn frame header: %w", err)
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(t.rLenBuf[:])
	if int64(n) > int64(t.maxFrame) {
		return nil, fmt.Errorf("transport: peer announced %d-byte frame (limit %d)", n, t.maxFrame)
	}
	var msg []byte
	if n <= maxRetainedFrame && BufferPoolingEnabled() {
		if cap(t.rbuf) < int(n) {
			t.rbuf = make([]byte, n)
		}
		msg = t.rbuf[:n]
	} else {
		msg = make([]byte, n)
	}
	if _, err := io.ReadFull(t.conn, msg); err != nil {
		if cerr := ctxErr(ctx, err); cerr != err {
			return nil, cerr
		}
		return nil, fmt.Errorf("transport: torn frame body: %w", err)
	}
	t.ctrs.bytesRecv.Add(int64(int(n) + frameOverhead))
	t.ctrs.msgsRecv.Add(1)
	traceFrame(ctx, msg, false, int(n)+frameOverhead)
	return msg, nil
}

func (t *connTransport) Close() error { return t.conn.Close() }

func (t *connTransport) Stats() Stats { return t.ctrs.snapshot() }
