package transport

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Buffer recycling for the serving path. The transport reuses one
// receive buffer per connection (Recv's contract: the returned slice is
// valid only until the next Recv), the mux demux copies each DATA
// payload out of that buffer into a recycled buffer which the consuming
// stream returns on its next Recv, and the protocol layer borrows
// send-encoding buffers the same way — so a steady-state reconciliation
// session allocates nothing per message instead of one buffer per frame
// on each side.
//
// Buffers live in power-of-two size classes from 64 B to 1 MiB (one
// class above DefaultMuxWindow, so every conforming DATA payload is
// poolable); larger requests fall back to plain allocation. Each class
// keeps a small bounded stack under a mutex — the handful of
// lock operations per message is noise next to the syscalls the message
// already costs, and unlike sync.Pool a Put needs no per-call
// interface allocation.

const (
	poolMinShift   = 6  // smallest pooled class: 64 B
	poolMaxShift   = 20 // largest pooled class: 1 MiB
	poolClassCount = poolMaxShift - poolMinShift + 1
	perClassLimit  = 32 // buffers retained per class
)

// maxRetainedFrame bounds the per-connection receive and frame-encoding
// scratch buffers: a one-off jumbo frame is allocated fresh and dropped
// rather than pinned for the connection's lifetime.
const maxRetainedFrame = 1 << 22 // 4 MiB

// poolingDisabled switches every buffer-recycling path back to
// fresh-allocation behavior. Off by default (pooling on).
var poolingDisabled atomic.Bool

// SetBufferPooling toggles buffer recycling on the serving path
// process-wide. Pooling is on by default; the off switch exists so
// tests and the load harness can compare pooled against fresh-allocated
// behavior (results must be byte-identical, only allocs/op may differ).
func SetBufferPooling(on bool) { poolingDisabled.Store(!on) }

// BufferPoolingEnabled reports whether buffer recycling is on.
func BufferPoolingEnabled() bool { return !poolingDisabled.Load() }

// bufPool is a set of per-size-class buffer stacks.
type bufPool struct {
	mu      sync.Mutex
	classes [poolClassCount][][]byte
}

// pool is the process-wide buffer pool shared by all muxes and the
// protocol send path.
var pool bufPool

// GetBuf returns a length-n byte slice, recycled when a pooled buffer
// of n's size class is available. The caller owns the buffer until it
// passes it to PutBuf (or forever — dropping it is always safe).
func GetBuf(n int) []byte { return pool.get(n) }

// PutBuf recycles a buffer previously returned by GetBuf. The caller
// must not touch b afterwards. Buffers whose capacity is not a pooled
// size class are dropped silently, so PutBuf is safe on any slice.
func PutBuf(b []byte) { pool.put(b) }

func (p *bufPool) get(n int) []byte {
	if n == 0 {
		return []byte{}
	}
	shift := bits.Len(uint(n - 1))
	if shift < poolMinShift {
		shift = poolMinShift
	}
	if shift > poolMaxShift || poolingDisabled.Load() {
		return make([]byte, n)
	}
	c := shift - poolMinShift
	p.mu.Lock()
	if s := p.classes[c]; len(s) > 0 {
		b := s[len(s)-1]
		s[len(s)-1] = nil
		p.classes[c] = s[:len(s)-1]
		p.mu.Unlock()
		return b[:n]
	}
	p.mu.Unlock()
	return make([]byte, n, 1<<shift)
}

func (p *bufPool) put(b []byte) {
	c := cap(b)
	if c < 1<<poolMinShift || c > 1<<poolMaxShift ||
		bits.OnesCount(uint(c)) != 1 || poolingDisabled.Load() {
		return
	}
	cl := bits.TrailingZeros(uint(c)) - poolMinShift
	p.mu.Lock()
	if len(p.classes[cl]) < perClassLimit {
		p.classes[cl] = append(p.classes[cl], b[:c])
	}
	p.mu.Unlock()
}
