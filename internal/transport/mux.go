// MUX1: stream multiplexing over one Transport. A Mux carries many
// independent message streams — each implementing the Transport interface,
// so every protocol in this module runs over a mux stream unchanged —
// across a single underlying link, with per-stream flow control so one
// slow consumer cannot absorb the connection's memory, and per-stream
// close/reset so a failed session tears down without disturbing its
// siblings.
//
// Each mux frame is one underlying transport message:
//
//	uvarint streamID | u8 frameType | payload
//
// Frame types: OPEN announces a new initiator stream (payload empty),
// DATA carries exactly one sub-stream message, CLOSE half-closes the
// sender's direction (the peer's Recv drains queued messages then returns
// io.EOF), RESET aborts the stream in both directions with a reason, and
// WINDOW returns flow-control credit (u32 bytes).
//
// Flow control is credit-based: each endpoint announces its per-stream
// receive window during negotiation (see protocol.RunMuxHelloClient), a
// sender debits its copy of the peer's window by the payload size of
// every DATA frame, and the receiver returns credit as the application
// consumes messages — batched, flushing only once at least half the
// window has been consumed, so a session whose traffic fits in half a
// window exchanges no WINDOW frames at all. A sender blocks until the
// window holds min(len(msg), window/2): full reservation for ordinary
// messages, a half-window floor for oversized ones, which keeps
// progress guaranteed for any message the underlying frame limit
// admits (a blocked sender implies more than half the window is
// unacknowledged, which is exactly when the receiver will flush) while
// buffering stays bounded by 1.5 windows + one maximal message per
// stream.
package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Mux frame types.
const (
	MuxFrameOpen   byte = 0x01
	MuxFrameData   byte = 0x02
	MuxFrameClose  byte = 0x03
	MuxFrameReset  byte = 0x04
	MuxFrameWindow byte = 0x05
)

// DefaultMuxWindow is the per-stream receive window an endpoint grants
// unless configured otherwise: large enough that an entire typical
// protocol message (sketch, IBLT, cell block) streams without a credit
// round-trip, small enough that a stalled stream pins a bounded buffer.
const DefaultMuxWindow = 1 << 20

// DefaultMuxMaxStreams bounds the peer-initiated streams concurrently
// open on one mux before new opens are reset — the accept-side
// backpressure that protects a server from a client opening streams
// faster than sessions complete.
const DefaultMuxMaxStreams = 64

// muxWriteTimeout bounds how long one frame write on the underlying
// link may stall before the connection is declared wedged. Mux frame
// writes run under the connection's write lock without per-caller
// cancellation (a caller's context must not poke deadlines into the
// shared connection mid-frame, and a per-write watcher would cost a
// goroutine per frame); instead a single per-mux watchdog closes the
// link when a write has been blocked this long — a peer that stops
// reading takes down its own connection, never its siblings'.
const muxWriteTimeout = time.Minute

// muxWatchdogInterval is how often the stalled-write watchdog looks.
const muxWatchdogInterval = 10 * time.Second

// MuxFrame is the parsed form of one mux frame.
type MuxFrame struct {
	StreamID uint64
	Type     byte
	Payload  []byte
}

// AppendMuxFrame appends the wire encoding of a frame to dst.
func AppendMuxFrame(dst []byte, f MuxFrame) []byte {
	dst = binary.AppendUvarint(dst, f.StreamID)
	dst = append(dst, f.Type)
	return append(dst, f.Payload...)
}

// ParseMuxFrame decodes one mux frame. The payload aliases b.
func ParseMuxFrame(b []byte) (MuxFrame, error) {
	var f MuxFrame
	id, n := binary.Uvarint(b)
	if n <= 0 {
		return f, errors.New("transport: mux frame: truncated stream id")
	}
	b = b[n:]
	if len(b) < 1 {
		return f, errors.New("transport: mux frame: missing type")
	}
	f.StreamID = id
	f.Type = b[0]
	f.Payload = b[1:]
	switch f.Type {
	case MuxFrameOpen:
		if len(f.Payload) != 0 {
			return f, errors.New("transport: mux frame: OPEN carries a payload")
		}
	case MuxFrameData:
	case MuxFrameClose:
		if len(f.Payload) != 0 {
			return f, errors.New("transport: mux frame: CLOSE carries a payload")
		}
	case MuxFrameReset:
	case MuxFrameWindow:
		if len(f.Payload) != 4 {
			return f, fmt.Errorf("transport: mux frame: WINDOW payload is %d bytes, want 4", len(f.Payload))
		}
	default:
		return f, fmt.Errorf("transport: mux frame: unknown type 0x%02x", f.Type)
	}
	if f.StreamID == 0 {
		return f, errors.New("transport: mux frame: stream id 0 is reserved")
	}
	return f, nil
}

// StreamResetError reports a stream aborted by RESET, carrying the
// peer's (or the local resetter's) reason.
type StreamResetError struct{ Reason string }

func (e *StreamResetError) Error() string { return "transport: stream reset: " + e.Reason }

// ErrMuxClosed is returned for operations on a mux whose underlying
// link is gone.
var ErrMuxClosed = errors.New("transport: mux closed")

// ErrTooManyStreams is the reset reason an accept-side mux sends when a
// peer opens more concurrent streams than MuxConfig.MaxStreams allows.
var ErrTooManyStreams = errors.New("transport: too many concurrent streams")

// MuxConfig tunes one endpoint of a mux.
type MuxConfig struct {
	// RecvWindow is the per-stream receive window this endpoint granted
	// the peer during negotiation. <= 0 means DefaultMuxWindow.
	RecvWindow int
	// SendWindow is the per-stream window the peer granted this
	// endpoint. <= 0 means DefaultMuxWindow.
	SendWindow int
	// MaxStreams bounds concurrently open peer-initiated streams;
	// excess opens are reset with ErrTooManyStreams. <= 0 means
	// DefaultMuxMaxStreams.
	MaxStreams int
	// OnDecodeFailure, when non-nil, observes every malformed mux frame
	// before the connection is torn down — the hook the server metrics
	// registry counts.
	OnDecodeFailure func(error)
}

func (c MuxConfig) withDefaults() MuxConfig {
	if c.RecvWindow <= 0 {
		c.RecvWindow = DefaultMuxWindow
	}
	if c.SendWindow <= 0 {
		c.SendWindow = DefaultMuxWindow
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = DefaultMuxMaxStreams
	}
	return c
}

// Mux multiplexes message streams over one Transport. Both endpoints
// build one after negotiating (initiator true on the side that sent the
// mux hello); the initiator Opens streams, the other side Accepts them.
// All methods are safe for concurrent use.
type Mux struct {
	t         Transport
	cfg       MuxConfig
	initiator bool

	ctx    context.Context
	cancel context.CancelFunc
	// epoch anchors the monotonic elapsed-time readings the stalled-write
	// watchdog compares (time.Since keeps the monotonic clock; raw
	// time.Now().UnixNano() would not survive a wall-clock step).
	epoch time.Time

	wmu sync.Mutex // serializes all frame writes on t
	// wscratch is the frame-encoding buffer reused by every write on
	// this mux — all writes serialize under wmu, so one buffer suffices
	// and the per-frame header allocation disappears. Guarded by wmu.
	wscratch []byte

	mu        sync.Mutex
	streams   map[uint64]*Stream
	nextID    uint64 // next id this endpoint assigns
	lastPeer  uint64 // highest peer-opened id seen
	acceptQ   []*Stream
	acceptCh  chan struct{} // signaled when acceptQ grows
	peerOpen  int           // peer-initiated streams currently open
	dead      chan struct{} // closed when the demux loop exits
	deadErr   error
	deadOnce  sync.Once
	opened    atomic.Int64 // lifetime streams, both directions
	decodeErr atomic.Int64
	// writeStart is the monotonic elapsed time (relative to epoch) a
	// frame write began, 0 when no write is in flight — the
	// stalled-write watchdog's only input.
	writeStart atomic.Int64
}

// NewMux starts multiplexing over t. The caller must not use t directly
// afterwards; Close tears down the mux and the underlying transport.
func NewMux(t Transport, initiator bool, cfg MuxConfig) *Mux {
	ctx, cancel := context.WithCancel(context.Background())
	m := &Mux{
		t:         t,
		cfg:       cfg.withDefaults(),
		initiator: initiator,
		ctx:       ctx,
		epoch:     time.Now(),
		cancel:    cancel,
		streams:   make(map[uint64]*Stream),
		acceptCh:  make(chan struct{}, 1),
		dead:      make(chan struct{}),
	}
	// Initiator streams are odd, acceptor streams would be even; only
	// initiator-opened streams exist today but the parity rule keeps the
	// id spaces disjoint if that ever changes.
	if initiator {
		m.nextID = 1
	} else {
		m.nextID = 2
	}
	go m.demux()
	go m.watchdog()
	return m
}

// Stats returns the underlying link's accounting — the whole
// connection's traffic, mux framing included.
func (m *Mux) Stats() Stats { return m.t.Stats() }

// StreamsOpened returns the lifetime count of streams this mux carried.
func (m *Mux) StreamsOpened() int64 { return m.opened.Load() }

// DecodeFailures returns the number of malformed mux frames received.
func (m *Mux) DecodeFailures() int64 { return m.decodeErr.Load() }

// Close tears down the mux: every stream fails, Accept returns
// ErrMuxClosed, and the underlying transport is closed.
func (m *Mux) Close() error {
	m.shutdown(ErrMuxClosed)
	return nil
}

// Err returns the terminal error once the mux is dead, nil while alive.
func (m *Mux) Err() error {
	select {
	case <-m.dead:
		return m.deadErr
	default:
		return nil
	}
}

// shutdown marks the mux dead with err, fails every stream and closes
// the underlying transport. Idempotent.
func (m *Mux) shutdown(err error) {
	m.deadOnce.Do(func() {
		m.deadErr = err
		m.cancel()
		m.t.Close()
		m.mu.Lock()
		for _, s := range m.streams {
			s.fail(err)
		}
		close(m.dead)
		m.mu.Unlock()
	})
}

// watchdog closes the link when a frame write has been blocked past
// muxWriteTimeout — the stalled-peer protection per-write contexts
// would otherwise provide, at one goroutine per connection instead of
// one per frame.
func (m *Mux) watchdog() {
	ticker := time.NewTicker(muxWatchdogInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.dead:
			return
		case <-ticker.C:
			if start := m.writeStart.Load(); start != 0 && time.Since(m.epoch)-time.Duration(start) > muxWriteTimeout {
				m.shutdown(fmt.Errorf("transport: mux write stalled over %v", muxWriteTimeout))
			}
		}
	}
}

// demux is the single reader: it dispatches every incoming frame to its
// stream until the link fails. The blocking Recv carries no deadline —
// an idle multiplexed connection is legitimate — and is unblocked by
// Close (which closes the underlying transport).
func (m *Mux) demux() {
	for {
		msg, err := m.t.Recv(context.Background())
		if err != nil {
			m.shutdown(err)
			return
		}
		f, err := ParseMuxFrame(msg)
		if err != nil {
			m.decodeErr.Add(1)
			if m.cfg.OnDecodeFailure != nil {
				m.cfg.OnDecodeFailure(err)
			}
			// A malformed frame means the endpoints disagree about the
			// framing itself; no per-stream recovery is possible.
			m.shutdown(err)
			return
		}
		m.dispatch(f)
	}
}

// dispatch routes one parsed frame. Frames for unknown streams other
// than OPEN are ignored: they are the legitimate tail of a stream the
// local side already reset.
func (m *Mux) dispatch(f MuxFrame) {
	m.mu.Lock()
	s := m.streams[f.StreamID]
	if s == nil {
		if f.Type != MuxFrameOpen {
			m.mu.Unlock()
			return
		}
		// Peer-initiated stream: ids must come from the peer's parity
		// space and grow monotonically, or the peer is confused enough
		// that the connection cannot be trusted.
		peerParity := uint64(0)
		if !m.initiator {
			peerParity = 1
		}
		if f.StreamID%2 != peerParity || f.StreamID <= m.lastPeer {
			m.mu.Unlock()
			m.shutdown(fmt.Errorf("transport: mux: peer opened invalid stream id %d", f.StreamID))
			return
		}
		m.lastPeer = f.StreamID
		if m.peerOpen >= m.cfg.MaxStreams {
			m.mu.Unlock()
			_ = m.writeFrame(MuxFrame{StreamID: f.StreamID, Type: MuxFrameReset,
				Payload: []byte(ErrTooManyStreams.Error())})
			return
		}
		s = m.newStream(f.StreamID, true)
		m.streams[f.StreamID] = s
		m.peerOpen++
		m.opened.Add(1)
		m.acceptQ = append(m.acceptQ, s)
		select {
		case m.acceptCh <- struct{}{}:
		default:
		}
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()

	switch f.Type {
	case MuxFrameOpen:
		m.shutdown(fmt.Errorf("transport: mux: duplicate OPEN for stream %d", f.StreamID))
	case MuxFrameData:
		s.deliver(f.Payload)
	case MuxFrameClose:
		s.peerClosed()
	case MuxFrameReset:
		s.peerReset(string(f.Payload))
		m.drop(s)
	case MuxFrameWindow:
		s.credit(int(binary.LittleEndian.Uint32(f.Payload)))
	}
}

// drop forgets a stream (after reset or full close), releasing its
// accept-side concurrency slot.
func (m *Mux) drop(s *Stream) {
	m.mu.Lock()
	if _, ok := m.streams[s.id]; ok {
		delete(m.streams, s.id)
		if s.accepted {
			m.peerOpen--
		}
	}
	m.mu.Unlock()
}

// writeFrame serializes one frame onto the link. All writes go through
// here under wmu, with the mux's lifetime context bounded by
// muxWriteTimeout: per-caller contexts must not poke deadlines into the
// shared connection while another stream's frame is in flight.
func (m *Mux) writeFrame(f MuxFrame) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	return m.writeFrameLocked(f)
}

// writeFrameLocked is writeFrame with wmu already held. The write
// carries no per-call context — cancellation pokes would corrupt the
// shared connection mid-frame — so a stall is broken by the watchdog
// (or Close) closing the transport under it.
func (m *Mux) writeFrameLocked(f MuxFrame) error {
	// Encode into the mux's scratch buffer: Send does not retain the
	// slice, and wmu is held, so reuse is safe and the steady-state
	// write path allocates nothing. A jumbo frame's scratch is dropped
	// after use rather than pinned.
	var buf []byte
	if BufferPoolingEnabled() {
		m.wscratch = AppendMuxFrame(m.wscratch[:0], f)
		buf = m.wscratch
		if cap(m.wscratch) > maxRetainedFrame {
			m.wscratch = nil
		}
	} else {
		buf = AppendMuxFrame(make([]byte, 0, binary.MaxVarintLen64+1+len(f.Payload)), f)
	}
	start := int64(time.Since(m.epoch))
	if start == 0 {
		start = 1 // 0 is the "no write in flight" sentinel
	}
	m.writeStart.Store(start)
	err := m.t.Send(context.Background(), buf)
	m.writeStart.Store(0)
	if err != nil {
		m.shutdown(fmt.Errorf("transport: mux write: %w", err))
		return err
	}
	return nil
}

// newStream builds a stream in the given role. Caller holds m.mu.
func (m *Mux) newStream(id uint64, accepted bool) *Stream {
	return &Stream{
		mux:      m,
		id:       id,
		accepted: accepted,
		sendWin:  m.cfg.SendWindow,
		sendCap:  m.cfg.SendWindow,
		recvCh:   make(chan struct{}, 1),
		sendCh:   make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
}

// Open starts a new stream. The OPEN frame is sent immediately and the
// stream is usable without waiting for the peer — opens pipeline.
func (m *Mux) Open(ctx context.Context) (*Stream, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Id allocation and the OPEN write stay atomic under the write lock:
	// concurrent Opens must put their OPEN frames on the wire in id
	// order, or the peer's monotonicity check would see a replay.
	m.wmu.Lock()
	defer m.wmu.Unlock()
	m.mu.Lock()
	select {
	case <-m.dead:
		m.mu.Unlock()
		return nil, m.deadErr
	default:
	}
	id := m.nextID
	m.nextID += 2
	s := m.newStream(id, false)
	m.streams[id] = s
	m.opened.Add(1)
	m.mu.Unlock()
	if err := m.writeFrameLocked(MuxFrame{StreamID: id, Type: MuxFrameOpen}); err != nil {
		m.drop(s)
		return nil, err
	}
	return s, nil
}

// Accept blocks for the next peer-initiated stream.
func (m *Mux) Accept(ctx context.Context) (*Stream, error) {
	for {
		m.mu.Lock()
		if len(m.acceptQ) > 0 {
			s := m.acceptQ[0]
			m.acceptQ = m.acceptQ[1:]
			m.mu.Unlock()
			return s, nil
		}
		m.mu.Unlock()
		select {
		case <-m.acceptCh:
		case <-m.dead:
			return nil, m.deadErr
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// ---------------------------------------------------------------------
// Stream

// Stream is one sub-stream of a Mux. It implements Transport, so every
// protocol session in this module runs over it unchanged. One concurrent
// sender plus one concurrent receiver, like every Transport.
type Stream struct {
	mux      *Mux
	id       uint64
	accepted bool

	mu        sync.Mutex
	recvQ     [][]byte
	lastRecv  []byte // buffer returned by the previous Recv, recycled on the next
	recvDone  bool   // peer sent CLOSE
	reset     string // non-empty after RESET either way
	failErr   error  // mux-level failure
	sentClose bool
	sendWin   int           // remaining credit
	sendCap   int           // the peer's full window (for the send gate)
	consumed  int           // bytes consumed since the last credit flush
	recvDebt  int           // bytes delivered and not yet returned as credit
	recvCh    chan struct{} // signaled when recvQ/recvDone/reset change
	sendCh    chan struct{} // signaled when sendWin grows or state changes
	doneOnce  sync.Once
	done      chan struct{} // closed on reset/fail (fast-fails both directions)
	ctrs      counters
}

// ID returns the stream's mux-level identifier.
func (s *Stream) ID() uint64 { return s.id }

// Stats returns this stream's accounting: sub-stream message payloads
// plus this stream's share of the mux framing.
func (s *Stream) Stats() Stats { return s.ctrs.snapshot() }

// muxStreamOverhead is the per-message accounting charge for a mux
// stream: the underlying frame prefix plus a typical mux header (stream
// id varint + type byte). The varint length varies with the id; the
// fixed charge keeps Stats comparable across streams.
const muxStreamOverhead = frameOverhead + 3

// signal pokes a capacity-1 notification channel.
func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// deliver queues one incoming message (demux goroutine). The payload
// aliases the underlying Recv's receive buffer, which is valid only
// until the demux loop's next Recv — so it is copied into a recycled
// buffer here. The stream returns the buffer to the pool once its
// consumer moves past it (see Recv), closing the recycle loop.
//
// The advertised window is enforced here, not just trusted: a
// conforming sender's un-credited debt never exceeds the full window
// (or half a window plus the message, for an oversized one — the send
// gate's bound), so a frame beyond that is a peer ignoring flow control
// and the connection is killed before it can queue unbounded memory.
func (s *Stream) deliver(msg []byte) {
	s.mu.Lock()
	if s.reset != "" || s.failErr != nil {
		s.mu.Unlock()
		return
	}
	s.recvDebt += len(msg)
	limit := s.mux.cfg.RecvWindow
	if half := limit / 2; len(msg) > half {
		limit = half + len(msg)
	}
	if s.recvDebt > limit {
		s.mu.Unlock()
		s.mux.shutdown(fmt.Errorf("transport: mux: peer overflowed stream %d's receive window", s.id))
		return
	}
	cp := GetBuf(len(msg))
	copy(cp, msg)
	s.recvQ = append(s.recvQ, cp)
	s.mu.Unlock()
	signal(s.recvCh)
}

// peerClosed records the peer's half-close. When the local side already
// closed too, the stream is complete and forgotten.
func (s *Stream) peerClosed() {
	s.mu.Lock()
	s.recvDone = true
	bothDone := s.sentClose
	s.mu.Unlock()
	signal(s.recvCh)
	if bothDone {
		s.mux.drop(s)
	}
}

// recycleQueueLocked returns undelivered queued buffers to the pool
// when a stream aborts — never the lastRecv buffer, which the consumer
// may still be reading. Caller holds s.mu.
func (s *Stream) recycleQueueLocked() {
	for i, b := range s.recvQ {
		PutBuf(b)
		s.recvQ[i] = nil
	}
	s.recvQ = nil
}

// peerReset aborts the stream from the peer's RESET.
func (s *Stream) peerReset(reason string) {
	s.mu.Lock()
	if s.reset == "" {
		s.reset = reason
	}
	s.recycleQueueLocked()
	s.mu.Unlock()
	s.doneOnce.Do(func() { close(s.done) })
	signal(s.recvCh)
	signal(s.sendCh)
}

// fail aborts the stream on mux-level failure.
func (s *Stream) fail(err error) {
	s.mu.Lock()
	if s.failErr == nil {
		s.failErr = err
	}
	s.mu.Unlock()
	s.doneOnce.Do(func() { close(s.done) })
	signal(s.recvCh)
	signal(s.sendCh)
}

// credit returns n bytes of send window (demux goroutine).
func (s *Stream) credit(n int) {
	s.mu.Lock()
	s.sendWin += n
	if s.sendWin > s.sendCap {
		s.sendWin = s.sendCap
	}
	s.mu.Unlock()
	signal(s.sendCh)
}

// terminalErr returns the error pending sends/recvs must surface, or
// nil. Caller holds s.mu.
func (s *Stream) terminalErr() error {
	if s.reset != "" {
		return &StreamResetError{Reason: s.reset}
	}
	return s.failErr
}

// Send transmits one message on the stream, blocking for flow-control
// credit when the peer's receive window is exhausted. The gate is
// min(len(msg), window/2), matching the receiver's half-window credit
// flush, so even a message larger than the whole window makes progress.
func (s *Stream) Send(ctx context.Context, msg []byte) error {
	gate := len(msg)
	if half := s.sendCap / 2; gate > half {
		gate = half
	}
	for {
		s.mu.Lock()
		if err := s.terminalErr(); err != nil {
			s.mu.Unlock()
			return err
		}
		if s.sentClose {
			s.mu.Unlock()
			return ErrClosed
		}
		if s.sendWin >= gate {
			s.sendWin -= len(msg)
			s.mu.Unlock()
			break
		}
		s.mu.Unlock()
		select {
		case <-s.sendCh:
		case <-s.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	// No defensive copy: writeFrame serializes the payload into its own
	// frame buffer before the caller regains control of msg.
	if err := s.mux.writeFrame(MuxFrame{StreamID: s.id, Type: MuxFrameData, Payload: msg}); err != nil {
		return err
	}
	s.ctrs.bytesSent.Add(int64(len(msg) + muxStreamOverhead))
	s.ctrs.msgsSent.Add(1)
	traceFrame(ctx, msg, true, len(msg)+muxStreamOverhead)
	return nil
}

// Recv blocks for the next message. After the peer half-closes, queued
// messages drain and then Recv returns io.EOF.
//
// Per the Transport contract the returned slice is valid only until the
// next Recv on this stream: the previous message's buffer is recycled
// here, which is what lets a steady-state session run allocation-free.
func (s *Stream) Recv(ctx context.Context) ([]byte, error) {
	for {
		s.mu.Lock()
		// The caller calling Recv again is the signal it is done with the
		// previously returned buffer.
		if s.lastRecv != nil {
			PutBuf(s.lastRecv)
			s.lastRecv = nil
		}
		if len(s.recvQ) > 0 {
			msg := s.recvQ[0]
			s.recvQ = s.recvQ[1:]
			s.lastRecv = msg
			s.consumed += len(msg)
			credit := 0
			if s.consumed >= s.mux.cfg.RecvWindow/2 {
				credit = s.consumed
				s.consumed = 0
				s.recvDebt -= credit
			}
			s.mu.Unlock()
			s.ctrs.bytesRecv.Add(int64(len(msg) + muxStreamOverhead))
			s.ctrs.msgsRecv.Add(1)
			traceFrame(ctx, msg, false, len(msg)+muxStreamOverhead)
			if credit > 0 {
				// Return the batch of consumed bytes so the peer can keep
				// streaming; best-effort — if the write fails the mux is
				// already dead and the next Recv reports it.
				var win [4]byte
				binary.LittleEndian.PutUint32(win[:], uint32(credit))
				_ = s.mux.writeFrame(MuxFrame{StreamID: s.id, Type: MuxFrameWindow, Payload: win[:]})
			}
			return msg, nil
		}
		if err := s.terminalErr(); err != nil {
			s.mu.Unlock()
			return nil, err
		}
		if s.recvDone {
			s.mu.Unlock()
			return nil, io.EOF
		}
		s.mu.Unlock()
		select {
		case <-s.recvCh:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Close half-closes the sending direction: the peer drains queued
// messages and then sees io.EOF. Safe to call multiple times. When both
// directions have closed the stream is forgotten by the mux.
func (s *Stream) Close() error {
	s.mu.Lock()
	if s.sentClose || s.reset != "" || s.failErr != nil {
		s.mu.Unlock()
		return nil
	}
	s.sentClose = true
	bothDone := s.recvDone
	s.mu.Unlock()
	err := s.mux.writeFrame(MuxFrame{StreamID: s.id, Type: MuxFrameClose})
	if bothDone {
		s.mux.drop(s)
	}
	return err
}

// Reset aborts the stream in both directions, relaying reason to the
// peer. Pending and future Sends and Recvs on either side fail with a
// *StreamResetError; sibling streams are unaffected.
func (s *Stream) Reset(reason error) {
	msg := "reset"
	if reason != nil {
		msg = reason.Error()
	}
	s.mu.Lock()
	if s.reset != "" || s.failErr != nil {
		s.mu.Unlock()
		return
	}
	s.reset = msg
	s.recycleQueueLocked()
	s.mu.Unlock()
	s.doneOnce.Do(func() { close(s.done) })
	signal(s.recvCh)
	signal(s.sendCh)
	_ = s.mux.writeFrame(MuxFrame{StreamID: s.id, Type: MuxFrameReset, Payload: []byte(msg)})
	s.mux.drop(s)
}
