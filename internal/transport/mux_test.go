package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// muxPair builds a connected initiator/acceptor mux pair over the
// in-memory transport.
func muxPair(t *testing.T, cfg MuxConfig) (client, server *Mux) {
	t.Helper()
	a, b := Pair()
	client = NewMux(a, true, cfg)
	server = NewMux(b, false, cfg)
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

// streamMsgs generates the deterministic message sequence stream i
// sends in the interleaving tests — sizes vary so frames interleave at
// every scale.
func streamMsgs(stream, count int) [][]byte {
	msgs := make([][]byte, count)
	state := uint64(stream)*2654435761 + 1
	for j := range msgs {
		state = state*6364136223846793005 + 1442695040888963407
		size := int(state % 700)
		msg := make([]byte, size)
		for k := range msg {
			msg[k] = byte(state >> (uint(k%8) * 8))
		}
		msgs[j] = append(msg, byte(stream), byte(j))
		msgs[j] = msgs[j][:len(msgs[j])]
	}
	return msgs
}

func TestMuxEcho(t *testing.T) {
	client, server := muxPair(t, MuxConfig{})
	ctx := context.Background()

	go func() {
		st, err := server.Accept(ctx)
		if err != nil {
			return
		}
		for {
			msg, err := st.Recv(ctx)
			if err != nil {
				st.Close()
				return
			}
			if err := st.Send(ctx, msg); err != nil {
				return
			}
		}
	}()

	st, err := client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		want := []byte(fmt.Sprintf("message %d", i))
		if err := st.Send(ctx, want); err != nil {
			t.Fatal(err)
		}
		got, err := st.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("echo %d: got %q want %q", i, got, want)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recv(ctx); !errors.Is(err, io.EOF) {
		t.Fatalf("recv after both closed: %v, want EOF", err)
	}
}

// TestMuxInterleavedStreams is the tentpole's core safety property: 16
// concurrent streams pumping interleaved frames in both directions
// deliver, per stream, exactly the byte sequences a serial run would —
// same messages, same order, nothing crossed between streams.
func TestMuxInterleavedStreams(t *testing.T) {
	const streams, msgsPer = 16, 40
	// A small window forces constant WINDOW credit traffic, maximizing
	// interleaving pressure.
	client, server := muxPair(t, MuxConfig{RecvWindow: 2048, SendWindow: 2048})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Server: every accepted stream echoes until EOF, then closes.
	go func() {
		for {
			st, err := server.Accept(ctx)
			if err != nil {
				return
			}
			go func() {
				defer st.Close()
				for {
					msg, err := st.Recv(ctx)
					if err != nil {
						return
					}
					if err := st.Send(ctx, msg); err != nil {
						return
					}
				}
			}()
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := client.Open(ctx)
			if err != nil {
				errCh <- err
				return
			}
			defer st.Close()
			want := streamMsgs(i, msgsPer)
			recvErr := make(chan error, 1)
			go func() {
				// The serial expectation: echoes arrive in send order,
				// byte-identical, no frames from sibling streams.
				for j := 0; j < msgsPer; j++ {
					got, err := st.Recv(ctx)
					if err != nil {
						recvErr <- fmt.Errorf("stream %d recv %d: %w", i, j, err)
						return
					}
					if !bytes.Equal(got, want[j]) {
						recvErr <- fmt.Errorf("stream %d msg %d: got %d bytes %x..., want %d bytes",
							i, j, len(got), got[:min(8, len(got))], len(want[j]))
						return
					}
				}
				recvErr <- nil
			}()
			for j := 0; j < msgsPer; j++ {
				if err := st.Send(ctx, want[j]); err != nil {
					errCh <- fmt.Errorf("stream %d send %d: %w", i, j, err)
					return
				}
			}
			errCh <- <-recvErr
		}(i)
	}
	wg.Wait()
	for i := 0; i < streams; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	if got := client.StreamsOpened(); got != streams {
		t.Fatalf("client opened %d streams, want %d", got, streams)
	}
	if got := client.DecodeFailures() + server.DecodeFailures(); got != 0 {
		t.Fatalf("decode failures: %d, want 0", got)
	}
}

// TestMuxResetLeavesSiblingsUnharmed aborts one stream mid-transfer and
// requires its siblings to finish byte-perfect on the same connection.
func TestMuxResetLeavesSiblingsUnharmed(t *testing.T) {
	client, server := muxPair(t, MuxConfig{RecvWindow: 4096, SendWindow: 4096})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Server streams an endless sequence on every accepted stream until
	// the stream dies, mimicking a CELLS serving loop.
	go func() {
		for {
			st, err := server.Accept(ctx)
			if err != nil {
				return
			}
			go func() {
				seq := 0
				for {
					msg := bytes.Repeat([]byte{byte(seq)}, 512)
					if err := st.Send(ctx, msg); err != nil {
						return
					}
					seq++
				}
			}()
		}
	}()

	victim, err := client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sibling, err := client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Let the victim receive a few messages mid-stream, then reset it.
	for i := 0; i < 3; i++ {
		if _, err := victim.Recv(ctx); err != nil {
			t.Fatal(err)
		}
	}
	victim.Reset(errors.New("client gave up"))
	var resetErr *StreamResetError
	if _, err := victim.Recv(ctx); !errors.As(err, &resetErr) {
		t.Fatalf("victim recv after reset: %v, want StreamResetError", err)
	}
	if err := victim.Send(ctx, []byte("x")); !errors.As(err, &resetErr) {
		t.Fatalf("victim send after reset: %v, want StreamResetError", err)
	}

	// The sibling still sees its own uncorrupted sequence.
	for i := 0; i < 50; i++ {
		msg, err := sibling.Recv(ctx)
		if err != nil {
			t.Fatalf("sibling recv %d after reset: %v", i, err)
		}
		if len(msg) != 512 || msg[0] != byte(i) {
			t.Fatalf("sibling msg %d corrupted: len %d first byte %d", i, len(msg), msg[0])
		}
	}
	if client.Err() != nil {
		t.Fatalf("mux died: %v", client.Err())
	}
}

// TestMuxFlowControl checks that a sender blocks when the peer's window
// is exhausted and resumes on credit, and that a message larger than the
// whole window still goes through.
func TestMuxFlowControl(t *testing.T) {
	const window = 1024
	client, server := muxPair(t, MuxConfig{RecvWindow: window, SendWindow: window})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	st, err := client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Two sends exhaust the window; the third must block until the
	// receiver consumes.
	for i := 0; i < 2; i++ {
		if err := st.Send(ctx, make([]byte, window/2)); err != nil {
			t.Fatal(err)
		}
	}
	blocked := make(chan error, 1)
	go func() { blocked <- st.Send(ctx, make([]byte, 16)) }()
	select {
	case err := <-blocked:
		t.Fatalf("send with exhausted window returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	srvSt, err := server.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srvSt.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatalf("blocked send failed after credit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send still blocked after credit returned")
	}

	// Oversized message: drain everything so the window idles, then send
	// 4× the window in one message.
	for i := 0; i < 2; i++ {
		if _, err := srvSt.Recv(ctx); err != nil {
			t.Fatal(err)
		}
	}
	big := bytes.Repeat([]byte{7}, 4*window)
	sendDone := make(chan error, 1)
	go func() { sendDone <- st.Send(ctx, big) }()
	got, err := srvSt.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatalf("oversized message corrupted: %d bytes", len(got))
	}
	if err := <-sendDone; err != nil {
		t.Fatal(err)
	}
}

// TestMuxMaxStreams verifies accept-side backpressure: opens beyond the
// cap are reset with ErrTooManyStreams while existing streams live on.
func TestMuxMaxStreams(t *testing.T) {
	client, server := muxPair(t, MuxConfig{MaxStreams: 2})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	first, err := client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	second, err := client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	third, err := client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The server never Accepts, so the third OPEN bounces.
	var resetErr *StreamResetError
	if _, err := third.Recv(ctx); !errors.As(err, &resetErr) {
		t.Fatalf("over-cap stream recv: %v, want StreamResetError", err)
	}
	// The two in-cap streams still work end to end.
	for _, st := range []*Stream{first, second} {
		if err := st.Send(ctx, []byte("alive")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		srvSt, err := server.Accept(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if msg, err := srvSt.Recv(ctx); err != nil || string(msg) != "alive" {
			t.Fatalf("in-cap stream %d: %q, %v", i, msg, err)
		}
	}
}

// TestMuxOverTCP runs the mux over a real TCP connection — deadline
// plumbing, torn connection handling.
func TestMuxOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	cc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sc := <-accepted

	client := NewMux(NewConn(cc), true, MuxConfig{})
	server := NewMux(NewConn(sc), false, MuxConfig{})
	defer client.Close()
	defer server.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Send(ctx, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	srvSt, err := server.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if msg, err := srvSt.Recv(ctx); err != nil || string(msg) != "over tcp" {
		t.Fatalf("got %q, %v", msg, err)
	}

	// Kill the connection under the mux: every stream must fail, not hang.
	cc.Close()
	if _, err := srvSt.Recv(ctx); err == nil {
		t.Fatal("recv on dead connection succeeded")
	}
	if err := client.Err(); err == nil {
		t.Fatal("client mux still reports alive after conn death")
	}
}

// TestMuxGarbageFrameKillsConn checks that a malformed frame is counted
// and tears the mux down rather than desynchronizing streams.
func TestMuxGarbageFrameKillsConn(t *testing.T) {
	a, b := Pair()
	failures := 0
	server := NewMux(b, false, MuxConfig{OnDecodeFailure: func(error) { failures++ }})
	defer server.Close()
	ctx := context.Background()
	// Raw garbage: valid varint id, unknown type.
	if err := a.Send(ctx, []byte{1, 0xee, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Accept(ctx); err == nil {
		t.Fatal("accept succeeded after garbage frame")
	}
	if server.DecodeFailures() != 1 || failures != 1 {
		t.Fatalf("decode failures: counter %d, hook %d; want 1, 1", server.DecodeFailures(), failures)
	}
}

// TestMuxWindowOverflowKillsConn: a peer that ignores flow control —
// streaming DATA far past the advertised window without waiting for
// credit — must take the connection down, not queue unbounded memory.
func TestMuxWindowOverflowKillsConn(t *testing.T) {
	const window = 4096
	a, b := Pair()
	server := NewMux(b, false, MuxConfig{RecvWindow: window})
	defer server.Close()
	ctx := context.Background()

	// Raw frames on the client side, bypassing the sender's gate: OPEN,
	// then un-credited DATA well past the window while nobody Recvs.
	if err := a.Send(ctx, AppendMuxFrame(nil, MuxFrame{StreamID: 1, Type: MuxFrameOpen})); err != nil {
		t.Fatal(err)
	}
	chunk := bytes.Repeat([]byte{9}, 1024)
	overflowed := false
	for i := 0; i < 3*window/len(chunk); i++ {
		if err := a.Send(ctx, AppendMuxFrame(nil, MuxFrame{StreamID: 1, Type: MuxFrameData, Payload: chunk})); err != nil {
			overflowed = true
			break
		}
	}
	// The mux must die with a window-overflow error, seen either as the
	// raw sender's link failing or via the mux's terminal error.
	deadline := time.Now().Add(5 * time.Second)
	for server.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	err := server.Err()
	if err == nil && !overflowed {
		t.Fatal("mux survived a 3-window un-credited flood")
	}
	if err != nil && !strings.Contains(err.Error(), "receive window") {
		t.Fatalf("mux died with %v, want a receive-window violation", err)
	}
}

// TestMuxLegalOversizeNotKilled: the enforcement must not flag the
// legal oversized-message case (one message larger than the window sent
// against an idle window).
func TestMuxLegalOversizeNotKilled(t *testing.T) {
	const window = 2048
	client, server := muxPair(t, MuxConfig{RecvWindow: window, SendWindow: window})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	srvSt, err := server.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		big := bytes.Repeat([]byte{byte(round)}, 4*window)
		sendErr := make(chan error, 1)
		go func() { sendErr <- st.Send(ctx, big) }()
		got, err := srvSt.Recv(ctx)
		if err != nil {
			t.Fatalf("round %d: %v (mux err: %v)", round, err, server.Err())
		}
		if !bytes.Equal(got, big) {
			t.Fatalf("round %d: corrupted oversize message", round)
		}
		if err := <-sendErr; err != nil {
			t.Fatal(err)
		}
	}
}

// TestMuxMaxMessageFits: a protocol message exactly at the session's
// size cap must fit in one mux frame — the carrier gets header headroom
// via NewMuxConnLimit, so the frame check cannot tear down the
// connection on a maximal legal message.
func TestMuxMaxMessageFits(t *testing.T) {
	const maxMsg = 1 << 16
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	cc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sc := <-accepted
	client := NewMux(NewMuxConnLimit(cc, maxMsg), true, MuxConfig{})
	server := NewMux(NewMuxConnLimit(sc, maxMsg), false, MuxConfig{})
	defer client.Close()
	defer server.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte{0xAB}, maxMsg)
	sendErr := make(chan error, 1)
	go func() { sendErr <- st.Send(ctx, msg) }()
	srvSt, err := server.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := srvSt.Recv(ctx)
	if err != nil {
		t.Fatalf("recv max-size message: %v (mux err: %v)", err, server.Err())
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("max-size message corrupted: %d bytes", len(got))
	}
	if err := <-sendErr; err != nil {
		t.Fatalf("send max-size message: %v", err)
	}
	if client.Err() != nil || server.Err() != nil {
		t.Fatalf("mux died on a maximal legal message: %v / %v", client.Err(), server.Err())
	}
}

func FuzzParseMuxFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, MuxFrameOpen})
	f.Add([]byte{1, MuxFrameData, 0xde, 0xad})
	f.Add([]byte{3, MuxFrameClose})
	f.Add([]byte{5, MuxFrameReset, 'b', 'y', 'e'})
	f.Add([]byte{7, MuxFrameWindow, 0, 4, 0, 0})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 1, MuxFrameData})
	f.Add(AppendMuxFrame(nil, MuxFrame{StreamID: 1 << 40, Type: MuxFrameData, Payload: []byte("payload")}))
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := ParseMuxFrame(data)
		if err != nil {
			return
		}
		// Round-trip: re-encoding a parsed frame must parse back to the
		// identical frame (encoding is canonical).
		enc := AppendMuxFrame(nil, frame)
		back, err := ParseMuxFrame(enc)
		if err != nil {
			t.Fatalf("re-encoded frame failed to parse: %v", err)
		}
		if back.StreamID != frame.StreamID || back.Type != frame.Type || !bytes.Equal(back.Payload, frame.Payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", frame, back)
		}
	})
}
