package transport_test

// Fault-injection suite: wraps real connections with byte-level faults —
// short reads, mid-frame EOFs, stalls past the deadline, garbage frames —
// and asserts that the framing layer and every Session strategy above it
// surface the typed error taxonomy (context.DeadlineExceeded, torn-frame
// errors, io.EOF/io.ErrUnexpectedEOF, protocol.ErrUnexpectedMessage)
// instead of hanging, panicking, or leaking opaque syscall errors.
//
// CI runs this file separately under the race detector:
//
//	go test -run Fault -race ./internal/transport/...

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"robustset"
	"robustset/internal/protocol"
	"robustset/internal/transport"
)

var faultU = robustset.Universe{Dim: 2, Delta: 1 << 12}

// faultPair builds the small deterministic instance every strategy can
// handle (exact regime: identical sets plus k replacements).
func faultPair(n, k int) (alice, bob []robustset.Point) {
	next := uint64(12345)
	rnd := func(m int64) int64 {
		next = next*6364136223846793005 + 1442695040888963407
		return int64((next >> 33) % uint64(m))
	}
	bob = make([]robustset.Point, n)
	for i := range bob {
		bob[i] = robustset.Point{rnd(faultU.Delta), rnd(faultU.Delta)}
	}
	alice = robustset.ClonePoints(bob)
	for i := 0; i < k; i++ {
		alice[i] = robustset.Point{rnd(faultU.Delta), rnd(faultU.Delta)}
	}
	return alice, bob
}

func faultParams() robustset.Params {
	return robustset.Params{Universe: faultU, Seed: 9, DiffBudget: 4}
}

// tcpPair returns two ends of a loopback TCP connection (TCP gives true
// EOF-on-half-close semantics, which the mid-frame faults rely on).
func tcpPair(t *testing.T) (client, server *net.TCPConn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			accepted <- nil
			return
		}
		accepted <- c
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s := <-accepted
	if s == nil {
		c.Close()
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { c.Close(); s.Close() })
	return c.(*net.TCPConn), s.(*net.TCPConn)
}

// shortReadConn delivers at most one byte per Read call — the harshest
// legal segmentation a stream transport can produce.
type shortReadConn struct{ net.Conn }

func (c shortReadConn) Read(b []byte) (int, error) {
	if len(b) > 1 {
		b = b[:1]
	}
	return c.Conn.Read(b)
}

// fetchStrategies enumerates every built-in strategy with knobs that make
// the fault runs deterministic and fast (CPI needs an explicit capacity).
func fetchStrategies() []robustset.Strategy {
	out := make([]robustset.Strategy, 0, 6)
	for _, s := range robustset.Strategies() {
		if _, isCPI := s.(robustset.CPI); isCPI {
			s = robustset.CPI{Capacity: 16}
		}
		out = append(out, s)
	}
	return out
}

// TestFaultShortReadsStillCorrect injects pathological 1-byte reads under
// every strategy's fetch side and requires the exchange to succeed
// bit-for-bit anyway: framing must never depend on read segmentation.
func TestFaultShortReadsStillCorrect(t *testing.T) {
	alice, bob := faultPair(120, 4)
	params := faultParams()
	for _, strat := range fetchStrategies() {
		t.Run(strat.Name(), func(t *testing.T) {
			sess, err := robustset.NewSession(strat, robustset.WithParams(params))
			if err != nil {
				t.Fatal(err)
			}
			cc, sc := tcpPair(t)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			done := make(chan error, 1)
			go func() {
				_, err := sess.Serve(ctx, shortReadConn{Conn: sc}, alice)
				done <- err
			}()
			res, _, err := sess.Fetch(ctx, shortReadConn{Conn: cc}, bob)
			if err != nil {
				t.Fatalf("fetch under short reads: %v", err)
			}
			if err := <-done; err != nil {
				t.Fatalf("serve under short reads: %v", err)
			}
			if len(res.SPrime) == 0 {
				t.Fatal("empty result under short reads")
			}
		})
	}
}

// TestFaultMidFrameEOF half-closes the serving side in the middle of an
// announced frame: every strategy must fail promptly with the torn-frame
// taxonomy (never a hang, never a panic, never an opaque reset).
func TestFaultMidFrameEOF(t *testing.T) {
	_, bob := faultPair(80, 4)
	params := faultParams()
	for _, strat := range fetchStrategies() {
		t.Run(strat.Name(), func(t *testing.T) {
			sess, err := robustset.NewSession(strat, robustset.WithParams(params))
			if err != nil {
				t.Fatal(err)
			}
			cc, sc := tcpPair(t)
			// The stub peer drains whatever the client sends (so
			// send-first strategies progress), emits a torn frame —
			// header announcing 1000 bytes, body of 100 — and then
			// half-closes, which surfaces as EOF mid-body.
			go func() {
				buf := make([]byte, 4096)
				go func() {
					for {
						if _, err := sc.Read(buf); err != nil {
							return
						}
					}
				}()
				sc.Write([]byte{0xe8, 0x03, 0x00, 0x00}) // length 1000
				sc.Write(make([]byte, 100))
				sc.CloseWrite()
			}()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			done := make(chan error, 1)
			go func() {
				_, _, err := sess.Fetch(ctx, cc, bob)
				done <- err
			}()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("torn mid-frame stream accepted")
				}
				if !errors.Is(err, io.ErrUnexpectedEOF) && !strings.Contains(err.Error(), "torn frame") {
					t.Fatalf("mid-frame EOF surfaced as %v, want the torn-frame taxonomy", err)
				}
			case <-time.After(8 * time.Second):
				t.Fatal("fetch hung on a torn frame")
			}
		})
	}
}

// TestFaultStallPastDeadline points every strategy at a peer that accepts
// and then goes silent: the context deadline must fire as
// context.DeadlineExceeded — the deadline taxonomy, not an i/o timeout
// string — well before the test's own guard.
func TestFaultStallPastDeadline(t *testing.T) {
	_, bob := faultPair(80, 4)
	params := faultParams()
	for _, strat := range fetchStrategies() {
		t.Run(strat.Name(), func(t *testing.T) {
			sess, err := robustset.NewSession(strat, robustset.WithParams(params))
			if err != nil {
				t.Fatal(err)
			}
			cc, sc := tcpPair(t)
			// Keep the peer's window open so client sends succeed, but
			// never respond.
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := sc.Read(buf); err != nil {
						return
					}
				}
			}()
			ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
			defer cancel()
			done := make(chan error, 1)
			go func() {
				_, _, err := sess.Fetch(ctx, cc, bob)
				done <- err
			}()
			select {
			case err := <-done:
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("stalled peer surfaced as %v, want context.DeadlineExceeded", err)
				}
			case <-time.After(8 * time.Second):
				t.Fatal("fetch hung past its deadline on a stalled peer")
			}
		})
	}
}

// TestFaultGarbageFrame sends every strategy a well-framed message of the
// wrong type: the protocol layer must reject it as ErrUnexpectedMessage
// rather than misparse it.
func TestFaultGarbageFrame(t *testing.T) {
	_, bob := faultPair(80, 4)
	params := faultParams()
	for _, strat := range fetchStrategies() {
		t.Run(strat.Name(), func(t *testing.T) {
			sess, err := robustset.NewSession(strat, robustset.WithParams(params))
			if err != nil {
				t.Fatal(err)
			}
			cc, sc := tcpPair(t)
			go func() {
				buf := make([]byte, 4096)
				go func() {
					for {
						if _, err := sc.Read(buf); err != nil {
							return
						}
					}
				}()
				tr := transport.NewConn(sc)
				body := make([]byte, 64)
				for i := range body {
					body[i] = 0xaa
				}
				_ = tr.Send(context.Background(), body)
			}()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			done := make(chan error, 1)
			go func() {
				_, _, err := sess.Fetch(ctx, cc, bob)
				done <- err
			}()
			select {
			case err := <-done:
				if !errors.Is(err, protocol.ErrUnexpectedMessage) {
					t.Fatalf("garbage frame surfaced as %v, want ErrUnexpectedMessage", err)
				}
			case <-time.After(8 * time.Second):
				t.Fatal("fetch hung on a garbage frame")
			}
		})
	}
}

// TestFaultTornHeader tears the stream inside the 4-byte length prefix
// itself — the transport must name the torn header, not report a generic
// short read.
func TestFaultTornHeader(t *testing.T) {
	cc, sc := tcpPair(t)
	go func() {
		sc.Write([]byte{0x10, 0x00}) // half a length prefix
		sc.CloseWrite()
	}()
	tr := transport.NewConn(cc)
	_, err := tr.Recv(context.Background())
	if err == nil {
		t.Fatal("torn header accepted")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) || !strings.Contains(err.Error(), "torn frame header") {
		t.Fatalf("torn header surfaced as %v", err)
	}
}

// TestFaultShortReadFraming drives the raw transport through the 1-byte
// reader and checks framing plus accounting stay exact.
func TestFaultShortReadFraming(t *testing.T) {
	cc, sc := tcpPair(t)
	a, b := transport.NewConn(sc), transport.NewConn(shortReadConn{Conn: cc})
	msg := make([]byte, 1000)
	for i := range msg {
		msg[i] = byte(i)
	}
	done := make(chan error, 1)
	go func() { done <- a.Send(context.Background(), msg) }()
	got, err := b.Recv(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msg) {
		t.Fatalf("got %d bytes, want %d", len(got), len(msg))
	}
	for i := range got {
		if got[i] != msg[i] {
			t.Fatalf("byte %d corrupted under short reads", i)
		}
	}
	if s := b.Stats(); s.BytesRecv != int64(len(msg)+4) {
		t.Errorf("accounting %d, want %d", s.BytesRecv, len(msg)+4)
	}
}
