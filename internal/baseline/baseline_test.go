package baseline

import (
	"context"
	"net"
	"testing"

	"robustset/internal/core"
	"robustset/internal/emd"
	"robustset/internal/grid"
	"robustset/internal/points"
	"robustset/internal/protocol"
	"robustset/internal/transport"
	"robustset/internal/workload"
)

var testUniverse = points.Universe{Dim: 2, Delta: 1 << 16}

func noisyInstance(t *testing.T, n, k int, scale float64, seed uint64) *workload.Instance {
	t.Helper()
	inst, err := workload.Generate(workload.Config{
		N: n, Universe: testUniverse, Outliers: k,
		Noise: workload.NoiseUniform, Scale: scale, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func exactInstance(t *testing.T, n, k int, seed uint64) *workload.Instance {
	t.Helper()
	inst, err := workload.Generate(workload.Config{
		N: n, Universe: testUniverse, Outliers: k, Noise: workload.NoiseNone, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestAllReconcilersExactRegime(t *testing.T) {
	// With no noise, every scheme except estimate-first must deliver
	// S'_B = S_A exactly. Estimate-first picks its level from noisy
	// difference estimators, so it only promises EMD-closeness: it may
	// settle one level short of lossless and round by a cell radius.
	inst := exactInstance(t, 400, 8, 5)
	params := core.Params{Universe: testUniverse, Seed: 9, DiffBudget: 8}
	recs := []Reconciler{
		RobustOneShot{Params: params},
		RobustEstimateFirst{Params: params},
		Naive{Universe: testUniverse},
		ExactIBLT{Config: protocol.ExactConfig{Universe: testUniverse, Seed: 11}},
		CPISync{Config: protocol.CPIConfig{Universe: testUniverse, Seed: 13, Capacity: 40}},
	}
	for _, r := range recs {
		out, err := r.Run(inst.Alice, inst.Bob)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if r.Name() == "robust-estimate" {
			if len(out.SPrime) != len(inst.Alice) {
				t.Errorf("%s: |S'_B| = %d, want %d", r.Name(), len(out.SPrime), len(inst.Alice))
			}
			d, err := emd.Exact(inst.Alice, out.SPrime, points.L1)
			if err != nil {
				t.Fatal(err)
			}
			// At worst one level short of lossless: ≤ cellwidth·d per
			// recovered diff, far below any real data scale.
			if maxResidual := float64(out.Robust.CellWidth) * 2 * float64(out.Robust.DiffSize()); d > maxResidual {
				t.Errorf("%s: residual EMD %v exceeds one-level rounding bound %v", r.Name(), d, maxResidual)
			}
		} else if !points.EqualMultisets(out.SPrime, inst.Alice) {
			t.Errorf("%s: S'_B != S_A in exact regime", r.Name())
		}
		if out.BytesTransferred() <= 0 || out.Messages() <= 0 {
			t.Errorf("%s: implausible accounting %+v", r.Name(), out.BobStats)
		}
	}
}

func TestRobustBeatsExactOnCommunicationUnderNoise(t *testing.T) {
	// The paper's headline: under noise, exact sync transfers Θ(n) while
	// the robust sketch stays Õ(k). The one-shot sketch costs
	// O(k·logΔ·cellBytes) regardless of n, so its crossover against naive
	// transfer sits near n ≈ 1500 for these parameters; n = 4000 is
	// comfortably past it (E2 charts the crossover itself).
	inst := noisyInstance(t, 4000, 8, 3, 21)
	params := core.Params{Universe: testUniverse, Seed: 31, DiffBudget: 8}

	robust, err := RobustOneShot{Params: params}.Run(inst.Alice, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactIBLT{Config: protocol.ExactConfig{Universe: testUniverse, Seed: 33}}.Run(inst.Alice, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Naive{Universe: testUniverse}.Run(inst.Alice, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	if robust.BytesTransferred() >= exact.BytesTransferred() {
		t.Errorf("robust %dB not cheaper than exact sync %dB under noise",
			robust.BytesTransferred(), exact.BytesTransferred())
	}
	if robust.BytesTransferred() >= naive.BytesTransferred() {
		t.Errorf("robust %dB not cheaper than naive %dB", robust.BytesTransferred(), naive.BytesTransferred())
	}
	// And the quality must be real: EMD improves substantially (grid
	// estimate — exact EMD at n=1000 is too slow for a unit test).
	g, err := grid.New(testUniverse, 71)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := emd.GridApprox(inst.Alice, inst.Bob, g)
	after, _ := emd.GridApprox(inst.Alice, robust.SPrime, g)
	if after >= before {
		t.Errorf("robust reconciliation did not reduce EMD estimate: %v → %v", before, after)
	}
}

func TestEstimateFirstCheaperThanOneShot(t *testing.T) {
	// The estimate-first variant replaces log Δ tables with estimators
	// plus one table; for moderate k it should use fewer bytes.
	inst := noisyInstance(t, 800, 8, 3, 41)
	params := core.Params{Universe: testUniverse, Seed: 51, DiffBudget: 8}
	one, err := RobustOneShot{Params: params}.Run(inst.Alice, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	est, err := RobustEstimateFirst{Params: params}.Run(inst.Alice, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	if est.Robust == nil || one.Robust == nil {
		t.Fatal("robust outcomes missing result details")
	}
	if est.BytesTransferred() >= one.BytesTransferred() {
		t.Errorf("estimate-first %dB not cheaper than one-shot %dB",
			est.BytesTransferred(), one.BytesTransferred())
	}
	if len(est.SPrime) != len(inst.Bob) {
		t.Errorf("|S'_B| = %d, want %d", len(est.SPrime), len(inst.Bob))
	}
}

func TestCPICapacityExceededSurfaces(t *testing.T) {
	inst := exactInstance(t, 200, 30, 61) // 60 diffs > capacity 10
	_, err := CPISync{Config: protocol.CPIConfig{Universe: testUniverse, Seed: 71, Capacity: 10}}.
		Run(inst.Alice, inst.Bob)
	if err == nil {
		t.Fatal("over-capacity CPI sync succeeded")
	}
}

func TestExactIBLTRetryPath(t *testing.T) {
	// Start with a hopeless slack so the first table stalls and the retry
	// doubling has to kick in.
	inst := exactInstance(t, 300, 40, 81)
	cfg := protocol.ExactConfig{Universe: testUniverse, Seed: 91, Slack: 0.3, MaxRetries: 6}
	out, err := ExactIBLT{Config: cfg}.Run(inst.Alice, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	if !points.EqualMultisets(out.SPrime, inst.Alice) {
		t.Error("retry path did not converge to S_A")
	}
	if out.Messages() <= 4 {
		t.Errorf("expected retries (> 4 messages), got %d", out.Messages())
	}
}

func TestNaiveByteCount(t *testing.T) {
	inst := exactInstance(t, 256, 0, 91)
	out, err := Naive{Universe: testUniverse}.Run(inst.Alice, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	// 1 type byte + 4 count + n·16 payload + 4 framing.
	want := int64(1 + 4 + 256*16 + 4)
	if out.BytesTransferred() != want {
		t.Errorf("naive bytes %d, want %d", out.BytesTransferred(), want)
	}
}

func TestRobustOverRealTCP(t *testing.T) {
	// End-to-end over a real socket: the wire format must survive TCP
	// segmentation, not just the in-memory pipe.
	inst := noisyInstance(t, 300, 5, 2, 101)
	params := core.Params{Universe: testUniverse, Seed: 111, DiffBudget: 5}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	aliceDone := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			aliceDone <- err
			return
		}
		tr := transport.NewConn(conn)
		defer tr.Close()
		aliceDone <- protocol.RunPushAlice(context.Background(), tr, params, inst.Alice)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.NewConn(conn)
	defer tr.Close()
	res, err := protocol.RunPushBob(context.Background(), tr, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-aliceDone; err != nil {
		t.Fatal(err)
	}
	if len(res.SPrime) != len(inst.Bob) {
		t.Errorf("|S'_B| = %d over TCP, want %d", len(res.SPrime), len(inst.Bob))
	}
}

func TestRemoteErrorPropagates(t *testing.T) {
	// Alice fed garbage parameters must surface a RemoteError at Bob, not
	// a hang.
	at, bt := transport.Pair()
	defer at.Close()
	defer bt.Close()
	go func() {
		badParams := core.Params{Universe: points.Universe{Dim: 0, Delta: 4}, DiffBudget: 1}
		_ = protocol.RunPushAlice(context.Background(), at, badParams, nil)
	}()
	_, err := protocol.RunPushBob(context.Background(), bt, nil)
	if err == nil {
		t.Fatal("bob succeeded against failing alice")
	}
}
