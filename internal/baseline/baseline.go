// Package baseline wraps every reconciliation protocol in this module —
// the robust protocol and its comparators — behind one Reconciler
// interface that executes the full two-party exchange over an in-memory
// transport and reports the resulting point set together with exact wire
// accounting. The experiment harness and the examples iterate over
// Reconcilers so every scheme is measured through the identical path a
// real deployment would use.
package baseline

import (
	"context"

	"robustset/internal/core"
	"robustset/internal/points"
	"robustset/internal/protocol"
	"robustset/internal/transport"
)

// Outcome reports one completed reconciliation.
type Outcome struct {
	// SPrime is Bob's final multiset (S'_B for the robust protocol; S_A
	// exactly for successful exact protocols).
	SPrime []points.Point
	// AliceStats and BobStats are the two endpoints' wire accounting.
	AliceStats, BobStats transport.Stats
	// Robust carries the protocol-internal result for robust variants
	// (chosen level, added/removed points); nil for the comparators.
	Robust *core.Result
}

// BytesTransferred returns the total bytes that crossed the wire in both
// directions (measured at Bob, whose view includes everything he sent and
// received).
func (o *Outcome) BytesTransferred() int64 { return o.BobStats.Total() }

// Messages returns the number of protocol messages exchanged.
func (o *Outcome) Messages() int64 { return o.BobStats.MsgsSent + o.BobStats.MsgsRecv }

// Reconciler is a complete two-party reconciliation scheme.
type Reconciler interface {
	// Name is a short stable identifier used in experiment tables.
	Name() string
	// Run executes the protocol with the given party inputs and returns
	// Bob's outcome.
	Run(alice, bob []points.Point) (*Outcome, error)
}

// execute wires Alice and Bob together over an in-memory pair.
func execute(
	aliceFn func(transport.Transport) error,
	bobFn func(transport.Transport) ([]points.Point, *core.Result, error),
) (*Outcome, error) {
	at, bt := transport.Pair()
	defer at.Close()
	defer bt.Close()
	aliceErr := make(chan error, 1)
	go func() { aliceErr <- aliceFn(at) }()
	sp, res, bobErr := bobFn(bt)
	aerr := <-aliceErr
	if bobErr != nil {
		return nil, bobErr
	}
	if aerr != nil {
		return nil, aerr
	}
	return &Outcome{
		SPrime:     sp,
		AliceStats: at.Stats(),
		BobStats:   bt.Stats(),
		Robust:     res,
	}, nil
}

// RobustOneShot is the paper's one-message protocol: Alice pushes the full
// multiresolution sketch.
type RobustOneShot struct {
	Params core.Params
}

// Name implements Reconciler.
func (r RobustOneShot) Name() string { return "robust-oneshot" }

// Run implements Reconciler.
func (r RobustOneShot) Run(alice, bob []points.Point) (*Outcome, error) {
	return execute(
		func(t transport.Transport) error {
			return protocol.RunPushAlice(context.Background(), t, r.Params, alice)
		},
		func(t transport.Transport) ([]points.Point, *core.Result, error) {
			res, err := protocol.RunPushBob(context.Background(), t, bob)
			if err != nil {
				return nil, nil, err
			}
			return res.SPrime, res, nil
		})
}

// RobustEstimateFirst is the multi-round robust variant: tiny per-level
// estimators first, then a single exactly-sized level table.
type RobustEstimateFirst struct {
	Params core.Params
	Opts   protocol.EstimateOpts
}

// Name implements Reconciler.
func (r RobustEstimateFirst) Name() string { return "robust-estimate" }

// Run implements Reconciler.
func (r RobustEstimateFirst) Run(alice, bob []points.Point) (*Outcome, error) {
	return execute(
		func(t transport.Transport) error {
			return protocol.RunEstimateAlice(context.Background(), t, r.Params, alice)
		},
		func(t transport.Transport) ([]points.Point, *core.Result, error) {
			res, err := protocol.RunEstimateBob(context.Background(), t, r.Params, bob, r.Opts)
			if err != nil {
				return nil, nil, err
			}
			return res.SPrime, res, nil
		})
}

// Naive transfers Alice's whole set.
type Naive struct {
	Universe points.Universe
}

// Name implements Reconciler.
func (n Naive) Name() string { return "naive" }

// Run implements Reconciler.
func (n Naive) Run(alice, bob []points.Point) (*Outcome, error) {
	return execute(
		func(t transport.Transport) error {
			return protocol.RunNaiveAlice(context.Background(), t, n.Universe, alice)
		},
		func(t transport.Transport) ([]points.Point, *core.Result, error) {
			sp, err := protocol.RunNaiveBob(context.Background(), t, n.Universe)
			return sp, nil, err
		})
}

// ExactIBLT is classic exact set synchronization via a strata estimator
// plus one IBLT (Difference Digest).
type ExactIBLT struct {
	Config protocol.ExactConfig
}

// Name implements Reconciler.
func (e ExactIBLT) Name() string { return "exact-iblt" }

// Run implements Reconciler.
func (e ExactIBLT) Run(alice, bob []points.Point) (*Outcome, error) {
	return execute(
		func(t transport.Transport) error {
			return protocol.RunExactIBLTAlice(context.Background(), t, e.Config, alice)
		},
		func(t transport.Transport) ([]points.Point, *core.Result, error) {
			sp, err := protocol.RunExactIBLTBob(context.Background(), t, e.Config, bob)
			return sp, nil, err
		})
}

// CPISync is classic exact set synchronization via characteristic
// polynomials (minisketch-class).
type CPISync struct {
	Config protocol.CPIConfig
}

// Name implements Reconciler.
func (c CPISync) Name() string { return "cpi" }

// Run implements Reconciler.
func (c CPISync) Run(alice, bob []points.Point) (*Outcome, error) {
	return execute(
		func(t transport.Transport) error {
			return protocol.RunCPIAlice(context.Background(), t, c.Config, alice)
		},
		func(t transport.Transport) ([]points.Point, *core.Result, error) {
			sp, err := protocol.RunCPIBob(context.Background(), t, c.Config, bob)
			return sp, nil, err
		})
}
