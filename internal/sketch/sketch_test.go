package sketch

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

func randKeys(rng *rand.Rand, n int) [][]byte {
	keys := make([][]byte, n)
	seen := map[string]bool{}
	for i := 0; i < n; {
		k := make([]byte, 16)
		for j := range k {
			k[j] = byte(rng.Uint32())
		}
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		keys[i] = k
		i++
	}
	return keys
}

// buildPair creates two key sets sharing `shared` keys with `diff` keys
// split between the two sides, returning loaded estimators of each kind.
func buildPair(t *testing.T, rng *rand.Rand, shared, diff int, seed uint64) (ba, bb *BottomK, sa, sb *Strata, trueDiff int) {
	t.Helper()
	all := randKeys(rng, shared+diff)
	var err error
	ba, err = NewBottomK(128, seed)
	if err != nil {
		t.Fatal(err)
	}
	bb, _ = NewBottomK(128, seed)
	sa, err = NewStrata(StrataConfig{KeyLen: 16, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sb, _ = NewStrata(StrataConfig{KeyLen: 16, Seed: seed})
	for i, k := range all {
		switch {
		case i < shared:
			ba.Add(k)
			bb.Add(k)
			sa.Add(k)
			sb.Add(k)
		case i%2 == 0:
			ba.Add(k)
			sa.Add(k)
		default:
			bb.Add(k)
			sb.Add(k)
		}
	}
	return ba, bb, sa, sb, diff
}

func TestBottomKValidation(t *testing.T) {
	if _, err := NewBottomK(4, 1); err == nil {
		t.Error("k=4 accepted")
	}
}

func TestBottomKIdenticalSets(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	a, _ := NewBottomK(64, 9)
	b, _ := NewBottomK(64, 9)
	for _, k := range randKeys(rng, 500) {
		a.Add(k)
		b.Add(k)
	}
	est, err := EstimateDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if est != 0 {
		t.Errorf("identical sets estimated diff %v, want 0", est)
	}
}

func TestBottomKDisjointSets(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	a, _ := NewBottomK(128, 9)
	b, _ := NewBottomK(128, 9)
	for _, k := range randKeys(rng, 300) {
		a.Add(k)
	}
	for _, k := range randKeys(rng, 300) {
		b.Add(k)
	}
	est, err := EstimateDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-600) > 60 {
		t.Errorf("disjoint sets estimated diff %v, want ≈600", est)
	}
}

func TestBottomKAccuracyAcrossRegimes(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for _, tc := range []struct{ shared, diff int }{
		{2000, 100}, {2000, 400}, {500, 500}, {100, 1000},
	} {
		var errSum float64
		const reps = 8
		for r := 0; r < reps; r++ {
			ba, bb, _, _, trueDiff := buildPair(t, rng, tc.shared, tc.diff, rng.Uint64())
			est, err := EstimateDiff(ba, bb)
			if err != nil {
				t.Fatal(err)
			}
			errSum += math.Abs(est-float64(trueDiff)) / float64(trueDiff)
		}
		if mean := errSum / reps; mean > 0.45 {
			t.Errorf("shared=%d diff=%d: mean relative error %.2f too high", tc.shared, tc.diff, mean)
		}
	}
}

func TestBottomKEmpty(t *testing.T) {
	a, _ := NewBottomK(32, 5)
	b, _ := NewBottomK(32, 5)
	if est, err := EstimateDiff(a, b); err != nil || est != 0 {
		t.Errorf("empty sketches: est=%v err=%v", est, err)
	}
	// One empty, one loaded: diff ≈ loaded size.
	rng := rand.New(rand.NewPCG(4, 4))
	for _, k := range randKeys(rng, 100) {
		a.Add(k)
	}
	est, err := EstimateDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if est != 100 {
		t.Errorf("one-sided diff estimate %v, want 100 exactly (J=0)", est)
	}
}

func TestBottomKIncompatible(t *testing.T) {
	a, _ := NewBottomK(32, 5)
	b, _ := NewBottomK(64, 5)
	c, _ := NewBottomK(32, 6)
	if _, err := EstimateDiff(a, b); !errors.Is(err, ErrIncompatibleSketch) {
		t.Error("k mismatch accepted")
	}
	if _, err := EstimateDiff(a, c); !errors.Is(err, ErrIncompatibleSketch) {
		t.Error("seed mismatch accepted")
	}
}

func TestBottomKDuplicateAdds(t *testing.T) {
	a, _ := NewBottomK(32, 5)
	k := []byte("0123456789abcdef")
	for i := 0; i < 10; i++ {
		a.Add(k)
	}
	if a.Count() != 10 {
		t.Errorf("Count = %d, want 10", a.Count())
	}
	if len(a.mins) != 1 {
		t.Errorf("mins holds %d entries, want 1 (dedup)", len(a.mins))
	}
}

func TestBottomKMarshalRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	a, _ := NewBottomK(64, 77)
	for _, k := range randKeys(rng, 300) {
		a.Add(k)
	}
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) != a.WireSize() {
		t.Errorf("wire size %d != declared %d", len(blob), a.WireSize())
	}
	var b BottomK
	if err := b.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if est, err := EstimateDiff(a, &b); err != nil || est != 0 {
		t.Errorf("roundtripped sketch differs from original: est=%v err=%v", est, err)
	}
}

func TestBottomKUnmarshalRejectsCorrupt(t *testing.T) {
	a, _ := NewBottomK(32, 1)
	a.Add([]byte("k"))
	good, _ := a.MarshalBinary()
	var b BottomK
	if err := b.UnmarshalBinary(good[:10]); err == nil {
		t.Error("short buffer accepted")
	}
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if err := b.UnmarshalBinary(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if err := b.UnmarshalBinary(append(good, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestStrataValidation(t *testing.T) {
	if _, err := NewStrata(StrataConfig{Strata: 1, KeyLen: 8}); err == nil {
		t.Error("1 stratum accepted")
	}
	if _, err := NewStrata(StrataConfig{KeyLen: 0}); err == nil {
		t.Error("zero key length accepted")
	}
}

func TestStrataExactForSmallDiffs(t *testing.T) {
	// Small differences decode every stratum, so the estimate is exact.
	rng := rand.New(rand.NewPCG(6, 6))
	for _, diff := range []int{0, 1, 3, 10} {
		_, _, sa, sb, trueDiff := buildPair(t, rng, 1000, diff, rng.Uint64())
		est, err := EstimateStrataDiff(sa, sb)
		if err != nil {
			t.Fatal(err)
		}
		if est != float64(trueDiff) {
			t.Errorf("diff=%d: strata estimate %v, want exact", trueDiff, est)
		}
	}
}

func TestStrataAccuracyLargeDiffs(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for _, diff := range []int{200, 1000, 5000} {
		var errSum float64
		const reps = 6
		for r := 0; r < reps; r++ {
			_, _, sa, sb, trueDiff := buildPair(t, rng, 1000, diff, rng.Uint64())
			est, err := EstimateStrataDiff(sa, sb)
			if err != nil {
				t.Fatal(err)
			}
			errSum += math.Abs(est-float64(trueDiff)) / float64(trueDiff)
		}
		if mean := errSum / reps; mean > 0.6 {
			t.Errorf("diff=%d: mean relative error %.2f too high", diff, mean)
		}
	}
}

func TestStrataIncompatible(t *testing.T) {
	a, _ := NewStrata(StrataConfig{KeyLen: 8, Seed: 1})
	b, _ := NewStrata(StrataConfig{KeyLen: 8, Seed: 2})
	if _, err := EstimateStrataDiff(a, b); !errors.Is(err, ErrIncompatibleSketch) {
		t.Error("seed mismatch accepted")
	}
	c, _ := NewStrata(StrataConfig{KeyLen: 16, Seed: 1})
	if _, err := EstimateStrataDiff(a, c); !errors.Is(err, ErrIncompatibleSketch) {
		t.Error("key length mismatch accepted")
	}
}

func TestStrataMarshalRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	a, _ := NewStrata(StrataConfig{KeyLen: 16, Seed: 3})
	keys := randKeys(rng, 400)
	for _, k := range keys {
		a.Add(k)
	}
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) != a.WireSize() {
		t.Errorf("wire size %d != declared %d", len(blob), a.WireSize())
	}
	var b Strata
	if err := b.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	est, err := EstimateStrataDiff(a, &b)
	if err != nil || est != 0 {
		t.Errorf("roundtripped strata differ from original: est=%v err=%v", est, err)
	}
}

func TestStrataUnmarshalRejectsCorrupt(t *testing.T) {
	a, _ := NewStrata(StrataConfig{KeyLen: 8, Seed: 3})
	a.Add(make([]byte, 8))
	good, _ := a.MarshalBinary()
	var b Strata
	for name, blob := range map[string][]byte{
		"short":    good[:5],
		"badmagic": append([]byte("XXXX"), good[4:]...),
		"truncate": good[:len(good)-3],
		"trailing": append(append([]byte{}, good...), 1, 2, 3),
	} {
		if err := b.UnmarshalBinary(blob); err == nil {
			t.Errorf("%s: corrupt strata accepted", name)
		}
	}
}

func TestStrataDistribution(t *testing.T) {
	// Stratum i should receive about 2^-(i+1) of the keys.
	rng := rand.New(rand.NewPCG(9, 9))
	s, _ := NewStrata(StrataConfig{KeyLen: 16, Seed: 10})
	const n = 1 << 14
	counts := make([]int, s.strata)
	for _, k := range randKeys(rng, n) {
		counts[s.StratumOf(k)]++
	}
	for i := 0; i < 4; i++ {
		want := float64(n) / float64(uint64(2)<<uint(i))
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Errorf("stratum %d: count %d, want ≈%.0f", i, counts[i], want)
		}
	}
}
