package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"

	"robustset/internal/hashutil"
	"robustset/internal/iblt"
)

// Strata is a strata estimator (Eppstein et al. 2011) for set-difference
// size: stratum i is a small IBLT over the keys whose sampling hash has
// exactly i leading zero bits, i.e. a 2^-(i+1) sample of the key space.
// Subtracting two parties' strata and decoding from the sparsest stratum
// downward yields an unbiased difference estimate that is accurate even
// for very small differences, where bottom-k sketches are noisy.
type Strata struct {
	strata   int
	cells    int // cells per stratum IBLT
	keyLen   int
	seed     uint64
	tables   []*iblt.Table
	sampleFn hashutil.Hasher
}

// StrataConfig parameterizes a strata estimator.
type StrataConfig struct {
	// Strata is the number of strata; 16 handles key sets up to ~2^16
	// differences per stratum-0, and 24 is comfortable for anything this
	// module produces. Default 16.
	Strata int
	// CellsPerStratum is the IBLT size per stratum. Default 32.
	CellsPerStratum int
	// KeyLen is the exact key length in bytes.
	KeyLen int
	// Seed keys both the sampling hash and the stratum IBLTs.
	Seed uint64
}

func (c *StrataConfig) fill() {
	if c.Strata == 0 {
		c.Strata = 16
	}
	if c.CellsPerStratum == 0 {
		c.CellsPerStratum = 32
	}
}

// NewStrata constructs an empty strata estimator.
func NewStrata(cfg StrataConfig) (*Strata, error) {
	cfg.fill()
	if cfg.Strata < 2 || cfg.Strata > 40 {
		return nil, fmt.Errorf("sketch: strata count %d outside [2,40]", cfg.Strata)
	}
	if cfg.KeyLen < 1 {
		return nil, fmt.Errorf("sketch: strata key length %d < 1", cfg.KeyLen)
	}
	s := &Strata{
		strata:   cfg.Strata,
		cells:    cfg.CellsPerStratum,
		keyLen:   cfg.KeyLen,
		seed:     cfg.Seed,
		tables:   make([]*iblt.Table, cfg.Strata),
		sampleFn: hashutil.NewHasher(hashutil.DeriveSeed(cfg.Seed, "sketch/strata/sample")),
	}
	for i := range s.tables {
		t, err := iblt.New(iblt.Config{
			Cells:     cfg.CellsPerStratum,
			HashCount: 4,
			KeyLen:    cfg.KeyLen,
			Seed:      hashutil.DeriveSeedN(cfg.Seed, "sketch/strata/tbl", i),
		})
		if err != nil {
			return nil, err
		}
		s.tables[i] = t
	}
	return s, nil
}

// StratumOf maps a key to its stratum: the number of leading zero bits of
// its sampling hash, clamped into [0, strata). It is exported for
// workload construction and tests — a difference skewed into stratum 0
// (half the key space) is invisible above it and drives the estimate
// toward zero, the adversarial regime for estimate-then-size protocols.
func (s *Strata) StratumOf(key []byte) int {
	h := s.sampleFn.Hash(key)
	lz := 0
	for lz < s.strata-1 && h&(1<<63) == 0 {
		lz++
		h <<= 1
	}
	return lz
}

// Add inserts a key into its stratum.
func (s *Strata) Add(key []byte) {
	s.tables[s.StratumOf(key)].Insert(key)
}

// EstimateDiff estimates |A Δ B| from two compatible strata estimators.
// Following the Difference Digest construction: subtract stratum-wise and
// decode from the sparsest stratum downward; when stratum i fails to
// decode, scale the count recovered so far by 2^(i+1).
func EstimateStrataDiff(a, b *Strata) (float64, error) {
	if a.strata != b.strata || a.cells != b.cells || a.keyLen != b.keyLen || a.seed != b.seed {
		return 0, ErrIncompatibleSketch
	}
	count := 0
	for i := a.strata - 1; i >= 0; i-- {
		t := a.tables[i].Clone()
		if err := t.Sub(b.tables[i]); err != nil {
			return 0, err
		}
		diff, err := t.Decode()
		if err != nil {
			// Stratum i is overloaded: everything at stratum i and below
			// is a 2^-(i+1)-sample... strata above i contributed `count`
			// keys drawn with cumulative rate 2^-(i+1).
			return float64(count) * float64(uint64(1)<<uint(i+1)), nil
		}
		count += diff.Size()
	}
	return float64(count), nil
}

const strataMagic = "STR1"

// MarshalBinary encodes the estimator:
//
//	"STR1" | strata u8 | cells u32 | keyLen u16 | seed u64 | per-stratum IBLT blobs (u32 length prefix each)
func (s *Strata) MarshalBinary() ([]byte, error) {
	out := []byte(strataMagic)
	out = append(out, byte(s.strata))
	out = binary.LittleEndian.AppendUint32(out, uint32(s.cells))
	out = binary.LittleEndian.AppendUint16(out, uint16(s.keyLen))
	out = binary.LittleEndian.AppendUint64(out, s.seed)
	for _, t := range s.tables {
		blob, err := t.MarshalBinary()
		if err != nil {
			return nil, err
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(len(blob)))
		out = append(out, blob...)
	}
	return out, nil
}

// UnmarshalBinary parses MarshalBinary output.
func (s *Strata) UnmarshalBinary(data []byte) error {
	if len(data) < 19 || string(data[:4]) != strataMagic {
		return errors.New("sketch: strata: bad magic or short buffer")
	}
	strata := int(data[4])
	cells := int(binary.LittleEndian.Uint32(data[5:]))
	keyLen := int(binary.LittleEndian.Uint16(data[9:]))
	seed := binary.LittleEndian.Uint64(data[11:])
	ns, err := NewStrata(StrataConfig{Strata: strata, CellsPerStratum: cells, KeyLen: keyLen, Seed: seed})
	if err != nil {
		return err
	}
	off := 19
	for i := 0; i < strata; i++ {
		if off+4 > len(data) {
			return errors.New("sketch: strata: truncated stratum table")
		}
		l := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if off+l > len(data) {
			return errors.New("sketch: strata: truncated stratum table body")
		}
		if err := ns.tables[i].UnmarshalBinary(data[off : off+l]); err != nil {
			return fmt.Errorf("sketch: strata: stratum %d: %w", i, err)
		}
		off += l
	}
	if off != len(data) {
		return errors.New("sketch: strata: trailing bytes")
	}
	*s = *ns
	return nil
}

// WireSize returns the marshalled size in bytes.
func (s *Strata) WireSize() int {
	n := 19
	for _, t := range s.tables {
		n += 4 + t.WireSize()
	}
	return n
}
