// Package sketch provides compact set-difference size estimators. The
// robust reconciliation protocol and the exact-sync baseline both need to
// size their IBLTs to the (unknown) number of differences; sending a small
// estimator first and an exactly-sized table second is the classic
// "Difference Digest" pattern (Eppstein, Goodrich, Uyeda, Varghese 2011).
//
// Two estimators are provided:
//
//   - BottomK: a bottom-k (k minimum hash values) sketch. Tiny and
//     mergeable; estimates the Jaccard similarity and from it the size of
//     the symmetric difference given both set sizes.
//   - Strata: a hierarchy of small IBLTs over subsampled keys, which is
//     more accurate for very small differences.
package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"robustset/internal/hashutil"
)

// BottomK is a bottom-k sketch of a key set: the k smallest 64-bit hash
// values of the keys, plus the set's cardinality. Two sketches built with
// the same K and Seed can estimate the size of their sets' symmetric
// difference.
type BottomK struct {
	k    int
	seed uint64
	n    int      // number of keys added
	mins []uint64 // sorted ascending, at most k values, distinct
	h    hashutil.Hasher
}

// NewBottomK constructs an empty bottom-k sketch. k must be ≥ 8 for the
// estimate to mean anything; 128 is a good default (1 KiB on the wire).
func NewBottomK(k int, seed uint64) (*BottomK, error) {
	if k < 8 {
		return nil, fmt.Errorf("sketch: bottom-k size %d < 8", k)
	}
	return &BottomK{k: k, seed: seed, h: hashutil.NewHasher(hashutil.DeriveSeed(seed, "sketch/bottomk"))}, nil
}

// Add inserts a key. Duplicate keys are idempotent (the sketch sees the
// same hash value).
func (b *BottomK) Add(key []byte) {
	b.n++
	v := b.h.Hash(key)
	i := sort.Search(len(b.mins), func(i int) bool { return b.mins[i] >= v })
	if i < len(b.mins) && b.mins[i] == v {
		return // duplicate hash (duplicate key, almost surely)
	}
	if len(b.mins) == b.k {
		if v >= b.mins[b.k-1] {
			return
		}
		b.mins = b.mins[:b.k-1]
	}
	b.mins = append(b.mins, 0)
	copy(b.mins[i+1:], b.mins[i:])
	b.mins[i] = v
}

// K returns the sketch size parameter.
func (b *BottomK) K() int { return b.k }

// Count returns the number of Add calls (with multiplicity).
func (b *BottomK) Count() int { return b.n }

// ErrIncompatibleSketch is returned when combining sketches with different
// parameters.
var ErrIncompatibleSketch = errors.New("sketch: incompatible sketch parameters")

// EstimateDiff estimates |A Δ B|, the size of the symmetric difference of
// the two key sets, from their bottom-k sketches. The estimator merges the
// two min-lists to approximate the bottom-k of the union and counts how
// many of those minima appear in both sketches (the standard bottom-k
// Jaccard estimator), then converts J into a difference size using the
// recorded cardinalities.
func EstimateDiff(a, c *BottomK) (float64, error) {
	if a.k != c.k || a.seed != c.seed {
		return 0, ErrIncompatibleSketch
	}
	if a.n == 0 && c.n == 0 {
		return 0, nil
	}
	// Merge the two sorted lists to find the union's k smallest values and
	// count those present in both.
	union := make([]uint64, 0, a.k)
	both := 0
	i, j := 0, 0
	for len(union) < a.k && (i < len(a.mins) || j < len(c.mins)) {
		switch {
		case j >= len(c.mins) || (i < len(a.mins) && a.mins[i] < c.mins[j]):
			union = append(union, a.mins[i])
			i++
		case i >= len(a.mins) || c.mins[j] < a.mins[i]:
			union = append(union, c.mins[j])
			j++
		default: // equal: in both
			union = append(union, a.mins[i])
			both++
			i++
			j++
		}
	}
	if len(union) == 0 {
		return 0, nil
	}
	jaccard := float64(both) / float64(len(union))
	// |A∩B| = J·|A∪B| and |A∪B| = (|A|+|B|)/(1+J), so
	// |AΔB| = |A|+|B| − 2|A∩B| = (|A|+|B|)·(1−J)/(1+J).
	return float64(a.n+c.n) * (1 - jaccard) / (1 + jaccard), nil
}

const bottomkMagic = "BTK1"

// MarshalBinary encodes the sketch:
//
//	"BTK1" | k u32 | seed u64 | n u64 | len u32 | len × u64 mins
func (b *BottomK) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, 4+4+8+8+4+8*len(b.mins))
	out = append(out, bottomkMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(b.k))
	out = binary.LittleEndian.AppendUint64(out, b.seed)
	out = binary.LittleEndian.AppendUint64(out, uint64(b.n))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.mins)))
	for _, v := range b.mins {
		out = binary.LittleEndian.AppendUint64(out, v)
	}
	return out, nil
}

// UnmarshalBinary parses MarshalBinary output.
func (b *BottomK) UnmarshalBinary(data []byte) error {
	if len(data) < 28 || string(data[:4]) != bottomkMagic {
		return errors.New("sketch: bottom-k: bad magic or short buffer")
	}
	k := int(binary.LittleEndian.Uint32(data[4:]))
	seed := binary.LittleEndian.Uint64(data[8:])
	n := int(binary.LittleEndian.Uint64(data[16:]))
	l := int(binary.LittleEndian.Uint32(data[24:]))
	if l > k || len(data) != 28+8*l {
		return fmt.Errorf("sketch: bottom-k: inconsistent lengths (k=%d l=%d bytes=%d)", k, l, len(data))
	}
	nb, err := NewBottomK(k, seed)
	if err != nil {
		return err
	}
	nb.n = n
	nb.mins = make([]uint64, l)
	for i := 0; i < l; i++ {
		nb.mins[i] = binary.LittleEndian.Uint64(data[28+8*i:])
	}
	for i := 1; i < l; i++ {
		if nb.mins[i] <= nb.mins[i-1] {
			return errors.New("sketch: bottom-k: min list not strictly increasing")
		}
	}
	*b = *nb
	return nil
}

// WireSize returns the marshalled size in bytes.
func (b *BottomK) WireSize() int { return 28 + 8*len(b.mins) }
