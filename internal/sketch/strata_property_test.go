package sketch

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
)

// TestEstimateStrataDiffPropertyBound is the property test behind the
// "within ~2× whp" contract the exact protocols size their first table
// from (ExactConfig.Slack documents it): over seeded random set pairs
// with true differences spanning 0..2^16, the estimate must fall within
// the documented factor-of-~2 band with high probability. The observed
// error distribution is recorded in the test log, so a drift in estimator
// quality is visible even while the bound still holds.
func TestEstimateStrataDiffPropertyBound(t *testing.T) {
	const keyLen = 16
	// The whp bound with a hard tolerance needs a hair of slack over the
	// nominal 2× for finite strata tables; violations of the nominal
	// factor are counted and bounded separately.
	const hardFactor = 2.5
	const nominalFactor = 2.0

	diffs := []int{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}
	trialsPer := 3

	newStrata := func(seed uint64) *Strata {
		s, err := NewStrata(StrataConfig{Strata: 24, KeyLen: keyLen, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	randKey := func(rng *rand.Rand) []byte {
		k := make([]byte, keyLen)
		for i := 0; i < keyLen; i += 8 {
			v := rng.Uint64()
			for j := 0; j < 8; j++ {
				k[i+j] = byte(v >> (8 * j))
			}
		}
		return k
	}

	type sample struct {
		d     int
		est   float64
		ratio float64
	}
	var samples []sample
	nominalViolations := 0

	for _, d := range diffs {
		for trial := 0; trial < trialsPer; trial++ {
			rng := rand.New(rand.NewPCG(uint64(d)*1000003, uint64(trial)+7))
			seed := rng.Uint64()
			a, b := newStrata(seed), newStrata(seed)
			// Shared base keys cancel under subtraction; keep the base
			// modest so the suite stays fast without changing the residual.
			base := 512
			for i := 0; i < base; i++ {
				k := randKey(rng)
				a.Add(k)
				b.Add(k)
			}
			// Split the difference across the two sides.
			for i := 0; i < d; i++ {
				if i%2 == 0 {
					a.Add(randKey(rng))
				} else {
					b.Add(randKey(rng))
				}
			}
			est, err := EstimateStrataDiff(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if d == 0 {
				if est != 0 {
					t.Errorf("d=0: estimate %v, want exactly 0", est)
				}
				continue
			}
			ratio := est / float64(d)
			samples = append(samples, sample{d: d, est: est, ratio: ratio})
			// Tiny differences decode exactly from the strata; the
			// multiplicative band is the contract for the scaled regime.
			if d >= 16 {
				if ratio < 1/hardFactor || ratio > hardFactor {
					t.Errorf("d=%d trial=%d: estimate %.0f off by ×%.2f (hard bound ×%.1f)",
						d, trial, est, math.Max(ratio, 1/ratio), hardFactor)
				}
				if ratio < 1/nominalFactor || ratio > nominalFactor {
					nominalViolations++
				}
			}
		}
	}

	// "whp" for the nominal 2×: allow a small minority of trials outside.
	scaled := 0
	for _, s := range samples {
		if s.d >= 16 {
			scaled++
		}
	}
	if max := scaled / 5; nominalViolations > max {
		t.Errorf("%d/%d scaled trials outside the nominal ×%.1f band (max %d)",
			nominalViolations, scaled, nominalFactor, max)
	}

	// Record the observed error distribution: per-d mean ratio plus a
	// coarse histogram of est/d across all scaled trials.
	byD := map[int][]float64{}
	for _, s := range samples {
		byD[s.d] = append(byD[s.d], s.ratio)
	}
	for _, d := range diffs {
		rs := byD[d]
		if len(rs) == 0 {
			continue
		}
		mean, lo, hi := 0.0, math.Inf(1), math.Inf(-1)
		for _, r := range rs {
			mean += r
			lo, hi = math.Min(lo, r), math.Max(hi, r)
		}
		mean /= float64(len(rs))
		t.Logf("d=%-6d est/d mean %.3f, min %.3f, max %.3f (%d trials)", d, mean, lo, hi, len(rs))
	}
	buckets := []struct {
		lo, hi float64
		n      int
	}{
		{0, 0.5, 0}, {0.5, 0.8, 0}, {0.8, 1.25, 0}, {1.25, 2.0, 0}, {2.0, math.Inf(1), 0},
	}
	for _, s := range samples {
		if s.d < 16 {
			continue
		}
		for i := range buckets {
			if s.ratio >= buckets[i].lo && s.ratio < buckets[i].hi {
				buckets[i].n++
				break
			}
		}
	}
	hist := "est/d histogram (d≥16):"
	for _, b := range buckets {
		hist += fmt.Sprintf(" [%.2g,%.2g)=%d", b.lo, b.hi, b.n)
	}
	t.Log(hist)
}

// TestEstimateStrataDiffSkewedUndershoot pins down the adversarial regime
// the rateless protocol exists for: a difference composed entirely of
// stratum-0 keys is invisible to every sampled stratum, so the estimate
// collapses toward zero no matter how large the true difference is.
func TestEstimateStrataDiffSkewedUndershoot(t *testing.T) {
	const keyLen = 16
	s0, err := NewStrata(StrataConfig{KeyLen: keyLen, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 5))
	mineStratum0 := func() []byte {
		for {
			k := make([]byte, keyLen)
			for i := 0; i < keyLen; i += 8 {
				v := rng.Uint64()
				for j := 0; j < 8; j++ {
					k[i+j] = byte(v >> (8 * j))
				}
			}
			if s0.StratumOf(k) == 0 {
				return k
			}
		}
	}
	a, err := NewStrata(StrataConfig{KeyLen: keyLen, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStrata(StrataConfig{KeyLen: keyLen, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	const d = 2000
	for i := 0; i < d; i++ {
		a.Add(mineStratum0())
	}
	_ = b
	est, err := EstimateStrataDiff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("skewed diff %d estimated as %.0f", d, est)
	if est > float64(d)/10 {
		t.Errorf("stratum-0-skewed difference of %d estimated as %.0f; expected a collapse toward 0", d, est)
	}
}
