// Package gf implements arithmetic in the prime field GF(p) with
// p = 2^61 − 1 (a Mersenne prime), the scalar substrate of the
// characteristic-polynomial set reconciliation baseline in internal/cpi.
//
// The Mersenne modulus makes reduction branch-light: 2^61 ≡ 1 (mod p), so
// a 128-bit product reduces with shifts and adds. Elements are canonical
// uint64 values in [0, p).
package gf

import (
	"fmt"
	"math/bits"
)

// P is the field modulus 2^61 − 1.
const P uint64 = 1<<61 - 1

// Elem is a field element in canonical form (0 ≤ e < P).
type Elem uint64

// New reduces an arbitrary uint64 into the field.
func New(x uint64) Elem {
	x = (x & P) + (x >> 61)
	if x >= P {
		x -= P
	}
	return Elem(x)
}

// IsCanonical reports whether e is in [0, P). Wire decoders use it to
// reject non-canonical encodings.
func (e Elem) IsCanonical() bool { return uint64(e) < P }

// Add returns a + b.
func Add(a, b Elem) Elem {
	s := uint64(a) + uint64(b)
	if s >= P {
		s -= P
	}
	return Elem(s)
}

// Sub returns a − b.
func Sub(a, b Elem) Elem {
	if a >= b {
		return a - b
	}
	return a + Elem(P) - b
}

// Neg returns −a.
func Neg(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return Elem(P) - a
}

// Mul returns a · b using 128-bit multiplication and Mersenne reduction:
// with x = hi·2^64 + lo and 2^64 ≡ 8 (mod p),
// x ≡ 8·hi + (lo mod 2^61) + ⌊lo/2^61⌋.
func Mul(a, b Elem) Elem {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	// a, b < 2^61 ⇒ hi < 2^58 ⇒ 8·hi < 2^61: no overflow below.
	s := (lo & P) + (lo >> 61) + hi<<3
	s = (s & P) + (s >> 61)
	if s >= P {
		s -= P
	}
	return Elem(s)
}

// MulShiftAdd returns a · b by classic double-and-add over the bits of b:
// the obviously-correct reference multiplier. It performs no 128-bit
// arithmetic at all, so it runs on targets without a wide multiply, and it
// is the reference implementation the optimized paths (Mul, MulTable) are
// pinned against in the equivalence tests.
func MulShiftAdd(a, b Elem) Elem {
	var acc Elem
	x := a
	e := uint64(b)
	for e != 0 {
		if e&1 == 1 {
			acc = Add(acc, x)
		}
		x = Add(x, x)
		e >>= 1
	}
	return acc
}

// MulTable is a precomputed per-multiplicand multiplication table using
// 4-bit slicing: row i holds v·16^i·m mod p for every nibble value v, so
// x·m is the lazily reduced sum of 16 table entries selected by the
// nibbles of x — no wide multiplication at evaluation time.
//
// Building a table costs 256 field operations, so it pays off only for
// repeated multiplication by the same multiplicand (Horner steps at a
// fixed point, fixed generators). On 64-bit CPUs with a fast 64×64→128
// multiply the plain Mul routine is faster; the table path exists for
// targets without one and as an independently constructed implementation
// the equivalence tests cross-check. Benchmarks in this package compare
// all three multipliers.
type MulTable struct {
	t [16][16]uint64
}

// NewMulTable builds the 4-bit sliced multiplication table for m.
func NewMulTable(m Elem) *MulTable {
	mt := &MulTable{}
	base := m
	for i := 0; i < 16; i++ {
		for v := 1; v < 16; v++ {
			mt.t[i][v] = uint64(Mul(base, Elem(v)))
		}
		base = Mul(base, Elem(16))
	}
	return mt
}

// Mul returns a · m for the table's multiplicand m: 16 table lookups and
// a lazy Mersenne fold. Each entry is < 2^61, so two batches of 8 stay
// below 2^64 and one fold each keeps the final sum in range.
func (mt *MulTable) Mul(a Elem) Elem {
	x := uint64(a)
	s1 := mt.t[0][x&15] + mt.t[1][(x>>4)&15] + mt.t[2][(x>>8)&15] + mt.t[3][(x>>12)&15] +
		mt.t[4][(x>>16)&15] + mt.t[5][(x>>20)&15] + mt.t[6][(x>>24)&15] + mt.t[7][(x>>28)&15]
	s2 := mt.t[8][(x>>32)&15] + mt.t[9][(x>>36)&15] + mt.t[10][(x>>40)&15] + mt.t[11][(x>>44)&15] +
		mt.t[12][(x>>48)&15] + mt.t[13][(x>>52)&15] + mt.t[14][(x>>56)&15] + mt.t[15][(x>>60)&15]
	s1 = (s1 & P) + (s1 >> 61)
	s2 = (s2 & P) + (s2 >> 61)
	s := s1 + s2
	s = (s & P) + (s >> 61)
	if s >= P {
		s -= P
	}
	return Elem(s)
}

// Pow returns a^e by square-and-multiply.
func Pow(a Elem, e uint64) Elem {
	result := Elem(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse via Fermat's little theorem:
// a^(p−2). It panics on zero — dividing by zero is always a caller bug.
func Inv(a Elem) Elem {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return Pow(a, P-2)
}

// Div returns a / b. It panics if b is zero.
func Div(a, b Elem) Elem { return Mul(a, Inv(b)) }

// String renders the element as a decimal.
func (e Elem) String() string { return fmt.Sprintf("%d", uint64(e)) }
