// Package gf implements arithmetic in the prime field GF(p) with
// p = 2^61 − 1 (a Mersenne prime), the scalar substrate of the
// characteristic-polynomial set reconciliation baseline in internal/cpi.
//
// The Mersenne modulus makes reduction branch-light: 2^61 ≡ 1 (mod p), so
// a 128-bit product reduces with shifts and adds. Elements are canonical
// uint64 values in [0, p).
package gf

import (
	"fmt"
	"math/bits"
)

// P is the field modulus 2^61 − 1.
const P uint64 = 1<<61 - 1

// Elem is a field element in canonical form (0 ≤ e < P).
type Elem uint64

// New reduces an arbitrary uint64 into the field.
func New(x uint64) Elem {
	x = (x & P) + (x >> 61)
	if x >= P {
		x -= P
	}
	return Elem(x)
}

// IsCanonical reports whether e is in [0, P). Wire decoders use it to
// reject non-canonical encodings.
func (e Elem) IsCanonical() bool { return uint64(e) < P }

// Add returns a + b.
func Add(a, b Elem) Elem {
	s := uint64(a) + uint64(b)
	if s >= P {
		s -= P
	}
	return Elem(s)
}

// Sub returns a − b.
func Sub(a, b Elem) Elem {
	if a >= b {
		return a - b
	}
	return a + Elem(P) - b
}

// Neg returns −a.
func Neg(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return Elem(P) - a
}

// Mul returns a · b using 128-bit multiplication and Mersenne reduction:
// with x = hi·2^64 + lo and 2^64 ≡ 8 (mod p),
// x ≡ 8·hi + (lo mod 2^61) + ⌊lo/2^61⌋.
func Mul(a, b Elem) Elem {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	// a, b < 2^61 ⇒ hi < 2^58 ⇒ 8·hi < 2^61: no overflow below.
	s := (lo & P) + (lo >> 61) + hi<<3
	s = (s & P) + (s >> 61)
	if s >= P {
		s -= P
	}
	return Elem(s)
}

// Pow returns a^e by square-and-multiply.
func Pow(a Elem, e uint64) Elem {
	result := Elem(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse via Fermat's little theorem:
// a^(p−2). It panics on zero — dividing by zero is always a caller bug.
func Inv(a Elem) Elem {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return Pow(a, P-2)
}

// Div returns a / b. It panics if b is zero.
func Div(a, b Elem) Elem { return Mul(a, Inv(b)) }

// String renders the element as a decimal.
func (e Elem) String() string { return fmt.Sprintf("%d", uint64(e)) }
