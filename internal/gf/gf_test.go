package gf

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func randElem(rng *rand.Rand) Elem { return New(rng.Uint64()) }

func TestNewCanonicalizes(t *testing.T) {
	if New(P) != 0 {
		t.Errorf("New(P) = %v, want 0", New(P))
	}
	if New(P+5) != 5 {
		t.Errorf("New(P+5) = %v, want 5", New(P+5))
	}
	if New(^uint64(0)) >= Elem(P) {
		t.Error("New(max) not canonical")
	}
	f := func(x uint64) bool { return New(x).IsCanonical() }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdditiveGroup(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 2000; i++ {
		a, b, c := randElem(rng), randElem(rng), randElem(rng)
		if Add(a, b) != Add(b, a) {
			t.Fatal("addition not commutative")
		}
		if Add(Add(a, b), c) != Add(a, Add(b, c)) {
			t.Fatal("addition not associative")
		}
		if Add(a, 0) != a {
			t.Fatal("0 not additive identity")
		}
		if Add(a, Neg(a)) != 0 {
			t.Fatal("a + (-a) != 0")
		}
		if Sub(a, b) != Add(a, Neg(b)) {
			t.Fatal("sub inconsistent with neg")
		}
	}
}

func TestMultiplicativeGroup(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 2000; i++ {
		a, b, c := randElem(rng), randElem(rng), randElem(rng)
		if Mul(a, b) != Mul(b, a) {
			t.Fatal("multiplication not commutative")
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			t.Fatalf("multiplication not associative: a=%v b=%v c=%v", a, b, c)
		}
		if Mul(a, 1) != a {
			t.Fatal("1 not multiplicative identity")
		}
		if Mul(Add(a, b), c) != Add(Mul(a, c), Mul(b, c)) {
			t.Fatal("distributivity fails")
		}
		if a != 0 {
			if Mul(a, Inv(a)) != 1 {
				t.Fatalf("a · a⁻¹ != 1 for a=%v", a)
			}
			if Div(Mul(a, b), a) != b {
				t.Fatal("division inconsistent")
			}
		}
	}
}

func TestMulEdgeValues(t *testing.T) {
	// Extremes of the reduction path.
	big := Elem(P - 1)
	if Mul(big, big) != 1 {
		// (p-1)² = p² - 2p + 1 ≡ 1 (mod p)
		t.Errorf("(p-1)² = %v, want 1", Mul(big, big))
	}
	if Mul(big, 2) != Elem(P-2) {
		t.Errorf("(p-1)·2 = %v, want p-2", Mul(big, 2))
	}
	if Mul(0, big) != 0 {
		t.Error("0·x != 0")
	}
}

func TestPow(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for i := 0; i < 200; i++ {
		a := randElem(rng)
		if Pow(a, 0) != 1 {
			t.Fatal("a^0 != 1")
		}
		if Pow(a, 1) != a {
			t.Fatal("a^1 != a")
		}
		if Pow(a, 5) != Mul(Mul(Mul(Mul(a, a), a), a), a) {
			t.Fatal("a^5 mismatch")
		}
		if a != 0 && Pow(a, P-1) != 1 {
			t.Fatal("Fermat: a^(p-1) != 1")
		}
	}
}

// TestMulImplEquivalence pins the three multipliers — the wide-multiply
// Mersenne path (Mul), the 4-bit table-sliced path (MulTable) and the
// shift-and-add reference (MulShiftAdd) — to each other over random
// operands and the reduction-path extremes.
func TestMulImplEquivalence(t *testing.T) {
	edge := []Elem{0, 1, 2, 15, 16, 17, Elem(P - 1), Elem(P - 2), Elem(P >> 1), Elem(1) << 60, Elem((1 << 60) - 1)}
	check := func(a, b Elem) {
		t.Helper()
		want := Mul(a, b)
		if got := MulShiftAdd(a, b); got != want {
			t.Fatalf("MulShiftAdd(%v, %v) = %v, want %v", a, b, got, want)
		}
		if got := NewMulTable(b).Mul(a); got != want {
			t.Fatalf("MulTable(%v).Mul(%v) = %v, want %v", b, a, got, want)
		}
	}
	for _, a := range edge {
		for _, b := range edge {
			check(a, b)
		}
	}
	rng := rand.New(rand.NewPCG(6, 6))
	for i := 0; i < 500; i++ {
		check(randElem(rng), randElem(rng))
	}
	// One table reused across many multiplicands — the intended usage.
	m := randElem(rng)
	mt := NewMulTable(m)
	for i := 0; i < 2000; i++ {
		a := randElem(rng)
		if mt.Mul(a) != Mul(a, m) {
			t.Fatalf("reused table diverges at a=%v m=%v", a, m)
		}
	}
}

func BenchmarkMulWide(b *testing.B) {
	x, y := New(0x123456789abcdef), New(0xfedcba987654321)
	acc := Elem(1)
	for i := 0; i < b.N; i++ {
		acc = Mul(acc, x)
		acc = Add(acc, y)
	}
	if acc == 0 {
		b.Fatal("degenerate")
	}
}

func BenchmarkMulTableSliced(b *testing.B) {
	mt := NewMulTable(New(0x123456789abcdef))
	y := New(0xfedcba987654321)
	acc := Elem(1)
	for i := 0; i < b.N; i++ {
		acc = mt.Mul(acc)
		acc = Add(acc, y)
	}
	if acc == 0 {
		b.Fatal("degenerate")
	}
}

func BenchmarkMulShiftAdd(b *testing.B) {
	x, y := New(0x123456789abcdef), New(0xfedcba987654321)
	acc := Elem(1)
	for i := 0; i < b.N; i++ {
		acc = MulShiftAdd(acc, x)
		acc = Add(acc, y)
	}
	if acc == 0 {
		b.Fatal("degenerate")
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestFrobeniusIdentity(t *testing.T) {
	// x^p = x for all field elements (used by the root finder).
	rng := rand.New(rand.NewPCG(4, 4))
	for i := 0; i < 100; i++ {
		a := randElem(rng)
		if Pow(a, P) != a {
			t.Fatalf("a^p != a for a=%v", a)
		}
	}
}

func TestQuadraticResidueSplit(t *testing.T) {
	// x^((p-1)/2) must be ±1 for nonzero x, about half each — the fact
	// the equal-degree splitter relies on.
	rng := rand.New(rand.NewPCG(5, 5))
	plus, minus := 0, 0
	for i := 0; i < 2000; i++ {
		a := randElem(rng)
		if a == 0 {
			continue
		}
		switch Pow(a, (P-1)/2) {
		case 1:
			plus++
		case Elem(P - 1):
			minus++
		default:
			t.Fatalf("x^((p-1)/2) not ±1 for x=%v", a)
		}
	}
	if plus < 800 || minus < 800 {
		t.Errorf("QR split unbalanced: %d vs %d", plus, minus)
	}
}
