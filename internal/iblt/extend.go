// Rateless (extendable) IBLT: an IBLT whose cell array is a prefix of an
// unbounded stream of coded cells, so a sender can keep emitting "the next
// R cells" until the receiver's peeling succeeds — communication then
// tracks the actual difference instead of an up-front estimate.
//
// The construction follows the rateless-coding view of set reconciliation
// (Lázaro & Matuz's rate-compatible sketches; Yang et al.'s rateless
// IBLTs): every key participates in coded cell 0 and then in an infinite
// pseudorandom index sequence whose gaps grow geometrically, giving cell i
// an expected per-key participation probability of Θ(1/i). A difference of
// d keys therefore loads the cells around index d with Θ(1) keys — the
// regime where peeling starts — and decodes after Θ(d) cells whatever d
// turns out to be, with no parameter chosen in advance. All randomness
// derives from the shared seed, exactly like Table: the stream is part of
// the public-coins wire contract.
package iblt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"robustset/internal/hashutil"
)

// ExtendConfig describes a rateless cell stream. Two parties can combine
// streams only if their configs are identical.
type ExtendConfig struct {
	// KeyLen is the exact byte length of every key.
	KeyLen int
	// Seed keys the digest, checksum and index-sequence derivations.
	Seed uint64
}

// Validate checks the configuration.
func (c ExtendConfig) Validate() error {
	if c.KeyLen < 1 {
		return fmt.Errorf("iblt: rateless key length %d < 1", c.KeyLen)
	}
	return nil
}

// MaxStreamCells bounds the total number of cells a decoder will accept;
// a peer streaming beyond it is treated as corrupt (a genuine difference
// of this size would have decoded long before).
const MaxStreamCells = 1 << 26

// maxSeqIndex caps a key's cell-index sequence. Indices grow by a random
// factor per step, so the cap only matters as an overflow guard — the
// decoder never holds more than MaxStreamCells cells anyway.
const maxSeqIndex = int64(1) << 40

// codedSeq walks one key's participation indices: idx is the current
// (participating) cell index, rng the sequence's PRNG state.
type codedSeq struct {
	idx int64
	rng uint64
}

// newSeq starts a key's sequence: every key participates in cell 0, which
// is what lets "all received cells are zero" certify a complete decode.
func newSeq(h, salt uint64) codedSeq {
	return codedSeq{idx: 0, rng: h ^ salt}
}

// next advances to the key's next participating index. With u uniform in
// [0,1), the jump idx → idx + (idx+1.5)·(1/√(1−u) − 1) multiplies idx+1.5
// by 1/√(1−u), so ln(idx) grows by E[−½·ln(1−u)] = ½ per step: a key hits
// Θ(log M) of the first M cells and cell i is hit with probability Θ(1/i).
func (s *codedSeq) next() {
	s.rng = hashutil.SplitMix64(s.rng)
	u := float64(s.rng>>11) / (1 << 53) // uniform [0,1)
	grow := 1/math.Sqrt(1-u) - 1
	nf := float64(s.idx) + (float64(s.idx)+1.5)*grow
	switch {
	case nf < float64(s.idx+1):
		s.idx++
	case nf >= float64(maxSeqIndex):
		s.idx = maxSeqIndex
	default:
		s.idx = int64(nf)
	}
}

// CellBlock is a contiguous range of coded cells [Start, Start+Len()) in
// the canonical cell layout (count, key sum, checksum — the same cell
// shape as Table's wire format).
type CellBlock struct {
	Start   int
	KeyLen  int
	Counts  []int64
	KeySums []byte // Len() × KeyLen, flat
	Checks  []uint64
}

// Len returns the number of cells in the block.
func (b *CellBlock) Len() int { return len(b.Counts) }

func newCellBlock(start, n, keyLen int) *CellBlock {
	return &CellBlock{
		Start:   start,
		KeyLen:  keyLen,
		Counts:  make([]int64, n),
		KeySums: make([]byte, n*keyLen),
		Checks:  make([]uint64, n),
	}
}

// grown returns s resized to n elements, zeroed, reusing its backing
// array when capacity allows.
func grown[T int64 | uint64 | byte](s []T, n int) []T {
	if cap(s) >= n {
		s = s[:n]
		clear(s)
		return s
	}
	return make([]T, n)
}

// resetTo re-shapes the block to cover n cells starting at start,
// reusing its slices when they are big enough — the in-place form of
// newCellBlock that lets long-lived serving loops emit and parse
// blocks without per-block allocations.
func (b *CellBlock) resetTo(start, n, keyLen int) {
	b.Start = start
	b.KeyLen = keyLen
	b.Counts = grown(b.Counts, n)
	b.KeySums = grown(b.KeySums, n*keyLen)
	b.Checks = grown(b.Checks, n)
}

// apply folds one key occurrence into cell i of the block.
func (b *CellBlock) apply(i int, key []byte, chk uint64, sign int64) {
	b.Counts[i] += sign
	xorInto(b.KeySums[i*b.KeyLen:(i+1)*b.KeyLen], key)
	b.Checks[i] ^= chk
}

const (
	// blockMagic identifies the cell-block wire format. It is versioned
	// independently of the table magic ("IBL2"): the cell layout matches,
	// but the index-sequence derivation is part of this format.
	blockMagic      = "IBX1"
	blockHeaderSize = 4 + 4 + 4 + 2 // magic, start u32, count u32, keyLen u16
)

// BlockWireSize returns the marshalled size of a block of n cells with the
// given key length, without constructing one.
func BlockWireSize(n, keyLen int) int {
	return blockHeaderSize + n*(CellOverheadBytes+keyLen)
}

// MarshalBinary encodes the block:
//
//	"IBX1" | start u32 | count u32 | keyLen u16 |
//	count × ( count i32 | keySum keyLen bytes | checksum u64 )
func (b *CellBlock) MarshalBinary() ([]byte, error) {
	return b.AppendBinary(make([]byte, 0, BlockWireSize(b.Len(), b.KeyLen)))
}

// AppendBinary appends the wire encoding to dst and returns the
// extended slice — MarshalBinary into a caller-reused buffer.
func (b *CellBlock) AppendBinary(dst []byte) ([]byte, error) {
	out := dst
	out = append(out, blockMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(b.Start))
	out = binary.LittleEndian.AppendUint32(out, uint32(b.Len()))
	out = binary.LittleEndian.AppendUint16(out, uint16(b.KeyLen))
	for i := 0; i < b.Len(); i++ {
		if b.Counts[i] > math.MaxInt32 || b.Counts[i] < math.MinInt32 {
			return nil, fmt.Errorf("iblt: block cell %d count %d overflows wire format", i, b.Counts[i])
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(int32(b.Counts[i])))
		out = append(out, b.KeySums[i*b.KeyLen:(i+1)*b.KeyLen]...)
		out = binary.LittleEndian.AppendUint64(out, b.Checks[i])
	}
	return out, nil
}

// UnmarshalBinary parses MarshalBinary output. The declared cell count is
// validated against the buffer length before any allocation, so a hostile
// header cannot drive an oversized allocation. The receiver's slices are
// reused when big enough, so parsing successive blocks into one
// CellBlock is allocation-free at steady state.
func (b *CellBlock) UnmarshalBinary(data []byte) error {
	if len(data) < blockHeaderSize || string(data[:4]) != blockMagic {
		return errors.New("iblt: block unmarshal: bad magic or short header")
	}
	start := int(binary.LittleEndian.Uint32(data[4:]))
	n := int(binary.LittleEndian.Uint32(data[8:]))
	keyLen := int(binary.LittleEndian.Uint16(data[12:]))
	if keyLen < 1 {
		return errors.New("iblt: block unmarshal: key length < 1")
	}
	if start > MaxStreamCells || n > MaxStreamCells {
		return fmt.Errorf("iblt: block unmarshal: start %d / count %d beyond stream bound", start, n)
	}
	want := uint64(blockHeaderSize) + uint64(n)*uint64(CellOverheadBytes+keyLen)
	if uint64(len(data)) != want {
		return fmt.Errorf("iblt: block unmarshal: have %d bytes, want %d", len(data), want)
	}
	// All validation is done; the fill loop below cannot fail, so the
	// receiver can be re-shaped in place.
	b.resetTo(start, n, keyLen)
	off := blockHeaderSize
	for i := 0; i < n; i++ {
		b.Counts[i] = int64(int32(binary.LittleEndian.Uint32(data[off:])))
		off += 4
		copy(b.KeySums[i*keyLen:(i+1)*keyLen], data[off:off+keyLen])
		off += keyLen
		b.Checks[i] = binary.LittleEndian.Uint64(data[off:])
		off += 8
	}
	return nil
}

// streamKey is one key's per-stream state in a CellStream.
type streamKey struct {
	key []byte
	chk uint64
	seq codedSeq
}

// CellStream enumerates the rateless coded cells of a fixed key set, in
// order, without ever rebuilding earlier cells: Emit(n) returns the next n
// cells and advances the frontier. The serving side of the rateless
// protocol holds one CellStream per session and answers each "more cells"
// request with an Emit.
//
// Keys must be distinct (multiset semantics via occurrence-indexed keys,
// as with Table). A CellStream is not safe for concurrent use.
type CellStream struct {
	cfg       ExtendConfig
	hasher    hashutil.Hasher
	checkSalt uint64
	seqSalt   uint64
	keys      []streamKey
	frontier  int
}

// streamDerivations returns the shared hash derivations of a stream and
// its decoder; both sides must agree bit-for-bit.
func streamDerivations(cfg ExtendConfig) (h hashutil.Hasher, checkSalt, seqSalt uint64) {
	return hashutil.NewHasher(hashutil.DeriveSeed(cfg.Seed, "iblt/rateless/key")),
		hashutil.DeriveSeed(cfg.Seed, "iblt/rateless/check"),
		hashutil.DeriveSeed(cfg.Seed, "iblt/rateless/seq")
}

// NewCellStream builds a stream over the given keys (copied).
func NewCellStream(cfg ExtendConfig, keys [][]byte) (*CellStream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &CellStream{cfg: cfg, keys: make([]streamKey, 0, len(keys))}
	s.hasher, s.checkSalt, s.seqSalt = streamDerivations(cfg)
	for _, k := range keys {
		if len(k) != cfg.KeyLen {
			return nil, fmt.Errorf("iblt: stream key length %d != configured %d", len(k), cfg.KeyLen)
		}
		h := s.hasher.Hash(k)
		s.keys = append(s.keys, streamKey{
			key: append([]byte(nil), k...),
			chk: hashutil.SplitMix64(h ^ s.checkSalt),
			seq: newSeq(h, s.seqSalt),
		})
	}
	return s, nil
}

// Frontier returns the number of cells emitted so far.
func (s *CellStream) Frontier() int { return s.frontier }

// Emit returns cells [Frontier, Frontier+n) and advances the frontier.
// Each key's index sequence is walked exactly once across all Emit calls,
// so the amortized cost of streaming M cells is O(keys · log M) sequence
// steps plus the participations themselves.
func (s *CellStream) Emit(n int) *CellBlock {
	b := new(CellBlock)
	s.EmitInto(b, n)
	return b
}

// EmitInto is Emit writing into a caller-reused block: blk is re-shaped
// to cover [Frontier, Frontier+n) reusing its storage, so a serving
// loop answering many "more cells" requests emits without per-block
// allocations.
func (s *CellStream) EmitInto(blk *CellBlock, n int) {
	if n < 0 {
		n = 0
	}
	blk.resetTo(s.frontier, n, s.cfg.KeyLen)
	hi := int64(s.frontier + n)
	for i := range s.keys {
		k := &s.keys[i]
		for k.seq.idx < hi {
			blk.apply(int(k.seq.idx)-s.frontier, k.key, k.chk, +1)
			k.seq.next()
		}
	}
	s.frontier += n
}

// recKey is one recovered difference key inside a CellDecoder, with its
// sequence parked at the first index ≥ the decoder frontier so future
// blocks can cancel its contributions without replaying the past.
type recKey struct {
	key  []byte
	chk  uint64
	sign int64
	seq  codedSeq
}

// CellDecoder accumulates a peer's coded cells, subtracts the local key
// set's cells for the same index range, and peels the symmetric
// difference incrementally: work done on earlier blocks — peeled keys and
// partially drained cells — carries over when the next block arrives.
//
// Usage: NewCellDecoder with the local keys, AddBlock for every received
// block (blocks must arrive in order, each starting at Frontier()), then
// Decoded to test for completion.
type CellDecoder struct {
	cfg       ExtendConfig
	hasher    hashutil.Hasher
	checkSalt uint64
	seqSalt   uint64
	local     *CellStream
	counts    []int64
	keySums   []byte
	checks    []uint64
	recovered []recKey
	// lb is the scratch block the local stream emits into on every
	// AddBlock — reused so folding in a block allocates nothing beyond
	// the decoder's own growth.
	lb CellBlock
}

// NewCellDecoder builds a decoder subtracting the local keys (copied).
func NewCellDecoder(cfg ExtendConfig, localKeys [][]byte) (*CellDecoder, error) {
	local, err := NewCellStream(cfg, localKeys)
	if err != nil {
		return nil, err
	}
	d := &CellDecoder{cfg: cfg, local: local}
	d.hasher, d.checkSalt, d.seqSalt = streamDerivations(cfg)
	return d, nil
}

// Frontier returns the number of cells received so far.
func (d *CellDecoder) Frontier() int { return len(d.counts) }

// Recovered returns the number of difference keys peeled so far.
func (d *CellDecoder) Recovered() int { return len(d.recovered) }

// AddBlock folds the peer's next cell block into the decoder and peels as
// far as possible. Blocks must be contiguous and in order.
func (d *CellDecoder) AddBlock(b *CellBlock) error {
	if b.KeyLen != d.cfg.KeyLen {
		return fmt.Errorf("iblt: block key length %d != decoder key length %d", b.KeyLen, d.cfg.KeyLen)
	}
	if b.Start != d.Frontier() {
		return fmt.Errorf("iblt: block starts at cell %d, decoder frontier is %d", b.Start, d.Frontier())
	}
	n := b.Len()
	if d.Frontier()+n > MaxStreamCells {
		return fmt.Errorf("iblt: cell stream beyond %d cells", MaxStreamCells)
	}
	lo := d.Frontier()
	kl := d.cfg.KeyLen
	d.counts = append(d.counts, b.Counts...)
	d.keySums = append(d.keySums, b.KeySums...)
	d.checks = append(d.checks, b.Checks...)
	// Subtract the local keys' cells for the same range: the residual
	// sketches the symmetric difference (+1 peer-only, −1 local-only).
	d.local.EmitInto(&d.lb, n)
	lb := &d.lb
	for i := 0; i < n; i++ {
		d.counts[lo+i] -= lb.Counts[i]
		d.checks[lo+i] ^= lb.Checks[i]
	}
	xorInto(d.keySums[lo*kl:], lb.KeySums)
	// Cancel already-recovered keys out of the new range, continuing each
	// parked sequence — this is the work reuse that makes increments cheap.
	hi := int64(lo + n)
	for i := range d.recovered {
		r := &d.recovered[i]
		for r.seq.idx < hi {
			j := int(r.seq.idx)
			d.counts[j] -= r.sign
			xorInto(d.keySums[j*kl:(j+1)*kl], r.key)
			d.checks[j] ^= r.chk
			r.seq.next()
		}
	}
	d.peel()
	return nil
}

// peel drains every currently pure cell, bounded so corrupt inputs cannot
// loop: each peel removes one key from the residual, and a valid residual
// holds at most one key per participation of the densest prefix.
func (d *CellDecoder) peel() {
	m := len(d.counts)
	kl := d.cfg.KeyLen
	queue := make([]int, m)
	for i := range queue {
		queue[i] = i
	}
	maxPeels := 4*m + 64
	peels := 0
	for len(queue) > 0 {
		idx := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		c := d.counts[idx]
		if c != 1 && c != -1 {
			continue
		}
		row := d.keySums[idx*kl : (idx+1)*kl]
		h := d.hasher.Hash(row)
		chk := hashutil.SplitMix64(h ^ d.checkSalt)
		if chk != d.checks[idx] {
			continue // several keys happening to sum to ±1
		}
		if peels++; peels > maxPeels {
			return // corrupt stream; let the caller's budget decide
		}
		key := append([]byte(nil), row...)
		seq := newSeq(h, d.seqSalt)
		for seq.idx < int64(m) {
			j := int(seq.idx)
			d.counts[j] -= c
			xorInto(d.keySums[j*kl:(j+1)*kl], key)
			d.checks[j] ^= chk
			if j != idx && (d.counts[j] == 1 || d.counts[j] == -1) {
				queue = append(queue, j)
			}
			seq.next()
		}
		d.recovered = append(d.recovered, recKey{key: key, chk: chk, sign: c, seq: seq})
	}
}

// Decoded reports whether the difference has been fully recovered — every
// received cell has drained to zero — and if so returns it: Pos holds
// peer-only keys, Neg local-only keys. Every key participates in cell 0,
// so a key the decoder has not accounted for would leave cell 0 nonzero;
// the residual zeroing is the same completeness certificate Table.Decode
// relies on. At least one cell must have been received.
func (d *CellDecoder) Decoded() (*Diff, bool) {
	if len(d.counts) == 0 {
		return nil, false
	}
	for i, c := range d.counts {
		if c != 0 || d.checks[i] != 0 {
			return nil, false
		}
	}
	for _, b := range d.keySums {
		if b != 0 {
			return nil, false
		}
	}
	diff := &Diff{}
	for _, r := range d.recovered {
		if r.sign == 1 {
			diff.Pos = append(diff.Pos, r.key)
		} else {
			diff.Neg = append(diff.Neg, r.key)
		}
	}
	return diff, true
}
