package iblt

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"testing"
)

func extKeys(rng *rand.Rand, n, keyLen int) [][]byte {
	keys := make([][]byte, n)
	seen := make(map[string]bool, n)
	for i := range keys {
		for {
			k := make([]byte, keyLen)
			for j := range k {
				k[j] = byte(rng.Uint32())
			}
			if !seen[string(k)] {
				seen[string(k)] = true
				keys[i] = k
				break
			}
		}
	}
	return keys
}

// TestCellStreamChunkingInvariance: the stream's cells are a pure function
// of (config, key set) — the chunk boundaries chosen by Emit must not
// change any cell's content.
func TestCellStreamChunkingInvariance(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	keys := extKeys(rng, 200, 12)
	cfg := ExtendConfig{KeyLen: 12, Seed: 99}

	one, err := NewCellStream(cfg, keys)
	if err != nil {
		t.Fatal(err)
	}
	whole := one.Emit(512)

	many, err := NewCellStream(cfg, keys)
	if err != nil {
		t.Fatal(err)
	}
	var got CellBlock
	got.KeyLen = cfg.KeyLen
	for _, n := range []int{1, 7, 64, 100, 340} {
		b := many.Emit(n)
		got.Counts = append(got.Counts, b.Counts...)
		got.KeySums = append(got.KeySums, b.KeySums...)
		got.Checks = append(got.Checks, b.Checks...)
	}
	if len(got.Counts) != whole.Len() {
		t.Fatalf("chunked emission produced %d cells, want %d", len(got.Counts), whole.Len())
	}
	for i := range whole.Counts {
		if got.Counts[i] != whole.Counts[i] || got.Checks[i] != whole.Checks[i] {
			t.Fatalf("cell %d differs under chunked emission", i)
		}
	}
	if !bytes.Equal(got.KeySums, whole.KeySums) {
		t.Fatal("key sums differ under chunked emission")
	}
	// Every key participates in cell 0.
	if whole.Counts[0] != int64(len(keys)) {
		t.Fatalf("cell 0 holds %d keys, want all %d", whole.Counts[0], len(keys))
	}
}

// TestCellBlockRoundtrip checks the wire encoding.
func TestCellBlockRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	keys := extKeys(rng, 50, 9)
	s, err := NewCellStream(ExtendConfig{KeyLen: 9, Seed: 5}, keys)
	if err != nil {
		t.Fatal(err)
	}
	s.Emit(10) // non-zero start
	b := s.Emit(33)
	blob, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) != BlockWireSize(b.Len(), 9) {
		t.Fatalf("wire size %d, want %d", len(blob), BlockWireSize(b.Len(), 9))
	}
	var rt CellBlock
	if err := rt.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if rt.Start != 10 || rt.Len() != 33 || rt.KeyLen != 9 {
		t.Fatalf("roundtrip header: %+v", rt)
	}
	for i := range b.Counts {
		if rt.Counts[i] != b.Counts[i] || rt.Checks[i] != b.Checks[i] {
			t.Fatalf("cell %d differs after roundtrip", i)
		}
	}
	if !bytes.Equal(rt.KeySums, b.KeySums) {
		t.Fatal("key sums differ after roundtrip")
	}
}

// TestCellBlockUnmarshalRejects checks the parser's input validation.
func TestCellBlockUnmarshalRejects(t *testing.T) {
	var b CellBlock
	if err := b.UnmarshalBinary(nil); err == nil {
		t.Error("nil input accepted")
	}
	if err := b.UnmarshalBinary([]byte("XXXX\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00")); err == nil {
		t.Error("bad magic accepted")
	}
	// Header claiming more cells than the buffer carries.
	hdr := []byte("IBX1")
	hdr = append(hdr, 0, 0, 0, 0)             // start
	hdr = append(hdr, 0xff, 0xff, 0xff, 0x00) // count ≈ 16M
	hdr = append(hdr, 8, 0)                   // keyLen
	if err := b.UnmarshalBinary(hdr); err == nil {
		t.Error("truncated block accepted")
	}
	// Zero key length.
	zk := []byte("IBX1")
	zk = append(zk, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	if err := b.UnmarshalBinary(zk); err == nil {
		t.Error("zero key length accepted")
	}
}

// streamUntilDecoded drives an encoder/decoder pair in fixed chunks and
// returns (diff, total cells streamed).
func streamUntilDecoded(t *testing.T, cfg ExtendConfig, alice, bob [][]byte, chunk, maxCells int) (*Diff, int) {
	t.Helper()
	enc, err := NewCellStream(cfg, alice)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewCellDecoder(cfg, bob)
	if err != nil {
		t.Fatal(err)
	}
	for dec.Frontier() < maxCells {
		if err := dec.AddBlock(enc.Emit(chunk)); err != nil {
			t.Fatal(err)
		}
		if diff, ok := dec.Decoded(); ok {
			return diff, dec.Frontier()
		}
	}
	t.Fatalf("no decode after %d cells (diff %d+%d keys)", dec.Frontier(), len(alice), len(bob))
	return nil, 0
}

// TestCellDecoderRecoversDiff checks sign attribution and completeness on
// two-sided differences over a shared base.
func TestCellDecoderRecoversDiff(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	const keyLen = 12
	base := extKeys(rng, 500, keyLen)
	onlyA := extKeys(rng, 40, keyLen)
	onlyB := extKeys(rng, 25, keyLen)
	alice := append(append([][]byte{}, base...), onlyA...)
	bob := append(append([][]byte{}, base...), onlyB...)

	cfg := ExtendConfig{KeyLen: keyLen, Seed: 1234}
	diff, cells := streamUntilDecoded(t, cfg, alice, bob, 16, 4096)
	if len(diff.Pos) != len(onlyA) || len(diff.Neg) != len(onlyB) {
		t.Fatalf("recovered %d+%d keys, want %d+%d", len(diff.Pos), len(diff.Neg), len(onlyA), len(onlyB))
	}
	want := make(map[string]int64)
	for _, k := range onlyA {
		want[string(k)] = 1
	}
	for _, k := range onlyB {
		want[string(k)] = -1
	}
	for _, k := range diff.Pos {
		if want[string(k)] != 1 {
			t.Fatal("bogus positive key recovered")
		}
		delete(want, string(k))
	}
	for _, k := range diff.Neg {
		if want[string(k)] != -1 {
			t.Fatal("bogus negative key recovered")
		}
		delete(want, string(k))
	}
	if len(want) != 0 {
		t.Fatalf("%d difference keys never recovered", len(want))
	}
	t.Logf("diff %d decoded after %d cells", len(onlyA)+len(onlyB), cells)
}

// TestCellDecoderIdenticalSets: with no difference the very first block
// drains to zero and certifies completion.
func TestCellDecoderIdenticalSets(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	keys := extKeys(rng, 300, 8)
	cfg := ExtendConfig{KeyLen: 8, Seed: 7}
	diff, cells := streamUntilDecoded(t, cfg, keys, keys, 8, 64)
	if diff.Size() != 0 {
		t.Fatalf("recovered %d keys from identical sets", diff.Size())
	}
	if cells != 8 {
		t.Fatalf("identical sets needed %d cells, want the first block (8)", cells)
	}
}

// TestCellDecoderOverhead calibrates cells-to-decode against the
// difference size: the rateless stream must decode a difference of d with
// O(d) cells at every scale — that constant is the protocol's overhead
// versus an oracle-sized IBLT, and the budget the conformance suite's
// wire ceilings assume.
func TestCellDecoderOverhead(t *testing.T) {
	const keyLen = 12
	for _, d := range []int{1, 4, 16, 64, 256, 1024} {
		worst := 0.0
		total := 0
		const trials = 5
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewPCG(uint64(d), uint64(trial)))
			alice := extKeys(rng, d, keyLen)
			cfg := ExtendConfig{KeyLen: keyLen, Seed: uint64(1000*d + trial)}
			chunk := d / 4
			if chunk < 4 {
				chunk = 4
			}
			_, cells := streamUntilDecoded(t, cfg, alice, nil, chunk, 64*d+512)
			total += cells
			if ratio := float64(cells) / float64(d); ratio > worst {
				worst = ratio
			}
		}
		mean := float64(total) / float64(trials) / float64(d)
		t.Logf("d=%-5d mean cells/diff %.2f, worst %.2f", d, mean, worst)
		// Chunk granularity alone costs up to one extra chunk (~d/4); the
		// coding overhead itself is ~1.4–2.2 at small d, shrinking with d.
		if d >= 16 && worst > 3.0 {
			t.Errorf("d=%d: worst cells-to-decode ratio %.2f exceeds 3.0", d, worst)
		}
	}
}

// TestCellDecoderValidation checks AddBlock's ordering and shape guards.
func TestCellDecoderValidation(t *testing.T) {
	cfg := ExtendConfig{KeyLen: 8, Seed: 1}
	enc, err := NewCellStream(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewCellDecoder(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := enc.Emit(4)
	if err := dec.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	// Replaying the same block must be rejected (start < frontier).
	if err := dec.AddBlock(b); err == nil {
		t.Error("out-of-order block accepted")
	}
	// A block with a different key length must be rejected.
	other, _ := NewCellStream(ExtendConfig{KeyLen: 9, Seed: 1}, nil)
	wrong := other.Emit(4)
	wrong.Start = dec.Frontier()
	if err := dec.AddBlock(wrong); err == nil {
		t.Error("mismatched key length accepted")
	}
	// Config validation.
	if _, err := NewCellStream(ExtendConfig{KeyLen: 0, Seed: 1}, nil); err == nil {
		t.Error("zero key length config accepted")
	}
	if _, err := NewCellStream(cfg, [][]byte{make([]byte, 3)}); err == nil {
		t.Error("short key accepted")
	}
}

// TestCellDecoderCorruptStreamBounded: a corrupted stream must neither
// panic nor loop; it simply never certifies completion.
func TestCellDecoderCorruptStreamBounded(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	keys := extKeys(rng, 64, 8)
	cfg := ExtendConfig{KeyLen: 8, Seed: 11}
	enc, _ := NewCellStream(cfg, keys)
	dec, _ := NewCellDecoder(cfg, nil)
	b := enc.Emit(256)
	for i := range b.Counts {
		b.Counts[i] ^= int64(i) // garble
		b.Checks[i] ^= uint64(i) * 0x9e3779b9
	}
	if err := dec.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	if _, ok := dec.Decoded(); ok {
		t.Fatal("corrupt stream certified as decoded")
	}
}

func BenchmarkCellStreamEmit(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(1, uint64(n)))
			keys := extKeys(rng, n, 12)
			cfg := ExtendConfig{KeyLen: 12, Seed: 3}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := NewCellStream(cfg, keys)
				if err != nil {
					b.Fatal(err)
				}
				s.Emit(2048)
			}
		})
	}
}
