// Package iblt implements Invertible Bloom Lookup Tables (Goodrich &
// Mitzenmacher 2011; Eppstein, Goodrich, Uyeda & Varghese 2011) over
// fixed-length byte-string keys.
//
// An IBLT is a linear sketch of a key multiset: m cells, each holding a
// signed count, an XOR of the keys mapped to it, and an XOR of per-key
// checksums. Because the sketch is linear, subtracting Bob's table from
// Alice's leaves a sketch of exactly the symmetric difference, which can be
// recovered by a peeling process whenever the difference is at most a
// constant fraction of m. This is the coding substrate of the robust set
// reconciliation protocol in internal/core and of the exact reconciliation
// baseline in internal/baseline.
//
// Keys must be distinct within one logical multiset; multiset semantics are
// obtained by the caller appending an occurrence index to repeated keys
// (see internal/core), which keeps the table a pure set sketch.
package iblt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"

	"robustset/internal/hashutil"
)

// Config describes an IBLT's shape. Two tables can be subtracted or
// compared only if their configs are identical (including Seed): the
// protocols treat Config as part of the shared public-coins state.
type Config struct {
	// Cells is the requested number of cells. New rounds it up to a
	// multiple of HashCount so the table can be partitioned evenly.
	Cells int
	// HashCount is the number of cells each key occupies (q). Each hash
	// function owns one partition of Cells/q cells, guaranteeing the q
	// cell indices of a key are distinct. Typical values: 3 or 4.
	HashCount int
	// KeyLen is the exact byte length of every key.
	KeyLen int
	// Seed keys the bucket and checksum hash functions.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cells < 1 {
		return fmt.Errorf("iblt: cells %d < 1", c.Cells)
	}
	if c.HashCount < 2 || c.HashCount > 16 {
		return fmt.Errorf("iblt: hash count %d outside [2,16]", c.HashCount)
	}
	if c.KeyLen < 1 {
		return fmt.Errorf("iblt: key length %d < 1", c.KeyLen)
	}
	return nil
}

// sizing factors per hash count. The asymptotic peeling thresholds are
// 1/0.818 ≈ 1.222 (q=3), 1.295 (q=4), 1.425 (q=5), but finite tables —
// especially partitioned ones — need real slack above the threshold. The
// factors below were calibrated empirically in this repository (300 trials
// per point across capacities 1..1024) to keep the stall rate at a few
// percent or less at every size; q=3 converges slowly and needs the most.
func loadFactor(q int) float64 {
	switch q {
	case 2:
		return 3.0
	case 3:
		return 1.9
	case 4:
		return 1.5
	case 5:
		return 1.55
	default:
		return 1.7
	}
}

// RecommendedCells returns a cell count that decodes a difference of size
// capacity with high probability for the given hash count: the calibrated
// threshold factor plus additive slack for small tables, rounded up to a
// multiple of q.
func RecommendedCells(capacity, q int) int {
	if capacity < 1 {
		capacity = 1
	}
	m := int(math.Ceil(loadFactor(q)*float64(capacity))) + 4*q
	if rem := m % q; rem != 0 {
		m += q - rem
	}
	return m
}

// CellOverheadBytes is the wire size of one cell beyond its key sum:
// 4 bytes of signed count plus 8 bytes of checksum sum.
const CellOverheadBytes = 4 + 8

// Table is an IBLT. The zero value is not usable; construct with New.
// Tables are not safe for concurrent mutation.
//
// Cells are stored as flat parallel arrays (counts, key sums, checksums)
// rather than a slice of cell structs, and every per-key quantity — the q
// bucket indices and the checksum — is derived from a single keyed hash
// pass over the key: bucket i maps SplitMix64(h ^ salt_i) into its
// partition and the checksum is SplitMix64(h ^ checkSalt). One full-key
// hash per operation instead of q+1 is what keeps Insert allocation-free
// and cheap; two distinct keys collide on all derived values only when
// their 64-bit digests collide (2⁻⁶⁴ per pair), which is far below the
// IBLT's own checksum false-positive rate.
type Table struct {
	cfg       Config
	counts    []int64
	keySums   []byte // cells × KeyLen, flat
	checks    []uint64
	hasher    hashutil.Hasher // single full-key hash; everything derives from it
	salts     []uint64        // per bucket function (bucket selection)
	checkSalt uint64          // per-key checksum derivation
	partSize  int             // cells / HashCount
	balance   int64           // inserts − deletes, diagnostic only
}

// Normalized returns the configuration as New would adopt it: the cell
// count rounded up to a multiple of HashCount. It lets protocol code
// predict the Config of a table it has not built — e.g. to validate a
// deserialized table against parameters without constructing a
// reference table first.
func (c Config) Normalized() Config {
	if c.HashCount > 0 {
		if rem := c.Cells % c.HashCount; rem != 0 {
			c.Cells += c.HashCount - rem
		}
	}
	return c
}

// New constructs an empty table. The cell count is rounded up to a multiple
// of HashCount.
func New(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.Normalized()
	t := &Table{
		cfg:       cfg,
		counts:    make([]int64, cfg.Cells),
		keySums:   make([]byte, cfg.Cells*cfg.KeyLen),
		checks:    make([]uint64, cfg.Cells),
		hasher:    hashutil.NewHasher(hashutil.DeriveSeed(cfg.Seed, "iblt/key")),
		salts:     make([]uint64, cfg.HashCount),
		checkSalt: hashutil.DeriveSeed(cfg.Seed, "iblt/check"),
		partSize:  cfg.Cells / cfg.HashCount,
	}
	for i := range t.salts {
		t.salts[i] = hashutil.DeriveSeedN(cfg.Seed, "iblt/bucket", i)
	}
	return t, nil
}

// Config returns the table's (possibly rounded-up) configuration.
func (t *Table) Config() Config { return t.cfg }

// Cells returns the actual number of cells.
func (t *Table) Cells() int { return t.cfg.Cells }

// Balance returns inserts minus deletes applied so far (diagnostic).
func (t *Table) Balance() int64 { return t.balance }

// WireSize returns the number of bytes Marshal produces, which protocols
// use for communication accounting.
func (t *Table) WireSize() int {
	return WireSizeFor(t.cfg.Cells, t.cfg.KeyLen)
}

// WireSizeFor returns the marshalled size of a table with the given cell
// count and key length, without constructing one. Wire parsers use it to
// validate peer-declared sizes before allocating.
func WireSizeFor(cells, keyLen int) int {
	return headerSize + cells*(CellOverheadBytes+keyLen)
}

// bucketIndex maps the key digest into hash function i's partition via
// multiply-shift range reduction (no division on the hot path).
func (t *Table) bucketIndex(i int, h uint64) int {
	hi, _ := bits.Mul64(hashutil.SplitMix64(h^t.salts[i]), uint64(t.partSize))
	return i*t.partSize + int(hi)
}

// checksum derives the per-key checksum from the key digest.
func (t *Table) checksum(h uint64) uint64 { return hashutil.SplitMix64(h ^ t.checkSalt) }

func (t *Table) checkKey(key []byte) {
	if len(key) != t.cfg.KeyLen {
		panic(fmt.Sprintf("iblt: key length %d != configured %d", len(key), t.cfg.KeyLen))
	}
}

// xorInto xors src into dst, 8 bytes at a time with a byte-wise tail.
// len(dst) == len(src); the bounds checks keep the compiler honest.
func xorInto(dst, src []byte) {
	for len(src) >= 8 && len(dst) >= 8 {
		binary.LittleEndian.PutUint64(dst, binary.LittleEndian.Uint64(dst)^binary.LittleEndian.Uint64(src))
		dst, src = dst[8:], src[8:]
	}
	for i := range src {
		dst[i] ^= src[i]
	}
}

func (t *Table) apply(key []byte, sign int64) {
	t.checkKey(key)
	t.applyHashed(key, t.hasher.Hash(key), sign)
}

// applyHashed is apply with the key digest already computed — the decoder
// reuses the digest it needed for checksum validation.
func (t *Table) applyHashed(key []byte, h uint64, sign int64) {
	chk := t.checksum(h)
	kl := t.cfg.KeyLen
	for i := 0; i < t.cfg.HashCount; i++ {
		idx := t.bucketIndex(i, h)
		t.counts[idx] += sign
		xorInto(t.keySums[idx*kl:(idx+1)*kl], key)
		t.checks[idx] ^= chk
	}
	t.balance += sign
}

// Insert adds a key to the table.
func (t *Table) Insert(key []byte) { t.apply(key, +1) }

// Delete removes a key from the table. Deleting a key that was never
// inserted is legal — it is how subtraction-style protocols work — and
// shows up as a negative-count entry on decode.
func (t *Table) Delete(key []byte) { t.apply(key, -1) }

// InsertAll inserts every key of the slice.
func (t *Table) InsertAll(keys [][]byte) {
	for _, k := range keys {
		t.Insert(k)
	}
}

// Clone returns an independent deep copy.
func (t *Table) Clone() *Table {
	c := &Table{
		cfg:       t.cfg,
		counts:    append([]int64(nil), t.counts...),
		keySums:   append([]byte(nil), t.keySums...),
		checks:    append([]uint64(nil), t.checks...),
		hasher:    t.hasher,
		salts:     t.salts,
		checkSalt: t.checkSalt,
		partSize:  t.partSize,
		balance:   t.balance,
	}
	return c
}

// CopyFrom overwrites t with other's contents, reusing t's cell storage
// — the allocation-free alternative to Clone when one scratch table
// serves many sources in turn (level scans reconcile this way). The two
// tables must have the same shape (cells, hash count, key length);
// differing seeds are fine, the derived hash state is copied along.
func (t *Table) CopyFrom(other *Table) error {
	if t.cfg.Cells != other.cfg.Cells || t.cfg.HashCount != other.cfg.HashCount || t.cfg.KeyLen != other.cfg.KeyLen {
		return fmt.Errorf("%w: %+v vs %+v", ErrConfigMismatch, t.cfg, other.cfg)
	}
	t.cfg = other.cfg
	copy(t.counts, other.counts)
	copy(t.keySums, other.keySums)
	copy(t.checks, other.checks)
	t.hasher = other.hasher
	t.salts = other.salts // immutable after New; sharing is what Clone does too
	t.checkSalt = other.checkSalt
	t.partSize = other.partSize
	t.balance = other.balance
	return nil
}

// ErrConfigMismatch is returned when combining tables with different
// configurations.
var ErrConfigMismatch = errors.New("iblt: table configurations differ")

// Sub subtracts other from t in place (t ← t − other). After subtraction,
// t sketches the symmetric difference of the two key sets: keys only in t
// decode with count +1, keys only in other with count −1.
func (t *Table) Sub(other *Table) error {
	if t.cfg != other.cfg {
		return fmt.Errorf("%w: %+v vs %+v", ErrConfigMismatch, t.cfg, other.cfg)
	}
	for i := range t.counts {
		t.counts[i] -= other.counts[i]
		t.checks[i] ^= other.checks[i]
	}
	for i := range t.keySums {
		t.keySums[i] ^= other.keySums[i]
	}
	t.balance -= other.balance
	return nil
}

// Diff is the result of decoding a subtracted table.
type Diff struct {
	// Pos holds keys that decoded with count +1: present in the receiver
	// of Sub but not in the subtracted table.
	Pos [][]byte
	// Neg holds keys that decoded with count −1.
	Neg [][]byte
}

// Size returns the total number of decoded keys.
func (d *Diff) Size() int { return len(d.Pos) + len(d.Neg) }

// DecodeError reports a failed or partial decode.
type DecodeError struct {
	// Recovered is the number of keys peeled before the process stalled.
	Recovered int
	// RemainingCells is the number of nonzero cells left (the 2-core).
	RemainingCells int
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("iblt: decode stalled: %d keys recovered, %d cells undecodable", e.Recovered, e.RemainingCells)
}

// Decode recovers the key difference sketched by the table via peeling.
// It does not mutate the receiver (it peels a private copy). On success it
// returns every key with its sign; on failure it returns a *DecodeError
// (errors.As-compatible) and the partial diff recovered so far.
//
// Decode is safe to call on any table, including corrupted ones: progress
// is bounded, and a stall or residue yields an error rather than looping.
func (t *Table) Decode() (*Diff, error) {
	return t.Clone().DecodeMut()
}

// DecodeMut is Decode without the protective copy: peeling consumes the
// receiver, whose cell contents are unspecified afterwards. It exists
// for callers that decode throwaway tables (a scratch table cycling
// through a level scan) and would otherwise pay a full table clone per
// attempt.
func (t *Table) DecodeMut() (*Diff, error) {
	w := t
	diff := &Diff{}
	// Seed the work queue with every cell; cells are re-validated when
	// popped, so stale entries are harmless.
	queue := make([]int, t.cfg.Cells)
	for i := range queue {
		queue[i] = i
	}
	// Each peel removes one key instance; with valid inputs at most
	// |inserted|+|deleted| keys exist. Corrupted tables can fabricate
	// keys, so bound the total work.
	maxPeels := 4*t.cfg.Cells + 64
	peels := 0
	for len(queue) > 0 {
		idx := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		cnt := w.counts[idx]
		if cnt != 1 && cnt != -1 {
			continue
		}
		row := w.keySums[idx*t.cfg.KeyLen : (idx+1)*t.cfg.KeyLen]
		h := w.hasher.Hash(row)
		if w.checksum(h) != w.checks[idx] {
			continue // cell holds several keys that happen to sum to ±1
		}
		if peels++; peels > maxPeels {
			return diff, &DecodeError{Recovered: diff.Size(), RemainingCells: w.nonZeroCells()}
		}
		key := append([]byte(nil), row...)
		if cnt == 1 {
			diff.Pos = append(diff.Pos, key)
		} else {
			diff.Neg = append(diff.Neg, key)
		}
		w.applyHashed(key, h, -cnt)
		for i := 0; i < w.cfg.HashCount; i++ {
			if j := w.bucketIndex(i, h); j != idx && (w.counts[j] == 1 || w.counts[j] == -1) {
				queue = append(queue, j)
			}
		}
	}
	if rem := w.nonZeroCells(); rem > 0 {
		return diff, &DecodeError{Recovered: diff.Size(), RemainingCells: rem}
	}
	return diff, nil
}

func (t *Table) nonZeroCells() int {
	n := 0
	for i, c := range t.counts {
		if c != 0 || t.checks[i] != 0 {
			n++
			continue
		}
		row := t.keySums[i*t.cfg.KeyLen : (i+1)*t.cfg.KeyLen]
		for _, b := range row {
			if b != 0 {
				n++
				break
			}
		}
	}
	return n
}

// IsEmpty reports whether every cell is zero — true for a fresh table and
// for the subtraction of two tables of identical content.
func (t *Table) IsEmpty() bool { return t.nonZeroCells() == 0 }

const (
	// magic identifies the wire format. "IBL2" replaced "IBL1" when the
	// per-key hashing switched from q+1 independent passes to a single
	// keyed digest with derived buckets and checksum: the layout is
	// unchanged but same-seed tables hold different bits, so a version
	// skew must fail at parse time rather than as a garbled decode.
	magic      = "IBL2"
	headerSize = 4 + 4 + 1 + 2 + 8 // magic, cells, hashcount, keylen, seed
)

// MarshalBinary encodes the table in its canonical wire format:
//
//	"IBL2" | cells u32 | hashCount u8 | keyLen u16 | seed u64 |
//	cells × ( count i32 | keySum keyLen bytes | checksum u64 )
//
// Counts are clamped to int32 on the wire; real workloads stay far below
// that, and Unmarshal of a clamped table would fail its decode loudly.
func (t *Table) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, t.WireSize())
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(t.cfg.Cells))
	out = append(out, byte(t.cfg.HashCount))
	out = binary.LittleEndian.AppendUint16(out, uint16(t.cfg.KeyLen))
	out = binary.LittleEndian.AppendUint64(out, t.cfg.Seed)
	for i := 0; i < t.cfg.Cells; i++ {
		if t.counts[i] > math.MaxInt32 || t.counts[i] < math.MinInt32 {
			return nil, fmt.Errorf("iblt: cell %d count %d overflows wire format", i, t.counts[i])
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(int32(t.counts[i])))
		out = append(out, t.keySums[i*t.cfg.KeyLen:(i+1)*t.cfg.KeyLen]...)
		out = binary.LittleEndian.AppendUint64(out, t.checks[i])
	}
	return out, nil
}

// UnmarshalBinary parses MarshalBinary output, reconstructing hash
// functions from the embedded seed.
func (t *Table) UnmarshalBinary(b []byte) error {
	if len(b) < headerSize || !bytes.Equal(b[:4], []byte(magic)) {
		return errors.New("iblt: unmarshal: bad magic or short header")
	}
	cells := int(binary.LittleEndian.Uint32(b[4:]))
	q := int(b[8])
	keyLen := int(binary.LittleEndian.Uint16(b[9:]))
	seed := binary.LittleEndian.Uint64(b[11:])
	cfg := Config{Cells: cells, HashCount: q, KeyLen: keyLen, Seed: seed}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("iblt: unmarshal: %w", err)
	}
	if cells%q != 0 {
		return fmt.Errorf("iblt: unmarshal: cells %d not a multiple of hash count %d", cells, q)
	}
	want := headerSize + cells*(CellOverheadBytes+keyLen)
	if len(b) != want {
		return fmt.Errorf("iblt: unmarshal: have %d bytes, want %d", len(b), want)
	}
	nt, err := New(cfg)
	if err != nil {
		return err
	}
	off := headerSize
	for i := 0; i < cells; i++ {
		nt.counts[i] = int64(int32(binary.LittleEndian.Uint32(b[off:])))
		off += 4
		copy(nt.keySums[i*keyLen:(i+1)*keyLen], b[off:off+keyLen])
		off += keyLen
		nt.checks[i] = binary.LittleEndian.Uint64(b[off:])
		off += 8
	}
	*t = *nt
	return nil
}
