package iblt

import (
	"math/rand/v2"
	"testing"
)

func benchKeys(n, keyLen int) [][]byte {
	rng := rand.New(rand.NewPCG(1, 1))
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, keyLen)
		for j := range k {
			k[j] = byte(rng.Uint32())
		}
		keys[i] = k
	}
	return keys
}

func BenchmarkInsert(b *testing.B) {
	keys := benchKeys(1024, 20)
	tbl, _ := New(Config{Cells: RecommendedCells(1024, 4), HashCount: 4, KeyLen: 20, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Insert(keys[i%len(keys)])
	}
}

func BenchmarkSubtractAndDecode64(b *testing.B) {
	shared := benchKeys(4096, 20)
	diff := benchKeys(64, 20)
	cfg := Config{Cells: RecommendedCells(64, 4), HashCount: 4, KeyLen: 20, Seed: 1}
	alice, _ := New(cfg)
	bob, _ := New(cfg)
	alice.InsertAll(shared)
	alice.InsertAll(diff)
	bob.InsertAll(shared)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := alice.Clone()
		if err := w.Sub(bob); err != nil {
			b.Fatal(err)
		}
		d, err := w.Decode()
		if err != nil {
			b.Fatal(err)
		}
		if d.Size() != 64 {
			b.Fatalf("decoded %d keys", d.Size())
		}
	}
}

func BenchmarkMarshal(b *testing.B) {
	tbl, _ := New(Config{Cells: RecommendedCells(256, 4), HashCount: 4, KeyLen: 20, Seed: 1})
	tbl.InsertAll(benchKeys(256, 20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	tbl, _ := New(Config{Cells: RecommendedCells(256, 4), HashCount: 4, KeyLen: 20, Seed: 1})
	tbl.InsertAll(benchKeys(256, 20))
	blob, _ := tbl.MarshalBinary()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got Table
		if err := got.UnmarshalBinary(blob); err != nil {
			b.Fatal(err)
		}
	}
}
