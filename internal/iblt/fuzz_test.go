package iblt

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalDecode feeds arbitrary bytes through the wire parser and,
// when parsing succeeds, through the peeling decoder. Nothing may panic
// or loop; a reparse of a remarshal must be stable.
func FuzzUnmarshalDecode(f *testing.F) {
	// Seed corpus: a valid small table, an empty one, and header variants.
	tbl, _ := New(Config{Cells: 24, HashCount: 3, KeyLen: 8, Seed: 7})
	tbl.Insert([]byte("deadbeef"))
	tbl.Insert([]byte("cafef00d"))
	blob, _ := tbl.MarshalBinary()
	f.Add(blob)
	empty, _ := New(Config{Cells: 12, HashCount: 4, KeyLen: 4, Seed: 1})
	eb, _ := empty.MarshalBinary()
	f.Add(eb)
	f.Add([]byte("IBL1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var got Table
		if err := got.UnmarshalBinary(data); err != nil {
			return
		}
		// Valid parse: decode must terminate without panicking.
		_, _ = got.Decode()
		// Remarshal must be byte-identical (canonical wire form).
		re, err := got.MarshalBinary()
		if err != nil {
			t.Fatalf("remarshal of parsed table failed: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("remarshal not canonical:\n in: %x\nout: %x", data, re)
		}
	})
}
