package iblt

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalDecode feeds arbitrary bytes through the wire parser and,
// when parsing succeeds, through the peeling decoder. Nothing may panic
// or loop; a reparse of a remarshal must be stable.
func FuzzUnmarshalDecode(f *testing.F) {
	// Seed corpus: a valid small table, an empty one, and header variants.
	tbl, _ := New(Config{Cells: 24, HashCount: 3, KeyLen: 8, Seed: 7})
	tbl.Insert([]byte("deadbeef"))
	tbl.Insert([]byte("cafef00d"))
	blob, _ := tbl.MarshalBinary()
	f.Add(blob)
	empty, _ := New(Config{Cells: 12, HashCount: 4, KeyLen: 4, Seed: 1})
	eb, _ := empty.MarshalBinary()
	f.Add(eb)
	f.Add([]byte("IBL2"))
	f.Add([]byte("IBL1")) // previous wire version must be rejected cleanly
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var got Table
		if err := got.UnmarshalBinary(data); err != nil {
			return
		}
		// Valid parse: decode must terminate without panicking.
		_, _ = got.Decode()
		// Remarshal must be byte-identical (canonical wire form).
		re, err := got.MarshalBinary()
		if err != nil {
			t.Fatalf("remarshal of parsed table failed: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("remarshal not canonical:\n in: %x\nout: %x", data, re)
		}
	})
}

// FuzzInsertDeleteDecode drives the mutation path of the flat-cell layout
// with fuzzer-chosen keys: arbitrary byte material is chopped into
// fixed-length keys, split between an insert side and a delete side, and
// the resulting table must behave like a sketch of the symmetric
// difference — a successful decode returns exactly the one-sided keys,
// and unwinding the decoded diff must leave every flat array zero.
func FuzzInsertDeleteDecode(f *testing.F) {
	f.Add([]byte("0123456789abcdef0123456789abcdef"), uint8(2))
	f.Add(bytes.Repeat([]byte{7}, 64), uint8(3))
	f.Add([]byte{}, uint8(0))

	const keyLen = 8
	f.Fuzz(func(t *testing.T, material []byte, split uint8) {
		tbl, err := New(Config{Cells: 60, HashCount: 3, KeyLen: keyLen, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		// Dedup keys: the IBLT contract requires distinct keys per side.
		seen := make(map[string]bool)
		var keys [][]byte
		for len(material) >= keyLen {
			k := material[:keyLen]
			material = material[keyLen:]
			if !seen[string(k)] {
				seen[string(k)] = true
				keys = append(keys, k)
			}
		}
		cut := 0
		if len(keys) > 0 {
			cut = int(split) % (len(keys) + 1)
		}
		for _, k := range keys[:cut] {
			tbl.Insert(k)
		}
		for _, k := range keys[cut:] {
			tbl.Delete(k)
		}
		diff, err := tbl.Decode()
		if err != nil {
			return // a stall is legal; only correctness of successes is checked
		}
		if len(diff.Pos) != cut || len(diff.Neg) != len(keys)-cut {
			t.Fatalf("decoded %d/%d keys, inserted %d, deleted %d",
				len(diff.Pos), len(diff.Neg), cut, len(keys)-cut)
		}
		got := make(map[string]int)
		for _, k := range diff.Pos {
			got[string(k)]++
		}
		for _, k := range diff.Neg {
			got[string(k)]--
		}
		for i, k := range keys {
			want := -1
			if i < cut {
				want = 1
			}
			if got[string(k)] != want {
				t.Fatalf("key %x decoded with sign %d, want %d", k, got[string(k)], want)
			}
		}
		// Unwinding the decoded difference must zero the flat arrays.
		for _, k := range diff.Pos {
			tbl.Delete(k)
		}
		for _, k := range diff.Neg {
			tbl.Insert(k)
		}
		if !tbl.IsEmpty() {
			t.Fatal("table not empty after unwinding the decoded diff")
		}
	})
}
