package iblt

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func mkKeys(rng *rand.Rand, n, keyLen int) [][]byte {
	seen := map[string]bool{}
	keys := make([][]byte, 0, n)
	for len(keys) < n {
		k := make([]byte, keyLen)
		for i := range k {
			k[i] = byte(rng.Uint32())
		}
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		keys = append(keys, k)
	}
	return keys
}

func sortedStrings(keys [][]byte) []string {
	s := make([]string, len(keys))
	for i, k := range keys {
		s[i] = string(k)
	}
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s
}

func sameKeySet(t *testing.T, got [][]byte, want [][]byte) {
	t.Helper()
	g, w := sortedStrings(got), sortedStrings(want)
	if len(g) != len(w) {
		t.Fatalf("key count %d != %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("key %d differs: %x vs %x", i, g[i], w[i])
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Cells: 0, HashCount: 3, KeyLen: 8},
		{Cells: 10, HashCount: 1, KeyLen: 8},
		{Cells: 10, HashCount: 17, KeyLen: 8},
		{Cells: 10, HashCount: 3, KeyLen: 0},
	}
	for _, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestCellsRoundedToMultiple(t *testing.T) {
	tbl, err := New(Config{Cells: 10, HashCount: 4, KeyLen: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Cells()%4 != 0 || tbl.Cells() < 10 {
		t.Errorf("cells = %d, want multiple of 4 ≥ 10", tbl.Cells())
	}
}

func TestInsertDecodeSmall(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	keys := mkKeys(rng, 10, 12)
	tbl, _ := New(Config{Cells: RecommendedCells(10, 4), HashCount: 4, KeyLen: 12, Seed: 7})
	tbl.InsertAll(keys)
	diff, err := tbl.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Neg) != 0 {
		t.Fatalf("unexpected negative keys: %d", len(diff.Neg))
	}
	sameKeySet(t, diff.Pos, keys)
}

func TestInsertDeleteCancels(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	keys := mkKeys(rng, 50, 8)
	tbl, _ := New(Config{Cells: 64, HashCount: 4, KeyLen: 8, Seed: 9})
	for _, k := range keys {
		tbl.Insert(k)
	}
	for _, k := range keys {
		tbl.Delete(k)
	}
	if !tbl.IsEmpty() {
		t.Fatal("table not empty after symmetric insert/delete")
	}
	diff, err := tbl.Decode()
	if err != nil || diff.Size() != 0 {
		t.Fatalf("decode of empty table: %v, %v", diff, err)
	}
	if tbl.Balance() != 0 {
		t.Errorf("balance = %d, want 0", tbl.Balance())
	}
}

func TestSubtractDecodesSymmetricDifference(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	shared := mkKeys(rng, 5000, 16)
	onlyA := mkKeys(rng, 20, 16)
	onlyB := mkKeys(rng, 15, 16)
	cfg := Config{Cells: RecommendedCells(40, 4), HashCount: 4, KeyLen: 16, Seed: 11}
	a, _ := New(cfg)
	b, _ := New(cfg)
	a.InsertAll(shared)
	a.InsertAll(onlyA)
	b.InsertAll(shared)
	b.InsertAll(onlyB)
	if err := a.Sub(b); err != nil {
		t.Fatal(err)
	}
	diff, err := a.Decode()
	if err != nil {
		t.Fatal(err)
	}
	sameKeySet(t, diff.Pos, onlyA)
	sameKeySet(t, diff.Neg, onlyB)
}

func TestSubConfigMismatch(t *testing.T) {
	a, _ := New(Config{Cells: 16, HashCount: 4, KeyLen: 8, Seed: 1})
	b, _ := New(Config{Cells: 16, HashCount: 4, KeyLen: 8, Seed: 2})
	if err := a.Sub(b); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("expected ErrConfigMismatch, got %v", err)
	}
	c, _ := New(Config{Cells: 32, HashCount: 4, KeyLen: 8, Seed: 1})
	if err := a.Sub(c); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("expected ErrConfigMismatch, got %v", err)
	}
}

func TestDecodeDoesNotMutate(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	keys := mkKeys(rng, 8, 8)
	tbl, _ := New(Config{Cells: 32, HashCount: 4, KeyLen: 8, Seed: 2})
	tbl.InsertAll(keys)
	before, _ := tbl.MarshalBinary()
	if _, err := tbl.Decode(); err != nil {
		t.Fatal(err)
	}
	after, _ := tbl.MarshalBinary()
	if !bytes.Equal(before, after) {
		t.Fatal("Decode mutated the table")
	}
	// A second decode must give the same answer.
	d2, err := tbl.Decode()
	if err != nil || d2.Size() != len(keys) {
		t.Fatalf("second decode: %v %v", d2, err)
	}
}

func TestOverloadedTableFailsLoudly(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	keys := mkKeys(rng, 500, 8)
	tbl, _ := New(Config{Cells: 32, HashCount: 4, KeyLen: 8, Seed: 3})
	tbl.InsertAll(keys)
	_, err := tbl.Decode()
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("expected DecodeError, got %v", err)
	}
	if de.RemainingCells == 0 {
		t.Error("DecodeError should report remaining cells")
	}
	if de.Error() == "" {
		t.Error("empty error message")
	}
}

func TestDecodeSuccessRateAtRecommendedSize(t *testing.T) {
	// RecommendedCells must give a high decode success rate across sizes
	// and hash counts. This validates the sizing table that the protocol
	// layer depends on.
	rng := rand.New(rand.NewPCG(11, 12))
	for _, q := range []int{3, 4, 5} {
		for _, n := range []int{1, 4, 16, 64, 256} {
			fails := 0
			const trials = 60
			for trial := 0; trial < trials; trial++ {
				keys := mkKeys(rng, n, 12)
				tbl, _ := New(Config{Cells: RecommendedCells(n, q), HashCount: q, KeyLen: 12, Seed: rng.Uint64()})
				tbl.InsertAll(keys)
				if _, err := tbl.Decode(); err != nil {
					fails++
				}
			}
			if fails > trials/10 {
				t.Errorf("q=%d n=%d: %d/%d decode failures at recommended size", q, n, fails, trials)
			}
		}
	}
}

func TestMarshalUnmarshalRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	keys := mkKeys(rng, 30, 20)
	cfg := Config{Cells: RecommendedCells(30, 4), HashCount: 4, KeyLen: 20, Seed: 99}
	tbl, _ := New(cfg)
	tbl.InsertAll(keys)
	b, err := tbl.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != tbl.WireSize() {
		t.Fatalf("wire size %d != declared %d", len(b), tbl.WireSize())
	}
	var got Table
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	diff, err := got.Decode()
	if err != nil {
		t.Fatal(err)
	}
	sameKeySet(t, diff.Pos, keys)
	// The unmarshalled table must interoperate: subtracting the original
	// leaves it empty.
	if err := got.Sub(tbl); err != nil {
		t.Fatal(err)
	}
	if !got.IsEmpty() {
		t.Fatal("unmarshalled table does not cancel against original")
	}
}

func TestUnmarshalRejectsCorruptHeaders(t *testing.T) {
	tbl, _ := New(Config{Cells: 16, HashCount: 4, KeyLen: 8, Seed: 5})
	good, _ := tbl.MarshalBinary()

	cases := map[string][]byte{
		"empty":        {},
		"short":        good[:8],
		"bad magic":    append([]byte("XXXX"), good[4:]...),
		"truncated":    good[:len(good)-1],
		"extra byte":   append(append([]byte{}, good...), 0),
		"zero cells":   overwriteU32(good, 4, 0),
		"bad q":        overwriteByte(good, 8, 1),
		"cells not ×q": overwriteU32(good, 4, 15),
	}
	for name, b := range cases {
		var got Table
		if err := got.UnmarshalBinary(b); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
}

func overwriteU32(b []byte, off int, v uint32) []byte {
	c := append([]byte{}, b...)
	c[off] = byte(v)
	c[off+1] = byte(v >> 8)
	c[off+2] = byte(v >> 16)
	c[off+3] = byte(v >> 24)
	return c
}

func overwriteByte(b []byte, off int, v byte) []byte {
	c := append([]byte{}, b...)
	c[off] = v
	return c
}

func TestDecodeOnCorruptedCellsDoesNotHang(t *testing.T) {
	// Flip random bytes in a marshalled table, unmarshal, decode: the
	// decode must terminate with either an error or some diff, never hang
	// or panic. (The checksum makes silent garbage astronomically rare;
	// this exercises the peel budget and residue checks.)
	rng := rand.New(rand.NewPCG(15, 16))
	keys := mkKeys(rng, 20, 8)
	tbl, _ := New(Config{Cells: RecommendedCells(20, 3), HashCount: 3, KeyLen: 8, Seed: 21})
	tbl.InsertAll(keys)
	b, _ := tbl.MarshalBinary()
	for trial := 0; trial < 200; trial++ {
		c := append([]byte{}, b...)
		for flips := 0; flips < 1+rng.IntN(8); flips++ {
			c[headerSize+rng.IntN(len(c)-headerSize)] ^= byte(1 + rng.Uint32()%255)
		}
		var got Table
		if err := got.UnmarshalBinary(c); err != nil {
			continue
		}
		_, _ = got.Decode() // must terminate
	}
}

func TestKeyLengthPanics(t *testing.T) {
	tbl, _ := New(Config{Cells: 16, HashCount: 4, KeyLen: 8, Seed: 5})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong key length")
		}
	}()
	tbl.Insert(make([]byte, 7))
}

func TestPropertyInsertDeleteIdentity(t *testing.T) {
	cfg := Config{Cells: 48, HashCount: 4, KeyLen: 8, Seed: 1}
	f := func(keys [][8]byte) bool {
		tbl, _ := New(cfg)
		for _, k := range keys {
			kk := k
			tbl.Insert(kk[:])
		}
		for _, k := range keys {
			kk := k
			tbl.Delete(kk[:])
		}
		return tbl.IsEmpty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertySubtractionCancelsSharedKeys(t *testing.T) {
	// Whatever junk both sides share cancels exactly; only the distinct
	// tail survives subtraction.
	cfg := Config{Cells: 60, HashCount: 3, KeyLen: 8, Seed: 77}
	f := func(shared [][8]byte, extra [8]byte) bool {
		a, _ := New(cfg)
		b, _ := New(cfg)
		for _, k := range shared {
			kk := k
			a.Insert(kk[:])
			b.Insert(kk[:])
		}
		a.Insert(extra[:])
		if err := a.Sub(b); err != nil {
			return false
		}
		diff, err := a.Decode()
		if err != nil || len(diff.Neg) != 0 || len(diff.Pos) != 1 {
			return false
		}
		return bytes.Equal(diff.Pos[0], extra[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRecommendedCells(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 8} {
		for _, cap := range []int{0, 1, 10, 1000} {
			m := RecommendedCells(cap, q)
			if m%q != 0 {
				t.Errorf("q=%d cap=%d: cells %d not multiple of q", q, cap, m)
			}
			if cap > 0 && m < cap {
				t.Errorf("q=%d cap=%d: cells %d below capacity", q, cap, m)
			}
		}
	}
}

func TestWireSizeScalesLinearly(t *testing.T) {
	mk := func(cells int) int {
		tbl, _ := New(Config{Cells: cells, HashCount: 4, KeyLen: 16, Seed: 0})
		return tbl.WireSize()
	}
	small, big := mk(40), mk(80)
	perCell := CellOverheadBytes + 16
	if big-small != 40*perCell {
		t.Errorf("wire growth %d, want %d", big-small, 40*perCell)
	}
}

func TestLargeDifferenceDecode(t *testing.T) {
	// A realistic protocol-sized table: 2000-key difference.
	rng := rand.New(rand.NewPCG(17, 18))
	keys := mkKeys(rng, 2000, 16)
	tbl, _ := New(Config{Cells: RecommendedCells(2000, 4), HashCount: 4, KeyLen: 16, Seed: 31})
	tbl.InsertAll(keys)
	diff, err := tbl.Decode()
	if err != nil {
		t.Fatal(err)
	}
	sameKeySet(t, diff.Pos, keys)
}

func ExampleTable() {
	cfg := Config{Cells: 24, HashCount: 3, KeyLen: 4, Seed: 42}
	alice, _ := New(cfg)
	bob, _ := New(cfg)
	alice.Insert([]byte("abcd"))
	alice.Insert([]byte("wxyz"))
	bob.Insert([]byte("abcd"))
	alice.Sub(bob)
	diff, _ := alice.Decode()
	fmt.Printf("alice-only=%q bob-only=%d\n", diff.Pos[0], len(diff.Neg))
	// Output: alice-only="wxyz" bob-only=0
}
