package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Durable is the crash-safe storage engine: every mutation batch is
// appended to a CRC-framed WAL (wal.log) before it applies, and every
// SnapshotEvery records the caller's full state is written as an atomic
// snapshot (snapshot.rsnap via rename), after which the log is truncated.
// Recovery loads the snapshot, truncates a torn final WAL record if the
// last append was cut mid-write, and returns the intact log tail for the
// caller to replay — work proportional to the mutations since the last
// snapshot, not to dataset size.
//
// One Durable owns one directory; running two engines (or two processes)
// on the same directory corrupts it. All methods are safe for concurrent
// use.
type Durable struct {
	dir       string
	pointSize int
	opts      Options

	mu            sync.Mutex
	f             *os.File
	seq           uint64 // last sequence appended
	snapSeq       uint64 // sequence covered by the current snapshot
	recsSinceSnap int
	buf           []byte // append scratch, reused
	closed        bool
}

const (
	walName  = "wal.log"
	snapName = "snapshot.rsnap"
	tmpName  = "snapshot.rsnap.tmp"
)

// ErrStoreClosed is returned by operations on a closed engine.
var ErrStoreClosed = errors.New("store: closed")

// Recovered is what Open found on disk: the latest snapshot (nil on a
// fresh directory), the intact WAL tail past it, and how many bytes of a
// torn final record were truncated.
type Recovered struct {
	Snapshot *Snapshot
	Tail     []Record
	// TornBytes counts WAL bytes dropped because the final record was
	// torn (cut mid-write by a crash) or corrupt.
	TornBytes int
}

// Open opens (or creates) the engine's directory, recovers the on-disk
// state and positions the WAL for appending. pointSize is the fixed
// width of one encoded point and must match the directory's history.
func Open(dir string, pointSize int, opts Options) (*Durable, *Recovered, error) {
	if pointSize < 1 {
		return nil, nil, fmt.Errorf("store: open %s: point size %d < 1", dir, pointSize)
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: open: %w", err)
	}
	// A leftover temporary is a snapshot whose write never completed;
	// the rename never happened, so it is garbage.
	_ = os.Remove(filepath.Join(dir, tmpName))

	rec := &Recovered{}
	if data, err := os.ReadFile(filepath.Join(dir, snapName)); err == nil {
		snap, err := ParseSnapshot(data)
		if err != nil {
			return nil, nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
		if snap.PointSize != pointSize {
			return nil, nil, fmt.Errorf("store: open %s: snapshot point size %d, caller expects %d (parameters changed?)", dir, snap.PointSize, pointSize)
		}
		rec.Snapshot = snap
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("store: open: %w", err)
	}

	d := &Durable{dir: dir, pointSize: pointSize, opts: opts}
	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open: %w", err)
	}
	d.f = f
	data, err := os.ReadFile(walPath)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: open: %w", err)
	}
	if len(data) == 0 {
		// Fresh log: write the header now so the file is never ambiguous.
		if _, err := f.Write(appendWALHeader(nil, pointSize)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: open: %w", err)
		}
	} else {
		ps, err := parseWALHeader(data)
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
		if ps != pointSize {
			f.Close()
			return nil, nil, fmt.Errorf("store: open %s: WAL point size %d, caller expects %d (parameters changed?)", dir, ps, pointSize)
		}
		var skip uint64
		if rec.Snapshot != nil {
			skip = rec.Snapshot.Seq
		}
		tail, intact, lastSeq, torn := scanWAL(data[walHeaderSize:], pointSize, skip)
		rec.Tail, d.seq = tail, lastSeq
		if torn {
			rec.TornBytes = len(data) - walHeaderSize - intact
			if err := f.Truncate(int64(walHeaderSize + intact)); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("store: open: truncating torn tail: %w", err)
			}
			opts.Metrics.Counter("store_torn_truncations_total").Inc()
		}
		if _, err := f.Seek(int64(walHeaderSize+intact), 0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: open: %w", err)
		}
	}
	if rec.Snapshot != nil {
		d.snapSeq = rec.Snapshot.Seq
	}
	d.recsSinceSnap = len(rec.Tail)
	opts.Metrics.Counter("store_recoveries_total").Inc()
	opts.Metrics.Counter("store_replay_records_total").Add(int64(len(rec.Tail)))
	return d, rec, nil
}

// Dir returns the engine's directory.
func (d *Durable) Dir() string { return d.dir }

// Seq returns the last appended WAL sequence number.
func (d *Durable) Seq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq
}

// Append implements Store: frame the batch, write it, fsync per policy.
func (d *Durable) Append(op Op, pts [][]byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrStoreClosed
	}
	buf, err := AppendWALRecord(d.buf[:0], d.seq+1, op, pts, d.pointSize)
	if err != nil {
		return err
	}
	d.buf = buf
	if _, err := d.f.Write(buf); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if err := d.syncLocked(); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	d.seq++
	d.recsSinceSnap++
	d.opts.Metrics.Counter("store_wal_records_total").Inc()
	d.opts.Metrics.Counter("store_wal_bytes_total").Add(int64(len(buf)))
	return nil
}

// syncLocked fsyncs the WAL per policy, observing the latency.
func (d *Durable) syncLocked() error {
	if d.opts.Fsync != SyncAlways {
		return nil
	}
	start := time.Now()
	err := d.f.Sync()
	d.opts.Metrics.Histogram("store_fsync_seconds").Observe(time.Since(start))
	return err
}

// ShouldSnapshot implements Store.
func (d *Durable) ShouldSnapshot() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.opts.SnapshotEvery > 0 && d.recsSinceSnap >= d.opts.SnapshotEvery
}

// WriteSnapshot implements Store: serialize the state, write it to a
// temporary file, fsync, rename into place, then drop the covered log.
// A crash at any point leaves either the old snapshot with its full log
// or the new snapshot (whose seq makes any surviving log prefix a
// harmless no-op on replay).
func (d *Durable) WriteSnapshot(pts [][]byte, sketch []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrStoreClosed
	}
	start := time.Now()
	err := d.writeSnapshotLocked(pts, sketch)
	d.opts.Metrics.Histogram("store_snapshot_seconds").Observe(time.Since(start))
	if err != nil {
		d.opts.Metrics.Counter("store_snapshot_errors_total").Inc()
		return err
	}
	d.opts.Metrics.Counter("store_snapshots_total").Inc()
	return nil
}

func (d *Durable) writeSnapshotLocked(pts [][]byte, sketch []byte) error {
	data, err := AppendSnapshot(nil, d.seq, d.pointSize, pts, sketch)
	if err != nil {
		return err
	}
	tmp := filepath.Join(d.dir, tmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, snapName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot: %w", err)
	}
	syncDir(d.dir)
	// The snapshot covers every appended record; the log restarts empty.
	// A crash before the truncate is covered by the seq filter on replay.
	if err := d.f.Truncate(walHeaderSize); err != nil {
		return fmt.Errorf("store: snapshot: truncating log: %w", err)
	}
	if _, err := d.f.Seek(walHeaderSize, 0); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	d.snapSeq = d.seq
	d.recsSinceSnap = 0
	d.opts.Metrics.Counter("store_snapshot_bytes_total").Add(int64(len(data)))
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable. Failures
// are ignored: not every filesystem supports it, and the rename itself
// is already atomic.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		_ = f.Sync()
		f.Close()
	}
}

// Close flushes and closes the WAL. Idempotent.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	err := d.f.Sync()
	if cerr := d.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abandon closes the WAL file descriptor without flushing — the
// crash-simulation hook kill/restart tests use to model a process dying
// mid-run. On-disk state is exactly what the policy already persisted.
func (d *Durable) Abandon() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.closed = true
	_ = d.f.Close()
}
