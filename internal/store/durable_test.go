package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"robustset/internal/metrics"
)

const testPS = 16

func openT(t *testing.T, dir string, o Options) (*Durable, *Recovered) {
	t.Helper()
	d, rec, err := Open(dir, testPS, o)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return d, rec
}

func TestDurableFreshOpen(t *testing.T) {
	dir := t.TempDir()
	d, rec := openT(t, dir, Options{})
	defer d.Close()
	if rec.Snapshot != nil || len(rec.Tail) != 0 || rec.TornBytes != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	if d.Seq() != 0 {
		t.Fatalf("fresh seq = %d", d.Seq())
	}
	// The WAL header must exist on disk immediately.
	data, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil || len(data) != walHeaderSize {
		t.Fatalf("fresh WAL: %d bytes, err=%v", len(data), err)
	}
}

func TestDurableAppendReplay(t *testing.T) {
	dir := t.TempDir()
	d, _ := openT(t, dir, Options{})
	if err := d.Append(OpAdd, mkPts(testPS, 3, 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(OpRemove, mkPts(testPS, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := d.Append(OpAdd, nil); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("append after close: %v", err)
	}

	d2, rec := openT(t, dir, Options{})
	defer d2.Close()
	if rec.Snapshot != nil {
		t.Fatal("unexpected snapshot")
	}
	if len(rec.Tail) != 2 || rec.Tail[0].Op != OpAdd || len(rec.Tail[0].Points) != 3 ||
		rec.Tail[1].Op != OpRemove || rec.Tail[1].Seq != 2 {
		t.Fatalf("tail: %+v", rec.Tail)
	}
	if d2.Seq() != 2 {
		t.Fatalf("seq after reopen = %d", d2.Seq())
	}
	// Appends continue the sequence.
	if err := d2.Append(OpAdd, mkPts(testPS, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if d2.Seq() != 3 {
		t.Fatalf("seq after append = %d", d2.Seq())
	}
}

func TestDurableSnapshotCoversLog(t *testing.T) {
	dir := t.TempDir()
	d, _ := openT(t, dir, Options{SnapshotEvery: 2})
	if d.ShouldSnapshot() {
		t.Fatal("fresh store wants a snapshot")
	}
	d.Append(OpAdd, mkPts(testPS, 2, 1))
	d.Append(OpAdd, mkPts(testPS, 2, 2))
	if !d.ShouldSnapshot() {
		t.Fatal("2 records at interval 2: no snapshot wanted")
	}
	state := mkPts(testPS, 4, 9)
	sketch := []byte("sketch-state")
	if err := d.WriteSnapshot(state, sketch); err != nil {
		t.Fatal(err)
	}
	if d.ShouldSnapshot() {
		t.Fatal("snapshot did not reset the interval")
	}
	// The log is truncated to its header.
	if data, _ := os.ReadFile(filepath.Join(dir, walName)); len(data) != walHeaderSize {
		t.Fatalf("post-snapshot WAL is %d bytes", len(data))
	}
	// One more record after the snapshot.
	d.Append(OpRemove, mkPts(testPS, 1, 9))
	d.Close()

	d2, rec := openT(t, dir, Options{SnapshotEvery: 2})
	defer d2.Close()
	if rec.Snapshot == nil || rec.Snapshot.Seq != 2 || len(rec.Snapshot.Points) != 4 ||
		string(rec.Snapshot.Sketch) != "sketch-state" {
		t.Fatalf("snapshot: %+v", rec.Snapshot)
	}
	if len(rec.Tail) != 1 || rec.Tail[0].Seq != 3 || rec.Tail[0].Op != OpRemove {
		t.Fatalf("tail: %+v", rec.Tail)
	}
	if d2.Seq() != 3 {
		t.Fatalf("seq = %d", d2.Seq())
	}
}

// TestDurableCrashBetweenSnapshotAndTruncate models the one crash window
// the seq filter exists for: the snapshot rename landed but the log
// truncation never ran. Replay must skip every covered record.
func TestDurableCrashBetweenSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	d, _ := openT(t, dir, Options{})
	d.Append(OpAdd, mkPts(testPS, 2, 1))
	d.Append(OpAdd, mkPts(testPS, 2, 2))
	// Write the snapshot file directly, bypassing the engine's truncate —
	// exactly the on-disk state after a crash in that window.
	data, err := AppendSnapshot(nil, d.Seq(), testPS, mkPts(testPS, 4, 7), []byte("sk"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	d.Abandon()

	d2, rec := openT(t, dir, Options{})
	defer d2.Close()
	if rec.Snapshot == nil || rec.Snapshot.Seq != 2 {
		t.Fatalf("snapshot: %+v", rec.Snapshot)
	}
	if len(rec.Tail) != 0 {
		t.Fatalf("covered records replayed: %+v", rec.Tail)
	}
	if d2.Seq() != 2 {
		t.Fatalf("seq = %d", d2.Seq())
	}
}

// TestDurableTornTailTruncated cuts the WAL at every byte offset of its
// final record and verifies recovery keeps the intact prefix, truncates
// the torn bytes on disk, and accepts new appends afterwards.
func TestDurableTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	d, _ := openT(t, dir, Options{})
	d.Append(OpAdd, mkPts(testPS, 2, 1))
	d.Append(OpAdd, mkPts(testPS, 2, 2))
	d.Append(OpRemove, mkPts(testPS, 3, 3))
	d.Close()
	full, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	// End of record 2 = full minus record 3's frame.
	rec3 := recHeaderSize + recMetaSize + 3*testPS
	prefix := len(full) - rec3

	for cut := prefix + 1; cut < len(full); cut++ {
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, walName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		reg := metrics.New()
		d2, rec := openT(t, dir2, Options{Metrics: reg})
		if len(rec.Tail) != 2 || rec.TornBytes != cut-prefix {
			t.Fatalf("cut=%d: tail=%d torn=%d (want 2, %d)", cut, len(rec.Tail), rec.TornBytes, cut-prefix)
		}
		if got, _ := os.ReadFile(filepath.Join(dir2, walName)); len(got) != prefix {
			t.Fatalf("cut=%d: on-disk WAL %d bytes after truncate, want %d", cut, len(got), prefix)
		}
		// The engine keeps working past the truncation.
		if err := d2.Append(OpAdd, mkPts(testPS, 1, 4)); err != nil {
			t.Fatalf("cut=%d: append after truncate: %v", cut, err)
		}
		if d2.Seq() != 3 {
			t.Fatalf("cut=%d: seq=%d, want 3 (torn record's seq reused)", cut, d2.Seq())
		}
		d2.Close()
		d3, rec3v := openT(t, dir2, Options{})
		if len(rec3v.Tail) != 3 || rec3v.TornBytes != 0 {
			t.Fatalf("cut=%d: reopen tail=%d torn=%d", cut, len(rec3v.Tail), rec3v.TornBytes)
		}
		d3.Close()
	}
}

func TestDurableStaleTmpRemoved(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, tmpName)
	if err := os.WriteFile(tmp, []byte("half-written snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, rec := openT(t, dir, Options{})
	defer d.Close()
	if rec.Snapshot != nil {
		t.Fatal("tmp file treated as a snapshot")
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale tmp survived open: %v", err)
	}
}

func TestDurableRejectsMismatchedPointSize(t *testing.T) {
	dir := t.TempDir()
	d, _ := openT(t, dir, Options{})
	d.Append(OpAdd, mkPts(testPS, 1, 1))
	d.WriteSnapshot(mkPts(testPS, 1, 1), nil)
	d.Close()
	if _, _, err := Open(dir, testPS+8, Options{}); err == nil {
		t.Fatal("open with different point size succeeded")
	}
}

func TestDurableMetrics(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.New()
	d, _ := openT(t, dir, Options{Metrics: reg, SnapshotEvery: -1})
	d.Append(OpAdd, mkPts(testPS, 2, 1))
	d.Append(OpRemove, mkPts(testPS, 1, 1))
	d.WriteSnapshot(mkPts(testPS, 1, 1), []byte("s"))
	d.Close()
	snap := reg.Snapshot()
	if snap["store_wal_records_total"] != 2 {
		t.Fatalf("wal_records = %d", snap["store_wal_records_total"])
	}
	if snap["store_wal_bytes_total"] == 0 {
		t.Fatal("wal_bytes = 0")
	}
	if snap["store_snapshots_total"] != 1 {
		t.Fatalf("snapshots = %d", snap["store_snapshots_total"])
	}
	if snap["store_recoveries_total"] != 1 {
		t.Fatalf("recoveries = %d", snap["store_recoveries_total"])
	}
	if snap["store_fsync_seconds_count"] != 2 {
		t.Fatalf("fsync observations = %d", snap["store_fsync_seconds_count"])
	}
}

func TestMemStoreIsInert(t *testing.T) {
	m := Mem()
	if err := m.Append(OpAdd, mkPts(8, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if m.ShouldSnapshot() {
		t.Fatal("mem store wants a snapshot")
	}
	if err := m.WriteSnapshot(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}
