package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Snapshot file layout:
//
//	"RSN1" | u64 seq | u16 pointSize | u32 npoints |
//	npoints × pointSize bytes | u32 sketchLen | sketch blob |
//	u32 crc32c(everything before)
//
// seq is the WAL sequence number the snapshot covers: recovery replays
// only records with a higher sequence. The sketch blob is the dataset's
// serialized multi-level sketch (core.Sketch wire encoding), stored so
// recovery adopts the tables instead of rebuilding them from raw points.
// The file is written to a temporary name and atomically renamed into
// place, so a crash mid-write leaves the previous snapshot untouched.
const (
	snapMagic      = "RSN1"
	snapHeaderSize = 4 + 8 + 2 + 4
	// maxSnapshotPoints bounds the declared point count so a corrupt
	// header cannot drive a pathological allocation during parse.
	maxSnapshotPoints = 1 << 30
)

// Snapshot is one decoded snapshot file.
type Snapshot struct {
	// Seq is the WAL sequence number the snapshot covers.
	Seq uint64
	// PointSize is the fixed encoded-point width.
	PointSize int
	// Points holds every point occurrence, aliasing the parsed buffer.
	Points [][]byte
	// Sketch is the opaque serialized sketch state (empty if none was
	// stored).
	Sketch []byte
}

// AppendSnapshot appends the full snapshot encoding, CRC included.
func AppendSnapshot(dst []byte, seq uint64, pointSize int, pts [][]byte, sketch []byte) ([]byte, error) {
	start := len(dst)
	dst = append(dst, snapMagic...)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(pointSize))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pts)))
	for _, p := range pts {
		if len(p) != pointSize {
			return nil, fmt.Errorf("store: snapshot: point encoding is %d bytes, store expects %d", len(p), pointSize)
		}
		dst = append(dst, p...)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(sketch)))
	dst = append(dst, sketch...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst[start:], crcTable)), nil
}

// ParseSnapshot decodes and fully validates a snapshot file. Unlike a
// torn WAL tail, a snapshot that fails validation is real corruption —
// the rename that published it was atomic — so every error here is
// fatal to recovery. The returned points and sketch alias b.
func ParseSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < snapHeaderSize+4+4 || string(b[:4]) != snapMagic {
		return nil, errors.New("store: snapshot: bad magic or short header")
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return nil, errors.New("store: snapshot: crc mismatch")
	}
	s := &Snapshot{
		Seq:       binary.LittleEndian.Uint64(b[4:]),
		PointSize: int(binary.LittleEndian.Uint16(b[12:])),
	}
	if s.PointSize < 1 {
		return nil, errors.New("store: snapshot: zero point size")
	}
	n := int(binary.LittleEndian.Uint32(b[14:]))
	if n < 0 || n > maxSnapshotPoints || snapHeaderSize+n*s.PointSize+4 > len(body) {
		return nil, fmt.Errorf("store: snapshot: %d points do not fit %d bytes", n, len(b))
	}
	off := snapHeaderSize
	s.Points = make([][]byte, n)
	for i := 0; i < n; i++ {
		s.Points[i] = b[off : off+s.PointSize]
		off += s.PointSize
	}
	skLen := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if skLen < 0 || off+skLen != len(body) {
		return nil, fmt.Errorf("store: snapshot: sketch length %d does not fill the file", skLen)
	}
	s.Sketch = b[off : off+skLen]
	return s, nil
}
