package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

func mkPts(ps, n, salt int) [][]byte {
	pts := make([][]byte, n)
	for i := range pts {
		p := make([]byte, ps)
		binary.LittleEndian.PutUint32(p, uint32(salt*1000+i))
		pts[i] = p
	}
	return pts
}

func TestWALRecordRoundtrip(t *testing.T) {
	const ps = 16
	var buf []byte
	var err error
	want := []struct {
		seq uint64
		op  Op
		n   int
	}{{1, OpAdd, 3}, {2, OpRemove, 1}, {3, OpAdd, 0}, {4, OpRemove, 7}}
	for _, w := range want {
		buf, err = AppendWALRecord(buf, w.seq, w.op, mkPts(ps, w.n, int(w.seq)), ps)
		if err != nil {
			t.Fatalf("append seq %d: %v", w.seq, err)
		}
	}
	off := 0
	for i, w := range want {
		rec, n, err := ParseWALRecord(buf[off:], ps)
		if err != nil {
			t.Fatalf("parse record %d: %v", i, err)
		}
		if rec.Seq != w.seq || rec.Op != w.op || len(rec.Points) != w.n {
			t.Fatalf("record %d: got seq=%d op=%d n=%d, want %+v", i, rec.Seq, rec.Op, len(rec.Points), w)
		}
		for j, p := range rec.Points {
			wantP := mkPts(ps, w.n, int(w.seq))[j]
			if string(p) != string(wantP) {
				t.Fatalf("record %d point %d mismatch", i, j)
			}
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("parsed %d of %d bytes", off, len(buf))
	}
}

func TestWALRecordRejectsBadInput(t *testing.T) {
	const ps = 8
	if _, err := AppendWALRecord(nil, 1, Op(9), mkPts(ps, 1, 0), ps); err == nil {
		t.Fatal("append accepted unknown op")
	}
	if _, err := AppendWALRecord(nil, 1, OpAdd, [][]byte{make([]byte, ps-1)}, ps); err == nil {
		t.Fatal("append accepted wrong-width point")
	}
	good, err := AppendWALRecord(nil, 1, OpAdd, mkPts(ps, 2, 0), ps)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the op byte inside the payload: CRC must catch it.
	bad := append([]byte(nil), good...)
	bad[recHeaderSize+8] ^= 0xff
	if _, _, err := ParseWALRecord(bad, ps); !errors.Is(err, ErrTornRecord) {
		t.Fatalf("corrupted payload: got %v, want ErrTornRecord", err)
	}
	// An op value that passes CRC but is unknown (re-framed record).
	payload := append([]byte(nil), good[recHeaderSize:]...)
	payload[8] = 7
	reframed := reframe(payload)
	if _, _, err := ParseWALRecord(reframed, ps); !errors.Is(err, ErrTornRecord) {
		t.Fatalf("unknown op: got %v, want ErrTornRecord", err)
	}
	// A count that disagrees with the payload length.
	payload = append([]byte(nil), good[recHeaderSize:]...)
	binary.LittleEndian.PutUint32(payload[9:], 99)
	if _, _, err := ParseWALRecord(reframe(payload), ps); !errors.Is(err, ErrTornRecord) {
		t.Fatalf("bad count: got %v, want ErrTornRecord", err)
	}
}

// reframe wraps a raw payload in a fresh length+CRC frame.
func reframe(payload []byte) []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(payload, crcTable))
	return append(b, payload...)
}

func TestScanWALSkipsCoveredSeqs(t *testing.T) {
	const ps = 8
	var body []byte
	for seq := uint64(1); seq <= 6; seq++ {
		var err error
		body, err = AppendWALRecord(body, seq, OpAdd, mkPts(ps, 1, int(seq)), ps)
		if err != nil {
			t.Fatal(err)
		}
	}
	tail, intact, lastSeq, torn := scanWAL(body, ps, 4)
	if torn || intact != len(body) {
		t.Fatalf("clean log reported torn=%v intact=%d/%d", torn, intact, len(body))
	}
	if lastSeq != 6 || len(tail) != 2 || tail[0].Seq != 5 || tail[1].Seq != 6 {
		t.Fatalf("skip=4: got lastSeq=%d tail=%v", lastSeq, tail)
	}
	// skipSeq beyond the log: empty tail, lastSeq stays at skipSeq.
	tail, _, lastSeq, _ = scanWAL(body, ps, 10)
	if len(tail) != 0 || lastSeq != 10 {
		t.Fatalf("skip=10: got tail=%d lastSeq=%d", len(tail), lastSeq)
	}
}

// TestScanWALTornAtEveryOffset is the satellite's crash-cut test: a log
// of several records is cut at every byte offset of its final record,
// and recovery must keep exactly the intact prefix every time.
func TestScanWALTornAtEveryOffset(t *testing.T) {
	const ps = 8
	var body []byte
	var err error
	recEnds := make([]int, 0, 4)
	for seq := uint64(1); seq <= 4; seq++ {
		body, err = AppendWALRecord(body, seq, OpAdd, mkPts(ps, 3, int(seq)), ps)
		if err != nil {
			t.Fatal(err)
		}
		recEnds = append(recEnds, len(body))
	}
	prefix := recEnds[len(recEnds)-2] // end of record 3
	for cut := prefix; cut < len(body); cut++ {
		tail, intact, lastSeq, torn := scanWAL(body[:cut], ps, 0)
		if cut == prefix {
			if torn {
				t.Fatalf("cut at exact record boundary %d reported torn", cut)
			}
		} else if !torn {
			t.Fatalf("cut=%d: partial final record not reported torn", cut)
		}
		if intact != prefix {
			t.Fatalf("cut=%d: intact=%d, want %d", cut, intact, prefix)
		}
		if len(tail) != 3 || lastSeq != 3 {
			t.Fatalf("cut=%d: tail=%d lastSeq=%d, want 3 records through seq 3", cut, len(tail), lastSeq)
		}
	}
}

// TestScanWALTornMidLog: corruption before the end stops the scan there —
// nothing after a bad record can be trusted.
func TestScanWALTornMidLog(t *testing.T) {
	const ps = 8
	var body []byte
	var err error
	var firstEnd int
	for seq := uint64(1); seq <= 3; seq++ {
		body, err = AppendWALRecord(body, seq, OpAdd, mkPts(ps, 2, int(seq)), ps)
		if err != nil {
			t.Fatal(err)
		}
		if seq == 1 {
			firstEnd = len(body)
		}
	}
	body[firstEnd+recHeaderSize] ^= 0xff // corrupt record 2's payload
	tail, intact, lastSeq, torn := scanWAL(body, ps, 0)
	if !torn || intact != firstEnd || len(tail) != 1 || lastSeq != 1 {
		t.Fatalf("mid-log corruption: torn=%v intact=%d tail=%d lastSeq=%d", torn, intact, len(tail), lastSeq)
	}
}

func TestWALHeaderRoundtrip(t *testing.T) {
	h := appendWALHeader(nil, 24)
	if len(h) != walHeaderSize {
		t.Fatalf("header is %d bytes, want %d", len(h), walHeaderSize)
	}
	ps, err := parseWALHeader(h)
	if err != nil || ps != 24 {
		t.Fatalf("got ps=%d err=%v", ps, err)
	}
	for _, bad := range [][]byte{nil, []byte("RWL"), []byte("XXXX\x08\x00"), appendWALHeader(nil, 0)[:6]} {
		if _, err := parseWALHeader(bad); err == nil {
			t.Fatalf("header %q accepted", bad)
		}
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	const ps = 16
	pts := mkPts(ps, 5, 42)
	sketch := []byte("RSK1-pretend-sketch-bytes")
	data, err := AppendSnapshot(nil, 77, ps, pts, sketch)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seq != 77 || s.PointSize != ps || len(s.Points) != 5 || string(s.Sketch) != string(sketch) {
		t.Fatalf("roundtrip mismatch: %+v", s)
	}
	for i, p := range s.Points {
		if string(p) != string(pts[i]) {
			t.Fatalf("point %d mismatch", i)
		}
	}
	// Empty set, empty sketch.
	data, err = AppendSnapshot(nil, 0, ps, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err = ParseSnapshot(data)
	if err != nil || len(s.Points) != 0 || len(s.Sketch) != 0 {
		t.Fatalf("empty snapshot: %+v err=%v", s, err)
	}
}

func TestParseSnapshotRejectsCorruption(t *testing.T) {
	const ps = 8
	data, err := AppendSnapshot(nil, 9, ps, mkPts(ps, 3, 1), []byte("sk"))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := ParseSnapshot(data[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x01
		if _, err := ParseSnapshot(bad); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
}
