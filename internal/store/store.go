// Package store is the pluggable storage engine behind a server Dataset.
// A Store receives every mutation batch before it is applied to the live
// multiset and its maintained sketch ("append before apply"), and is
// periodically offered an atomic snapshot of the full state so recovery
// replays only the log tail written since.
//
// Two implementations exist: Mem, the no-op engine every dataset uses by
// default (zero behavior change, nothing durable), and Durable, an
// append-only CRC-framed write-ahead log paired with atomic snapshots of
// the point multiset plus the serialized sketch state (wal.go,
// snapshot.go, durable.go).
//
// The package is deliberately ignorant of points and sketches: points
// are opaque fixed-width encodings (pointSize bytes each, the canonical
// encoding of internal/points) and the sketch is an opaque blob, so the
// on-disk formats never chase the in-memory types.
package store

import "robustset/internal/metrics"

// Op tags one WAL record as an add or a remove batch.
type Op byte

const (
	// OpAdd marks a batch of point insertions.
	OpAdd Op = 1
	// OpRemove marks a batch of point removals (one occurrence each).
	OpRemove Op = 2
)

// Record is one decoded WAL record: a mutation batch with its log
// sequence number. Points alias the buffer they were parsed from.
type Record struct {
	Seq    uint64
	Op     Op
	Points [][]byte
}

// Store is the write-through interface a Dataset mutates against. All
// methods are called with the dataset lock held, so implementations need
// only guard against their own concurrent Close.
type Store interface {
	// Append logs one mutation batch of canonical point encodings. It is
	// called before the batch is applied to the in-memory state; a
	// non-nil error means nothing was applied and the mutation fails.
	Append(op Op, encodedPts [][]byte) error
	// ShouldSnapshot reports whether the engine wants the caller to
	// offer a snapshot (the log has grown past its interval).
	ShouldSnapshot() bool
	// WriteSnapshot atomically persists the full state: every point
	// occurrence (encoded) plus the serialized sketch. On success the
	// log tail it covers is dropped.
	WriteSnapshot(encodedPts [][]byte, sketch []byte) error
	// Close releases the engine's resources, flushing pending state.
	Close() error
}

// Options configures a Durable engine.
type Options struct {
	// Fsync is the WAL fsync policy. Default SyncAlways.
	Fsync FsyncPolicy
	// SnapshotEvery is the number of WAL records after which
	// ShouldSnapshot turns true. 0 means DefaultSnapshotEvery; negative
	// disables interval snapshots entirely.
	SnapshotEvery int
	// Metrics receives the engine's instrumentation (fsync latency,
	// bytes appended, snapshot counts, replay counters). nil is a valid
	// no-op sink.
	Metrics *metrics.Registry
}

// FsyncPolicy dictates when the WAL is fsynced.
type FsyncPolicy int

const (
	// SyncAlways fsyncs after every appended record: a record
	// acknowledged to the caller survives an OS crash. The default.
	SyncAlways FsyncPolicy = iota
	// SyncNone leaves flushing to the OS page cache: a process crash
	// loses nothing (the kernel has the bytes), an OS crash may lose the
	// unflushed tail. An order of magnitude faster on spinning media.
	SyncNone
)

// DefaultSnapshotEvery is the record interval between snapshots when
// Options.SnapshotEvery is zero.
const DefaultSnapshotEvery = 4096

// Mem returns the no-op in-memory store: nothing is logged, nothing is
// snapshotted, recovery has nothing to find. It is the engine behind
// every dataset not published durably.
func Mem() Store { return memStore{} }

type memStore struct{}

func (memStore) Append(Op, [][]byte) error            { return nil }
func (memStore) ShouldSnapshot() bool                 { return false }
func (memStore) WriteSnapshot([][]byte, []byte) error { return nil }
func (memStore) Close() error                         { return nil }
