package store

import (
	"bytes"
	"testing"
)

// FuzzParseWALRecord asserts the parser never panics on arbitrary bytes
// and that whatever it accepts re-encodes to the identical frame.
func FuzzParseWALRecord(f *testing.F) {
	const ps = 16
	seed, _ := AppendWALRecord(nil, 7, OpAdd, mkPts(ps, 3, 1), ps)
	f.Add(seed, ps)
	seed2, _ := AppendWALRecord(nil, 9, OpRemove, nil, 8)
	f.Add(seed2, 8)
	f.Add([]byte{}, 1)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}, 4)
	f.Fuzz(func(t *testing.T, data []byte, pointSize int) {
		if pointSize < 1 || pointSize > 1024 {
			return
		}
		rec, n, err := ParseWALRecord(data, pointSize)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re, err := AppendWALRecord(nil, rec.Seq, rec.Op, rec.Points, pointSize)
		if err != nil {
			t.Fatalf("re-encoding an accepted record: %v", err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode differs from accepted frame")
		}
	})
}

// FuzzParseSnapshot asserts the snapshot parser never panics and that
// accepted snapshots re-encode byte-identically.
func FuzzParseSnapshot(f *testing.F) {
	const ps = 16
	seed, _ := AppendSnapshot(nil, 42, ps, mkPts(ps, 4, 2), []byte("sketch"))
	f.Add(seed)
	empty, _ := AppendSnapshot(nil, 0, 8, nil, nil)
	f.Add(empty)
	f.Add([]byte("RSN1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSnapshot(data)
		if err != nil {
			return
		}
		re, err := AppendSnapshot(nil, s.Seq, s.PointSize, s.Points, s.Sketch)
		if err != nil {
			t.Fatalf("re-encoding an accepted snapshot: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode differs from accepted snapshot")
		}
	})
}
