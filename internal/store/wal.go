package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// WAL file layout:
//
//	header: "RWL1" | u16 pointSize
//	record: u32 payloadLen | u32 crc32c(payload) | payload
//	payload: u64 seq | u8 op | u32 count | count × pointSize bytes
//
// Records are length-prefixed and CRC-framed so a torn final write — the
// normal aftermath of a crash mid-append — is detectable and truncatable
// rather than fatal. Sequence numbers are monotone per store and let
// recovery skip records a snapshot already covers (the crash window
// between a snapshot rename and the log truncation that follows it).
const (
	walMagic      = "RWL1"
	walHeaderSize = 4 + 2
	recHeaderSize = 4 + 4     // payloadLen + crc
	recMetaSize   = 8 + 1 + 4 // seq + op + count
	// maxWALPayload bounds one record's payload so a corrupt length
	// field can never drive a pathological allocation: parsing validates
	// the length before touching the payload.
	maxWALPayload = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrTornRecord reports a record that does not parse — short, oversized,
// CRC-mismatched or self-inconsistent. During recovery it marks the
// truncation point of the log; everything before it is intact.
var ErrTornRecord = errors.New("store: torn or corrupt WAL record")

// appendWALHeader appends the WAL file header.
func appendWALHeader(dst []byte, pointSize int) []byte {
	dst = append(dst, walMagic...)
	return binary.LittleEndian.AppendUint16(dst, uint16(pointSize))
}

// parseWALHeader validates the file header and returns the point size.
func parseWALHeader(b []byte) (int, error) {
	if len(b) < walHeaderSize || string(b[:4]) != walMagic {
		return 0, errors.New("store: bad WAL magic or short header")
	}
	ps := int(binary.LittleEndian.Uint16(b[4:]))
	if ps < 1 {
		return 0, errors.New("store: WAL header has zero point size")
	}
	return ps, nil
}

// AppendWALRecord appends the framed encoding of one mutation batch.
// Every point must be exactly pointSize bytes.
func AppendWALRecord(dst []byte, seq uint64, op Op, pts [][]byte, pointSize int) ([]byte, error) {
	if op != OpAdd && op != OpRemove {
		return nil, fmt.Errorf("store: append: unknown op %d", op)
	}
	payloadLen := recMetaSize + len(pts)*pointSize
	if payloadLen > maxWALPayload {
		return nil, fmt.Errorf("store: append: batch of %d points exceeds the %d-byte record bound", len(pts), maxWALPayload)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payloadLen))
	dst = append(dst, 0, 0, 0, 0) // crc placeholder
	payloadStart := len(dst)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = append(dst, byte(op))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(pts)))
	for _, p := range pts {
		if len(p) != pointSize {
			return nil, fmt.Errorf("store: append: point encoding is %d bytes, store expects %d", len(p), pointSize)
		}
		dst = append(dst, p...)
	}
	crc := crc32.Checksum(dst[payloadStart:], crcTable)
	binary.LittleEndian.PutUint32(dst[payloadStart-4:], crc)
	return dst, nil
}

// ParseWALRecord parses one record from the front of b. It returns the
// record and the number of bytes consumed. Any framing violation —
// truncated header, payload longer than the remaining bytes, CRC
// mismatch, or a payload inconsistent with its own length — returns
// ErrTornRecord (wrapped with detail): recovery truncates the log there.
// The returned points alias b.
func ParseWALRecord(b []byte, pointSize int) (Record, int, error) {
	if len(b) < recHeaderSize {
		return Record{}, 0, fmt.Errorf("%w: %d header bytes", ErrTornRecord, len(b))
	}
	payloadLen := int(binary.LittleEndian.Uint32(b))
	if payloadLen < recMetaSize || payloadLen > maxWALPayload {
		return Record{}, 0, fmt.Errorf("%w: payload length %d", ErrTornRecord, payloadLen)
	}
	if len(b) < recHeaderSize+payloadLen {
		return Record{}, 0, fmt.Errorf("%w: %d of %d payload bytes", ErrTornRecord, len(b)-recHeaderSize, payloadLen)
	}
	payload := b[recHeaderSize : recHeaderSize+payloadLen]
	if crc := crc32.Checksum(payload, crcTable); crc != binary.LittleEndian.Uint32(b[4:]) {
		return Record{}, 0, fmt.Errorf("%w: crc mismatch", ErrTornRecord)
	}
	rec := Record{
		Seq: binary.LittleEndian.Uint64(payload),
		Op:  Op(payload[8]),
	}
	if rec.Op != OpAdd && rec.Op != OpRemove {
		return Record{}, 0, fmt.Errorf("%w: unknown op %d", ErrTornRecord, payload[8])
	}
	count := int(binary.LittleEndian.Uint32(payload[9:]))
	if recMetaSize+count*pointSize != payloadLen {
		return Record{}, 0, fmt.Errorf("%w: %d points do not fill %d payload bytes", ErrTornRecord, count, payloadLen)
	}
	rec.Points = make([][]byte, count)
	body := payload[recMetaSize:]
	for i := 0; i < count; i++ {
		rec.Points[i] = body[i*pointSize : (i+1)*pointSize]
	}
	return rec, recHeaderSize + payloadLen, nil
}

// scanWAL parses every record of a WAL body (the file after its header).
// It stops at the first torn record and reports how many bytes of the
// body are intact; the caller truncates the rest. Records covered by
// seq <= skipSeq (already in the snapshot) are dropped.
func scanWAL(body []byte, pointSize int, skipSeq uint64) (tail []Record, intact int, lastSeq uint64, torn bool) {
	lastSeq = skipSeq
	for len(body[intact:]) > 0 {
		rec, n, err := ParseWALRecord(body[intact:], pointSize)
		if err != nil {
			return tail, intact, lastSeq, true
		}
		intact += n
		if rec.Seq > lastSeq {
			lastSeq = rec.Seq
		}
		if rec.Seq <= skipSeq {
			continue
		}
		tail = append(tail, rec)
	}
	return tail, intact, lastSeq, false
}
