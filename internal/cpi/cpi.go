// Package cpi implements characteristic-polynomial set reconciliation
// (Minsky, Trachtenberg & Zippel 2003) over GF(2^61−1) — the classic
// near-optimal exact reconciliation scheme (the minisketch family). It is
// one of the baselines the robust protocol is evaluated against: optimal
// for exact differences, but blind to "close" values, so under value noise
// its difference — and therefore its cost — degenerates to Θ(n).
//
// Each party evaluates the characteristic polynomial χ_S(z) = ∏_{s∈S}(z−s)
// of its element set at m = capacity+1+verifyPoints shared sample points.
// The ratio χ_A(z)/χ_B(z) is a rational function whose reduced numerator
// and denominator are the characteristic polynomials of A∖B and B∖A;
// rational interpolation from the samples followed by root finding
// recovers both difference sets exactly whenever |AΔB| ≤ capacity.
package cpi

import (
	"encoding/binary"
	"errors"
	"fmt"

	"robustset/internal/gf"
	"robustset/internal/hashutil"
	"robustset/internal/poly"
)

// verifyPoints is the number of extra sample points reserved to validate
// the interpolated rational function; a capacity overflow that produces a
// consistent-looking but wrong function fails these checks with
// probability ≈ 1 − 2^-61 per point.
const verifyPoints = 2

// ErrCapacityExceeded reports that the true difference exceeds the
// sketch's capacity (detected by size mismatch, inconsistent
// interpolation, failed verification, or non-splitting factors).
var ErrCapacityExceeded = errors.New("cpi: set difference exceeds sketch capacity")

// ErrIncompatible reports mismatched sketch parameters.
var ErrIncompatible = errors.New("cpi: incompatible sketches")

// ErrBadElement reports an element outside [0, gf.P) or a duplicate.
var ErrBadElement = errors.New("cpi: invalid element")

// Sketch is one party's characteristic-polynomial summary.
type Sketch struct {
	capacity int
	seed     uint64
	count    int
	evals    []gf.Elem
}

// samplePoints derives the m shared evaluation points from the seed. The
// points are distinct by construction (regenerated on collision, which is
// astronomically rare).
func samplePoints(seed uint64, m int) []gf.Elem {
	pts := make([]gf.Elem, 0, m)
	seen := make(map[gf.Elem]bool, m)
	for ctr := 0; len(pts) < m; ctr++ {
		z := gf.New(hashutil.DeriveSeedN(seed, "cpi/sample", ctr))
		if !seen[z] {
			seen[z] = true
			pts = append(pts, z)
		}
	}
	return pts
}

// NewSketch summarizes the element set. Elements must be distinct values
// in [0, gf.P); callers with arbitrary data hash into that range first
// (see internal/baseline). capacity bounds the total difference |AΔB|
// that Diff can recover.
func NewSketch(elems []uint64, capacity int, seed uint64) (*Sketch, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("cpi: capacity %d < 1", capacity)
	}
	seen := make(map[uint64]bool, len(elems))
	for _, e := range elems {
		if e >= gf.P {
			return nil, fmt.Errorf("%w: %d ≥ field modulus", ErrBadElement, e)
		}
		if seen[e] {
			return nil, fmt.Errorf("%w: duplicate %d (cpi reconciles sets, not multisets)", ErrBadElement, e)
		}
		seen[e] = true
	}
	m := capacity + 1 + verifyPoints
	pts := samplePoints(seed, m)
	s := &Sketch{capacity: capacity, seed: seed, count: len(elems), evals: make([]gf.Elem, m)}
	// Each sample's product ∏(z−e) is a serial multiply chain, so the
	// chains of four sample points are interleaved per element to keep the
	// multiplier pipelined (the same blocking poly.EvalMany uses); one
	// element pass serves four samples.
	i := 0
	for ; i+4 <= m; i += 4 {
		z0, z1, z2, z3 := pts[i], pts[i+1], pts[i+2], pts[i+3]
		v0, v1, v2, v3 := gf.Elem(1), gf.Elem(1), gf.Elem(1), gf.Elem(1)
		for _, e := range elems {
			ee := gf.Elem(e)
			v0 = gf.Mul(v0, gf.Sub(z0, ee))
			v1 = gf.Mul(v1, gf.Sub(z1, ee))
			v2 = gf.Mul(v2, gf.Sub(z2, ee))
			v3 = gf.Mul(v3, gf.Sub(z3, ee))
		}
		s.evals[i], s.evals[i+1], s.evals[i+2], s.evals[i+3] = v0, v1, v2, v3
	}
	for ; i < m; i++ {
		v := gf.Elem(1)
		z := pts[i]
		for _, e := range elems {
			v = gf.Mul(v, gf.Sub(z, gf.Elem(e)))
		}
		s.evals[i] = v
	}
	for i, v := range s.evals {
		if v == 0 {
			// A sample point coincided with an element (probability
			// ~ n·m/2^61). A different seed resolves it.
			return nil, fmt.Errorf("cpi: sample point %d collides with an element; choose a different seed", i)
		}
	}
	return s, nil
}

// Capacity returns the sketch's difference capacity.
func (s *Sketch) Capacity() int { return s.capacity }

// Count returns the summarized set's cardinality.
func (s *Sketch) Count() int { return s.count }

// Diff recovers A∖B and B∖A from the two parties' sketches. Both results
// are sorted ascending. It returns ErrCapacityExceeded when the true
// difference does not fit.
func Diff(a, b *Sketch) (onlyA, onlyB []uint64, err error) {
	if a.capacity != b.capacity || a.seed != b.seed {
		return nil, nil, ErrIncompatible
	}
	delta := a.count - b.count
	capTotal := a.capacity
	if delta > capTotal || -delta > capTotal {
		return nil, nil, fmt.Errorf("%w: set sizes differ by %d > capacity %d", ErrCapacityExceeded, abs(delta), capTotal)
	}
	// Degrees: dA − dB = delta and dA + dB ≤ cap, with dA+dB ≡ delta (mod 2).
	capEff := capTotal
	if (capEff+delta)%2 != 0 {
		capEff--
	}
	dA := (capEff + delta) / 2
	dB := (capEff - delta) / 2
	m := dA + dB + 1
	pts := samplePoints(a.seed, a.capacity+1+verifyPoints)
	ratios := make([]gf.Elem, len(pts))
	for i := range pts {
		ratios[i] = gf.Div(a.evals[i], b.evals[i])
	}
	p, q, err := poly.RationalInterpolate(pts[:m], ratios[:m], dA, dB)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: interpolation failed: %v", ErrCapacityExceeded, err)
	}
	// Reduce to lowest terms. χ_{A∖B} and χ_{B∖A} are coprime and monic,
	// so the reduced pair must be exactly them.
	g := poly.GCD(p, q)
	if g.IsZero() {
		return nil, nil, fmt.Errorf("%w: degenerate interpolation", ErrCapacityExceeded)
	}
	pr, rem1, _ := poly.DivMod(p, g)
	qr, rem2, _ := poly.DivMod(q, g)
	if !rem1.IsZero() || !rem2.IsZero() {
		return nil, nil, fmt.Errorf("%w: non-exact reduction", ErrCapacityExceeded)
	}
	// χ_{A∖B}/χ_{B∖A} in lowest terms has monic numerator and denominator
	// (the leading coefficients of true characteristic polynomials are 1,
	// and the reduction preserves the monic denominator), so anything else
	// is overflow garbage. Lead() is 0 for the zero polynomial, so these
	// checks also reject degenerate reductions.
	if qr.Lead() != 1 {
		return nil, nil, fmt.Errorf("%w: reduced denominator not monic", ErrCapacityExceeded)
	}
	if pr.Lead() != 1 {
		return nil, nil, fmt.Errorf("%w: reduced numerator not monic", ErrCapacityExceeded)
	}
	if pr.Degree()-qr.Degree() != delta {
		return nil, nil, fmt.Errorf("%w: degree difference %d does not match size difference %d", ErrCapacityExceeded, pr.Degree()-qr.Degree(), delta)
	}
	// Verify against every sample, including the reserved extras. The two
	// polynomials are evaluated at all samples in blocked batches.
	prv := poly.EvalMany(pr, pts)
	qrv := poly.EvalMany(qr, pts)
	for i := range pts {
		if prv[i] != gf.Mul(ratios[i], qrv[i]) {
			return nil, nil, fmt.Errorf("%w: verification failed at sample %d", ErrCapacityExceeded, i)
		}
	}
	rootsA, err := poly.Roots(pr, hashutil.DeriveSeed(a.seed, "cpi/rootsA"))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCapacityExceeded, err)
	}
	rootsB, err := poly.Roots(qr, hashutil.DeriveSeed(a.seed, "cpi/rootsB"))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCapacityExceeded, err)
	}
	if len(rootsA) != pr.Degree() || len(rootsB) != qr.Degree() {
		return nil, nil, fmt.Errorf("%w: difference polynomials do not split into distinct roots", ErrCapacityExceeded)
	}
	onlyA = make([]uint64, len(rootsA))
	for i, r := range rootsA {
		onlyA[i] = uint64(r)
	}
	onlyB = make([]uint64, len(rootsB))
	for i, r := range rootsB {
		onlyB[i] = uint64(r)
	}
	return onlyA, onlyB, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

const cpiMagic = "CPI1"

// MarshalBinary encodes the sketch:
//
//	"CPI1" | capacity u32 | seed u64 | count u64 | m × u64 evals
func (s *Sketch) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, s.WireSize())
	out = append(out, cpiMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(s.capacity))
	out = binary.LittleEndian.AppendUint64(out, s.seed)
	out = binary.LittleEndian.AppendUint64(out, uint64(s.count))
	for _, v := range s.evals {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	return out, nil
}

// UnmarshalBinary parses MarshalBinary output.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < 24 || string(data[:4]) != cpiMagic {
		return errors.New("cpi: bad magic or short buffer")
	}
	capacity := int(binary.LittleEndian.Uint32(data[4:]))
	if capacity < 1 {
		return errors.New("cpi: invalid capacity")
	}
	seed := binary.LittleEndian.Uint64(data[8:])
	count := int(binary.LittleEndian.Uint64(data[16:]))
	m := capacity + 1 + verifyPoints
	if len(data) != 24+8*m {
		return fmt.Errorf("cpi: have %d bytes, want %d", len(data), 24+8*m)
	}
	ns := &Sketch{capacity: capacity, seed: seed, count: count, evals: make([]gf.Elem, m)}
	for i := 0; i < m; i++ {
		e := gf.Elem(binary.LittleEndian.Uint64(data[24+8*i:]))
		if !e.IsCanonical() {
			return fmt.Errorf("cpi: evaluation %d not canonical", i)
		}
		ns.evals[i] = e
	}
	*s = *ns
	return nil
}

// WireSize returns the marshalled size in bytes — the baseline's
// communication cost: Θ(capacity), independent of set size.
func (s *Sketch) WireSize() int { return 24 + 8*(s.capacity+1+verifyPoints) }
