package cpi

import (
	"math/rand/v2"
	"testing"
)

func benchElems(n int) []uint64 {
	rng := rand.New(rand.NewPCG(9, 9))
	seen := make(map[uint64]bool, n)
	out := make([]uint64, 0, n)
	for len(out) < n {
		e := rng.Uint64() >> 3 // < 2^61 ≤ P
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

func BenchmarkNewSketch4096Cap64(b *testing.B) {
	elems := benchElems(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSketch(elems, 64, 42); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiff64(b *testing.B) {
	shared := benchElems(4096)
	a := shared
	bb := append([]uint64(nil), shared[:4064]...)
	sa, err := NewSketch(a, 64, 42)
	if err != nil {
		b.Fatal(err)
	}
	sb, err := NewSketch(bb, 64, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		onlyA, onlyB, err := Diff(sa, sb)
		if err != nil || len(onlyA) != 32 || len(onlyB) != 0 {
			b.Fatalf("diff: %d/%d, %v", len(onlyA), len(onlyB), err)
		}
	}
}
