package cpi

import (
	"errors"
	"math/rand/v2"
	"testing"

	"robustset/internal/gf"
)

func randElems(rng *rand.Rand, n int) []uint64 {
	seen := map[uint64]bool{}
	out := make([]uint64, 0, n)
	for len(out) < n {
		e := rng.Uint64() % gf.P
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

func sortedEqual(a []uint64, want map[uint64]bool) bool {
	if len(a) != len(want) {
		return false
	}
	for _, v := range a {
		if !want[v] {
			return false
		}
	}
	return true
}

func toSet(s []uint64) map[uint64]bool {
	m := make(map[uint64]bool, len(s))
	for _, v := range s {
		m[v] = true
	}
	return m
}

func TestNewSketchValidation(t *testing.T) {
	if _, err := NewSketch(nil, 0, 1); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewSketch([]uint64{gf.P}, 4, 1); !errors.Is(err, ErrBadElement) {
		t.Error("element ≥ P accepted")
	}
	if _, err := NewSketch([]uint64{7, 7}, 4, 1); !errors.Is(err, ErrBadElement) {
		t.Error("duplicate element accepted")
	}
}

func TestDiffExactRecovery(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, tc := range []struct{ shared, da, db, capacity int }{
		{100, 0, 0, 4},
		{100, 1, 0, 4},
		{100, 0, 1, 4},
		{100, 2, 2, 4},
		{100, 3, 1, 4},
		{500, 5, 5, 10},
		{50, 8, 3, 11},
		{50, 0, 7, 7},
		{1000, 16, 16, 32},
	} {
		shared := randElems(rng, tc.shared)
		onlyA := randElems(rng, tc.da)
		onlyB := randElems(rng, tc.db)
		a, err := NewSketch(append(append([]uint64{}, shared...), onlyA...), tc.capacity, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewSketch(append(append([]uint64{}, shared...), onlyB...), tc.capacity, 42)
		if err != nil {
			t.Fatal(err)
		}
		gotA, gotB, err := Diff(a, b)
		if err != nil {
			t.Fatalf("case %+v: %v", tc, err)
		}
		if !sortedEqual(gotA, toSet(onlyA)) {
			t.Fatalf("case %+v: onlyA = %v, want %v", tc, gotA, onlyA)
		}
		if !sortedEqual(gotB, toSet(onlyB)) {
			t.Fatalf("case %+v: onlyB = %v, want %v", tc, gotB, onlyB)
		}
	}
}

func TestDiffSymmetry(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	shared := randElems(rng, 200)
	oa := randElems(rng, 3)
	ob := randElems(rng, 4)
	a, _ := NewSketch(append(append([]uint64{}, shared...), oa...), 8, 7)
	b, _ := NewSketch(append(append([]uint64{}, shared...), ob...), 8, 7)
	a1, b1, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	b2, a2, err := Diff(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if !sortedEqual(a1, toSet(a2)) || !sortedEqual(b1, toSet(b2)) {
		t.Error("Diff not symmetric under argument swap")
	}
}

func TestDiffCapacityExceededDetected(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	shared := randElems(rng, 100)
	onlyA := randElems(rng, 12) // capacity 6 < 12 differences
	a, _ := NewSketch(append(append([]uint64{}, shared...), onlyA...), 6, 9)
	b, _ := NewSketch(shared, 6, 9)
	_, _, err := Diff(a, b)
	if !errors.Is(err, ErrCapacityExceeded) {
		t.Fatalf("want ErrCapacityExceeded, got %v", err)
	}
}

func TestDiffCapacityExceededBothSides(t *testing.T) {
	// Differences split across both sides, total > capacity but each side
	// below it: must still be detected (this is where the verification
	// points matter, since the size delta alone looks fine).
	rng := rand.New(rand.NewPCG(4, 4))
	shared := randElems(rng, 100)
	oa := randElems(rng, 5)
	ob := randElems(rng, 5)
	a, _ := NewSketch(append(append([]uint64{}, shared...), oa...), 6, 11)
	b, _ := NewSketch(append(append([]uint64{}, shared...), ob...), 6, 11)
	_, _, err := Diff(a, b)
	if !errors.Is(err, ErrCapacityExceeded) {
		t.Fatalf("want ErrCapacityExceeded, got %v", err)
	}
}

func TestDiffSizeDeltaBeyondCapacity(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	a, _ := NewSketch(randElems(rng, 50), 4, 13)
	b, _ := NewSketch(randElems(rng, 10), 4, 13)
	if _, _, err := Diff(a, b); !errors.Is(err, ErrCapacityExceeded) {
		t.Fatalf("want ErrCapacityExceeded, got %v", err)
	}
}

func TestDiffIncompatible(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	e := randElems(rng, 10)
	a, _ := NewSketch(e, 4, 1)
	b, _ := NewSketch(e, 8, 1)
	c, _ := NewSketch(e, 4, 2)
	if _, _, err := Diff(a, b); !errors.Is(err, ErrIncompatible) {
		t.Error("capacity mismatch accepted")
	}
	if _, _, err := Diff(a, c); !errors.Is(err, ErrIncompatible) {
		t.Error("seed mismatch accepted")
	}
}

func TestDiffEmptySets(t *testing.T) {
	a, err := NewSketch(nil, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewSketch([]uint64{123, 456}, 4, 3)
	oa, ob, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(oa) != 0 || !sortedEqual(ob, toSet([]uint64{123, 456})) {
		t.Errorf("diff vs empty: %v %v", oa, ob)
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	shared := randElems(rng, 100)
	oa := randElems(rng, 2)
	a, _ := NewSketch(append(append([]uint64{}, shared...), oa...), 8, 5)
	b, _ := NewSketch(shared, 8, 5)
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) != a.WireSize() {
		t.Errorf("wire size %d != declared %d", len(blob), a.WireSize())
	}
	var got Sketch
	if err := got.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if got.Capacity() != 8 || got.Count() != 102 {
		t.Errorf("roundtrip metadata: cap %d count %d", got.Capacity(), got.Count())
	}
	ra, rb, err := Diff(&got, b)
	if err != nil {
		t.Fatal(err)
	}
	if !sortedEqual(ra, toSet(oa)) || len(rb) != 0 {
		t.Error("diff via roundtripped sketch wrong")
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	a, _ := NewSketch([]uint64{1, 2, 3}, 4, 5)
	good, _ := a.MarshalBinary()
	var s Sketch
	for name, blob := range map[string][]byte{
		"short":     good[:10],
		"bad magic": append([]byte("XXXX"), good[4:]...),
		"truncated": good[:len(good)-1],
		"trailing":  append(append([]byte{}, good...), 0),
	} {
		if err := s.UnmarshalBinary(blob); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Non-canonical field element.
	bad := append([]byte{}, good...)
	for i := 24; i < 32; i++ {
		bad[i] = 0xff
	}
	if err := s.UnmarshalBinary(bad); err == nil {
		t.Error("non-canonical evaluation accepted")
	}
}

func TestWireSizeIndependentOfSetSize(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	small, _ := NewSketch(randElems(rng, 10), 16, 1)
	large, _ := NewSketch(randElems(rng, 10000), 16, 1)
	if small.WireSize() != large.WireSize() {
		t.Errorf("wire sizes %d vs %d should be equal", small.WireSize(), large.WireSize())
	}
}

func TestLargeCapacityDiff(t *testing.T) {
	// A protocol-sized case: 128 differences at capacity 128.
	rng := rand.New(rand.NewPCG(9, 9))
	shared := randElems(rng, 400)
	oa := randElems(rng, 64)
	ob := randElems(rng, 64)
	a, _ := NewSketch(append(append([]uint64{}, shared...), oa...), 128, 21)
	b, _ := NewSketch(append(append([]uint64{}, shared...), ob...), 128, 21)
	gotA, gotB, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !sortedEqual(gotA, toSet(oa)) || !sortedEqual(gotB, toSet(ob)) {
		t.Error("large diff not recovered exactly")
	}
}
