package points

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestUniverseValidate(t *testing.T) {
	cases := []struct {
		u  Universe
		ok bool
	}{
		{Universe{Dim: 1, Delta: 2}, true},
		{Universe{Dim: 3, Delta: 1 << 20}, true},
		{Universe{Dim: 16, Delta: 1 << 32}, true},
		{Universe{Dim: 0, Delta: 4}, false},
		{Universe{Dim: -1, Delta: 4}, false},
		{Universe{Dim: 2, Delta: 0}, false},
		{Universe{Dim: 2, Delta: 1}, false},
		{Universe{Dim: 2, Delta: 3}, false},
		{Universe{Dim: 2, Delta: 12}, false},
	}
	for _, c := range cases {
		err := c.u.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) err=%v, want ok=%v", c.u, err, c.ok)
		}
	}
}

func TestUniverseLevels(t *testing.T) {
	for _, c := range []struct {
		delta int64
		want  int
	}{{2, 1}, {4, 2}, {1024, 10}, {1 << 20, 20}, {1 << 32, 32}} {
		u := Universe{Dim: 1, Delta: c.delta}
		if got := u.Levels(); got != c.want {
			t.Errorf("Levels(delta=%d) = %d, want %d", c.delta, got, c.want)
		}
	}
}

func TestContainsAndClamp(t *testing.T) {
	u := Universe{Dim: 2, Delta: 16}
	if !u.Contains(Point{0, 15}) {
		t.Error("corner point should be contained")
	}
	if u.Contains(Point{0, 16}) || u.Contains(Point{-1, 0}) {
		t.Error("out-of-range point should not be contained")
	}
	if u.Contains(Point{1}) {
		t.Error("wrong-dimension point should not be contained")
	}
	got := u.Clamp(Point{-5, 99})
	if !got.Equal(Point{0, 15}) {
		t.Errorf("Clamp = %v, want (0,15)", got)
	}
	// Clamp must not mutate its input.
	p := Point{-5, 99}
	u.Clamp(p)
	if !p.Equal(Point{-5, 99}) {
		t.Error("Clamp mutated its input")
	}
}

func TestCheckSet(t *testing.T) {
	u := Universe{Dim: 2, Delta: 8}
	if err := u.CheckSet([]Point{{0, 0}, {7, 7}}); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	if err := u.CheckSet([]Point{{0, 0}, {8, 0}}); err == nil {
		t.Fatal("out-of-range set accepted")
	}
	bad := Universe{Dim: 2, Delta: 3}
	if err := bad.CheckSet(nil); err == nil {
		t.Fatal("invalid universe accepted")
	}
}

func TestPointOrderingProperties(t *testing.T) {
	f := func(a, b [4]int64) bool {
		p, q := Point(a[:]), Point(b[:])
		// Trichotomy: exactly one of p<q, q<p, p==q.
		n := 0
		if p.Less(q) {
			n++
		}
		if q.Less(p) {
			n++
		}
		if p.Equal(q) {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLessPrefix(t *testing.T) {
	if !(Point{1, 2}).Less(Point{1, 2, 3}) {
		t.Error("shorter prefix should be less")
	}
	if (Point{1, 2, 3}).Less(Point{1, 2}) {
		t.Error("longer extension should not be less")
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	f := func(a [6]int64) bool {
		p := Point(a[:])
		b := EncodeNew(p)
		if len(b) != EncodedSize(6) {
			return false
		}
		q, err := Decode(b, 6)
		return err == nil && p.Equal(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 15), 2); err == nil {
		t.Error("short buffer accepted")
	}
	if _, err := Decode(make([]byte, 24), 2); err == nil {
		t.Error("long buffer accepted")
	}
}

func TestEncodeDecodeSet(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	set := make([]Point, 57)
	for i := range set {
		set[i] = Point{rng.Int64N(1 << 30), rng.Int64N(1 << 30), rng.Int64N(1 << 30)}
	}
	b := EncodeSet(set, 3)
	got, err := DecodeSet(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(set) {
		t.Fatalf("len=%d want %d", len(got), len(set))
	}
	for i := range set {
		if !set[i].Equal(got[i]) {
			t.Fatalf("point %d: %v != %v", i, got[i], set[i])
		}
	}
	if _, err := DecodeSet(b[:3], 3); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := DecodeSet(b[:len(b)-1], 3); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestEncodeDecodeEmptySet(t *testing.T) {
	b := EncodeSet(nil, 2)
	got, err := DecodeSet(b, 2)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty set roundtrip: got %v err %v", got, err)
	}
}

func TestMultisetDiff(t *testing.T) {
	a := []Point{{1}, {2}, {2}, {3}}
	b := []Point{{2}, {3}, {3}, {4}}
	onlyA, onlyB := MultisetDiff(a, b)
	if len(onlyA) != 2 || !onlyA[0].Equal(Point{1}) || !onlyA[1].Equal(Point{2}) {
		t.Errorf("onlyA = %v", onlyA)
	}
	if len(onlyB) != 2 || !onlyB[0].Equal(Point{3}) || !onlyB[1].Equal(Point{4}) {
		t.Errorf("onlyB = %v", onlyB)
	}
}

func TestMultisetDiffProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 50; trial++ {
		n := rng.IntN(40)
		mk := func() []Point {
			s := make([]Point, n)
			for i := range s {
				s[i] = Point{rng.Int64N(10), rng.Int64N(10)}
			}
			return s
		}
		a, b := mk(), mk()
		onlyA, onlyB := MultisetDiff(a, b)
		// a \ onlyA and b \ onlyB must be the same multiset (the
		// intersection), so a = intersection + onlyA etc.
		if len(a)-len(onlyA) != len(b)-len(onlyB) {
			t.Fatalf("intersection sizes disagree: %d vs %d", len(a)-len(onlyA), len(b)-len(onlyB))
		}
		// Reconstruction: b + onlyA - onlyB == a as multisets.
		recon := append(Clone(b), onlyA...)
		for _, p := range onlyB {
			for i := range recon {
				if recon[i] != nil && recon[i].Equal(p) {
					recon[i] = nil
					break
				}
			}
		}
		var cleaned []Point
		for _, p := range recon {
			if p != nil {
				cleaned = append(cleaned, p)
			}
		}
		if !EqualMultisets(cleaned, a) {
			t.Fatalf("reconstruction failed: %v vs %v", cleaned, a)
		}
	}
}

func TestEqualMultisets(t *testing.T) {
	a := []Point{{1, 1}, {2, 2}, {1, 1}}
	b := []Point{{2, 2}, {1, 1}, {1, 1}}
	c := []Point{{2, 2}, {2, 2}, {1, 1}}
	if !EqualMultisets(a, b) {
		t.Error("permuted multisets should be equal")
	}
	if EqualMultisets(a, c) {
		t.Error("different multiplicities should differ")
	}
	if EqualMultisets(a, a[:2]) {
		t.Error("different lengths should differ")
	}
}
