package points

import (
	"fmt"
	"math"
)

// Quantizer maps real-valued records into a Universe and back — the
// ingestion step every deployment of robust reconciliation over float
// data needs (database rows, sensor readings, feature vectors). Each
// coordinate i is affinely mapped from [Min[i], Max[i]] onto [0, Δ) and
// rounded; Dequantize returns the center of the quantization bucket, so a
// quantize→dequantize roundtrip moves a value by at most half a step.
//
// Because robust reconciliation treats nearby points as equal, the
// quantization error simply adds (at most Step/2 per coordinate) to the
// noise floor the protocol already absorbs; choose the universe's Delta
// so the step is comfortably below the distance that separates "same
// object" from "different object" in the application.
type Quantizer struct {
	// Universe is the discrete target domain.
	Universe Universe
	// Min and Max bound each coordinate's real range; values outside are
	// clamped. Max[i] must exceed Min[i].
	Min, Max []float64
}

// NewQuantizer validates and constructs a quantizer.
func NewQuantizer(u Universe, min, max []float64) (*Quantizer, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if len(min) != u.Dim || len(max) != u.Dim {
		return nil, fmt.Errorf("points: quantizer: bounds have %d/%d entries, want %d", len(min), len(max), u.Dim)
	}
	for i := range min {
		if !(max[i] > min[i]) || math.IsInf(min[i], 0) || math.IsInf(max[i], 0) ||
			math.IsNaN(min[i]) || math.IsNaN(max[i]) {
			return nil, fmt.Errorf("points: quantizer: invalid range [%v,%v] on coordinate %d", min[i], max[i], i)
		}
	}
	return &Quantizer{Universe: u, Min: min, Max: max}, nil
}

// Step returns the real-valued width of one quantization bucket along
// coordinate i.
func (q *Quantizer) Step(i int) float64 {
	return (q.Max[i] - q.Min[i]) / float64(q.Universe.Delta)
}

// Quantize maps a real vector to its grid point. Values are clamped into
// [Min, Max]; NaN is clamped to Min.
func (q *Quantizer) Quantize(v []float64) (Point, error) {
	if len(v) != q.Universe.Dim {
		return nil, fmt.Errorf("points: quantize: %d values for dimension %d", len(v), q.Universe.Dim)
	}
	p := make(Point, q.Universe.Dim)
	for i, x := range v {
		if math.IsNaN(x) || x < q.Min[i] {
			x = q.Min[i]
		} else if x > q.Max[i] {
			x = q.Max[i]
		}
		c := int64(math.Floor((x - q.Min[i]) / q.Step(i)))
		if c >= q.Universe.Delta {
			c = q.Universe.Delta - 1 // x == Max lands on the top bucket
		}
		p[i] = c
	}
	return p, nil
}

// Dequantize maps a grid point back to the center of its bucket.
func (q *Quantizer) Dequantize(p Point) ([]float64, error) {
	if !q.Universe.Contains(p) {
		return nil, fmt.Errorf("points: dequantize: point %v outside universe", p)
	}
	v := make([]float64, len(p))
	for i, c := range p {
		v[i] = q.Min[i] + (float64(c)+0.5)*q.Step(i)
	}
	return v, nil
}

// QuantizeSet maps a slice of real vectors.
func (q *Quantizer) QuantizeSet(vs [][]float64) ([]Point, error) {
	out := make([]Point, len(vs))
	for i, v := range vs {
		p, err := q.Quantize(v)
		if err != nil {
			return nil, fmt.Errorf("points: row %d: %w", i, err)
		}
		out[i] = p
	}
	return out, nil
}

// DequantizeSet maps a slice of grid points back to real vectors.
func (q *Quantizer) DequantizeSet(ps []Point) ([][]float64, error) {
	out := make([][]float64, len(ps))
	for i, p := range ps {
		v, err := q.Dequantize(p)
		if err != nil {
			return nil, fmt.Errorf("points: row %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}
