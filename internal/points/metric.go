package points

import (
	"fmt"
	"math"
)

// Metric measures the distance between two points of equal dimension. All
// metrics in this package are true metrics (non-negative, symmetric,
// triangle inequality, zero iff equal).
type Metric interface {
	// Distance returns the distance between a and b. It panics if the
	// dimensions differ — mixing dimensions is always a programming error.
	Distance(a, b Point) float64
	// Name returns a short stable identifier ("l1", "l2", "linf") used in
	// wire formats and CLI flags.
	Name() string
}

type l1Metric struct{}
type l2Metric struct{}
type linfMetric struct{}

// L1 is the Manhattan metric, the primary metric of the paper's analysis.
var L1 Metric = l1Metric{}

// L2 is the Euclidean metric.
var L2 Metric = l2Metric{}

// LInf is the Chebyshev metric.
var LInf Metric = linfMetric{}

func checkDims(a, b Point) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("points: dimension mismatch %d vs %d", len(a), len(b)))
	}
}

func (l1Metric) Name() string { return "l1" }

func (l1Metric) Distance(a, b Point) float64 {
	checkDims(a, b)
	var sum int64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return float64(sum)
}

func (l2Metric) Name() string { return "l2" }

func (l2Metric) Distance(a, b Point) float64 {
	checkDims(a, b)
	var sum float64
	for i := range a {
		d := float64(a[i] - b[i])
		sum += d * d
	}
	return math.Sqrt(sum)
}

func (linfMetric) Name() string { return "linf" }

func (linfMetric) Distance(a, b Point) float64 {
	checkDims(a, b)
	var max int64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return float64(max)
}

// MetricByName resolves a metric identifier as produced by Metric.Name.
func MetricByName(name string) (Metric, error) {
	switch name {
	case "l1":
		return L1, nil
	case "l2":
		return L2, nil
	case "linf":
		return LInf, nil
	}
	return nil, fmt.Errorf("points: unknown metric %q", name)
}

// CellRadius returns the maximum distance, under m, between any two points
// of an axis-aligned hypercube with side width in d dimensions. This bounds
// the rounding error introduced by snapping a point to its grid cell center
// (within a factor 2; the center-to-corner distance is half of it).
func CellRadius(m Metric, d int, width int64) float64 {
	w := float64(width - 1)
	if w < 0 {
		w = 0
	}
	switch m.Name() {
	case "l1":
		return w * float64(d)
	case "l2":
		return w * math.Sqrt(float64(d))
	case "linf":
		return w
	default:
		// Conservative default: l1 diameter dominates the others.
		return w * float64(d)
	}
}
