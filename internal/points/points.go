// Package points defines the geometric vocabulary shared by every other
// package in this repository: points in a discretized universe [Δ]^d,
// metrics over them, canonical binary encodings, and multiset helpers.
//
// All reconciliation protocols in this module operate on multisets of
// Point values drawn from a Universe. Coordinates are int64 so that the
// randomly shifted grid arithmetic in internal/grid never overflows for
// any Δ ≤ 2^32.
package points

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
)

// Point is a point in [Δ]^d. Points are plain slices so callers can build
// them with literals; every function in this module treats them as
// immutable values and copies before mutating.
type Point []int64

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical dimension and coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Less orders points lexicographically. It is the canonical ordering used
// to make multiset operations deterministic.
func (p Point) Less(q Point) bool {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		if p[i] != q[i] {
			return p[i] < q[i]
		}
	}
	return len(p) < len(q)
}

// String renders the point as "(x1,x2,...)".
func (p Point) String() string {
	s := "("
	for i, c := range p {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", c)
	}
	return s + ")"
}

// Universe describes the discretized metric space [Δ]^d: Dim coordinates,
// each in [0, Delta). Delta must be a power of two so the hierarchical grid
// in internal/grid can halve cell widths exactly.
type Universe struct {
	Dim   int   // number of coordinates d, ≥ 1
	Delta int64 // coordinate range: valid coordinates are 0 .. Delta-1
}

// ErrInvalidUniverse is returned when a Universe fails validation.
var ErrInvalidUniverse = errors.New("points: invalid universe")

// Validate checks that the universe is well formed: Dim ≥ 1 and Delta a
// power of two ≥ 2.
func (u Universe) Validate() error {
	if u.Dim < 1 {
		return fmt.Errorf("%w: dim %d < 1", ErrInvalidUniverse, u.Dim)
	}
	if u.Delta < 2 || u.Delta&(u.Delta-1) != 0 {
		return fmt.Errorf("%w: delta %d is not a power of two ≥ 2", ErrInvalidUniverse, u.Delta)
	}
	return nil
}

// Levels returns log2(Delta), the number of times a cell of width Delta can
// be halved before reaching width 1.
func (u Universe) Levels() int {
	return bits.Len64(uint64(u.Delta)) - 1
}

// Contains reports whether p is a valid point of the universe.
func (u Universe) Contains(p Point) bool {
	if len(p) != u.Dim {
		return false
	}
	for _, c := range p {
		if c < 0 || c >= u.Delta {
			return false
		}
	}
	return true
}

// Clamp returns a copy of p with every coordinate clamped into [0, Delta).
// The dimension must already match.
func (u Universe) Clamp(p Point) Point {
	q := p.Clone()
	for i, c := range q {
		if c < 0 {
			q[i] = 0
		} else if c >= u.Delta {
			q[i] = u.Delta - 1
		}
	}
	return q
}

// CheckSet validates that every point of s belongs to the universe.
func (u Universe) CheckSet(s []Point) error {
	if err := u.Validate(); err != nil {
		return err
	}
	for i, p := range s {
		if !u.Contains(p) {
			return fmt.Errorf("points: point %d %v outside universe (dim=%d delta=%d)", i, p, u.Dim, u.Delta)
		}
	}
	return nil
}

// Clone deep-copies a slice of points.
func Clone(s []Point) []Point {
	out := make([]Point, len(s))
	for i, p := range s {
		out[i] = p.Clone()
	}
	return out
}

// Sort sorts a slice of points lexicographically, in place.
func Sort(s []Point) {
	sort.Slice(s, func(i, j int) bool { return s[i].Less(s[j]) })
}

// EqualMultisets reports whether a and b contain the same points with the
// same multiplicities. It does not mutate its inputs.
func EqualMultisets(a, b []Point) bool {
	if len(a) != len(b) {
		return false
	}
	ac, bc := Clone(a), Clone(b)
	Sort(ac)
	Sort(bc)
	for i := range ac {
		if !ac[i].Equal(bc[i]) {
			return false
		}
	}
	return true
}

// MultisetDiff returns the multiset differences a\b and b\a (with
// multiplicity). The result slices are sorted. It does not mutate inputs.
func MultisetDiff(a, b []Point) (onlyA, onlyB []Point) {
	ac, bc := Clone(a), Clone(b)
	Sort(ac)
	Sort(bc)
	i, j := 0, 0
	for i < len(ac) && j < len(bc) {
		switch {
		case ac[i].Equal(bc[j]):
			i++
			j++
		case ac[i].Less(bc[j]):
			onlyA = append(onlyA, ac[i])
			i++
		default:
			onlyB = append(onlyB, bc[j])
			j++
		}
	}
	onlyA = append(onlyA, ac[i:]...)
	onlyB = append(onlyB, bc[j:]...)
	return onlyA, onlyB
}
