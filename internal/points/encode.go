package points

import (
	"encoding/binary"
	"fmt"
)

// EncodedSize returns the number of bytes Encode produces for a point of
// dimension d: 8 bytes per coordinate, little endian.
func EncodedSize(d int) int { return 8 * d }

// Encode appends the canonical fixed-width binary encoding of p to dst and
// returns the extended slice. The encoding is 8 little-endian bytes per
// coordinate, which is what the IBLT layer uses as key material.
func Encode(dst []byte, p Point) []byte {
	for _, c := range p {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(c))
	}
	return dst
}

// EncodeNew is Encode into a freshly allocated buffer.
func EncodeNew(p Point) []byte {
	return Encode(make([]byte, 0, EncodedSize(len(p))), p)
}

// Decode parses a point of dimension d from the canonical encoding.
func Decode(b []byte, d int) (Point, error) {
	if len(b) != EncodedSize(d) {
		return nil, fmt.Errorf("points: decode: have %d bytes, want %d for dim %d", len(b), EncodedSize(d), d)
	}
	p := make(Point, d)
	for i := 0; i < d; i++ {
		p[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return p, nil
}

// EncodeSet encodes a slice of points as a length-prefixed concatenation of
// canonical point encodings. This is the payload format used when a
// protocol transfers raw points (e.g. the naive baseline).
func EncodeSet(s []Point, d int) []byte {
	out := make([]byte, 0, 4+len(s)*EncodedSize(d))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(s)))
	for _, p := range s {
		out = Encode(out, p)
	}
	return out
}

// DecodeSet parses the EncodeSet format.
func DecodeSet(b []byte, d int) ([]Point, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("points: decode set: short header (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	sz := EncodedSize(d)
	if len(b) != n*sz {
		return nil, fmt.Errorf("points: decode set: have %d payload bytes, want %d (n=%d dim=%d)", len(b), n*sz, n, d)
	}
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		p, err := Decode(b[i*sz:(i+1)*sz], d)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}
