package points

import (
	"math"
	"math/rand/v2"
	"testing"
)

func mkQuantizer(t *testing.T) *Quantizer {
	t.Helper()
	q, err := NewQuantizer(Universe{Dim: 2, Delta: 1 << 16}, []float64{-10, 0}, []float64{10, 100})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestQuantizerValidation(t *testing.T) {
	u := Universe{Dim: 2, Delta: 16}
	if _, err := NewQuantizer(Universe{Dim: 0, Delta: 16}, nil, nil); err == nil {
		t.Error("invalid universe accepted")
	}
	if _, err := NewQuantizer(u, []float64{0}, []float64{1, 2}); err == nil {
		t.Error("bounds length mismatch accepted")
	}
	if _, err := NewQuantizer(u, []float64{0, 5}, []float64{1, 5}); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewQuantizer(u, []float64{0, math.NaN()}, []float64{1, 2}); err == nil {
		t.Error("NaN bound accepted")
	}
	if _, err := NewQuantizer(u, []float64{0, 0}, []float64{1, math.Inf(1)}); err == nil {
		t.Error("infinite bound accepted")
	}
}

func TestQuantizeRoundtripError(t *testing.T) {
	q := mkQuantizer(t)
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 1000; trial++ {
		v := []float64{rng.Float64()*20 - 10, rng.Float64() * 100}
		p, err := q.Quantize(v)
		if err != nil {
			t.Fatal(err)
		}
		if !q.Universe.Contains(p) {
			t.Fatalf("quantized point %v outside universe", p)
		}
		back, err := q.Dequantize(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range v {
			if math.Abs(back[i]-v[i]) > q.Step(i)/2+1e-12 {
				t.Fatalf("coordinate %d: roundtrip error %v exceeds step/2 %v", i, math.Abs(back[i]-v[i]), q.Step(i)/2)
			}
		}
	}
}

func TestQuantizeMonotone(t *testing.T) {
	// Larger real values never map to smaller grid coordinates.
	q := mkQuantizer(t)
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 500; trial++ {
		a := rng.Float64()*20 - 10
		b := rng.Float64()*20 - 10
		if a > b {
			a, b = b, a
		}
		pa, _ := q.Quantize([]float64{a, 50})
		pb, _ := q.Quantize([]float64{b, 50})
		if pa[0] > pb[0] {
			t.Fatalf("monotonicity violated: %v→%d, %v→%d", a, pa[0], b, pb[0])
		}
	}
}

func TestQuantizeClamping(t *testing.T) {
	q := mkQuantizer(t)
	lo, err := q.Quantize([]float64{-999, -5})
	if err != nil {
		t.Fatal(err)
	}
	if lo[0] != 0 || lo[1] != 0 {
		t.Errorf("below-range values should clamp to 0: %v", lo)
	}
	hi, _ := q.Quantize([]float64{999, 200})
	if hi[0] != q.Universe.Delta-1 || hi[1] != q.Universe.Delta-1 {
		t.Errorf("above-range values should clamp to Delta-1: %v", hi)
	}
	nan, _ := q.Quantize([]float64{math.NaN(), 50})
	if nan[0] != 0 {
		t.Errorf("NaN should clamp to the bottom bucket: %v", nan)
	}
	// Max itself must be valid (top bucket, not Delta).
	top, _ := q.Quantize([]float64{10, 100})
	if !q.Universe.Contains(top) {
		t.Errorf("Max value quantized outside universe: %v", top)
	}
}

func TestQuantizeErrors(t *testing.T) {
	q := mkQuantizer(t)
	if _, err := q.Quantize([]float64{1}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := q.Dequantize(Point{0}); err == nil {
		t.Error("wrong-dimension point accepted")
	}
	if _, err := q.Dequantize(Point{-1, 0}); err == nil {
		t.Error("out-of-universe point accepted")
	}
}

func TestQuantizeSetRoundtrip(t *testing.T) {
	q := mkQuantizer(t)
	rows := [][]float64{{-10, 0}, {0, 50}, {9.999, 99.999}}
	ps, err := q.QuantizeSet(rows)
	if err != nil {
		t.Fatal(err)
	}
	back, err := q.DequantizeSet(ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		for j := range rows[i] {
			if math.Abs(back[i][j]-rows[i][j]) > q.Step(j) {
				t.Fatalf("row %d coord %d drifted %v", i, j, math.Abs(back[i][j]-rows[i][j]))
			}
		}
	}
	if _, err := q.QuantizeSet([][]float64{{1}}); err == nil {
		t.Error("bad row accepted")
	}
	if _, err := q.DequantizeSet([]Point{{9, 9, 9}}); err == nil {
		t.Error("bad point accepted")
	}
}

func TestQuantizerPreservesCloseness(t *testing.T) {
	// The property that matters for the protocol: values within ε of each
	// other quantize to grid points within ε/Step + 1 cells.
	q := mkQuantizer(t)
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 500; trial++ {
		base := rng.Float64()*18 - 9
		eps := rng.Float64() * 0.01
		a, _ := q.Quantize([]float64{base, 50})
		b, _ := q.Quantize([]float64{base + eps, 50})
		maxCells := int64(eps/q.Step(0)) + 1
		if d := b[0] - a[0]; d < 0 || d > maxCells {
			t.Fatalf("close values separated by %d cells (max %d)", d, maxCells)
		}
	}
}
