package points

import (
	"math"
	"math/rand/v2"
	"testing"
)

func randPoint(rng *rand.Rand, d int, delta int64) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = rng.Int64N(delta)
	}
	return p
}

func TestMetricBasics(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if got := L1.Distance(a, b); got != 7 {
		t.Errorf("L1 = %v, want 7", got)
	}
	if got := L2.Distance(a, b); got != 5 {
		t.Errorf("L2 = %v, want 5", got)
	}
	if got := LInf.Distance(a, b); got != 4 {
		t.Errorf("LInf = %v, want 4", got)
	}
}

func TestMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 1))
	metrics := []Metric{L1, L2, LInf}
	for _, m := range metrics {
		for trial := 0; trial < 200; trial++ {
			d := 1 + rng.IntN(8)
			x := randPoint(rng, d, 1<<20)
			y := randPoint(rng, d, 1<<20)
			z := randPoint(rng, d, 1<<20)
			dxy := m.Distance(x, y)
			dyx := m.Distance(y, x)
			if dxy != dyx {
				t.Fatalf("%s not symmetric: %v vs %v", m.Name(), dxy, dyx)
			}
			if m.Distance(x, x) != 0 {
				t.Fatalf("%s: d(x,x) != 0", m.Name())
			}
			if dxy < 0 {
				t.Fatalf("%s: negative distance", m.Name())
			}
			if dxy == 0 && !x.Equal(y) {
				t.Fatalf("%s: zero distance for distinct points", m.Name())
			}
			// Triangle inequality with float tolerance for L2.
			if m.Distance(x, z) > dxy+m.Distance(y, z)+1e-6 {
				t.Fatalf("%s: triangle inequality violated", m.Name())
			}
		}
	}
}

func TestMetricDominanceOrder(t *testing.T) {
	// For any pair: LInf ≤ L2 ≤ L1.
	rng := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.IntN(10)
		x := randPoint(rng, d, 1000)
		y := randPoint(rng, d, 1000)
		li, l2, l1 := LInf.Distance(x, y), L2.Distance(x, y), L1.Distance(x, y)
		if li > l2+1e-9 || l2 > l1+1e-9 {
			t.Fatalf("dominance violated: linf=%v l2=%v l1=%v", li, l2, l1)
		}
	}
}

func TestMetricByName(t *testing.T) {
	for _, m := range []Metric{L1, L2, LInf} {
		got, err := MetricByName(m.Name())
		if err != nil || got.Name() != m.Name() {
			t.Errorf("MetricByName(%q) = %v, %v", m.Name(), got, err)
		}
	}
	if _, err := MetricByName("hamming"); err == nil {
		t.Error("unknown metric accepted")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	L1.Distance(Point{1}, Point{1, 2})
}

func TestCellRadius(t *testing.T) {
	// The radius must bound the distance between any two points of a cell.
	rng := rand.New(rand.NewPCG(3, 14))
	for _, m := range []Metric{L1, L2, LInf} {
		for trial := 0; trial < 100; trial++ {
			d := 1 + rng.IntN(6)
			width := int64(1) << uint(1+rng.IntN(10))
			r := CellRadius(m, d, width)
			// Sample two points in the same width-cell.
			a := make(Point, d)
			b := make(Point, d)
			for i := 0; i < d; i++ {
				a[i] = rng.Int64N(width)
				b[i] = rng.Int64N(width)
			}
			if dist := m.Distance(a, b); dist > r+1e-9 {
				t.Fatalf("%s: dist %v exceeds cell radius %v (d=%d w=%d)", m.Name(), dist, r, d, width)
			}
		}
	}
	if CellRadius(L1, 3, 1) != 0 {
		t.Error("width-1 cells must have zero radius")
	}
}

func TestCellRadiusExactCorners(t *testing.T) {
	// Opposite corners of a width-w cell achieve the bound exactly.
	d, w := 4, int64(8)
	a := Point{0, 0, 0, 0}
	b := Point{w - 1, w - 1, w - 1, w - 1}
	if got, want := L1.Distance(a, b), CellRadius(L1, d, w); got != want {
		t.Errorf("L1 corner distance %v != radius %v", got, want)
	}
	if got, want := LInf.Distance(a, b), CellRadius(LInf, d, w); got != want {
		t.Errorf("LInf corner distance %v != radius %v", got, want)
	}
	if got, want := L2.Distance(a, b), CellRadius(L2, d, w); math.Abs(got-want) > 1e-9 {
		t.Errorf("L2 corner distance %v != radius %v", got, want)
	}
}
