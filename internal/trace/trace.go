// Package trace is the serving path's per-session diagnosis layer:
// every sync can carry a Trace that records typed phase spans (hello,
// strata estimate, each IBLT round, rateless chunk growth, repair),
// named stats (estimated vs actual difference, rounds, decode retries)
// and per-frame-type wire-byte attribution charged by the transport
// layer itself — so the per-type byte table sums exactly to the
// session's transport counters.
//
// Tracing follows the registry's nil-is-a-no-op discipline: a nil
// *Trace absorbs every call, FromContext on an untraced context returns
// nil without allocating, and Region is a value type, so the disabled
// path adds zero allocations per session (asserted by
// TestTracingDisabledZeroAlloc in the root package).
//
// Completed traces snapshot into a Ring — a bounded buffer of recent
// sessions plus a second buffer that captures only slow/expensive
// sessions (over a latency or byte threshold) — served as JSON on the
// debug endpoint and rendered human-readably by Snapshot.Format for
// `robustsync explain` / `pull -trace`.
package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// KV is one integer attribute on a span or trace stat.
type KV struct {
	K string `json:"k"`
	V int64  `json:"v"`
}

// I builds a KV — shorthand keeping span End call sites one-liners.
func I(k string, v int64) KV { return KV{K: k, V: v} }

// Span is one completed, named phase of a session.
type Span struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"` // offset from the trace's start
	DurNS   int64  `json:"dur_ns"`
	Attrs   []KV   `json:"attrs,omitempty"`
}

// tagSpace bounds the frame-type tag values the attribution table
// indexes: protocol tags live in [0x01, 0x7f].
const tagSpace = 128

// frameCount is one (type, direction) cell of the attribution table.
type frameCount struct {
	msgs  int64
	bytes int64
}

// frameNames maps wire tags to protocol mnemonics. The protocol
// package registers its tags from init(); trace itself stays below the
// protocol layer so the dependency points one way only.
var (
	frameNamesMu sync.RWMutex
	frameNames   = map[byte]string{}
)

// RegisterFrameName records the mnemonic for a wire tag. Later
// registrations win; unregistered tags render as "0xNN".
func RegisterFrameName(tag byte, name string) {
	frameNamesMu.Lock()
	frameNames[tag] = name
	frameNamesMu.Unlock()
}

// FrameName returns the registered mnemonic for a tag, or "0xNN".
func FrameName(tag byte) string {
	frameNamesMu.RLock()
	name, ok := frameNames[tag]
	frameNamesMu.RUnlock()
	if !ok {
		return fmt.Sprintf("0x%02x", tag)
	}
	return name
}

var nextID atomic.Uint64

// Trace accumulates one session's (or one replication round's)
// diagnosis. All methods are nil-safe no-ops, so instrumented code
// threads a possibly-nil *Trace without checks. A Trace is safe for
// concurrent use: mux sessions record frames from both the send and
// receive side.
type Trace struct {
	mu       sync.Mutex
	id       uint64
	role     string
	dataset  string
	strategy string
	peer     string
	start    time.Time
	spans    []Span
	stats    []KV
	children []*Trace
	frames   [2][tagSpace]frameCount // [dir][tag]; dir 0 = in, 1 = out
	durNS    int64
	err      string
	done     bool
}

// New starts a trace. role names the vantage point ("client",
// "server", "round", ...).
func New(role string) *Trace {
	return &Trace{id: nextID.Add(1), role: role, start: time.Now()}
}

// Label records the session's identity. Empty arguments leave the
// existing value in place, so callers can fill fields as they learn
// them (dataset at hello, strategy after negotiation).
func (t *Trace) Label(dataset, strategy, peer string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if dataset != "" {
		t.dataset = dataset
	}
	if strategy != "" {
		t.strategy = strategy
	}
	if peer != "" {
		t.peer = peer
	}
	t.mu.Unlock()
}

// Region is an in-flight span. The zero Region (from a nil Trace) is a
// valid no-op, and the type is plain values so Begin/End allocate
// nothing on the disabled path.
type Region struct {
	tr      *Trace
	name    string
	startNS int64
}

// Begin opens a named phase span.
func (t *Trace) Begin(name string) Region {
	if t == nil {
		return Region{}
	}
	return Region{tr: t, name: name, startNS: time.Since(t.start).Nanoseconds()}
}

// End closes the span, attaching the given attributes.
func (r Region) End(attrs ...KV) {
	if r.tr == nil {
		return
	}
	end := time.Since(r.tr.start).Nanoseconds()
	var a []KV
	if len(attrs) > 0 {
		a = append(make([]KV, 0, len(attrs)), attrs...)
	}
	r.tr.mu.Lock()
	r.tr.spans = append(r.tr.spans, Span{Name: r.name, StartNS: r.startNS, DurNS: end - r.startNS, Attrs: a})
	r.tr.mu.Unlock()
}

// Frame charges n wire bytes (payload plus framing overhead) of one
// message with the given type tag. out is the direction as seen from
// this trace's vantage point. The transport layer calls this beside
// its own byte counters, so per-type totals sum to Transport.Stats.
func (t *Trace) Frame(tag byte, out bool, n int) {
	if t == nil || int(tag) >= tagSpace {
		return
	}
	dir := 0
	if out {
		dir = 1
	}
	t.mu.Lock()
	c := &t.frames[dir][tag]
	c.msgs++
	c.bytes += int64(n)
	t.mu.Unlock()
}

// Stat accumulates a named session statistic (adds v to any prior
// value under the same name).
func (t *Trace) Stat(name string, v int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for i := range t.stats {
		if t.stats[i].K == name {
			t.stats[i].V += v
			t.mu.Unlock()
			return
		}
	}
	t.stats = append(t.stats, KV{K: name, V: v})
	t.mu.Unlock()
}

// Child starts a sub-trace (e.g. one peer session within a
// replication round) attached to this trace's tree.
func (t *Trace) Child(role string) *Trace {
	if t == nil {
		return nil
	}
	c := New(role)
	t.mu.Lock()
	t.children = append(t.children, c)
	t.mu.Unlock()
	return c
}

// Finish seals the trace with the session's outcome. Repeated calls
// keep the first result.
func (t *Trace) Finish(err error) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.done = true
		t.durNS = time.Since(t.start).Nanoseconds()
		if err != nil {
			t.err = err.Error()
		}
	}
	t.mu.Unlock()
}

// FrameStat is one (type, direction) row of a snapshot's wire table.
type FrameStat struct {
	Type  string `json:"type"`
	Dir   string `json:"dir"` // "in" or "out"
	Msgs  int64  `json:"msgs"`
	Bytes int64  `json:"bytes"`
}

// Snapshot is the immutable, JSON-marshalable form of a finished
// trace.
type Snapshot struct {
	ID       uint64      `json:"id"`
	Role     string      `json:"role"`
	Dataset  string      `json:"dataset,omitempty"`
	Strategy string      `json:"strategy,omitempty"`
	Peer     string      `json:"peer,omitempty"`
	Start    time.Time   `json:"start"`
	DurNS    int64       `json:"dur_ns"`
	Err      string      `json:"err,omitempty"`
	Spans    []Span      `json:"spans,omitempty"`
	Stats    []KV        `json:"stats,omitempty"`
	Frames   []FrameStat `json:"frames,omitempty"`
	BytesIn  int64       `json:"bytes_in"`
	BytesOut int64       `json:"bytes_out"`
	Children []*Snapshot `json:"children,omitempty"`
}

// Snapshot renders the trace (and its children, recursively). Safe to
// call on an unfinished trace — DurNS is then the time so far.
func (t *Trace) Snapshot() *Snapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	s := &Snapshot{
		ID: t.id, Role: t.role, Dataset: t.dataset, Strategy: t.strategy,
		Peer: t.peer, Start: t.start, DurNS: t.durNS, Err: t.err,
	}
	if !t.done {
		s.DurNS = time.Since(t.start).Nanoseconds()
	}
	s.Spans = append([]Span(nil), t.spans...)
	s.Stats = append([]KV(nil), t.stats...)
	for dir := 0; dir < 2; dir++ {
		name := "in"
		if dir == 1 {
			name = "out"
		}
		for tag := 0; tag < tagSpace; tag++ {
			c := t.frames[dir][tag]
			if c.msgs == 0 {
				continue
			}
			s.Frames = append(s.Frames, FrameStat{
				Type: FrameName(byte(tag)), Dir: name, Msgs: c.msgs, Bytes: c.bytes,
			})
			if dir == 0 {
				s.BytesIn += c.bytes
			} else {
				s.BytesOut += c.bytes
			}
		}
	}
	children := append([]*Trace(nil), t.children...)
	t.mu.Unlock()
	for _, c := range children {
		s.Children = append(s.Children, c.Snapshot())
	}
	return s
}

// TotalBytes is the wire total attributed to this snapshot's whole
// tree, both directions.
func (s *Snapshot) TotalBytes() int64 {
	if s == nil {
		return 0
	}
	total := s.BytesIn + s.BytesOut
	for _, c := range s.Children {
		total += c.TotalBytes()
	}
	return total
}

// Stat returns the named stat's value and whether it was recorded.
func (s *Snapshot) Stat(name string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	for _, kv := range s.Stats {
		if kv.K == name {
			return kv.V, true
		}
	}
	return 0, false
}

// Format writes the snapshot as an indented human-readable breakdown —
// the `robustsync explain` / `pull -trace` output.
func (s *Snapshot) Format(w io.Writer) {
	s.format(w, "")
}

func (s *Snapshot) format(w io.Writer, indent string) {
	if s == nil {
		return
	}
	fmt.Fprintf(w, "%s%s session #%d", indent, s.Role, s.ID)
	if s.Dataset != "" {
		fmt.Fprintf(w, " dataset=%s", s.Dataset)
	}
	if s.Strategy != "" {
		fmt.Fprintf(w, " strategy=%s", s.Strategy)
	}
	if s.Peer != "" {
		fmt.Fprintf(w, " peer=%s", s.Peer)
	}
	fmt.Fprintf(w, " dur=%s", time.Duration(s.DurNS).Round(time.Microsecond))
	if s.Err != "" {
		fmt.Fprintf(w, " err=%q", s.Err)
	}
	fmt.Fprintln(w)
	if len(s.Spans) > 0 {
		fmt.Fprintf(w, "%s  phases:\n", indent)
		for _, sp := range s.Spans {
			fmt.Fprintf(w, "%s    %-14s %10s", indent, sp.Name, time.Duration(sp.DurNS).Round(time.Microsecond))
			for _, a := range sp.Attrs {
				fmt.Fprintf(w, "  %s=%d", a.K, a.V)
			}
			fmt.Fprintln(w)
		}
	}
	if len(s.Stats) > 0 {
		fmt.Fprintf(w, "%s  stats:", indent)
		for _, kv := range s.Stats {
			fmt.Fprintf(w, " %s=%d", kv.K, kv.V)
		}
		fmt.Fprintln(w)
	}
	if len(s.Frames) > 0 {
		fmt.Fprintf(w, "%s  wire:  %-14s %-4s %8s %10s\n", indent, "type", "dir", "msgs", "bytes")
		for _, f := range s.Frames {
			fmt.Fprintf(w, "%s         %-14s %-4s %8d %10d\n", indent, f.Type, f.Dir, f.Msgs, f.Bytes)
		}
		fmt.Fprintf(w, "%s         total: in=%d out=%d all=%d\n", indent, s.BytesIn, s.BytesOut, s.BytesIn+s.BytesOut)
	}
	for _, c := range s.Children {
		c.format(w, indent+"  ")
	}
}

// ctxKey is the context key type for trace propagation; zero-sized so
// lookups allocate nothing.
type ctxKey struct{}

// NewContext returns ctx carrying tr. A nil trace returns ctx
// unchanged, so untraced sessions never pay the context wrapper.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

// Ring keeps the most recent completed traces plus every
// slow/expensive one (over the latency or byte threshold), each in a
// bounded circular buffer.
type Ring struct {
	mu       sync.Mutex
	recent   []*Snapshot
	slow     []*Snapshot
	ri, si   int
	slowLat  time.Duration
	slowByte int64
}

// NewRing builds a ring holding capacity recent and capacity slow
// snapshots. A session is "slow" when its duration reaches slowLat
// (if > 0) or its attributed tree bytes reach slowBytes (if > 0).
func NewRing(capacity int, slowLat time.Duration, slowBytes int64) *Ring {
	if capacity <= 0 {
		capacity = 64
	}
	return &Ring{
		recent:   make([]*Snapshot, 0, capacity),
		slow:     make([]*Snapshot, 0, capacity),
		slowLat:  slowLat,
		slowByte: slowBytes,
	}
}

// Add records a completed snapshot.
func (r *Ring) Add(s *Snapshot) {
	if r == nil || s == nil {
		return
	}
	slow := (r.slowLat > 0 && time.Duration(s.DurNS) >= r.slowLat) ||
		(r.slowByte > 0 && s.TotalBytes() >= r.slowByte)
	r.mu.Lock()
	r.recent, r.ri = ringPut(r.recent, r.ri, s)
	if slow {
		r.slow, r.si = ringPut(r.slow, r.si, s)
	}
	r.mu.Unlock()
}

// ringPut appends into a fixed-capacity circular buffer.
func ringPut(buf []*Snapshot, i int, s *Snapshot) ([]*Snapshot, int) {
	if len(buf) < cap(buf) {
		return append(buf, s), 0
	}
	buf[i] = s
	return buf, (i + 1) % cap(buf)
}

// ringOrdered returns the buffer oldest-first.
func ringOrdered(buf []*Snapshot, i int) []*Snapshot {
	out := make([]*Snapshot, 0, len(buf))
	out = append(out, buf[i:]...)
	return append(out, buf[:i]...)
}

// Recent returns the retained recent snapshots, oldest first.
func (r *Ring) Recent() []*Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return ringOrdered(r.recent, r.ri)
}

// Slow returns the retained slow-session snapshots, oldest first.
func (r *Ring) Slow() []*Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return ringOrdered(r.slow, r.si)
}

// WriteJSON renders the ring as {"recent": [...], "slow": [...]}.
func (r *Ring) WriteJSON(w io.Writer) error {
	doc := struct {
		Recent []*Snapshot `json:"recent"`
		Slow   []*Snapshot `json:"slow"`
	}{Recent: r.Recent(), Slow: r.Slow()}
	if doc.Recent == nil {
		doc.Recent = []*Snapshot{}
	}
	if doc.Slow == nil {
		doc.Slow = []*Snapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Handler serves the ring JSON — the /debug/traces endpoint.
func (r *Ring) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// SortFramesStable orders a snapshot's frame rows by (type, dir) —
// test helper keeping comparisons deterministic regardless of tag
// numbering.
func (s *Snapshot) SortFramesStable() {
	if s == nil {
		return
	}
	sort.SliceStable(s.Frames, func(i, j int) bool {
		if s.Frames[i].Type != s.Frames[j].Type {
			return s.Frames[i].Type < s.Frames[j].Type
		}
		return s.Frames[i].Dir < s.Frames[j].Dir
	})
}
