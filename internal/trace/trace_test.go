package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.Label("ds", "strat", "peer")
	tr.Begin("phase").End(I("k", 1))
	tr.Frame(0x01, true, 100)
	tr.Stat("rounds", 1)
	tr.Finish(errors.New("boom"))
	if c := tr.Child("x"); c != nil {
		t.Fatalf("nil.Child returned %v", c)
	}
	if s := tr.Snapshot(); s != nil {
		t.Fatalf("nil.Snapshot returned %v", s)
	}
	ctx := NewContext(context.Background(), nil)
	if got := FromContext(ctx); got != nil {
		t.Fatalf("FromContext on untraced ctx = %v", got)
	}
}

func TestDisabledPathAllocations(t *testing.T) {
	ctx := context.Background()
	var tr *Trace
	allocs := testing.AllocsPerRun(1000, func() {
		tr = FromContext(ctx)
		r := tr.Begin("phase")
		r.End(I("cells", 42), I("decoded", 1))
		tr.Frame(0x05, true, 128)
		tr.Stat("rounds", 1)
		tr.Finish(nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %.1f/op, want 0", allocs)
	}
}

func TestSpansAndStats(t *testing.T) {
	tr := New("client")
	tr.Label("demo", "exact", "peer0")
	r := tr.Begin("strata")
	time.Sleep(time.Millisecond)
	r.End(I("est", 12))
	tr.Stat("rounds", 1)
	tr.Stat("rounds", 2)
	tr.Finish(nil)
	s := tr.Snapshot()
	if s.Role != "client" || s.Dataset != "demo" || s.Strategy != "exact" || s.Peer != "peer0" {
		t.Fatalf("labels lost: %+v", s)
	}
	if len(s.Spans) != 1 || s.Spans[0].Name != "strata" {
		t.Fatalf("spans = %+v", s.Spans)
	}
	if s.Spans[0].DurNS <= 0 {
		t.Fatalf("span duration %d, want > 0", s.Spans[0].DurNS)
	}
	if len(s.Spans[0].Attrs) != 1 || s.Spans[0].Attrs[0] != I("est", 12) {
		t.Fatalf("attrs = %+v", s.Spans[0].Attrs)
	}
	if v, ok := s.Stat("rounds"); !ok || v != 3 {
		t.Fatalf("rounds stat = %d, %v; want 3 accumulated", v, ok)
	}
	if s.DurNS <= 0 {
		t.Fatalf("trace duration %d, want > 0", s.DurNS)
	}
}

func TestFrameAttribution(t *testing.T) {
	RegisterFrameName(0x42, "TEST")
	tr := New("client")
	tr.Frame(0x42, true, 100)
	tr.Frame(0x42, true, 50)
	tr.Frame(0x42, false, 7)
	tr.Frame(0x99&0x7f, false, 1) // within the table
	tr.Frame(0xff, true, 1)       // out of the tag space: dropped, not a panic
	s := tr.Snapshot()
	if s.BytesOut != 150 || s.BytesIn != 8 {
		t.Fatalf("bytes in/out = %d/%d, want 8/150", s.BytesIn, s.BytesOut)
	}
	var row *FrameStat
	for i := range s.Frames {
		if s.Frames[i].Type == "TEST" && s.Frames[i].Dir == "out" {
			row = &s.Frames[i]
		}
	}
	if row == nil || row.Msgs != 2 || row.Bytes != 150 {
		t.Fatalf("TEST/out row = %+v", row)
	}
	if FrameName(0x42) != "TEST" {
		t.Fatalf("FrameName(0x42) = %q", FrameName(0x42))
	}
	if !strings.HasPrefix(FrameName(0x6e), "0x") {
		t.Fatalf("unregistered tag renders as %q", FrameName(0x6e))
	}
}

func TestChildTreeAndTotalBytes(t *testing.T) {
	round := New("round")
	c1 := round.Child("session")
	c1.Label("demo~0.2", "exact", "node1")
	c1.Frame(0x01, true, 100)
	c1.Finish(nil)
	c2 := round.Child("session")
	c2.Frame(0x01, false, 23)
	c2.Finish(errors.New("dial: refused"))
	round.Finish(nil)
	s := round.Snapshot()
	if len(s.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(s.Children))
	}
	if s.TotalBytes() != 123 {
		t.Fatalf("TotalBytes = %d, want 123", s.TotalBytes())
	}
	if s.Children[1].Err == "" {
		t.Fatal("child error lost")
	}
}

func TestFinishKeepsFirstResult(t *testing.T) {
	tr := New("client")
	tr.Finish(errors.New("first"))
	d0 := tr.Snapshot().DurNS
	time.Sleep(2 * time.Millisecond)
	tr.Finish(nil)
	s := tr.Snapshot()
	if s.Err != "first" {
		t.Fatalf("err = %q, want first result kept", s.Err)
	}
	if s.DurNS != d0 {
		t.Fatalf("duration rewritten on second Finish: %d != %d", s.DurNS, d0)
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New("server")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Frame(byte(w), w%2 == 0, 10)
				tr.Begin("p").End(I("i", int64(i)))
				tr.Stat("n", 1)
			}
		}(w)
	}
	wg.Wait()
	tr.Finish(nil)
	s := tr.Snapshot()
	if got := s.BytesIn + s.BytesOut; got != 8*200*10 {
		t.Fatalf("frame bytes = %d, want %d", got, 8*200*10)
	}
	if v, _ := s.Stat("n"); v != 8*200 {
		t.Fatalf("stat n = %d, want %d", v, 8*200)
	}
	if len(s.Spans) != 8*200 {
		t.Fatalf("spans = %d, want %d", len(s.Spans), 8*200)
	}
}

func TestRingRecentAndSlowCapture(t *testing.T) {
	r := NewRing(4, 50*time.Millisecond, 1000)
	for i := 0; i < 6; i++ {
		tr := New("client")
		tr.Finish(nil)
		s := tr.Snapshot()
		s.DurNS = int64(i) * int64(10*time.Millisecond) // 0..50ms
		s.BytesOut = int64(i) * 100                     // 0..500
		r.Add(s)
	}
	recent := r.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent = %d, want capacity 4", len(recent))
	}
	// Oldest-first: entries 2..5 survive.
	if recent[0].DurNS != int64(2)*int64(10*time.Millisecond) {
		t.Fatalf("eviction order wrong: first recent DurNS=%d", recent[0].DurNS)
	}
	slow := r.Slow()
	if len(slow) != 1 || slow[0].DurNS != int64(50*time.Millisecond) {
		t.Fatalf("slow = %+v, want exactly the 50ms session", slow)
	}

	// Byte threshold alone also captures.
	rb := NewRing(4, 0, 300)
	s := &Snapshot{BytesIn: 200, BytesOut: 150}
	rb.Add(s)
	if len(rb.Slow()) != 1 {
		t.Fatal("byte-threshold slow capture missed")
	}

	var nilRing *Ring
	nilRing.Add(s) // must not panic
	if nilRing.Recent() != nil || nilRing.Slow() != nil {
		t.Fatal("nil ring returned snapshots")
	}
}

func TestRingJSONAndHandler(t *testing.T) {
	r := NewRing(2, 0, 1)
	tr := New("client")
	tr.Label("demo", "robust", "")
	tr.Frame(0x01, true, 500)
	tr.Finish(nil)
	r.Add(tr.Snapshot())
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Recent []*Snapshot `json:"recent"`
		Slow   []*Snapshot `json:"slow"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("ring JSON invalid: %v\n%s", err, buf.String())
	}
	if len(doc.Recent) != 1 || len(doc.Slow) != 1 {
		t.Fatalf("recent=%d slow=%d, want 1/1", len(doc.Recent), len(doc.Slow))
	}
	if doc.Recent[0].Dataset != "demo" {
		t.Fatalf("round-tripped dataset = %q", doc.Recent[0].Dataset)
	}

	// An empty ring must still serve valid JSON with both arrays.
	empty := NewRing(2, 0, 0)
	buf.Reset()
	if err := empty.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"recent": []`) {
		t.Fatalf("empty ring JSON: %s", buf.String())
	}
}

func TestSnapshotFormat(t *testing.T) {
	tr := New("client")
	tr.Label("sensors/a", "rateless", "")
	tr.Begin("strata").End(I("est", 9))
	tr.Begin("cells_round").End(I("chunk", 24), I("decoded", 1))
	tr.Stat("estimated_diff", 9)
	tr.Stat("actual_diff", 8)
	tr.Frame(0x03, true, 210)
	tr.Frame(0x0f, false, 4096)
	tr.Finish(nil)
	var buf bytes.Buffer
	tr.Snapshot().Format(&buf)
	out := buf.String()
	for _, want := range []string{
		"client session", "dataset=sensors/a", "strategy=rateless",
		"strata", "est=9", "cells_round", "chunk=24",
		"estimated_diff=9", "actual_diff=8",
		"total: in=4096 out=210 all=4306",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted trace missing %q:\n%s", want, out)
		}
	}
}
