package protocol

import (
	"context"
	"encoding/binary"
	"errors"
	"testing"

	"robustset/internal/core"
	"robustset/internal/iblt"
	"robustset/internal/points"
	"robustset/internal/transport"
	"robustset/internal/workload"
)

var testU = points.Universe{Dim: 2, Delta: 1 << 12}

func testInstance(t *testing.T, n, k int) *workload.Instance {
	t.Helper()
	inst, err := workload.Generate(workload.Config{
		N: n, Universe: testU, Outliers: k, Noise: workload.NoiseUniform, Scale: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestBlobListRoundtrip(t *testing.T) {
	blobs := [][]byte{[]byte("a"), {}, []byte("hello world"), {0, 1, 2}}
	enc := appendBlobList(nil, blobs)
	got, err := parseBlobList(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blobs) {
		t.Fatalf("got %d blobs, want %d", len(got), len(blobs))
	}
	for i := range blobs {
		if string(got[i]) != string(blobs[i]) {
			t.Fatalf("blob %d: %q != %q", i, got[i], blobs[i])
		}
	}
}

func TestBlobListCorruption(t *testing.T) {
	blobs := [][]byte{[]byte("abc"), []byte("defg")}
	enc := appendBlobList(nil, blobs)
	cases := map[string][]byte{
		"empty":        {},
		"short header": enc[:2],
		"truncated":    enc[:len(enc)-1],
		"trailing":     append(append([]byte{}, enc...), 1),
		"huge count":   binary.LittleEndian.AppendUint32(nil, 1<<30),
	}
	for name, b := range cases {
		if _, err := parseBlobList(b); err == nil {
			t.Errorf("%s: corrupt blob list accepted", name)
		}
	}
}

func TestRemoteErrorSurfaces(t *testing.T) {
	at, bt := transport.Pair()
	defer at.Close()
	defer bt.Close()
	go send(bg, at, MsgError, []byte("boom"))
	_, _, err := recv(bg, bt)
	var re *RemoteError
	if !errors.As(err, &re) || re.Reason != "boom" {
		t.Fatalf("want RemoteError(boom), got %v", err)
	}
	if re.Error() == "" {
		t.Error("empty error text")
	}
}

func TestRecvExpectWrongType(t *testing.T) {
	at, bt := transport.Pair()
	defer at.Close()
	defer bt.Close()
	go send(bg, at, MsgSet, []byte("x"))
	_, err := recvExpect(bg, bt, MsgSketch)
	if !errors.Is(err, ErrUnexpectedMessage) {
		t.Fatalf("want ErrUnexpectedMessage, got %v", err)
	}
}

func TestEmptyFrameRejected(t *testing.T) {
	at, bt := transport.Pair()
	defer at.Close()
	defer bt.Close()
	go at.Send(bg, nil)
	if _, _, err := recv(bg, bt); err == nil {
		t.Fatal("empty frame accepted")
	}
}

// driveAlice runs an Alice session against a scripted Bob side.
func driveAlice(t *testing.T, alice func(transport.Transport) error, script func(transport.Transport)) error {
	t.Helper()
	at, bt := transport.Pair()
	defer at.Close()
	defer bt.Close()
	done := make(chan error, 1)
	go func() { done <- alice(at) }()
	script(bt)
	return <-done
}

func TestEstimateAliceRejectsMalformedRequests(t *testing.T) {
	inst := testInstance(t, 50, 2)
	params := core.Params{Universe: testU, Seed: 1, DiffBudget: 2}
	alice := func(tr transport.Transport) error { return RunEstimateAlice(bg, tr, params, inst.Alice) }

	// Truncated estimator request body.
	err := driveAlice(t, alice, func(tr transport.Transport) {
		send(bg, tr, MsgEstRequest, []byte{1, 2})
	})
	if err == nil {
		t.Error("truncated estimator request accepted")
	}
	// Estimator k out of range.
	err = driveAlice(t, alice, func(tr transport.Transport) {
		send(bg, tr, MsgEstRequest, []byte{0, 0, 0, 0})
	})
	if err == nil {
		t.Error("estK=0 accepted")
	}
	// Valid request, then a bogus capacity.
	err = driveAlice(t, alice, func(tr transport.Transport) {
		send(bg, tr, MsgEstRequest, []byte{64, 0, 0, 0})
		if _, err := recvExpect(bg, tr, MsgEstimators); err != nil {
			t.Error(err)
			return
		}
		send(bg, tr, MsgLevelRequest, []byte{0, 0, 0, 0, 0, 0}) // capacity 0
	})
	if err == nil {
		t.Error("capacity 0 accepted")
	}
	// Valid request, then an unexpected message type.
	err = driveAlice(t, alice, func(tr transport.Transport) {
		send(bg, tr, MsgEstRequest, []byte{64, 0, 0, 0})
		if _, err := recvExpect(bg, tr, MsgEstimators); err != nil {
			t.Error(err)
			return
		}
		send(bg, tr, MsgSet, nil)
	})
	if !errors.Is(err, ErrUnexpectedMessage) {
		t.Errorf("unexpected message not rejected: %v", err)
	}
	// Clean shutdown path.
	err = driveAlice(t, alice, func(tr transport.Transport) {
		send(bg, tr, MsgEstRequest, []byte{64, 0, 0, 0})
		if _, err := recvExpect(bg, tr, MsgEstimators); err != nil {
			t.Error(err)
			return
		}
		send(bg, tr, MsgDone, nil)
	})
	if err != nil {
		t.Errorf("clean shutdown errored: %v", err)
	}
}

func TestExactIBLTAliceRejectsMalformedRequests(t *testing.T) {
	inst := testInstance(t, 50, 2)
	cfg := ExactConfig{Universe: testU, Seed: 1}
	alice := func(tr transport.Transport) error { return RunExactIBLTAlice(bg, tr, cfg, inst.Alice) }

	err := driveAlice(t, alice, func(tr transport.Transport) {
		if _, err := recvExpect(bg, tr, MsgStrata); err != nil {
			t.Error(err)
			return
		}
		send(bg, tr, MsgIBLTRequest, []byte{1, 2}) // truncated
	})
	if err == nil {
		t.Error("truncated IBLT request accepted")
	}
	err = driveAlice(t, alice, func(tr transport.Transport) {
		if _, err := recvExpect(bg, tr, MsgStrata); err != nil {
			t.Error(err)
			return
		}
		var req [4]byte
		binary.LittleEndian.PutUint32(req[:], 1<<25) // over the cap limit
		send(bg, tr, MsgIBLTRequest, req[:])
	})
	if err == nil {
		t.Error("oversized capacity accepted")
	}
}

func TestCPIAliceRejectsUnknownPayloadRequest(t *testing.T) {
	inst := testInstance(t, 50, 2)
	cfg := CPIConfig{Universe: testU, Seed: 1, Capacity: 8}
	alice := func(tr transport.Transport) error { return RunCPIAlice(bg, tr, cfg, inst.Alice) }

	err := driveAlice(t, alice, func(tr transport.Transport) {
		if _, err := recvExpect(bg, tr, MsgCPISketch); err != nil {
			t.Error(err)
			return
		}
		req := binary.LittleEndian.AppendUint32(nil, 1)
		req = binary.LittleEndian.AppendUint64(req, 0xdeadbeef) // not an element
		send(bg, tr, MsgPayloadRequest, req)
	})
	if err == nil {
		t.Error("unknown element request accepted")
	}
	// Malformed body length.
	err = driveAlice(t, alice, func(tr transport.Transport) {
		if _, err := recvExpect(bg, tr, MsgCPISketch); err != nil {
			t.Error(err)
			return
		}
		send(bg, tr, MsgPayloadRequest, []byte{5, 0, 0, 0, 1}) // claims 5, carries 1 byte
	})
	if err == nil {
		t.Error("malformed payload request accepted")
	}
}

func TestPushBobRejectsGarbageSketch(t *testing.T) {
	at, bt := transport.Pair()
	defer at.Close()
	defer bt.Close()
	go send(bg, at, MsgSketch, []byte("definitely not a sketch"))
	if _, err := RunPushBob(bg, bt, nil); err == nil {
		t.Fatal("garbage sketch accepted")
	}
}

func TestEstimateBobRejectsGarbageEstimators(t *testing.T) {
	inst := testInstance(t, 50, 2)
	params := core.Params{Universe: testU, Seed: 1, DiffBudget: 2}
	at, bt := transport.Pair()
	defer at.Close()
	defer bt.Close()
	go func() {
		if _, err := recvExpect(bg, at, MsgEstRequest); err != nil {
			return
		}
		send(bg, at, MsgEstimators, appendBlobList(nil, [][]byte{[]byte("junk")}))
	}()
	if _, err := RunEstimateBob(bg, bt, params, inst.Bob, EstimateOpts{}); err == nil {
		t.Fatal("garbage estimators accepted")
	}
}

func TestApplyExactDiffErrors(t *testing.T) {
	bob := []points.Point{{1, 2}, {3, 4}}
	// Key of the wrong length.
	shortNeg := diffWith(nil, [][]byte{{1, 2, 3}})
	if _, err := applyExactDiff(testU, bob, &shortNeg); err == nil {
		t.Error("short neg key accepted")
	}
	shortPos := diffWith([][]byte{{1, 2, 3}}, nil)
	if _, err := applyExactDiff(testU, bob, &shortPos); err == nil {
		t.Error("short pos key accepted")
	}
	// Bob-only key naming a point Bob does not hold.
	ghost := append(points.EncodeNew(points.Point{9, 9}), 0, 0, 0, 0)
	ghostDiff := diffWith(nil, [][]byte{ghost})
	if _, err := applyExactDiff(testU, bob, &ghostDiff); err == nil {
		t.Error("ghost removal accepted")
	}
	// Happy path: add one, remove one.
	add := append(points.EncodeNew(points.Point{7, 7}), 0, 0, 0, 0)
	rem := append(points.EncodeNew(points.Point{1, 2}), 0, 0, 0, 0)
	d := diffWith([][]byte{add}, [][]byte{rem})
	got, err := applyExactDiff(testU, bob, &d)
	if err != nil {
		t.Fatal(err)
	}
	want := []points.Point{{3, 4}, {7, 7}}
	if !points.EqualMultisets(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func diffWith(pos, neg [][]byte) (d iblt.Diff) {
	d.Pos, d.Neg = pos, neg
	return d
}

// bg is the do-not-cancel context used throughout the protocol tests.
var bg = context.Background()
