package protocol

import (
	"testing"

	"robustset/internal/core"
	"robustset/internal/points"
	"robustset/internal/transport"
)

// runPair executes an Alice session against a Bob session over an
// in-memory pair and returns Bob's error (Alice's is asserted nil).
func runPair(t *testing.T, alice func(transport.Transport) error, bob func(transport.Transport) error) {
	t.Helper()
	at, bt := transport.Pair()
	defer at.Close()
	defer bt.Close()
	done := make(chan error, 1)
	go func() { done <- alice(at) }()
	if err := bob(bt); err != nil {
		t.Fatalf("bob: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("alice: %v", err)
	}
}

func TestPushPullHappyPath(t *testing.T) {
	inst := testInstance(t, 200, 4)
	params := core.Params{Universe: testU, Seed: 3, DiffBudget: 4}
	runPair(t,
		func(tr transport.Transport) error { return RunPushAlice(bg, tr, params, inst.Alice) },
		func(tr transport.Transport) error {
			res, err := RunPushBob(bg, tr, inst.Bob)
			if err != nil {
				return err
			}
			if len(res.SPrime) != len(inst.Bob) {
				t.Errorf("|S'_B| = %d, want %d", len(res.SPrime), len(inst.Bob))
			}
			return nil
		})
}

func TestEstimateHappyPath(t *testing.T) {
	inst := testInstance(t, 400, 6)
	params := core.Params{Universe: testU, Seed: 5, DiffBudget: 6}
	runPair(t,
		func(tr transport.Transport) error { return RunEstimateAlice(bg, tr, params, inst.Alice) },
		func(tr transport.Transport) error {
			res, err := RunEstimateBob(bg, tr, params, inst.Bob, EstimateOpts{})
			if err != nil {
				return err
			}
			if len(res.SPrime) != len(inst.Bob) {
				t.Errorf("|S'_B| = %d, want %d", len(res.SPrime), len(inst.Bob))
			}
			return nil
		})
}

func TestNaiveHappyPath(t *testing.T) {
	inst := testInstance(t, 100, 0)
	runPair(t,
		func(tr transport.Transport) error { return RunNaiveAlice(bg, tr, testU, inst.Alice) },
		func(tr transport.Transport) error {
			got, err := RunNaiveBob(bg, tr, testU)
			if err != nil {
				return err
			}
			if !points.EqualMultisets(got, inst.Alice) {
				t.Error("naive transfer corrupted the set")
			}
			return nil
		})
}

func TestExactIBLTHappyPath(t *testing.T) {
	inst, err := exactInstanceForProtocol(t, 300, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ExactConfig{Universe: testU, Seed: 7}
	runPair(t,
		func(tr transport.Transport) error { return RunExactIBLTAlice(bg, tr, cfg, inst.alice) },
		func(tr transport.Transport) error {
			got, err := RunExactIBLTBob(bg, tr, cfg, inst.bob)
			if err != nil {
				return err
			}
			if !points.EqualMultisets(got, inst.alice) {
				t.Error("exact IBLT sync did not converge to S_A")
			}
			return nil
		})
}

func TestCPIHappyPath(t *testing.T) {
	inst, err := exactInstanceForProtocol(t, 250, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := CPIConfig{Universe: testU, Seed: 9, Capacity: 24}
	runPair(t,
		func(tr transport.Transport) error { return RunCPIAlice(bg, tr, cfg, inst.alice) },
		func(tr transport.Transport) error {
			got, err := RunCPIBob(bg, tr, cfg, inst.bob)
			if err != nil {
				return err
			}
			if !points.EqualMultisets(got, inst.alice) {
				t.Error("cpi sync did not converge to S_A")
			}
			return nil
		})
}

func TestCPIHappyPathNoDifference(t *testing.T) {
	inst, err := exactInstanceForProtocol(t, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := CPIConfig{Universe: testU, Seed: 11, Capacity: 8}
	runPair(t,
		func(tr transport.Transport) error { return RunCPIAlice(bg, tr, cfg, inst.alice) },
		func(tr transport.Transport) error {
			got, err := RunCPIBob(bg, tr, cfg, inst.bob)
			if err != nil {
				return err
			}
			if !points.EqualMultisets(got, inst.alice) {
				t.Error("identical sets changed under cpi sync")
			}
			return nil
		})
}

type exactPair struct{ alice, bob []points.Point }

// exactInstanceForProtocol builds a zero-noise instance with k replaced
// points.
func exactInstanceForProtocol(t *testing.T, n, k int) (exactPair, error) {
	t.Helper()
	inst := testInstance(t, n, 0)
	alice := points.Clone(inst.Bob)
	for i := 0; i < k; i++ {
		alice[i] = points.Point{int64(1000+i) % testU.Delta, int64(2000+i) % testU.Delta}
	}
	return exactPair{alice: alice, bob: inst.Bob}, nil
}
