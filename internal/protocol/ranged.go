package protocol

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"robustset/internal/hashutil"
	"robustset/internal/points"
	"robustset/internal/ranges"
	"robustset/internal/trace"
	"robustset/internal/transport"
)

// ---------------------------------------------------------------------
// Ranged divide-and-conquer reconciliation
//
// The ranged protocol reconciles over the total order induced by the
// Morton key encoding (internal/ranges): the fetching side probes key
// ranges with (count, fingerprint) aggregates, the serving side answers
// each probe with "equal", a k-way split of its own keys in the range
// (child boundaries as minimal distinguishing prefixes, each child
// carrying its aggregate), or — once its count is at most ItemLimit —
// the exact keys. Only mismatched ranges recurse, so for a difference of
// size D in a set of N keys the wire cost is O(D·k·log_k N) fingerprint
// entries plus O(D·ItemLimit) transferred keys, independent of N up to
// the log factor — the regime where sized sketches (strata + IBLT)
// drown in estimator overhead.
//
// Wire shape (Bob fetches from Alice):
//
//	loop:  Bob → MsgRangeFingerprints(batch of range probes)
//	       Alice → MsgRangeFingerprints(per-probe: equal | split | items-pending)
//	       Alice → MsgRangeItems(keys of the items-pending probes)   [if any]
//	until no mismatched ranges remain, then Bob → MsgDone.
//
// A whole round's probes travel in one frame, so the round count is the
// recursion depth O(log_k N), not the number of mismatched ranges; the
// Serial knob restores the classic one-probe-per-round ping-pong for
// comparison. Disjoint sibling scopes can be reconciled concurrently on
// parallel mux streams sharing one read-only fetching-side tree
// (RunRangedBobScoped).

// Ranged message tags.
const (
	// MsgRangeFingerprints carries range probes (fetching side) or the
	// per-probe verdicts with k-way split fingerprints (serving side).
	MsgRangeFingerprints byte = 0x14
	// MsgRangeItems carries the exact keys of ranges small enough to
	// terminate by item transfer.
	MsgRangeItems byte = 0x15
)

func init() {
	trace.RegisterFrameName(MsgRangeFingerprints, "RANGE_FPS")
	trace.RegisterFrameName(MsgRangeItems, "RANGE_ITEMS")
}

// Ranged protocol sizing defaults and ceilings.
const (
	// DefaultRangedBranch is the default k of the k-way split.
	DefaultRangedBranch = 8
	// DefaultRangedItemLimit is the default range size at which the
	// serving side stops splitting and transfers exact keys.
	DefaultRangedItemLimit = 16
	// MaxRangedBranch bounds the negotiable split fan-out.
	MaxRangedBranch = 64
	// MaxRangedItemLimit bounds the negotiable item-transfer threshold.
	MaxRangedItemLimit = 4096
	// maxRangeProbes bounds the probes of a single frame in either
	// direction (allocation guard).
	maxRangeProbes = 8192
	// maxTotalRangeProbes bounds a session's total probes: an honest
	// exchange recurses past it only for differences far beyond what
	// item transfer would have satisfied, so tripping it means a
	// misbehaving peer.
	maxTotalRangeProbes = 1 << 20
)

// Per-probe verdict kinds in the serving side's reply.
const (
	rangeEqual        byte = 0 // aggregates match; subtree reconciled
	rangeSplit        byte = 1 // k-way split with child aggregates follows
	rangeItemsPending byte = 2 // exact keys follow in MsgRangeItems
)

// RangedConfig parameterizes ranged reconciliation. Both endpoints must
// agree on Universe, Seed, Branch and ItemLimit (a server session
// adopts the latter two from the hello).
type RangedConfig struct {
	Universe points.Universe
	// Seed fixes the fingerprint hash; both parties must share it.
	Seed uint64
	// Branch is the split fan-out k (0 → 8).
	Branch int
	// ItemLimit is the serving-side range size at which splitting stops
	// and exact keys are transferred (0 → 16).
	ItemLimit int
	// Serial makes the fetching side probe one range per round trip —
	// the classic recursive ping-pong — instead of batching every
	// mismatched range of a recursion level into one frame. It exists
	// for latency comparisons; leave it false.
	Serial bool
}

func (c RangedConfig) filled() RangedConfig {
	if c.Branch == 0 {
		c.Branch = DefaultRangedBranch
	}
	if c.ItemLimit == 0 {
		c.ItemLimit = DefaultRangedItemLimit
	}
	return c
}

// validate rejects configurations outside the wire contract; it runs on
// both sides because a server derives the knobs from an untrusted hello.
func (c RangedConfig) validate() error {
	if c.Branch < 2 || c.Branch > MaxRangedBranch {
		return fmt.Errorf("protocol: ranged branch %d outside [2,%d]", c.Branch, MaxRangedBranch)
	}
	if c.ItemLimit < 1 || c.ItemLimit > MaxRangedItemLimit {
		return fmt.Errorf("protocol: ranged item limit %d outside [1,%d]", c.ItemLimit, MaxRangedItemLimit)
	}
	if ranges.KeyLen(c.Universe.Dim) >= 0xff {
		return fmt.Errorf("protocol: ranged sync requires dimension < %d", (0xff-4)/8)
	}
	return nil
}

func (c RangedConfig) keyLen() int { return ranges.KeyLen(c.Universe.Dim) }

// BuildRangeTree builds the fingerprint tree of pts under the config's
// public coins — the structure both endpoints answer probes from.
func BuildRangeTree(cfg RangedConfig, pts []points.Point) (*ranges.Tree, error) {
	cfg = cfg.filled()
	return ranges.NewFromSorted(cfg.keyLen(),
		hashutil.DeriveSeed(cfg.Seed, "ranged/fp"), ranges.Keys(cfg.Universe, pts))
}

// TreeView hands a consistent view of the serving side's range tree to
// fn. Server implementations hold the dataset lock for the duration of
// fn, so each reply round is atomic against writers; the tree may
// advance between rounds, which only re-opens ranges in later probes.
type TreeView func(fn func(*ranges.Tree) error) error

// StaticTreeView wraps an immutable tree as a TreeView.
func StaticTreeView(tree *ranges.Tree) TreeView {
	return func(fn func(*ranges.Tree) error) error { return fn(tree) }
}

// ---------------------------------------------------------------------
// Frame encodings

// uvarint decodes one varint and returns the remainder.
func uvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errors.New("protocol: malformed varint")
	}
	return v, b[n:], nil
}

// appendBound encodes a range bound: u8 prefix length + the minimal
// distinguishing prefix (zero-padded semantics under bytewise compare),
// with 0xFF marking the above-every-key top bound.
func appendBound(dst []byte, b []byte, keyLen int) []byte {
	if len(b) > keyLen {
		return append(dst, 0xFF)
	}
	dst = append(dst, byte(len(b)))
	return append(dst, b...)
}

// parseBound decodes one bound, copying it out of the frame buffer
// (bounds outlive the round that carried them).
func parseBound(b []byte, keyLen int) ([]byte, []byte, error) {
	if len(b) < 1 {
		return nil, nil, io.ErrUnexpectedEOF
	}
	l := int(b[0])
	if l == 0xFF {
		return ranges.TopBound(keyLen), b[1:], nil
	}
	if l > keyLen {
		return nil, nil, errors.New("protocol: range bound longer than key")
	}
	if len(b) < 1+l {
		return nil, nil, io.ErrUnexpectedEOF
	}
	return append([]byte(nil), b[1:1+l]...), b[1+l:], nil
}

// rangeProbe is one fetched-side probe: a half-open key range [lo, hi)
// and the prober's local aggregate over it.
type rangeProbe struct {
	lo, hi []byte
	agg    ranges.Agg
}

func appendRangeProbes(dst []byte, probes []rangeProbe, keyLen int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(probes)))
	for _, p := range probes {
		dst = appendBound(dst, p.lo, keyLen)
		dst = appendBound(dst, p.hi, keyLen)
		dst = binary.AppendUvarint(dst, p.agg.Count)
		dst = binary.LittleEndian.AppendUint64(dst, p.agg.Fp)
	}
	return dst
}

func parseRangeProbes(body []byte, keyLen int) ([]rangeProbe, error) {
	n, body, err := uvarint(body)
	if err != nil {
		return nil, err
	}
	if n < 1 || n > maxRangeProbes {
		return nil, fmt.Errorf("protocol: %d range probes outside [1,%d]", n, maxRangeProbes)
	}
	// Every probe costs at least 11 encoded bytes; reject counts the
	// payload cannot hold before allocating.
	if n > uint64(len(body)/11)+1 {
		return nil, errors.New("protocol: range probe count exceeds payload")
	}
	probes := make([]rangeProbe, 0, n)
	for i := uint64(0); i < n; i++ {
		var p rangeProbe
		if p.lo, body, err = parseBound(body, keyLen); err != nil {
			return nil, err
		}
		if p.hi, body, err = parseBound(body, keyLen); err != nil {
			return nil, err
		}
		if p.agg.Count, body, err = uvarint(body); err != nil {
			return nil, err
		}
		if len(body) < 8 {
			return nil, io.ErrUnexpectedEOF
		}
		p.agg.Fp = binary.LittleEndian.Uint64(body)
		body = body[8:]
		if bytes.Compare(p.lo, p.hi) >= 0 {
			return nil, errors.New("protocol: empty range probe")
		}
		probes = append(probes, p)
	}
	if len(body) != 0 {
		return nil, errors.New("protocol: trailing bytes after range probes")
	}
	return probes, nil
}

// rangeReplyEntry is the serving side's verdict on one probe.
type rangeReplyEntry struct {
	kind   byte
	bounds [][]byte     // rangeSplit: the k-1 inner child boundaries
	aggs   []ranges.Agg // rangeSplit: the k child aggregates
}

func appendRangeReply(dst []byte, entries []rangeReplyEntry, keyLen int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = append(dst, e.kind)
		if e.kind != rangeSplit {
			continue
		}
		dst = binary.AppendUvarint(dst, uint64(len(e.aggs)))
		for _, b := range e.bounds {
			dst = appendBound(dst, b, keyLen)
		}
		for _, a := range e.aggs {
			dst = binary.AppendUvarint(dst, a.Count)
			dst = binary.LittleEndian.AppendUint64(dst, a.Fp)
		}
	}
	return dst
}

func parseRangeReply(body []byte, keyLen int) ([]rangeReplyEntry, error) {
	n, body, err := uvarint(body)
	if err != nil {
		return nil, err
	}
	if n < 1 || n > maxRangeProbes {
		return nil, fmt.Errorf("protocol: %d range verdicts outside [1,%d]", n, maxRangeProbes)
	}
	if n > uint64(len(body))+1 {
		return nil, errors.New("protocol: range verdict count exceeds payload")
	}
	entries := make([]rangeReplyEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(body) < 1 {
			return nil, io.ErrUnexpectedEOF
		}
		e := rangeReplyEntry{kind: body[0]}
		body = body[1:]
		switch e.kind {
		case rangeEqual, rangeItemsPending:
		case rangeSplit:
			k, rest, err := uvarint(body)
			if err != nil {
				return nil, err
			}
			body = rest
			if k < 2 || k > MaxRangedBranch {
				return nil, fmt.Errorf("protocol: range split into %d outside [2,%d]", k, MaxRangedBranch)
			}
			e.bounds = make([][]byte, 0, k-1)
			e.aggs = make([]ranges.Agg, 0, k)
			for j := uint64(1); j < k; j++ {
				var b []byte
				if b, body, err = parseBound(body, keyLen); err != nil {
					return nil, err
				}
				e.bounds = append(e.bounds, b)
			}
			for j := uint64(0); j < k; j++ {
				var a ranges.Agg
				if a.Count, body, err = uvarint(body); err != nil {
					return nil, err
				}
				if len(body) < 8 {
					return nil, io.ErrUnexpectedEOF
				}
				a.Fp = binary.LittleEndian.Uint64(body)
				body = body[8:]
				e.aggs = append(e.aggs, a)
			}
		default:
			return nil, fmt.Errorf("protocol: unknown range verdict 0x%02x", e.kind)
		}
		entries = append(entries, e)
	}
	if len(body) != 0 {
		return nil, errors.New("protocol: trailing bytes after range verdicts")
	}
	return entries, nil
}

// rangeItemGroup carries the serving side's exact keys for one
// items-pending probe, identified by its index in the probe frame.
type rangeItemGroup struct {
	probe int
	keys  [][]byte
}

func appendRangeItems(dst []byte, groups []rangeItemGroup, keyLen int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(groups)))
	for _, g := range groups {
		dst = binary.AppendUvarint(dst, uint64(g.probe))
		dst = binary.AppendUvarint(dst, uint64(len(g.keys)))
		for _, k := range g.keys {
			dst = append(dst, k...)
		}
	}
	return dst
}

// parseRangeItems decodes an items frame. The returned keys alias body;
// the caller copies what it retains past the round.
func parseRangeItems(body []byte, keyLen int) ([]rangeItemGroup, error) {
	n, body, err := uvarint(body)
	if err != nil {
		return nil, err
	}
	if n < 1 || n > maxRangeProbes {
		return nil, fmt.Errorf("protocol: %d item groups outside [1,%d]", n, maxRangeProbes)
	}
	if n > uint64(len(body))+1 {
		return nil, errors.New("protocol: item group count exceeds payload")
	}
	groups := make([]rangeItemGroup, 0, n)
	prev := -1
	for i := uint64(0); i < n; i++ {
		idx, rest, err := uvarint(body)
		if err != nil {
			return nil, err
		}
		body = rest
		if idx > maxRangeProbes || int(idx) <= prev {
			return nil, errors.New("protocol: item group probe indexes not ascending")
		}
		prev = int(idx)
		cnt, rest, err := uvarint(body)
		if err != nil {
			return nil, err
		}
		body = rest
		if cnt > MaxRangedItemLimit {
			return nil, fmt.Errorf("protocol: item group of %d keys exceeds %d", cnt, MaxRangedItemLimit)
		}
		need := int(cnt) * keyLen
		if len(body) < need {
			return nil, io.ErrUnexpectedEOF
		}
		g := rangeItemGroup{probe: int(idx), keys: make([][]byte, 0, cnt)}
		for j := 0; j < int(cnt); j++ {
			k := body[j*keyLen : (j+1)*keyLen]
			if j > 0 && bytes.Compare(g.keys[j-1], k) >= 0 {
				return nil, errors.New("protocol: item group keys not strictly ascending")
			}
			g.keys = append(g.keys, k)
		}
		body = body[need:]
		groups = append(groups, g)
	}
	if len(body) != 0 {
		return nil, errors.New("protocol: trailing bytes after item groups")
	}
	return groups, nil
}

// ---------------------------------------------------------------------
// Serving side (Alice)

// RunRangedAlice serves ranged sync from a point multiset: it builds the
// fingerprint tree once and answers probe rounds until MsgDone.
func RunRangedAlice(ctx context.Context, t transport.Transport, cfg RangedConfig, pts []points.Point) error {
	cfg = cfg.filled()
	if err := cfg.validate(); err != nil {
		return sendErr(ctx, t, err)
	}
	if err := cfg.Universe.CheckSet(pts); err != nil {
		return sendErr(ctx, t, err)
	}
	sp := trace.FromContext(ctx).Begin("range_tree_build")
	tree, err := BuildRangeTree(cfg, pts)
	if err != nil {
		return sendErr(ctx, t, err)
	}
	sp.End(trace.I("keys", int64(tree.Len())))
	return RunRangedAliceView(ctx, t, cfg, StaticTreeView(tree))
}

// RunRangedAliceView serves ranged sync from a TreeView — the form a
// server uses to answer from its incrementally maintained dataset tree
// under round-scoped locking.
func RunRangedAliceView(ctx context.Context, t transport.Transport, cfg RangedConfig, view TreeView) error {
	cfg = cfg.filled()
	if err := cfg.validate(); err != nil {
		return sendErr(ctx, t, err)
	}
	tr := trace.FromContext(ctx)
	keyLen := cfg.keyLen()
	var replyBuf, itemsBuf []byte
	served := 0
	for {
		typ, body, err := recv(ctx, t)
		if err != nil {
			return err
		}
		switch typ {
		case MsgDone:
			return nil
		case MsgRangeFingerprints:
			round := tr.Begin("range_round")
			tr.Stat("rounds", 1)
			probes, err := parseRangeProbes(body, keyLen)
			if err != nil {
				return sendErr(ctx, t, err)
			}
			if served += len(probes); served > maxTotalRangeProbes {
				return sendErr(ctx, t, fmt.Errorf("protocol: ranged session exceeded %d probes", maxTotalRangeProbes))
			}
			entries := make([]rangeReplyEntry, len(probes))
			var groups []rangeItemGroup
			verr := view(func(tree *ranges.Tree) error {
				if tree.KeyLen() != keyLen {
					return errors.New("protocol: range tree key length mismatch")
				}
				for i, p := range probes {
					entries[i] = answerRangeProbe(tree, cfg, p, i, &groups)
				}
				return nil
			})
			if verr != nil {
				return sendErr(ctx, t, verr)
			}
			replyBuf = appendRangeReply(replyBuf[:0], entries, keyLen)
			if err := send(ctx, t, MsgRangeFingerprints, replyBuf); err != nil {
				return err
			}
			if len(groups) > 0 {
				itemsBuf = appendRangeItems(itemsBuf[:0], groups, keyLen)
				if err := send(ctx, t, MsgRangeItems, itemsBuf); err != nil {
					return err
				}
			}
			round.End(trace.I("probes", int64(len(probes))), trace.I("item_groups", int64(len(groups))))
		default:
			return sendErr(ctx, t, fmt.Errorf("%w: 0x%02x", ErrUnexpectedMessage, typ))
		}
	}
}

// answerRangeProbe produces the serving side's verdict on one probe:
// equal, an equal-count k-way split with per-child aggregates, or the
// exact keys once the range holds at most ItemLimit of them.
func answerRangeProbe(tree *ranges.Tree, cfg RangedConfig, p rangeProbe, idx int, groups *[]rangeItemGroup) rangeReplyEntry {
	agg := tree.Agg(p.lo, p.hi)
	if agg == p.agg {
		return rangeReplyEntry{kind: rangeEqual}
	}
	if agg.Count <= uint64(cfg.ItemLimit) {
		*groups = append(*groups, rangeItemGroup{probe: idx, keys: tree.AppendRange(nil, p.lo, p.hi)})
		return rangeReplyEntry{kind: rangeItemsPending}
	}
	k := cfg.Branch
	if uint64(k) > agg.Count {
		k = int(agg.Count)
	}
	e := rangeReplyEntry{
		kind:   rangeSplit,
		bounds: make([][]byte, 0, k-1),
		aggs:   make([]ranges.Agg, 0, k),
	}
	r0 := tree.Rank(p.lo)
	prev := p.lo
	for i := 1; i <= k; i++ {
		b := p.hi
		if i < k {
			// Boundary before the key at the i/k quantile rank, truncated
			// to the shortest prefix separating it from its predecessor.
			at := r0 + i*int(agg.Count)/k
			b = ranges.CutBetween(tree.At(at-1), tree.At(at))
			e.bounds = append(e.bounds, b)
		}
		e.aggs = append(e.aggs, tree.Agg(prev, b))
		prev = b
	}
	return e
}

// ---------------------------------------------------------------------
// Fetching side (Bob)

// RunRangedBob drives the fetching side of ranged sync over the full key
// space and returns Bob's reconciled multiset (equal to Alice's exactly
// on success) plus the number of probe round trips.
func RunRangedBob(ctx context.Context, t transport.Transport, cfg RangedConfig, bobPts []points.Point) ([]points.Point, int, error) {
	cfg = cfg.filled()
	tr := trace.FromContext(ctx)
	if err := cfg.validate(); err != nil {
		return nil, 0, abort(ctx, t, err)
	}
	if err := cfg.Universe.CheckSet(bobPts); err != nil {
		return nil, 0, abort(ctx, t, err)
	}
	sp := tr.Begin("range_tree_build")
	tree, err := BuildRangeTree(cfg, bobPts)
	if err != nil {
		return nil, 0, abort(ctx, t, err)
	}
	sp.End(trace.I("keys", int64(tree.Len())))
	add, rem, rounds, err := runRangedScope(ctx, t, cfg, tree, nil, ranges.TopBound(cfg.keyLen()))
	if err != nil {
		return nil, rounds, err
	}
	ap := tr.Begin("apply")
	res, err := ApplyRangedDiff(cfg.Universe, bobPts, add, rem)
	if err != nil {
		return nil, rounds, abort(ctx, t, err)
	}
	ap.End(trace.I("added", int64(len(add))), trace.I("removed", int64(len(rem))))
	tr.Stat("actual_diff", int64(len(add)+len(rem)))
	return res, rounds, send(ctx, t, MsgDone, nil)
}

// RunRangedBobScoped reconciles only the keys in [lo, hi) against the
// serving peer on this transport and closes the session with MsgDone —
// the per-stream unit of mux-pipelined sync, where disjoint sibling
// scopes run concurrently sharing one read-only local tree. It returns
// the remote-only and local-only key lists of the scope (the caller
// merges scopes and applies once) and the stream's round-trip count.
func RunRangedBobScoped(ctx context.Context, t transport.Transport, cfg RangedConfig, tree *ranges.Tree, lo, hi []byte) (add, rem [][]byte, rounds int, err error) {
	cfg = cfg.filled()
	if err := cfg.validate(); err != nil {
		return nil, nil, 0, abort(ctx, t, err)
	}
	add, rem, rounds, err = runRangedScope(ctx, t, cfg, tree, lo, hi)
	if err != nil {
		return nil, nil, rounds, err
	}
	return add, rem, rounds, send(ctx, t, MsgDone, nil)
}

// runRangedScope runs probe rounds over [lo, hi) until every mismatched
// subrange is resolved, returning the keys Alice has and Bob lacks
// (add), the keys Bob holds and Alice lacks (rem), and the round count.
func runRangedScope(ctx context.Context, t transport.Transport, cfg RangedConfig, tree *ranges.Tree, lo, hi []byte) (add, rem [][]byte, rounds int, err error) {
	tr := trace.FromContext(ctx)
	keyLen := cfg.keyLen()
	active := []rangeProbe{{lo: lo, hi: hi, agg: tree.Agg(lo, hi)}}
	var probeBuf []byte
	var local [][]byte
	sent := 0
	for len(active) > 0 {
		batch := active
		if cfg.Serial {
			batch = active[:1]
		} else if len(batch) > maxRangeProbes {
			batch = active[:maxRangeProbes]
		}
		pending := active[len(batch):]
		if sent += len(batch); sent > maxTotalRangeProbes {
			return nil, nil, rounds, abort(ctx, t, fmt.Errorf("protocol: ranged sync exceeded %d probes", maxTotalRangeProbes))
		}
		round := tr.Begin("range_round")
		tr.Stat("rounds", 1)
		probeBuf = appendRangeProbes(probeBuf[:0], batch, keyLen)
		if err := send(ctx, t, MsgRangeFingerprints, probeBuf); err != nil {
			return nil, nil, rounds, err
		}
		body, err := recvExpect(ctx, t, MsgRangeFingerprints)
		if err != nil {
			return nil, nil, rounds, err
		}
		rounds++
		entries, err := parseRangeReply(body, keyLen)
		if err != nil {
			return nil, nil, rounds, abort(ctx, t, err)
		}
		if len(entries) != len(batch) {
			return nil, nil, rounds, abort(ctx, t, fmt.Errorf("protocol: %d range verdicts for %d probes", len(entries), len(batch)))
		}
		var itemIdx []int
		splits := 0
		for i, e := range entries {
			p := batch[i]
			switch e.kind {
			case rangeEqual:
				// The peer saw our aggregate and certified the match.
			case rangeItemsPending:
				itemIdx = append(itemIdx, i)
			case rangeSplit:
				splits++
				prev := p.lo
				for j := 0; j <= len(e.bounds); j++ {
					b := p.hi
					if j < len(e.bounds) {
						b = e.bounds[j]
						if bytes.Compare(b, prev) <= 0 || bytes.Compare(b, p.hi) >= 0 {
							return nil, nil, rounds, abort(ctx, t, errors.New("protocol: range split bounds not ascending within probe"))
						}
					}
					la := tree.Agg(prev, b)
					if la != e.aggs[j] {
						pending = append(pending, rangeProbe{lo: prev, hi: b, agg: la})
					}
					prev = b
				}
			}
		}
		if len(itemIdx) > 0 {
			ibody, err := recvExpect(ctx, t, MsgRangeItems)
			if err != nil {
				return nil, nil, rounds, err
			}
			groups, err := parseRangeItems(ibody, keyLen)
			if err != nil {
				return nil, nil, rounds, abort(ctx, t, err)
			}
			if len(groups) != len(itemIdx) {
				return nil, nil, rounds, abort(ctx, t, fmt.Errorf("protocol: %d item groups for %d pending probes", len(groups), len(itemIdx)))
			}
			for gi, g := range groups {
				if g.probe != itemIdx[gi] {
					return nil, nil, rounds, abort(ctx, t, errors.New("protocol: item group for a probe not marked items-pending"))
				}
				p := batch[g.probe]
				if len(g.keys) > 0 &&
					(bytes.Compare(g.keys[0], p.lo) < 0 || bytes.Compare(g.keys[len(g.keys)-1], p.hi) >= 0) {
					return nil, nil, rounds, abort(ctx, t, errors.New("protocol: item key outside its probed range"))
				}
				local = tree.AppendRange(local[:0], p.lo, p.hi)
				ai, bi := 0, 0
				for ai < len(g.keys) && bi < len(local) {
					switch c := bytes.Compare(g.keys[ai], local[bi]); {
					case c == 0:
						ai++
						bi++
					case c < 0:
						add = append(add, append([]byte(nil), g.keys[ai]...))
						ai++
					default:
						rem = append(rem, local[bi])
						bi++
					}
				}
				for ; ai < len(g.keys); ai++ {
					add = append(add, append([]byte(nil), g.keys[ai]...))
				}
				rem = append(rem, local[bi:]...)
			}
		}
		round.End(trace.I("probes", int64(len(batch))),
			trace.I("splits", int64(splits)), trace.I("item_groups", int64(len(itemIdx))))
		active = pending
	}
	return add, rem, rounds, nil
}

// ApplyRangedDiff applies a reconciled key diff to the fetching side's
// multiset: every rem key (one of Bob's own, occurrence-indexed) drops
// one occurrence, every add key decodes into a point to append. On
// success the result equals the serving side's multiset over the
// reconciled scope.
func ApplyRangedDiff(u points.Universe, bobPts []points.Point, add, rem [][]byte) ([]points.Point, error) {
	kl := ranges.KeyLen(u.Dim)
	drop := make(map[string]int, len(rem))
	for _, k := range rem {
		if len(k) != kl {
			return nil, errors.New("protocol: malformed removal key")
		}
		drop[string(k[:kl-4])]++
	}
	out := make([]points.Point, 0, len(bobPts)+len(add)-len(rem))
	var keyBuf []byte
	for _, p := range bobPts {
		if len(drop) > 0 {
			keyBuf = ranges.EncodeKey(keyBuf[:0], p, 0)
			enc := string(keyBuf[:kl-4])
			if drop[enc] > 0 {
				drop[enc]--
				continue
			}
		}
		out = append(out, p)
	}
	for enc, n := range drop {
		if n != 0 {
			_ = enc
			return nil, errors.New("protocol: removal names a point the fetching side does not hold")
		}
	}
	for _, k := range add {
		p, _, err := ranges.DecodeKey(k, u.Dim)
		if err != nil {
			return nil, err
		}
		if !u.Contains(p) {
			return nil, errors.New("protocol: peer sent a point outside the universe")
		}
		out = append(out, p)
	}
	return out, nil
}
