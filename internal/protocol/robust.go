package protocol

import (
	"context"
	"errors"
	"fmt"

	"robustset/internal/core"
	"robustset/internal/iblt"
	"robustset/internal/points"
	"robustset/internal/sketch"
	"robustset/internal/trace"
	"robustset/internal/transport"
)

// RunPushAlice executes Alice's side of the one-shot robust protocol:
// a single message carrying the full multiresolution sketch.
func RunPushAlice(ctx context.Context, t transport.Transport, p core.Params, pts []points.Point) error {
	sk, err := core.BuildSketch(p, pts)
	if err != nil {
		return sendErr(ctx, t, err)
	}
	return RunPushSketchAlice(ctx, t, sk)
}

// RunPushSketchAlice pushes an already-built sketch — the path used by
// servers that maintain a sketch incrementally (core.Maintainer) instead
// of re-encoding per session.
func RunPushSketchAlice(ctx context.Context, t transport.Transport, sk *core.Sketch) error {
	blob, err := sk.MarshalBinary()
	if err != nil {
		return sendErr(ctx, t, err)
	}
	sp := trace.FromContext(ctx).Begin("sketch_send")
	if err := send(ctx, t, MsgSketch, blob); err != nil {
		return err
	}
	sp.End(trace.I("bytes", int64(len(blob))))
	return nil
}

// RunPushBob executes Bob's side of the one-shot robust protocol. The
// sketch carries its own parameters, so Bob needs only his points.
func RunPushBob(ctx context.Context, t transport.Transport, bobPts []points.Point) (*core.Result, error) {
	tr := trace.FromContext(ctx)
	sp := tr.Begin("sketch_recv")
	body, err := recvExpect(ctx, t, MsgSketch)
	if err != nil {
		return nil, err
	}
	var sk core.Sketch
	if err := sk.UnmarshalBinary(body); err != nil {
		return nil, err
	}
	sp.End(trace.I("bytes", int64(len(body))))
	sp = tr.Begin("repair")
	res, err := core.Reconcile(&sk, bobPts)
	if err != nil {
		return nil, err
	}
	sp.End(trace.I("level", int64(res.Level)),
		trace.I("added", int64(len(res.Added))), trace.I("removed", int64(len(res.Removed))))
	tr.Stat("actual_diff", int64(len(res.Added)+len(res.Removed)))
	return res, nil
}

// EstimateOpts tunes the estimate-first robust protocol.
type EstimateOpts struct {
	// Budget is the maximum number of difference keys Bob is willing to
	// receive a table for; the finest level estimated to fit is chosen.
	// 0 means 4·DiffBudget.
	Budget int
	// EstimatorK is the bottom-k size per level estimator. 0 means 64.
	EstimatorK int
	// MaxRetries bounds the decode-failure retry loop (each retry doubles
	// the requested capacity and may fall back one level). 0 means 3.
	MaxRetries int
}

func (o EstimateOpts) filled(p core.Params) EstimateOpts {
	if o.Budget == 0 {
		o.Budget = 4 * p.DiffBudget
	}
	if o.EstimatorK == 0 {
		o.EstimatorK = 64
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	return o
}

// RunEstimateAlice serves Alice's side of the estimate-first protocol:
// she answers one estimator request and then any number of level-table
// requests until Bob sends MsgDone.
func RunEstimateAlice(ctx context.Context, t transport.Transport, p core.Params, pts []points.Point) error {
	tr := trace.FromContext(ctx)
	sp := tr.Begin("estimate")
	body, err := recvExpect(ctx, t, MsgEstRequest)
	if err != nil {
		return err
	}
	if len(body) != 4 {
		return sendErr(ctx, t, errors.New("protocol: malformed estimator request"))
	}
	estK := int(uint32(body[0]) | uint32(body[1])<<8 | uint32(body[2])<<16 | uint32(body[3])<<24)
	if estK < 8 || estK > 1<<16 {
		return sendErr(ctx, t, fmt.Errorf("protocol: estimator k %d outside [8, 65536]", estK))
	}
	ests, err := core.LevelEstimators(p, pts, estK)
	if err != nil {
		return sendErr(ctx, t, err)
	}
	blobs := make([][]byte, len(ests))
	for i, e := range ests {
		if blobs[i], err = e.MarshalBinary(); err != nil {
			return sendErr(ctx, t, err)
		}
	}
	if err := send(ctx, t, MsgEstimators, appendBlobList(nil, blobs)); err != nil {
		return err
	}
	sp.End(trace.I("levels", int64(len(blobs))))
	for {
		typ, body, err := recv(ctx, t)
		if err != nil {
			return err
		}
		switch typ {
		case MsgDone:
			return nil
		case MsgLevelRequest:
			round := tr.Begin("level_round")
			tr.Stat("rounds", 1)
			if len(body) != 6 {
				return sendErr(ctx, t, errors.New("protocol: malformed level request"))
			}
			level := int(uint16(body[0]) | uint16(body[1])<<8)
			capacity := int(uint32(body[2]) | uint32(body[3])<<8 | uint32(body[4])<<16 | uint32(body[5])<<24)
			if capacity < 1 || capacity > 1<<24 {
				return sendErr(ctx, t, fmt.Errorf("protocol: capacity %d out of range", capacity))
			}
			tbl, err := core.BuildLevelTable(p, pts, level, capacity)
			if err != nil {
				return sendErr(ctx, t, err)
			}
			blob, err := tbl.MarshalBinary()
			if err != nil {
				return sendErr(ctx, t, err)
			}
			if err := send(ctx, t, MsgLevelTable, blob); err != nil {
				return err
			}
			round.End(trace.I("level", int64(level)), trace.I("capacity", int64(capacity)))
		default:
			return sendErr(ctx, t, fmt.Errorf("%w: 0x%02x", ErrUnexpectedMessage, typ))
		}
	}
}

// RunEstimateBob drives Bob's side of the estimate-first protocol:
// request estimators, pick the finest affordable level, fetch one
// exactly-sized table, reconcile — retrying with doubled capacity (and
// eventually a coarser level) if the table stalls.
func RunEstimateBob(ctx context.Context, t transport.Transport, p core.Params, bobPts []points.Point, opts EstimateOpts) (*core.Result, error) {
	opts = opts.filled(p)
	tr := trace.FromContext(ctx)
	sp := tr.Begin("estimate")
	var req [4]byte
	req[0], req[1], req[2], req[3] = byte(opts.EstimatorK), byte(opts.EstimatorK>>8), byte(opts.EstimatorK>>16), byte(opts.EstimatorK>>24)
	if err := send(ctx, t, MsgEstRequest, req[:]); err != nil {
		return nil, err
	}
	body, err := recvExpect(ctx, t, MsgEstimators)
	if err != nil {
		return nil, err
	}
	blobs, err := parseBlobList(body)
	if err != nil {
		return nil, err
	}
	aliceEsts := make([]*sketch.BottomK, len(blobs))
	for i, b := range blobs {
		aliceEsts[i] = new(sketch.BottomK)
		if err := aliceEsts[i].UnmarshalBinary(b); err != nil {
			return nil, fmt.Errorf("protocol: estimator %d: %w", i, err)
		}
	}
	bobEsts, err := core.LevelEstimators(p, bobPts, opts.EstimatorK)
	if err != nil {
		return nil, abort(ctx, t, err)
	}
	level, est, err := core.ChooseLevel(p, aliceEsts, bobEsts, opts.Budget)
	if err != nil {
		return nil, abort(ctx, t, err)
	}
	sp.End(trace.I("level", int64(level)), trace.I("est", int64(est)))
	tr.Stat("estimated_diff", int64(est))
	capacity := int(est*1.5) + 16
	var lastErr error
	for attempt := 0; attempt <= opts.MaxRetries; attempt++ {
		round := tr.Begin("level_round")
		tr.Stat("rounds", 1)
		tbl, err := fetchLevelTable(ctx, t, level, capacity)
		if err != nil {
			return nil, err
		}
		res, rerr := core.ReconcileLevel(p, tbl, bobPts, level)
		round.End(trace.I("level", int64(level)), trace.I("capacity", int64(capacity)),
			trace.I("decoded", boolStat(rerr == nil)))
		if rerr == nil {
			if err := send(ctx, t, MsgDone, nil); err != nil {
				return nil, err
			}
			tr.Stat("actual_diff", int64(len(res.Added)+len(res.Removed)))
			return res, nil
		}
		tr.Stat("decode_retries", 1)
		lastErr = rerr
		// Decode stalled: the estimate undershot. Double the capacity and
		// step a level coarser, where the true difference shrinks — the
		// combination converges even when the estimator was badly off.
		capacity *= 2
		if level > p.MinLevel {
			level--
		}
	}
	_ = send(ctx, t, MsgDone, nil)
	return nil, fmt.Errorf("protocol: estimate-first reconciliation failed after retries: %w", lastErr)
}

// boolStat renders a bool as a span attribute value.
func boolStat(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// abort tells Alice we are giving up and returns err.
func abort(ctx context.Context, t transport.Transport, err error) error {
	_ = send(ctx, t, MsgDone, nil)
	return err
}

func fetchLevelTable(ctx context.Context, t transport.Transport, level, capacity int) (*iblt.Table, error) {
	body := []byte{
		byte(level), byte(level >> 8),
		byte(capacity), byte(capacity >> 8), byte(capacity >> 16), byte(capacity >> 24),
	}
	if err := send(ctx, t, MsgLevelRequest, body); err != nil {
		return nil, err
	}
	blob, err := recvExpect(ctx, t, MsgLevelTable)
	if err != nil {
		return nil, err
	}
	tbl := new(iblt.Table)
	if err := tbl.UnmarshalBinary(blob); err != nil {
		return nil, err
	}
	return tbl, nil
}
