package protocol

import (
	"bytes"
	"testing"

	"robustset/internal/iblt"
)

// FuzzParseHello feeds arbitrary bytes through the server-session
// handshake parser. The parser fronts every accepted connection, so it
// must never panic, never over-read, and parse⇄encode must be a stable
// roundtrip for every accepted input.
func FuzzParseHello(f *testing.F) {
	// Seed corpus: valid hellos of each strategy, edge-length names and
	// configs, and truncation shapes.
	for _, h := range []Hello{
		{Strategy: StrategyRobust, Dataset: "d"},
		{Strategy: StrategyAdaptive, Dataset: ""},
		{Strategy: StrategyExactIBLT, Dataset: "sensors/alpha", Config: []byte{4}},
		{Strategy: StrategyCPI, Dataset: "x", Config: []byte{0xff, 0xff, 0xff, 0xff}},
		{Strategy: StrategyNaive, Dataset: string(bytes.Repeat([]byte{'n'}, MaxDatasetName))},
	} {
		body, err := h.encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := parseHello(data)
		if err != nil {
			return
		}
		if len(h.Dataset) > MaxDatasetName {
			t.Fatalf("parser accepted a %d-byte dataset name", len(h.Dataset))
		}
		// Accepted input must re-encode and re-parse to the same hello:
		// the parse is canonical, so a server and a re-serializing proxy
		// can never disagree about a session's parameters.
		re, err := h.encode()
		if err != nil {
			t.Fatalf("re-encode of parsed hello failed: %v", err)
		}
		h2, err := parseHello(re)
		if err != nil {
			t.Fatalf("re-parse of re-encoded hello failed: %v", err)
		}
		if h2.Strategy != h.Strategy || h2.Dataset != h.Dataset || !bytes.Equal(h2.Config, h.Config) {
			t.Fatalf("hello roundtrip diverged: %+v vs %+v", h, h2)
		}
	})
}

// FuzzParseCells feeds arbitrary bytes through the rateless cell-block
// parser, which fronts every MsgCells frame the fetching side accepts: it
// must never panic, never allocate from an unvalidated header, and
// parse⇄encode must roundtrip bit-for-bit for every accepted input.
func FuzzParseCells(f *testing.F) {
	// Seed corpus: real blocks of several shapes, plus truncations.
	for _, shape := range []struct {
		keys, skip, n int
		keyLen        int
	}{
		{0, 0, 1, 8},
		{5, 0, 16, 12},
		{40, 32, 64, 20},
	} {
		cfg := iblt.ExtendConfig{KeyLen: shape.keyLen, Seed: 9}
		keys := make([][]byte, shape.keys)
		for i := range keys {
			k := make([]byte, shape.keyLen)
			for j := range k {
				k[j] = byte(i*31 + j)
			}
			keys[i] = k
		}
		s, err := iblt.NewCellStream(cfg, keys)
		if err != nil {
			f.Fatal(err)
		}
		s.Emit(shape.skip)
		blob, err := s.Emit(shape.n).MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		f.Add(blob[:len(blob)/2])
	}
	f.Add([]byte{})
	f.Add([]byte("IBX1"))
	f.Add([]byte("IBX1\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := parseCells(data)
		if err != nil {
			return
		}
		if b.Len()*b.KeyLen != len(b.KeySums) {
			t.Fatalf("parser accepted inconsistent block: %d cells × %d keyLen vs %d sum bytes",
				b.Len(), b.KeyLen, len(b.KeySums))
		}
		re, err := b.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode of parsed block failed: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("block parse⇄encode not canonical: %d vs %d bytes", len(re), len(data))
		}
	})
}
