package protocol

import (
	"bytes"
	"testing"
)

// FuzzParseHello feeds arbitrary bytes through the server-session
// handshake parser. The parser fronts every accepted connection, so it
// must never panic, never over-read, and parse⇄encode must be a stable
// roundtrip for every accepted input.
func FuzzParseHello(f *testing.F) {
	// Seed corpus: valid hellos of each strategy, edge-length names and
	// configs, and truncation shapes.
	for _, h := range []Hello{
		{Strategy: StrategyRobust, Dataset: "d"},
		{Strategy: StrategyAdaptive, Dataset: ""},
		{Strategy: StrategyExactIBLT, Dataset: "sensors/alpha", Config: []byte{4}},
		{Strategy: StrategyCPI, Dataset: "x", Config: []byte{0xff, 0xff, 0xff, 0xff}},
		{Strategy: StrategyNaive, Dataset: string(bytes.Repeat([]byte{'n'}, MaxDatasetName))},
	} {
		body, err := h.encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := parseHello(data)
		if err != nil {
			return
		}
		if len(h.Dataset) > MaxDatasetName {
			t.Fatalf("parser accepted a %d-byte dataset name", len(h.Dataset))
		}
		// Accepted input must re-encode and re-parse to the same hello:
		// the parse is canonical, so a server and a re-serializing proxy
		// can never disagree about a session's parameters.
		re, err := h.encode()
		if err != nil {
			t.Fatalf("re-encode of parsed hello failed: %v", err)
		}
		h2, err := parseHello(re)
		if err != nil {
			t.Fatalf("re-parse of re-encoded hello failed: %v", err)
		}
		if h2.Strategy != h.Strategy || h2.Dataset != h.Dataset || !bytes.Equal(h2.Config, h.Config) {
			t.Fatalf("hello roundtrip diverged: %+v vs %+v", h, h2)
		}
	})
}
